#!/usr/bin/env python3
"""Convert google-benchmark JSON output into the BENCH_micro.json format and
gate perf regressions against a committed baseline.

Typical flow (what the CI perf job runs):

    build/bench/bench_micro    --benchmark_format=json > out/micro.raw.json
    build/bench/bench_transfer --benchmark_format=json > out/transfer.raw.json
    tools/bench_to_json.py out/micro.raw.json out/transfer.raw.json \
        -o out/BENCH_micro.json --baseline BENCH_micro.json --max-regression 0.25

The output schema keeps one entry per kernel:

    {"schema": 1,
     "kernels": {"BM_CombineFull/9": {"items_per_second": 1.2e9,
                                      "real_time_ns": 1.5e6}, ...}}

With --baseline, every kernel present in both files is compared on
items_per_second; any kernel slower than (1 - max_regression) x baseline
fails the run (exit 1).  Kernels new to this run are reported but never
fail.  To refresh the committed baseline after an intentional change, copy
the generated file over BENCH_micro.json at the repo root.
"""

import argparse
import json
import sys


def load_raw(path):
    """Extract {name: {items_per_second, real_time_ns}} from one
    google-benchmark JSON file."""
    with open(path) as f:
        doc = json.load(f)
    kernels = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        entry = {}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        if "bytes_per_second" in b:
            entry["bytes_per_second"] = b["bytes_per_second"]
        # bench_overlap publishes the overlapped-recovery headline metric as
        # a bare counter: per-world rows carry only this (too interleaving-
        # dependent to gate individually), while the mean rows also carry
        # items_per_second = 1/(1+steps_lost) for the regression gate.
        if "steps_lost_per_failure" in b:
            entry["steps_lost_per_failure"] = b["steps_lost_per_failure"]
        time = b.get("real_time")
        if time is not None:
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
            entry["real_time_ns"] = time * scale
        # Kernels that report no throughput counter are still tracked by
        # inverse time so the regression gate covers them.
        if "items_per_second" not in entry and "real_time_ns" in entry and entry["real_time_ns"] > 0:
            entry["items_per_second"] = 1e9 / entry["real_time_ns"]
        kernels[name] = entry
    return kernels


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("raw", nargs="+", help="google-benchmark JSON files")
    ap.add_argument("-o", "--output", required=True, help="merged BENCH json to write")
    ap.add_argument("--baseline", help="committed BENCH json to compare against")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="fail when items/sec drops more than this fraction (default 0.25)")
    args = ap.parse_args()

    kernels = {}
    for path in args.raw:
        kernels.update(load_raw(path))
    if not kernels:
        print("error: no benchmarks found in input files", file=sys.stderr)
        return 1

    out = {"schema": 1, "kernels": kernels}
    with open(args.output, "w") as f:
        json.dump(out, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output} ({len(kernels)} kernels)")

    if not args.baseline:
        return 0

    try:
        with open(args.baseline) as f:
            base = json.load(f).get("kernels", {})
    except FileNotFoundError:
        print(f"baseline {args.baseline} not found; skipping regression gate")
        return 0

    failures = []
    width = max((len(n) for n in kernels), default=0)
    for name in sorted(kernels):
        cur = kernels[name].get("items_per_second")
        ref = base.get(name, {}).get("items_per_second")
        if cur is None:
            continue
        if ref is None or ref <= 0:
            print(f"  {name:<{width}}  {cur:14.3e} items/s  (new kernel)")
            continue
        ratio = cur / ref
        flag = ""
        if ratio < 1.0 - args.max_regression:
            flag = "  << REGRESSION"
            failures.append((name, ratio))
        print(f"  {name:<{width}}  {cur:14.3e} items/s  {ratio:6.2f}x baseline{flag}")

    if failures:
        print(f"\n{len(failures)} kernel(s) regressed more than "
              f"{args.max_regression:.0%} vs {args.baseline}:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        return 1
    print(f"regression gate passed (threshold {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
