#!/usr/bin/env python3
"""ftlint — static checker for this repo's fault-tolerance invariants.

Enforced rules (details in docs/ARCHITECTURE.md, "Enforced invariants"):

  FTL001  every call to an error-returning ftmpi::/MPI_ function (anything
          marked FTR_NODISCARD) must have its result observed — assigned,
          compared, returned, or passed on.  Expression-statement discards
          and `(void)` casts are violations.
  FTL002  no raw MPI_Comm/MPI_Request/MPI_Info owned across an early return
          with a manual `*_free`; use the RAII guards (src/core/raii.hpp).
  FTL003  functions annotated FTR_HOT must be transitively allocation-free:
          no new/malloc and no container growth anywhere they can reach.
  FTL004  the shrink/agree/spawn/merge/replication protocol functions must
          contain a `chaos_point(...)` hook so fault injection reaches them.
  FTL000  suppression hygiene: `// ftlint:allow(FTLxxx reason)` requires a
          valid rule id and a non-empty justification.

Suppress a finding with `// ftlint:allow(FTLxxx reason)` on the same line or
the line directly above it.

Usage:
  ftlint.py --root src                         # lint a tree
  ftlint.py --root src --compile-commands build/compile_commands.json
  ftlint.py file.cpp other.hpp                 # lint specific files
  ftlint.py --engine lex|clang|auto ...        # engine selection

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ftlint_lex  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="ftlint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", action="append", default=[],
                    help="directory tree to lint (repeatable)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the clang engine")
    ap.add_argument("--engine", choices=("auto", "lex", "clang"), default="auto",
                    help="auto = lexer engine, plus the libclang cross-check "
                         "when clang.cindex is importable (default)")
    ap.add_argument("--rules", default="FTL000,FTL001,FTL002,FTL003,FTL004",
                    help="comma-separated rule ids to run")
    ap.add_argument("files", nargs="*", help="extra files to lint")
    args = ap.parse_args(argv)

    if not args.root and not args.files:
        ap.error("give at least one --root or file")
    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    bad = rules - set(ftlint_lex.RULE_IDS)
    if bad:
        ap.error(f"unknown rule ids: {', '.join(sorted(bad))}")

    files = ftlint_lex.collect_files(args.root, args.files)
    if not files:
        print("ftlint: no input files", file=sys.stderr)
        return 2

    engine = ftlint_lex.Engine(files)
    findings = engine.run(rules)

    use_clang = args.engine == "clang"
    if args.engine == "auto":
        import ftlint_clang
        use_clang = ftlint_clang.available()
    if use_clang:
        import ftlint_clang
        if not ftlint_clang.available():
            print("ftlint: --engine clang requested but clang.cindex/libclang "
                  "is unavailable", file=sys.stderr)
            return 2
        # Cross-check: the clang engine re-derives FTL001/FTL004 from the
        # AST; anything it finds at a (path, line) the lexer engine already
        # reported is dropped as a duplicate.
        known = {(f.path, f.line, f.rule) for f in findings}
        for f in ftlint_clang.run(files, args.compile_commands):
            if f.rule in rules and (f.path, f.line, f.rule) not in known:
                findings.append(f)
        findings.sort(key=lambda f: (f.path, f.line, f.rule))

    for f in findings:
        print(f.render())
    n = len(findings)
    if n:
        print(f"ftlint: {n} finding{'s' if n != 1 else ''} "
              f"in {len(files)} files", file=sys.stderr)
        return 1
    print(f"ftlint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
