#!/usr/bin/env python3
"""ftlint — static checker for this repo's fault-tolerance invariants.

Enforced rules (details in docs/ARCHITECTURE.md, "Enforced invariants"):

  FTL001  every call to an error-returning ftmpi::/MPI_ function (anything
          marked FTR_NODISCARD) must have its result observed — assigned,
          compared, returned, or passed on.  Expression-statement discards
          and `(void)` casts are violations.
  FTL002  no raw MPI_Comm/MPI_Request/MPI_Info owned across an early return
          with a manual `*_free`; use the RAII guards (src/core/raii.hpp).
  FTL003  functions annotated FTR_HOT must be transitively allocation-free:
          no new/malloc and no container growth anywhere they can reach.
  FTL004  the shrink/agree/spawn/merge/replication protocol functions must
          contain a `chaos_point(...)` hook so fault injection reaches them.
  FTL005  collective matching (interprocedural, tools/ftlint/ftmodel.py): a
          collective reachable only under a rank-dependent branch, while the
          other ranks take a collective-free path, is a deadlock seed.
  FTL006  communicator lifecycle (interprocedural): use-after-revoke outside
          the sanctioned salvage paths (iprobe_buffered/recv_buffered and
          the shrink/agree/free repair set), double-free, and handles that
          escape a function without an owner.
  FTL007  detector epoch validation: a function that unpacks a failure-
          detector wire message (HeartbeatWire/GossipWire) must observe an
          epoch_ok() verdict — stale detector messages are discarded, never
          acted on.  A discarded or (void)-cast epoch_ok does not count.
  FTL000  suppression hygiene: `// ftlint:allow(FTLxxx reason)` requires a
          valid rule id and a non-empty justification, and a suppression
          that silenced nothing this run is reported as stale.

Suppress a finding with `// ftlint:allow(FTLxxx reason)` on the same line or
the line directly above it.

Usage:
  ftlint.py --root src                         # lint a tree
  ftlint.py --root src --compile-commands build/compile_commands.json
  ftlint.py file.cpp other.hpp                 # lint specific files
  ftlint.py --engine lex|clang|auto ...        # engine selection
  ftlint.py --format github ...                # ::error CI annotations

Exit status: 0 = clean, 1 = findings, 2 = usage or internal error.  The
contract is strict in both directions: a crashed engine exits 2, never 0 —
"the checker died" must not be mistaken for "the tree is clean".
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ftlint_lex  # noqa: E402


def _render_github(f: "ftlint_lex.Finding") -> str:
    """GitHub Actions workflow-command annotation: the runner attaches it to
    the PR diff at (file, line).  Properties must not contain newlines; the
    message escapes %, CR and LF per the workflow-command grammar."""
    msg = (f.message.replace("%", "%25").replace("\r", "%0D")
           .replace("\n", "%0A"))
    return f"::error file={f.path},line={f.line},title={f.rule}::{msg}"


def run_checker(args) -> int:
    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    bad = rules - set(ftlint_lex.RULE_IDS)
    if bad:
        print(f"ftlint: unknown rule ids: {', '.join(sorted(bad))}",
              file=sys.stderr)
        return 2

    files = ftlint_lex.collect_files(args.root, args.files)
    if not files:
        print("ftlint: no input files", file=sys.stderr)
        return 2

    if os.environ.get("FTLINT_INJECT_CRASH"):
        # Test hook for the exit-code contract (see test_fixtures.py): a
        # deliberately crashed engine must surface as exit 2, not 0.
        raise RuntimeError("FTLINT_INJECT_CRASH set: simulated engine crash")

    engine = ftlint_lex.Engine(files)
    findings = engine.run(rules)

    use_clang = args.engine == "clang"
    if args.engine == "auto":
        import ftlint_clang
        use_clang = ftlint_clang.available()
    if use_clang:
        import ftlint_clang
        if not ftlint_clang.available():
            print("ftlint: --engine clang requested but clang.cindex/libclang "
                  "is unavailable", file=sys.stderr)
            return 2
        # Cross-check: the clang engine re-derives FTL001/FTL004 from the
        # AST; anything it finds at a (path, line) the lexer engine already
        # reported is dropped as a duplicate.
        known = {(f.path, f.line, f.rule) for f in findings}
        for f in ftlint_clang.run(files, args.compile_commands):
            if f.rule in rules and (f.path, f.line, f.rule) not in known:
                findings.append(f)
        findings.sort(key=lambda f: (f.path, f.line, f.rule))

    for f in findings:
        print(_render_github(f) if args.format == "github" else f.render())
    n = len(findings)
    if n:
        print(f"ftlint: {n} finding{'s' if n != 1 else ''} "
              f"in {len(files)} files", file=sys.stderr)
        return 1
    print(f"ftlint: clean ({len(files)} files)", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="ftlint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", action="append", default=[],
                    help="directory tree to lint (repeatable)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the clang engine")
    ap.add_argument("--engine", choices=("auto", "lex", "clang"), default="auto",
                    help="auto = lexer engine, plus the libclang cross-check "
                         "when clang.cindex is importable (default)")
    ap.add_argument("--rules",
                    default="FTL000,FTL001,FTL002,FTL003,FTL004,FTL005,FTL006,"
                            "FTL007",
                    help="comma-separated rule ids to run")
    ap.add_argument("--format", choices=("human", "github"), default="human",
                    help="finding output format: human (default) or GitHub "
                         "Actions ::error annotations")
    ap.add_argument("files", nargs="*", help="extra files to lint")
    args = ap.parse_args(argv)

    if not args.root and not args.files:
        ap.error("give at least one --root or file")

    try:
        return run_checker(args)
    except Exception:  # noqa: BLE001 — contract: a crashed engine is exit 2
        import traceback
        traceback.print_exc()
        print("ftlint: internal error (see traceback above) — treating the "
              "run as failed, NOT as clean", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
