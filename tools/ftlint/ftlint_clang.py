"""Optional libclang (clang.cindex) engine for ftlint.

Where the libclang Python bindings are installed, this engine re-derives
FTL001 and FTL004 from the real AST, driven by compile_commands.json, and is
used as a cross-check on top of the dependency-free lexer engine
(ftlint_lex.py), which remains the reference implementation for all four
rules.  On hosts without the bindings (including the stock test container)
`available()` returns False and the driver falls back silently — the lint
gate never depends on an optional package.
"""

from __future__ import annotations

import json
import os
import shlex

from ftlint_lex import FTL004_FAMILIES, Finding

try:  # pragma: no cover - depends on host packages
    import clang.cindex as _cindex

    _HAVE_CINDEX = True
except Exception:  # ImportError or a broken libclang install
    _cindex = None
    _HAVE_CINDEX = False


def available() -> bool:
    if not _HAVE_CINDEX:
        return False
    try:  # the bindings can be present with no usable libclang.so
        _cindex.Index.create()
        return True
    except Exception:
        return False


def _load_compile_commands(path: str) -> dict[str, list[str]]:
    """Map absolute source path -> compiler args (without the compiler/file)."""
    out: dict[str, list[str]] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for entry in json.load(fh):
            args = entry.get("arguments") or shlex.split(entry.get("command", ""))
            src = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
            keep: list[str] = []
            skip_next = False
            for a in args[1:]:
                if skip_next:
                    skip_next = False
                    continue
                if a in ("-c", src, entry["file"]):
                    continue
                if a == "-o":
                    skip_next = True
                    continue
                keep.append(a)
            out[src] = keep
    return out


def _is_nodiscard(decl) -> bool:
    return any(ch.kind == _cindex.CursorKind.WARN_UNUSED_RESULT_ATTR
               for ch in decl.get_children())


def _walk(cursor, fn):
    fn(cursor)
    for ch in cursor.get_children():
        _walk(ch, fn)


def run(files: list[str], compile_commands: str | None) -> list[Finding]:
    """FTL001 + FTL004 over `files`; the caller merges with the lexer engine
    (which keeps responsibility for FTL000/FTL002/FTL003 in all modes)."""
    cc = _load_compile_commands(compile_commands) if compile_commands else {}
    index = _cindex.Index.create()
    findings: list[Finding] = []
    wanted = {os.path.normpath(os.path.abspath(f)) for f in files}

    for path in sorted(wanted):
        if not path.endswith((".cpp", ".cc", ".cxx")):
            continue
        args = cc.get(path, ["-std=c++20"])
        try:
            tu = index.parse(path, args=args)
        except Exception:
            continue

        def visit(cur, path=path):
            # FTL001: a call whose value forms a full expression statement.
            if cur.kind == _cindex.CursorKind.COMPOUND_STMT:
                for stmt in cur.get_children():
                    call = stmt
                    # Unwrap top-level casts so `(void)call()` is seen too.
                    while call.kind == _cindex.CursorKind.CSTYLE_CAST_EXPR:
                        kids = list(call.get_children())
                        if not kids:
                            break
                        call = kids[-1]
                    if call.kind != _cindex.CursorKind.CALL_EXPR:
                        continue
                    ref = call.referenced
                    if ref is None or not _is_nodiscard(ref):
                        continue
                    if str(stmt.location.file) != path:
                        continue
                    findings.append(Finding(
                        path, stmt.location.line, "FTL001",
                        f"result of error-returning `{ref.spelling}` is "
                        "discarded (clang engine)"))
            # FTL004: family definitions must contain a chaos_point call.
            if (cur.kind in (_cindex.CursorKind.FUNCTION_DECL,
                             _cindex.CursorKind.CXX_METHOD)
                    and cur.is_definition()
                    and cur.spelling in FTL004_FAMILIES
                    and str(cur.location.file) == path):
                hooks = []
                _walk(cur, lambda c: hooks.append(c)
                      if c.kind == _cindex.CursorKind.CALL_EXPR
                      and c.spelling == "chaos_point" else None)
                if not hooks:
                    findings.append(Finding(
                        path, cur.location.line, "FTL004",
                        f"`{cur.spelling}` "
                        f"({FTL004_FAMILIES[cur.spelling]} family) has no "
                        "chaos_point hook (clang engine)"))

        _walk(tu.cursor, visit)
    return findings
