"""Token-level engine for the ftlint fault-tolerance invariant checker.

This is the reference implementation of rules FTL001-FTL004 (see
docs/ARCHITECTURE.md, "Enforced invariants").  It is a real lexer — comments,
string/char literals, raw strings and preprocessor directives are handled —
but deliberately not a parser: the rules are anchored on repo idioms
(FTR_NODISCARD / FTR_HOT markers, `chaos_point(...)` hooks, `MPI_*_free`
pairs), which token context identifies reliably without a full AST.  The
optional clang.cindex engine (ftlint_clang.py) cross-checks FTL001/FTL004 on
hosts that ship the libclang Python bindings; this engine has no
dependencies beyond the Python standard library, so it runs everywhere the
test suite runs.
"""

from __future__ import annotations

import dataclasses
import os
import re
from typing import Iterable

RULE_IDS = ("FTL000", "FTL001", "FTL002", "FTL003", "FTL004", "FTL005",
            "FTL006", "FTL007")

# Keywords/punctuation that precede a *discarded* expression-statement call:
# the call begins a statement, so nothing consumes its value.
_DISCARD_PREV = {";", "{", "}", "else", "do", ":", ")", None}

# Raw handle types owned by value that FTL002 tracks, with their free
# functions and the RAII guards that make ownership early-return safe.
_FTL002_HANDLES = {
    "MPI_Comm": ("MPI_Comm_free", ("CommGuard",)),
    "MPI_Request": ("MPI_Request_free", ("RequestGuard",)),
    "MPI_Info": ("MPI_Info_free", ("InfoGuard",)),
}

# Allocation sinks for FTL003: anything that can touch the allocator.
_ALLOC_FREE_FUNCS = {"malloc", "calloc", "realloc", "strdup", "aligned_alloc"}
_ALLOC_MEMBERS = {
    "push_back", "emplace_back", "emplace", "resize", "reserve",
    "insert", "assign", "append",
}
_ALLOC_STD = {"make_unique", "make_shared"}

# FTL007: failure-detector wire formats.  A function that unpacks one of
# these from a message payload consumes detector traffic and must validate
# the carried detector epoch with an *observed* epoch_ok() call — stale
# heartbeats/gossip must be discarded, never acted on.  DoorbellWire is the
# overlapped-recovery announcement: a doorbell from an aborted earlier
# attempt (wrong repair epoch) or from before the attempt was armed (stale
# detector epoch) must die at validation, never trigger a handoff.
_FTL007_WIRES = ("HeartbeatWire", "GossipWire", "DoorbellWire")

# FTL004: protocol families that chaos injection must be able to reach, and
# the function definitions that implement them.
FTL004_FAMILIES = {
    "comm_shrink": "shrink",
    "comm_agree": "agree",
    "comm_spawn_multiple": "spawn",
    "intercomm_merge": "merge",
    "buddy_send": "replication",
}

_ALLOW_RE = re.compile(r"ftlint:allow\(\s*(\S+)?\s*([^)]*)\)")

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

# Keywords that look like identifiers to the tokenizer but can never be a
# function name, a callee, or a `name::` qualifier.
_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "try", "catch", "throw",
    "new", "delete", "sizeof", "alignof", "static_assert", "decltype",
    "co_return", "co_await", "co_yield", "using", "namespace", "template",
    "typename", "struct", "class", "enum", "union", "operator",
}


def _is_name(text: str) -> bool:
    return bool(_ID_RE.fullmatch(text)) and text not in _KEYWORDS


@dataclasses.dataclass(frozen=True)
class Token:
    text: str
    line: int


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclasses.dataclass
class Suppression:
    line: int
    rule: str | None   # None => malformed (missing/invalid rule id)
    reason: str
    used: bool = False


class SourceFile:
    """One tokenized translation unit plus its suppression comments."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.tokens: list[Token] = []
        self.suppressions: list[Suppression] = []
        self._tokenize(text)

    # -- tokenizer ----------------------------------------------------------
    def _note_comment(self, comment: str, line: int) -> None:
        m = _ALLOW_RE.search(comment)
        if not m:
            return
        rule, reason = m.group(1), (m.group(2) or "").strip()
        if rule not in RULE_IDS:
            self.suppressions.append(Suppression(line, None, reason))
        else:
            self.suppressions.append(Suppression(line, rule, reason))

    def _tokenize(self, text: str) -> None:
        i, n, line = 0, len(text), 1
        tokens = self.tokens
        while i < n:
            c = text[i]
            if c == "\n":
                line += 1
                i += 1
            elif c in " \t\r\f\v":
                i += 1
            elif text.startswith("//", i):
                j = text.find("\n", i)
                j = n if j < 0 else j
                self._note_comment(text[i:j], line)
                i = j
            elif text.startswith("/*", i):
                j = text.find("*/", i + 2)
                j = n - 2 if j < 0 else j
                self._note_comment(text[i:j], line)
                line += text.count("\n", i, j + 2)
                i = j + 2
            elif c == "#":
                # Preprocessor directive: skip to end of line, honouring
                # backslash continuations (macro bodies are not code we lint).
                while i < n:
                    j = text.find("\n", i)
                    if j < 0:
                        i = n
                        break
                    cont = text[i:j].rstrip().endswith("\\")
                    line += 1
                    i = j + 1
                    if not cont:
                        break
            elif c == 'R' and text.startswith('R"', i):
                m = re.match(r'R"([^()\s\\]*)\(', text[i:])
                if m:
                    end = text.find(")" + m.group(1) + '"', i)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    line += text.count("\n", i, end)
                    i = end
                else:
                    tokens.append(Token("R", line))
                    i += 1
            elif c in "\"'":
                j = i + 1
                while j < n and text[j] != c:
                    j += 2 if text[j] == "\\" else 1
                line += text.count("\n", i, j)
                i = j + 1
            else:
                m = _ID_RE.match(text, i)
                if m:
                    tokens.append(Token(m.group(0), line))
                    i = m.end()
                elif text.startswith("::", i):
                    tokens.append(Token("::", line))
                    i += 2
                elif text.startswith("->", i):
                    tokens.append(Token("->", line))
                    i += 2
                else:
                    tokens.append(Token(c, line))
                    i += 1

    # -- helpers ------------------------------------------------------------
    def match_paren(self, open_idx: int) -> int:
        """Index of the `)` matching tokens[open_idx] == `(` (or len)."""
        depth = 0
        for k in range(open_idx, len(self.tokens)):
            t = self.tokens[k].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    return k
        return len(self.tokens)

    def qualified_start(self, name_idx: int) -> int:
        """Walk back over `::a::b::` qualifiers; return index of first token."""
        k = name_idx
        while k >= 2 and self.tokens[k - 1].text == "::" and _is_name(
                self.tokens[k - 2].text):
            k -= 2
        # Absorb a leading global-scope `::` (e.g. `::ftmpi::send(...)`).
        if k >= 1 and self.tokens[k - 1].text == "::":
            k -= 1
        return k


def _iter_functions(sf: SourceFile) -> Iterable[tuple[str, int, int, int]]:
    """Yield (name, name_idx, body_start_idx, body_end_idx) for every
    function definition: `name ( ... ) [stuff] {`.  `stuff` covers cv/ref
    qualifiers, noexcept, trailing return types and ctor initializer lists —
    anything short that is not `;`, `=` (excluding `= default/delete`), or a
    brace imbalance."""
    toks = sf.tokens
    i = 0
    while i < len(toks) - 1:
        if _is_name(toks[i].text) and toks[i + 1].text == "(":
            close = sf.match_paren(i + 1)
            k = close + 1
            ok = False
            # Scan a short window for the opening brace of the body.
            for _ in range(24):
                if k >= len(toks):
                    break
                t = toks[k].text
                if t == "{":
                    ok = True
                    break
                if t in (";", "=", "}", ")"):
                    break
                if t == "(":  # e.g. a ctor initializer's call — give up
                    break
                k += 1
            if ok:
                depth = 0
                end = k
                for j in range(k, len(toks)):
                    if toks[j].text == "{":
                        depth += 1
                    elif toks[j].text == "}":
                        depth -= 1
                        if depth == 0:
                            end = j
                            break
                yield toks[i].text, i, k, end
                i = k + 1
                continue
        i += 1


class Engine:
    """Runs FTL001-FTL004 over a set of files."""

    def __init__(self, files: list[str]):
        self.sources: list[SourceFile] = []
        for path in files:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                self.sources.append(SourceFile(path, fh.read()))
        # Registries derived from the sources themselves (single source of
        # truth: the FTR_NODISCARD / FTR_HOT markers in the tree).
        self.nodiscard: set[str] = set()
        self.hot: set[str] = set()
        # name -> list of (source, body_start, body_end, def_line)
        self.defs: dict[str, list[tuple[SourceFile, int, int, int]]] = {}
        for sf in self.sources:
            self._scan_markers(sf)
        for sf in self.sources:
            for name, name_idx, b0, b1 in _iter_functions(sf):
                self.defs.setdefault(name, []).append(
                    (sf, b0, b1, sf.tokens[name_idx].line))

    def _scan_markers(self, sf: SourceFile) -> None:
        toks = sf.tokens
        for i, tok in enumerate(toks):
            if tok.text not in ("FTR_NODISCARD", "FTR_HOT"):
                continue
            # The marked declaration's name: first identifier followed by `(`
            # within a short window (skips return type tokens and attributes).
            for k in range(i + 1, min(i + 40, len(toks) - 1)):
                if _ID_RE.fullmatch(toks[k].text) and toks[k + 1].text == "(":
                    if tok.text == "FTR_NODISCARD":
                        self.nodiscard.add(toks[k].text)
                    else:
                        self.hot.add(toks[k].text)
                    break

    # -- suppression handling -----------------------------------------------
    def _suppressed(self, sf: SourceFile, rule: str, line: int) -> bool:
        for sup in sf.suppressions:
            if sup.rule == rule and sup.line in (line, line - 1) and sup.reason:
                sup.used = True
                return True
        return False

    def _suppression_findings(self) -> list[Finding]:
        out = []
        for sf in self.sources:
            for sup in sf.suppressions:
                if sup.rule is None:
                    out.append(Finding(
                        sf.path, sup.line, "FTL000",
                        "malformed suppression: expected "
                        "`// ftlint:allow(FTLxxx reason)`"))
                elif not sup.reason:
                    out.append(Finding(
                        sf.path, sup.line, "FTL000",
                        f"suppression of {sup.rule} has no justification — "
                        "a reason string is mandatory"))
        return out

    # -- FTL001 -------------------------------------------------------------
    def _check_ftl001(self) -> list[Finding]:
        out = []
        for sf in self.sources:
            toks = sf.tokens
            for i in range(len(toks) - 1):
                name = toks[i].text
                if name not in self.nodiscard or toks[i + 1].text != "(":
                    continue
                start = sf.qualified_start(i)
                prev = toks[start - 1].text if start > 0 else None
                if prev in (".", "->"):
                    continue  # member call on some object; not this API
                close = sf.match_paren(i + 1)
                nxt = toks[close + 1].text if close + 1 < len(toks) else None
                line = toks[i].line
                discarded = prev in _DISCARD_PREV and nxt == ";"
                void_cast = (start >= 3 and toks[start - 1].text == ")"
                             and toks[start - 2].text == "void"
                             and toks[start - 3].text == "(")
                if void_cast:
                    if not self._suppressed(sf, "FTL001", line):
                        out.append(Finding(
                            sf.path, line, "FTL001",
                            f"result of error-returning `{name}` is discarded "
                            "with a (void) cast; observe it (branch, return, "
                            "or route through ftr::observe_error)"))
                elif discarded:
                    # A definition/declaration is never a discard: its name is
                    # preceded by a type token, which is not in _DISCARD_PREV,
                    # so only real expression-statement calls land here.
                    if not self._suppressed(sf, "FTL001", line):
                        out.append(Finding(
                            sf.path, line, "FTL001",
                            f"result of error-returning `{name}` is dropped on "
                            "the floor; every MPI error code may carry "
                            "PROC_FAILED/REVOKED and must be observed"))
        return out

    # -- FTL002 -------------------------------------------------------------
    def _check_ftl002(self) -> list[Finding]:
        out = []
        for sf in self.sources:
            for _, _, b0, b1 in _iter_functions(sf):
                out.extend(self._ftl002_body(sf, b0, b1))
        return out

    def _ftl002_body(self, sf: SourceFile, b0: int, b1: int) -> list[Finding]:
        toks = sf.tokens
        out = []
        paren_depth = 0
        for i in range(b0, b1):
            t = toks[i].text
            if t == "(":
                paren_depth += 1
            elif t == ")":
                paren_depth -= 1
            if t not in _FTL002_HANDLES or paren_depth > 0:
                continue
            free_fn, guards = _FTL002_HANDLES[t]
            if i + 2 >= len(toks) or not _ID_RE.fullmatch(toks[i + 1].text):
                continue
            if toks[i + 2].text not in (";", "=", ","):
                continue  # pointer/reference/param, not a by-value local
            var = toks[i + 1].text
            decl_line = toks[i + 1].line
            # Scan the rest of the function: does this var get freed, is it
            # handed to a guard, and is there a `return` while it is owned?
            free_idx = guard_idx = None
            returns: list[int] = []
            for k in range(i + 3, b1):
                tk = toks[k].text
                if tk == free_fn and self._arg_is(sf, k, var):
                    free_idx = k
                    break
                if tk in guards and self._guard_takes(sf, k, var):
                    guard_idx = k
                if tk == "return":
                    returns.append(k)
            if free_idx is None or guard_idx is not None:
                continue
            if any(r < free_idx for r in returns):
                if not self._suppressed(sf, "FTL002", decl_line):
                    out.append(Finding(
                        sf.path, decl_line, "FTL002",
                        f"raw `{toks[i].text} {var}` is freed manually but a "
                        "`return` can skip the free; scope it with "
                        f"{guards[0]} (src/core/raii.hpp) instead"))
        return out

    def _guard_takes(self, sf: SourceFile, k: int, var: str) -> bool:
        """True if the guard at k owns `var`: either a declaration
        `CommGuard g(&var)` (guard type, variable name, paren) or a direct
        temporary `CommGuard(&var)`."""
        toks = sf.tokens
        if k + 1 < len(toks) and _is_name(toks[k + 1].text):
            return self._arg_is(sf, k + 1, var)
        return self._arg_is(sf, k, var)

    @staticmethod
    def _arg_is(sf: SourceFile, call_idx: int, var: str) -> bool:
        """True if the call at call_idx mentions `var` in its argument list."""
        toks = sf.tokens
        if call_idx + 1 >= len(toks) or toks[call_idx + 1].text != "(":
            return False
        close = sf.match_paren(call_idx + 1)
        return any(toks[k].text == var for k in range(call_idx + 2, close))

    # -- FTL003 -------------------------------------------------------------
    def _check_ftl003(self) -> list[Finding]:
        out = []
        seen: set[tuple[str, int, str]] = set()
        for root in sorted(self.hot):
            # BFS over the name-based call graph from each hot root.
            chain = {root: root}
            queue = [root]
            visited = {root}
            while queue:
                fn = queue.pop(0)
                for sf, b0, b1, _ in self.defs.get(fn, ()):  # all overloads
                    for i in range(b0, b1):
                        viol = self._alloc_at(sf, i)
                        if viol is not None:
                            line = sf.tokens[i].line
                            key = (sf.path, line, viol)
                            if key in seen:
                                continue
                            if self._suppressed(sf, "FTL003", line):
                                seen.add(key)
                                continue
                            seen.add(key)
                            via = chain[fn]
                            path_note = (f" (reached via {via})"
                                         if via != fn else "")
                            out.append(Finding(
                                sf.path, line, "FTL003",
                                f"`{viol}` allocates inside `{fn}`, which is "
                                f"on the FTR_HOT path of `{root}`"
                                f"{path_note}; hot kernels must be "
                                "allocation-free"))
                        callee = self._call_at(sf, i)
                        if callee and callee in self.defs and callee not in visited:
                            visited.add(callee)
                            chain[callee] = f"{chain[fn]} -> {callee}"
                            queue.append(callee)
        return out

    def _call_at(self, sf: SourceFile, i: int) -> str | None:
        toks = sf.tokens
        if (i + 1 < len(toks) and toks[i + 1].text == "("
                and _is_name(toks[i].text)
                and (i == 0 or toks[i - 1].text not in (".", "->"))):
            return toks[i].text
        return None

    def _alloc_at(self, sf: SourceFile, i: int) -> str | None:
        toks = sf.tokens
        t = toks[i].text
        nxt = toks[i + 1].text if i + 1 < len(toks) else None
        prev = toks[i - 1].text if i > 0 else None
        if t == "new" and prev != "operator":
            return "new"
        if nxt != "(":
            return None
        if t in _ALLOC_FREE_FUNCS and prev not in (".", "->"):
            return t
        if t in _ALLOC_MEMBERS and prev in (".", "->"):
            return t
        if t in _ALLOC_STD:
            return t
        return None

    # -- FTL004 -------------------------------------------------------------
    def _check_ftl004(self) -> list[Finding]:
        out = []
        for name, family in FTL004_FAMILIES.items():
            for sf, b0, b1, def_line in self.defs.get(name, ()):
                has_hook = any(
                    sf.tokens[k].text == "chaos_point"
                    and k + 1 < len(sf.tokens) and sf.tokens[k + 1].text == "("
                    for k in range(b0, b1))
                if not has_hook and not self._suppressed(sf, "FTL004", def_line):
                    out.append(Finding(
                        sf.path, def_line, "FTL004",
                        f"`{name}` ({family} family) has no chaos_point hook; "
                        "fault injection cannot reach this protocol step"))
        return out

    # -- FTL007 -------------------------------------------------------------
    def _check_ftl007(self) -> list[Finding]:
        out = []
        for sf in self.sources:
            for name, _, b0, b1 in _iter_functions(sf):
                out.extend(self._ftl007_body(sf, name, b0, b1))
        return out

    def _ftl007_body(self, sf: SourceFile, fn: str, b0: int,
                     b1: int) -> list[Finding]:
        toks = sf.tokens
        unpacks: list[tuple[int, str]] = []  # (line, wire type)
        validated = False
        for i in range(b0, b1):
            t = toks[i].text
            if (t in _FTL007_WIRES and i >= 2 and toks[i - 1].text == "<"
                    and toks[i - 2].text == "unpack"):
                unpacks.append((toks[i].line, t))
            if t == "epoch_ok" and i + 1 < len(toks) and toks[i + 1].text == "(":
                # The validation only counts if its verdict is observed; a
                # discarded or (void)-cast epoch_ok() still acts on stale
                # messages (and FTL001 reports the discard separately).
                start = sf.qualified_start(i)
                prev = toks[start - 1].text if start > 0 else None
                close = sf.match_paren(i + 1)
                nxt = toks[close + 1].text if close + 1 < len(toks) else None
                discarded = prev in _DISCARD_PREV and nxt == ";"
                void_cast = (start >= 3 and toks[start - 1].text == ")"
                             and toks[start - 2].text == "void"
                             and toks[start - 3].text == "(")
                if not discarded and not void_cast:
                    validated = True
        if validated:
            return []
        out = []
        for line, wire in unpacks:
            if not self._suppressed(sf, "FTL007", line):
                out.append(Finding(
                    sf.path, line, "FTL007",
                    f"`{fn}` unpacks a detector `{wire}` but never observes "
                    "an `epoch_ok` verdict; stale detector messages must be "
                    "discarded, not acted on"))
        return out

    # -- stale-suppression audit --------------------------------------------
    def _stale_suppressions(self, rules: set[str]) -> list[Finding]:
        """A well-formed suppression that silenced nothing this run is rot:
        the violation it excused was fixed (or never existed), and a stale
        allow is a hole the next real finding falls through.  Only audited
        for rules that actually ran — a subset run cannot call suppressions
        of the skipped rules stale."""
        out = []
        for sf in self.sources:
            for sup in sf.suppressions:
                if (sup.rule is not None and sup.reason and not sup.used
                        and sup.rule in rules):
                    out.append(Finding(
                        sf.path, sup.line, "FTL000",
                        f"stale suppression: this ftlint:allow({sup.rule}) "
                        "silenced nothing in this run — remove it (or fix "
                        "the rule id/line it was meant to cover)"))
        return out

    # -- entry point --------------------------------------------------------
    def run(self, rules: set[str]) -> list[Finding]:
        findings: list[Finding] = []
        if "FTL001" in rules:
            findings.extend(self._check_ftl001())
        if "FTL002" in rules:
            findings.extend(self._check_ftl002())
        if "FTL003" in rules:
            findings.extend(self._check_ftl003())
        if "FTL004" in rules:
            findings.extend(self._check_ftl004())
        if "FTL007" in rules:
            findings.extend(self._check_ftl007())
        if rules & {"FTL005", "FTL006"}:
            import ftmodel  # late import: ftmodel imports this module
            findings.extend(ftmodel.build_and_check(self, rules))
        if "FTL000" in rules:
            findings.extend(self._suppression_findings())
            # After every rule has run (and marked the suppressions it hit).
            findings.extend(self._stale_suppressions(rules))
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return findings


def collect_files(roots: list[str], extra: list[str]) -> list[str]:
    exts = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")
    files: list[str] = []
    for root in roots:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(exts):
                    files.append(os.path.join(dirpath, name))
    files.extend(extra)
    return sorted(set(files))
