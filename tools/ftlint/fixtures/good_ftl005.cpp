// Clean fixture for FTL005: rank-dependent control flow that is *matched*
// (or touches no collectives at all) stays silent.
#include "api_stub.hpp"

using ftmpi::Comm;

// Both sides of the branch reach the same collective: every rank enters it.
int both_sides(const Comm& c, int my_rank) {
  int rc = 0;
  if (my_rank == 0) {
    rc = ftmpi::barrier(c);
  } else {
    rc = ftmpi::barrier(c);
  }
  return rc;
}

// Rank-guarded point-to-point is the paper's own idiom (the root
// redistributes ranks after repair); only collectives must match.
int root_sends(const Comm& c, int my_rank, double* buf) {
  int rc = 0;
  if (my_rank == 0) rc = ftmpi::send(buf, 1, 1, 0, c);
  return rc;
}

// The collective sits outside the rank branch: every rank reaches it.
int guard_then_sync(const Comm& c, int my_rank, double* buf) {
  if (my_rank == 0) {
    buf[0] = 1.0;
  }
  return ftmpi::barrier(c);
}

// A sanctioned rank-asymmetric site documents itself with the suppression
// idiom — the justification is mandatory (FTL000 enforces it).
int asymmetric_by_design(const Comm& c, int my_rank) {
  int rc = 0;
  if (my_rank == 0) {
    // ftlint:allow(FTL005 the other ranks enter this same barrier from their recovery path)
    rc = ftmpi::barrier(c);
  }
  return rc;
}
