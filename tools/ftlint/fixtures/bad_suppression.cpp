// FTL000 seeds: suppressions that do not carry their mandatory
// justification (a bare allow does NOT silence the underlying finding).
#include "api_stub.hpp"

int sloppy(ftmpi::Comm& world) {
  ftmpi::barrier(world);  // ftlint:allow(FTL001)  <- no reason  // EXPECT: FTL000 FTL001
  // ftlint:allow(FTL9 not a rule id)  // EXPECT: FTL000
  return 0;
}
