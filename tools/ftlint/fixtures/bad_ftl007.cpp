// FTL007 seeds: failure-detector wire messages consumed without validating
// the detector epoch.  Acting on a stale heartbeat or gossip message (one
// from before the sender learned of a failure, or a duplicate of news this
// rank already absorbed) corrupts the failure-knowledge state machine.
#include "api_stub.hpp"

using ftmpi::detector::GossipWire;
using ftmpi::detector::HeartbeatWire;
using ftmpi::detector::State;

// Case 1: heartbeat unpacked and acted on with no epoch_ok call at all.
void absorb_heartbeat_unchecked(State& st, const void* payload) {
  const auto w = ftmpi::detector::detail::unpack<HeartbeatWire>(payload);  // EXPECT: FTL007
  ftmpi::detector::note_heartbeat(st, w);
}

// Case 2: gossip unpacked; epoch_ok runs but its verdict is (void)-cast
// away, so the stale message is still acted on (the discard itself is an
// FTL001 on top).
void absorb_gossip_voided_verdict(State& st, const void* payload) {
  const auto w = ftmpi::detector::detail::unpack<GossipWire>(payload);  // EXPECT: FTL007
  (void)ftmpi::detector::epoch_ok(st, w);  // EXPECT: FTL001
  ftmpi::detector::note_gossip(st, w);
}

// Case 3: same, with an expression-statement discard of the verdict.
void absorb_gossip_dropped_verdict(State& st, const void* payload) {
  const auto w = ftmpi::detector::detail::unpack<GossipWire>(payload);  // EXPECT: FTL007
  ftmpi::detector::epoch_ok(st, w);  // EXPECT: FTL001
  ftmpi::detector::note_gossip(st, w);
}
