// FTL007 clean: every detector-wire unpack validates the carried epoch
// before acting, and stale messages are dropped on the floor — the repo
// idiom (src/ftmpi/detector.cpp, drain()).
#include "api_stub.hpp"

using ftmpi::detector::GossipWire;
using ftmpi::detector::HeartbeatWire;
using ftmpi::detector::State;

// Branch-guarded validation: stale heartbeats return before any state is
// touched.
int absorb_heartbeat(State& st, const void* payload) {
  const auto w = ftmpi::detector::detail::unpack<HeartbeatWire>(payload);
  if (!ftmpi::detector::epoch_ok(st, w)) return 0;  // stale: discarded
  ftmpi::detector::note_heartbeat(st, w);
  return 1;
}

// Verdict stored, then branched on — equally observed.
int absorb_gossip(State& st, const void* payload) {
  const auto w = ftmpi::detector::detail::unpack<GossipWire>(payload);
  const bool fresh = ftmpi::detector::epoch_ok(st, w);
  if (!fresh) return 0;
  ftmpi::detector::note_gossip(st, w);
  return 1;
}
