// FTL004 seed: a protocol-family function with no chaos_point hook — fault
// injection cannot reach this step, so its failure handling silently rots.
#include "api_stub.hpp"

namespace ftmpi {

int comm_agree(const Comm& c, int* flag) {  // EXPECT: FTL004
  (void)c;
  *flag = 1;
  return 0;
}

}  // namespace ftmpi
