// FTL002 seed: a raw communicator owned across an early return with a
// manual free — the early return leaks the handle.
#include "api_stub.hpp"

using namespace ftmpi::compat;

int leaky_split(const MPI_Comm& world, int color) {
  MPI_Comm part;  // EXPECT: FTL002
  if (MPI_Comm_split(world, color, 0, &part) != 0) return 1;
  if (color == 0) return 2;  // leaks `part`
  return MPI_Comm_free(&part);
}
