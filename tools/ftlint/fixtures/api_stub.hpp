#pragma once
// Miniature stand-in for src/ftmpi/api.hpp + src/common/annotations.hpp so
// the fixture corpus is self-contained: ftlint derives its FTL001 registry
// and FTL003 hot-roots from the FTR_NODISCARD / FTR_HOT markers it finds
// under the scanned root, which for the fixture suite is this directory.
// Fixtures are linted, never compiled.

#define FTR_NODISCARD [[nodiscard]]
#define FTR_HOT [[gnu::hot]]

namespace ftmpi {

struct Comm {};
struct Request {};
struct Status {};

void chaos_point(const char* where);

FTR_NODISCARD int send(const double* buf, int count, int dest, int tag, const Comm& c);
FTR_NODISCARD int recv(double* buf, int count, int src, int tag, const Comm& c, Status* st);
FTR_NODISCARD int isend(const double* buf, int count, int dest, int tag, const Comm& c,
                        Request* req);
FTR_NODISCARD int wait(Request* req, Status* st);
FTR_NODISCARD int barrier(const Comm& c);
FTR_NODISCARD int bcast_bytes(void* buf, unsigned long n, int root, const Comm& c);
FTR_NODISCARD int comm_revoke(const Comm& c);
FTR_NODISCARD int comm_shrink(const Comm& c, Comm* out);
FTR_NODISCARD int comm_agree(const Comm& c, int* flag);
FTR_NODISCARD int comm_free(Comm* c);
// Sanctioned salvage paths: legal on a revoked communicator.
FTR_NODISCARD int iprobe_buffered(const Comm& c, int tag, int* flag, Status* st);
FTR_NODISCARD int recv_buffered(double* buf, int count, int src, int tag,
                                const Comm& c, Status* st);

// Failure-detector wire formats (FTL007): consumers must validate the
// carried epoch with epoch_ok() before acting.
namespace detector {
struct State {};
struct HeartbeatWire {
  int from = -1;
  unsigned long long epoch = 0;
};
struct GossipWire {
  int dead = -1;
  unsigned long long epoch = 0;
};
FTR_NODISCARD bool epoch_ok(const State& st, const HeartbeatWire& w);
FTR_NODISCARD bool epoch_ok(const State& st, const GossipWire& w);
void note_heartbeat(State& st, const HeartbeatWire& w);
void note_gossip(State& st, const GossipWire& w);
namespace detail {
template <class T>
T unpack(const void* payload);
}  // namespace detail
}  // namespace detector

namespace compat {
using MPI_Comm = Comm;
using MPI_Info = int;
FTR_NODISCARD int MPI_Comm_free(MPI_Comm* c);
FTR_NODISCARD int MPI_Comm_split(const MPI_Comm& c, int color, int key, MPI_Comm* out);
int MPI_Info_free(MPI_Info* info);
}  // namespace compat

}  // namespace ftmpi

namespace ftr::core {
class CommGuard {
 public:
  explicit CommGuard(ftmpi::compat::MPI_Comm* c);
  ftmpi::compat::MPI_Comm release();
};
}  // namespace ftr::core
