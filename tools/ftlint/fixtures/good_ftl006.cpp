// Clean fixture for FTL006: the sanctioned lifecycle idioms of the repair
// protocol must stay silent.
#include "api_stub.hpp"

using ftmpi::Comm;

// The revoke-and-bail idiom: the revoke lives on an error path that exits,
// so the fall-through path still holds an active handle.
int revoke_and_bail(Comm& c, double* buf) {
  int rc = ftmpi::send(buf, 1, 0, 0, c);
  if (rc != 0) {
    rc = ftmpi::comm_revoke(c);
    return rc;
  }
  return ftmpi::barrier(c);
}

// After a fall-through revoke, only the sanctioned salvage/repair set runs:
// buffered probes, buffered receives, shrink, free.
int revoke_then_salvage(Comm& c, double* buf) {
  int rc = ftmpi::comm_revoke(c);
  int have = 0;
  ftmpi::Status st;
  rc = ftmpi::iprobe_buffered(c, 0, &have, &st);
  if (have != 0) rc = ftmpi::recv_buffered(buf, 1, 0, 0, c, &st);
  Comm shrunk;
  rc = ftmpi::comm_shrink(c, &shrunk);
  rc = ftmpi::comm_free(&shrunk);
  return rc;
}

// A created intermediate owned by a guard: every return path frees it.
int guarded_create(const ftmpi::compat::MPI_Comm& world, int color) {
  ftmpi::compat::MPI_Comm tmp;
  int rc = ftmpi::compat::MPI_Comm_split(world, color, 0, &tmp);
  if (rc != 0) return rc;
  ftr::core::CommGuard guard(&tmp);
  return 0;
}

// Reassignment resets the lifecycle: the revoked handle is replaced by the
// repaired one before the next use.
int repair_in_place(Comm& c, Comm& repaired) {
  int rc = ftmpi::comm_revoke(c);
  c = repaired;
  rc = ftmpi::barrier(c);
  return rc;
}

// A created handle stored into the caller's slot has an owner.
int create_into(const Comm& c, Comm* out) {
  Comm fresh;
  int rc = ftmpi::comm_shrink(c, &fresh);
  if (rc != 0) return rc;
  *out = fresh;
  return 0;
}
