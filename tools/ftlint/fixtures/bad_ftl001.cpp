// FTL001 seeds: discarded error-returning calls.  Every `// EXPECT:` marker
// names the rule the fixture driver must see reported on that exact line.
#include "api_stub.hpp"

namespace {

int drop_on_floor(ftmpi::Comm& world) {
  double buf[4] = {0, 0, 0, 0};
  ftmpi::send(buf, 4, 1, 7, world);  // EXPECT: FTL001
  int flag = 0;
  if (ftmpi::comm_agree(world, &flag) != 0) return 1;  // observed: no finding
  ftmpi::barrier(world);  // EXPECT: FTL001
  return flag;
}

int void_cast_dodge(ftmpi::Comm& world) {
  (void)ftmpi::barrier(world);  // EXPECT: FTL001
  return ftmpi::barrier(world);  // returned: no finding
}

int qualified_discard(ftmpi::Comm& world) {
  ::ftmpi::barrier(world);  // EXPECT: FTL001
  const int rc = ::ftmpi::barrier(world);  // assigned: no finding
  return rc;
}

}  // namespace
