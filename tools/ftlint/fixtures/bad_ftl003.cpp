// FTL003 seed: an FTR_HOT kernel that reaches container growth through a
// helper — the violation is transitive and reported at the allocation site.
#include <vector>

#include "api_stub.hpp"

namespace {

void accumulate(std::vector<double>* out, double v) {
  out->push_back(v);  // EXPECT: FTL003
}

FTR_HOT void hot_sweep(const double* row, int n, std::vector<double>* out) {
  for (int i = 0; i < n; ++i) accumulate(out, row[i] * 0.5);
}

FTR_HOT double hot_direct(int n) {
  double* scratch = new double[8];  // EXPECT: FTL003
  double acc = 0;
  for (int i = 0; i < n && i < 8; ++i) acc += scratch[i];
  delete[] scratch;
  return acc;
}

}  // namespace
