// FTL000 stale-suppression seed: a well-formed `ftlint:allow` whose finding
// no longer exists.  Suppression rot is a hole the next real finding falls
// through, so an allow that silenced nothing this run is itself reported.
#include "api_stub.hpp"

int tidy(ftmpi::Comm& world) {
  // ftlint:allow(FTL001 historical: this call used to drop its result)  // EXPECT: FTL000
  const int rc = ftmpi::barrier(world);
  return rc;
}
