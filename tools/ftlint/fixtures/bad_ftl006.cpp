// FTL006 seeds: communicator-lifecycle violations — use-after-revoke
// outside the sanctioned salvage paths, double-free, use-after-free, and a
// created handle that escapes its function without an owner.
#include "api_stub.hpp"

using ftmpi::Comm;

// Case 1: the same rank revokes, then posts a plain recv on the revoked
// communicator (only iprobe_buffered/recv_buffered may salvage from it).
int revoke_then_use(Comm& dead, double* buf) {
  int rc = ftmpi::comm_revoke(dead);
  ftmpi::Status st;
  rc = ftmpi::recv(buf, 1, 0, 0, dead, &st);  // EXPECT: FTL006
  return rc;
}

// Case 2: two frees of the same communicator.
int free_twice(const ftmpi::compat::MPI_Comm& world) {
  ftmpi::compat::MPI_Comm sub;
  int rc = ftmpi::compat::MPI_Comm_split(world, 0, 0, &sub);
  rc = ftmpi::compat::MPI_Comm_free(&sub);
  rc = ftmpi::compat::MPI_Comm_free(&sub);  // EXPECT: FTL006
  return rc;
}

// Case 3: the split product never gets an owner — not freed, not
// guard-scoped, not returned, not stored.
int leak_split(const ftmpi::compat::MPI_Comm& world) {
  ftmpi::compat::MPI_Comm sub;
  int rc = ftmpi::compat::MPI_Comm_split(world, 0, 0, &sub);  // EXPECT: FTL006
  return rc;
}

// Case 4: interprocedural — the helper revokes its parameter; the caller
// keeps using the handle as if it were alive.
void kill_quietly(const Comm& doomed) {
  int rc = ftmpi::comm_revoke(doomed);
  if (rc != 0) return;
}

int use_after_helper_revoke(const Comm& c) {
  kill_quietly(c);
  int rc = ftmpi::barrier(c);  // EXPECT: FTL006
  return rc;
}

// Case 5: use of a handle after it was freed.
int use_after_free(const ftmpi::compat::MPI_Comm& world) {
  ftmpi::compat::MPI_Comm sub;
  int rc = ftmpi::compat::MPI_Comm_split(world, 0, 0, &sub);
  rc = ftmpi::compat::MPI_Comm_free(&sub);
  rc = ftmpi::barrier(sub);  // EXPECT: FTL006
  return rc;
}
