// FTL005 seeds: collectives guarded by rank-dependent branches while the
// other ranks of the communicator take a collective-free path — the ranks
// that entered the collective wait forever for peers that never arrive.
#include "api_stub.hpp"

using ftmpi::Comm;

// Case 1: direct — only rank 0 enters the barrier.
int sync_if_root(const Comm& c, int my_rank) {
  int rc = 0;
  if (my_rank == 0) {
    rc = ftmpi::barrier(c);  // EXPECT: FTL005
  }
  return rc;
}

// Case 2: early-exit guard — the non-root ranks return before the agree, so
// rank 0 is alone in it.
int agree_after_guard(const Comm& c, int my_rank) {
  if (my_rank != 0) return 0;
  int flag = 1;
  int rc = ftmpi::comm_agree(c, &flag);  // EXPECT: FTL005
  return rc;
}

// Case 3: interprocedural — the rank-guarded helper reaches bcast_bytes two
// frames down; the finding lands on the guarded call site.
int deep_sync(double* v, const Comm& c) {
  return ftmpi::bcast_bytes(v, 8, 0, c);
}

int notify_if_root(double* v, const Comm& c, int wrank) {
  int rc = 0;
  if (wrank == 0) {
    rc = deep_sync(v, c);  // EXPECT: FTL005
  }
  return rc;
}

// Case 4: the collective hides on the else side.
int split_roles(const Comm& c, int my_rank) {
  if (my_rank == 0) {
    return 0;
  } else {
    return ftmpi::barrier(c);  // EXPECT: FTL005
  }
}
