// Clean fixture: every rule's happy path in one file.  Must produce zero
// findings.
#include <vector>

#include "api_stub.hpp"

using namespace ftmpi::compat;

namespace ftmpi {

// FTL004: the agree family definition carries its chaos hook.
int comm_shrink(const Comm& c, Comm* out) {
  chaos_point("shrink");
  *out = c;
  return 0;
}

}  // namespace ftmpi

// FTL001: results observed — branched, returned, assigned, passed on.
int observed(ftmpi::Comm& world) {
  double buf[2] = {0, 0};
  if (ftmpi::send(buf, 2, 1, 3, world) != 0) return 1;
  const int rc = ftmpi::barrier(world);
  return rc == 0 ? ftmpi::comm_revoke(world) : rc;
}

// FTL002: the guard owns the handle, so the early return cannot leak it.
int guarded_split(const MPI_Comm& world, int color) {
  MPI_Comm part;
  if (MPI_Comm_split(world, color, 0, &part) != 0) return 1;
  ftr::core::CommGuard guard(&part);
  if (color == 0) return 2;  // guard frees `part`
  return 0;
}

// FTL003: a hot kernel that writes into caller-provided storage only.
FTR_HOT void hot_blend(const double* a, const double* b, double* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = 0.5 * (a[i] + b[i]);
}
