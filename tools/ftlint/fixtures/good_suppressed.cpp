// Clean fixture: findings silenced by well-formed suppressions — each names
// its rule and carries a justification, so nothing is reported.
#include <vector>

#include "api_stub.hpp"

int tolerated(ftmpi::Comm& world) {
  // ftlint:allow(FTL001 chaos probe fires regardless; result deliberately unobserved)
  ftmpi::barrier(world);
  return 0;
}

namespace {
std::vector<double>& scratch() {
  static thread_local std::vector<double> s;
  return s;
}
}  // namespace

FTR_HOT void hot_with_warmup(const double* row, int n) {
  auto& s = scratch();
  // ftlint:allow(FTL003 warm-up growth of persistent thread_local scratch)
  if (static_cast<int>(s.size()) < n) s.resize(static_cast<unsigned>(n));
  for (int i = 0; i < n; ++i) s[static_cast<unsigned>(i)] = row[i];
}
