#!/usr/bin/env python3
"""Fixture-corpus test for ftlint (registered with ctest as ftlint_fixtures).

Every seeded violation in tools/ftlint/fixtures/ carries an inline
`// EXPECT: FTLxxx [FTLyyy ...]` marker on the line the checker must report.
This driver runs the lexer engine over the corpus and demands an *exact* set
match between expected and actual (file, line, rule) triples — a missed seed,
a wrong line number, a wrong rule id, or any finding in a `good_*` fixture
all fail.  It then re-runs via the CLI to pin the exit-code contract:
1 for the full corpus (findings), 0 for the clean fixtures alone.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
sys.path.insert(0, HERE)

from ftlint_lex import Engine, RULE_IDS, collect_files  # noqa: E402

_EXPECT_RE = re.compile(r"EXPECT:\s*((?:FTL\d{3}[\s,]*)+)")


def expected_findings(files):
    """Parse `// EXPECT: FTLxxx ...` markers into (relpath, line, rule)."""
    exp = set()
    for path in files:
        rel = os.path.relpath(path, FIXTURES)
        with open(path, encoding="utf-8") as fh:
            for lineno, text in enumerate(fh, start=1):
                m = _EXPECT_RE.search(text)
                if not m:
                    continue
                for rule in re.findall(r"FTL\d{3}", m.group(1)):
                    assert rule in RULE_IDS, f"{rel}:{lineno}: bad marker {rule}"
                    exp.add((rel, lineno, rule))
    return exp


def main():
    files = collect_files([FIXTURES], [])
    if not files:
        print(f"FAIL: no fixtures found under {FIXTURES}")
        return 1
    expected = expected_findings(files)
    if not expected:
        print("FAIL: fixture corpus has no EXPECT markers — nothing is tested")
        return 1

    engine = Engine(files)
    actual = {
        (os.path.relpath(f.path, FIXTURES), f.line, f.rule)
        for f in engine.run(set(RULE_IDS))
    }

    missed = sorted(expected - actual)
    spurious = sorted(actual - expected)
    for rel, line, rule in missed:
        print(f"FAIL: seeded violation not reported: {rel}:{line}: {rule}")
    for rel, line, rule in spurious:
        print(f"FAIL: unexpected finding: {rel}:{line}: {rule}")

    # good_* fixtures must be silent — already implied by the exact-set
    # check, but assert it separately so the failure message is direct.
    noisy_good = sorted({t for t in actual if t[0].startswith("good_")})
    for rel, line, rule in noisy_good:
        print(f"FAIL: clean fixture flagged: {rel}:{line}: {rule}")

    ok = not missed and not spurious and not noisy_good

    # CLI contract: findings => exit 1; clean tree => exit 0.
    cli = os.path.join(HERE, "ftlint.py")
    full = subprocess.run(
        [sys.executable, cli, "--engine", "lex", "--root", FIXTURES],
        capture_output=True, text=True)
    if full.returncode != 1:
        print(f"FAIL: CLI over full corpus: expected exit 1, got "
              f"{full.returncode}\n{full.stdout}{full.stderr}")
        ok = False
    good_files = [f for f in files
                  if os.path.basename(f).startswith(("good_", "api_stub"))]
    clean = subprocess.run(
        [sys.executable, cli, "--engine", "lex", *good_files],
        capture_output=True, text=True)
    if clean.returncode != 0:
        print(f"FAIL: CLI over clean fixtures: expected exit 0, got "
              f"{clean.returncode}\n{clean.stdout}{clean.stderr}")
        ok = False

    # Exit code 2 = usage or internal error, strictly distinct from both
    # "clean" and "findings".  Three seeds: no inputs at all, an unknown
    # rule id, and a deliberately crashed engine (FTLINT_INJECT_CRASH) —
    # the last one pins the "a dead checker must not look clean" half of
    # the contract.
    import tempfile
    for label, argv, env in (
        ("no inputs", [sys.executable, cli], None),
        ("empty root", [sys.executable, cli, "--root",
                        tempfile.mkdtemp(prefix="ftlint_empty_")], None),
        ("unknown rule", [sys.executable, cli, "--rules", "FTL999",
                          *good_files], None),
        ("crashed engine", [sys.executable, cli, "--engine", "lex",
                            "--root", FIXTURES],
         {**os.environ, "FTLINT_INJECT_CRASH": "1"}),
    ):
        r = subprocess.run(argv, capture_output=True, text=True, env=env)
        if r.returncode != 2:
            print(f"FAIL: CLI ({label}): expected exit 2, got "
                  f"{r.returncode}\n{r.stdout}{r.stderr}")
            ok = False

    # --format=github: every finding becomes a ::error annotation carrying
    # the same (file, line, rule) triple the human format reports.
    gh = subprocess.run(
        [sys.executable, cli, "--engine", "lex", "--format", "github",
         "--root", FIXTURES],
        capture_output=True, text=True)
    gh_re = re.compile(r"^::error file=(.+),line=(\d+),title=(FTL\d{3})::")
    gh_triples = set()
    gh_ok = gh.returncode == 1
    for line in gh.stdout.splitlines():
        if not line.strip():
            continue
        m = gh_re.match(line)
        if not m:
            print(f"FAIL: --format=github produced a non-annotation line: "
                  f"{line!r}")
            gh_ok = False
            continue
        gh_triples.add((os.path.relpath(m.group(1), FIXTURES),
                        int(m.group(2)), m.group(3)))
    if gh_triples != expected:
        print(f"FAIL: --format=github triples diverge from the corpus: "
              f"missing {sorted(expected - gh_triples)}, "
              f"spurious {sorted(gh_triples - expected)}")
        gh_ok = False
    if not gh_ok:
        ok = False

    if ok:
        print(f"PASS: {len(expected)} seeded violations reported exactly, "
              f"clean fixtures silent, CLI exit codes correct "
              f"({len(files)} fixture files)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
