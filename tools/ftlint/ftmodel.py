"""ftmodel — interprocedural effect-summary layer for ftlint (FTL005/FTL006).

Where ftlint_lex's FTL001-FTL004 are single-site rules, this layer extracts a
per-function *effect summary* from the token stream — the ftmpi collective
calls a function (transitively) performs, and what it does to each Comm-typed
parameter (revoke / free / unsanctioned use) — and stitches the summaries
through the same name-based call graph FTL003 walks.  Two whole-call-chain
rules are enforced on top:

  FTL005  collective matching: a collective (`agree`/`bcast`/`allreduce`/
          `barrier`/`scatter`/... or any local function that transitively
          reaches one) that executes only under a rank-dependent branch,
          while the other ranks take a collective-free path, deadlocks the
          ranks that did enter the collective.  Both guard shapes are
          modelled: `if (rank-cond) { ...collective... }` with a
          collective-free else/fall-through, and the early-exit idiom
          `if (rank-cond) return;` followed by collectives the exiting
          ranks never reach.
  FTL006  communicator lifecycle: each handle moves created -> active ->
          revoked -> freed.  After a revoke (direct, or via a callee whose
          summary revokes that parameter) only the sanctioned salvage and
          repair operations (`comm_shrink`/`comm_agree`/`comm_free`/
          `iprobe_buffered`/`recv_buffered`/failure-ack) may touch the
          handle; `comm_free` twice on the same handle is a double-free; a
          handle populated by a creator (`comm_split`/`comm_dup`/
          `comm_shrink`/`comm_spawn_multiple`/`intercomm_merge`) must leave
          the function with an owner — freed, guard-scoped, returned,
          stored, or handed to another function.

The analysis is deliberately path-insensitive except for one idiom the
repair protocol uses everywhere: a revoke/free inside a conditional block
that exits (`return`/`break`/`continue`/`throw`/abort) before the block
closes is confined to that block — the fall-through path still holds an
active handle.  A conditional revoke that *falls through* poisons the rest
of the function (any later unsanctioned use may run on a revoked comm).
"""

from __future__ import annotations

import dataclasses

import ftlint_lex
from ftlint_lex import Finding, SourceFile, _is_name

# -- registries (names mirror src/ftmpi/api.hpp + mpi_compat.hpp) -----------

#: Operations in which every rank of the communicator must participate.
COLLECTIVES = {
    "barrier", "bcast", "bcast_bytes", "gather", "gather_bytes", "gatherv",
    "allgather", "reduce", "allreduce", "scatter", "scatter_bytes",
    "scatterv_bytes", "comm_agree", "comm_shrink", "comm_split", "comm_dup",
    "comm_spawn_multiple", "intercomm_merge",
    "MPI_Barrier", "MPI_Bcast", "MPI_Allreduce", "MPI_Reduce", "MPI_Gather",
    "MPI_Gatherv", "MPI_Scatter", "MPI_Allgather", "MPI_Comm_split",
    "MPI_Comm_dup", "MPI_Comm_spawn_multiple", "MPI_Intercomm_merge",
    "OMPI_Comm_agree", "OMPI_Comm_shrink",
}

#: Operations that are legal on a revoked communicator: the ULFM repair set
#: plus the buffered salvage paths (PR 2) and pure local accessors.
SANCTIONED = {
    "comm_revoke", "comm_shrink", "comm_agree", "comm_free",
    "comm_failure_ack", "comm_failure_get_acked", "comm_set_errhandler",
    "iprobe_buffered", "recv_buffered", "finish", "error_string",
    "set_parent",
    "OMPI_Comm_revoke", "OMPI_Comm_shrink", "OMPI_Comm_agree",
    "OMPI_Comm_failure_ack", "OMPI_Comm_failure_get_acked",
    "MPI_Comm_free", "MPI_Comm_rank", "MPI_Comm_size", "MPI_Comm_group",
    "MPI_Comm_set_errhandler", "MPI_Error_string",
}

#: Non-sanctioned communicator operations: using a revoked/freed handle in
#: any of these is an FTL006 finding.
COMM_OPS = {
    "send", "recv", "send_bytes", "recv_bytes", "isend", "irecv",
    "sendrecv_bytes", "iprobe", "probe",
    "MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Sendrecv",
    "MPI_Iprobe", "MPI_Probe",
} | COLLECTIVES

REVOKERS = {"comm_revoke", "OMPI_Comm_revoke"}
FREERS = {"comm_free", "MPI_Comm_free"}

#: Out-parameter creators: `&h` passed here puts `h` in the `created` state,
#: which demands an owner before the function ends.
CREATORS = {
    "comm_split", "comm_dup", "comm_shrink", "comm_spawn_multiple",
    "intercomm_merge",
    "MPI_Comm_split", "MPI_Comm_dup", "OMPI_Comm_shrink",
    "MPI_Comm_spawn_multiple", "MPI_Intercomm_merge",
}

#: RAII owners: handing `&h` to one of these counts as ownership.
GUARDS = {"CommGuard"}

_COMM_TYPES = {"Comm", "MPI_Comm"}
_JUMPS = {"return", "break", "continue", "throw", "goto"}


def _rank_dependent(tokens) -> bool:
    """A condition is rank-dependent when any identifier in it names a rank
    (`rank`, `wrank`, `new_rank`, a `.rank()` member call, ...)."""
    return any(_is_name(t.text) and "rank" in t.text.lower() for t in tokens)


def _chain_at(toks, i: int) -> tuple[str, int]:
    """Parse a dotted handle expression `a.b->c` starting at identifier i;
    return (normalized "a.b.c", index just past the chain)."""
    parts = [toks[i].text]
    k = i + 1
    while (k + 1 < len(toks) and toks[k].text in (".", "->")
           and _is_name(toks[k + 1].text)):
        parts.append(toks[k + 1].text)
        k += 2
    return ".".join(parts), k


def _arg_segments(sf: SourceFile, open_idx: int) -> list[tuple[int, int]]:
    """Token ranges [start, end) of the top-level arguments of the call whose
    `(` is at open_idx."""
    toks = sf.tokens
    close = sf.match_paren(open_idx)
    segs, depth, start = [], 0, open_idx + 1
    for k in range(open_idx + 1, close):
        t = toks[k].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == "," and depth == 0:
            segs.append((start, k))
            start = k + 1
    if close > open_idx + 1:
        segs.append((start, close))
    return segs


def _seg_chain(toks, seg: tuple[int, int]) -> str | None:
    """The handle expression of an argument, if the argument is one: strips a
    leading `&`/`*` and requires the rest to be a pure dotted chain."""
    a, b = seg
    if a < b and toks[a].text in ("&", "*"):
        a += 1
    if a >= b or not _is_name(toks[a].text):
        return None
    chain, end = _chain_at(toks, a)
    return chain if end == b else None


def _call_at(sf: SourceFile, i: int) -> str | None:
    """Name of the free-function call at token i (member calls excluded)."""
    toks = sf.tokens
    if (i + 1 < len(toks) and toks[i + 1].text == "("
            and _is_name(toks[i].text)
            and (i == 0 or toks[i - 1].text not in (".", "->"))):
        return toks[i].text
    return None


def _stmt_first_token(toks, j: int, lo: int) -> str | None:
    """First token of the statement that ends at toks[j] (a `;`)."""
    k = j - 1
    while k >= lo and toks[k].text not in (";", "{", "}"):
        k -= 1
    return toks[k + 1].text if k + 1 <= j - 1 else None


def _block_exits(sf: SourceFile, open_idx: int, close_idx: int) -> bool:
    """True when the block's last statement is a jump (or an abort call), so
    the fall-through path never sees the block's effects."""
    toks = sf.tokens
    k = close_idx - 1
    if k <= open_idx or toks[k].text != ";":
        return False
    first = _stmt_first_token(toks, k, open_idx)
    if first in _JUMPS:
        return True
    # abort_self(); / std::abort(); / abort();
    s = k - 1
    while s > open_idx and toks[s].text not in (";", "{", "}"):
        if toks[s].text in ("abort", "abort_self"):
            return True
        s -= 1
    return False


def _prev_cond_kind(sf: SourceFile, brace_idx: int) -> bool:
    """True when the `{` at brace_idx opens an `if`/`else` body."""
    toks = sf.tokens
    p = brace_idx - 1
    if p >= 0 and toks[p].text == "else":
        return True
    if p < 0 or toks[p].text != ")":
        return False
    depth = 0
    for k in range(p, -1, -1):
        t = toks[k].text
        if t == ")":
            depth += 1
        elif t == "(":
            depth -= 1
            if depth == 0:
                return k > 0 and toks[k - 1].text == "if"
    return False


def _stmt_end(sf: SourceFile, i: int) -> int:
    """Index just past the statement starting at token i.  Handles brace
    blocks, `if`/`else` chains and plain `...;` statements."""
    toks = sf.tokens
    n = len(toks)
    if i >= n:
        return n
    t = toks[i].text
    if t == "{":
        depth = 0
        for k in range(i, n):
            if toks[k].text == "{":
                depth += 1
            elif toks[k].text == "}":
                depth -= 1
                if depth == 0:
                    return k + 1
        return n
    if t in ("if", "while", "for", "switch"):
        k = i + 1
        if k < n and toks[k].text == "(":
            k = sf.match_paren(k) + 1
        end = _stmt_end(sf, k)
        if t == "if" and end < n and toks[end].text == "else":
            return _stmt_end(sf, end + 1)
        return end
    if t == "else":
        return _stmt_end(sf, i + 1)
    if t == "do":
        end = _stmt_end(sf, i + 1)  # body
        while end < n and toks[end].text != ";":
            end += 1
        return end + 1
    depth = 0
    for k in range(i, n):
        tk = toks[k].text
        if tk in ("(", "[", "{"):
            depth += 1
        elif tk in (")", "]", "}"):
            depth -= 1
        elif tk == ";" and depth == 0:
            return k + 1
    return n


# -- per-function effect summaries ------------------------------------------

@dataclasses.dataclass
class FnSummary:
    """What calling this function does, as seen from a call site."""
    comm_params: dict[int, str] = dataclasses.field(default_factory=dict)
    revokes: set[int] = dataclasses.field(default_factory=set)   # arg positions
    frees: set[int] = dataclasses.field(default_factory=set)
    uses: dict[int, str] = dataclasses.field(default_factory=dict)  # pos -> op
    collective: str | None = None  # call chain ending in a collective


class Model:
    """Effect summaries for every function definition the engine loaded,
    iterated to a fixed point over the call graph."""

    _ROUNDS = 4  # call-chain depth the repo needs is 3 (reconstruct->repair->repair_once)

    def __init__(self, engine: "ftlint_lex.Engine"):
        self.engine = engine
        # (name, sf, name_idx, b0, b1) for every definition, in file order.
        self.functions: list[tuple[str, SourceFile, int, int, int]] = []
        for sf in engine.sources:
            for name, name_idx, b0, b1 in ftlint_lex._iter_functions(sf):
                self.functions.append((name, sf, name_idx, b0, b1))
        self.summaries: dict[str, FnSummary] = {}
        for _ in range(self._ROUNDS):
            nxt: dict[str, FnSummary] = {}
            for name, sf, name_idx, b0, b1 in self.functions:
                s, _ = self._scan(name, sf, name_idx, b0, b1, emit=False)
                if name in nxt:  # overloads: merge conservatively
                    prev = nxt[name]
                    prev.revokes |= s.revokes
                    prev.frees |= s.frees
                    for p, op in s.uses.items():
                        prev.uses.setdefault(p, op)
                    prev.collective = prev.collective or s.collective
                    prev.comm_params.update(s.comm_params)
                else:
                    nxt[name] = s
            if self._stable(nxt):
                self.summaries = nxt
                break
            self.summaries = nxt

    def _stable(self, nxt: dict[str, FnSummary]) -> bool:
        if set(nxt) != set(self.summaries):
            return False
        for name, s in nxt.items():
            o = self.summaries[name]
            if (s.revokes, s.frees, s.collective) != (o.revokes, o.frees, o.collective):
                return False
            if set(s.uses) != set(o.uses):
                return False
        return True

    def _comm_params(self, sf: SourceFile, name_idx: int) -> dict[int, str]:
        """Positions and names of Comm-typed parameters (by value, reference
        or pointer — `CommContext` etc. do not match: exact token match)."""
        toks = sf.tokens
        out: dict[int, str] = {}
        for pos, (a, b) in enumerate(_arg_segments(sf, name_idx + 1)):
            if not any(toks[k].text in _COMM_TYPES for k in range(a, b)):
                continue
            name = None
            for k in range(b - 1, a - 1, -1):
                if _is_name(toks[k].text):
                    name = toks[k].text
                    break
            if name and name not in _COMM_TYPES:
                out[pos] = name
        return out

    # -- the one scanner behind both the summaries and the FTL006 findings --
    def _scan(self, fn_name: str, sf: SourceFile, name_idx: int, b0: int,
              b1: int, emit: bool) -> tuple[FnSummary, list[Finding]]:
        toks = sf.tokens
        summary = FnSummary(comm_params=self._comm_params(sf, name_idx))
        param_pos = {v: k for k, v in summary.comm_params.items()}
        findings: list[Finding] = []

        # chain -> ("revoked"|"freed", line, via-note)
        states: dict[str, tuple[str, int, str]] = {}
        block_stack: list[tuple[int, dict | None]] = []
        locals_decl: dict[str, int] = {}
        created: dict[str, int] = {}
        owned: set[str] = set()

        def note_param_effect(chain: str, kind: str, op: str) -> None:
            pos = param_pos.get(chain)
            if pos is None:
                return
            if kind == "revoke":
                summary.revokes.add(pos)
            elif kind == "free":
                summary.frees.add(pos)
            elif kind == "use" and pos not in summary.uses and chain not in states:
                # Only a use of a still-active param is a caller-visible
                # effect; a use after the function's own revoke is the
                # function's own finding, reported in its body.
                summary.uses[pos] = op

        def report(line: int, msg: str) -> None:
            if emit and not self.engine._suppressed(sf, "FTL006", line):
                findings.append(Finding(sf.path, line, "FTL006", msg))

        def check_use(chain: str, op: str, line: int, via: str = "") -> None:
            st = states.get(chain)
            note_param_effect(chain, "use", op)
            if st is None:
                return
            kind, at, how = st
            via_note = f" (via `{via}`)" if via else ""
            if kind == "revoked":
                report(line,
                       f"`{chain}` is used by `{op}`{via_note} after being "
                       f"revoked at line {at}{how}; only the sanctioned "
                       "salvage/repair operations (comm_shrink, comm_agree, "
                       "comm_free, iprobe_buffered, recv_buffered) may touch "
                       "a revoked communicator")
            else:
                report(line,
                       f"`{chain}` is used by `{op}`{via_note} after being "
                       f"freed at line {at}{how}")

        def do_revoke(chain: str, line: int, how: str = "") -> None:
            note_param_effect(chain, "revoke", "comm_revoke")
            states[chain] = ("revoked", line, how)

        def do_free(chain: str, line: int, how: str = "") -> None:
            note_param_effect(chain, "free", "comm_free")
            st = states.get(chain)
            if st is not None and st[0] == "freed":
                report(line,
                       f"`{chain}` is freed twice (first free at line "
                       f"{st[1]}{st[2]}); the second free releases a handle "
                       "this function no longer owns")
            states[chain] = ("freed", line, how)
            owned.add(chain)

        i = b0 + 1
        while i < b1:
            t = toks[i].text

            if t == "{":
                snap = dict(states) if _prev_cond_kind(sf, i) else None
                block_stack.append((i, snap))
                i += 1
                continue
            if t == "}":
                if block_stack:
                    open_idx, snap = block_stack.pop()
                    if snap is not None and _block_exits(sf, open_idx, i):
                        # The divergent path exits the function/loop before
                        # the block closes: its revokes/frees never reach
                        # the fall-through path.
                        states.clear()
                        states.update(snap)
                i += 1
                continue

            # Local handle declaration: `Comm h;` / `MPI_Comm h = ...`.
            if (t in _COMM_TYPES and i + 2 < b1 and _is_name(toks[i + 1].text)
                    and toks[i + 2].text in (";", "=", "{")):
                locals_decl[toks[i + 1].text] = toks[i + 1].line
                states.pop(toks[i + 1].text, None)
                i += 2
                continue

            callee = _call_at(sf, i)
            if callee is not None:
                line = toks[i].line
                segs = _arg_segments(sf, i + 1)
                chains = [_seg_chain(toks, s) for s in segs]

                if callee in REVOKERS:
                    if chains and chains[0]:
                        do_revoke(chains[0], line)
                elif callee in FREERS:
                    if chains and chains[0]:
                        do_free(chains[0], line)
                elif callee in GUARDS:
                    for c in chains:
                        if c:
                            owned.add(c)
                elif callee in SANCTIONED:
                    # Repair/salvage set: legal on any handle.  Creators in
                    # this set (comm_shrink) still populate their out-arg.
                    if callee in CREATORS:
                        for s_, c in zip(segs, chains):
                            if c and toks[s_[0]].text == "&":
                                created.setdefault(c, line)
                                states.pop(c, None)
                elif callee in COMM_OPS:
                    for c in chains:
                        if c:
                            check_use(c, callee, line)
                    if callee in CREATORS:
                        for s_, c in zip(segs, chains):
                            if c and toks[s_[0]].text == "&":
                                created.setdefault(c, line)
                                states.pop(c, None)
                elif callee in self.summaries and self.summaries[callee].comm_params:
                    cs = self.summaries[callee]
                    for pos, c in enumerate(chains):
                        if c is None:
                            continue
                        if pos in cs.uses:
                            check_use(c, cs.uses[pos], line, via=callee)
                        if pos in cs.revokes:
                            do_revoke(c, line, f" (inside `{callee}`)")
                        if pos in cs.frees:
                            do_free(c, line, f" (inside `{callee}`)")
                        owned.add(c)  # callee received the handle: it has an owner
                else:
                    # Unknown call: any handle argument escapes (the callee
                    # may store or free it) — by value or by address.
                    for c in chains:
                        if c:
                            owned.add(c)

            # Statement-level reassignment / escape via assignment & return.
            # `*out = h` (store through an out-pointer) counts too.
            prev = toks[i - 1].text if i > b0 else "{"
            if (prev == "*" and i >= b0 + 2
                    and toks[i - 2].text in (";", "{", "}")):
                prev = toks[i - 2].text
            if _is_name(t) and prev in (";", "{", "}"):
                chain, end = _chain_at(toks, i)
                if (end < b1 and toks[end].text == "="
                        and (end + 1 >= b1 or toks[end + 1].text != "=")):
                    states.pop(chain, None)  # reassigned: fresh handle
                    stop = end + 1
                    while stop < b1 and toks[stop].text != ";":
                        if _is_name(toks[stop].text):
                            c2, stop2 = _chain_at(toks, stop)
                            if c2 in created or c2 in locals_decl:
                                owned.add(c2)  # stored somewhere: has an owner
                            stop = stop2
                            continue
                        stop += 1
            if t == "return":
                k = i + 1
                while k < b1 and toks[k].text != ";":
                    if _is_name(toks[k].text):
                        c2, k = _chain_at(toks, k)
                        owned.add(c2)
                        continue
                    k += 1
            i += 1

        if emit:
            for chain, line in created.items():
                if chain in owned:
                    continue
                if not self.engine._suppressed(sf, "FTL006", line):
                    findings.append(Finding(
                        sf.path, line, "FTL006",
                        f"communicator `{chain}` created here escapes "
                        f"`{fn_name}` without an owner: free it, scope it "
                        "with CommGuard, return it, or store it"))
        return summary, findings


# -- FTL005 ------------------------------------------------------------------

def _collectives_in(model: Model, sf: SourceFile, lo: int, hi: int):
    """(line, callee, chain-note) for every collective-reaching free-function
    call in tokens [lo, hi)."""
    out = []
    for k in range(lo, hi):
        callee = _call_at(sf, k)
        if callee is None:
            continue
        if callee in COLLECTIVES:
            out.append((sf.tokens[k].line, callee, None))
        else:
            s = model.summaries.get(callee)
            if s is not None and s.collective:
                out.append((sf.tokens[k].line, callee, s.collective))
    return out


def check_ftl005(model: Model) -> list[Finding]:
    engine = model.engine
    findings: list[Finding] = []
    seen: set[tuple[str, int]] = set()

    def emit(sf, line, callee, chain, cond_line, why):
        if (sf.path, line) in seen:
            return
        seen.add((sf.path, line))
        if engine._suppressed(sf, "FTL005", line):
            return
        via = f" (reaches a collective via {callee} -> {chain})" if chain else ""
        findings.append(Finding(
            sf.path, line, "FTL005",
            f"collective `{callee}`{via} executes only under the "
            f"rank-dependent branch at line {cond_line}; {why} — every rank "
            "of the communicator must make the same collective calls"))

    for _fn_name, sf, _name_idx, b0, b1 in model.functions:
        toks = sf.tokens
        # Enclosing-block map so guard-style early exits know how far the
        # divergent remainder extends.
        brace_close: dict[int, int] = {}
        stack = []
        for k in range(b0, b1 + 1):
            if toks[k].text == "{":
                stack.append(k)
            elif toks[k].text == "}" and stack:
                brace_close[stack.pop()] = k
        enclosing: list[int] = []
        i = b0
        while i < b1:
            t = toks[i].text
            if t == "{":
                enclosing.append(brace_close.get(i, b1))
            elif t == "}":
                if enclosing:
                    enclosing.pop()
            elif t == "if" and i + 1 < b1 and toks[i + 1].text == "(":
                close = sf.match_paren(i + 1)
                if _rank_dependent(toks[i + 2:close]):
                    cond_line = toks[i].line
                    then_lo = close + 1
                    then_hi = _stmt_end(sf, then_lo)
                    else_lo = else_hi = None
                    if then_hi < b1 and toks[then_hi].text == "else":
                        else_lo = then_hi + 1
                        else_hi = _stmt_end(sf, else_lo)
                    then_c = _collectives_in(model, sf, then_lo, then_hi)
                    else_c = (_collectives_in(model, sf, else_lo, else_hi)
                              if else_lo is not None else [])
                    if then_c and not else_c:
                        for line, callee, chain in then_c:
                            emit(sf, line, callee, chain, cond_line,
                                 "ranks for which the condition is false "
                                 "take a collective-free path")
                    elif else_c and not then_c:
                        for line, callee, chain in else_c:
                            emit(sf, line, callee, chain, cond_line,
                                 "ranks for which the condition is true "
                                 "take a collective-free path")
                    # Early-exit guard: `if (rank-cond) return;` — the
                    # exiting ranks never reach the remainder of the block.
                    if (not then_c and else_lo is None
                            and _guard_exits(sf, then_lo, then_hi)):
                        rem_hi = enclosing[-1] if enclosing else b1
                        for line, callee, chain in _collectives_in(
                                model, sf, then_hi, rem_hi):
                            emit(sf, line, callee, chain, cond_line,
                                 "ranks for which the condition is true "
                                 "exit early and never reach it")
            i += 1
    return findings


def _guard_exits(sf: SourceFile, lo: int, hi: int) -> bool:
    """True when the statement range [lo, hi) is a jump-only guard body:
    `return ...;` / `break;` / `{ return ...; }` / abort — nothing else."""
    toks = sf.tokens
    if lo >= hi:
        return False
    a, b = lo, hi
    if toks[a].text == "{":
        a, b = a + 1, b - 1
    if a >= b:
        return False
    if toks[a].text in _JUMPS or toks[a].text in ("abort", "abort_self"):
        # Single statement only: exactly one top-level `;` (the last token).
        depth = 0
        for k in range(a, b - 1):
            t = toks[k].text
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == ";" and depth == 0:
                return False
        return toks[b - 1].text == ";"
    return False


def check_ftl006(model: Model) -> list[Finding]:
    findings: list[Finding] = []
    for name, sf, name_idx, b0, b1 in model.functions:
        _, fs = model._scan(name, sf, name_idx, b0, b1, emit=True)
        findings.extend(fs)
    return findings


def build_and_check(engine: "ftlint_lex.Engine", rules: set[str]) -> list[Finding]:
    """Entry point used by ftlint_lex.Engine.run."""
    model = Model(engine)
    # Seed collective summaries: direct collective calls, then propagate
    # through the call graph so a rank-guarded call to a helper that calls
    # `bcast` three frames down is still a finding at the guard.
    changed = True
    rounds = 0
    while changed and rounds < 16:
        changed = False
        rounds += 1
        for fn_name, sf, _ni, b0, b1 in model.functions:
            s = model.summaries.get(fn_name)
            if s is None or s.collective:
                continue
            for k in range(b0, b1):
                callee = _call_at(sf, k)
                if callee is None or callee == fn_name:
                    continue
                if callee in COLLECTIVES:
                    s.collective = callee
                    changed = True
                    break
                cs = model.summaries.get(callee)
                if cs is not None and cs.collective:
                    s.collective = f"{callee} -> {cs.collective}"
                    changed = True
                    break
    out: list[Finding] = []
    if "FTL005" in rules:
        out.extend(check_ftl005(model))
    if "FTL006" in rules:
        out.extend(check_ftl006(model))
    return out
