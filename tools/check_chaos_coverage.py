#!/usr/bin/env python3
"""Chaos-label coverage sweep (registered with ctest as chaos_label_coverage).

The runtime's chaos injection is label-addressed: every protocol phase
boundary in src/ fires `chaos_point("<label>")`, and chaos tests kill
processes at labels by name.  A label that no test ever names is a recovery
path with zero kill coverage — exactly the place the next cascading-failure
bug hides.  This sweep extracts every label fired under src/ and demands
that each one appears (as the same quoted string) in at least one file under
tests/; it fails with the orphan list otherwise.

Zero extracted labels is also a failure: it would mean the extraction regex
rotted, not that the codebase stopped firing chaos points.

A small set of labels is additionally *required to exist* in src/: the
failure-detector duties and the tree agreement earn their fault-tolerance
claims from chaos kills at exactly these boundaries, so silently deleting
one of the chaos_point calls (which would also drop it from the orphan
check) is itself a failure.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
TESTS = os.path.join(REPO, "tests")

_LABEL_RE = re.compile(r'chaos_point\(\s*"([^"]+)"\s*\)')

# Labels that must be fired somewhere under src/ (and hence, via the orphan
# check below, also covered by tests/).
REQUIRED_LABELS = (
    "detector.heartbeat",
    "detector.gossip",
    "agree.tree",
    # Overlapped-recovery protocol boundaries (async_repair / ft_app): the
    # continuation/repair split, the repaired-world doorbell, and the
    # epoch-validated handoff that swaps everyone onto the repaired world.
    "repair.split",
    "repair.doorbell",
    "repair.handoff",
)


def cxx_files(root):
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                yield os.path.join(dirpath, name)


def main():
    labels = {}  # label -> first src occurrence "file:line"
    for path in cxx_files(SRC):
        with open(path, encoding="utf-8") as fh:
            for lineno, text in enumerate(fh, start=1):
                for label in _LABEL_RE.findall(text):
                    rel = os.path.relpath(path, REPO)
                    labels.setdefault(label, f"{rel}:{lineno}")
    if not labels:
        print("FAIL: no chaos_point labels found under src/ — extraction broken?")
        return 1

    missing = [l for l in REQUIRED_LABELS if l not in labels]
    for label in missing:
        print(f"FAIL: required chaos label \"{label}\" is fired nowhere under "
              f"src/ — the phase boundary (or its chaos_point) was removed")
    if missing:
        return 1

    test_text = ""
    for path in cxx_files(TESTS):
        with open(path, encoding="utf-8") as fh:
            test_text += fh.read()

    orphans = {l: where for l, where in sorted(labels.items())
               if f'"{l}"' not in test_text}
    for label, where in orphans.items():
        print(f"FAIL: chaos label \"{label}\" (fired at {where}) is exercised "
              f"by no test under tests/")
    if orphans:
        print(f"{len(orphans)}/{len(labels)} chaos labels uncovered — add a "
              f"chaos test that kills at each label, or retire the label")
        return 1

    print(f"PASS: all {len(labels)} chaos labels are exercised by tests: "
          + ", ".join(sorted(labels)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
