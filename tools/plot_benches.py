#!/usr/bin/env python3
"""Plot the bench CSVs as paper-style figures.

Each bench binary accepts --csv=<path>; run them first, e.g.:

    build/bench/bench_fig8_reconstruct --csv=out/fig8.csv
    build/bench/bench_table1_primitives --csv=out/table1.csv
    build/bench/bench_fig10_error --csv=out/fig10.csv
    build/bench/bench_fig11_scalability --csv=out/fig11.csv

then:

    tools/plot_benches.py out/*.csv -o out/

Figures are drawn with matplotlib when available; otherwise the script
prints the parsed tables so the data is still inspectable.
"""

import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if not rows:
        return [], []
    header, data = rows[0], rows[1:]
    return header, data


def numeric(col):
    out = []
    for v in col:
        try:
            out.append(float(v))
        except ValueError:
            out.append(float("nan"))
    return out


def plot_file(path, outdir, plt):
    header, data = read_csv(path)
    if not data:
        print(f"{path}: empty, skipped")
        return
    name = os.path.splitext(os.path.basename(path))[0]

    # Generic treatment: first column is the x axis (or a category); every
    # numeric column after it becomes a series.
    xs_raw = [row[0] for row in data]
    try:
        xs = [float(v) for v in xs_raw]
        categorical = False
    except ValueError:
        xs = list(range(len(xs_raw)))
        categorical = True

    fig, ax = plt.subplots(figsize=(6, 4))
    for c in range(1, len(header)):
        ys = numeric([row[c] if c < len(row) else "nan" for row in data])
        if all(y != y for y in ys):  # all NaN: non-numeric column
            continue
        ax.plot(xs, ys, marker="o", label=header[c])
    if categorical:
        ax.set_xticks(xs)
        ax.set_xticklabels(xs_raw, rotation=30, ha="right")
    ax.set_xlabel(header[0])
    ax.set_ylabel("virtual seconds / value")
    ax.set_title(name)
    if any("(s)" in h for h in header[1:]):
        ax.set_yscale("log")
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    out = os.path.join(outdir, name + ".png")
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csvs", nargs="+", help="CSV files produced by the benches")
    ap.add_argument("-o", "--outdir", default=".", help="output directory for PNGs")
    args = ap.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; printing tables instead\n")
        for path in args.csvs:
            header, data = read_csv(path)
            print(f"== {path}")
            print("\t".join(header))
            for row in data:
                print("\t".join(row))
            print()
        return 0

    os.makedirs(args.outdir, exist_ok=True)
    for path in args.csvs:
        plot_file(path, args.outdir, plt)
    return 0


if __name__ == "__main__":
    sys.exit(main())
