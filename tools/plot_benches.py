#!/usr/bin/env python3
"""Plot the bench CSVs as paper-style figures, and BENCH_micro.json files as
a kernel-throughput trajectory.

Each bench binary accepts --csv=<path>; run them first, e.g.:

    build/bench/bench_fig8_reconstruct --csv=out/fig8.csv
    build/bench/bench_table1_primitives --csv=out/table1.csv
    build/bench/bench_fig10_error --csv=out/fig10.csv
    build/bench/bench_fig11_scalability --csv=out/fig11.csv

then:

    tools/plot_benches.py out/*.csv -o out/

JSON arguments are treated as BENCH_micro.json snapshots (see
tools/bench_to_json.py).  Passing several — e.g. the committed baseline plus
the current run — draws one grouped bar per kernel so the throughput
trajectory across commits is visible at a glance:

    tools/plot_benches.py BENCH_micro.json out/BENCH_micro.json -o out/

Figures are drawn with matplotlib when available; otherwise the script
prints the parsed tables so the data is still inspectable.
"""

import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if not rows:
        return [], []
    header, data = rows[0], rows[1:]
    return header, data


def numeric(col):
    out = []
    for v in col:
        try:
            out.append(float(v))
        except ValueError:
            out.append(float("nan"))
    return out


def plot_file(path, outdir, plt):
    header, data = read_csv(path)
    if not data:
        print(f"{path}: empty, skipped")
        return
    name = os.path.splitext(os.path.basename(path))[0]

    # Generic treatment: first column is the x axis (or a category); every
    # numeric column after it becomes a series.
    xs_raw = [row[0] for row in data]
    try:
        xs = [float(v) for v in xs_raw]
        categorical = False
    except ValueError:
        xs = list(range(len(xs_raw)))
        categorical = True

    fig, ax = plt.subplots(figsize=(6, 4))
    for c in range(1, len(header)):
        ys = numeric([row[c] if c < len(row) else "nan" for row in data])
        if all(y != y for y in ys):  # all NaN: non-numeric column
            continue
        ax.plot(xs, ys, marker="o", label=header[c])
    if categorical:
        ax.set_xticks(xs)
        ax.set_xticklabels(xs_raw, rotation=30, ha="right")
    ax.set_xlabel(header[0])
    ax.set_ylabel("virtual seconds / value")
    ax.set_title(name)
    if any("(s)" in h for h in header[1:]):
        ax.set_yscale("log")
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    out = os.path.join(outdir, name + ".png")
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def read_bench_json(path):
    """Return {kernel: items_per_second} from a BENCH_micro.json snapshot."""
    import json

    with open(path) as f:
        doc = json.load(f)
    return {
        name: entry.get("items_per_second", float("nan"))
        for name, entry in doc.get("kernels", {}).items()
    }


def print_bench_json(paths):
    snaps = [(p, read_bench_json(p)) for p in paths]
    kernels = sorted({k for _, s in snaps for k in s})
    width = max(len(k) for k in kernels) if kernels else 0
    print("kernel".ljust(width) + "".join(f"\t{os.path.basename(p)}" for p, _ in snaps))
    for k in kernels:
        print(k.ljust(width) + "".join(f"\t{s.get(k, float('nan')):.3e}" for _, s in snaps))


def plot_bench_json(paths, outdir, plt):
    """Grouped bars: one group per kernel, one bar per snapshot, log items/sec.
    With the committed baseline plus one or more later runs this reads as the
    per-kernel throughput trajectory."""
    snaps = [(os.path.basename(p), read_bench_json(p)) for p in paths]
    kernels = sorted({k for _, s in snaps for k in s})
    if not kernels:
        print("no kernels found in BENCH json inputs, skipped")
        return
    nsnap = len(snaps)
    bar_w = 0.8 / nsnap
    fig, ax = plt.subplots(figsize=(max(7, 0.5 * len(kernels)), 4.5))
    for j, (label, snap) in enumerate(snaps):
        xs = [i + (j - (nsnap - 1) / 2.0) * bar_w for i in range(len(kernels))]
        ys = [snap.get(k, float("nan")) for k in kernels]
        ax.bar(xs, ys, width=bar_w, label=label)
    ax.set_xticks(range(len(kernels)))
    ax.set_xticklabels(kernels, rotation=60, ha="right", fontsize=7)
    ax.set_yscale("log")
    ax.set_ylabel("items / second")
    ax.set_title("micro-kernel throughput trajectory")
    ax.legend(fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)
    fig.tight_layout()
    out = os.path.join(outdir, "bench_micro_trajectory.png")
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+",
                    help="CSV files produced by the benches and/or BENCH_micro.json snapshots")
    ap.add_argument("-o", "--outdir", default=".", help="output directory for PNGs")
    args = ap.parse_args()

    csvs = [p for p in args.inputs if not p.endswith(".json")]
    jsons = [p for p in args.inputs if p.endswith(".json")]

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; printing tables instead\n")
        for path in csvs:
            header, data = read_csv(path)
            print(f"== {path}")
            print("\t".join(header))
            for row in data:
                print("\t".join(row))
            print()
        if jsons:
            print_bench_json(jsons)
        return 0

    os.makedirs(args.outdir, exist_ok=True)
    for path in csvs:
        plot_file(path, args.outdir, plt)
    if jsons:
        plot_bench_json(jsons, args.outdir, plt)
    return 0


if __name__ == "__main__":
    sys.exit(main())
