// Second-PDE demo: the heat equation on the sparse grid combination
// technique, solved in parallel on the simulated cluster.
//
// The paper's framework targets "2D PDEs" generally; this example shows the
// library's substrate (grids, decomposition, halo exchange, combination) is
// not advection-specific.  Each sub-grid group runs the FTCS diffusion
// solver; the combined solution is compared against the analytic decay of
// the sin*sin mode.
//
//   ./diffusion_demo [--n=6] [--l=3] [--steps=200] [--kappa=0.02]

#include <cstdio>
#include <map>

#include "advection/diffusion.hpp"
#include "combination/combine.hpp"
#include "common/cli.hpp"
#include "core/layout.hpp"
#include "ftmpi/api.hpp"

using namespace ftr;
using advection::DiffusionProblem;
using grid::Grid2D;
using grid::Level;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const comb::Scheme scheme{static_cast<int>(cli.get_int("n", 6)),
                            static_cast<int>(cli.get_int("l", 3))};
  const DiffusionProblem problem{cli.get_double("kappa", 0.02)};
  const long steps = cli.get_int("steps", 200);
  const double dt = advection::diffusion_stable_timestep(scheme.n, problem, 0.8);

  core::LayoutConfig lcfg;
  lcfg.scheme = scheme;
  lcfg.technique = comb::Technique::CheckpointRestart;  // plain grid set
  lcfg.procs_diagonal = 4;
  lcfg.procs_lower = 2;
  const core::Layout layout = core::build_layout(lcfg);

  ftmpi::Runtime rt;
  rt.register_app("diffusion", [&](const std::vector<std::string>&) {
    ftmpi::Comm& w = ftmpi::world();
    const int grid_id = layout.grid_of_rank(w.rank());
    ftmpi::Comm gcomm;
    (void)ftmpi::comm_split(w, grid_id, w.rank(), &gcomm);

    advection::ParallelDiffusionSolver solver(
        layout.slots[static_cast<size_t>(grid_id)].level, problem, dt, gcomm);
    solver.run(steps);

    Grid2D full;
    solver.gather_full(&full);
    constexpr int kTag = 321;
    if (gcomm.rank() == 0 && w.rank() != 0) {
      (void)ftmpi::send(full.data().data(), static_cast<int>(full.data().size()), 0,
                  kTag + grid_id, w);
    }
    if (w.rank() == 0) {
      std::map<int, Grid2D> grids;
      grids.emplace(0, std::move(full));
      for (int g = 1; g < layout.num_grids(); ++g) {
        Grid2D other(layout.slots[static_cast<size_t>(g)].level);
        (void)ftmpi::recv(other.data().data(), static_cast<int>(other.data().size()),
                    layout.root_rank_of_grid(g), kTag + g, w);
        grids.emplace(g, std::move(other));
      }
      std::vector<comb::Component> parts;
      for (const auto& slot : layout.slots) {
        parts.push_back({&grids.at(slot.id),
                         comb::classic_coefficient(scheme, slot.level)});
      }
      const Grid2D combined = comb::combine_full(scheme, parts);
      const double t = static_cast<double>(steps) * dt;
      const double err = grid::l1_error(
          combined, [&](double x, double y) { return problem.exact(x, y, t); });
      ftmpi::runtime().put("err", err);
      ftmpi::runtime().put("t", t);
      ftmpi::runtime().put("decay", problem.exact(0.25, 0.25, t) / problem.initial(0.25, 0.25));
    }
    (void)ftmpi::barrier(w);
  });
  rt.run("diffusion", layout.total_procs);

  std::printf("heat equation on the combination technique (%d procs, %d sub-grids)\n",
              layout.total_procs, layout.num_grids());
  std::printf("t = %.4f, analytic mode amplitude %.4f of initial\n", rt.get("t", 0),
              rt.get("decay", 0));
  std::printf("combined-solution l1 error vs analytic decay: %.6e\n", rt.get("err", -1));
  return rt.get("err", 1.0) < 1e-2 ? 0 : 1;
}
