// Compare the three data-recovery techniques on the same failure scenario:
// Checkpoint/Restart (exact, disk), Resampling & Copying (replicas in
// memory), Alternate Combination (re-derived combination coefficients).
//
//   ./technique_comparison [--n=7] [--steps=64] [--lost=2] [--profile=opl|raijin]
//
// Mirrors the paper's Figs. 9/10 on a single scenario: per-technique
// process budget, recovery overhead, and combined-solution accuracy.

#include <cstdio>

#include "common/cli.hpp"
#include "core/failure_gen.hpp"
#include "core/ft_app.hpp"
#include "ftmpi/cost_model.hpp"

using namespace ftr::core;
using ftr::comb::Technique;

int main(int argc, char** argv) {
  const ftr::Cli cli(argc, argv);
  const auto profile = ftmpi::ClusterProfile::by_name(cli.get("profile", "opl"));
  const int lost = static_cast<int>(cli.get_int("lost", 2));

  std::printf("Recovery technique comparison (simulated %s cluster, T_IO=%.2fs, "
              "%d lost grid(s))\n\n",
              profile.name.c_str(), profile.cost.disk_write_latency, lost);
  std::printf("%-24s %6s %10s %12s %12s\n", "technique", "procs", "error_l1",
              "recovery(s)", "total(s)");

  for (const Technique t : {Technique::CheckpointRestart, Technique::ResamplingCopying,
                            Technique::AlternateCombination}) {
    AppConfig cfg;
    cfg.layout.scheme = ftr::comb::Scheme{static_cast<int>(cli.get_int("n", 7)),
                                          static_cast<int>(cli.get_int("l", 4))};
    cfg.layout.technique = t;
    cfg.layout.procs_diagonal = 4;
    cfg.layout.procs_lower = 2;
    cfg.layout.procs_extra_upper = 2;
    cfg.layout.procs_extra_lower = 1;
    cfg.timesteps = cli.get_int("steps", 64);
    cfg.checkpoints = 3;

    const Layout layout = build_layout(cfg.layout);
    ftr::Xoshiro256 rng(static_cast<uint64_t>(cli.get_int("seed", 3)));
    cfg.failures = random_simulated_losses(layout, lost, rng);

    ftmpi::Runtime::Options opts;
    opts.slots_per_host = profile.slots_per_host;
    opts.cost = profile.cost;
    ftmpi::Runtime rt(opts);
    FtApp app(cfg);
    app.launch(rt);

    const double recovery = t == Technique::CheckpointRestart
                                ? rt.get(keys::kCkptWriteTotal, 0) +
                                      rt.get(keys::kRecoveryTime, 0)
                                : rt.get(keys::kRecoveryTime, 0);
    std::printf("%-24s %6d %10.3e %12.4f %12.3f\n", ftr::comb::technique_name(t),
                layout.total_procs, rt.get(keys::kErrorL1, -1), recovery,
                rt.get(keys::kTotalTime, 0));
  }
  std::printf("\nCR recovers exactly but pays disk I/O; RC pays duplicate grids; AC pays"
              " only\nnew combination coefficients plus a small approximation error.\n");
  return 0;
}
