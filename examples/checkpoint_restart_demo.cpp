// Checkpoint/Restart walkthrough: a run with periodic checkpoints and a
// real mid-run process failure.  Shows the paper's CR flow — detection is
// tested before each checkpoint write; on failure, the affected sub-grid
// restarts from the most recent checkpoint and recomputes — and verifies
// that CR recovery is *exact*: the final error equals the failure-free
// run's error bit for bit.
//
//   ./checkpoint_restart_demo [--n=7] [--steps=64] [--checkpoints=3]
//                             [--kill_rank=6] [--kill_step=40]

#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "core/ft_app.hpp"
#include "ftmpi/cost_model.hpp"

using namespace ftr::core;

namespace {

AppConfig make_config(const ftr::Cli& cli) {
  AppConfig cfg;
  cfg.layout.scheme = ftr::comb::Scheme{static_cast<int>(cli.get_int("n", 7)),
                                        static_cast<int>(cli.get_int("l", 4))};
  cfg.layout.technique = ftr::comb::Technique::CheckpointRestart;
  cfg.layout.procs_diagonal = 4;
  cfg.layout.procs_lower = 2;
  cfg.timesteps = cli.get_int("steps", 64);
  cfg.checkpoints = cli.get_int("checkpoints", 3);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const ftr::Cli cli(argc, argv);
  const auto profile = ftmpi::ClusterProfile::by_name(cli.get("profile", "opl"));
  ftmpi::Runtime::Options opts;
  opts.slots_per_host = profile.slots_per_host;
  opts.cost = profile.cost;

  std::printf("Checkpoint/Restart demo (simulated %s cluster, T_IO = %.2f s)\n",
              profile.name.c_str(), profile.cost.disk_write_latency);

  // Failure-free reference.
  double err_clean = 0;
  {
    ftmpi::Runtime rt(opts);
    FtApp app(make_config(cli));
    app.launch(rt);
    err_clean = rt.get(keys::kErrorL1, -1);
    std::printf("clean run : %3.0f checkpoint writes, write time %.2fs, error %.6e\n",
                rt.get(keys::kCkptWrites, 0), rt.get(keys::kCkptWriteTotal, 0), err_clean);
  }

  // Failure at a planned step; the victim's grid restarts from checkpoint.
  AppConfig cfg = make_config(cli);
  const int kill_rank = static_cast<int>(cli.get_int("kill_rank", 6));
  const long kill_step = cli.get_int("kill_step", 40);
  cfg.failures.kill_at_step[kill_rank] = kill_step;

  ftmpi::Runtime rt(opts);
  FtApp app(cfg);
  const int killed = app.launch(rt);
  const double err_ft = rt.get(keys::kErrorL1, -1);
  std::printf("faulty run: rank %d killed at step %ld (grid %d); %d process respawned\n",
              kill_rank, kill_step, app.layout().grid_of_rank(kill_rank), killed);
  std::printf("            repair %.3fs (spawn %.3fs), restore+recompute %.3fs,"
              " error %.6e\n",
              rt.get(keys::kReconTotal, 0), rt.get(keys::kReconSpawn, 0),
              rt.get(keys::kRecoveryTime, 0), err_ft);

  const bool exact = std::abs(err_ft - err_clean) < 1e-12;
  std::printf("\nCR recovery is exact: final errors %s (|diff| = %.2e)\n",
              exact ? "match" : "DIFFER", std::abs(err_ft - err_clean));
  return exact ? 0 : 1;
}
