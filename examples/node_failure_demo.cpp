// Whole-node failure demo (the paper's future-work scenario, Sec. V).
//
// A node (host) dies, taking all of its MPI processes with it.  The repair
// protocol re-spawns every lost rank; the runtime redirects their placement
// from the dead node to one consistent spare node, so the replacements come
// up co-located — "the same load balancing characteristics as restarting
// the failed processes on the same node".
//
//   ./node_failure_demo [--n=6] [--steps=24] [--host=1]

#include <cstdio>

#include "common/cli.hpp"
#include "core/ft_app.hpp"
#include "ftmpi/cost_model.hpp"

using namespace ftr::core;

int main(int argc, char** argv) {
  const ftr::Cli cli(argc, argv);
  const int victim_host = static_cast<int>(cli.get_int("host", 1));

  ftmpi::Runtime::Options opts;
  opts.slots_per_host = 4;

  AppConfig cfg;
  cfg.layout.scheme = ftr::comb::Scheme{static_cast<int>(cli.get_int("n", 6)),
                                        static_cast<int>(cli.get_int("l", 3))};
  cfg.layout.technique = ftr::comb::Technique::CheckpointRestart;
  cfg.layout.procs_diagonal = 4;
  cfg.layout.procs_lower = 2;
  cfg.timesteps = cli.get_int("steps", 24);
  cfg.checkpoints = 2;
  cfg.failures.fail_host_at_step[victim_host] = cfg.timesteps / 3;

  ftmpi::Runtime rt(opts);
  FtApp app(cfg);
  std::printf("launching %d ranks over %d-slot nodes; node %d will fail at step %ld\n",
              app.layout().total_procs, opts.slots_per_host, victim_host,
              cfg.timesteps / 3);
  const int killed = app.launch(rt);

  std::printf("node %d failed: %d processes killed and respawned together on a spare "
              "node\n", victim_host, killed);
  std::printf("repairs=%.0f  reconstruct=%.3fs (spawn %.3fs)  restore+recompute=%.3fs\n",
              rt.get(keys::kRepairs, 0), rt.get(keys::kReconTotal, 0),
              rt.get(keys::kReconSpawn, 0), rt.get(keys::kRecoveryTime, 0));
  std::printf("combined-solution l1 error: %.6e (CR recovery is exact)\n",
              rt.get(keys::kErrorL1, -1));
  const bool ok = killed == opts.slots_per_host && rt.get(keys::kRepairs, 0) == 1.0 &&
                  rt.get(keys::kErrorL1, -1) >= 0;
  return ok ? 0 : 1;
}
