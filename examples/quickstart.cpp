// Quickstart: solve the 2D advection equation with the sparse grid
// combination technique on a simulated cluster, kill a process mid-run,
// and let the Alternate Combination technique recover.
//
//   ./quickstart [--n=7] [--l=4] [--steps=64] [--kill_rank=5] [--kill_step=20]
//
// Prints the combined-solution error with and without the failure and the
// repair/recovery costs in virtual (modeled cluster) seconds.

#include <cstdio>

#include "common/cli.hpp"
#include "core/ft_app.hpp"
#include "ftmpi/cost_model.hpp"

using namespace ftr::core;

namespace {

AppConfig make_config(const ftr::Cli& cli) {
  AppConfig cfg;
  cfg.layout.scheme = ftr::comb::Scheme{static_cast<int>(cli.get_int("n", 7)),
                                        static_cast<int>(cli.get_int("l", 4))};
  cfg.layout.technique = ftr::comb::Technique::AlternateCombination;
  cfg.layout.procs_diagonal = 4;
  cfg.layout.procs_lower = 2;
  cfg.layout.procs_extra_upper = 2;
  cfg.layout.procs_extra_lower = 1;
  cfg.timesteps = cli.get_int("steps", 64);
  return cfg;
}

double run(const AppConfig& cfg, ftmpi::Runtime::Options opts, const char* label) {
  ftmpi::Runtime rt(opts);
  FtApp app(cfg);
  const int killed = app.launch(rt);
  const double err = rt.get(keys::kErrorL1, -1);
  std::printf("%-14s procs=%-3d killed=%d repairs=%.0f  l1_error=%.3e  total=%.3fs"
              "  (reconstruct=%.3fs, recovery=%.3fs)\n",
              label, app.layout().total_procs, killed, rt.get(keys::kRepairs, 0), err,
              rt.get(keys::kTotalTime, 0), rt.get(keys::kReconTotal, 0),
              rt.get(keys::kRecoveryTime, 0));
  return err;
}

}  // namespace

int main(int argc, char** argv) {
  const ftr::Cli cli(argc, argv);
  const auto profile = ftmpi::ClusterProfile::by_name(cli.get("profile", "opl"));
  ftmpi::Runtime::Options opts;
  opts.slots_per_host = profile.slots_per_host;
  opts.cost = profile.cost;

  std::printf("Fault-tolerant sparse-grid advection solver (simulated %s cluster)\n",
              profile.name.c_str());

  AppConfig clean = make_config(cli);
  const double base_err = run(clean, opts, "no failure:");

  AppConfig faulty = make_config(cli);
  faulty.failures.kill_at_step[static_cast<int>(cli.get_int("kill_rank", 5))] =
      cli.get_int("kill_step", 20);
  const double ft_err = run(faulty, opts, "one failure:");

  std::printf("\nerror ratio (failure / baseline): %.2fx  — the paper's robustness bound"
              " is 10x\n", ft_err / base_err);
  return ft_err < 10.0 * base_err ? 0 : 1;
}
