// ULFM repair walkthrough (the paper's Fig. 2, narrated).
//
// Launches 7 ranks, kills ranks 3 and 5, and walks through the repair
// pipeline step by step — revoke, shrink, failed-list via group difference,
// spawn on the original hosts, intercommunicator merge, old-rank delivery,
// ordered split — printing the rank mapping at each stage.  The final
// communicator has the original size with ranks 3 and 5 re-seated.

#include <cstdarg>
#include <cstdio>
#include <mutex>

#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;

namespace {
std::mutex print_mu;

void say(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void say(const char* fmt, ...) {
  std::lock_guard<std::mutex> lock(print_mu);
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::fflush(stdout);
}
}  // namespace

int main() {
  Runtime::Options opts;
  opts.slots_per_host = 4;
  Runtime rt(opts);

  rt.register_app("demo", [&](const std::vector<std::string>& argv) {
    ftr::core::Reconstructor recon({"demo", argv});
    if (!get_parent().is_null()) {
      // A freshly respawned replacement: join via the child path.
      const auto res = recon.reconstruct({});
      say("  [child pid=%d] respawned on host %d, re-seated at rank %d of %d\n",
          self_pid(), runtime().host_of(self_pid()), res.comm.rank(), res.comm.size());
      (void)barrier(res.comm);
      return;
    }
    Comm w = world();
    if (w.rank() == 0) {
      say("step 0: a communicator with global size %d (hosts of %d slots)\n", w.size(),
          runtime().slots_per_host());
    }
    (void)barrier(w);
    if (w.rank() == 3 || w.rank() == 5) {
      say("step 1: rank %d (pid %d, host %d) fails\n", w.rank(), self_pid(),
          runtime().host_of(self_pid()));
      abort_self();
    }

    const auto res = recon.reconstruct(w);
    if (w.rank() == 0) {
      say("step 2: barrier detected the failure; repair ran %d iteration(s)\n",
          res.iterations);
      std::string failed;
      for (int r : res.failed_ranks) failed += std::to_string(r) + " ";
      say("step 3: failed-rank list from group difference: [ %s]\n", failed.c_str());
      say("step 4: shrink -> spawn on original hosts -> merge -> ordered split\n");
      say("        shrink=%.4fs spawn=%.4fs agree=%.4fs merge=%.4fs split=%.4fs\n",
          res.timings.shrink, res.timings.spawn, res.timings.agree, res.timings.merge,
          res.timings.split);
    }
    say("  [survivor pid=%d] rank %d -> %d (size %d -> %d)\n", self_pid(), w.rank(),
        res.comm.rank(), w.size(), res.comm.size());
    (void)barrier(res.comm);
  });

  rt.run("demo", 7);
  std::printf("done: global size preserved, ranks restored, load balance kept.\n");
  return 0;
}
