// Combination-technique convergence study (serial, no simulated cluster).
//
// Solves the advection problem on the combination of sub-grids for growing
// full-grid size n and compares the combined solution's error with (a) the
// single largest isotropic grid a similar budget could afford and (b) the
// worst individual component.  Demonstrates the point of the sparse grid
// combination technique the paper builds on: near-full-grid accuracy from a
// set of much smaller anisotropic grids.
//
//   ./convergence_study [--l=4] [--nmax=9] [--steps=64]

#include <cstdio>
#include <vector>

#include "advection/serial_solver.hpp"
#include "combination/combine.hpp"
#include "common/cli.hpp"

using ftr::comb::Scheme;
using ftr::grid::Grid2D;
using ftr::grid::Level;

int main(int argc, char** argv) {
  const ftr::Cli cli(argc, argv);
  const int l = static_cast<int>(cli.get_int("l", 4));
  const int nmax = static_cast<int>(cli.get_int("nmax", 9));
  const long steps = cli.get_int("steps", 64);
  const ftr::advection::Problem p{1.0, 0.5};

  std::printf("%4s %14s %16s %18s %14s\n", "n", "combined_l1", "worst_component",
              "combination_pts", "full_grid_pts");
  for (int n = std::max(l + 2, 5); n <= nmax; ++n) {
    const Scheme s{n, l};
    const double dt = ftr::advection::stable_timestep(n, p, 0.8);
    const double t_final = static_cast<double>(steps) * dt;

    std::vector<Grid2D> grids;
    double worst = 0;
    long points = 0;
    for (const Level& lv : s.combination_levels()) {
      ftr::advection::SerialSolver solver(lv, p, dt);
      solver.run(steps);
      worst = std::max(worst, solver.l1_error());
      points += static_cast<long>(solver.grid().size());
      grids.push_back(solver.grid());
    }
    std::vector<const Grid2D*> ptrs;
    for (const auto& g : grids) ptrs.push_back(&g);
    const Grid2D combined = ftr::comb::combine_full(s, ftr::comb::classic_components(s, ptrs));
    const double err = ftr::grid::l1_error(
        combined, [&](double x, double y) { return p.exact(x, y, t_final); });

    const long full_pts = (static_cast<long>(1) << n) + 1;
    std::printf("%4d %14.6e %16.6e %18ld %14ld\n", n, err, worst, points,
                full_pts * full_pts);
  }
  std::printf("\nThe combined solution beats every component while using a tiny\n"
              "fraction of the full grid's points — the combination technique's "
              "premise.\n");
  return 0;
}
