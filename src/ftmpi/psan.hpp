#pragma once
// Protocol sanitizer (FTR_SANITIZE=protocol, compile definition FTR_PSAN).
//
// A runtime cross-check for the invariants ftlint enforces statically
// (FTL005 collective matching, FTL006 communicator lifecycle).  Because the
// whole cluster is simulated inside one process, the sanitizer keeps shadow
// state for every (process, communicator-context) pair in a global table:
//
//   - lifecycle bits.  A rank that *itself revoked* a context may only run
//     the sanctioned salvage set on it afterwards (iprobe_buffered /
//     recv_buffered / shrink / agree / free / the local accessors); any
//     other operation aborts with the call site of the use and of the
//     revoke.  This mirrors ftlint's FTL006, which flags uses that follow a
//     comm_revoke call in the source.  A *passively* observed revocation
//     (an operation returned kErrRevoked) is recorded and cited in later
//     diagnostics but does not arm the abort: every operation on a revoked
//     context fails fast without side effects here, and the application's
//     documented idiom — observe the error, warn, carry on to the next
//     detection point — legitimately issues further failing operations
//     while it unwinds.  A second comm_free of the same context by the
//     same rank aborts as a double-free.  (Use-after-free is deliberately
//     NOT flagged: contexts are reference counted and handle copies are
//     pervasive — reconstruct frees its own copy of the broken world while
//     world() remains a live alias of the same context.)
//
//   - a rolling FNV-1a hash of the collective-call sequence issued on the
//     context, plus a short ring of recent call sites.  comm_agree
//     piggybacks {flag, hash, failure-epoch} on its existing payload; the
//     agree coordinator compares the streams of all members and aborts with
//     a per-rank divergence trace on mismatch.  Verification is skipped
//     (never faked) whenever the result could be stale: a dead member, a
//     revoked communicator, an unconfirmed member, or members that sent
//     their hash under different failure epochs.  A successful verification
//     resets every member's stream while they are still blocked waiting for
//     the agree reply, so the next window starts aligned.
//
// Everything here compiles to nothing unless FTR_PSAN is defined; the
// instrumentation macros below keep the hot paths free of even argument
// evaluation in normal builds.

#include <cstdint>
#include <vector>

#include "ftmpi/types.hpp"

namespace ftmpi {

class Comm;
struct Group;

namespace psan {

/// Wire format of the agree uplink under FTR_PSAN (replaces the plain int
/// flag).  Trivially copyable; both sides of the protocol are compiled with
/// the same FTR_PSAN setting, so the payload layout always matches.
struct AgreeWire {
  int flag = 0;
  int pad = 0;
  std::uint64_t hash = 0;
  std::uint64_t epoch = 0;
};

/// One member's report as collected by the agree coordinator.
struct AgreeReport {
  int rank = -1;
  ProcId pid = kNullProc;
  std::uint64_t hash = 0;
  std::uint64_t epoch = 0;
};

#ifdef FTR_PSAN

/// Lifecycle check for a non-sanctioned operation on `c`.  Aborts with a
/// diagnostic if this rank itself revoked the context earlier.  No-op off
/// rank threads and for null comms.
void on_use(const Comm& c, const char* op, const char* file, int line);

/// on_use plus an append of (op, root) to this rank's collective stream on
/// the context.  Every collective entry point calls this once, before any
/// early return, so a rank that enters is a rank that is counted.
void on_collective(const Comm& c, const char* op, int root, const char* file, int line);

/// Record that the calling rank observed the revocation of `c`.  `self` is
/// true when the rank revoked the context itself (which arms the strict
/// salvage-set check) and false for a passive observation (an operation
/// returned kErrRevoked; recorded for diagnostics only).
void on_revoke_observed(const Comm& c, const char* op, bool self, const char* file, int line);

/// Record a comm_free of `c` by the calling rank.  Aborts on double-free.
void on_free(const Comm& c, const char* file, int line);

/// This rank's current stream hash on `c` (for the agree uplink).
std::uint64_t stream_hash(const Comm& c);

/// The runtime's current failure epoch as seen by the calling rank.
std::uint64_t current_epoch();

/// Coordinator-side hash comparison at agree.  `reports` must include the
/// coordinator's own entry; `no_dead` is the emptiness of the dead-member
/// list the coordinator just computed for the agreement group.  Aborts with
/// a per-rank divergence trace on mismatch; on a verified match resets every
/// member's stream (callers are still blocked on the agree reply, so their
/// streams are quiescent).
void verify_at_agree(const Comm& c, const Group& g, const std::vector<AgreeReport>& reports,
                     bool no_dead);

/// Record the side communicator the overlapped-recovery split handed this
/// rank (the continuation sub-communicator, or the repair group's comm) and
/// the doorbell epoch the attempt was armed under.  The recorded context is
/// superseded together with the pre-handoff world once on_handoff fires.
void on_overlap_split(const Comm& side, std::uint64_t epoch, const char* file, int line);

/// The calling rank acked the repaired-world doorbell: mark the pre-handoff
/// world `old_world` (and the side context recorded by on_overlap_split, if
/// any) superseded under `epoch`.  Any later *collective* on a superseded
/// context aborts with a pinned use-after-handoff diagnostic; point-to-point
/// drains and frees stay allowed — dropping the old handles after the
/// handoff is the documented idiom, issuing collectives on them is the bug
/// (half the job lands on a world nobody else is in any more).
void on_handoff(const Comm& old_world, std::uint64_t epoch, const char* file, int line);

/// Drop every shadow entry belonging to `rt`.  Called from ~Runtime: pids
/// and context ids both restart per Runtime instance (and stack-allocated
/// Runtimes can reuse the same address), so stale entries would otherwise
/// bleed observations and stream hashes into the next simulated cluster.
void on_runtime_destroyed(const void* rt);

#define FTR_PSAN_USE(c, op) ::ftmpi::psan::on_use((c), (op), __FILE__, __LINE__)
#define FTR_PSAN_COLLECTIVE(c, op, root) \
  ::ftmpi::psan::on_collective((c), (op), (root), __FILE__, __LINE__)
#define FTR_PSAN_REVOKE_OBSERVED(c, op) \
  ::ftmpi::psan::on_revoke_observed((c), (op), false, __FILE__, __LINE__)
#define FTR_PSAN_SELF_REVOKE(c, op) \
  ::ftmpi::psan::on_revoke_observed((c), (op), true, __FILE__, __LINE__)
#define FTR_PSAN_FREE(c) ::ftmpi::psan::on_free((c), __FILE__, __LINE__)
#define FTR_PSAN_OVERLAP_SPLIT(c, epoch) \
  ::ftmpi::psan::on_overlap_split((c), (epoch), __FILE__, __LINE__)
#define FTR_PSAN_HANDOFF(oldc, epoch) \
  ::ftmpi::psan::on_handoff((oldc), (epoch), __FILE__, __LINE__)
#define FTR_PSAN_RUNTIME_DESTROYED(rt) ::ftmpi::psan::on_runtime_destroyed((rt))

#else

#define FTR_PSAN_USE(c, op) ((void)0)
#define FTR_PSAN_COLLECTIVE(c, op, root) ((void)0)
#define FTR_PSAN_REVOKE_OBSERVED(c, op) ((void)0)
#define FTR_PSAN_SELF_REVOKE(c, op) ((void)0)
#define FTR_PSAN_FREE(c) ((void)0)
#define FTR_PSAN_OVERLAP_SPLIT(c, epoch) ((void)0)
#define FTR_PSAN_HANDOFF(oldc, epoch) ((void)0)
#define FTR_PSAN_RUNTIME_DESTROYED(rt) ((void)0)

#endif  // FTR_PSAN

}  // namespace psan
}  // namespace ftmpi
