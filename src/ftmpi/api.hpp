#pragma once
// Public API of the simulated fault-tolerant MPI runtime.
//
// The surface mirrors the MPI-2 subset plus the draft ULFM extensions used
// by the paper's recovery protocol:
//
//   MPI                      ftmpi
//   ----------------------   ------------------------------------------
//   MPI_Comm_rank/size       Comm::rank()/size(), or compat wrappers
//   MPI_Send/Recv            send()/recv()
//   MPI_Barrier/Bcast/...    barrier()/bcast()/reduce()/gather()/...
//   MPI_Comm_split/dup       comm_split()/comm_dup()
//   MPI_Comm_spawn_multiple  comm_spawn_multiple()
//   MPI_Intercomm_merge      intercomm_merge()
//   MPI_Comm_get_parent      get_parent()
//   OMPI_Comm_revoke         comm_revoke()
//   OMPI_Comm_shrink         comm_shrink()
//   OMPI_Comm_agree          comm_agree()
//   OMPI_Comm_failure_ack    comm_failure_ack()
//   OMPI_Comm_failure_get_acked  comm_failure_get_acked()
//   MPI_Wtime                wtime()  (virtual time; see cost_model.hpp)
//
// All functions must be called from a rank thread (inside Runtime::run).
// Error handling follows ULFM practice: calls return an error code; if an
// error handler has been attached to the communicator it is invoked first.

#include <algorithm>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "ftmpi/comm.hpp"
#include "common/annotations.hpp"
#include "ftmpi/runtime.hpp"
#include "ftmpi/types.hpp"

namespace ftmpi {

// --- environment ------------------------------------------------------------

/// This process's MPI_COMM_WORLD handle (cached: error handlers attached to
/// it persist).  For spawned processes this is the world of their spawn
/// group, as in MPI.
Comm& world();

/// The intercommunicator to the spawner, or a null Comm for initial
/// processes (MPI_Comm_get_parent).
Comm& get_parent();

/// Overwrite the cached parent handle (the paper's protocol sets
/// parent = MPI_COMM_NULL when a repaired child becomes a regular parent).
void set_parent(const Comm& parent);

/// Virtual time of the calling process (MPI_Wtime).
double wtime();

/// Charge `seconds` of modeled compute time to the calling process.
void advance(double seconds);

/// Charge `flops / flops_rate` seconds of modeled compute time.
void charge_flops(double flops);

/// Charge one simulated disk write/read of `bytes` (checkpointing I/O).
void charge_disk_write(std::size_t bytes);
void charge_disk_read(std::size_t bytes);

/// Self-kill, equivalent to the paper's kill(getpid(), SIGKILL) failure
/// injection.  Marks the process dead and unwinds immediately; never returns.
[[noreturn]] void abort_self();

/// Pid of the calling process (for Runtime::kill from harness code).
ProcId self_pid();

/// The Runtime the calling rank thread belongs to.
Runtime& runtime();

/// Named protocol phase boundary for chaos injection.  Invokes the
/// Runtime's chaos hook (if any) with the phase name and the calling pid,
/// then re-checks liveness so a hook that kills the caller unwinds it right
/// at the boundary.  No-op off rank threads and when no hook is installed.
/// Phases fired by the runtime: "shrink", "agree", "agree.tree", "spawn",
/// "spawn.done", "merge", "split"; the failure detector fires
/// "detector.heartbeat" before each ring heartbeat and "detector.gossip"
/// before each gossip fan-out; the checkpoint store fires "ckpt.write"; the
/// diskless buddy subsystem fires "buddy.send" before each replication send.
void chaos_point(const char* phase);

// --- failure detector -------------------------------------------------------
// The heartbeat-ring/gossip failure detector (detector.hpp) gives every rank
// always-on failure knowledge.  Its rank-callable surface — detector_enabled,
// detector_epoch, detector_known_failed, detector_records and
// detector_knows_failure_in — is declared in detector.hpp (included via
// runtime.hpp).  Knobs: Runtime::Options::detector, or FTR_DETECTOR=ring|off,
// FTR_HB_PERIOD / FTR_HB_SUSPECT / FTR_HB_TIMEOUT (virtual seconds).

// --- error handling -----------------------------------------------------------

/// Attach an error handler (MPI_Comm_set_errhandler with a user handler
/// created by MPI_Comm_create_errhandler).  Pass an empty function for
/// MPI_ERRORS_RETURN (the default).
FTR_NODISCARD int comm_set_errhandler(const Comm& c, ErrhandlerFn handler);

/// Invoke the communicator's error handler for `code` (when != success) and
/// return `code`.  Exposed for protocol code built on top of the raw byte
/// primitives.
FTR_NODISCARD int finish(const Comm& c, int code);

// --- point-to-point -----------------------------------------------------------

FTR_NODISCARD int send_bytes(const void* data, std::size_t n, int dest, int tag, const Comm& c);
FTR_NODISCARD int recv_bytes(void* buf, std::size_t max_bytes, int src, int tag, const Comm& c,
               Status* status = nullptr);

template <class T>
FTR_NODISCARD int send(const T* buf, int count, int dest, int tag, const Comm& c) {
  static_assert(std::is_trivially_copyable_v<T>);
  return send_bytes(buf, sizeof(T) * static_cast<std::size_t>(count), dest, tag, c);
}

template <class T>
FTR_NODISCARD int recv(T* buf, int count, int src, int tag, const Comm& c, Status* status = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  return recv_bytes(buf, sizeof(T) * static_cast<std::size_t>(count), src, tag, c, status);
}

// --- nonblocking point-to-point / probe ------------------------------------------
// Sends are eager, so isend completes immediately; irecv defers matching to
// wait/test (same virtual-time outcome as a progressing receive — see
// request.hpp).

class Request;

FTR_NODISCARD int isend_bytes(const void* data, std::size_t n, int dest, int tag, const Comm& c,
                Request* req);
FTR_NODISCARD int irecv_bytes(void* buf, std::size_t max_bytes, int src, int tag, const Comm& c,
                Request* req);
/// Complete a request (blocking for receives).
FTR_NODISCARD int wait(Request* req, Status* status = nullptr);
FTR_NODISCARD int waitall(Request* reqs, int count, Status* statuses = nullptr);
/// Nonblocking completion check; *flag = 1 when the request completed.
FTR_NODISCARD int test(Request* req, int* flag, Status* status = nullptr);

/// Nonblocking / blocking message probe (MPI_Iprobe / MPI_Probe).
FTR_NODISCARD int iprobe(int src, int tag, const Comm& c, int* flag, Status* status = nullptr);
FTR_NODISCARD int probe(int src, int tag, const Comm& c, Status* status = nullptr);

/// Salvage variants restricted to *already-buffered* traffic: answer "has a
/// matching message already been delivered into my mailbox?" and, if so,
/// hand it over.  That question is purely local, so — unlike iprobe/recv —
/// these work on a revoked communicator and never report peer failures: a
/// revoke fences future traffic but does not claw back eager data the
/// transport delivered before it.  Recovery protocols use them to harvest
/// in-flight replicas after the world broke.  recv_buffered never blocks;
/// with nothing matching it returns kErrPending.
FTR_NODISCARD int iprobe_buffered(int src, int tag, const Comm& c, int* flag, Status* status = nullptr);
FTR_NODISCARD int recv_buffered(void* buf, std::size_t max_bytes, int src, int tag, const Comm& c,
                  Status* status = nullptr);

/// MPI_Sendrecv equivalent.
FTR_NODISCARD int sendrecv_bytes(const void* send_data, std::size_t send_n, int dest, int send_tag,
                   void* recv_buf, std::size_t recv_max, int src, int recv_tag,
                   const Comm& c, Status* status = nullptr);

template <class T>
FTR_NODISCARD int isend(const T* buf, int count, int dest, int tag, const Comm& c, Request* req) {
  static_assert(std::is_trivially_copyable_v<T>);
  return isend_bytes(buf, sizeof(T) * static_cast<std::size_t>(count), dest, tag, c, req);
}

template <class T>
FTR_NODISCARD int irecv(T* buf, int count, int src, int tag, const Comm& c, Request* req) {
  static_assert(std::is_trivially_copyable_v<T>);
  return irecv_bytes(buf, sizeof(T) * static_cast<std::size_t>(count), src, tag, c, req);
}

template <class T>
FTR_NODISCARD int sendrecv(const T* send_buf, int send_count, int dest, int send_tag, T* recv_buf,
             int recv_count, int src, int recv_tag, const Comm& c,
             Status* status = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  return sendrecv_bytes(send_buf, sizeof(T) * static_cast<std::size_t>(send_count), dest,
                        send_tag, recv_buf,
                        sizeof(T) * static_cast<std::size_t>(recv_count), src, recv_tag, c,
                        status);
}

// --- collectives ----------------------------------------------------------------
// Root-coordinated implementations.  Their failure reporting is near-uniform
// (the root aggregates the outcome), which is what the paper's detection
// step (Fig. 3 line 13) relies on.

FTR_NODISCARD int barrier(const Comm& c);

FTR_NODISCARD int bcast_bytes(void* buf, std::size_t n, int root, const Comm& c);
/// Variable-size gather: rank r's payload lands in (*out)[r] at the root.
FTR_NODISCARD int gather_bytes(const void* data, std::size_t n, std::vector<std::vector<std::byte>>* out,
                 int root, const Comm& c);

template <class T>
FTR_NODISCARD int bcast(T* buf, int count, int root, const Comm& c) {
  static_assert(std::is_trivially_copyable_v<T>);
  return bcast_bytes(buf, sizeof(T) * static_cast<std::size_t>(count), root, c);
}

template <class T>
FTR_NODISCARD int gather(const T* sendbuf, int count, T* recvbuf, int root, const Comm& c) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::vector<std::byte>> parts;
  const int rc = gather_bytes(sendbuf, sizeof(T) * static_cast<std::size_t>(count),
                              c.rank() == root ? &parts : nullptr, root, c);
  if (rc == kSuccess && c.rank() == root) {
    for (int r = 0; r < c.size(); ++r) {
      std::memcpy(recvbuf + static_cast<std::size_t>(r) * static_cast<std::size_t>(count),
                  parts[static_cast<size_t>(r)].data(),
                  std::min(parts[static_cast<size_t>(r)].size(),
                           sizeof(T) * static_cast<std::size_t>(count)));
    }
  }
  return rc;
}

/// Gather variable-length vectors (convenience; MPI_Gatherv equivalent).
template <class T>
FTR_NODISCARD int gatherv(const std::vector<T>& sendbuf, std::vector<std::vector<T>>* recv_parts,
            int root, const Comm& c) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::vector<std::byte>> parts;
  const int rc = gather_bytes(sendbuf.data(), sizeof(T) * sendbuf.size(),
                              c.rank() == root ? &parts : nullptr, root, c);
  if (rc == kSuccess && c.rank() == root && recv_parts != nullptr) {
    recv_parts->clear();
    recv_parts->reserve(parts.size());
    for (auto& p : parts) {
      std::vector<T> v(p.size() / sizeof(T));
      std::memcpy(v.data(), p.data(), v.size() * sizeof(T));
      recv_parts->push_back(std::move(v));
    }
  }
  return rc;
}

namespace detail_reduce {
template <class T>
T combine(ReduceOp op, T a, T b) {
  switch (op) {
    case ReduceOp::Sum: return static_cast<T>(a + b);
    case ReduceOp::Max: return std::max(a, b);
    case ReduceOp::Min: return std::min(a, b);
    case ReduceOp::LogicalAnd: return static_cast<T>((a != T{}) && (b != T{}));
    case ReduceOp::LogicalOr: return static_cast<T>((a != T{}) || (b != T{}));
  }
  return a;
}

template <class T>
void combine_bytes(void* acc, const void* in, int count, ReduceOp op) {
  T* a = static_cast<T*>(acc);
  for (int i = 0; i < count; ++i) {
    T v{};
    std::memcpy(&v, static_cast<const std::byte*>(in) + sizeof(T) * static_cast<std::size_t>(i),
                sizeof(T));
    a[i] = combine(op, a[i], v);
  }
}
}  // namespace detail_reduce

/// Type-erased element-wise combine used by the tree allreduce.
using CombineBytesFn = void (*)(void* acc, const void* in, int count, ReduceOp op);

/// True when the runtime routes allreduce and comm_agree through the
/// log-depth tree protocols (Runtime::Options::tree_protocols, overridable
/// with FTR_AGREE=tree|linear).
[[nodiscard]] bool tree_collectives_enabled();

/// Fault-tolerant log-depth allreduce: partial vectors reduce up a binary
/// tree built over the live members, the root folds the outcome, and result
/// plus outcome flood back down with re-routing around dead interior nodes.
/// `buf` holds this rank's contribution on entry and the reduced vector on a
/// successful return.
FTR_NODISCARD int allreduce_bytes_tree(void* buf, std::size_t elem_size, int count,
                                       ReduceOp op, CombineBytesFn combine, const Comm& c);

template <class T>
FTR_NODISCARD int reduce(const T* sendbuf, T* recvbuf, int count, ReduceOp op, int root, const Comm& c) {
  static_assert(std::is_arithmetic_v<T>);
  std::vector<std::vector<std::byte>> parts;
  const int rc = gather_bytes(sendbuf, sizeof(T) * static_cast<std::size_t>(count),
                              c.rank() == root ? &parts : nullptr, root, c);
  if (rc != kSuccess) return rc;
  if (c.rank() == root) {
    for (int i = 0; i < count; ++i) recvbuf[i] = sendbuf[i];
    for (int r = 0; r < c.size(); ++r) {
      if (r == root) continue;
      const auto& p = parts[static_cast<size_t>(r)];
      for (int i = 0; i < count; ++i) {
        T v{};
        std::memcpy(&v, p.data() + sizeof(T) * static_cast<std::size_t>(i), sizeof(T));
        recvbuf[i] = detail_reduce::combine(op, recvbuf[i], v);
      }
    }
  }
  return kSuccess;
}

template <class T>
FTR_NODISCARD int allreduce(const T* sendbuf, T* recvbuf, int count, ReduceOp op, const Comm& c) {
  static_assert(std::is_arithmetic_v<T>);
  if (!c.is_null() && !c.is_inter() && tree_collectives_enabled()) {
    for (int i = 0; i < count; ++i) recvbuf[i] = sendbuf[i];
    return allreduce_bytes_tree(recvbuf, sizeof(T), count, op,
                                &detail_reduce::combine_bytes<T>, c);
  }
  int rc = reduce(sendbuf, recvbuf, count, op, 0, c);
  if (rc != kSuccess) return rc;
  return bcast(recvbuf, count, 0, c);
}

template <class T>
FTR_NODISCARD int allgather(const T* sendbuf, int count, T* recvbuf, const Comm& c) {
  int rc = gather(sendbuf, count, recvbuf, 0, c);
  if (rc != kSuccess) return rc;
  return bcast(recvbuf, count * c.size(), 0, c);
}

/// Root distributes fixed-size per-rank slices (MPI_Scatter).  `send` is
/// significant at the root only; each rank receives `per_rank` bytes.
FTR_NODISCARD int scatter_bytes(const void* send, std::size_t per_rank, void* recv, int root,
                  const Comm& c);
/// Variable-size scatter: one buffer per rank at the root (MPI_Scatterv).
FTR_NODISCARD int scatterv_bytes(const std::vector<std::vector<std::byte>>& parts,
                   std::vector<std::byte>* recv, int root, const Comm& c);

template <class T>
FTR_NODISCARD int scatter(const T* sendbuf, int count, T* recvbuf, int root, const Comm& c) {
  static_assert(std::is_trivially_copyable_v<T>);
  return scatter_bytes(sendbuf, sizeof(T) * static_cast<std::size_t>(count), recvbuf, root,
                       c);
}

/// Release a communicator handle (MPI_Comm_free).  Contexts are reference
/// counted through shared ownership; the handle becomes null.
FTR_NODISCARD int comm_free(Comm* c);

/// Human-readable name of an ftmpi error code (MPI_Error_string).
const char* error_string(int code);

// --- communicator management ---------------------------------------------------

inline constexpr int kUndefinedColor = -1;  ///< MPI_UNDEFINED for comm_split

FTR_NODISCARD int comm_split(const Comm& c, int color, int key, Comm* out);
FTR_NODISCARD int comm_dup(const Comm& c, Comm* out);

/// The local group of the communicator (MPI_Comm_group).
Group comm_group(const Comm& c);

// --- dynamic processes ----------------------------------------------------------

/// One command of MPI_Comm_spawn_multiple.
struct SpawnUnit {
  std::string command;             ///< registered application name
  std::vector<std::string> argv;
  int maxprocs = 1;
  int host = -1;                   ///< MPI_Info "host" hint; -1 = any free slot
};

/// Collective over `c`.  The root launches the processes; everyone receives
/// the parent-side intercommunicator in *intercomm.
FTR_NODISCARD int comm_spawn_multiple(const std::vector<SpawnUnit>& units, int root, const Comm& c,
                        Comm* intercomm, std::vector<int>* errcodes = nullptr);

/// MPI_Intercomm_merge.  The side passing high=false is ordered first.
FTR_NODISCARD int intercomm_merge(const Comm& inter, bool high, Comm* out);

/// MPI_Intercomm_create.  Collective over `local`; the two leaders exchange
/// group membership over `bridge` (significant at the leaders only) and the
/// whole of both groups receives the new intercommunicator.  `tag`
/// disambiguates concurrent creates over the same bridge.  Overlapped
/// recovery uses this to join the continuation sub-communicator with the
/// repaired group without a world-wide collective.
FTR_NODISCARD int intercomm_create(const Comm& local, int local_leader, const Comm& bridge,
                                   int remote_leader, int tag, Comm* out);

// --- ULFM extensions -------------------------------------------------------------

/// OMPI_Comm_revoke: mark the communicator revoked everywhere; all pending
/// and future operations on it (except shrink/agree) fail with kErrRevoked.
FTR_NODISCARD int comm_revoke(const Comm& c);

/// OMPI_Comm_shrink: build a new communicator from the surviving members,
/// preserving their relative rank order.  Works on revoked communicators.
FTR_NODISCARD int comm_shrink(const Comm& c, Comm* out);

/// OMPI_Comm_agree: fault-tolerant agreement on the bitwise AND of *flag.
/// Returns kErrProcFailed (uniformly) when the communicator contains dead
/// members not yet acknowledged by this process, but still sets *flag.
FTR_NODISCARD int comm_agree(const Comm& c, int* flag);

/// OMPI_Comm_failure_ack: acknowledge all currently-known failures.
FTR_NODISCARD int comm_failure_ack(const Comm& c);

/// OMPI_Comm_failure_get_acked: group of acknowledged failed processes.
FTR_NODISCARD int comm_failure_get_acked(const Comm& c, Group* failed);

}  // namespace ftmpi
