// Scatter collectives: the root distributes per-rank slices.  Root-
// coordinated like the other collectives; the reply-style delivery gives
// near-uniform failure reporting.

#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/psan.hpp"

namespace ftmpi {

int scatter_bytes(const void* send, std::size_t per_rank, void* recv, int root,
                  const Comm& c) {
  detail::check_alive();
  if (c.is_null() || c.is_inter()) return kErrComm;
  if (root < 0 || root >= c.size()) return finish(c, kErrArg);
  FTR_PSAN_COLLECTIVE(c, "scatter_bytes", root);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();

  if (c.rank() == root) {
    int outcome = kSuccess;
    const auto* base = static_cast<const std::byte*>(send);
    for (int r = 0; r < g.size(); ++r) {
      if (r == root) continue;
      const int st = detail::ctrl_send(g.pids[static_cast<size_t>(r)], id, tags::kScatter,
                                       base + static_cast<size_t>(r) * per_rank, per_rank);
      if (st != kSuccess) outcome = kErrProcFailed;
    }
    if (recv != nullptr) {
      std::memcpy(recv, base + static_cast<size_t>(root) * per_rank, per_rank);
    }
    return finish(c, outcome);
  }
  std::vector<std::byte> payload;
  const int rc = detail::ctrl_recv(g.pids[static_cast<size_t>(root)], id, tags::kScatter,
                                   &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  if (recv != nullptr) std::memcpy(recv, payload.data(), std::min(per_rank, payload.size()));
  return finish(c, kSuccess);
}

/// Variable-size scatter: the root provides one buffer per rank.
int scatterv_bytes(const std::vector<std::vector<std::byte>>& parts,
                   std::vector<std::byte>* recv, int root, const Comm& c) {
  detail::check_alive();
  if (c.is_null() || c.is_inter()) return kErrComm;
  if (root < 0 || root >= c.size()) return finish(c, kErrArg);
  FTR_PSAN_COLLECTIVE(c, "scatterv_bytes", root);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();

  if (c.rank() == root) {
    int outcome = kSuccess;
    for (int r = 0; r < g.size(); ++r) {
      if (r == root) continue;
      const auto& part = parts.at(static_cast<size_t>(r));
      const int st = detail::ctrl_send(g.pids[static_cast<size_t>(r)], id, tags::kScatter,
                                       part.data(), part.size());
      if (st != kSuccess) outcome = kErrProcFailed;
    }
    if (recv != nullptr) *recv = parts.at(static_cast<size_t>(root));
    return finish(c, outcome);
  }
  std::vector<std::byte> payload;
  const int rc = detail::ctrl_recv(g.pids[static_cast<size_t>(root)], id, tags::kScatter,
                                   &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  if (recv != nullptr) *recv = std::move(payload);
  return finish(c, kSuccess);
}

}  // namespace ftmpi
