// Heartbeat-ring failure detector with gossip propagation (see detector.hpp
// for the state machine).  Everything here runs on the owning rank thread,
// piggybacked on runtime entry points; the only cross-thread communication
// is the mailbox itself plus the det_pending counter bumped by deliver().

#include "ftmpi/detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"

namespace ftmpi::detector {

namespace {

const Options& opts(const ProcessState& ps) { return ps.rt->options().detector; }

/// Ring membership: started, unfinished pids (RTE-visible facts) minus the
/// failures this rank already knows about.  Deliberately *not* filtered by
/// oracle liveness — a dead pid stays in the ring until its successor times
/// out on it; that timeout is the detection mechanism.
std::vector<ProcId> ring_members(const ProcessState& ps) {
  std::vector<ProcId> m = ps.rt->active_pids();
  if (!ps.det.known_failed.empty()) {
    m.erase(std::remove_if(m.begin(), m.end(),
                           [&ps](ProcId p) { return ps.det.known_failed.count(p) > 0; }),
            m.end());
  }
  return m;
}

/// Position of ps in the ring, or -1 when ps is not a member (e.g. during
/// startup before every peer has joined).
int ring_index(const std::vector<ProcId>& m, ProcId pid) {
  const auto it = std::lower_bound(m.begin(), m.end(), pid);
  if (it == m.end() || *it != pid) return -1;
  return static_cast<int>(it - m.begin());
}

/// Deliver one detector-channel message.  The detector is a *zero
/// virtual-cost* overlay: which rank drains which message first depends on
/// real thread scheduling, so any virtual-time charge here would make the
/// simulated clocks nondeterministic.  Heartbeats model out-of-band RTE
/// traffic; they are counted in the message statistics and stamped with the
/// usual network latency (for the detection-latency records), but never
/// advance any virtual clock.
void send_det(ProcessState& ps, ProcId dst, int tag, const std::vector<std::byte>& payload) {
  if (dst == ps.pid) return;
  Runtime& rt = *ps.rt;
  const CostModel& cm = rt.cost();
  const bool same_host = rt.host_of(dst) == ps.host;
  Message msg;
  msg.ctx = 0;
  msg.tag = tag;
  msg.ctrl = true;
  msg.src_pid = ps.pid;
  msg.payload = payload;
  msg.arrive = ps.vclock + cm.latency(same_host);
  rt.record_message(payload.size(), !same_host);
  rt.deliver(dst, std::move(msg));
}

/// Forward a (fresh) failure to the ring members at distance 1, 2, 4, ...
/// Every receiver of fresh information fans out the same way, so the whole
/// ring learns in O(log N) hops; stale duplicates die at epoch_ok().
void gossip_fan_out(ProcessState& ps, ProcId dead, ProcId origin, std::uint32_t hops) {
  const std::vector<ProcId> m = ring_members(ps);
  const int mi = ring_index(m, ps.pid);
  if (mi < 0 || m.size() < 2) return;
  chaos_point("detector.gossip");
  std::set<ProcId> targets;
  for (std::size_t step = 1; step < m.size(); step *= 2) {
    targets.insert(m[(static_cast<std::size_t>(mi) + step) % m.size()]);
  }
  targets.erase(ps.pid);
  const GossipWire w{dead, origin, ps.det.epoch, hops, 0};
  const std::vector<std::byte> payload = detail::pack(w);
  for (ProcId t : targets) {
    send_det(ps, t, tags::kGossip, payload);
    ++ps.det.gossip_sent;
  }
}

/// Record a newly learned failure and start/continue its propagation.
void confirm_failure(ProcessState& ps, ProcId dead, Source how, ProcId origin,
                     std::uint32_t hops) {
  State& st = ps.det;
  if (dead < 0 || dead == ps.pid || st.known_failed.count(dead) > 0) return;
  st.known_failed.insert(dead);
  st.suspected.erase(dead);
  st.last_heard.erase(dead);
  ++st.epoch;
  st.records.push_back({dead, ps.vclock, how});
  FTR_DEBUG("detector: pid %d learned pid %d failed (how=%d, epoch=%llu)", ps.pid, dead,
            static_cast<int>(how), static_cast<unsigned long long>(st.epoch));
  gossip_fan_out(ps, dead, origin, hops);
}

void absorb_one(ProcessState& ps, const Message& msg) {
  State& st = ps.det;
  if (msg.tag == tags::kHeartbeat) {
    const auto w = detail::unpack<HeartbeatWire>(msg.payload);
    if (!epoch_ok(st, w)) {
      ++st.stale_discarded;
      return;
    }
    double& heard = st.last_heard[w.src];
    heard = std::max(heard, msg.arrive);
    st.suspected.erase(w.src);
  } else if (msg.tag == tags::kGossip) {
    const auto w = detail::unpack<GossipWire>(msg.payload);
    ++st.gossip_received;
    if (!epoch_ok(st, w)) {
      // Stale or duplicate knowledge: discarded, never re-forwarded —
      // this (plus the epoch bump in confirm_failure) is what terminates
      // the gossip cascade.
      ++st.stale_discarded;
      return;
    }
    confirm_failure(ps, w.dead, Source::kGossip, w.origin, w.hops + 1);
  }
}

/// Periodic ring duties: heartbeat the successor, judge the predecessor.
void ring_tick(ProcessState& ps) {
  State& st = ps.det;
  const Options& o = opts(ps);
  const std::vector<ProcId> m = ring_members(ps);
  const int mi = ring_index(m, ps.pid);
  if (mi < 0 || m.size() < 2) return;

  // Heartbeat the ring successor (a blind post: the network drops traffic
  // to a crashed process, which is exactly what starves the observer).
  const ProcId succ = m[(static_cast<std::size_t>(mi) + 1) % m.size()];
  chaos_point("detector.heartbeat");
  const HeartbeatWire hb{ps.pid, 0, st.epoch, ++st.hb_seq};
  send_det(ps, succ, tags::kHeartbeat, detail::pack(hb));
  ++st.heartbeats_sent;

  // Judge the ring predecessor by the silence since its last heartbeat.
  const ProcId pred = m[(static_cast<std::size_t>(mi) + m.size() - 1) % m.size()];
  const auto it = st.last_heard.find(pred);
  if (it == st.last_heard.end()) {
    st.last_heard[pred] = ps.vclock;  // grace starts at first observation
    return;
  }
  const double silence = ps.vclock - it->second;
  if (silence <= o.suspect_after) {
    st.suspected.erase(pred);
    return;
  }
  if (silence <= o.confirm_after) {
    if (st.suspected.insert(pred).second) {
      FTR_DEBUG("detector: pid %d suspects pid %d (silent %.3fs)", ps.pid, pred, silence);
    }
    return;
  }
  // Confirmation requires a direct probe round-trip (the oracle stands in
  // for the ping/ack of a real RTE), so sustained slowness alone can never
  // produce a false positive.  Like every detector action, the probe is
  // free in virtual time (see send_det).
  if (ps.rt->is_dead(pred)) {
    confirm_failure(ps, pred, Source::kRing, ps.pid, 0);
  } else {
    ++st.false_alarms;
    st.suspected.erase(pred);
    st.last_heard[pred] = ps.vclock;
    FTR_DEBUG("detector: pid %d probed slow-but-alive pid %d (false alarm)", ps.pid, pred);
  }
}

}  // namespace

bool enabled(const ProcessState& ps) {
  return ps.rt != nullptr && ps.rt->options().detector.enabled;
}

bool epoch_ok(const State& st, const HeartbeatWire& w) {
  // A heartbeat from a pid this rank already knows is dead is stale ring
  // traffic from before the failure propagated; it must not resurrect the
  // sender's alive status.
  return w.src >= 0 && st.known_failed.count(w.src) == 0;
}

bool epoch_ok(const State& st, const GossipWire& w) {
  // Gossip is stamped with the sender's epoch *after* it learned the
  // failure, so a zero epoch is malformed, and news about an already-known
  // failure is a duplicate that must die here (termination of the cascade).
  return w.epoch > 0 && w.dead >= 0 && st.known_failed.count(w.dead) == 0;
}

void drain(ProcessState& ps) {
  if (!enabled(ps)) return;
  if (ps.det_pending.load(std::memory_order_acquire) == 0) return;
  std::vector<Message> batch;
  {
    std::lock_guard<std::mutex> lock(ps.mu);
    for (auto it = ps.mailbox.begin(); it != ps.mailbox.end();) {
      if (it->ctrl && (it->tag == tags::kHeartbeat || it->tag == tags::kGossip)) {
        batch.push_back(std::move(*it));
        it = ps.mailbox.erase(it);
      } else {
        ++it;
      }
    }
    ps.det_pending.store(0, std::memory_order_release);
  }
  for (const Message& m : batch) absorb_one(ps, m);
}

void maybe_tick(ProcessState& ps) {
  if (!enabled(ps)) return;
  State& st = ps.det;
  if (ps.det_pending.load(std::memory_order_relaxed) == 0 && ps.vclock < st.hb_next) {
    return;
  }
  drain(ps);
  if (!st.ring_joined) {
    // First tick only arms the schedule; the first heartbeat goes out at
    // the next period boundary, so sub-period workloads never send any.
    st.ring_joined = true;
    st.hb_next = (std::floor(ps.vclock / opts(ps).period) + 1.0) * opts(ps).period;
    return;
  }
  if (ps.vclock >= st.hb_next) {
    // One heartbeat per tick even if a long charge (e.g. a checkpoint
    // write) crossed several periods; then resynchronize the schedule.
    st.hb_next = (std::floor(ps.vclock / opts(ps).period) + 1.0) * opts(ps).period;
    ring_tick(ps);
  }
}

void note_transport_failure(ProcessState& ps, ProcId dead) {
  if (!enabled(ps)) return;
  confirm_failure(ps, dead, Source::kTransport, ps.pid, 0);
}

int observe_hopeless_wait(ProcessState& ps, const std::vector<ProcessState*>& watch) {
  // Charge exactly what the legacy path charges: whether the detector had
  // already announced the death depends on real message-delivery races, so
  // any charge conditioned on it would break virtual-time determinism.  The
  // observation still folds into the detector, so the knowledge gossips to
  // ranks that never touch the dead peer.
  ps.vclock += ps.rt->cost().failure_detect_latency;
  for (const ProcessState* w : watch) {
    if (w->dead.load()) note_transport_failure(ps, w->pid);
  }
  return kErrProcFailed;
}

bool knows(const ProcessState& ps, ProcId pid) {
  return ps.det.known_failed.count(pid) > 0;
}

bool knows_any_in(const ProcessState& ps, const Group& g) {
  if (ps.det.known_failed.empty()) return false;
  for (ProcId p : g.pids) {
    if (ps.det.known_failed.count(p) > 0) return true;
  }
  return false;
}

}  // namespace ftmpi::detector

namespace ftmpi {

bool detector_enabled() { return detector::enabled(detail::self()); }

DetectorEpoch detector_epoch() { return detail::self().det.epoch; }

std::vector<ProcId> detector_known_failed() {
  const detector::State& st = detail::self().det;
  return {st.known_failed.begin(), st.known_failed.end()};
}

std::vector<detector::Record> detector_records() { return detail::self().det.records; }

void detector_note_failed(ProcId dead) {
  detector::note_transport_failure(detail::self(), dead);
}

bool detector_knows_failure_in(const Comm& c) {
  ProcessState& ps = detail::self();
  if (!detector::enabled(ps) || c.is_null()) return false;
  detector::drain(ps);
  return detector::knows_any_in(ps, c.group());
}

}  // namespace ftmpi
