// Nonblocking point-to-point, probe, and send-receive.

#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/request.hpp"

namespace ftmpi {

int isend_bytes(const void* data, std::size_t n, int dest, int tag, const Comm& c,
                Request* req) {
  // Eager transport: the send buffers at the destination immediately.
  const int rc = send_bytes(data, n, dest, tag, c);
  *req = Request{};
  req->kind_ = Request::Kind::SendComplete;
  req->send_result = rc;
  return rc;
}

int irecv_bytes(void* buf, std::size_t max_bytes, int src, int tag, const Comm& c,
                Request* req) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  *req = Request{};
  req->kind_ = Request::Kind::Recv;
  req->comm = c;
  req->buf = buf;
  req->max_bytes = max_bytes;
  req->source = src;
  req->tag = tag;
  return kSuccess;
}

int wait(Request* req, Status* status) {
  detail::check_alive();
  switch (req->kind_) {
    case Request::Kind::Null:
      return kSuccess;
    case Request::Kind::SendComplete: {
      const int rc = req->send_result;
      *req = Request{};
      return rc;
    }
    case Request::Kind::Recv: {
      const int rc =
          recv_bytes(req->buf, req->max_bytes, req->source, req->tag, req->comm, status);
      *req = Request{};
      return rc;
    }
  }
  return kErrArg;
}

int waitall(Request* reqs, int count, Status* statuses) {
  int outcome = kSuccess;
  for (int i = 0; i < count; ++i) {
    const int rc = wait(&reqs[i], statuses != nullptr ? &statuses[i] : nullptr);
    if (rc != kSuccess && outcome == kSuccess) outcome = rc;
  }
  return outcome;
}

int test(Request* req, int* flag, Status* status) {
  detail::check_alive();
  *flag = 0;
  switch (req->kind_) {
    case Request::Kind::Null:
    case Request::Kind::SendComplete:
      *flag = 1;
      return wait(req, status);
    case Request::Kind::Recv: {
      int available = 0;
      const int rc = iprobe(req->source, req->tag, req->comm, &available, nullptr);
      if (rc != kSuccess) {
        // Probe surfaced a definitive condition (failed peer / revoked):
        // complete the request with that outcome.
        *flag = 1;
        *req = Request{};
        if (status != nullptr) status->error = rc;
        return finish(req->comm, rc);
      }
      if (!available) return kSuccess;
      *flag = 1;
      return wait(req, status);
    }
  }
  return kErrArg;
}

int iprobe(int src, int tag, const Comm& c, int* flag, Status* status) {
  detail::check_alive();
  *flag = 0;
  if (c.is_null()) return kErrComm;
  if (c.is_revoked()) return kErrRevoked;
  ProcessState& ps = detail::self();
  const std::uint64_t id = c.context()->id;
  const int side = c.side();
  const bool inter = c.is_inter();
  std::lock_guard<std::mutex> lock(ps.mu);
  for (const Message& m : ps.mailbox) {
    if (m.ctrl || m.ctx != id) continue;
    if (tag == kAnyTag ? m.tag < 0 : m.tag != tag) continue;
    if (src != kAnySource && m.src_rank != src) continue;
    if (inter ? (m.src_side == side) : (m.src_side != side)) continue;
    *flag = 1;
    if (status != nullptr) {
      status->source = m.src_rank;
      status->tag = m.tag;
      status->error = kSuccess;
      status->count = static_cast<int>(m.payload.size());
    }
    return kSuccess;
  }
  // Nothing buffered; report a failed named peer so callers do not spin on
  // a crashed sender.
  if (src != kAnySource) {
    const Group& senders = inter ? c.remote_group() : c.group();
    const ProcId pid = senders.pids.at(static_cast<size_t>(src));
    ProcessState& sender = detail::rt().proc(pid);
    if (sender.dead.load() || sender.finished.load()) return kErrProcFailed;
  }
  return kSuccess;
}

int probe(int src, int tag, const Comm& c, Status* status) {
  // Blocking probe: poll the mailbox under the wait loop's predicate rules.
  for (;;) {
    int flag = 0;
    const int rc = iprobe(src, tag, c, &flag, status);
    if (rc != kSuccess) return finish(c, rc);
    if (flag) return kSuccess;
    ProcessState& ps = detail::self();
    std::unique_lock<std::mutex> lock(ps.mu);
    if (ps.dead.load()) throw ProcessKilled{ps.pid};
    ps.cv.wait(lock);
  }
}

int sendrecv_bytes(const void* send_data, std::size_t send_n, int dest, int send_tag,
                   void* recv_buf, std::size_t recv_max, int src, int recv_tag,
                   const Comm& c, Status* status) {
  // Eager sends cannot deadlock, so send-then-receive is safe.
  const int src_rc = send_bytes(send_data, send_n, dest, send_tag, c);
  const int rrc = recv_bytes(recv_buf, recv_max, src, recv_tag, c, status);
  return rrc != kSuccess ? rrc : src_rc;
}

}  // namespace ftmpi
