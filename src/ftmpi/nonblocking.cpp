// Nonblocking point-to-point, probe, and send-receive.

#include <algorithm>
#include <cstring>

#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/psan.hpp"
#include "ftmpi/request.hpp"

namespace ftmpi {

int isend_bytes(const void* data, std::size_t n, int dest, int tag, const Comm& c,
                Request* req) {
  // Eager transport: the send buffers at the destination immediately.  A
  // nonblocking send only charges its injection overhead to the sender's
  // clock — the wire time is already carried by the message's arrival
  // stamp, so the transfer overlaps whatever the sender does next (this is
  // what lets buddy replication overlap time-stepping).
  ProcessState& ps = detail::self();
  const double before = ps.vclock;
  const int rc = send_bytes(data, n, dest, tag, c);
  if (rc == kSuccess) {
    const double charged = ps.vclock - before;
    ps.vclock = before + std::min(charged, detail::rt().cost().send_overhead);
  }
  *req = Request{};
  req->kind_ = Request::Kind::SendComplete;
  req->send_result = rc;
  return rc;
}

int irecv_bytes(void* buf, std::size_t max_bytes, int src, int tag, const Comm& c,
                Request* req) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  FTR_PSAN_USE(c, "irecv_bytes");
  *req = Request{};
  req->kind_ = Request::Kind::Recv;
  req->comm = c;
  req->buf = buf;
  req->max_bytes = max_bytes;
  req->source = src;
  req->tag = tag;
  return kSuccess;
}

int wait(Request* req, Status* status) {
  detail::check_alive();
  switch (req->kind_) {
    case Request::Kind::Null:
      return kSuccess;
    case Request::Kind::SendComplete: {
      const int rc = req->send_result;
      *req = Request{};
      return rc;
    }
    case Request::Kind::Recv: {
      const int rc =
          recv_bytes(req->buf, req->max_bytes, req->source, req->tag, req->comm, status);
      *req = Request{};
      return rc;
    }
  }
  return kErrArg;
}

int waitall(Request* reqs, int count, Status* statuses) {
  int outcome = kSuccess;
  for (int i = 0; i < count; ++i) {
    const int rc = wait(&reqs[i], statuses != nullptr ? &statuses[i] : nullptr);
    if (rc != kSuccess && outcome == kSuccess) outcome = rc;
  }
  return outcome;
}

int test(Request* req, int* flag, Status* status) {
  detail::check_alive();
  *flag = 0;
  switch (req->kind_) {
    case Request::Kind::Null:
    case Request::Kind::SendComplete:
      *flag = 1;
      return wait(req, status);
    case Request::Kind::Recv: {
      int available = 0;
      const int rc = iprobe(req->source, req->tag, req->comm, &available, nullptr);
      if (rc != kSuccess) {
        // Probe surfaced a definitive condition (failed peer / revoked):
        // complete the request with that outcome.
        *flag = 1;
        *req = Request{};
        if (status != nullptr) status->error = rc;
        return finish(req->comm, rc);
      }
      if (!available) return kSuccess;
      *flag = 1;
      return wait(req, status);
    }
  }
  return kErrArg;
}

namespace {

/// True when message `m` matches a user-plane receive on `c` for (src, tag).
bool buffered_match(const Message& m, const Comm& c, int src, int tag) {
  if (m.ctrl || m.ctx != c.context()->id) return false;
  if (tag == kAnyTag ? m.tag < 0 : m.tag != tag) return false;
  if (src != kAnySource && m.src_rank != src) return false;
  const int side = c.side();
  return c.is_inter() ? (m.src_side != side) : (m.src_side == side);
}

}  // namespace

int iprobe(int src, int tag, const Comm& c, int* flag, Status* status) {
  detail::check_alive();
  *flag = 0;
  if (c.is_null()) return kErrComm;
  FTR_PSAN_USE(c, "iprobe");
  if (c.is_revoked()) {
    // Returned directly, not via finish(): mark the observation here.
    FTR_PSAN_REVOKE_OBSERVED(c, "error return (kErrRevoked)");
    return kErrRevoked;
  }
  ProcessState& ps = detail::self();
  const bool inter = c.is_inter();
  std::lock_guard<std::mutex> lock(ps.mu);
  for (const Message& m : ps.mailbox) {
    if (!buffered_match(m, c, src, tag)) continue;
    *flag = 1;
    if (status != nullptr) {
      status->source = m.src_rank;
      status->tag = m.tag;
      status->error = kSuccess;
      status->count = static_cast<int>(m.payload.size());
    }
    return kSuccess;
  }
  // Nothing buffered; report a failed named peer so callers do not spin on
  // a crashed sender.
  if (src != kAnySource) {
    const Group& senders = inter ? c.remote_group() : c.group();
    const ProcId pid = senders.pids.at(static_cast<size_t>(src));
    ProcessState& sender = detail::rt().proc(pid);
    if (sender.dead.load() || sender.finished.load()) return kErrProcFailed;
  }
  return kSuccess;
}

int probe(int src, int tag, const Comm& c, Status* status) {
  // Blocking probe: poll the mailbox under the wait loop's predicate rules.
  for (;;) {
    int flag = 0;
    const int rc = iprobe(src, tag, c, &flag, status);
    if (rc != kSuccess) return finish(c, rc);
    if (flag) return kSuccess;
    ProcessState& ps = detail::self();
    std::unique_lock<std::mutex> lock(ps.mu);
    if (ps.dead.load()) throw ProcessKilled{ps.pid};
    ps.cv.wait(lock);
  }
}

int iprobe_buffered(int src, int tag, const Comm& c, int* flag, Status* status) {
  detail::check_alive();
  *flag = 0;
  if (c.is_null()) return kErrComm;
  // No revoked check and no dead-peer reporting: whether a message already
  // sits in the mailbox is a local question, answerable on a broken world.
  ProcessState& ps = detail::self();
  std::lock_guard<std::mutex> lock(ps.mu);
  for (const Message& m : ps.mailbox) {
    if (!buffered_match(m, c, src, tag)) continue;
    *flag = 1;
    if (status != nullptr) {
      status->source = m.src_rank;
      status->tag = m.tag;
      status->error = kSuccess;
      status->count = static_cast<int>(m.payload.size());
    }
    return kSuccess;
  }
  return kSuccess;
}

int recv_buffered(void* buf, std::size_t max_bytes, int src, int tag, const Comm& c,
                  Status* status) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  ProcessState& ps = detail::self();
  const CostModel& cm = detail::rt().cost();
  std::unique_lock<std::mutex> lock(ps.mu);
  for (auto it = ps.mailbox.begin(); it != ps.mailbox.end(); ++it) {
    if (!buffered_match(*it, c, src, tag)) continue;
    Message msg = std::move(*it);
    ps.mailbox.erase(it);
    ps.vclock = std::max(ps.vclock, msg.arrive) + cm.recv_overhead;
    lock.unlock();
    const std::size_t n = std::min(max_bytes, msg.payload.size());
    if (n > 0) std::memcpy(buf, msg.payload.data(), n);
    if (status != nullptr) {
      status->source = msg.src_rank;
      status->tag = msg.tag;
      status->error = msg.payload.size() > max_bytes ? kErrArg : kSuccess;
      status->count = static_cast<int>(n);
    }
    return msg.payload.size() > max_bytes ? kErrArg : kSuccess;
  }
  return kErrPending;  // nothing buffered — this variant never blocks
}

int sendrecv_bytes(const void* send_data, std::size_t send_n, int dest, int send_tag,
                   void* recv_buf, std::size_t recv_max, int src, int recv_tag,
                   const Comm& c, Status* status) {
  // Eager sends cannot deadlock, so send-then-receive is safe.
  const int src_rc = send_bytes(send_data, send_n, dest, send_tag, c);
  const int rrc = recv_bytes(recv_buf, recv_max, src, recv_tag, c, status);
  return rrc != kSuccess ? rrc : src_rc;
}

}  // namespace ftmpi
