// Environment accessors: world/parent handles, virtual time, compute and
// disk charging, self-kill.

#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"

namespace ftmpi {

Comm& world() {
  ProcessState& ps = detail::self();
  if (!ps.world_handle.has_value()) {
    ps.world_handle.emplace(detail::rt().find_context(ps.world_ctx), 0, ps.pid);
  }
  return *ps.world_handle;
}

Comm& get_parent() {
  ProcessState& ps = detail::self();
  if (!ps.parent_handle.has_value()) {
    if (ps.parent_ctx == 0) {
      ps.parent_handle.emplace();  // null comm: an initial process
    } else {
      // Spawned children are side 1 of the parent intercommunicator.
      ps.parent_handle.emplace(detail::rt().find_context(ps.parent_ctx), 1, ps.pid);
    }
  }
  return *ps.parent_handle;
}

void set_parent(const Comm& parent) { detail::self().parent_handle = parent; }

double wtime() { return detail::now(); }

void advance(double seconds) { detail::charge(seconds); }

void charge_flops(double flops) { detail::charge(flops / detail::rt().cost().flops_rate); }

void charge_disk_write(std::size_t bytes) {
  // No-op off rank threads so shared stores (checkpoints) stay usable from
  // plain test code; there is no virtual clock to charge there anyway.
  if (Runtime::current() == nullptr) return;
  const CostModel& cm = detail::rt().cost();
  detail::charge(cm.disk_write_latency + static_cast<double>(bytes) / cm.disk_bandwidth);
}

void charge_disk_read(std::size_t bytes) {
  if (Runtime::current() == nullptr) return;
  const CostModel& cm = detail::rt().cost();
  detail::charge(cm.disk_read_latency + static_cast<double>(bytes) / cm.disk_bandwidth);
}

void abort_self() {
  ProcessState& ps = detail::self();
  ps.rt->kill(ps.pid);
  throw ProcessKilled{ps.pid};
}

ProcId self_pid() { return detail::self().pid; }

Runtime& runtime() { return detail::rt(); }

void chaos_point(const char* phase) {
  ProcessState* ps = Runtime::current();
  if (ps == nullptr || !ps->rt->has_chaos_hook()) return;
  ps->rt->fire_chaos(phase, ps->pid);
  detail::check_alive();
}

}  // namespace ftmpi
