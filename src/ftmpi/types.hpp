#pragma once
// Fundamental types and constants of the simulated fault-tolerant MPI
// runtime ("ftmpi").
//
// ftmpi reproduces the subset of MPI + the draft ULFM (User Level Failure
// Mitigation) extensions that the paper's recovery protocol (Figs. 3-7)
// uses, with fail-stop process-failure semantics: a killed rank unwinds at
// its next MPI call, and its peers observe MPI_ERR_PROC_FAILED.

#include <cstdint>

namespace ftmpi {

/// Global, never-reused identifier of a simulated process within a Runtime.
/// Distinct from a rank: ranks are positions within a communicator.
using ProcId = int;

inline constexpr ProcId kNullProc = -1;

/// Error codes.  Values mirror the spirit of MPI/ULFM return classes; the
/// compat layer exposes them under their MPI_* names.
enum ErrCode : int {
  kSuccess = 0,
  kErrComm = 5,        // invalid communicator (MPI_ERR_COMM)
  kErrArg = 12,        // invalid argument
  kErrProcFailed = 75, // a peer process has failed (MPI_ERR_PROC_FAILED)
  kErrRevoked = 76,    // the communicator has been revoked (MPI_ERR_REVOKED)
  kErrPending = 77,
  kErrSpawn = 78,      // replacement processes could not be placed (MPI_ERR_SPAWN)
  kErrOther = 15,
};

/// Wildcards (match any sender / any user tag).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Tags below this bound are reserved for runtime-internal protocols
/// (collectives, spawn handshakes, shrink/agree coordination).  kAnyTag
/// never matches a reserved tag, so user receives cannot swallow protocol
/// traffic.
inline constexpr int kReservedTagBound = -1000;

namespace tags {
// Internal protocol tags.  One tag per protocol step keeps matching simple
// and makes traces readable.
inline constexpr int kBarrierArrive = kReservedTagBound - 1;
inline constexpr int kBarrierRelease = kReservedTagBound - 2;
inline constexpr int kBcast = kReservedTagBound - 3;
inline constexpr int kGather = kReservedTagBound - 4;
inline constexpr int kScatter = kReservedTagBound - 5;
inline constexpr int kReduceUp = kReservedTagBound - 6;
inline constexpr int kReduceDown = kReservedTagBound - 7;
inline constexpr int kSplitUp = kReservedTagBound - 8;
inline constexpr int kSplitDown = kReservedTagBound - 9;
inline constexpr int kShrinkUp = kReservedTagBound - 10;
inline constexpr int kShrinkDown = kReservedTagBound - 11;
inline constexpr int kAgreeUp = kReservedTagBound - 12;
inline constexpr int kAgreeDown = kReservedTagBound - 13;
inline constexpr int kSpawnInfo = kReservedTagBound - 14;
inline constexpr int kSpawnAck = kReservedTagBound - 15;
inline constexpr int kMergeInfo = kReservedTagBound - 16;
inline constexpr int kMergeCross = kReservedTagBound - 17;
inline constexpr int kAllgather = kReservedTagBound - 18;
// Failure-detector channel (heartbeat ring + gossip propagation).
inline constexpr int kHeartbeat = kReservedTagBound - 19;
inline constexpr int kGossip = kReservedTagBound - 20;
// Tree-structured agreement and fault-tolerant allreduce.
inline constexpr int kAgreeTreeUp = kReservedTagBound - 21;
inline constexpr int kAgreeTreeDown = kReservedTagBound - 22;
inline constexpr int kCollTreeUp = kReservedTagBound - 23;
inline constexpr int kCollTreeDown = kReservedTagBound - 24;
// Intercommunicator construction over a bridge communicator
// (MPI_Intercomm_create) and the overlapped-recovery doorbell handoff.
inline constexpr int kInterCreateCross = kReservedTagBound - 25;
inline constexpr int kInterCreateInfo = kReservedTagBound - 26;
inline constexpr int kDoorbell = kReservedTagBound - 27;
}  // namespace tags

/// Version counter of a process's local failure knowledge.  Every detector
/// message (heartbeat or gossip) carries the sender's epoch; receivers must
/// validate it (see detector::epoch_ok) and discard stale notifications
/// instead of acting on them.
using DetectorEpoch = std::uint64_t;

/// Receive status, analogous to MPI_Status.
struct Status {
  int source = kAnySource;  ///< rank of the sender in the communicator
  int tag = kAnyTag;
  int error = kSuccess;
  int count = 0;  ///< number of elements actually received
};

/// Reduction operators supported by reduce/allreduce.
enum class ReduceOp { Sum, Max, Min, LogicalAnd, LogicalOr };

/// Thrown inside a rank thread when that process has been killed; unwinds
/// to the runtime's thread wrapper.  Application code must not catch it
/// (fail-stop semantics: a dead process executes nothing further).
struct ProcessKilled {
  ProcId pid;
};

}  // namespace ftmpi
