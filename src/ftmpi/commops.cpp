// Communicator management: split, dup, group access, error handlers.

#include <algorithm>
#include <map>

#include "common/errors.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/psan.hpp"

namespace ftmpi {

int comm_set_errhandler(const Comm& c, ErrhandlerFn handler) {
  if (c.is_null()) return kErrComm;
  c.local().errhandler = std::move(handler);
  return kSuccess;
}

Group comm_group(const Comm& c) { return c.is_null() ? Group{} : c.group(); }

namespace {

struct SplitRequest {
  int color;
  int key;
  int rank;
};

struct SplitReply {
  int outcome;
  std::uint64_t ctx_id;  // 0 = undefined color (null comm)
};

}  // namespace

int comm_split(const Comm& c, int color, int key, Comm* out) {
  detail::check_alive();
  chaos_point("split");
  *out = Comm{};
  if (c.is_null() || c.is_inter()) return kErrComm;
  FTR_PSAN_COLLECTIVE(c, "comm_split", -1);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  const ProcessState& me = detail::self();
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();

  if (c.rank() == 0) {
    // Collect (color, key) from every member; any failure aborts the split
    // uniformly (MPI_Comm_split requires full participation).
    std::vector<SplitRequest> reqs(static_cast<size_t>(g.size()));
    reqs[0] = {color, key, 0};
    int outcome = kSuccess;
    for (int r = 1; r < g.size(); ++r) {
      std::vector<std::byte> payload;
      const int st =
          detail::ctrl_recv(g.pids[static_cast<size_t>(r)], id, tags::kSplitUp, &payload, opts);
      if (st == kErrRevoked) return finish(c, st);
      if (st != kSuccess) {
        outcome = kErrProcFailed;
        continue;
      }
      reqs[static_cast<size_t>(r)] = detail::unpack<SplitRequest>(payload);
      reqs[static_cast<size_t>(r)].rank = r;
    }

    std::map<int, std::uint64_t> ctx_of_color;
    std::vector<SplitReply> replies(static_cast<size_t>(g.size()), {outcome, 0});
    if (outcome == kSuccess) {
      // Group members by color; order each new communicator by (key, rank).
      std::map<int, std::vector<SplitRequest>> by_color;
      for (const auto& rq : reqs) {
        if (rq.color != kUndefinedColor) by_color[rq.color].push_back(rq);
      }
      for (auto& [col, members] : by_color) {
        std::stable_sort(members.begin(), members.end(),
                         [](const SplitRequest& a, const SplitRequest& b) {
                           return a.key != b.key ? a.key < b.key : a.rank < b.rank;
                         });
        Group ng;
        for (const auto& rq : members) {
          ng.pids.push_back(g.pids[static_cast<size_t>(rq.rank)]);
        }
        ctx_of_color[col] = detail::rt().create_context(std::move(ng))->id;
      }
      for (int r = 0; r < g.size(); ++r) {
        const int col = reqs[static_cast<size_t>(r)].color;
        replies[static_cast<size_t>(r)] = {
            kSuccess, col == kUndefinedColor ? 0 : ctx_of_color[col]};
      }
    }
    for (int r = 1; r < g.size(); ++r) {
      // A member that died after its request still gets its reply attempted;
      // the death is observed uniformly at the next collective.
      ftr::observe_error(
          detail::ctrl_send(g.pids[static_cast<size_t>(r)], id, tags::kSplitDown,
                            &replies[static_cast<size_t>(r)], sizeof(SplitReply)),
          "split.reply");
    }
    if (outcome == kSuccess && color != kUndefinedColor) {
      *out = Comm(detail::rt().find_context(ctx_of_color[color]), 0, me.pid);
    }
    if (outcome == kSuccess) {
      detail::rt().trace().record(detail::now(), me.pid, TraceEvent::Split,
                                  static_cast<long long>(ctx_of_color.size()));
    }
    return finish(c, outcome);
  }

  const SplitRequest rq{color, key, c.rank()};
  int rc = detail::ctrl_send(g.pids[0], id, tags::kSplitUp, &rq, sizeof(rq));
  if (rc != kSuccess) return finish(c, kErrProcFailed);
  std::vector<std::byte> payload;
  rc = detail::ctrl_recv(g.pids[0], id, tags::kSplitDown, &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  const auto reply = detail::unpack<SplitReply>(payload);
  if (reply.outcome == kSuccess && reply.ctx_id != 0) {
    *out = Comm(detail::rt().find_context(reply.ctx_id), 0, me.pid);
  }
  return finish(c, reply.outcome);
}

int comm_dup(const Comm& c, Comm* out) { return comm_split(c, 0, c.rank(), out); }

namespace {

/// Leader announcement of the freshly built intercommunicator to its local
/// group (or a failure notice when the cross-leader exchange died).
struct InterCreateInfo {
  int outcome;
  int side;              // which group of the inter context we belong to
  std::uint64_t ctx_id;  // 0 on failure
};

}  // namespace

int intercomm_create(const Comm& local, int local_leader, const Comm& bridge,
                     int remote_leader, int tag, Comm* out) {
  detail::check_alive();
  *out = Comm{};
  if (local.is_null() || local.is_inter()) return kErrComm;
  if (local_leader < 0 || local_leader >= local.size()) return kErrArg;
  FTR_PSAN_COLLECTIVE(local, "intercomm_create", local_leader);
  if (local.is_revoked()) return finish(local, kErrRevoked);

  Runtime& r = detail::rt();
  const std::uint64_t id = local.context()->id;
  const Group& g = local.group();
  const ProcessState& me = detail::self();
  detail::RecvOpts opts;
  opts.revoke_ctx = local.context();

  if (local.rank() != local_leader) {
    // Non-leaders only wait for the leader's announcement; the bridge
    // communicator is significant at the leaders alone (as in MPI).
    std::vector<std::byte> payload;
    const int rc = detail::ctrl_recv(g.pids[static_cast<size_t>(local_leader)], id,
                                     tags::kInterCreateInfo, &payload, opts);
    if (rc != kSuccess) return finish(local, rc == kErrRevoked ? rc : kErrProcFailed);
    const auto info = detail::unpack<InterCreateInfo>(payload);
    if (info.outcome != kSuccess || info.ctx_id == 0) {
      return finish(local, info.outcome == kSuccess ? kErrProcFailed : info.outcome);
    }
    *out = Comm(r.find_context(info.ctx_id), info.side, me.pid);
    return kSuccess;
  }

  // Leader path.  The exchange rides the bridge communicator's control
  // plane, addressed by pid, so it works even while the bridge's own user
  // plane is quiesced (overlapped recovery builds the repaired world while
  // survivors still compute on derived sub-communicators).
  auto announce = [&](const InterCreateInfo& info) {
    for (int m = 0; m < g.size(); ++m) {
      if (m == local_leader) continue;
      // A member that died meanwhile is observed uniformly at the next
      // operation on the new intercommunicator; keep delivering to the rest.
      ftr::observe_error(detail::ctrl_send(g.pids[static_cast<size_t>(m)], id,
                                           tags::kInterCreateInfo, &info,
                                           sizeof(InterCreateInfo)),
                         "intercreate.announce");
    }
  };
  auto fail_out = [&](int code) {
    announce({code, 0, 0});
    return finish(local, code);
  };

  if (bridge.is_null() || remote_leader < 0 || remote_leader >= bridge.size()) {
    return fail_out(kErrArg);
  }
  const std::uint64_t bridge_id = bridge.context()->id;
  const ProcId peer = bridge.group().pids[static_cast<size_t>(remote_leader)];
  // Revoking the bridge must unblock a leader parked in the cross exchange
  // (the abort path of overlapped recovery converges through exactly that).
  detail::RecvOpts bopts;
  bopts.revoke_ctx = bridge.context();

  // Cross exchange: [user tag, member count, member pids...].  The user tag
  // disambiguates concurrent creates over the same bridge, as in MPI.
  std::vector<int> wire;
  wire.push_back(tag);
  wire.push_back(g.size());
  for (ProcId p : g.pids) wire.push_back(p);
  if (detail::ctrl_send(peer, bridge_id, tags::kInterCreateCross, wire.data(),
                        wire.size() * sizeof(int)) != kSuccess) {
    return fail_out(kErrProcFailed);
  }
  std::vector<std::byte> payload;
  const int xrc = detail::ctrl_recv(peer, bridge_id, tags::kInterCreateCross, &payload, bopts);
  if (xrc != kSuccess) {
    return fail_out(xrc == kErrRevoked ? kErrRevoked : kErrProcFailed);
  }
  const auto rwire = detail::unpack_vec<int>(payload);
  if (rwire.size() < 2 || rwire[0] != tag ||
      rwire.size() != static_cast<size_t>(rwire[1]) + 2) {
    return fail_out(kErrArg);
  }
  Group remote;
  remote.pids.assign(rwire.begin() + 2, rwire.end());

  // The lower-pid leader materializes the context (group[0] = its side) and
  // ships the id across; sides are then fixed for everyone by construction.
  InterCreateInfo info{kSuccess, 0, 0};
  if (me.pid < peer) {
    const auto ctx = r.create_context(g, remote, /*inter=*/true);
    info.ctx_id = ctx->id;
    info.side = 0;
    if (detail::ctrl_send(peer, bridge_id, tags::kInterCreateCross, &info.ctx_id,
                          sizeof(info.ctx_id)) != kSuccess) {
      return fail_out(kErrProcFailed);
    }
  } else {
    std::vector<std::byte> idbuf;
    const int irc = detail::ctrl_recv(peer, bridge_id, tags::kInterCreateCross, &idbuf, bopts);
    if (irc != kSuccess) {
      return fail_out(irc == kErrRevoked ? kErrRevoked : kErrProcFailed);
    }
    info.ctx_id = detail::unpack<std::uint64_t>(idbuf);
    info.side = 1;
    if (info.ctx_id == 0) return fail_out(kErrProcFailed);
  }
  announce(info);
  *out = Comm(r.find_context(info.ctx_id), info.side, me.pid);
  return finish(local, kSuccess);
}

int comm_free(Comm* c) {
  if (c == nullptr) return kErrArg;
  FTR_PSAN_FREE(*c);
  *c = Comm{};
  return kSuccess;
}

const char* error_string(int code) {
  switch (code) {
    case kSuccess: return "MPI_SUCCESS";
    case kErrComm: return "MPI_ERR_COMM: invalid communicator";
    case kErrArg: return "MPI_ERR_ARG: invalid argument";
    case kErrProcFailed: return "MPI_ERR_PROC_FAILED: a peer process has failed";
    case kErrRevoked: return "MPI_ERR_REVOKED: the communicator has been revoked";
    case kErrPending: return "MPI_ERR_PENDING";
    case kErrSpawn: return "MPI_ERR_SPAWN: replacement processes could not be placed";
    case kErrOther: return "MPI_ERR_OTHER";
  }
  return "unknown error code";
}

}  // namespace ftmpi
