// Communicator management: split, dup, group access, error handlers.

#include <algorithm>
#include <map>

#include "common/errors.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/psan.hpp"

namespace ftmpi {

int comm_set_errhandler(const Comm& c, ErrhandlerFn handler) {
  if (c.is_null()) return kErrComm;
  c.local().errhandler = std::move(handler);
  return kSuccess;
}

Group comm_group(const Comm& c) { return c.is_null() ? Group{} : c.group(); }

namespace {

struct SplitRequest {
  int color;
  int key;
  int rank;
};

struct SplitReply {
  int outcome;
  std::uint64_t ctx_id;  // 0 = undefined color (null comm)
};

}  // namespace

int comm_split(const Comm& c, int color, int key, Comm* out) {
  detail::check_alive();
  chaos_point("split");
  *out = Comm{};
  if (c.is_null() || c.is_inter()) return kErrComm;
  FTR_PSAN_COLLECTIVE(c, "comm_split", -1);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  const ProcessState& me = detail::self();
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();

  if (c.rank() == 0) {
    // Collect (color, key) from every member; any failure aborts the split
    // uniformly (MPI_Comm_split requires full participation).
    std::vector<SplitRequest> reqs(static_cast<size_t>(g.size()));
    reqs[0] = {color, key, 0};
    int outcome = kSuccess;
    for (int r = 1; r < g.size(); ++r) {
      std::vector<std::byte> payload;
      const int st =
          detail::ctrl_recv(g.pids[static_cast<size_t>(r)], id, tags::kSplitUp, &payload, opts);
      if (st == kErrRevoked) return finish(c, st);
      if (st != kSuccess) {
        outcome = kErrProcFailed;
        continue;
      }
      reqs[static_cast<size_t>(r)] = detail::unpack<SplitRequest>(payload);
      reqs[static_cast<size_t>(r)].rank = r;
    }

    std::map<int, std::uint64_t> ctx_of_color;
    std::vector<SplitReply> replies(static_cast<size_t>(g.size()), {outcome, 0});
    if (outcome == kSuccess) {
      // Group members by color; order each new communicator by (key, rank).
      std::map<int, std::vector<SplitRequest>> by_color;
      for (const auto& rq : reqs) {
        if (rq.color != kUndefinedColor) by_color[rq.color].push_back(rq);
      }
      for (auto& [col, members] : by_color) {
        std::stable_sort(members.begin(), members.end(),
                         [](const SplitRequest& a, const SplitRequest& b) {
                           return a.key != b.key ? a.key < b.key : a.rank < b.rank;
                         });
        Group ng;
        for (const auto& rq : members) {
          ng.pids.push_back(g.pids[static_cast<size_t>(rq.rank)]);
        }
        ctx_of_color[col] = detail::rt().create_context(std::move(ng))->id;
      }
      for (int r = 0; r < g.size(); ++r) {
        const int col = reqs[static_cast<size_t>(r)].color;
        replies[static_cast<size_t>(r)] = {
            kSuccess, col == kUndefinedColor ? 0 : ctx_of_color[col]};
      }
    }
    for (int r = 1; r < g.size(); ++r) {
      // A member that died after its request still gets its reply attempted;
      // the death is observed uniformly at the next collective.
      ftr::observe_error(
          detail::ctrl_send(g.pids[static_cast<size_t>(r)], id, tags::kSplitDown,
                            &replies[static_cast<size_t>(r)], sizeof(SplitReply)),
          "split.reply");
    }
    if (outcome == kSuccess && color != kUndefinedColor) {
      *out = Comm(detail::rt().find_context(ctx_of_color[color]), 0, me.pid);
    }
    if (outcome == kSuccess) {
      detail::rt().trace().record(detail::now(), me.pid, TraceEvent::Split,
                                  static_cast<long long>(ctx_of_color.size()));
    }
    return finish(c, outcome);
  }

  const SplitRequest rq{color, key, c.rank()};
  int rc = detail::ctrl_send(g.pids[0], id, tags::kSplitUp, &rq, sizeof(rq));
  if (rc != kSuccess) return finish(c, kErrProcFailed);
  std::vector<std::byte> payload;
  rc = detail::ctrl_recv(g.pids[0], id, tags::kSplitDown, &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  const auto reply = detail::unpack<SplitReply>(payload);
  if (reply.outcome == kSuccess && reply.ctx_id != 0) {
    *out = Comm(detail::rt().find_context(reply.ctx_id), 0, me.pid);
  }
  return finish(c, reply.outcome);
}

int comm_dup(const Comm& c, Comm* out) { return comm_split(c, 0, c.rank(), out); }

int comm_free(Comm* c) {
  if (c == nullptr) return kErrArg;
  FTR_PSAN_FREE(*c);
  *c = Comm{};
  return kSuccess;
}

const char* error_string(int code) {
  switch (code) {
    case kSuccess: return "MPI_SUCCESS";
    case kErrComm: return "MPI_ERR_COMM: invalid communicator";
    case kErrArg: return "MPI_ERR_ARG: invalid argument";
    case kErrProcFailed: return "MPI_ERR_PROC_FAILED: a peer process has failed";
    case kErrRevoked: return "MPI_ERR_REVOKED: the communicator has been revoked";
    case kErrPending: return "MPI_ERR_PENDING";
    case kErrSpawn: return "MPI_ERR_SPAWN: replacement processes could not be placed";
    case kErrOther: return "MPI_ERR_OTHER";
  }
  return "unknown error code";
}

}  // namespace ftmpi
