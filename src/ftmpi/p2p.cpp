// Point-to-point messaging: the control plane (pid-addressed) and the user
// plane (rank-addressed), plus the shared blocking wait loop.

#include <cassert>
#include <cstring>

#include "common/logging.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/detector.hpp"
#include "ftmpi/psan.hpp"

namespace ftmpi {
namespace detail {

ProcessState& self() {
  ProcessState* ps = Runtime::current();
  assert(ps != nullptr && "ftmpi API called from a non-rank thread");
  return *ps;
}

Runtime& rt() { return *self().rt; }

void check_alive() {
  ProcessState& ps = self();
  if (ps.dead.load()) throw ProcessKilled{ps.pid};
}

void charge(double seconds) {
  check_alive();
  ProcessState& ps = self();
  ps.vclock += seconds;
  // The detector has no thread of its own; it progresses whenever this
  // process accounts for virtual time (no-op unless a heartbeat period
  // boundary was crossed or detector messages are queued).
  detector::maybe_tick(ps);
}

double now() { return self().vclock; }

std::vector<int> live_ranks(const Group& g) {
  std::vector<int> out;
  for (int r = 0; r < g.size(); ++r) {
    if (!rt().is_dead(g.pids[static_cast<size_t>(r)])) out.push_back(r);
  }
  return out;
}

std::vector<int> active_ranks(const Group& g) {
  std::vector<int> out;
  for (int r = 0; r < g.size(); ++r) {
    const ProcessState& p = rt().proc(g.pids[static_cast<size_t>(r)]);
    if (!p.dead.load() && !p.finished.load()) out.push_back(r);
  }
  return out;
}

void charge_coordinator_rounds(int rounds, int nprocs, bool cross_host) {
  if (rounds <= 0 || nprocs <= 1) return;
  const CostModel& cm = rt().cost();
  const double per_round = 2.0 * cm.latency(!cross_host) +
                           2.0 * static_cast<double>(nprocs - 1) *
                               (cm.send_overhead + cm.recv_overhead) +
                           static_cast<double>(nprocs) * cm.consensus_cost_per_proc;
  charge(static_cast<double>(rounds) * per_round);
}

namespace {

/// Compose and deliver one message; charges the sender and stamps the
/// virtual arrival time.  The caller has verified the destination is alive
/// (a late kill simply drops the message at delivery).
void post(ProcId dst, Message msg, std::size_t bytes) {
  ProcessState& ps = self();
  Runtime& r = rt();
  const CostModel& cm = r.cost();
  const bool same_host = r.host_of(ps.pid) == r.host_of(dst);
  ps.vclock += cm.send_overhead + cm.transfer_time(bytes, same_host);
  msg.src_pid = ps.pid;
  msg.arrive = ps.vclock + cm.latency(same_host);
  r.record_message(bytes, !same_host);
  r.deliver(dst, std::move(msg));
}

using MatchFn = bool (*)(const Message&, const void*);

struct WaitSpec {
  MatchFn match = nullptr;
  const void* match_arg = nullptr;
  /// Senders whose collective death makes the wait hopeless.
  std::vector<ProcessState*> watch;
  CommContext* revoke_ctx = nullptr;
  const std::atomic<std::uint64_t>* interrupt = nullptr;
  std::uint64_t interrupt_expect = 0;
  const std::atomic<std::uint64_t>* interrupt2 = nullptr;
  std::uint64_t interrupt2_expect = 0;
};

/// The single blocking wait used by every receive path.  Only atomics and
/// the owner's mailbox lock are touched inside the loop (no Runtime mutex),
/// keeping the lock order acyclic with kill()/deliver().
int wait_for_message(const WaitSpec& spec, Message* out) {
  ProcessState& ps = self();
  const CostModel& cm = ps.rt->cost();
  const bool det = detector::enabled(ps);
  std::unique_lock<std::mutex> lock(ps.mu);
  for (;;) {
    if (ps.dead.load()) throw ProcessKilled{ps.pid};
    if (det && ps.det_pending.load(std::memory_order_relaxed) > 0) {
      // Absorb queued heartbeats/gossip before blocking: failure knowledge
      // keeps propagating through ranks that sit in unrelated receives.
      lock.unlock();
      detector::drain(ps);
      lock.lock();
      continue;
    }
    for (auto it = ps.mailbox.begin(); it != ps.mailbox.end(); ++it) {
      if (spec.match(*it, spec.match_arg)) {
        *out = std::move(*it);
        ps.mailbox.erase(it);
        ps.vclock = std::max(ps.vclock, out->arrive) + cm.recv_overhead;
        return kSuccess;
      }
    }
    if (spec.revoke_ctx != nullptr && spec.revoke_ctx->revoked.load()) {
      return kErrRevoked;
    }
    if (spec.interrupt != nullptr &&
        spec.interrupt->load() != spec.interrupt_expect) {
      return kErrPending;
    }
    if (spec.interrupt2 != nullptr &&
        spec.interrupt2->load() != spec.interrupt2_expect) {
      return kErrPending;
    }
    if (!spec.watch.empty()) {
      // A peer that exited without sending what we wait for can never
      // satisfy this receive either; the RTE of a real MPI stack reports
      // such peers just like crashed ones.
      bool all_dead = true;
      for (ProcessState* w : spec.watch) {
        if (!w->dead.load() && !w->finished.load()) {
          all_dead = false;
          break;
        }
      }
      if (all_dead) {
        if (det) {
          lock.unlock();
          return detector::observe_hopeless_wait(ps, spec.watch);
        }
        // Model the heartbeat/RTE delay before a real ULFM stack reports
        // a peer as failed.
        ps.vclock += cm.failure_detect_latency;
        return kErrProcFailed;
      }
    }
    ps.cv.wait(lock);
  }
}

struct CtrlKey {
  std::uint64_t ctx;
  int tag;
  ProcId src;  // kNullProc = any
  bool match_payload_head = false;
  std::uint64_t payload_head = 0;
};

bool ctrl_match(const Message& m, const void* arg) {
  const auto* k = static_cast<const CtrlKey*>(arg);
  if (!(m.ctrl && m.ctx == k->ctx && m.tag == k->tag &&
        (k->src == kNullProc || m.src_pid == k->src))) {
    return false;
  }
  if (k->match_payload_head) {
    // Generation-exact matching: a message from another round stays queued
    // for whoever reaches that round instead of being consumed here.
    if (m.payload.size() < sizeof(std::uint64_t)) return false;
    std::uint64_t head = 0;
    std::memcpy(&head, m.payload.data(), sizeof(head));
    if (head != k->payload_head) return false;
  }
  return true;
}

struct UserKey {
  std::uint64_t ctx;
  int tag;   // kAnyTag = any user tag
  int src;   // kAnySource = any rank
  int side;  // receiver's side
  bool inter;
};

bool user_match(const Message& m, const void* arg) {
  const auto* k = static_cast<const UserKey*>(arg);
  if (m.ctrl || m.ctx != k->ctx) return false;
  if (k->tag == kAnyTag ? m.tag < 0 : m.tag != k->tag) return false;
  if (k->src != kAnySource && m.src_rank != k->src) return false;
  // Intercommunicator traffic flows between sides; intracommunicator
  // traffic stays on side 0.
  return k->inter ? (m.src_side != k->side) : (m.src_side == k->side);
}

}  // namespace

int ctrl_send(ProcId dst, std::uint64_t ctx, int tag, const void* data, std::size_t n) {
  check_alive();
  if (rt().is_dead(dst)) {
    // A bounced send is a transport-level failure observation; feed it to
    // the detector so the knowledge gossips instead of staying local.
    detector::note_transport_failure(self(), dst);
    return kErrProcFailed;
  }
  Message msg;
  msg.ctx = ctx;
  msg.tag = tag;
  msg.ctrl = true;
  msg.payload.resize(n);
  if (n > 0) std::memcpy(msg.payload.data(), data, n);
  post(dst, std::move(msg), n);
  return kSuccess;
}

int ctrl_recv(ProcId src, std::uint64_t ctx, int tag, std::vector<std::byte>* out,
              const RecvOpts& opts) {
  check_alive();
  const CtrlKey key{ctx, tag, src, opts.match_payload_head, opts.payload_head};
  WaitSpec spec;
  spec.match = ctrl_match;
  spec.match_arg = &key;
  spec.watch.push_back(&rt().proc(src));
  spec.revoke_ctx = opts.revoke_ctx;
  spec.interrupt = opts.interrupt;
  spec.interrupt_expect = opts.interrupt_expect;
  spec.interrupt2 = opts.interrupt2;
  spec.interrupt2_expect = opts.interrupt2_expect;
  Message msg;
  const int rc = wait_for_message(spec, &msg);
  if (rc == kSuccess && out != nullptr) *out = std::move(msg.payload);
  return rc;
}

int ctrl_recv_any(const std::vector<ProcId>& watch, std::uint64_t ctx, int tag,
                  std::vector<std::byte>* out, ProcId* src, const RecvOpts& opts) {
  check_alive();
  const CtrlKey key{ctx, tag, kNullProc, opts.match_payload_head, opts.payload_head};
  WaitSpec spec;
  spec.match = ctrl_match;
  spec.match_arg = &key;
  spec.watch.reserve(watch.size());
  for (ProcId p : watch) spec.watch.push_back(&rt().proc(p));
  spec.revoke_ctx = opts.revoke_ctx;
  spec.interrupt = opts.interrupt;
  spec.interrupt_expect = opts.interrupt_expect;
  spec.interrupt2 = opts.interrupt2;
  spec.interrupt2_expect = opts.interrupt2_expect;
  Message msg;
  const int rc = wait_for_message(spec, &msg);
  if (rc == kSuccess) {
    if (out != nullptr) *out = std::move(msg.payload);
    if (src != nullptr) *src = msg.src_pid;
  }
  return rc;
}

}  // namespace detail

int finish(const Comm& c, int code) {
  // The first kErrRevoked returned to the caller is the rank's *observation*
  // of the revocation; from here on only the salvage set may touch `c`.
  if (code == kErrRevoked) FTR_PSAN_REVOKE_OBSERVED(c, "error return (kErrRevoked)");
  if (code != kSuccess && !c.is_null() && c.local().errhandler) {
    Comm handle = c;
    c.local().errhandler(handle, code);
  }
  return code;
}

int send_bytes(const void* data, std::size_t n, int dest, int tag, const Comm& c) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  FTR_PSAN_USE(c, "send_bytes");
  if (tag < 0 || dest < 0 || dest >= (c.is_inter() ? c.remote_size() : c.size())) {
    return finish(c, kErrArg);
  }
  if (c.is_revoked()) return finish(c, kErrRevoked);
  const ProcId dpid = c.peer_pid(dest);
  if (detail::rt().is_dead(dpid)) {
    detector::note_transport_failure(detail::self(), dpid);
    return finish(c, kErrProcFailed);
  }
  Message msg;
  msg.ctx = c.context()->id;
  msg.tag = tag;
  msg.src_rank = c.rank();
  msg.src_side = c.side();
  msg.ctrl = false;
  msg.payload.resize(n);
  if (n > 0) std::memcpy(msg.payload.data(), data, n);
  detail::post(dpid, std::move(msg), n);
  return kSuccess;
}

int recv_bytes(void* buf, std::size_t max_bytes, int src, int tag, const Comm& c,
               Status* status) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  FTR_PSAN_USE(c, "recv_bytes");
  if (c.is_revoked()) return finish(c, kErrRevoked);
  const Group& senders = c.is_inter() ? c.remote_group() : c.group();
  if (src != kAnySource && (src < 0 || src >= senders.size())) return finish(c, kErrArg);

  const detail::UserKey key{c.context()->id, tag, src, c.side(), c.is_inter()};
  detail::WaitSpec spec;
  spec.match = detail::user_match;
  spec.match_arg = &key;
  spec.revoke_ctx = c.context();
  if (src != kAnySource) {
    spec.watch.push_back(&detail::rt().proc(senders.pids[static_cast<size_t>(src)]));
  } else {
    // A wildcard receive is hopeless only once *all* potential senders are
    // dead; ULFM additionally raises an error as soon as any failure exists,
    // but the paper's protocols never block a wildcard on a failed comm.
    for (ProcId p : senders.pids) spec.watch.push_back(&detail::rt().proc(p));
  }
  Message msg;
  const int rc = detail::wait_for_message(spec, &msg);
  if (rc != kSuccess) return finish(c, rc);
  const std::size_t n = std::min(max_bytes, msg.payload.size());
  if (n > 0) std::memcpy(buf, msg.payload.data(), n);
  if (status != nullptr) {
    status->source = msg.src_rank;
    status->tag = msg.tag;
    status->error = msg.payload.size() > max_bytes ? kErrArg : kSuccess;
    status->count = static_cast<int>(n);
  }
  return msg.payload.size() > max_bytes ? finish(c, kErrArg) : kSuccess;
}

}  // namespace ftmpi
