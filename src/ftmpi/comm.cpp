#include "ftmpi/comm.hpp"

#include <set>

namespace ftmpi {

GroupOrder group_compare(const Group& a, const Group& b) {
  if (a.pids == b.pids) return GroupOrder::Ident;
  if (a.pids.size() != b.pids.size()) return GroupOrder::Unequal;
  const std::set<ProcId> sa(a.pids.begin(), a.pids.end());
  const std::set<ProcId> sb(b.pids.begin(), b.pids.end());
  return sa == sb ? GroupOrder::Similar : GroupOrder::Unequal;
}

Group group_difference(const Group& a, const Group& b) {
  Group out;
  const std::set<ProcId> sb(b.pids.begin(), b.pids.end());
  for (ProcId p : a.pids) {
    if (sb.count(p) == 0) out.pids.push_back(p);
  }
  return out;
}

std::vector<int> group_translate_ranks(const Group& a, const std::vector<int>& ranks_in_a,
                                       const Group& b) {
  std::vector<int> out;
  out.reserve(ranks_in_a.size());
  for (int r : ranks_in_a) {
    if (r < 0 || r >= a.size()) {
      out.push_back(-1);
      continue;
    }
    out.push_back(b.rank_of(a.pids[static_cast<size_t>(r)]));
  }
  return out;
}

}  // namespace ftmpi
