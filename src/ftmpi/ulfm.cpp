// ULFM extensions: revoke, shrink, agree, failure acknowledgement.
//
// Shrink and agree are coordinator-based: the lowest-ranked *live* member
// collects a message from every survivor and distributes the result.  If the
// coordinator itself dies mid-protocol, survivors detect it (their receive
// fails) and retry with the next-lowest live rank; the retry loop terminates
// because the coordinator index is monotonically increasing and failures are
// finite.  Both operations work on revoked communicators, as ULFM requires.
//
// The draft-ULFM implementation the paper measured ran disproportionately
// long consensus work per failure (Table I); charge_coordinator_rounds
// models that chatter in virtual time at the coordinator, and the inflated
// clock propagates to every survivor through the result message.

#include <algorithm>

#include "common/errors.hpp"
#include "common/logging.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/psan.hpp"

namespace ftmpi {

int comm_revoke(const Comm& c) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  // The revoker observes its own revocation immediately.
  FTR_PSAN_SELF_REVOKE(c, "comm_revoke");
  c.context()->revoked.store(true);
  // Wake every blocked process so operations pending on this communicator
  // observe the revocation.  (A real implementation floods a revoke token;
  // we charge a comparable virtual cost to the caller.)
  const CostModel& cm = detail::rt().cost();
  detail::charge(cm.inter_host_latency +
                 static_cast<double>(c.group().size()) * cm.send_overhead);
  detail::rt().trace().record(detail::now(), detail::self().pid, TraceEvent::Revoke,
                              static_cast<long long>(c.context()->id));
  detail::rt().notify_all_procs();
  return kSuccess;
}

int comm_failure_ack(const Comm& c) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  Group failed;
  const Group& g = c.group();
  for (int r = 0; r < g.size(); ++r) {
    if (detail::rt().is_dead(g.pids[static_cast<size_t>(r)])) {
      failed.pids.push_back(g.pids[static_cast<size_t>(r)]);
    }
  }
  c.local().acked = std::move(failed);
  return kSuccess;
}

int comm_failure_get_acked(const Comm& c, Group* failed) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  *failed = c.local().acked;
  return kSuccess;
}

namespace {

struct ShrinkReply {
  int outcome;
  std::uint64_t ctx_id;
};

struct AgreeReply {
  int flag;
  int num_dead;
  // the dead pids follow in the payload
};

/// Live members of g in rank order, per global runtime truth.
std::vector<int> live_ranks(const Group& g) {
  std::vector<int> out;
  for (int r = 0; r < g.size(); ++r) {
    if (!detail::rt().is_dead(g.pids[static_cast<size_t>(r)])) out.push_back(r);
  }
  return out;
}

}  // namespace

int comm_shrink(const Comm& c, Comm* out) {
  detail::check_alive();
  chaos_point("shrink");
  *out = Comm{};
  if (c.is_null() || c.is_inter()) return kErrComm;

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  const ProcessState& me = detail::self();

  for (int attempt = 0; attempt <= g.size(); ++attempt) {
    const std::vector<int> live = live_ranks(g);
    if (live.empty()) return kErrComm;
    const ProcId coord = g.pids[static_cast<size_t>(live[0])];

    if (coord == me.pid) {
      // Collect a hello from every other survivor; members that die while we
      // collect are simply excluded from the shrunken group.
      std::vector<int> confirmed{live[0]};
      for (size_t i = 1; i < live.size(); ++i) {
        const ProcId p = g.pids[static_cast<size_t>(live[i])];
        if (detail::ctrl_recv(p, id, tags::kShrinkUp, nullptr) == kSuccess) {
          confirmed.push_back(live[i]);
        }
      }
      // Model the draft-ULFM consensus chatter: extra rounds per failure.
      const int failures = g.size() - static_cast<int>(confirmed.size());
      const int rounds =
          2 + detail::rt().cost().shrink_rounds_per_failure * std::max(failures, 1);
      detail::charge_coordinator_rounds(rounds, static_cast<int>(confirmed.size()));

      Group ng;
      for (int r : confirmed) ng.pids.push_back(g.pids[static_cast<size_t>(r)]);
      const auto ctx = detail::rt().create_context(std::move(ng));
      detail::rt().trace().record(detail::now(), me.pid, TraceEvent::Shrink,
                                  ctx->group[0].size());
      const ShrinkReply reply{kSuccess, ctx->id};
      for (size_t i = 1; i < confirmed.size(); ++i) {
        // A confirmed member that died before its reply retries with the
        // next coordinator; keep delivering to the rest.
        ftr::observe_error(
            detail::ctrl_send(g.pids[static_cast<size_t>(confirmed[i])], id,
                              tags::kShrinkDown, &reply, sizeof(reply)),
            "shrink.reply");
      }
      *out = Comm(ctx, 0, me.pid);
      return kSuccess;
    }

    // Survivor path: hello to the coordinator, wait for the new context.
    if (detail::ctrl_send(coord, id, tags::kShrinkUp, nullptr, 0) != kSuccess) {
      continue;  // coordinator died before our hello; retry with the next
    }
    std::vector<std::byte> payload;
    if (detail::ctrl_recv(coord, id, tags::kShrinkDown, &payload) != kSuccess) {
      continue;  // coordinator died mid-protocol; retry
    }
    const auto reply = detail::unpack<ShrinkReply>(payload);
    *out = Comm(detail::rt().find_context(reply.ctx_id), 0, me.pid);
    return kSuccess;
  }
  FTR_ERROR("ftmpi: comm_shrink exhausted retries on ctx %llu",
            static_cast<unsigned long long>(id));
  return kErrComm;
}

int comm_agree(const Comm& c, int* flag) {
  detail::check_alive();
  chaos_point("agree");
  if (c.is_null()) return kErrComm;

  const std::uint64_t id = c.context()->id;
  // On an intercommunicator, agreement spans both groups (ULFM semantics;
  // the paper's repair protocol calls agree on the parent/child intercomm).
  Group g = c.group();
  if (c.is_inter()) {
    Group u = c.context()->group[0];
    u.pids.insert(u.pids.end(), c.context()->group[1].pids.begin(),
                  c.context()->group[1].pids.end());
    g = std::move(u);
  }
  const ProcessState& me = detail::self();

  for (int attempt = 0; attempt <= g.size(); ++attempt) {
    const std::vector<int> live = live_ranks(g);
    if (live.empty()) return kErrComm;
    const ProcId coord = g.pids[static_cast<size_t>(live[0])];

    if (coord == me.pid) {
      int agreed = *flag;
      std::vector<int> confirmed{live[0]};
#ifdef FTR_PSAN
      std::vector<psan::AgreeReport> reports;
      reports.push_back({live[0], me.pid, psan::stream_hash(c), psan::current_epoch()});
#endif
      for (size_t i = 1; i < live.size(); ++i) {
        const ProcId p = g.pids[static_cast<size_t>(live[i])];
        std::vector<std::byte> payload;
        if (detail::ctrl_recv(p, id, tags::kAgreeUp, &payload) == kSuccess) {
#ifdef FTR_PSAN
          const auto up = detail::unpack<psan::AgreeWire>(payload);
          agreed &= up.flag;
          reports.push_back({live[i], p, up.hash, up.epoch});
#else
          agreed &= detail::unpack<int>(payload);
#endif
          confirmed.push_back(live[i]);
        }
      }
      detail::charge_coordinator_rounds(2, static_cast<int>(confirmed.size()));

      const std::vector<ProcId> dead = detail::rt().dead_members(g);
#ifdef FTR_PSAN
      // Verify (and on success reset) the collective streams before any
      // reply goes out: every confirmed member is still blocked on the
      // verdict, so its stream cannot advance under us.
      psan::verify_at_agree(c, g, reports, dead.empty());
#endif
      std::vector<std::byte> reply(sizeof(AgreeReply) + dead.size() * sizeof(ProcId));
      const AgreeReply head{agreed, static_cast<int>(dead.size())};
      std::memcpy(reply.data(), &head, sizeof(head));
      if (!dead.empty()) {
        std::memcpy(reply.data() + sizeof(head), dead.data(), dead.size() * sizeof(ProcId));
      }
      for (size_t i = 1; i < confirmed.size(); ++i) {
        // A confirmed member that died before its verdict retries with the
        // next coordinator; keep delivering to the rest.
        ftr::observe_error(
            detail::ctrl_send(g.pids[static_cast<size_t>(confirmed[i])], id,
                              tags::kAgreeDown, reply.data(), reply.size()),
            "agree.reply");
      }
      *flag = agreed;
      detail::rt().trace().record(detail::now(), me.pid, TraceEvent::Agree, agreed);
      // Uniform result: an error is reported iff there are failures this
      // process has not acknowledged yet.
      for (ProcId p : dead) {
        if (!c.local().acked.contains(p)) return finish(c, kErrProcFailed);
      }
      return kSuccess;
    }

#ifdef FTR_PSAN
    const psan::AgreeWire up{*flag, 0, psan::stream_hash(c), psan::current_epoch()};
    if (detail::ctrl_send(coord, id, tags::kAgreeUp, &up, sizeof(up)) != kSuccess) {
      continue;
    }
#else
    if (detail::ctrl_send(coord, id, tags::kAgreeUp, flag, sizeof(*flag)) != kSuccess) {
      continue;
    }
#endif
    std::vector<std::byte> payload;
    if (detail::ctrl_recv(coord, id, tags::kAgreeDown, &payload) != kSuccess) {
      continue;
    }
    AgreeReply head{};
    std::memcpy(&head, payload.data(), sizeof(head));
    *flag = head.flag;
    std::vector<ProcId> dead(static_cast<size_t>(head.num_dead));
    if (head.num_dead > 0) {
      std::memcpy(dead.data(), payload.data() + sizeof(head), dead.size() * sizeof(ProcId));
    }
    for (ProcId p : dead) {
      if (!c.local().acked.contains(p)) return finish(c, kErrProcFailed);
    }
    return kSuccess;
  }
  return kErrComm;
}

}  // namespace ftmpi
