// ULFM extensions: revoke, shrink, agree, failure acknowledgement.
//
// Shrink and agree are coordinator-based: the lowest-ranked *live* member
// collects a message from every survivor and distributes the result.  If the
// coordinator itself dies mid-protocol, survivors detect it (their receive
// fails) and retry with the next-lowest live rank; the retry loop terminates
// because the coordinator index is monotonically increasing and failures are
// finite.  Both operations work on revoked communicators, as ULFM requires.
//
// The draft-ULFM implementation the paper measured ran disproportionately
// long consensus work per failure (Table I); charge_coordinator_rounds
// models that chatter in virtual time at the coordinator, and the inflated
// clock propagates to every survivor through the result message.

#include <algorithm>

#include "common/errors.hpp"
#include "common/logging.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/psan.hpp"

namespace ftmpi {

int comm_revoke(const Comm& c) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  // The revoker observes its own revocation immediately.
  FTR_PSAN_SELF_REVOKE(c, "comm_revoke");
  c.context()->revoked.store(true);
  // Wake every blocked process so operations pending on this communicator
  // observe the revocation.  (A real implementation floods a revoke token;
  // we charge a comparable virtual cost to the caller.)
  const CostModel& cm = detail::rt().cost();
  detail::charge(cm.inter_host_latency +
                 static_cast<double>(c.group().size()) * cm.send_overhead);
  detail::rt().trace().record(detail::now(), detail::self().pid, TraceEvent::Revoke,
                              static_cast<long long>(c.context()->id));
  detail::rt().notify_all_procs();
  return kSuccess;
}

int comm_failure_ack(const Comm& c) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  Group failed;
  const Group& g = c.group();
  for (int r = 0; r < g.size(); ++r) {
    if (detail::rt().is_dead(g.pids[static_cast<size_t>(r)])) {
      failed.pids.push_back(g.pids[static_cast<size_t>(r)]);
    }
  }
  c.local().acked = std::move(failed);
  return kSuccess;
}

int comm_failure_get_acked(const Comm& c, Group* failed) {
  detail::check_alive();
  if (c.is_null()) return kErrComm;
  *failed = c.local().acked;
  return kSuccess;
}

namespace {

struct ShrinkReply {
  int outcome;
  std::uint64_t ctx_id;
};

struct AgreeReply {
  int flag;
  int num_dead;
  // the dead pids follow in the payload
};

/// Live members of g in rank order, per global runtime truth.
std::vector<int> live_ranks(const Group& g) {
  std::vector<int> out;
  for (int r = 0; r < g.size(); ++r) {
    if (!detail::rt().is_dead(g.pids[static_cast<size_t>(r)])) out.push_back(r);
  }
  return out;
}

// --- tree-structured agreement ---------------------------------------------
//
// Log-depth replacement for the linear uplink: the survivors form a binary
// tree over the live rank list (node i's children are 2i+1 and 2i+2, the
// root is the lowest live rank — the same process the linear protocol
// elects as coordinator).  Entries flow up the tree, the root computes the
// verdict (and runs the psan stream verification exactly like the linear
// coordinator), and the verdict floods back down.  A participant that
// observes a failure bumps the context's agree_gen; every in-flight wait
// carries the old generation and returns kErrPending, so the whole cohort
// rebuilds the tree over the current survivors — the parent re-routing
// rule.  Messages from a previous generation are consumed and discarded,
// never acted on (the same staleness discipline FTL007 enforces for
// detector messages).

struct TreeAgreeUpHead {
  std::uint64_t gen;
  std::int32_t count;  ///< number of TreeAgreeEntry records following
  std::int32_t pad;
};

struct TreeAgreeEntry {
  std::int32_t rank;  ///< rank in the agreement group
  std::int32_t pid;
  std::int32_t flag;
  std::int32_t pad;
  std::uint64_t hash;   ///< psan collective-stream hash (0 without FTR_PSAN)
  std::uint64_t epoch;  ///< psan epoch (0 without FTR_PSAN)
};

struct TreeAgreeDownHead {
  std::uint64_t gen;
  std::int32_t flag;
  std::int32_t num_dead;  ///< ProcId list follows
};

void bump_agree_gen(CommContext* ctx) {
  ctx->agree_gen.fetch_add(1);
  // Wake every in-flight participant so its wait observes the new
  // generation (kErrPending) and re-routes around the failure.
  detail::rt().notify_all_procs();
}

/// Publish-then-flood verdict adoption: once the root has decided round r
/// (which it only does after folding a contribution from *every* process
/// still running), any participant stuck at round r may adopt the cached
/// verdict — its own flag is provably part of it.
bool try_adopt_decision(CommContext* ctx, std::int64_t round, int* flag,
                        std::vector<ProcId>* dead) {
  if (ctx->agree_decided_round.load() < round) return false;
  std::lock_guard<std::mutex> lk(ctx->agree_mu);
  if (ctx->agree_decision.round != round) return false;
  *flag = ctx->agree_decision.flag;
  *dead = ctx->agree_decision.dead;
  return true;
}

int agree_tree(const Comm& c, int* flag, const Group& g) {
  chaos_point("agree.tree");
  const std::uint64_t id = c.context()->id;
  CommContext* ctx = c.context();
  const ProcessState& me = detail::self();
  const CostModel& cm = detail::rt().cost();
  const std::int64_t round = c.local().agree_round;
  const int max_attempts = 4 * g.size() + 8;

  const auto complete = [&](int agreed, const std::vector<ProcId>& dead) -> int {
    *flag = agreed;
    c.local().agree_round = round + 1;
    // Uniform result: an error is reported iff there are failures this
    // process has not acknowledged yet (identical to the linear protocol).
    for (ProcId p : dead) {
      if (!c.local().acked.contains(p)) return finish(c, kErrProcFailed);
    }
    return kSuccess;
  };

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    {
      int adopted_flag = 0;
      std::vector<ProcId> adopted_dead;
      if (try_adopt_decision(ctx, round, &adopted_flag, &adopted_dead)) {
        return complete(adopted_flag, adopted_dead);
      }
    }
    const std::uint64_t gen = ctx->agree_gen.load();
    // Load the membership epoch *before* snapshotting the topology: any
    // membership change after the snapshot then interrupts our waits, and a
    // spurious extra interrupt is merely a re-validation.
    std::uint64_t mepoch = detail::rt().membership_epoch().load();
    const std::vector<int> live = detail::active_ranks(g);
    if (live.empty()) return kErrComm;
    int mi = -1;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (g.pids[static_cast<size_t>(live[i])] == me.pid) {
        mi = static_cast<int>(i);
        break;
      }
    }
    if (mi < 0) return kErrComm;  // unreachable while this process is alive

    // Handle a wait interrupted by kErrPending.  Returns true when the
    // attempt must restart; false when the interrupt was benign (a process
    // outside this group exited) and the wait should simply be re-armed.
    const auto handle_pending = [&]() {
      if (ctx->agree_gen.load() != gen) return true;  // peers re-routed
      const std::uint64_t m2 = detail::rt().membership_epoch().load();
      if (detail::active_ranks(g) != live) {
        // Our topology snapshot went stale without any of our waits failing
        // (the death/exit raced protocol entry).  Force the whole cohort
        // onto a fresh generation so everyone rebuilds the same tree.
        bump_agree_gen(ctx);
        return true;
      }
      mepoch = m2;
      return false;
    };

    // -- reduction up: collect the subtree's entries -------------------------
    std::vector<TreeAgreeEntry> entries;
#ifdef FTR_PSAN
    entries.push_back({live[static_cast<size_t>(mi)], me.pid, *flag, 0,
                       psan::stream_hash(c), psan::current_epoch()});
#else
    entries.push_back({live[static_cast<size_t>(mi)], me.pid, *flag, 0, 0, 0});
#endif
    bool restart = false;
    for (int k = 1; k <= 2 && !restart; ++k) {
      const std::size_t ci = 2 * static_cast<size_t>(mi) + static_cast<size_t>(k);
      if (ci >= live.size()) break;
      const ProcId child = g.pids[static_cast<size_t>(live[ci])];
      for (;;) {
        std::vector<std::byte> payload;
        detail::RecvOpts opts;
        opts.interrupt = &ctx->agree_gen;
        opts.interrupt_expect = gen;
        opts.interrupt2 = &detail::rt().membership_epoch();
        opts.interrupt2_expect = mepoch;
        opts.match_payload_head = true;
        opts.payload_head = gen;
        const int rc = detail::ctrl_recv(child, id, tags::kAgreeTreeUp, &payload, opts);
        if (rc == kErrPending) {
          if (handle_pending()) {
            restart = true;
            break;
          }
          continue;
        }
        if (rc != kSuccess) {  // child subtree root died: re-route around it
          bump_agree_gen(ctx);
          restart = true;
          break;
        }
        TreeAgreeUpHead head{};
        if (payload.size() < sizeof(head)) continue;
        std::memcpy(&head, payload.data(), sizeof(head));
        for (std::int32_t i = 0; i < head.count; ++i) {
          TreeAgreeEntry e{};
          std::memcpy(&e, payload.data() + sizeof(head) + static_cast<size_t>(i) * sizeof(e),
                      sizeof(e));
          entries.push_back(e);
        }
        break;
      }
    }
    if (restart) continue;

    // Per-node agreement work is proportional to this node's degree — the
    // tree links it matches and folds, not its subtree's population — so the
    // protocol's critical path is O(log N): unlike the linear coordinator,
    // which pays charge_coordinator_rounds over the whole group.
    int degree = (mi != 0) ? 1 : 0;  // parent link
    for (int k = 1; k <= 2; ++k) {
      if (2 * static_cast<size_t>(mi) + static_cast<size_t>(k) < live.size()) ++degree;
    }
    detail::charge(cm.consensus_cost_per_proc * static_cast<double>(degree + 1));

    std::vector<std::byte> down;
    if (mi != 0) {
      // Interior node / leaf: hand the subtree up, wait for the verdict.
      std::vector<std::byte> up(sizeof(TreeAgreeUpHead) +
                                entries.size() * sizeof(TreeAgreeEntry));
      const TreeAgreeUpHead uh{gen, static_cast<std::int32_t>(entries.size()), 0};
      std::memcpy(up.data(), &uh, sizeof(uh));
      std::memcpy(up.data() + sizeof(uh), entries.data(),
                  entries.size() * sizeof(TreeAgreeEntry));
      const ProcId parent =
          g.pids[static_cast<size_t>(live[static_cast<size_t>((mi - 1) / 2)])];
      if (detail::ctrl_send(parent, id, tags::kAgreeTreeUp, up.data(), up.size()) !=
          kSuccess) {
        bump_agree_gen(ctx);
        continue;
      }
      for (;;) {
        std::vector<std::byte> payload;
        detail::RecvOpts opts;
        opts.interrupt = &ctx->agree_gen;
        opts.interrupt_expect = gen;
        opts.interrupt2 = &detail::rt().membership_epoch();
        opts.interrupt2_expect = mepoch;
        opts.match_payload_head = true;
        opts.payload_head = gen;
        const int rc = detail::ctrl_recv(parent, id, tags::kAgreeTreeDown, &payload, opts);
        if (rc == kErrPending) {
          if (handle_pending()) break;
          continue;
        }
        if (rc != kSuccess) {  // parent died holding our verdict: re-route
          bump_agree_gen(ctx);
          break;
        }
        if (payload.size() < sizeof(TreeAgreeDownHead)) continue;
        down = std::move(payload);
        break;
      }
      if (down.empty()) continue;
    } else {
      // Root: only decide once every process still running this round has
      // contributed — with a short count some contribution is still in
      // flight on a differently-shaped tree, so force a consistent rebuild.
      if (entries.size() != live.size()) {
        bump_agree_gen(ctx);
        continue;
      }
      int agreed = ~0;
      for (const TreeAgreeEntry& e : entries) agreed &= e.flag;
      const std::vector<ProcId> dead = detail::rt().dead_members(g);
#ifdef FTR_PSAN
      // Same contract as the linear coordinator: every contributor is still
      // blocked on the verdict, so its stream cannot advance under us.
      std::vector<psan::AgreeReport> reports;
      reports.reserve(entries.size());
      for (const TreeAgreeEntry& e : entries) {
        reports.push_back({e.rank, e.pid, e.hash, e.epoch});
      }
      psan::verify_at_agree(c, g, reports, dead.empty());
#endif
      // Publish the verdict *before* flooding it, so a subtree orphaned by
      // a relay death can adopt it instead of waiting on peers that have
      // already returned.
      {
        std::lock_guard<std::mutex> lk(ctx->agree_mu);
        ctx->agree_decision.round = round;
        ctx->agree_decision.flag = agreed;
        ctx->agree_decision.dead = dead;
      }
      ctx->agree_decided_round.store(round);
      down.resize(sizeof(TreeAgreeDownHead) + dead.size() * sizeof(ProcId));
      const TreeAgreeDownHead dh{gen, agreed, static_cast<std::int32_t>(dead.size())};
      std::memcpy(down.data(), &dh, sizeof(dh));
      if (!dead.empty()) {
        std::memcpy(down.data() + sizeof(dh), dead.data(), dead.size() * sizeof(ProcId));
      }
      detail::rt().trace().record(detail::now(), me.pid, TraceEvent::Agree, agreed);
    }

    // Broadcast down: forward the verdict to the children before returning.
    // Best-effort — a child that died mid-protocol has a subtree that will
    // re-route and retry; its members are reported through the next agree.
    for (int k = 1; k <= 2; ++k) {
      const std::size_t ci = 2 * static_cast<size_t>(mi) + static_cast<size_t>(k);
      if (ci >= live.size()) break;
      ftr::observe_error(detail::ctrl_send(g.pids[static_cast<size_t>(live[ci])], id,
                                           tags::kAgreeTreeDown, down.data(), down.size()),
                         "agree.tree.down");
    }

    TreeAgreeDownHead head{};
    std::memcpy(&head, down.data(), sizeof(head));
    std::vector<ProcId> dead(static_cast<size_t>(head.num_dead));
    if (head.num_dead > 0) {
      std::memcpy(dead.data(), down.data() + sizeof(head), dead.size() * sizeof(ProcId));
    }
    return complete(head.flag, dead);
  }
  FTR_ERROR("ftmpi: tree agree exhausted retries on ctx %llu",
            static_cast<unsigned long long>(id));
  return kErrComm;
}

}  // namespace

int comm_shrink(const Comm& c, Comm* out) {
  detail::check_alive();
  chaos_point("shrink");
  *out = Comm{};
  if (c.is_null() || c.is_inter()) return kErrComm;

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  const ProcessState& me = detail::self();

  for (int attempt = 0; attempt <= g.size(); ++attempt) {
    const std::vector<int> live = live_ranks(g);
    if (live.empty()) return kErrComm;
    const ProcId coord = g.pids[static_cast<size_t>(live[0])];

    if (coord == me.pid) {
      // Collect a hello from every other survivor; members that die while we
      // collect are simply excluded from the shrunken group.
      std::vector<int> confirmed{live[0]};
      for (size_t i = 1; i < live.size(); ++i) {
        const ProcId p = g.pids[static_cast<size_t>(live[i])];
        if (detail::ctrl_recv(p, id, tags::kShrinkUp, nullptr) == kSuccess) {
          confirmed.push_back(live[i]);
        }
      }
      // Model the draft-ULFM consensus chatter: extra rounds per failure.
      const int failures = g.size() - static_cast<int>(confirmed.size());
      const int rounds =
          2 + detail::rt().cost().shrink_rounds_per_failure * std::max(failures, 1);
      detail::charge_coordinator_rounds(rounds, static_cast<int>(confirmed.size()));

      Group ng;
      for (int r : confirmed) ng.pids.push_back(g.pids[static_cast<size_t>(r)]);
      const auto ctx = detail::rt().create_context(std::move(ng));
      detail::rt().trace().record(detail::now(), me.pid, TraceEvent::Shrink,
                                  ctx->group[0].size());
      const ShrinkReply reply{kSuccess, ctx->id};
      for (size_t i = 1; i < confirmed.size(); ++i) {
        // A confirmed member that died before its reply retries with the
        // next coordinator; keep delivering to the rest.
        ftr::observe_error(
            detail::ctrl_send(g.pids[static_cast<size_t>(confirmed[i])], id,
                              tags::kShrinkDown, &reply, sizeof(reply)),
            "shrink.reply");
      }
      *out = Comm(ctx, 0, me.pid);
      return kSuccess;
    }

    // Survivor path: hello to the coordinator, wait for the new context.
    if (detail::ctrl_send(coord, id, tags::kShrinkUp, nullptr, 0) != kSuccess) {
      continue;  // coordinator died before our hello; retry with the next
    }
    std::vector<std::byte> payload;
    if (detail::ctrl_recv(coord, id, tags::kShrinkDown, &payload) != kSuccess) {
      continue;  // coordinator died mid-protocol; retry
    }
    const auto reply = detail::unpack<ShrinkReply>(payload);
    *out = Comm(detail::rt().find_context(reply.ctx_id), 0, me.pid);
    return kSuccess;
  }
  FTR_ERROR("ftmpi: comm_shrink exhausted retries on ctx %llu",
            static_cast<unsigned long long>(id));
  return kErrComm;
}

int comm_agree(const Comm& c, int* flag) {
  detail::check_alive();
  chaos_point("agree");
  if (c.is_null()) return kErrComm;

  const std::uint64_t id = c.context()->id;
  // On an intercommunicator, agreement spans both groups (ULFM semantics;
  // the paper's repair protocol calls agree on the parent/child intercomm).
  Group g = c.group();
  if (c.is_inter()) {
    Group u = c.context()->group[0];
    u.pids.insert(u.pids.end(), c.context()->group[1].pids.begin(),
                  c.context()->group[1].pids.end());
    g = std::move(u);
  }
  if (detail::rt().options().tree_protocols) return agree_tree(c, flag, g);
  const ProcessState& me = detail::self();

  for (int attempt = 0; attempt <= g.size(); ++attempt) {
    const std::vector<int> live = live_ranks(g);
    if (live.empty()) return kErrComm;
    const ProcId coord = g.pids[static_cast<size_t>(live[0])];

    if (coord == me.pid) {
      int agreed = *flag;
      std::vector<int> confirmed{live[0]};
#ifdef FTR_PSAN
      std::vector<psan::AgreeReport> reports;
      reports.push_back({live[0], me.pid, psan::stream_hash(c), psan::current_epoch()});
#endif
      for (size_t i = 1; i < live.size(); ++i) {
        const ProcId p = g.pids[static_cast<size_t>(live[i])];
        std::vector<std::byte> payload;
        if (detail::ctrl_recv(p, id, tags::kAgreeUp, &payload) == kSuccess) {
#ifdef FTR_PSAN
          const auto up = detail::unpack<psan::AgreeWire>(payload);
          agreed &= up.flag;
          reports.push_back({live[i], p, up.hash, up.epoch});
#else
          agreed &= detail::unpack<int>(payload);
#endif
          confirmed.push_back(live[i]);
        }
      }
      detail::charge_coordinator_rounds(2, static_cast<int>(confirmed.size()));

      const std::vector<ProcId> dead = detail::rt().dead_members(g);
#ifdef FTR_PSAN
      // Verify (and on success reset) the collective streams before any
      // reply goes out: every confirmed member is still blocked on the
      // verdict, so its stream cannot advance under us.
      psan::verify_at_agree(c, g, reports, dead.empty());
#endif
      std::vector<std::byte> reply(sizeof(AgreeReply) + dead.size() * sizeof(ProcId));
      const AgreeReply head{agreed, static_cast<int>(dead.size())};
      std::memcpy(reply.data(), &head, sizeof(head));
      if (!dead.empty()) {
        std::memcpy(reply.data() + sizeof(head), dead.data(), dead.size() * sizeof(ProcId));
      }
      for (size_t i = 1; i < confirmed.size(); ++i) {
        // A confirmed member that died before its verdict retries with the
        // next coordinator; keep delivering to the rest.
        ftr::observe_error(
            detail::ctrl_send(g.pids[static_cast<size_t>(confirmed[i])], id,
                              tags::kAgreeDown, reply.data(), reply.size()),
            "agree.reply");
      }
      *flag = agreed;
      detail::rt().trace().record(detail::now(), me.pid, TraceEvent::Agree, agreed);
      // Uniform result: an error is reported iff there are failures this
      // process has not acknowledged yet.
      for (ProcId p : dead) {
        if (!c.local().acked.contains(p)) return finish(c, kErrProcFailed);
      }
      return kSuccess;
    }

#ifdef FTR_PSAN
    const psan::AgreeWire up{*flag, 0, psan::stream_hash(c), psan::current_epoch()};
    if (detail::ctrl_send(coord, id, tags::kAgreeUp, &up, sizeof(up)) != kSuccess) {
      continue;
    }
#else
    if (detail::ctrl_send(coord, id, tags::kAgreeUp, flag, sizeof(*flag)) != kSuccess) {
      continue;
    }
#endif
    std::vector<std::byte> payload;
    if (detail::ctrl_recv(coord, id, tags::kAgreeDown, &payload) != kSuccess) {
      continue;
    }
    AgreeReply head{};
    std::memcpy(&head, payload.data(), sizeof(head));
    *flag = head.flag;
    std::vector<ProcId> dead(static_cast<size_t>(head.num_dead));
    if (head.num_dead > 0) {
      std::memcpy(dead.data(), payload.data() + sizeof(head), dead.size() * sizeof(ProcId));
    }
    for (ProcId p : dead) {
      if (!c.local().acked.contains(p)) return finish(c, kErrProcFailed);
    }
    return kSuccess;
  }
  return kErrComm;
}

}  // namespace ftmpi
