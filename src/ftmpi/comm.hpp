#pragma once
// Communicators and process groups.
//
// A CommContext is the *shared* identity of a communicator: a context id
// plus the ordered member lists (one group for an intracommunicator, two for
// an intercommunicator) and the revoked flag.  Every member process holds
// its own Comm handle referring to the shared context, mirroring how MPI
// implementations separate the communicator object from per-process handle
// state (error handler, acknowledged failures).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "ftmpi/types.hpp"

namespace ftmpi {

/// An ordered set of processes, analogous to MPI_Group.  Rank i of the
/// group is pids[i].
struct Group {
  std::vector<ProcId> pids;

  [[nodiscard]] int size() const { return static_cast<int>(pids.size()); }
  [[nodiscard]] bool contains(ProcId p) const {
    return std::find(pids.begin(), pids.end(), p) != pids.end();
  }
  [[nodiscard]] int rank_of(ProcId p) const {
    const auto it = std::find(pids.begin(), pids.end(), p);
    return it == pids.end() ? -1 : static_cast<int>(it - pids.begin());
  }
};

/// MPI_Group_compare results.
enum class GroupOrder { Ident, Similar, Unequal };

[[nodiscard]] GroupOrder group_compare(const Group& a, const Group& b);

/// Members of `a` that are not in `b`, in the order of `a`
/// (MPI_Group_difference).
[[nodiscard]] Group group_difference(const Group& a, const Group& b);

/// For each rank in `ranks_in_a`, its rank in `b` (or -1, i.e.
/// MPI_UNDEFINED, when not a member) — MPI_Group_translate_ranks.
[[nodiscard]] std::vector<int> group_translate_ranks(const Group& a,
                                                     const std::vector<int>& ranks_in_a,
                                                     const Group& b);

/// Shared communicator identity.  Never mutated after creation except for
/// the revoked flag.
struct CommContext {
  std::uint64_t id = 0;
  bool is_inter = false;
  Group group[2];  ///< group[0] only for intra; both sides for inter
  std::atomic<bool> revoked{false};
  /// Generation counter of the tree-structured agreement.  Any participant
  /// that observes a failure mid-protocol bumps it; every in-flight wait
  /// carrying the old value returns kErrPending and the participant rebuilds
  /// the tree over the current survivors (parent re-routing).  Monotonic for
  /// the context's lifetime, so stale-generation messages are identifiable
  /// and discarded.
  std::atomic<std::uint64_t> agree_gen{0};

  /// Verdict of the most recently decided tree-agreement round, published by
  /// the root *before* it floods the verdict down.  A participant orphaned
  /// by a relay that died mid-flood (its peers may already have returned and
  /// will never re-participate) adopts the cached verdict instead of waiting
  /// forever.  Adoption is sound because the root only decides a round once
  /// every process still running has contributed its flag to that round.
  struct AgreeDecision {
    std::int64_t round = -1;  ///< agreement round this verdict belongs to
    std::int32_t flag = 0;
    std::vector<ProcId> dead;
  };
  std::mutex agree_mu;               ///< guards agree_decision
  AgreeDecision agree_decision;
  std::atomic<std::int64_t> agree_decided_round{-1};  ///< cheap pre-check

  [[nodiscard]] const Group& local_group(int side) const { return group[side]; }
  [[nodiscard]] const Group& remote_group(int side) const { return group[1 - side]; }
};

class Comm;  // fwd

/// Error handler attached to a communicator handle.  ULFM applications
/// (like the paper's) install a handler that acknowledges failures; the
/// runtime invokes it whenever an operation on the communicator returns an
/// error and then still returns the code (MPI_ERRORS_RETURN semantics).
using ErrhandlerFn = std::function<void(Comm&, int& error_code)>;

/// Per-process, per-handle communicator state.
struct CommLocal {
  ErrhandlerFn errhandler;      ///< empty = MPI_ERRORS_RETURN
  Group acked;                  ///< failures acknowledged via OMPI_Comm_failure_ack
  std::int64_t agree_round = 0; ///< tree-agreement rounds completed on this handle
  std::uint64_t coll_seq = 0;   ///< tree-collective calls completed on this handle
};

/// Per-process communicator handle (value type; copies share local state,
/// matching the aliasing behaviour of an MPI_Comm handle).
class Comm {
 public:
  Comm() = default;  ///< MPI_COMM_NULL

  Comm(std::shared_ptr<CommContext> ctx, int side, ProcId self)
      : ctx_(std::move(ctx)), side_(side), self_(self),
        local_(std::make_shared<CommLocal>()) {}

  [[nodiscard]] bool is_null() const { return ctx_ == nullptr; }
  [[nodiscard]] bool is_inter() const { return ctx_ && ctx_->is_inter; }
  [[nodiscard]] bool is_revoked() const { return ctx_ && ctx_->revoked.load(); }

  /// Rank of the calling process in the (local) group; -1 if not a member.
  [[nodiscard]] int rank() const {
    return ctx_ ? ctx_->local_group(side_).rank_of(self_) : -1;
  }
  [[nodiscard]] int size() const { return ctx_ ? ctx_->local_group(side_).size() : 0; }
  [[nodiscard]] int remote_size() const {
    return ctx_ ? ctx_->remote_group(side_).size() : 0;
  }

  [[nodiscard]] const Group& group() const { return ctx_->local_group(side_); }
  [[nodiscard]] const Group& remote_group() const { return ctx_->remote_group(side_); }

  [[nodiscard]] CommContext* context() const { return ctx_.get(); }
  [[nodiscard]] const std::shared_ptr<CommContext>& context_ptr() const { return ctx_; }
  [[nodiscard]] int side() const { return side_; }
  [[nodiscard]] ProcId self() const { return self_; }
  [[nodiscard]] CommLocal& local() const { return *local_; }

  /// Pid of rank r.  For an intercommunicator, point-to-point addresses the
  /// *remote* group, as in MPI.
  [[nodiscard]] ProcId peer_pid(int r) const {
    const Group& g = ctx_->is_inter ? ctx_->remote_group(side_) : ctx_->local_group(side_);
    return g.pids.at(static_cast<size_t>(r));
  }

  friend bool operator==(const Comm& a, const Comm& b) {
    return a.ctx_ == b.ctx_ && a.side_ == b.side_;
  }

 private:
  std::shared_ptr<CommContext> ctx_;
  int side_ = 0;
  ProcId self_ = kNullProc;
  std::shared_ptr<CommLocal> local_;
};

}  // namespace ftmpi
