#pragma once
// Virtual-time cost model.
//
// The repository runs on a single physical core, so *wall-clock* timing can
// reproduce none of the paper's 19-304 core sweeps or its 3.52 s checkpoint
// writes.  Instead, every simulated process carries a virtual clock (double
// seconds).  Each runtime operation advances clocks from first principles:
//
//   - point-to-point: the message arrives at
//       sender_clock + send_overhead + latency(src_host, dst_host) + bytes/bandwidth
//     and the receiver resumes at max(own_clock, arrival) + recv_overhead;
//   - compute: the solver charges modeled cell-update costs explicitly;
//   - disk: checkpoint writes/reads charge the profile's I/O latency
//     (the paper's T_IO) plus a bandwidth term;
//   - spawn: a base process-launch cost plus per-process handshake rounds.
//
// MPI_Wtime() reads the virtual clock, so all measurements in the benches
// are deterministic functions of message/IO/compute counts.  Two presets
// ("cluster profiles") encode the paper's systems: OPL (typical disk write
// latency, T_IO = 3.52 s) and Raijin (ultra-low write latency, T_IO = 0.03 s).

#include <string>

namespace ftmpi {

struct CostModel {
  // --- network -----------------------------------------------------------
  double intra_host_latency = 1.5e-6;  ///< seconds, same-host message
  double inter_host_latency = 2.5e-5;  ///< seconds, cross-host message
  double intra_host_bandwidth = 8.0e9; ///< bytes/second
  double inter_host_bandwidth = 3.0e9; ///< bytes/second
  double send_overhead = 8.0e-7;       ///< CPU time to post an eager send
  double recv_overhead = 8.0e-7;       ///< CPU time to match + copy a receive

  // --- failure handling ----------------------------------------------------
  /// Time for a blocked operation to conclude that its peer is dead
  /// (heartbeat / RTE notification delay in a real ULFM stack).
  double failure_detect_latency = 2.5e-2;
  /// Extra coordinator rounds run by shrink per already-known failure.
  /// Models the draft-ULFM behaviour the paper observed: repairing after
  /// two failures is disproportionately slower than after one.
  int shrink_rounds_per_failure = 2;
  /// Coordinator-side processing per participant per consensus round
  /// (agreement bookkeeping, group reconciliation).  This is the term that
  /// makes shrink/agree grow with the communicator size, as in Table I.
  double consensus_cost_per_proc = 1.0e-4;

  // --- process spawn -------------------------------------------------------
  double spawn_base = 0.1;       ///< per spawn_multiple call (RTE launch setup)
  double spawn_per_proc = 0.05;  ///< per spawned process (fork/exec, wire-up)
  int spawn_handshake_rounds = 3;///< full gather+release rounds over the parent comm
  /// RTE wire-up cost per *existing* process per spawned process (the
  /// dominant, size-dependent part of MPI_Comm_spawn_multiple in Table I:
  /// every member of the parent communicator exchanges connection state
  /// with the launcher for each new process).
  double spawn_setup_per_proc = 3.0e-3;

  // --- compute -------------------------------------------------------------
  double cell_update_rate = 2.0e8;  ///< Lax-Wendroff cell updates per second per core
  double flops_rate = 3.0e9;        ///< generic flops/second for non-stencil work

  // --- disk ----------------------------------------------------------------
  double disk_write_latency = 3.52;   ///< seconds per checkpoint write (paper's T_IO)
  double disk_read_latency = 0.35;    ///< seconds per checkpoint read
  double disk_bandwidth = 2.0e8;      ///< bytes/second once streaming

  [[nodiscard]] double latency(bool same_host) const {
    return same_host ? intra_host_latency : inter_host_latency;
  }
  [[nodiscard]] double bandwidth(bool same_host) const {
    return same_host ? intra_host_bandwidth : inter_host_bandwidth;
  }
  /// Transfer time of a payload over the network (excluding latency).
  [[nodiscard]] double transfer_time(std::size_t bytes, bool same_host) const {
    return static_cast<double>(bytes) / bandwidth(same_host);
  }
};

/// A named machine configuration: cost model + node geometry.
struct ClusterProfile {
  std::string name;
  CostModel cost;
  int slots_per_host = 12;

  /// OPL: 36 dual-socket Xeon X5670 nodes, IB QDR, typical disk write
  /// latency (paper measured T_IO = 3.52 s per checkpoint write).
  static ClusterProfile opl();
  /// Raijin: Xeon Sandy Bridge, IB FDR, very fast Lustre filesystem
  /// (paper measured T_IO = 0.03 s).
  static ClusterProfile raijin();
  /// Look up by case-insensitive name; defaults to OPL.
  static ClusterProfile by_name(const std::string& name);
};

inline ClusterProfile ClusterProfile::opl() {
  ClusterProfile p;
  p.name = "OPL";
  p.slots_per_host = 12;
  p.cost.disk_write_latency = 3.52;
  p.cost.disk_read_latency = 0.35;
  return p;
}

inline ClusterProfile ClusterProfile::raijin() {
  ClusterProfile p;
  p.name = "Raijin";
  p.slots_per_host = 16;
  // FDR interconnect: a little faster than OPL's QDR.
  p.cost.inter_host_latency = 1.8e-5;
  p.cost.inter_host_bandwidth = 5.0e9;
  // The distinguishing feature in the paper: ultra-low checkpoint write
  // latency (two orders of magnitude below a typical cluster).
  p.cost.disk_write_latency = 0.03;
  p.cost.disk_read_latency = 0.01;
  p.cost.disk_bandwidth = 1.0e9;
  p.cost.cell_update_rate = 2.6e8;  // newer cores
  return p;
}

inline ClusterProfile ClusterProfile::by_name(const std::string& name) {
  auto lower = name;
  for (auto& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "raijin") return raijin();
  return opl();
}

}  // namespace ftmpi
