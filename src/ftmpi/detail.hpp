#pragma once
// Internal plumbing shared by the ftmpi API translation units.  Not part of
// the public surface.
//
// Two message planes share each process mailbox:
//   - the *control plane* (ctrl_send / ctrl_recv): pid-addressed, reserved
//     tags, used by every internal protocol (collectives, split, shrink,
//     agree, spawn, merge);
//   - the *user plane* (send_bytes / recv_bytes in api.hpp): rank-addressed
//     with user tags >= 0.
// Keeping the planes separate means a user wildcard receive can never
// swallow protocol traffic.

#include <cstring>
#include <vector>
#include "common/annotations.hpp"

#include "ftmpi/runtime.hpp"
#include "ftmpi/types.hpp"

namespace ftmpi::detail {

/// The calling thread's process state; aborts if called off a rank thread.
ProcessState& self();

/// The calling thread's runtime.
Runtime& rt();

/// Throw ProcessKilled if this process has been killed (fail-stop unwind).
void check_alive();

/// Charge `seconds` of virtual time to the calling process.
void charge(double seconds);

/// Current virtual time of the calling process.
double now();

struct RecvOpts {
  /// When set, a revocation of `revoke_ctx` interrupts the wait with
  /// kErrRevoked (user-facing operations).  Shrink/agree, which must operate
  /// on revoked communicators, leave it null.
  CommContext* revoke_ctx = nullptr;
  /// When set, the wait returns kErrPending as soon as *interrupt no longer
  /// equals interrupt_expect.  The tree-structured agreement uses this to
  /// restart every in-flight participant when any of them observes a
  /// failure (the generation counter lives on the CommContext).
  const std::atomic<std::uint64_t>* interrupt = nullptr;
  std::uint64_t interrupt_expect = 0;
  /// Optional second interrupt, same contract as `interrupt`.  Tree
  /// protocols watch the runtime membership epoch here alongside the
  /// agreement generation, so a wait also unblocks when the active-process
  /// set shrinks and the caller's topology snapshot may be stale.
  const std::atomic<std::uint64_t>* interrupt2 = nullptr;
  std::uint64_t interrupt2_expect = 0;
  /// When set, only messages whose payload begins with this exact 8-byte
  /// value match.  Tree protocols stamp every message with its generation
  /// (or collective sequence number) as the leading std::uint64_t; exact
  /// matching keeps a restarting participant from consuming a message that
  /// belongs to a future round it has not reached yet.
  bool match_payload_head = false;
  std::uint64_t payload_head = 0;
};

/// Eagerly send a control message to `dst`.  Returns kErrProcFailed when the
/// destination is already dead.  Never blocks.
FTR_NODISCARD int ctrl_send(ProcId dst, std::uint64_t ctx, int tag, const void* data, std::size_t n);

/// Blocking control receive matched by exact (ctx, tag, src pid).
/// Fails with kErrProcFailed when `src` is (or becomes) dead and no matching
/// message is buffered, after charging the failure-detection latency.
FTR_NODISCARD int ctrl_recv(ProcId src, std::uint64_t ctx, int tag, std::vector<std::byte>* out,
              const RecvOpts& opts = {});

/// Blocking control receive from any source on (ctx, tag).
/// `watch` lists the pids that may legitimately send; the call fails if all
/// of them are dead and nothing matched.
FTR_NODISCARD int ctrl_recv_any(const std::vector<ProcId>& watch, std::uint64_t ctx, int tag,
                  std::vector<std::byte>* out, ProcId* src, const RecvOpts& opts = {});

// --- trivially-copyable packing helpers -----------------------------------

template <class T>
std::vector<std::byte> pack(const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(sizeof(T));
  std::memcpy(out.data(), &v, sizeof(T));
  return out;
}

template <class T>
T unpack(const std::vector<std::byte>& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  std::memcpy(&v, bytes.data(), std::min(sizeof(T), bytes.size()));
  return v;
}

template <class T>
std::vector<T> unpack_vec(const std::vector<std::byte>& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> v(bytes.size() / sizeof(T));
  std::memcpy(v.data(), bytes.data(), v.size() * sizeof(T));
  return v;
}

/// Rank indices of g's members that are alive (global runtime truth).
[[nodiscard]] std::vector<int> live_ranks(const Group& g);

/// Rank indices of g's members that are alive *and still executing* — the
/// members a tree topology can rely on to route messages (a finished rank
/// can no more forward a verdict than a dead one).
[[nodiscard]] std::vector<int> active_ranks(const Group& g);

/// Charge the virtual cost of `rounds` full gather+release exchanges between
/// a coordinator and `nprocs-1` peers without sending real messages.  The
/// coordinator calls this before distributing results, so the inflated clock
/// propagates to every peer through the arrival time of the result message.
/// Used to model chatty draft-ULFM internals (shrink consensus rounds, spawn
/// handshakes) at the right asymptotic cost.
void charge_coordinator_rounds(int rounds, int nprocs, bool cross_host = true);

}  // namespace ftmpi::detail
