// Protocol-sanitizer shadow state (see psan.hpp).  Compiled into the
// library only under FTR_SANITIZE=protocol; otherwise this translation unit
// is empty.

#include "ftmpi/psan.hpp"

#ifdef FTR_PSAN

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "ftmpi/comm.hpp"
#include "ftmpi/runtime.hpp"

namespace ftmpi::psan {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// One recorded event on a (process, context) stream.  `op` and `file`
/// point at string literals from the instrumentation sites.
struct OpRec {
  const char* op = nullptr;
  const char* file = nullptr;
  int line = 0;
  int root = -1;
  std::uint64_t seq = 0;
};

constexpr std::size_t kRing = 8;

struct Shadow {
  // Independent lifecycle bits: a sanctioned free after an observed revoke
  // must not clear the revoke observation (later uses of another alias of
  // the revoked context are still violations).  Only a *self* revoke arms
  // the strict salvage-set check; a passive observation (an operation that
  // returned kErrRevoked) is recorded for diagnostics only — see psan.hpp.
  bool revoke_observed = false;
  bool self_revoked = false;
  OpRec revoke_event;
  bool freed = false;
  OpRec free_event;
  // Overlapped recovery: set once this rank acks the repaired-world doorbell
  // (on_handoff).  Collectives on a superseded context abort; drains and
  // frees of the stale handles stay legitimate.
  bool superseded = false;
  OpRec handoff_event;
  std::uint64_t handoff_epoch = 0;
  std::uint64_t hash = kFnvOffset;
  std::uint64_t count = 0;  ///< collectives recorded since the last reset
  OpRec ring[kRing];
  std::size_t ring_len = 0;
};

// The whole simulated cluster lives in one process, so a single table keyed
// by (runtime, pid, context id) sees every rank — which is what lets the
// agree coordinator print the other side of a divergence.  The runtime
// component matters because a test binary runs many Runtime instances in
// sequence and both pids and context ids restart at the same values in each
// one; without it a fresh cluster would inherit the previous cluster's
// observations and stream hashes.
using Key = std::tuple<const void*, ProcId, std::uint64_t>;
std::mutex g_mu;
std::map<Key, Shadow> g_shadow;

/// Per-rank overlap attempt: the side context the split handed this rank
/// (continuation sub-communicator or repair comm) and the doorbell epoch it
/// was armed under.  Consumed — and the context superseded — at on_handoff.
struct OverlapRec {
  std::uint64_t side_ctx = 0;
  std::uint64_t epoch = 0;
};
std::map<std::pair<const void*, ProcId>, OverlapRec> g_overlap;

void record(Shadow& s, const OpRec& rec) {
  if (s.ring_len < kRing) {
    s.ring[s.ring_len++] = rec;
  } else {
    for (std::size_t i = 1; i < kRing; ++i) s.ring[i - 1] = s.ring[i];
    s.ring[kRing - 1] = rec;
  }
}

void print_ring(const Shadow& s) {
  if (s.ring_len == 0) {
    std::fprintf(stderr, " (no collectives recorded)");
    return;
  }
  for (std::size_t i = 0; i < s.ring_len; ++i) {
    const OpRec& r = s.ring[i];
    std::fprintf(stderr, " #%" PRIu64 " %s", r.seq, r.op);
    if (r.root >= 0) std::fprintf(stderr, "(root=%d)", r.root);
    std::fprintf(stderr, " @%s:%d", r.file, r.line);
  }
}

[[noreturn]] void die() {
  std::fflush(stderr);
  std::abort();
}

/// Lifecycle gate shared by on_use / on_collective: aborts if this rank
/// itself revoked the context earlier.  A freed context is NOT a
/// use-after-free here: contexts are reference counted and handle copies
/// are pervasive (world() stays a live alias after reconstruct frees its
/// own copy of the broken world), so only double-free is checkable.
void check_life(const Shadow& s, ProcId pid, std::uint64_t ctx, const char* op,
                const char* file, int line) {
  if (!s.self_revoked) return;
  std::fprintf(stderr,
               "ftmpi-psan: use-after-revoke: %s on comm ctx %" PRIu64
               " by pid %d (%s:%d)\n"
               "ftmpi-psan:   this rank revoked the context at %s:%d (%s); "
               "after revoking a communicator only the salvage set "
               "(iprobe_buffered/recv_buffered/shrink/agree/free) "
               "may touch it\n",
               op, ctx, pid, file, line, s.revoke_event.file, s.revoke_event.line,
               s.revoke_event.op);
  die();
}

/// Collective-only gate: a rank that acked the repaired-world doorbell must
/// run its collectives on the repaired world.  Enforced from on_collective
/// rather than check_life because point-to-point drains of the stale
/// handles (and their frees) remain sanctioned after the handoff.
void check_handoff(const Shadow& s, ProcId pid, std::uint64_t ctx, const char* op,
                   const char* file, int line) {
  if (!s.superseded) return;
  std::fprintf(stderr,
               "ftmpi-psan: use-after-handoff: %s on pre-handoff comm ctx %" PRIu64
               " by pid %d (%s:%d)\n"
               "ftmpi-psan:   this rank acked the repaired-world doorbell at %s:%d "
               "(repair epoch %" PRIu64 "); collectives must run on the repaired "
               "world — only buffered drains and frees of the superseded handles "
               "remain legitimate\n",
               op, ctx, pid, file, line, s.handoff_event.file, s.handoff_event.line,
               s.handoff_epoch);
  die();
}

}  // namespace

void on_use(const Comm& c, const char* op, const char* file, int line) {
  ProcessState* ps = Runtime::current();
  if (ps == nullptr || c.is_null()) return;
  const std::uint64_t ctx = c.context()->id;
  std::lock_guard<std::mutex> lock(g_mu);
  Shadow& s = g_shadow[{ps->rt, ps->pid, ctx}];
  check_life(s, ps->pid, ctx, op, file, line);
}

void on_collective(const Comm& c, const char* op, int root, const char* file, int line) {
  ProcessState* ps = Runtime::current();
  if (ps == nullptr || c.is_null()) return;
  const std::uint64_t ctx = c.context()->id;
  std::lock_guard<std::mutex> lock(g_mu);
  Shadow& s = g_shadow[{ps->rt, ps->pid, ctx}];
  check_life(s, ps->pid, ctx, op, file, line);
  check_handoff(s, ps->pid, ctx, op, file, line);
  s.hash = fnv_bytes(s.hash, op, std::strlen(op) + 1);
  s.hash = fnv_bytes(s.hash, &root, sizeof(root));
  ++s.count;
  record(s, OpRec{op, file, line, root, s.count});
}

void on_revoke_observed(const Comm& c, const char* op, bool self, const char* file, int line) {
  ProcessState* ps = Runtime::current();
  if (ps == nullptr || c.is_null()) return;
  std::lock_guard<std::mutex> lock(g_mu);
  Shadow& s = g_shadow[{ps->rt, ps->pid, c.context()->id}];
  // A self revoke outranks an earlier passive observation: the abort
  // diagnostic should cite the revoke call, not the error return.
  if (!s.revoke_observed || (self && !s.self_revoked)) {
    s.revoke_observed = true;
    s.revoke_event = OpRec{op, file, line, -1, s.count};
  }
  if (self) s.self_revoked = true;
}

void on_free(const Comm& c, const char* file, int line) {
  ProcessState* ps = Runtime::current();
  if (ps == nullptr || c.is_null()) return;
  const std::uint64_t ctx = c.context()->id;
  std::lock_guard<std::mutex> lock(g_mu);
  Shadow& s = g_shadow[{ps->rt, ps->pid, ctx}];
  if (s.freed) {
    std::fprintf(stderr,
                 "ftmpi-psan: double-free of comm ctx %" PRIu64 " by pid %d (%s:%d); "
                 "first freed at %s:%d\n",
                 ctx, ps->pid, file, line, s.free_event.file, s.free_event.line);
    die();
  }
  s.freed = true;
  s.free_event = OpRec{"comm_free", file, line, -1, s.count};
}

std::uint64_t stream_hash(const Comm& c) {
  ProcessState* ps = Runtime::current();
  if (ps == nullptr || c.is_null()) return kFnvOffset;
  std::lock_guard<std::mutex> lock(g_mu);
  return g_shadow[{ps->rt, ps->pid, c.context()->id}].hash;
}

std::uint64_t current_epoch() {
  ProcessState* ps = Runtime::current();
  return ps == nullptr ? 0 : ps->rt->failure_epoch();
}

void verify_at_agree(const Comm& c, const Group& g, const std::vector<AgreeReport>& reports,
                     bool no_dead) {
  ProcessState* ps = Runtime::current();
  if (ps == nullptr || c.is_null()) return;
  // Skip (never fake) verification whenever a stream may be stale: a member
  // died, the communicator is revoked mid-protocol, a member is
  // unconfirmed, or the reports straddle a failure epoch.
  if (!no_dead || c.is_revoked()) return;
  if (reports.size() != static_cast<std::size_t>(g.size())) return;
  const std::uint64_t epoch = ps->rt->failure_epoch();
  for (const AgreeReport& r : reports) {
    if (r.epoch != epoch) return;
  }
  const std::uint64_t ctx = c.context()->id;
  bool diverged = false;
  for (const AgreeReport& r : reports) {
    if (r.hash != reports.front().hash) diverged = true;
  }
  std::lock_guard<std::mutex> lock(g_mu);
  if (!diverged) {
    // Verified window: reset every member's stream.  The members are still
    // blocked on the agree reply, so their streams are quiescent.
    for (const AgreeReport& r : reports) {
      Shadow& s = g_shadow[{ps->rt, r.pid, ctx}];
      s.hash = kFnvOffset;
      s.count = 0;
      s.ring_len = 0;
    }
    return;
  }
  std::fprintf(stderr,
               "ftmpi-psan: collective sequence divergence on comm ctx %" PRIu64
               " detected at agree by pid %d (epoch %" PRIu64 ")\n",
               ctx, ps->pid, epoch);
  for (const AgreeReport& r : reports) {
    std::fprintf(stderr, "ftmpi-psan:   rank %d (pid %d): hash 0x%016" PRIx64 ", recent:",
                 r.rank, r.pid, r.hash);
    const auto it = g_shadow.find({ps->rt, r.pid, ctx});
    if (it != g_shadow.end()) {
      print_ring(it->second);
    } else {
      std::fprintf(stderr, " (no stream)");
    }
    std::fprintf(stderr, "\n");
  }
  die();
}

void on_overlap_split(const Comm& side, std::uint64_t epoch, const char* file, int line) {
  ProcessState* ps = Runtime::current();
  if (ps == nullptr || side.is_null()) return;
  const std::uint64_t ctx = side.context()->id;
  std::lock_guard<std::mutex> lock(g_mu);
  // Latest attempt wins: an aborted overlap leaves a stale record behind,
  // and the next split simply replaces it (the stale side context is dead by
  // then, so superseding it at a later handoff is harmless).
  g_overlap[{ps->rt, ps->pid}] = OverlapRec{ctx, epoch};
  Shadow& s = g_shadow[{ps->rt, ps->pid, ctx}];
  record(s, OpRec{"overlap_split", file, line, -1, s.count});
}

void on_handoff(const Comm& old_world, std::uint64_t epoch, const char* file, int line) {
  ProcessState* ps = Runtime::current();
  if (ps == nullptr || old_world.is_null()) return;
  const std::uint64_t ctx = old_world.context()->id;
  std::lock_guard<std::mutex> lock(g_mu);
  Shadow& s = g_shadow[{ps->rt, ps->pid, ctx}];
  s.superseded = true;
  s.handoff_epoch = epoch;
  s.handoff_event = OpRec{"overlap_handoff", file, line, -1, s.count};
  const auto it = g_overlap.find({ps->rt, ps->pid});
  if (it != g_overlap.end()) {
    // The side comm of the acked attempt dies with the old world: the
    // continuation sub-communicator (or repair comm) is a partial-world
    // layout nobody owns after the epoch bump.
    Shadow& side = g_shadow[{ps->rt, ps->pid, it->second.side_ctx}];
    side.superseded = true;
    side.handoff_epoch = epoch;
    side.handoff_event = OpRec{"overlap_handoff", file, line, -1, side.count};
    g_overlap.erase(it);
  }
}

void on_runtime_destroyed(const void* rt) {
  std::lock_guard<std::mutex> lock(g_mu);
  // Keys sort by runtime first, so the doomed range is contiguous.
  const auto lo = g_shadow.lower_bound(Key{rt, kNullProc, 0});
  auto hi = lo;
  while (hi != g_shadow.end() && std::get<0>(hi->first) == rt) ++hi;
  g_shadow.erase(lo, hi);
  for (auto it = g_overlap.begin(); it != g_overlap.end();) {
    if (it->first.first == rt) {
      it = g_overlap.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ftmpi::psan

#endif  // FTR_PSAN
