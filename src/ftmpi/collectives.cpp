// Root-coordinated collectives: barrier, broadcast, variable-size gather.
//
// A linear star topology is used deliberately: (a) the root aggregates the
// outcome, so failure reporting is near-uniform — the property the paper's
// failure-detection step relies on; (b) the virtual-time cost is O(P) per
// collective, matching the paper's observation that failed-list creation and
// communicator reconstruction grow with the core count.

#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/psan.hpp"

namespace ftmpi {

namespace {

/// Common validation for intracommunicator collectives.
int validate_intra(const Comm& c, int root) {
  if (c.is_null() || c.is_inter()) return kErrComm;
  if (root < 0 || root >= c.size()) return kErrArg;
  return kSuccess;
}

}  // namespace

int barrier(const Comm& c) {
  detail::check_alive();
  int rc = validate_intra(c, 0);
  if (rc != kSuccess) return finish(c, rc);
  FTR_PSAN_COLLECTIVE(c, "barrier", 0);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();

  if (c.rank() == 0) {
    int outcome = kSuccess;
    for (int r = 1; r < g.size(); ++r) {
      const int st = detail::ctrl_recv(g.pids[static_cast<size_t>(r)], id,
                                       tags::kBarrierArrive, nullptr, opts);
      if (st == kErrRevoked) return finish(c, st);
      if (st != kSuccess) outcome = kErrProcFailed;
    }
    int final_outcome = outcome;
    for (int r = 1; r < g.size(); ++r) {
      // A failed release send means that member died after arriving; keep
      // delivering to the rest, but report the death to the caller (it is
      // the freshest failure knowledge the root has).
      const int sr = detail::ctrl_send(g.pids[static_cast<size_t>(r)], id,
                                       tags::kBarrierRelease, &outcome, sizeof(outcome));
      if (sr != kSuccess) final_outcome = kErrProcFailed;
    }
    return finish(c, final_outcome);
  }
  const ProcId root_pid = g.pids[0];
  rc = detail::ctrl_send(root_pid, id, tags::kBarrierArrive, nullptr, 0);
  if (rc != kSuccess) return finish(c, kErrProcFailed);
  std::vector<std::byte> payload;
  rc = detail::ctrl_recv(root_pid, id, tags::kBarrierRelease, &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  return finish(c, detail::unpack<int>(payload));
}

int bcast_bytes(void* buf, std::size_t n, int root, const Comm& c) {
  detail::check_alive();
  int rc = validate_intra(c, root);
  if (rc != kSuccess) return finish(c, rc);
  FTR_PSAN_COLLECTIVE(c, "bcast_bytes", root);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();

  if (c.rank() == root) {
    int outcome = kSuccess;
    for (int r = 0; r < g.size(); ++r) {
      if (r == root) continue;
      const int st = detail::ctrl_send(g.pids[static_cast<size_t>(r)], id, tags::kBcast, buf, n);
      if (st != kSuccess) outcome = kErrProcFailed;  // keep delivering to the rest
    }
    return finish(c, outcome);
  }
  std::vector<std::byte> payload;
  rc = detail::ctrl_recv(g.pids[static_cast<size_t>(root)], id, tags::kBcast, &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  std::memcpy(buf, payload.data(), std::min(n, payload.size()));
  return finish(c, kSuccess);
}

int gather_bytes(const void* data, std::size_t n, std::vector<std::vector<std::byte>>* out,
                 int root, const Comm& c) {
  detail::check_alive();
  int rc = validate_intra(c, root);
  if (rc != kSuccess) return finish(c, rc);
  FTR_PSAN_COLLECTIVE(c, "gather_bytes", root);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();

  if (c.rank() == root) {
    int outcome = kSuccess;
    if (out != nullptr) {
      out->assign(static_cast<size_t>(g.size()), {});
      (*out)[static_cast<size_t>(root)].resize(n);
      if (n > 0) std::memcpy((*out)[static_cast<size_t>(root)].data(), data, n);
    }
    for (int r = 0; r < g.size(); ++r) {
      if (r == root) continue;
      std::vector<std::byte> payload;
      const int st = detail::ctrl_recv(g.pids[static_cast<size_t>(r)], id, tags::kGather,
                                       &payload, opts);
      if (st == kErrRevoked) return finish(c, st);
      if (st != kSuccess) {
        outcome = kErrProcFailed;
        continue;
      }
      if (out != nullptr) (*out)[static_cast<size_t>(r)] = std::move(payload);
    }
    // Release: tells every member the uniform outcome (and doubles as the
    // synchronization point that orders consecutive collectives).  A member
    // that dies mid-release still gets the death reported to the caller.
    int final_outcome = outcome;
    for (int r = 0; r < g.size(); ++r) {
      if (r == root) continue;
      const int sr = detail::ctrl_send(g.pids[static_cast<size_t>(r)], id,
                                       tags::kBarrierRelease, &outcome, sizeof(outcome));
      if (sr != kSuccess) final_outcome = kErrProcFailed;
    }
    return finish(c, final_outcome);
  }
  const ProcId root_pid = g.pids[static_cast<size_t>(root)];
  rc = detail::ctrl_send(root_pid, id, tags::kGather, data, n);
  if (rc != kSuccess) return finish(c, kErrProcFailed);
  std::vector<std::byte> payload;
  rc = detail::ctrl_recv(root_pid, id, tags::kBarrierRelease, &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  return finish(c, detail::unpack<int>(payload));
}

}  // namespace ftmpi
