// Root-coordinated collectives: barrier, broadcast, variable-size gather.
//
// A linear star topology is used deliberately: (a) the root aggregates the
// outcome, so failure reporting is near-uniform — the property the paper's
// failure-detection step relies on; (b) the virtual-time cost is O(P) per
// collective, matching the paper's observation that failed-list creation and
// communicator reconstruction grow with the core count.

#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/psan.hpp"

namespace ftmpi {

namespace {

/// Common validation for intracommunicator collectives.
int validate_intra(const Comm& c, int root) {
  if (c.is_null() || c.is_inter()) return kErrComm;
  if (root < 0 || root >= c.size()) return kErrArg;
  return kSuccess;
}

}  // namespace

bool tree_collectives_enabled() { return detail::rt().options().tree_protocols; }

int allreduce_bytes_tree(void* buf, std::size_t elem_size, int count, ReduceOp op,
                         CombineBytesFn combine, const Comm& c) {
  // Log-depth fault-tolerant allreduce: partial vectors reduce up a binary
  // tree built over the live rank list, the root folds the outcome, and
  // result + outcome flood back down.  Every wait carries a watch list, and
  // every rank releases its children before returning on *any* path, so a
  // death re-routes into error reporting instead of a hang: a dead interior
  // node's children observe the death, adopt the failure outcome and still
  // release their own subtrees.
  detail::check_alive();
  int rc = validate_intra(c, 0);
  if (rc != kSuccess) return finish(c, rc);
  FTR_PSAN_COLLECTIVE(c, "allreduce", 0);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  const std::size_t nbytes = elem_size * static_cast<std::size_t>(count);
  // Every message of this call leads with the per-handle collective sequence
  // number, and receives match on it exactly: a peer that failed out of an
  // earlier call and moved on can never have its next-call traffic consumed
  // by a rank still finishing this one.
  const std::uint64_t seq = c.local().coll_seq++;

  struct Head {
    std::uint64_t seq;
    std::int32_t outcome;
    std::int32_t pad;
  };

  // Load the membership epoch before snapshotting the topology (see
  // agree_tree): a death racing protocol entry interrupts our waits instead
  // of leaving us blocked on a peer whose tree disagrees with ours.
  std::uint64_t mepoch = detail::rt().membership_epoch().load();
  const std::vector<int> alive_entry = detail::live_ranks(g);
  const std::vector<int> live = detail::active_ranks(g);
  int mi = -1;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i] == c.rank()) {
      mi = static_cast<int>(i);
      break;
    }
  }
  if (mi < 0) return finish(c, kErrProcFailed);  // unreachable while alive

  int outcome = kSuccess;
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();
  opts.match_payload_head = true;
  opts.payload_head = seq;

  // Blocking receive that re-arms on benign membership interrupts and
  // converts a mid-call *death* in this group into a failure outcome — the
  // collective reports the error; recovery is the caller's job
  // (revoke/shrink/agree), as in ULFM.  A member that merely finished is
  // benign: in a correct program it can only exit after completing this very
  // collective, so anything we are owed is already en route.
  const auto recv_step = [&](ProcId peer, int tag, std::vector<std::byte>* payload) -> int {
    for (;;) {
      opts.interrupt = &detail::rt().membership_epoch();
      opts.interrupt_expect = mepoch;
      const int st = detail::ctrl_recv(peer, id, tag, payload, opts);
      if (st != kErrPending) return st;
      const std::uint64_t m2 = detail::rt().membership_epoch().load();
      if (detail::live_ranks(g) != alive_entry) return kErrProcFailed;
      mepoch = m2;
    }
  };

  // -- reduce up: fold the children's partial vectors into buf --------------
  for (int k = 1; k <= 2; ++k) {
    const std::size_t ci = 2 * static_cast<size_t>(mi) + static_cast<size_t>(k);
    if (ci >= live.size()) break;
    const ProcId child = g.pids[static_cast<size_t>(live[ci])];
    std::vector<std::byte> payload;
    const int st = recv_step(child, tags::kCollTreeUp, &payload);
    if (st == kErrRevoked) return finish(c, st);
    if (st != kSuccess || payload.size() < sizeof(Head) + nbytes) {
      outcome = kErrProcFailed;  // the dead child's subtree contribution is lost
      continue;
    }
    Head h{};
    std::memcpy(&h, payload.data(), sizeof(h));
    if (h.outcome != kSuccess) outcome = kErrProcFailed;
    combine(buf, payload.data() + sizeof(Head), count, op);
  }

  // -- exchange with the parent (or fold the verdict at the root) -----------
  std::vector<std::byte> down;
  if (mi == 0) {
    // Mirror the linear gather's failure reporting: a member missing from
    // the live snapshot is a failure even if no wait tripped over it.
    if (static_cast<int>(live.size()) != g.size()) outcome = kErrProcFailed;
    down.resize(sizeof(Head) + nbytes);
    const Head dh{seq, outcome, 0};
    std::memcpy(down.data(), &dh, sizeof(dh));
    std::memcpy(down.data() + sizeof(dh), buf, nbytes);
  } else {
    std::vector<std::byte> up(sizeof(Head) + nbytes);
    const Head uh{seq, outcome, 0};
    std::memcpy(up.data(), &uh, sizeof(uh));
    std::memcpy(up.data() + sizeof(uh), buf, nbytes);
    const ProcId parent = g.pids[static_cast<size_t>(live[static_cast<size_t>((mi - 1) / 2)])];
    int st = detail::ctrl_send(parent, id, tags::kCollTreeUp, up.data(), up.size());
    if (st == kSuccess) {
      std::vector<std::byte> payload;
      st = recv_step(parent, tags::kCollTreeDown, &payload);
      if (st == kErrRevoked) return finish(c, st);
      if (st == kSuccess && payload.size() >= sizeof(Head) + nbytes) {
        down = std::move(payload);
      }
    }
    if (down.empty()) {
      // Parent died holding the reduction: report the failure, but still
      // release the children below so no subtree blocks forever.
      outcome = kErrProcFailed;
      down.resize(sizeof(Head) + nbytes);
      const Head dh{seq, outcome, 0};
      std::memcpy(down.data(), &dh, sizeof(dh));
      std::memcpy(down.data() + sizeof(dh), buf, nbytes);
    }
  }

  // -- broadcast down: release the children before returning ----------------
  for (int k = 1; k <= 2; ++k) {
    const std::size_t ci = 2 * static_cast<size_t>(mi) + static_cast<size_t>(k);
    if (ci >= live.size()) break;
    // A child that died after contributing is already reported upward.
    const int sr = detail::ctrl_send(g.pids[static_cast<size_t>(live[ci])], id,
                                     tags::kCollTreeDown, down.data(), down.size());
    if (sr != kSuccess) outcome = kErrProcFailed;
  }

  Head dh{};
  std::memcpy(&dh, down.data(), sizeof(dh));
  if (dh.outcome == kSuccess) {
    std::memcpy(buf, down.data() + sizeof(dh), nbytes);
  }
  const int final_outcome = dh.outcome != kSuccess ? dh.outcome : outcome;
  return finish(c, final_outcome);
}

int barrier(const Comm& c) {
  detail::check_alive();
  int rc = validate_intra(c, 0);
  if (rc != kSuccess) return finish(c, rc);
  FTR_PSAN_COLLECTIVE(c, "barrier", 0);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();

  if (c.rank() == 0) {
    int outcome = kSuccess;
    for (int r = 1; r < g.size(); ++r) {
      const int st = detail::ctrl_recv(g.pids[static_cast<size_t>(r)], id,
                                       tags::kBarrierArrive, nullptr, opts);
      if (st == kErrRevoked) return finish(c, st);
      if (st != kSuccess) outcome = kErrProcFailed;
    }
    int final_outcome = outcome;
    for (int r = 1; r < g.size(); ++r) {
      // A failed release send means that member died after arriving; keep
      // delivering to the rest, but report the death to the caller (it is
      // the freshest failure knowledge the root has).
      const int sr = detail::ctrl_send(g.pids[static_cast<size_t>(r)], id,
                                       tags::kBarrierRelease, &outcome, sizeof(outcome));
      if (sr != kSuccess) final_outcome = kErrProcFailed;
    }
    return finish(c, final_outcome);
  }
  const ProcId root_pid = g.pids[0];
  rc = detail::ctrl_send(root_pid, id, tags::kBarrierArrive, nullptr, 0);
  if (rc != kSuccess) return finish(c, kErrProcFailed);
  std::vector<std::byte> payload;
  rc = detail::ctrl_recv(root_pid, id, tags::kBarrierRelease, &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  return finish(c, detail::unpack<int>(payload));
}

int bcast_bytes(void* buf, std::size_t n, int root, const Comm& c) {
  detail::check_alive();
  int rc = validate_intra(c, root);
  if (rc != kSuccess) return finish(c, rc);
  FTR_PSAN_COLLECTIVE(c, "bcast_bytes", root);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();

  if (c.rank() == root) {
    int outcome = kSuccess;
    for (int r = 0; r < g.size(); ++r) {
      if (r == root) continue;
      const int st = detail::ctrl_send(g.pids[static_cast<size_t>(r)], id, tags::kBcast, buf, n);
      if (st != kSuccess) outcome = kErrProcFailed;  // keep delivering to the rest
    }
    return finish(c, outcome);
  }
  std::vector<std::byte> payload;
  rc = detail::ctrl_recv(g.pids[static_cast<size_t>(root)], id, tags::kBcast, &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  std::memcpy(buf, payload.data(), std::min(n, payload.size()));
  return finish(c, kSuccess);
}

int gather_bytes(const void* data, std::size_t n, std::vector<std::vector<std::byte>>* out,
                 int root, const Comm& c) {
  detail::check_alive();
  int rc = validate_intra(c, root);
  if (rc != kSuccess) return finish(c, rc);
  FTR_PSAN_COLLECTIVE(c, "gather_bytes", root);
  if (c.is_revoked()) return finish(c, kErrRevoked);

  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();

  if (c.rank() == root) {
    int outcome = kSuccess;
    if (out != nullptr) {
      out->assign(static_cast<size_t>(g.size()), {});
      (*out)[static_cast<size_t>(root)].resize(n);
      if (n > 0) std::memcpy((*out)[static_cast<size_t>(root)].data(), data, n);
    }
    for (int r = 0; r < g.size(); ++r) {
      if (r == root) continue;
      std::vector<std::byte> payload;
      const int st = detail::ctrl_recv(g.pids[static_cast<size_t>(r)], id, tags::kGather,
                                       &payload, opts);
      if (st == kErrRevoked) return finish(c, st);
      if (st != kSuccess) {
        outcome = kErrProcFailed;
        continue;
      }
      if (out != nullptr) (*out)[static_cast<size_t>(r)] = std::move(payload);
    }
    // Release: tells every member the uniform outcome (and doubles as the
    // synchronization point that orders consecutive collectives).  A member
    // that dies mid-release still gets the death reported to the caller.
    int final_outcome = outcome;
    for (int r = 0; r < g.size(); ++r) {
      if (r == root) continue;
      const int sr = detail::ctrl_send(g.pids[static_cast<size_t>(r)], id,
                                       tags::kBarrierRelease, &outcome, sizeof(outcome));
      if (sr != kSuccess) final_outcome = kErrProcFailed;
    }
    return finish(c, final_outcome);
  }
  const ProcId root_pid = g.pids[static_cast<size_t>(root)];
  rc = detail::ctrl_send(root_pid, id, tags::kGather, data, n);
  if (rc != kSuccess) return finish(c, kErrProcFailed);
  std::vector<std::byte> payload;
  rc = detail::ctrl_recv(root_pid, id, tags::kBarrierRelease, &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  return finish(c, detail::unpack<int>(payload));
}

}  // namespace ftmpi
