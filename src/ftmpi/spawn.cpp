// Dynamic process management: MPI_Comm_spawn_multiple and
// MPI_Intercomm_merge — the primitives the paper's repairComm (Fig. 5) uses
// to re-create failed processes on their original hosts and attach them to
// the survivors.

#include <numeric>

#include "common/errors.hpp"
#include "common/logging.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/psan.hpp"

namespace ftmpi {

namespace {

struct SpawnReply {
  int outcome;
  std::uint64_t inter_ctx;
};

}  // namespace

int comm_spawn_multiple(const std::vector<SpawnUnit>& units, int root, const Comm& c,
                        Comm* intercomm, std::vector<int>* errcodes) {
  detail::check_alive();
  chaos_point("spawn");
  *intercomm = Comm{};
  if (c.is_null() || c.is_inter()) return kErrComm;
  if (root < 0 || root >= c.size()) return finish(c, kErrArg);
  FTR_PSAN_COLLECTIVE(c, "comm_spawn_multiple", root);

  Runtime& r = detail::rt();
  const std::uint64_t id = c.context()->id;
  const Group& g = c.group();
  ProcessState& me = detail::self();

  if (c.rank() == root) {
    int total = 0;
    for (const auto& u : units) total += std::max(u.maxprocs, 0);

    // RTE launch cost: base setup plus per-process fork/exec and wire-up.
    const CostModel& cm = r.cost();
    detail::charge(cm.spawn_base + cm.spawn_per_proc * total);
    // Connection wire-up between every existing member and each new
    // process — the size-dependent term that dominates Table I's spawn
    // column at scale.
    detail::charge(cm.spawn_setup_per_proc * static_cast<double>(std::max(total, 1)) *
                   static_cast<double>(g.size()));
    // Plus launcher handshake rounds over the parent communicator.
    detail::charge_coordinator_rounds(cm.spawn_handshake_rounds * std::max(total, 1),
                                      g.size());

    // Create the children (threads not yet started).  If the cluster cannot
    // place every requested process, roll back the partial batch and report
    // kErrSpawn uniformly: every member learns through the reply below that
    // no replacement exists, which is what triggers shrink-mode recovery.
    Group children;
    bool placement_failed = false;
    for (const auto& u : units) {
      for (int i = 0; i < u.maxprocs; ++i) {
        const ProcId pid = r.create_process(u.command, u.argv, u.host, 0.0);
        if (pid == kNullProc) {
          placement_failed = true;
          break;
        }
        children.pids.push_back(pid);
      }
      if (placement_failed) break;
    }
    if (placement_failed) {
      for (ProcId pid : children.pids) r.release_unstarted(pid);
      FTR_WARN("ftmpi: spawn of %d replacements failed: cluster exhausted", total);
      const SpawnReply reply{kErrSpawn, 0};
      for (int rr = 0; rr < g.size(); ++rr) {
        if (rr == root) continue;
        // Best-effort delivery of the uniform kErrSpawn verdict: a member
        // that died meanwhile observes its own failure instead.
        ftr::observe_error(detail::ctrl_send(g.pids[static_cast<size_t>(rr)], id,
                                             tags::kSpawnInfo, &reply, sizeof(reply)),
                           "spawn.reply");
      }
      if (errcodes != nullptr) errcodes->assign(units.size(), kErrSpawn);
      return finish(c, kErrSpawn);
    }
    const auto child_world = r.create_context(children);
    const auto inter = r.create_context(g, children, /*inter=*/true);
    for (int k = 0; k < children.size(); ++k) {
      ProcessState& ch = r.proc(children.pids[static_cast<size_t>(k)]);
      ch.world_ctx = child_world->id;
      ch.world_rank = k;
      ch.parent_ctx = inter->id;
      ch.vclock = me.vclock;  // children come up once the launcher is done
    }
    for (ProcId pid : children.pids) r.start_process(pid);
    r.trace().record(me.vclock, me.pid, TraceEvent::Spawn, children.size());

    SpawnReply reply{kSuccess, inter->id};
    for (int rr = 0; rr < g.size(); ++rr) {
      if (rr == root) continue;
      // A failed reply send means that member just died.  Do NOT return an
      // error from the root alone: the other members received a success
      // reply and are already headed into the validation agree on the
      // intercommunicator, which the root also joins — that is where the
      // death is observed *uniformly* by every parent and child.  Bailing
      // out here would leave the peers (and the children) agreeing with a
      // coordinator that already went back to revoke.
      ftr::observe_error(detail::ctrl_send(g.pids[static_cast<size_t>(rr)], id,
                                           tags::kSpawnInfo, &reply, sizeof(reply)),
                         "spawn.reply");
    }
    if (errcodes != nullptr) errcodes->assign(units.size(), kSuccess);
    *intercomm = Comm(inter, 0, me.pid);
    chaos_point("spawn.done");
    return finish(c, kSuccess);
  }

  std::vector<std::byte> payload;
  detail::RecvOpts opts;
  opts.revoke_ctx = c.context();
  const int rc = detail::ctrl_recv(g.pids[static_cast<size_t>(root)], id, tags::kSpawnInfo,
                                   &payload, opts);
  if (rc != kSuccess) return finish(c, rc == kErrRevoked ? rc : kErrProcFailed);
  const auto reply = detail::unpack<SpawnReply>(payload);
  if (errcodes != nullptr) errcodes->assign(units.size(), reply.outcome);
  if (reply.inter_ctx != 0) {
    *intercomm = Comm(r.find_context(reply.inter_ctx), 0, me.pid);
  }
  chaos_point("spawn.done");
  return finish(c, reply.outcome);
}

int intercomm_merge(const Comm& inter, bool high, Comm* out) {
  detail::check_alive();
  chaos_point("merge");
  *out = Comm{};
  if (inter.is_null() || !inter.is_inter()) return kErrComm;
  FTR_PSAN_COLLECTIVE(inter, "intercomm_merge", -1);

  Runtime& r = detail::rt();
  const std::uint64_t id = inter.context()->id;
  const Group& local = inter.group();
  const Group& remote = inter.remote_group();
  ProcessState& me = detail::self();
  const ProcId local_leader = local.pids[0];
  const ProcId remote_leader = remote.pids[0];

  // Cascading-failure hardening: a leader that fails mid-protocol announces
  // the failure (merged_id = 0) to every non-leader of BOTH groups.
  // Non-leaders wait on whichever leader speaks first; without the
  // announcement, a peer's death observed only by one leader would leave
  // the other side blocked on a live process that already returned.
  auto announce_failure = [&] {
    const std::uint64_t none = 0;
    for (const Group* grp : {&local, &remote}) {
      for (ProcId p : grp->pids) {
        if (p == me.pid || p == local_leader || p == remote_leader) continue;
        // Best-effort: a non-leader that died meanwhile needs no announcement.
        ftr::observe_error(detail::ctrl_send(p, id, tags::kMergeInfo, &none, sizeof(none)),
                           "merge.announce");
      }
    }
    return finish(inter, kErrProcFailed);
  };

  std::uint64_t merged_id = 0;
  if (inter.rank() == 0) {
    // Leaders exchange their `high` flags to decide the order of the merged
    // groups; ties (both sides passing the same flag) are broken by pid.
    const int my_flag = high ? 1 : 0;
    if (detail::ctrl_send(remote_leader, id, tags::kMergeCross, &my_flag, sizeof(my_flag)) !=
        kSuccess) {
      return announce_failure();
    }
    std::vector<std::byte> payload;
    if (detail::ctrl_recv(remote_leader, id, tags::kMergeCross, &payload) != kSuccess) {
      return announce_failure();
    }
    const int remote_flag = detail::unpack<int>(payload);
    bool i_am_low;
    if (my_flag != remote_flag) {
      i_am_low = my_flag == 0;
    } else {
      i_am_low = me.pid < remote_leader;
    }

    if (i_am_low) {
      Group merged = local;
      merged.pids.insert(merged.pids.end(), remote.pids.begin(), remote.pids.end());
      const auto ctx = r.create_context(std::move(merged));
      merged_id = ctx->id;
      r.trace().record(me.vclock, me.pid, TraceEvent::Merge, ctx->group[0].size());
      for (ProcId p : ctx->group[0].pids) {
        if (p == me.pid) continue;
        // A member that died meanwhile is observed uniformly at the next
        // operation on the merged communicator; keep delivering to the rest.
        ftr::observe_error(
            detail::ctrl_send(p, id, tags::kMergeInfo, &merged_id, sizeof(merged_id)),
            "merge.announce");
      }
    } else {
      std::vector<std::byte> info;
      if (detail::ctrl_recv(remote_leader, id, tags::kMergeInfo, &info) != kSuccess) {
        return announce_failure();
      }
      merged_id = detail::unpack<std::uint64_t>(info);
      if (merged_id == 0) return finish(inter, kErrProcFailed);
    }
  } else {
    // Non-leaders: the merged-context announcement comes from whichever
    // side's leader ended up low (or a failure notice from either leader).
    std::vector<std::byte> info;
    if (detail::ctrl_recv_any({local_leader, remote_leader}, id, tags::kMergeInfo, &info,
                              nullptr) != kSuccess) {
      return finish(inter, kErrProcFailed);
    }
    merged_id = detail::unpack<std::uint64_t>(info);
    if (merged_id == 0) return finish(inter, kErrProcFailed);
  }

  *out = Comm(r.find_context(merged_id), 0, me.pid);
  return kSuccess;
}

}  // namespace ftmpi
