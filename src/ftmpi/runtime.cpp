#include "ftmpi/runtime.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>

#include "common/logging.hpp"
#include "ftmpi/psan.hpp"

namespace ftmpi {

namespace {
thread_local ProcessState* tls_proc = nullptr;
}  // namespace

ProcessState* Runtime::current() { return tls_proc; }

Runtime::Runtime(Options opt) : opt_(std::move(opt)) {
  if (opt_.slots_per_host <= 0) opt_.slots_per_host = 1;
  if (const char* env = std::getenv("FTR_TRACE"); env != nullptr && env[0] == '1') {
    trace_.enable();
  }
  if (const char* env = std::getenv("FTR_DETECTOR"); env != nullptr) {
    opt_.detector.enabled = std::string(env) != "off";
  }
  if (const char* env = std::getenv("FTR_HB_PERIOD"); env != nullptr) {
    if (const double v = std::atof(env); v > 0.0) opt_.detector.period = v;
  }
  if (const char* env = std::getenv("FTR_HB_SUSPECT"); env != nullptr) {
    if (const double v = std::atof(env); v > 0.0) opt_.detector.suspect_after = v;
  }
  if (const char* env = std::getenv("FTR_HB_TIMEOUT"); env != nullptr) {
    if (const double v = std::atof(env); v > 0.0) opt_.detector.confirm_after = v;
  }
  if (const char* env = std::getenv("FTR_AGREE"); env != nullptr) {
    opt_.tree_protocols = std::string(env) != "linear";
  }
  if (opt_.detector.suspect_after < opt_.detector.period) {
    opt_.detector.suspect_after = opt_.detector.period;
  }
  if (opt_.detector.confirm_after <= opt_.detector.suspect_after) {
    opt_.detector.confirm_after = 2.0 * opt_.detector.suspect_after;
  }
}

Runtime::~Runtime() {
  // All threads were joined by run(); joining again here covers the case
  // where a Runtime is destroyed after an aborted construction path.
  // Join without holding mu_ (see run()).
  std::vector<std::thread*> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& ps : procs_) {
      if (ps->thread.joinable()) to_join.push_back(&ps->thread);
    }
  }
  for (std::thread* t : to_join) t->join();
  // Pids and context ids restart per Runtime (and stack Runtimes can reuse
  // an address), so the protocol sanitizer must forget this instance.
  FTR_PSAN_RUNTIME_DESTROYED(this);
}

void Runtime::register_app(const std::string& name, EntryFn entry) {
  std::lock_guard<std::mutex> lock(mu_);
  apps_[name] = std::move(entry);
}

std::pair<int, int> Runtime::allocate_slot_locked(int preferred_host) {
  // With a bounded cluster (max_hosts > 0), growth stops at the bound and
  // the allocation can fail ({-1, -1}) — the substrate of spawn placement
  // failure and the shrink-mode recovery fallback.
  auto can_grow_to = [this](int h) {
    return opt_.max_hosts <= 0 || h < opt_.max_hosts;
  };
  auto grow_to = [this, &can_grow_to](int h) {
    if (!can_grow_to(h)) return false;
    while (static_cast<size_t>(h) >= hosts_.size()) {
      hosts_.emplace_back(static_cast<size_t>(opt_.slots_per_host), false);
      host_failed_.push_back(false);
    }
    return true;
  };
  auto find_free = [this](int h) -> int {
    if (host_failed_[static_cast<size_t>(h)]) return -1;
    for (int s = 0; s < opt_.slots_per_host; ++s) {
      if (!hosts_[static_cast<size_t>(h)][static_cast<size_t>(s)]) return s;
    }
    return -1;
  };
  if (preferred_host >= 0 && grow_to(preferred_host)) {
    // A failed node's placement requests are redirected to one consistent
    // spare host, so all of its replacements come up co-located (the
    // paper's future-work node-failure scenario).
    if (host_failed_[static_cast<size_t>(preferred_host)]) {
      const auto it = host_substitute_.find(preferred_host);
      if (it != host_substitute_.end()) {
        preferred_host = it->second;
      } else if (const int spare = static_cast<int>(hosts_.size()); grow_to(spare)) {
        host_substitute_[preferred_host] = spare;
        FTR_INFO("ftmpi: failed host %d substituted by spare host %d", preferred_host,
                 spare);
        preferred_host = spare;
      } else {
        preferred_host = -1;  // cluster bounded and full of failed/occupied hosts
      }
    }
    if (preferred_host >= 0) {
      const int s = find_free(preferred_host);
      if (s >= 0) {
        hosts_[static_cast<size_t>(preferred_host)][static_cast<size_t>(s)] = true;
        return {preferred_host, s};
      }
      FTR_WARN("ftmpi: preferred host %d full; falling back to first free slot",
               preferred_host);
    }
  }
  for (size_t h = 0; h < hosts_.size(); ++h) {
    const int s = find_free(static_cast<int>(h));
    if (s >= 0) {
      hosts_[h][static_cast<size_t>(s)] = true;
      return {static_cast<int>(h), s};
    }
  }
  if (!grow_to(static_cast<int>(hosts_.size()))) {
    FTR_WARN("ftmpi: cluster exhausted (%zu hosts, max %d); placement failed",
             hosts_.size(), opt_.max_hosts);
    return {-1, -1};
  }
  hosts_.back()[0] = true;
  return {static_cast<int>(hosts_.size()) - 1, 0};
}

void Runtime::fail_host(int host) {
  std::vector<ProcId> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (host < 0 || static_cast<size_t>(host) >= hosts_.size()) return;
    host_failed_[static_cast<size_t>(host)] = true;
    for (const auto& ps : procs_) {
      if (ps->host == host && !ps->dead.load() && !ps->finished.load()) {
        victims.push_back(ps->pid);
      }
    }
  }
  FTR_INFO("ftmpi: node failure on host %d kills %zu processes", host, victims.size());
  trace_.record(0.0, kNullProc, TraceEvent::HostFail, host);
  for (ProcId pid : victims) kill(pid);
}

bool Runtime::host_failed(int host) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (host < 0 || static_cast<size_t>(host) >= host_failed_.size()) return false;
  return host_failed_[static_cast<size_t>(host)];
}

std::vector<ProcId> Runtime::procs_on_host(int host) const {
  std::vector<ProcId> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ps : procs_) {
    if (ps->host == host) out.push_back(ps->pid);
  }
  return out;
}

ProcId Runtime::create_process(const std::string& app, std::vector<std::string> argv,
                               int preferred_host, double start_clock) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [host, slot] = allocate_slot_locked(preferred_host);
  if (host < 0) return kNullProc;
  auto ps = std::make_unique<ProcessState>();
  ps->rt = this;
  ps->pid = static_cast<ProcId>(procs_.size());
  ps->app = app;
  ps->argv = std::move(argv);
  ps->vclock = start_clock;
  ps->host = host;
  ps->slot = slot;
  procs_.push_back(std::move(ps));
  return procs_.back()->pid;
}

void Runtime::release_unstarted(ProcId pid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pid < 0 || static_cast<size_t>(pid) >= procs_.size()) return;
  ProcessState& ps = *procs_[static_cast<size_t>(pid)];
  if (ps.thread.joinable() || ps.finished.load()) return;  // already started
  ps.dead.store(true);
  ps.finished.store(true);
  hosts_[static_cast<size_t>(ps.host)][static_cast<size_t>(ps.slot)] = false;
}

void Runtime::start_process(ProcId pid) {
  ProcessState* ps = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ps = procs_.at(static_cast<size_t>(pid)).get();
    ++active_;
  }
  ps->started.store(true);
  ps->thread = std::thread([this, ps] { thread_main(ps); });
}

void Runtime::thread_main(ProcessState* ps) {
  tls_proc = ps;
  EntryFn entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = apps_.find(ps->app);
    if (it != apps_.end()) entry = it->second;
  }
  if (entry) {
    try {
      entry(ps->argv);
    } catch (const ProcessKilled&) {
      // Fail-stop unwind: the process executes nothing further.
      FTR_DEBUG("ftmpi: pid %d terminated by kill", ps->pid);
    } catch (const std::exception& e) {
      FTR_ERROR("ftmpi: pid %d terminated by exception: %s", ps->pid, e.what());
    }
  } else {
    FTR_ERROR("ftmpi: pid %d: no registered app named '%s'", ps->pid, ps->app.c_str());
  }
  ps->finished.store(true);
  membership_epoch_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
  }
  done_cv_.notify_all();
  // Peers blocked on this process must re-evaluate their wait predicates.
  notify_all_procs();
  tls_proc = nullptr;
}

int Runtime::run(const std::string& app, int world_size, std::vector<std::string> argv) {
  if (world_size <= 0) return 0;
  const int killed_before = killed_.load();

  Group world_group;
  std::vector<ProcId> pids;
  pids.reserve(static_cast<size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    // The initial placement follows the paper's hostfile: rank r lands on
    // host r / SLOTS.
    const ProcId pid = create_process(app, argv, r / opt_.slots_per_host, 0.0);
    pids.push_back(pid);
    world_group.pids.push_back(pid);
  }
  const auto world = create_context(world_group);
  for (int r = 0; r < world_size; ++r) {
    auto& ps = proc(pids[static_cast<size_t>(r)]);
    ps.world_ctx = world->id;
    ps.world_rank = r;
  }
  for (ProcId pid : pids) start_process(pid);

  // Wait for completion with a real-time watchdog: a protocol bug that
  // deadlocks rank threads cannot be unwound, so fail loudly.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opt_.real_time_limit_sec));
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (active_ > 0) {
      if (done_cv_.wait_until(lock, deadline) == std::cv_status::timeout && active_ > 0) {
        lock.unlock();
        dump_state();
        FTR_ERROR("ftmpi: watchdog expired after %.0f s with %d processes still active",
                  opt_.real_time_limit_sec, active_);
        std::abort();
      }
    }
  }
  // Join without holding mu_: an exiting thread's wrapper still calls
  // notify_all_procs() (which needs mu_) after decrementing the active
  // count, so joining under the lock would deadlock against it.
  std::vector<std::thread*> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& ps : procs_) {
      if (ps->thread.joinable()) to_join.push_back(&ps->thread);
    }
  }
  for (std::thread* t : to_join) t->join();
  return killed_.load() - killed_before;
}

void Runtime::kill(ProcId pid) {
  ProcessState* ps = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pid < 0 || static_cast<size_t>(pid) >= procs_.size()) return;
    ps = procs_[static_cast<size_t>(pid)].get();
    if (ps->dead.load() || ps->finished.load()) return;
    ps->dead.store(true);
    // Free the host slot so repair can re-spawn on the same node, which is
    // exactly the paper's load-balancing strategy.
    hosts_[static_cast<size_t>(ps->host)][static_cast<size_t>(ps->slot)] = false;
  }
  killed_.fetch_add(1);
  failure_epoch_.fetch_add(1);
  membership_epoch_.fetch_add(1);
  trace_.record(ps->vclock, pid, TraceEvent::Kill, ps->world_rank);
  notify_all_procs();
  FTR_DEBUG("ftmpi: killed pid %d (world rank %d)", pid, ps->world_rank);
}

bool Runtime::is_dead(ProcId pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pid < 0 || static_cast<size_t>(pid) >= procs_.size()) return true;
  return procs_[static_cast<size_t>(pid)]->dead.load();
}

bool Runtime::any_dead(const Group& g) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (ProcId p : g.pids) {
    if (procs_[static_cast<size_t>(p)]->dead.load()) return true;
  }
  return false;
}

std::vector<ProcId> Runtime::dead_members(const Group& g) const {
  std::vector<ProcId> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (ProcId p : g.pids) {
    if (procs_[static_cast<size_t>(p)]->dead.load()) out.push_back(p);
  }
  return out;
}

int Runtime::lowest_live_rank(const Group& g) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (int r = 0; r < g.size(); ++r) {
    if (!procs_[static_cast<size_t>(g.pids[static_cast<size_t>(r)])]->dead.load()) return r;
  }
  return -1;
}

int Runtime::host_of(ProcId pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return procs_.at(static_cast<size_t>(pid))->host;
}

int Runtime::total_processes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(procs_.size());
}

std::vector<ProcId> Runtime::active_pids() const {
  std::vector<ProcId> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(procs_.size());
  for (const auto& ps : procs_) {
    // A process leaves the RTE-visible membership only by *deregistering
    // cleanly* (finishing without having been killed).  A crashed process
    // stays listed — its silence in the heartbeat ring is exactly what the
    // detector's timeout observes; it leaves each rank's ring view only
    // when that rank learns of the death (known_failed).
    if (ps->started.load() && (ps->dead.load() || !ps->finished.load())) {
      out.push_back(ps->pid);
    }
  }
  return out;
}

std::shared_ptr<CommContext> Runtime::create_context(Group local, Group remote, bool inter) {
  auto ctx = std::make_shared<CommContext>();
  ctx->is_inter = inter;
  ctx->group[0] = std::move(local);
  ctx->group[1] = std::move(remote);
  std::lock_guard<std::mutex> lock(ctx_mu_);
  ctx->id = next_ctx_++;
  contexts_[ctx->id] = ctx;
  return ctx;
}

std::shared_ptr<CommContext> Runtime::find_context(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(ctx_mu_);
  const auto it = contexts_.find(id);
  return it == contexts_.end() ? nullptr : it->second;
}

ProcessState& Runtime::proc(ProcId pid) {
  std::lock_guard<std::mutex> lock(mu_);
  return *procs_.at(static_cast<size_t>(pid));
}

const ProcessState& Runtime::proc(ProcId pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return *procs_.at(static_cast<size_t>(pid));
}

void Runtime::deliver(ProcId dst, Message msg) {
  ProcessState* ps = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dst < 0 || static_cast<size_t>(dst) >= procs_.size()) return;
    ps = procs_[static_cast<size_t>(dst)].get();
  }
  {
    std::lock_guard<std::mutex> lock(ps->mu);
    if (ps->dead.load()) return;  // the network cannot deliver to a crashed process
    if (msg.ctrl && (msg.tag == tags::kHeartbeat || msg.tag == tags::kGossip)) {
      ps->det_pending.fetch_add(1, std::memory_order_relaxed);
    }
    ps->mailbox.push_back(std::move(msg));
  }
  ps->cv.notify_all();
}

void Runtime::notify_all_procs() {
  std::vector<ProcessState*> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.reserve(procs_.size());
    for (auto& ps : procs_) all.push_back(ps.get());
  }
  for (auto* ps : all) ps->cv.notify_all();
}

Runtime::Stats Runtime::stats() const {
  Stats s;
  s.messages = msg_count_.load();
  s.bytes = msg_bytes_.load();
  s.cross_host = msg_cross_host_.load();
  return s;
}

void Runtime::record_message(std::size_t bytes, bool cross_host) {
  msg_count_.fetch_add(1, std::memory_order_relaxed);
  msg_bytes_.fetch_add(static_cast<long long>(bytes), std::memory_order_relaxed);
  if (cross_host) msg_cross_host_.fetch_add(1, std::memory_order_relaxed);
}

void Runtime::put(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(results_mu_);
  results_[key] = value;
}

void Runtime::add(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(results_mu_);
  results_[key] += value;
}

double Runtime::get(const std::string& key, double fallback) const {
  std::lock_guard<std::mutex> lock(results_mu_);
  const auto it = results_.find(key);
  return it == results_.end() ? fallback : it->second;
}

std::map<std::string, double> Runtime::results() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return results_;
}

void Runtime::clear_results() {
  std::lock_guard<std::mutex> lock(results_mu_);
  results_.clear();
}

void Runtime::dump_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ps : procs_) {
    std::lock_guard<std::mutex> plock(ps->mu);
    FTR_ERROR("  pid=%d rank=%d host=%d dead=%d finished=%d mailbox=%zu vclock=%.6f",
              ps->pid, ps->world_rank, ps->host, ps->dead.load() ? 1 : 0,
              ps->finished.load() ? 1 : 0, ps->mailbox.size(), ps->vclock);
  }
}

}  // namespace ftmpi
