#pragma once
// Decentralized failure detection: heartbeat observation ring + gossip.
//
// Without a detector, ftmpi only observes a death when an operation happens
// to touch the dead peer — an idle rank never learns anything, and detection
// latency is unbounded.  This subsystem gives every rank always-on failure
// knowledge at O(1) steady-state cost per rank:
//
//   alive ──(silence > suspect_after)──> suspected
//   suspected ──(silence > confirm_after, probe confirms)──> confirmed
//   confirmed ──(gossip fan-out, O(log N) rounds)──> propagated
//
// Ring: the started, unfinished, not-known-failed pids in pid order.  Each
// rank heartbeats its ring successor once per period and observes its ring
// predecessor.  A suspect is never declared dead on silence alone: the
// observer pays for a direct probe round-trip first, so a slow-but-alive
// rank costs a false alarm, never a false positive.
//
// Gossip: a confirmed failure is forwarded to the members at ring distance
// 1, 2, 4, ... (doubling ring), and every receiver of *fresh* information
// forwards the same way, reaching all survivors in O(log N) hops without
// ever touching the dead peer.  Every detector message carries the sender's
// DetectorEpoch; receivers validate it with epoch_ok() and discard stale
// notifications instead of acting on them (lint rule FTL007).
//
// All timing runs on the runtime's virtual clocks, so detection behaviour
// is deterministic.  Progress is piggybacked on the runtime entry points
// (detail::charge and the blocking wait loop): there is no background
// thread, matching the thread-per-rank simulator design.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "ftmpi/types.hpp"

namespace ftmpi {

struct Group;
struct ProcessState;
class Runtime;

namespace detector {

/// Tuning knobs (Runtime::Options::detector; env overrides FTR_DETECTOR,
/// FTR_HB_PERIOD, FTR_HB_SUSPECT, FTR_HB_TIMEOUT).  All times are virtual
/// seconds.
struct Options {
  /// FTR_DETECTOR=ring (default) or off.  Off short-circuits every hook, so
  /// the runtime behaves bit-for-bit like the pre-detector code.
  bool enabled = true;
  /// Heartbeat period.  Deliberately long relative to microsecond-scale
  /// unit-test workloads: a run whose virtual clocks never cross a period
  /// boundary sends no heartbeats and is untouched by the detector.
  double period = 0.25;
  /// Silence after which the observed predecessor becomes *suspected*.
  double suspect_after = 0.75;
  /// Silence after which a suspect is probed and, if truly dead, confirmed.
  double confirm_after = 1.25;
};

/// How a process came to know about a failure.
enum class Source : int {
  kRing = 0,       ///< own ring observation (timeout + probe)
  kGossip = 1,     ///< propagated knowledge from a peer
  kTransport = 2,  ///< a send/wait tripped over the dead peer
};

/// One learned failure: which pid, when (observer's virtual clock), how.
struct Record {
  ProcId dead = kNullProc;
  double when = 0.0;
  Source how = Source::kRing;
};

/// Heartbeat wire format (tags::kHeartbeat).
struct HeartbeatWire {
  std::int32_t src = kNullProc;
  std::int32_t pad = 0;
  DetectorEpoch epoch = 0;  ///< sender's failure-knowledge version
  std::uint64_t seq = 0;
};

/// Gossip wire format (tags::kGossip): one confirmed failure being
/// propagated.
struct GossipWire {
  std::int32_t dead = kNullProc;
  std::int32_t origin = kNullProc;  ///< rank that confirmed the failure
  DetectorEpoch epoch = 0;          ///< sender's epoch *after* learning; >= 1
  std::uint32_t hops = 0;
  std::uint32_t pad = 0;
};

/// Per-process detector state, embedded in ProcessState.  Only the owning
/// rank thread reads or writes it (the cross-thread signal is the separate
/// ProcessState::det_pending atomic).
struct State {
  bool ring_joined = false;
  double hb_next = 0.0;           ///< virtual deadline of the next heartbeat
  std::uint64_t hb_seq = 0;
  DetectorEpoch epoch = 0;        ///< bumped on every newly learned failure
  std::map<ProcId, double> last_heard;  ///< sender pid -> latest arrival time
  std::set<ProcId> suspected;
  std::set<ProcId> known_failed;
  std::vector<Record> records;    ///< learn log, in learn order
  // Counters for tests and the bench harness.
  long heartbeats_sent = 0;
  long gossip_sent = 0;
  long gossip_received = 0;
  long stale_discarded = 0;
  long false_alarms = 0;          ///< suspects that answered the probe
};

/// True when ps's runtime runs the detector (FTR_DETECTOR=ring).
[[nodiscard]] bool enabled(const ProcessState& ps);

/// Progress hook called from detail::charge(): cheap early-out unless a
/// heartbeat period boundary was crossed or detector messages are pending.
void maybe_tick(ProcessState& ps);

/// Absorb any queued detector messages (heartbeats update last_heard,
/// fresh gossip is learned and forwarded).  Called with ps.mu NOT held.
void drain(ProcessState& ps);

/// Freshness validation of incoming detector messages — the FTL007
/// invariant.  A stale message (heartbeat from a pid already known failed;
/// gossip about an already-known failure or with a zero epoch) must be
/// discarded by the caller, never acted on or forwarded.
[[nodiscard]] bool epoch_ok(const State& st, const HeartbeatWire& w);
[[nodiscard]] bool epoch_ok(const State& st, const GossipWire& w);

/// Fold a transport-level failure observation (a send bounced off a dead
/// peer) into detector knowledge; starts gossip if the failure is news.
void note_transport_failure(ProcessState& ps, ProcId dead);

/// Terminal handling of a blocking wait whose watched peers are all gone:
/// charges exactly the legacy failure-detection latency (unconditionally —
/// whether the detector had already announced the death depends on real
/// delivery races, so a conditional charge would break virtual-time
/// determinism), folds the deaths into detector knowledge so they gossip,
/// and returns kErrProcFailed.
[[nodiscard]] int observe_hopeless_wait(ProcessState& ps,
                                        const std::vector<ProcessState*>& watch);

/// True when ps already learned that pid failed.
[[nodiscard]] bool knows(const ProcessState& ps, ProcId pid);
/// True when ps already learned of a failure of any member of g.
[[nodiscard]] bool knows_any_in(const ProcessState& ps, const Group& g);

}  // namespace detector

// --- public API (callable from rank threads; see api.hpp) -------------------

/// True when the calling rank's runtime runs the failure detector.
[[nodiscard]] bool detector_enabled();
/// The calling rank's failure-knowledge version (0 = no known failures).
[[nodiscard]] DetectorEpoch detector_epoch();
/// Pids the calling rank has learned are dead, in pid order.
[[nodiscard]] std::vector<ProcId> detector_known_failed();
/// The calling rank's learn log (pid, virtual learn time, source).
[[nodiscard]] std::vector<detector::Record> detector_records();
/// Fold an application-level failure confirmation (e.g. a shrink's
/// failed-procs list) into the calling rank's detector knowledge, bumping
/// its epoch and gossiping if the failure is news.  No-op when the detector
/// is off.  Overlapped recovery uses this so doorbell wires always carry a
/// post-failure epoch even when the detector has not yet timed out the dead
/// peer on its own.
void detector_note_failed(ProcId dead);
/// True when the calling rank knows of a dead member of c's group without
/// touching the dead peer — the trigger for proactive recovery.
class Comm;
[[nodiscard]] bool detector_knows_failure_in(const Comm& c);

}  // namespace ftmpi
