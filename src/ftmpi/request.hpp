#pragma once
// Nonblocking operation handles.
//
// The runtime's sends are eager (they buffer at the destination and never
// block), so an isend completes immediately.  An irecv defers the matching
// to wait()/test(); because a receive's virtual completion time is
// max(own clock, message arrival) + overhead regardless of when the receive
// was posted, deferred matching yields exactly the same virtual-time
// behaviour as a progressing receive would — the handle exists to give
// applications the familiar post-early/complete-late structure.

#include <cstddef>

#include "ftmpi/comm.hpp"
#include "ftmpi/types.hpp"

namespace ftmpi {

class Request {
 public:
  Request() = default;

  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_recv() const { return kind_ == Kind::Recv; }

 private:
  enum class Kind { Null, SendComplete, Recv };

  friend int isend_bytes(const void*, std::size_t, int, int, const Comm&, Request*);
  friend int irecv_bytes(void*, std::size_t, int, int, const Comm&, Request*);
  friend int wait(Request*, Status*);
  friend int test(Request*, int*, Status*);

  Kind kind_ = Kind::Null;
  int send_result = kSuccess;
  // Deferred receive parameters.
  Comm comm;
  void* buf = nullptr;
  std::size_t max_bytes = 0;
  int source = kAnySource;
  int tag = kAnyTag;
};

}  // namespace ftmpi
