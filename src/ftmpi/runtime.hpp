#pragma once
// The simulated MPI runtime: a "cluster in a process".
//
// Each simulated MPI process is a std::thread with its own mailbox and
// virtual clock.  The Runtime owns the process table, the hosts-and-slots
// placement model (the paper's hostfile with SLOTS=12 per node), the
// communicator-context registry, the failure epoch used to wake blocked
// operations when a process is killed, and a results blackboard through
// which applications report measurements to the bench harnesses.
//
// Failure semantics are fail-stop, as in the paper: Runtime::kill() marks a
// process dead and frees its host slot; the victim's thread unwinds (via
// ProcessKilled) at its next runtime call, and every operation by a peer
// that depends on the victim eventually returns kErrProcFailed.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ftmpi/comm.hpp"
#include "ftmpi/cost_model.hpp"
#include "ftmpi/detector.hpp"
#include "ftmpi/trace.hpp"
#include "ftmpi/types.hpp"

namespace ftmpi {

/// An in-flight message.  Control-plane messages (internal protocols) are
/// matched by exact (context, tag, source pid); user point-to-point
/// messages by (context, tag-or-any, source-rank-or-any, side).
struct Message {
  std::uint64_t ctx = 0;
  int tag = 0;
  ProcId src_pid = kNullProc;
  int src_rank = -1;
  int src_side = 0;
  bool ctrl = false;
  std::vector<std::byte> payload;
  double arrive = 0.0;  ///< virtual arrival time at the destination
};

class Runtime;

/// Per-process runtime state.  The owning thread is the only writer of
/// vclock; the mailbox and flags are guarded by mu.
struct ProcessState {
  Runtime* rt = nullptr;
  ProcId pid = kNullProc;
  int host = 0;
  int slot = 0;
  std::string app;
  std::vector<std::string> argv;
  std::thread thread;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> mailbox;
  std::atomic<bool> dead{false};
  std::atomic<bool> finished{false};
  /// Set by start_process(); created-but-unstarted processes are invisible
  /// to the detector ring.
  std::atomic<bool> started{false};

  double vclock = 0.0;

  /// Number of detector-channel messages (heartbeats/gossip) queued in the
  /// mailbox; bumped by deliver() under mu, reset by detector::drain().
  /// Lets the owner thread skip mailbox locking when nothing is pending.
  std::atomic<int> det_pending{0};
  /// Failure-detector state; touched only by the owning rank thread.
  detector::State det;

  std::uint64_t world_ctx = 0;   ///< context id of this process's COMM_WORLD
  std::uint64_t parent_ctx = 0;  ///< intercommunicator to the spawner (0 = none)
  int world_rank = -1;

  // Cached handles so that error handlers / acked state set on the world
  // or parent communicator persist across world()/get_parent() calls.
  std::optional<Comm> world_handle;
  std::optional<Comm> parent_handle;
};

class Runtime {
 public:
  struct Options {
    int slots_per_host = 12;       ///< the paper's SLOTS constant
    CostModel cost{};
    /// Real-time watchdog for Runtime::run(); a stuck protocol aborts with
    /// a state dump rather than hanging a test run forever.
    double real_time_limit_sec = 300.0;
    /// Maximum number of hosts in the simulated cluster (0 = unbounded, the
    /// historical behaviour).  With a bound, process placement can genuinely
    /// fail — comm_spawn_multiple returns kErrSpawn — which is what forces
    /// the shrink-mode recovery fallback.
    int max_hosts = 0;
    /// Failure-detector knobs (env overrides FTR_DETECTOR, FTR_HB_PERIOD,
    /// FTR_HB_SUSPECT, FTR_HB_TIMEOUT are applied at Runtime construction).
    detector::Options detector{};
    /// Log-depth tree topology for comm_agree and allreduce (FTR_AGREE=tree,
    /// the default).  FTR_AGREE=linear restores the coordinator-based
    /// protocols; combined with FTR_DETECTOR=off that is bit-for-bit the
    /// pre-detector runtime.
    bool tree_protocols = true;
  };

  /// Entry point of a simulated MPI application; runs on each rank thread.
  using EntryFn = std::function<void(const std::vector<std::string>& argv)>;

  Runtime() : Runtime(Options{}) {}
  explicit Runtime(Options opt);
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  ~Runtime();

  /// Register an application binary name -> entry function.  Spawn requests
  /// (MPI_Comm_spawn_multiple) look commands up here, mirroring re-executing
  /// the same executable on a real cluster.
  void register_app(const std::string& name, EntryFn entry);

  /// Launch `world_size` processes running `app` and block until every
  /// process (including ones spawned during the run) has terminated.
  /// Returns the number of processes that were killed.
  int run(const std::string& app, int world_size, std::vector<std::string> argv = {});

  /// Fail-stop kill.  Safe to call from any thread, including the victim.
  void kill(ProcId pid);

  /// Whole-node failure (the paper's future-work scenario): every live
  /// process on `host` is killed and the host is marked failed — its slots
  /// can never be reused.  Later placement requests that prefer the failed
  /// host are redirected to one consistent *spare* host, so all of the
  /// node's replacement processes come up co-located, preserving the
  /// original load-balancing characteristics.
  void fail_host(int host);
  [[nodiscard]] bool host_failed(int host) const;
  /// Pids currently placed on `host` (live or dead).
  [[nodiscard]] std::vector<ProcId> procs_on_host(int host) const;

  [[nodiscard]] bool is_dead(ProcId pid) const;
  [[nodiscard]] bool any_dead(const Group& g) const;
  [[nodiscard]] std::vector<ProcId> dead_members(const Group& g) const;
  /// Index of the lowest-ranked live member of g, or -1 if none.
  [[nodiscard]] int lowest_live_rank(const Group& g) const;

  [[nodiscard]] int host_of(ProcId pid) const;
  [[nodiscard]] int slots_per_host() const { return opt_.slots_per_host; }
  [[nodiscard]] const Options& options() const { return opt_; }
  [[nodiscard]] const CostModel& cost() const { return opt_.cost; }
  /// Pids of started processes that have not deregistered cleanly, in pid
  /// order — the RTE-visible membership the detector ring is built over.
  /// Killed processes stay listed (a crash never deregisters; the ring
  /// timeout is what detects it); normally finished processes drop out.
  [[nodiscard]] std::vector<ProcId> active_pids() const;
  [[nodiscard]] std::uint64_t failure_epoch() const { return failure_epoch_.load(); }
  /// Monotonic counter bumped whenever the active-process set shrinks (a
  /// kill *or* a normal exit).  Protocols that build a topology over a
  /// snapshot of the active set watch this atomic to learn that their
  /// snapshot went stale mid-protocol — unlike failure_epoch(), it also
  /// covers peers that finished without failing.
  [[nodiscard]] const std::atomic<std::uint64_t>& membership_epoch() const {
    return membership_epoch_;
  }
  [[nodiscard]] int total_processes() const;
  [[nodiscard]] int killed_count() const { return killed_.load(); }

  /// Aggregate traffic statistics (all processes, whole runtime lifetime).
  struct Stats {
    long long messages = 0;   ///< messages delivered to mailboxes
    long long bytes = 0;      ///< payload bytes carried
    long long cross_host = 0; ///< messages that crossed a host boundary
  };
  [[nodiscard]] Stats stats() const;
  void record_message(std::size_t bytes, bool cross_host);

  /// Event trace (off by default; FTR_TRACE=1 enables it at construction).
  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }

  // --- communicator contexts ----------------------------------------------
  std::shared_ptr<CommContext> create_context(Group local, Group remote = {},
                                              bool inter = false);
  [[nodiscard]] std::shared_ptr<CommContext> find_context(std::uint64_t id) const;

  // --- process management (used by the spawn protocol) ---------------------
  /// Create a not-yet-started process placed on `preferred_host` (or the
  /// first host with a free slot).  Returns its pid, or kNullProc when the
  /// cluster is bounded (Options::max_hosts) and no slot is available.
  ProcId create_process(const std::string& app, std::vector<std::string> argv,
                        int preferred_host, double start_clock);
  /// Start the thread of a process created by create_process() after its
  /// world/parent contexts have been filled in.
  void start_process(ProcId pid);
  /// Retire a created-but-never-started process (spawn rollback after a
  /// partial placement failure): frees its slot without counting it as a
  /// failure.
  void release_unstarted(ProcId pid);

  // --- chaos injection ------------------------------------------------------
  /// Hook invoked by chaos_point() at named protocol phase boundaries
  /// (shrink/spawn/merge/agree/split entry, checkpoint writes).  The hook
  /// may kill the calling process — chaos_point() re-checks liveness after
  /// the hook returns, so a self-kill unwinds at the phase boundary.
  /// Install before run(); not synchronized against running rank threads.
  using ChaosHook = std::function<void(const char* phase, ProcId pid)>;
  void set_chaos_hook(ChaosHook hook) { chaos_hook_ = std::move(hook); }
  void fire_chaos(const char* phase, ProcId pid) {
    if (chaos_hook_) chaos_hook_(phase, pid);
  }
  [[nodiscard]] bool has_chaos_hook() const { return static_cast<bool>(chaos_hook_); }

  [[nodiscard]] ProcessState& proc(ProcId pid);
  [[nodiscard]] const ProcessState& proc(ProcId pid) const;

  /// Enqueue a message; drops silently if the destination is dead
  /// (matching a network that cannot deliver to a crashed process).
  void deliver(ProcId dst, Message msg);
  /// Wake every blocked process so waiting predicates re-evaluate
  /// (used by kill and revoke).
  void notify_all_procs();

  // --- results blackboard ---------------------------------------------------
  // Applications (usually rank 0) publish measurements; bench harnesses read
  // them after run() returns.
  void put(const std::string& key, double value);
  void add(const std::string& key, double value);
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] std::map<std::string, double> results() const;
  void clear_results();

  // --- thread-local identity -----------------------------------------------
  /// The calling thread's simulated process (nullptr on non-rank threads).
  static ProcessState* current();

 private:
  void thread_main(ProcessState* ps);
  /// Find/extend a host with a free slot; returns {host, slot}.  mu_ held.
  std::pair<int, int> allocate_slot_locked(int preferred_host);
  void dump_state() const;

  Options opt_;
  mutable std::mutex mu_;  // guards procs_, hosts_, apps_, active_
  std::condition_variable done_cv_;
  std::vector<std::unique_ptr<ProcessState>> procs_;
  std::vector<std::vector<bool>> hosts_;  // hosts_[h][s] = slot occupied
  std::vector<bool> host_failed_;         // failed nodes: slots unusable
  std::map<int, int> host_substitute_;    // failed host -> its spare replacement
  std::map<std::string, EntryFn> apps_;
  int active_ = 0;

  std::atomic<std::uint64_t> failure_epoch_{0};
  std::atomic<std::uint64_t> membership_epoch_{0};
  std::atomic<int> killed_{0};
  std::atomic<long long> msg_count_{0};
  std::atomic<long long> msg_bytes_{0};
  std::atomic<long long> msg_cross_host_{0};

  mutable std::mutex ctx_mu_;
  std::map<std::uint64_t, std::shared_ptr<CommContext>> contexts_;
  std::uint64_t next_ctx_ = 1;

  mutable std::mutex results_mu_;
  std::map<std::string, double> results_;

  ChaosHook chaos_hook_;

  Trace trace_;
};

}  // namespace ftmpi
