#pragma once
// C-style MPI/ULFM compatibility layer.
//
// The paper's recovery protocol (Figs. 3-7) is written against the ULFM
// C API.  This header exposes the ftmpi runtime under the same names and
// calling conventions, so the reconstruction code in src/core/reconstruct.cpp
// reads like the paper's pseudocode.  Bring the names into scope with
// `using namespace ftmpi::compat;`.
//
// Differences from real MPI, all deliberate:
//   - MPI_Comm is a value handle (copyable struct), not an opaque int;
//   - datatypes are the enum below; only the types the solver needs exist;
//   - MPI_Comm_spawn_multiple takes per-command argv vectors instead of
//     char*** (memory-safe equivalent of the same information);
//   - MPI_Info carries only the "host" key, as that is all the paper uses.

#include <string>
#include <vector>

#include "ftmpi/api.hpp"
#include "common/annotations.hpp"

namespace ftmpi::compat {

using MPI_Comm = ::ftmpi::Comm;
using MPI_Group = ::ftmpi::Group;
using MPI_Status = ::ftmpi::Status;

inline const MPI_Comm MPI_COMM_NULL{};

// Error classes.
inline constexpr int MPI_SUCCESS = ::ftmpi::kSuccess;
inline constexpr int MPI_ERR_COMM = ::ftmpi::kErrComm;
inline constexpr int MPI_ERR_ARG = ::ftmpi::kErrArg;
inline constexpr int MPI_ERR_PROC_FAILED = ::ftmpi::kErrProcFailed;
inline constexpr int MPI_ERR_REVOKED = ::ftmpi::kErrRevoked;
inline constexpr int MPI_ERR_SPAWN = ::ftmpi::kErrSpawn;

// Wildcards and misc constants.
inline constexpr int MPI_ANY_SOURCE = ::ftmpi::kAnySource;
inline constexpr int MPI_ANY_TAG = ::ftmpi::kAnyTag;
inline constexpr int MPI_UNDEFINED = ::ftmpi::kUndefinedColor;
inline int* const MPI_ERRCODES_IGNORE = nullptr;
inline MPI_Status* const MPI_STATUS_IGNORE = nullptr;

// Group comparison results.
inline constexpr int MPI_IDENT = 0;
inline constexpr int MPI_SIMILAR = 1;
inline constexpr int MPI_UNEQUAL = 2;

enum MPI_Datatype { MPI_INT, MPI_DOUBLE, MPI_BYTE, MPI_LONG, MPI_UINT64_T };

inline std::size_t mpi_type_size(MPI_Datatype t) {
  switch (t) {
    case MPI_INT: return sizeof(int);
    case MPI_DOUBLE: return sizeof(double);
    case MPI_BYTE: return 1;
    case MPI_LONG: return sizeof(long);
    case MPI_UINT64_T: return sizeof(std::uint64_t);
  }
  return 1;
}

enum MPI_Op { MPI_SUM, MPI_MAX, MPI_MIN, MPI_LAND, MPI_LOR };

inline ::ftmpi::ReduceOp to_reduce_op(MPI_Op op) {
  switch (op) {
    case MPI_SUM: return ::ftmpi::ReduceOp::Sum;
    case MPI_MAX: return ::ftmpi::ReduceOp::Max;
    case MPI_MIN: return ::ftmpi::ReduceOp::Min;
    case MPI_LAND: return ::ftmpi::ReduceOp::LogicalAnd;
    case MPI_LOR: return ::ftmpi::ReduceOp::LogicalOr;
  }
  return ::ftmpi::ReduceOp::Sum;
}

// --- error handlers ----------------------------------------------------------

/// The paper's handler signature: void handler(MPI_Comm* comm, int* error, ...).
using MPI_Comm_errhandler_function = void (*)(MPI_Comm* comm, int* error_code);
struct MPI_Errhandler {
  MPI_Comm_errhandler_function fn = nullptr;
};

inline int MPI_Comm_create_errhandler(MPI_Comm_errhandler_function fn, MPI_Errhandler* eh) {
  eh->fn = fn;
  return MPI_SUCCESS;
}

FTR_NODISCARD inline int MPI_Comm_set_errhandler(const MPI_Comm& comm, MPI_Errhandler eh) {
  if (eh.fn == nullptr) return ::ftmpi::comm_set_errhandler(comm, {});
  auto fn = eh.fn;
  return ::ftmpi::comm_set_errhandler(comm, [fn](MPI_Comm& c, int& code) { fn(&c, &code); });
}

// --- environment ----------------------------------------------------------------

inline int MPI_Comm_rank(const MPI_Comm& comm, int* rank) {
  *rank = comm.rank();
  return MPI_SUCCESS;
}

inline int MPI_Comm_size(const MPI_Comm& comm, int* size) {
  *size = comm.size();
  return MPI_SUCCESS;
}

inline int MPI_Comm_get_parent(MPI_Comm* parent) {
  *parent = ::ftmpi::get_parent();
  return MPI_SUCCESS;
}

inline double MPI_Wtime() { return ::ftmpi::wtime(); }

// --- point-to-point ---------------------------------------------------------------

FTR_NODISCARD inline int MPI_Send(const void* buf, int count, MPI_Datatype dt, int dest, int tag,
                    const MPI_Comm& comm) {
  return ::ftmpi::send_bytes(buf, mpi_type_size(dt) * static_cast<std::size_t>(count), dest,
                             tag, comm);
}

FTR_NODISCARD inline int MPI_Recv(void* buf, int count, MPI_Datatype dt, int source, int tag,
                    const MPI_Comm& comm, MPI_Status* status = MPI_STATUS_IGNORE) {
  return ::ftmpi::recv_bytes(buf, mpi_type_size(dt) * static_cast<std::size_t>(count), source,
                             tag, comm, status);
}

// --- nonblocking point-to-point and probe ------------------------------------------

using MPI_Request = ::ftmpi::Request;

FTR_NODISCARD inline int MPI_Isend(const void* buf, int count, MPI_Datatype dt, int dest, int tag,
                     const MPI_Comm& comm, MPI_Request* req) {
  return ::ftmpi::isend_bytes(buf, mpi_type_size(dt) * static_cast<std::size_t>(count),
                              dest, tag, comm, req);
}

FTR_NODISCARD inline int MPI_Irecv(void* buf, int count, MPI_Datatype dt, int source, int tag,
                     const MPI_Comm& comm, MPI_Request* req) {
  return ::ftmpi::irecv_bytes(buf, mpi_type_size(dt) * static_cast<std::size_t>(count),
                              source, tag, comm, req);
}

FTR_NODISCARD inline int MPI_Wait(MPI_Request* req, MPI_Status* status = MPI_STATUS_IGNORE) {
  return ::ftmpi::wait(req, status);
}

FTR_NODISCARD inline int MPI_Waitall(int count, MPI_Request* reqs, MPI_Status* statuses = nullptr) {
  return ::ftmpi::waitall(reqs, count, statuses);
}

FTR_NODISCARD inline int MPI_Test(MPI_Request* req, int* flag, MPI_Status* status = MPI_STATUS_IGNORE) {
  return ::ftmpi::test(req, flag, status);
}

FTR_NODISCARD inline int MPI_Probe(int source, int tag, const MPI_Comm& comm, MPI_Status* status) {
  return ::ftmpi::probe(source, tag, comm, status);
}

FTR_NODISCARD inline int MPI_Iprobe(int source, int tag, const MPI_Comm& comm, int* flag,
                      MPI_Status* status = MPI_STATUS_IGNORE) {
  return ::ftmpi::iprobe(source, tag, comm, flag, status);
}

FTR_NODISCARD inline int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                        int dest, int sendtag, void* recvbuf, int recvcount,
                        MPI_Datatype recvtype, int source, int recvtag,
                        const MPI_Comm& comm, MPI_Status* status = MPI_STATUS_IGNORE) {
  return ::ftmpi::sendrecv_bytes(
      sendbuf, mpi_type_size(sendtype) * static_cast<std::size_t>(sendcount), dest, sendtag,
      recvbuf, mpi_type_size(recvtype) * static_cast<std::size_t>(recvcount), source,
      recvtag, comm, status);
}

// --- collectives ---------------------------------------------------------------------

FTR_NODISCARD inline int MPI_Barrier(const MPI_Comm& comm) { return ::ftmpi::barrier(comm); }

FTR_NODISCARD inline int MPI_Bcast(void* buf, int count, MPI_Datatype dt, int root, const MPI_Comm& comm) {
  return ::ftmpi::bcast_bytes(buf, mpi_type_size(dt) * static_cast<std::size_t>(count), root,
                              comm);
}

FTR_NODISCARD inline int MPI_Allreduce(const double* sendbuf, double* recvbuf, int count, MPI_Op op,
                         const MPI_Comm& comm) {
  return ::ftmpi::allreduce(sendbuf, recvbuf, count, to_reduce_op(op), comm);
}

FTR_NODISCARD inline int MPI_Allreduce(const int* sendbuf, int* recvbuf, int count, MPI_Op op,
                         const MPI_Comm& comm) {
  return ::ftmpi::allreduce(sendbuf, recvbuf, count, to_reduce_op(op), comm);
}

// --- communicator / group management ---------------------------------------------------

FTR_NODISCARD inline int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                      void* recvbuf, int /*recvcount*/, MPI_Datatype /*recvtype*/, int root,
                      const MPI_Comm& comm) {
  const std::size_t bytes = mpi_type_size(sendtype) * static_cast<std::size_t>(sendcount);
  std::vector<std::vector<std::byte>> parts;
  const int rc = ::ftmpi::gather_bytes(sendbuf, bytes,
                                       comm.rank() == root ? &parts : nullptr, root, comm);
  if (rc == MPI_SUCCESS && comm.rank() == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    for (int r = 0; r < comm.size(); ++r) {
      std::memcpy(out + static_cast<std::size_t>(r) * bytes,
                  parts[static_cast<std::size_t>(r)].data(),
                  std::min(bytes, parts[static_cast<std::size_t>(r)].size()));
    }
  }
  return rc;
}

FTR_NODISCARD inline int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                       void* recvbuf, int /*recvcount*/, MPI_Datatype /*recvtype*/,
                       int root, const MPI_Comm& comm) {
  return ::ftmpi::scatter_bytes(
      sendbuf, mpi_type_size(sendtype) * static_cast<std::size_t>(sendcount), recvbuf, root,
      comm);
}

FTR_NODISCARD inline int MPI_Comm_free(MPI_Comm* comm) { return ::ftmpi::comm_free(comm); }

inline int MPI_Error_string(int errorcode, char* string, int* resultlen) {
  const char* msg = ::ftmpi::error_string(errorcode);
  const std::size_t n = std::char_traits<char>::length(msg);
  std::memcpy(string, msg, n + 1);
  if (resultlen != nullptr) *resultlen = static_cast<int>(n);
  return MPI_SUCCESS;
}

/// MPI_Abort: fail-stop the calling process (the whole simulated job is not
/// torn down — peers observe the failure, which is what ULFM applications
/// test against).
[[noreturn]] inline void MPI_Abort(const MPI_Comm& /*comm*/, int /*errorcode*/) {
  ::ftmpi::abort_self();
}

/// Predefined error handlers.  MPI_ERRORS_RETURN is the runtime default;
/// MPI_ERRORS_ARE_FATAL aborts the (simulated) process on any error.
inline const MPI_Errhandler MPI_ERRORS_RETURN{};
inline const MPI_Errhandler MPI_ERRORS_ARE_FATAL{
    [](MPI_Comm*, int* error_code) {
      if (*error_code != MPI_SUCCESS) ::ftmpi::abort_self();
    }};

FTR_NODISCARD inline int MPI_Comm_split(const MPI_Comm& comm, int color, int key, MPI_Comm* out) {
  return ::ftmpi::comm_split(comm, color, key, out);
}

FTR_NODISCARD inline int MPI_Comm_dup(const MPI_Comm& comm, MPI_Comm* out) {
  return ::ftmpi::comm_dup(comm, out);
}

inline int MPI_Comm_group(const MPI_Comm& comm, MPI_Group* group) {
  *group = ::ftmpi::comm_group(comm);
  return MPI_SUCCESS;
}

inline int MPI_Group_size(const MPI_Group& g, int* size) {
  *size = g.size();
  return MPI_SUCCESS;
}

inline int MPI_Group_compare(const MPI_Group& a, const MPI_Group& b, int* result) {
  switch (::ftmpi::group_compare(a, b)) {
    case ::ftmpi::GroupOrder::Ident: *result = MPI_IDENT; break;
    case ::ftmpi::GroupOrder::Similar: *result = MPI_SIMILAR; break;
    case ::ftmpi::GroupOrder::Unequal: *result = MPI_UNEQUAL; break;
  }
  return MPI_SUCCESS;
}

inline int MPI_Group_difference(const MPI_Group& a, const MPI_Group& b, MPI_Group* out) {
  *out = ::ftmpi::group_difference(a, b);
  return MPI_SUCCESS;
}

inline int MPI_Group_translate_ranks(const MPI_Group& a, int n, const int* ranks_a,
                                     const MPI_Group& b, int* ranks_b) {
  const std::vector<int> in(ranks_a, ranks_a + n);
  const std::vector<int> out = ::ftmpi::group_translate_ranks(a, in, b);
  for (int i = 0; i < n; ++i) ranks_b[i] = out[static_cast<size_t>(i)];
  return MPI_SUCCESS;
}

// --- dynamic processes -------------------------------------------------------------------

/// MPI_Info restricted to the "host" key (all the paper uses).
struct MPI_Info {
  int host = -1;
};

inline int MPI_Info_create(MPI_Info* info) {
  *info = MPI_Info{};
  return MPI_SUCCESS;
}

inline int MPI_Info_set_host(MPI_Info* info, int host_index) {
  info->host = host_index;
  return MPI_SUCCESS;
}

/// MPI_Info_free: resets the handle.  The simulated Info carries no real
/// resource, but protocol code frees every Info it creates (as real MPI
/// requires) so the compat surface keeps the call.
inline int MPI_Info_free(MPI_Info* info) {
  *info = MPI_Info{.host = -1};
  return MPI_SUCCESS;
}

/// Memory-safe analog of MPI_Comm_spawn_multiple: count commands, each with
/// its argv, process count and host info.
FTR_NODISCARD inline int MPI_Comm_spawn_multiple(int count, const std::vector<std::string>& commands,
                                   const std::vector<std::vector<std::string>>& argvs,
                                   const std::vector<int>& maxprocs,
                                   const std::vector<MPI_Info>& infos, int root,
                                   const MPI_Comm& comm, MPI_Comm* intercomm,
                                   int* errcodes = MPI_ERRCODES_IGNORE) {
  std::vector<::ftmpi::SpawnUnit> units(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto& u = units[static_cast<size_t>(i)];
    u.command = commands[static_cast<size_t>(i)];
    u.argv = i < static_cast<int>(argvs.size()) ? argvs[static_cast<size_t>(i)]
                                                : std::vector<std::string>{};
    u.maxprocs = maxprocs[static_cast<size_t>(i)];
    u.host = i < static_cast<int>(infos.size()) ? infos[static_cast<size_t>(i)].host : -1;
  }
  std::vector<int> codes;
  const int rc = ::ftmpi::comm_spawn_multiple(units, root, comm, intercomm,
                                              errcodes ? &codes : nullptr);
  if (errcodes != nullptr) {
    for (int i = 0; i < count; ++i) errcodes[i] = codes[static_cast<size_t>(i)];
  }
  return rc;
}

FTR_NODISCARD inline int MPI_Intercomm_merge(const MPI_Comm& intercomm, int high, MPI_Comm* out) {
  return ::ftmpi::intercomm_merge(intercomm, high != 0, out);
}

// --- ULFM extensions ------------------------------------------------------------------------

FTR_NODISCARD inline int OMPI_Comm_revoke(MPI_Comm* comm) { return ::ftmpi::comm_revoke(*comm); }

FTR_NODISCARD inline int OMPI_Comm_shrink(const MPI_Comm& comm, MPI_Comm* out) {
  return ::ftmpi::comm_shrink(comm, out);
}

FTR_NODISCARD inline int OMPI_Comm_agree(const MPI_Comm& comm, int* flag) {
  return ::ftmpi::comm_agree(comm, flag);
}

FTR_NODISCARD inline int OMPI_Comm_failure_ack(const MPI_Comm& comm) {
  return ::ftmpi::comm_failure_ack(comm);
}

FTR_NODISCARD inline int OMPI_Comm_failure_get_acked(const MPI_Comm& comm, MPI_Group* failed) {
  return ::ftmpi::comm_failure_get_acked(comm, failed);
}

}  // namespace ftmpi::compat
