#include "ftmpi/trace.hpp"

#include <cstdio>

namespace ftmpi {

const char* trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::Kill: return "kill";
    case TraceEvent::HostFail: return "host_fail";
    case TraceEvent::Spawn: return "spawn";
    case TraceEvent::Revoke: return "revoke";
    case TraceEvent::Shrink: return "shrink";
    case TraceEvent::Agree: return "agree";
    case TraceEvent::Merge: return "merge";
    case TraceEvent::Split: return "split";
  }
  return "?";
}

std::string Trace::format() const {
  std::string out;
  for (const auto& r : events()) {
    char line[128];
    std::snprintf(line, sizeof(line), "%12.6f pid=%-4d %-9s value=%lld\n", r.vtime, r.pid,
                  trace_event_name(r.event), r.value);
    out += line;
  }
  return out;
}

}  // namespace ftmpi
