#pragma once
// Lightweight event tracing for the simulated runtime.
//
// When enabled (programmatically or via FTR_TRACE=1), every notable runtime
// event — kills, spawns, revokes, shrink/agree completions, repairs — is
// appended to a bounded in-memory ring with its virtual timestamp.  Tests
// assert on event sequences; humans dump the ring to understand a run:
//
//   rt.trace().enable();
//   ... run ...
//   for (const auto& e : rt.trace().events()) ...
//
// Tracing costs one mutexed append per event when on, nothing when off.

#include <mutex>
#include <string>
#include <vector>

#include "ftmpi/types.hpp"

namespace ftmpi {

enum class TraceEvent : int {
  Kill,        ///< a process was killed (fail-stop)
  HostFail,    ///< a whole node failed
  Spawn,       ///< processes spawned (count in `value`)
  Revoke,      ///< a communicator was revoked (ctx id in `value`)
  Shrink,      ///< a shrink completed (new size in `value`)
  Agree,       ///< an agreement completed (flag in `value`)
  Merge,       ///< an intercommunicator merge completed (merged size)
  Split,       ///< a comm split completed (new ctx id)
};

const char* trace_event_name(TraceEvent e);

struct TraceRecord {
  double vtime = 0.0;   ///< virtual time of the acting process (0 if none)
  ProcId pid = kNullProc;
  TraceEvent event{};
  long long value = 0;
};

class Trace {
 public:
  void enable(std::size_t capacity = 65536) {
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = true;
    capacity_ = capacity;
  }
  void disable() {
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = false;
  }
  [[nodiscard]] bool enabled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return enabled_;
  }

  void record(double vtime, ProcId pid, TraceEvent event, long long value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) return;
    if (events_.size() >= capacity_) return;  // bounded: drop the tail
    events_.push_back(TraceRecord{vtime, pid, event, value});
  }

  [[nodiscard]] std::vector<TraceRecord> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  [[nodiscard]] std::vector<TraceRecord> events_of(TraceEvent e) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceRecord> out;
    for (const auto& r : events_) {
      if (r.event == e) out.push_back(r);
    }
    return out;
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

  /// One line per event, for human consumption.
  [[nodiscard]] std::string format() const;

 private:
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::size_t capacity_ = 65536;
  std::vector<TraceRecord> events_;
};

}  // namespace ftmpi
