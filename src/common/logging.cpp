#include "common/logging.hpp"

#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace ftr {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  if (const char* env = std::getenv("FTR_LOG")) {
    level_ = parse_log_level(env);
  }
}

void Logger::log(LogLevel lvl, std::string_view msg) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s] %.*s\n", kNames[static_cast<int>(lvl)],
               static_cast<int>(msg.size()), msg.data());
}

LogLevel parse_log_level(std::string_view s) noexcept {
  auto eq = [&s](const char* w) {
    if (s.size() != std::strlen(w)) return false;
    for (size_t i = 0; i < s.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(s[i])) != w[i]) return false;
    }
    return true;
  };
  if (eq("trace")) return LogLevel::Trace;
  if (eq("debug")) return LogLevel::Debug;
  if (eq("info")) return LogLevel::Info;
  if (eq("warn")) return LogLevel::Warn;
  if (eq("error")) return LogLevel::Error;
  if (eq("off")) return LogLevel::Off;
  return LogLevel::Warn;
}

namespace detail {

std::string format_log(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace detail
}  // namespace ftr
