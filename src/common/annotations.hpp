#pragma once
// Repo-wide attribute macros.  These are the anchors the static checker
// (tools/ftlint) keys on, so the invariants they mark are machine-checked:
//
//   FTR_NODISCARD  error-returning API.  Every call site must observe the
//                  result (assign, compare, return, or pass it on) — ftlint
//                  rule FTL001.  Expands to [[nodiscard]] so the compiler
//                  flags plain discards too; ftlint additionally flags
//                  `(void)` casts that dodge the compiler.
//
//   FTR_HOT        allocation-free hot-path kernel.  The function and
//                  everything it (transitively) calls must not allocate —
//                  no new/malloc, no container growth — ftlint rule FTL003.
//                  Expands to the compiler's hot-placement attribute where
//                  available.

#if defined(__has_cpp_attribute)
#if __has_cpp_attribute(nodiscard)
#define FTR_NODISCARD [[nodiscard]]
#endif
#endif
#ifndef FTR_NODISCARD
#define FTR_NODISCARD
#endif

#if defined(__GNUC__) || defined(__clang__)
#define FTR_HOT [[gnu::hot]]
#else
#define FTR_HOT
#endif
