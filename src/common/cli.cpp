#include "common/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace ftr {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      options_[arg] = "";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) != 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& name, long fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" || it->second == "yes") {
    return true;
  }
  return false;
}

std::vector<long> Cli::get_int_list(const std::string& name,
                                    const std::vector<long>& fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  std::vector<long> out;
  const std::string& s = it->second;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(std::strtol(s.substr(pos, next - pos).c_str(), nullptr, 10));
    pos = next + 1;
  }
  return out;
}

}  // namespace ftr
