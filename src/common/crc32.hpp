#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used by the
// checkpoint store to detect torn or corrupted on-disk snapshots.

#include <array>
#include <cstddef>
#include <cstdint>

namespace ftr {

namespace detail {
inline constexpr std::array<std::uint32_t, 256> crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}
}  // namespace detail

/// Incremental CRC-32: pass the previous result as `seed` to chain buffers.
inline std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0) {
  static constexpr auto table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ftr
