#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used by the
// checkpoint store and the buddy replica store to detect torn or corrupted
// snapshots.
//
// Implementation: slicing-by-8 — eight derived 256-entry tables let the loop
// consume 8 bytes per iteration instead of 1, which matters because every
// checkpoint write and buddy replication CRCs the full grid payload.  The
// polynomial (and therefore every produced value) is unchanged from the old
// bytewise implementation, so stored checkpoint and buddy CRCs remain
// compatible.  Check value: crc32("123456789") == 0xCBF43926 (RFC 3720 /
// zlib's CRC-32 check value).

#include <array>
#include "common/annotations.hpp"
#include <cstddef>
#include <cstdint>

namespace ftr {

namespace detail {

inline constexpr std::array<std::array<std::uint32_t, 256>, 8> crc32_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[0][i] = c;
  }
  // t[k][i] is the CRC of byte i followed by k zero bytes; XORing the eight
  // tables over eight consecutive input bytes advances the register by all
  // eight at once.
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

/// Endian-safe little-endian 32-bit load (compiles to a plain load on LE).
FTR_HOT inline std::uint32_t crc32_load_le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace detail

/// Incremental CRC-32: pass the previous result as `seed` to chain buffers.
FTR_HOT inline std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0) {
  static constexpr auto t = detail::crc32_tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  while (n >= 8) {
    const std::uint32_t lo = c ^ detail::crc32_load_le(p);
    const std::uint32_t hi = detail::crc32_load_le(p + 4);
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++p) c = t[0][(c ^ *p) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ftr
