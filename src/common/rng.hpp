#pragma once
// Deterministic, splittable random number generation.
//
// Experiments in the paper average over repeated runs with randomly chosen
// failed processes.  To keep every bench and test reproducible we use an
// explicit-seed xoshiro256** generator rather than std::random_device, and
// derive per-repetition streams with split().

#include <cstdint>
#include <limits>

namespace ftr {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation,
/// re-expressed in C++).  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to fill the state; avoids the all-zero state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derive an independent stream, e.g. one per repetition or per rank.
  [[nodiscard]] Xoshiro256 split(std::uint64_t stream) {
    Xoshiro256 child((*this)() ^ (stream * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull));
    return child;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ftr
