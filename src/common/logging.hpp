#pragma once
// Minimal thread-safe leveled logger.
//
// The simulated MPI runtime runs hundreds of rank threads; interleaved
// unsynchronized writes to stderr are unreadable, so all diagnostics funnel
// through here.  Logging is off by default (level Warn) — benches and tests
// raise it via FTR_LOG=debug or Logger::set_level().

#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace ftr {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  /// Global logger used by the whole library.
  static Logger& instance();

  void set_level(LogLevel lvl) noexcept { level_ = lvl; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel lvl) const noexcept {
    return static_cast<int>(lvl) >= static_cast<int>(level_);
  }

  /// Write one line (a newline is appended).  Thread safe.
  void log(LogLevel lvl, std::string_view msg);

 private:
  Logger();
  std::mutex mu_;
  LogLevel level_ = LogLevel::Warn;
};

/// Parse "trace|debug|info|warn|error|off" (case-insensitive); defaults to Warn.
LogLevel parse_log_level(std::string_view s) noexcept;

namespace detail {
std::string format_log(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

}  // namespace ftr

// printf-style logging macros; the format work is skipped when disabled.
#define FTR_LOG_AT(lvl, ...)                                            \
  do {                                                                  \
    if (::ftr::Logger::instance().enabled(lvl)) {                       \
      ::ftr::Logger::instance().log(lvl, ::ftr::detail::format_log(__VA_ARGS__)); \
    }                                                                   \
  } while (0)

#define FTR_TRACE(...) FTR_LOG_AT(::ftr::LogLevel::Trace, __VA_ARGS__)
#define FTR_DEBUG(...) FTR_LOG_AT(::ftr::LogLevel::Debug, __VA_ARGS__)
#define FTR_INFO(...) FTR_LOG_AT(::ftr::LogLevel::Info, __VA_ARGS__)
#define FTR_WARN(...) FTR_LOG_AT(::ftr::LogLevel::Warn, __VA_ARGS__)
#define FTR_ERROR(...) FTR_LOG_AT(::ftr::LogLevel::Error, __VA_ARGS__)
