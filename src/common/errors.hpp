#pragma once
// Sink for deliberately-tolerated error codes.
//
// The fault-tolerance invariant FTL001 (see docs/ARCHITECTURE.md, "Enforced
// invariants") requires every error-returning ftmpi call to have its result
// observed.  Most call sites branch on the code; a few tolerate failure by
// design — a revoke that races another revoke, a best-effort release send to
// a peer that just died, cleanup in a destructor.  Those sites route the
// code through observe_error(), which (a) satisfies the invariant without a
// suppression comment, (b) names the protocol step in the debug log, and
// (c) keeps "this error is survivable here" an explicit, greppable decision
// rather than a silent discard.

#include "common/logging.hpp"

namespace ftr {

/// Observe an error code whose failure is tolerated at this call site.
/// Logs non-success at debug level with the protocol step that produced it.
inline void observe_error(int rc, const char* where) {
  if (rc != 0) FTR_DEBUG("tolerated error at %s: code %d", where, rc);
}

}  // namespace ftr
