#pragma once
// Tiny command line parser used by benches and examples.
//
// Accepts "--key=value" and boolean "--flag" forms; anything else is a
// positional argument, collected in order.  (A space-separated "--key value"
// form is deliberately not supported — it is ambiguous against positionals.)
// This is intentionally small: the bench binaries need a handful of numeric
// knobs, not a framework.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ftr {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if --name was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of integers, e.g. --cores=19,38,76.
  [[nodiscard]] std::vector<long> get_int_list(const std::string& name,
                                               const std::vector<long>& fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace ftr
