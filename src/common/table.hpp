#pragma once
// Aligned-column table printer with optional CSV export.
//
// Every bench binary regenerates one of the paper's tables or figures; the
// output format is a fixed-width table (readable in a terminal, diffable in
// EXPERIMENTS.md) plus an optional CSV file for plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace ftr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row of pre-formatted cells; padded/truncated to header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision, "-" for NaN.
  static std::string num(double v, int precision = 4);
  static std::string num(long v);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_csv() const;
  /// Write the CSV next to wherever the caller wants; returns false on I/O error.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] size_t rows() const { return rows_.size(); }
  [[nodiscard]] size_t cols() const { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftr
