#include "common/table.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace ftr {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  if (std::isnan(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::num(long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  line(headers_);
  os << '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto csv_line = [&out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      // Cells are numbers or plain identifiers; quote only if needed.
      if (cells[c].find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char ch : cells[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cells[c];
      }
    }
    out << '\n';
  };
  csv_line(headers_);
  for (const auto& row : rows_) csv_line(row);
  return out.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace ftr
