#pragma once
// Parallel advection solver for one sub-grid over its process group.
//
// Each rank of the group owns one block of the decomposition; a timestep is
// halo-exchange + x sweep, halo-exchange + y sweep.  Every ftmpi call can
// report a process failure, which the fault-tolerant application layer
// (src/core) turns into the paper's detect-repair-recover sequence; the
// solver itself just surfaces the error code.

#include "advection/lax_wendroff.hpp"
#include "advection/problem.hpp"
#include "ftmpi/api.hpp"
#include "grid/decomposition.hpp"
#include "grid/grid2d.hpp"
#include "grid/halo.hpp"

namespace ftr::advection {

class ParallelSolver {
 public:
  /// Build the solver for `level` over the full group of `comm` and set the
  /// initial condition.
  ParallelSolver(ftr::grid::Level level, Problem problem, double dt, ftmpi::Comm comm);

  /// One split Lax-Wendroff timestep.  Returns the first ftmpi error code
  /// encountered; on error the step is torn (the field may hold partial
  /// updates) and the caller must recover the whole sub-grid, exactly the
  /// situation the paper's data-recovery techniques address.
  int step();

  /// Run `steps` timesteps; stops early on error.
  int run(long steps);

  [[nodiscard]] long steps_done() const { return step_; }
  void set_steps_done(long s) {
    step_ = s;
    torn_ = false;  // the caller just installed a consistent state
  }
  /// True when the last step() failed *after* the field was partially
  /// updated (the x sweep ran but the step did not complete).  steps_done()
  /// alone cannot distinguish this state from a clean inter-step boundary;
  /// recovery paths that want to keep stepping instead of rolling back must
  /// check it.  Cleared by set_steps_done() and by a completed step.
  [[nodiscard]] bool torn() const { return torn_; }
  [[nodiscard]] double time() const { return static_cast<double>(step_) * dt_; }
  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const ftmpi::Comm& comm() const { return comm_; }
  void set_comm(ftmpi::Comm comm) { comm_ = std::move(comm); }
  [[nodiscard]] const ftr::grid::Decomposition& decomposition() const { return decomp_; }
  [[nodiscard]] ftr::grid::LocalField& field() { return field_; }
  [[nodiscard]] const ftr::grid::LocalField& field() const { return field_; }
  [[nodiscard]] const Problem& problem() const { return problem_; }
  [[nodiscard]] ftr::grid::Level level() const { return decomp_.level(); }

  /// Assemble the full sub-grid at group rank 0 (others receive an empty
  /// grid).  Collective over the group.
  int gather_full(ftr::grid::Grid2D* out);

  /// Replace every rank's block from a full grid held at group rank 0
  /// (data recovery / checkpoint restart).  Collective over the group.
  int scatter_full(const ftr::grid::Grid2D& full_at_root);

  /// Reset the local block from an arbitrary function (used by restart).
  void fill_local(const std::function<double(double, double)>& f);

  /// Overlapped recovery: while a background repair is in flight the world
  /// is partial, so whole-run collectives (gather_full / scatter_full)
  /// would address ranks that are not back yet.  The flag makes them
  /// return kErrPending instead of communicating; stepping and halo
  /// exchange on the group communicator stay allowed.
  void set_repair_pending(bool p) { repair_pending_ = p; }
  [[nodiscard]] bool repair_pending() const { return repair_pending_; }

 private:
  Problem problem_;
  double dt_ = 0.0;
  ftmpi::Comm comm_;
  ftr::grid::Decomposition decomp_;
  ftr::grid::LocalField field_;
  long step_ = 0;
  bool torn_ = false;
  bool repair_pending_ = false;
};

}  // namespace ftr::advection
