#include "advection/parallel_solver.hpp"

namespace ftr::advection {

using ftr::grid::Block;
using ftr::grid::Grid2D;

namespace {
constexpr int kTagGather = 201;
constexpr int kTagScatter = 202;
}  // namespace

ParallelSolver::ParallelSolver(ftr::grid::Level level, Problem problem, double dt,
                               ftmpi::Comm comm)
    : problem_(problem), dt_(dt), comm_(std::move(comm)), decomp_(level, comm_.size()),
      field_(decomp_.block(comm_.rank())) {
  fill_local([this](double x, double y) { return problem_.initial(x, y); });
}

void ParallelSolver::fill_local(const std::function<double(double, double)>& f) {
  const Block& b = field_.block();
  const double hx = 1.0 / static_cast<double>(decomp_.unique_nx());
  const double hy = 1.0 / static_cast<double>(decomp_.unique_ny());
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) {
      field_.at(lx, ly) = f(static_cast<double>(b.x0 + lx) * hx,
                            static_cast<double>(b.y0 + ly) * hy);
    }
  }
}

int ParallelSolver::step() {
  const double hx = 1.0 / static_cast<double>(decomp_.unique_nx());
  const double hy = 1.0 / static_cast<double>(decomp_.unique_ny());
  int rc = ftr::grid::exchange_x(field_, decomp_, comm_);
  if (rc != ftmpi::kSuccess) return rc;
  torn_ = true;  // the x sweep mutates the field; until the step completes,
                 // an error leaves a half-updated state behind
  sweep_x(field_, problem_.ax * dt_ / hx);
  rc = ftr::grid::exchange_y(field_, decomp_, comm_);
  if (rc != ftmpi::kSuccess) return rc;
  sweep_y(field_, problem_.ay * dt_ / hy);
  // Charge the modeled compute cost: two sweeps over the owned cells.
  ftmpi::advance(2.0 * static_cast<double>(field_.block().cells()) /
                 ftmpi::runtime().cost().cell_update_rate);
  ++step_;
  torn_ = false;
  return ftmpi::kSuccess;
}

int ParallelSolver::run(long steps) {
  for (long s = 0; s < steps; ++s) {
    const int rc = step();
    if (rc != ftmpi::kSuccess) return rc;
  }
  return ftmpi::kSuccess;
}

int ParallelSolver::gather_full(Grid2D* out) {
  if (repair_pending_) return ftmpi::kErrPending;
  const auto interior = [&]() {
    std::vector<double> v(static_cast<size_t>(field_.block().cells()));
    size_t k = 0;
    for (int ly = 0; ly < field_.block().height(); ++ly) {
      for (int lx = 0; lx < field_.block().width(); ++lx) v[k++] = field_.at(lx, ly);
    }
    return v;
  }();

  if (comm_.rank() == 0) {
    *out = Grid2D(decomp_.level());
    // Own block first.
    {
      const Block b = field_.block();
      size_t k = 0;
      for (int ly = 0; ly < b.height(); ++ly) {
        for (int lx = 0; lx < b.width(); ++lx) out->at(b.x0 + lx, b.y0 + ly) = interior[k++];
      }
    }
    for (int r = 1; r < comm_.size(); ++r) {
      const Block b = decomp_.block(r);
      std::vector<double> buf(static_cast<size_t>(b.cells()));
      const int rc = ftmpi::recv(buf.data(), static_cast<int>(buf.size()), r, kTagGather,
                                 comm_);
      if (rc != ftmpi::kSuccess) return rc;
      size_t k = 0;
      for (int ly = 0; ly < b.height(); ++ly) {
        for (int lx = 0; lx < b.width(); ++lx) out->at(b.x0 + lx, b.y0 + ly) = buf[k++];
      }
    }
    out->enforce_periodicity();
    return ftmpi::kSuccess;
  }
  if (out != nullptr) *out = Grid2D{};
  return ftmpi::send(interior.data(), static_cast<int>(interior.size()), 0, kTagGather,
                     comm_);
}

int ParallelSolver::scatter_full(const Grid2D& full_at_root) {
  if (repair_pending_) return ftmpi::kErrPending;
  if (comm_.rank() == 0) {
    for (int r = 1; r < comm_.size(); ++r) {
      const Block b = decomp_.block(r);
      std::vector<double> buf(static_cast<size_t>(b.cells()));
      size_t k = 0;
      for (int ly = 0; ly < b.height(); ++ly) {
        for (int lx = 0; lx < b.width(); ++lx) buf[k++] = full_at_root.at(b.x0 + lx, b.y0 + ly);
      }
      const int rc = ftmpi::send(buf.data(), static_cast<int>(buf.size()), r, kTagScatter,
                                 comm_);
      if (rc != ftmpi::kSuccess) return rc;
    }
    const Block b = field_.block();
    for (int ly = 0; ly < b.height(); ++ly) {
      for (int lx = 0; lx < b.width(); ++lx) {
        field_.at(lx, ly) = full_at_root.at(b.x0 + lx, b.y0 + ly);
      }
    }
    return ftmpi::kSuccess;
  }
  const Block b = field_.block();
  std::vector<double> buf(static_cast<size_t>(b.cells()));
  const int rc = ftmpi::recv(buf.data(), static_cast<int>(buf.size()), 0, kTagScatter, comm_);
  if (rc != ftmpi::kSuccess) return rc;
  size_t k = 0;
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) field_.at(lx, ly) = buf[k++];
  }
  return ftmpi::kSuccess;
}

}  // namespace ftr::advection
