#pragma once
// Lax-Wendroff scheme for 2D advection, dimensionally split.
//
// For constant-velocity advection the x- and y-transport operators commute,
// so Godunov splitting L_x L_y incurs no splitting error in the operator
// sense and each sweep is the classical second-order 1D Lax-Wendroff update
//
//   u_i^{n+1} = u_i - (c/2)(u_{i+1} - u_{i-1}) + (c^2/2)(u_{i+1} - 2 u_i + u_{i-1}),
//
// with Courant number c = a dt / h, stable for |c| <= 1.  The split form
// needs only one ghost point per direction, which keeps the parallel halo
// exchange one column/row wide.

#include "grid/decomposition.hpp"
#include "common/annotations.hpp"
#include "grid/grid2d.hpp"

namespace ftr::advection {

/// One 1D Lax-Wendroff update.
FTR_HOT [[nodiscard]] inline double lw_update(double west, double center, double east, double c) {
  return center - 0.5 * c * (east - west) + 0.5 * c * c * (east - 2.0 * center + west);
}

/// In-place x sweep over the interior of a halo'd local field (halos must
/// be current).
void sweep_x(ftr::grid::LocalField& f, double courant_x);

/// In-place y sweep over the interior of a halo'd local field.
void sweep_y(ftr::grid::LocalField& f, double courant_y);

/// Serial sweeps over a full periodic grid (unique points 0 .. 2^l - 1; the
/// duplicate last row/column is refreshed afterwards).
void sweep_x_serial(ftr::grid::Grid2D& g, double courant_x);
void sweep_y_serial(ftr::grid::Grid2D& g, double courant_y);

}  // namespace ftr::advection
