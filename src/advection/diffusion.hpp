#pragma once
// Second model PDE: the 2D heat (diffusion) equation
//
//     du/dt = kappa * (d2u/dx2 + d2u/dy2)
//
// on the periodic unit square, discretized with the explicit FTCS 5-point
// scheme.  The paper's techniques are formulated for general PDE solvers on
// the combination technique; this solver demonstrates that the library's
// substrate (grids, decomposition, halo exchange, combination, recovery)
// is not advection-specific.  For the sin*sin initial condition the exact
// solution decays as exp(-8 pi^2 kappa t), giving an analytic error
// reference just like the advection problem.
//
// Stability: kappa * dt * (1/hx^2 + 1/hy^2) <= 1/2.

#include "advection/problem.hpp"
#include "ftmpi/api.hpp"
#include "grid/decomposition.hpp"
#include "grid/grid2d.hpp"
#include "grid/halo.hpp"

namespace ftr::advection {

struct DiffusionProblem {
  double kappa = 0.05;  ///< diffusivity

  [[nodiscard]] double initial(double x, double y) const {
    constexpr double two_pi = 6.283185307179586476925286766559;
    return std::sin(two_pi * x) * std::sin(two_pi * y);
  }
  /// Exact solution: the sin*sin mode decays with rate 8 pi^2 kappa.
  [[nodiscard]] double exact(double x, double y, double t) const {
    constexpr double eight_pi_sq = 78.95683520871486895229848778179;
    return std::exp(-eight_pi_sq * kappa * t) * initial(x, y);
  }
};

/// Largest stable FTCS timestep at the finest resolution of the scheme.
[[nodiscard]] inline double diffusion_stable_timestep(int finest_level,
                                                      const DiffusionProblem& p,
                                                      double safety = 0.9) {
  const double h = 1.0 / static_cast<double>(1 << finest_level);
  return safety * 0.25 * h * h / std::max(p.kappa, 1e-300);
}

/// One FTCS update over the interior of a halo'd field (both halos current).
void ftcs_step(ftr::grid::LocalField& f, double rx, double ry);

/// Serial reference solver on a full periodic grid.
class SerialDiffusionSolver {
 public:
  SerialDiffusionSolver(ftr::grid::Level level, DiffusionProblem problem, double dt);
  void step();
  void run(long steps) {
    for (long s = 0; s < steps; ++s) step();
  }
  [[nodiscard]] double time() const { return static_cast<double>(step_) * dt_; }
  [[nodiscard]] const ftr::grid::Grid2D& grid() const { return grid_; }
  [[nodiscard]] double l1_error() const;

 private:
  DiffusionProblem problem_;
  double dt_;
  ftr::grid::Grid2D grid_;
  long step_ = 0;
};

/// Parallel diffusion solver over a process group (same structure as the
/// advection ParallelSolver: one block per rank, halo exchange per step).
class ParallelDiffusionSolver {
 public:
  ParallelDiffusionSolver(ftr::grid::Level level, DiffusionProblem problem, double dt,
                          ftmpi::Comm comm);
  /// One timestep; surfaces ftmpi error codes like the advection solver.
  int step();
  int run(long steps);
  [[nodiscard]] long steps_done() const { return step_; }
  [[nodiscard]] ftr::grid::LocalField& field() { return field_; }
  int gather_full(ftr::grid::Grid2D* out);

 private:
  DiffusionProblem problem_;
  double dt_;
  ftmpi::Comm comm_;
  ftr::grid::Decomposition decomp_;
  ftr::grid::LocalField field_;
  long step_ = 0;
};

}  // namespace ftr::advection
