#include "advection/diffusion.hpp"

#include <vector>

namespace ftr::advection {

using ftr::grid::Grid2D;
using ftr::grid::LocalField;

void ftcs_step(LocalField& f, double rx, double ry) {
  const auto& b = f.block();
  // Per-thread persistent scratch: each simulated rank steps on its own
  // thread, so the buffer is reused allocation-free across steps.
  thread_local std::vector<double> next;
  next.resize(static_cast<size_t>(b.cells()));
  size_t k = 0;
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) {
      const double u = f.at(lx, ly);
      next[k++] = u + rx * (f.at(lx + 1, ly) - 2.0 * u + f.at(lx - 1, ly)) +
                  ry * (f.at(lx, ly + 1) - 2.0 * u + f.at(lx, ly - 1));
    }
  }
  k = 0;
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) f.at(lx, ly) = next[k++];
  }
}

SerialDiffusionSolver::SerialDiffusionSolver(ftr::grid::Level level, DiffusionProblem problem,
                                             double dt)
    : problem_(problem), dt_(dt), grid_(level) {
  grid_.fill([this](double x, double y) { return problem_.initial(x, y); });
}

void SerialDiffusionSolver::step() {
  // Serial path: wrap the grid into a single halo'd block, fill halos
  // periodically, and apply the same FTCS kernel as the parallel solver.
  const int nx = grid_.nx() - 1;
  const int ny = grid_.ny() - 1;
  LocalField f(ftr::grid::Block{0, nx, 0, ny});
  f.load_from(grid_);
  auto& hs = f.halo_scratch();
  f.pack_column_into(nx - 1, hs.send[0]);
  f.unpack_halo_column(-1, hs.send[0]);
  f.pack_column_into(0, hs.send[1]);
  f.unpack_halo_column(nx, hs.send[1]);
  f.pack_row_into(ny - 1, hs.send[0]);
  f.unpack_halo_row(-1, hs.send[0]);
  f.pack_row_into(0, hs.send[1]);
  f.unpack_halo_row(ny, hs.send[1]);
  const double rx = problem_.kappa * dt_ / (grid_.hx() * grid_.hx());
  const double ry = problem_.kappa * dt_ / (grid_.hy() * grid_.hy());
  ftcs_step(f, rx, ry);
  f.store_to(grid_);
  grid_.enforce_periodicity();
  ++step_;
}

double SerialDiffusionSolver::l1_error() const {
  const double t = time();
  return ftr::grid::l1_error(grid_,
                             [&](double x, double y) { return problem_.exact(x, y, t); });
}

ParallelDiffusionSolver::ParallelDiffusionSolver(ftr::grid::Level level,
                                                 DiffusionProblem problem, double dt,
                                                 ftmpi::Comm comm)
    : problem_(problem), dt_(dt), comm_(std::move(comm)), decomp_(level, comm_.size()),
      field_(decomp_.block(comm_.rank())) {
  const ftr::grid::Block& b = field_.block();
  const double hx = 1.0 / static_cast<double>(decomp_.unique_nx());
  const double hy = 1.0 / static_cast<double>(decomp_.unique_ny());
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) {
      field_.at(lx, ly) = problem_.initial(static_cast<double>(b.x0 + lx) * hx,
                                           static_cast<double>(b.y0 + ly) * hy);
    }
  }
}

int ParallelDiffusionSolver::step() {
  // The 5-point stencil needs both halo pairs before one update.
  int rc = ftr::grid::exchange_x(field_, decomp_, comm_);
  if (rc != ftmpi::kSuccess) return rc;
  rc = ftr::grid::exchange_y(field_, decomp_, comm_);
  if (rc != ftmpi::kSuccess) return rc;
  const double hx = 1.0 / static_cast<double>(decomp_.unique_nx());
  const double hy = 1.0 / static_cast<double>(decomp_.unique_ny());
  ftcs_step(field_, problem_.kappa * dt_ / (hx * hx), problem_.kappa * dt_ / (hy * hy));
  ftmpi::advance(static_cast<double>(field_.block().cells()) /
                 ftmpi::runtime().cost().cell_update_rate);
  ++step_;
  return ftmpi::kSuccess;
}

int ParallelDiffusionSolver::run(long steps) {
  for (long s = 0; s < steps; ++s) {
    const int rc = step();
    if (rc != ftmpi::kSuccess) return rc;
  }
  return ftmpi::kSuccess;
}

int ParallelDiffusionSolver::gather_full(Grid2D* out) {
  constexpr int kTag = 211;
  std::vector<double> interior(static_cast<size_t>(field_.block().cells()));
  {
    size_t k = 0;
    const auto& b = field_.block();
    for (int ly = 0; ly < b.height(); ++ly) {
      for (int lx = 0; lx < b.width(); ++lx) interior[k++] = field_.at(lx, ly);
    }
  }
  if (comm_.rank() == 0) {
    *out = Grid2D(decomp_.level());
    const auto place = [&](const ftr::grid::Block& b, const std::vector<double>& v) {
      size_t k = 0;
      for (int ly = 0; ly < b.height(); ++ly) {
        for (int lx = 0; lx < b.width(); ++lx) out->at(b.x0 + lx, b.y0 + ly) = v[k++];
      }
    };
    place(field_.block(), interior);
    for (int r = 1; r < comm_.size(); ++r) {
      const ftr::grid::Block b = decomp_.block(r);
      std::vector<double> buf(static_cast<size_t>(b.cells()));
      const int rc = ftmpi::recv(buf.data(), static_cast<int>(buf.size()), r, kTag, comm_);
      if (rc != ftmpi::kSuccess) return rc;
      place(b, buf);
    }
    out->enforce_periodicity();
    return ftmpi::kSuccess;
  }
  if (out != nullptr) *out = Grid2D{};
  return ftmpi::send(interior.data(), static_cast<int>(interior.size()), 0, kTag, comm_);
}

}  // namespace ftr::advection
