#pragma once
// Serial reference solver: one sub-grid, no parallelism.  Used by unit
// tests (convergence), by the combination-technique reference path, and by
// the checkpoint-recovery recomputation when a grid is recovered serially.

#include "advection/lax_wendroff.hpp"
#include "advection/problem.hpp"
#include "grid/grid2d.hpp"

namespace ftr::advection {

class SerialSolver {
 public:
  SerialSolver(ftr::grid::Level level, Problem problem, double dt)
      : problem_(problem), dt_(dt), grid_(level) {
    grid_.fill([this](double x, double y) { return problem_.initial(x, y); });
  }

  /// Resume from existing data at a given step count (checkpoint restart).
  SerialSolver(ftr::grid::Grid2D grid, Problem problem, double dt, long step)
      : problem_(problem), dt_(dt), grid_(std::move(grid)), step_(step) {}

  void step() {
    sweep_x_serial(grid_, problem_.ax * dt_ / grid_.hx());
    sweep_y_serial(grid_, problem_.ay * dt_ / grid_.hy());
    ++step_;
  }

  void run(long steps) {
    for (long s = 0; s < steps; ++s) step();
  }

  [[nodiscard]] double time() const { return static_cast<double>(step_) * dt_; }
  [[nodiscard]] long steps_done() const { return step_; }
  [[nodiscard]] double dt() const { return dt_; }
  [[nodiscard]] const ftr::grid::Grid2D& grid() const { return grid_; }
  [[nodiscard]] ftr::grid::Grid2D& grid() { return grid_; }
  [[nodiscard]] const Problem& problem() const { return problem_; }

  /// Average l1 error against the exact solution at the current time.
  [[nodiscard]] double l1_error() const {
    const double t = time();
    return ftr::grid::l1_error(grid_,
                               [&](double x, double y) { return problem_.exact(x, y, t); });
  }

 private:
  Problem problem_;
  double dt_ = 0.0;
  ftr::grid::Grid2D grid_;
  long step_ = 0;
};

}  // namespace ftr::advection
