#pragma once
// The model problem of the paper: the scalar advection equation in two
// spatial dimensions,
//
//     du/dt + a_x du/dx + a_y du/dy = 0   on the periodic unit square,
//
// with a smooth periodic initial condition.  The exact solution is the
// translated initial condition, which the paper uses as the reference for
// the approximation-error study (Fig. 10).

#include <cmath>

namespace ftr::advection {

struct Problem {
  double ax = 1.0;   ///< advection velocity, x component
  double ay = 0.5;   ///< advection velocity, y component

  /// Smooth periodic initial condition.
  [[nodiscard]] double initial(double x, double y) const {
    constexpr double two_pi = 6.283185307179586476925286766559;
    return std::sin(two_pi * x) * std::sin(two_pi * y);
  }

  /// Exact solution at time t (translation of the initial condition).
  [[nodiscard]] double exact(double x, double y, double t) const {
    auto wrap = [](double v) { return v - std::floor(v); };
    return initial(wrap(x - ax * t), wrap(y - ay * t));
  }
};

/// The paper uses one fixed timestep across all sub-grids for stability:
/// the step must satisfy the CFL condition of the *finest* resolution that
/// occurs in any grid of the combination, which for full grid size n is
/// spacing 2^-n in each direction.
[[nodiscard]] inline double stable_timestep(int finest_level, const Problem& p,
                                            double cfl = 0.9) {
  const double h = 1.0 / static_cast<double>(1 << finest_level);
  const double amax = std::max(std::abs(p.ax), std::abs(p.ay));
  return amax > 0 ? cfl * h / amax : cfl * h;
}

}  // namespace ftr::advection
