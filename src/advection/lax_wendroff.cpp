#include "advection/lax_wendroff.hpp"
#include "common/annotations.hpp"

#include <utility>
#include <vector>

namespace ftr::advection {

using ftr::grid::Grid2D;
using ftr::grid::LocalField;

namespace {

/// Persistent per-thread sweep scratch.  Every simulated MPI rank is a
/// dedicated thread, so thread_local gives each rank private buffers without
/// locking; capacity persists across steps, so the hot path stops allocating
/// after the first step on a given grid size.
std::vector<double>& sweep_scratch(int which, std::size_t n) {
  thread_local std::vector<double> rows[3];
  auto& r = rows[which];
  // ftlint:allow(FTL003 warm-up growth of persistent thread_local scratch)
  if (r.size() < n) r.resize(n);
  return r;
}

}  // namespace

FTR_HOT void sweep_x(LocalField& f, double courant_x) {
  // The update at lx needs the *old* values at lx-1, lx, lx+1.  Walking east
  // with the old center carried as the next point's west neighbor needs no
  // scratch at all.
  const auto& b = f.block();
  const int w = b.width();
  const int h = b.height();
  for (int ly = 0; ly < h; ++ly) {
    double west = f.at(-1, ly);
    for (int lx = 0; lx < w; ++lx) {
      const double center = f.at(lx, ly);
      f.at(lx, ly) = lw_update(west, center, f.at(lx + 1, ly), courant_x);
      west = center;
    }
  }
}

FTR_HOT void sweep_y(LocalField& f, double courant_y) {
  // Row-major traversal (data_ is row-major; the old column-at-a-time loop
  // strided the whole array once per column).  Two row buffers carry the old
  // values: `south_old` holds row ly-1 as it was before its update, and
  // `center_old` snapshots row ly before overwriting it; the north neighbor
  // row ly+1 is still untouched and is read in place.
  const auto& b = f.block();
  const int w = b.width();
  const int h = b.height();
  const std::size_t wn = static_cast<std::size_t>(w);
  auto& south_old = sweep_scratch(0, wn);
  auto& center_old = sweep_scratch(1, wn);
  for (int lx = 0; lx < w; ++lx) south_old[static_cast<std::size_t>(lx)] = f.at(lx, -1);
  for (int ly = 0; ly < h; ++ly) {
    for (int lx = 0; lx < w; ++lx) center_old[static_cast<std::size_t>(lx)] = f.at(lx, ly);
    for (int lx = 0; lx < w; ++lx) {
      f.at(lx, ly) = lw_update(south_old[static_cast<std::size_t>(lx)],
                               center_old[static_cast<std::size_t>(lx)],
                               f.at(lx, ly + 1), courant_y);
    }
    std::swap(south_old, center_old);
  }
}

FTR_HOT void sweep_x_serial(Grid2D& g, double courant_x) {
  const int n = g.nx() - 1;  // unique points
  for (int iy = 0; iy < g.ny() - 1; ++iy) {
    // Periodic ring update with carried scalars: row point n-1 is updated
    // last, so it is still old when point 0 reads it as its west neighbor;
    // point 0's old value is saved up front for point n-1's east neighbor.
    const double first_old = g.at(0, iy);
    double west = g.at(n - 1, iy);
    for (int ix = 0; ix < n; ++ix) {
      const double center = g.at(ix, iy);
      const double east = (ix + 1 < n) ? g.at(ix + 1, iy) : first_old;
      g.at(ix, iy) = lw_update(west, center, east, courant_x);
      west = center;
    }
  }
  g.enforce_periodicity();
}

FTR_HOT void sweep_y_serial(Grid2D& g, double courant_y) {
  // Row-major with periodic wrap: like sweep_y, plus a saved copy of old
  // row 0 (already updated by the time row n-1 needs it as north neighbor).
  // Row n-1 is updated last, so row 0 reads it in place as its south
  // neighbor via south_old's initial fill.
  const int n = g.ny() - 1;  // unique rows
  const int w = g.nx() - 1;  // unique points per row
  const std::size_t wn = static_cast<std::size_t>(w);
  auto& south_old = sweep_scratch(0, wn);
  auto& center_old = sweep_scratch(1, wn);
  auto& row0_old = sweep_scratch(2, wn);
  for (int ix = 0; ix < w; ++ix) row0_old[static_cast<std::size_t>(ix)] = g.at(ix, 0);
  for (int ix = 0; ix < w; ++ix) south_old[static_cast<std::size_t>(ix)] = g.at(ix, n - 1);
  for (int iy = 0; iy < n; ++iy) {
    for (int ix = 0; ix < w; ++ix) center_old[static_cast<std::size_t>(ix)] = g.at(ix, iy);
    const bool last_row = (iy + 1 == n);
    for (int ix = 0; ix < w; ++ix) {
      const double north =
          last_row ? row0_old[static_cast<std::size_t>(ix)] : g.at(ix, iy + 1);
      g.at(ix, iy) = lw_update(south_old[static_cast<std::size_t>(ix)],
                               center_old[static_cast<std::size_t>(ix)], north, courant_y);
    }
    std::swap(south_old, center_old);
  }
  g.enforce_periodicity();
}

}  // namespace ftr::advection
