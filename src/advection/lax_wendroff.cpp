#include "advection/lax_wendroff.hpp"

#include <vector>

namespace ftr::advection {

using ftr::grid::Grid2D;
using ftr::grid::LocalField;

void sweep_x(LocalField& f, double courant_x) {
  const auto& b = f.block();
  std::vector<double> row(static_cast<size_t>(b.width()));
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) {
      row[static_cast<size_t>(lx)] =
          lw_update(f.at(lx - 1, ly), f.at(lx, ly), f.at(lx + 1, ly), courant_x);
    }
    for (int lx = 0; lx < b.width(); ++lx) f.at(lx, ly) = row[static_cast<size_t>(lx)];
  }
}

void sweep_y(LocalField& f, double courant_y) {
  const auto& b = f.block();
  std::vector<double> col(static_cast<size_t>(b.height()));
  for (int lx = 0; lx < b.width(); ++lx) {
    for (int ly = 0; ly < b.height(); ++ly) {
      col[static_cast<size_t>(ly)] =
          lw_update(f.at(lx, ly - 1), f.at(lx, ly), f.at(lx, ly + 1), courant_y);
    }
    for (int ly = 0; ly < b.height(); ++ly) f.at(lx, ly) = col[static_cast<size_t>(ly)];
  }
}

void sweep_x_serial(Grid2D& g, double courant_x) {
  const int n = g.nx() - 1;  // unique points
  std::vector<double> row(static_cast<size_t>(n));
  for (int iy = 0; iy < g.ny() - 1; ++iy) {
    for (int ix = 0; ix < n; ++ix) {
      const double w = g.at((ix - 1 + n) % n, iy);
      const double e = g.at((ix + 1) % n, iy);
      row[static_cast<size_t>(ix)] = lw_update(w, g.at(ix, iy), e, courant_x);
    }
    for (int ix = 0; ix < n; ++ix) g.at(ix, iy) = row[static_cast<size_t>(ix)];
  }
  g.enforce_periodicity();
}

void sweep_y_serial(Grid2D& g, double courant_y) {
  const int n = g.ny() - 1;
  std::vector<double> col(static_cast<size_t>(n));
  for (int ix = 0; ix < g.nx() - 1; ++ix) {
    for (int iy = 0; iy < n; ++iy) {
      const double s = g.at(ix, (iy - 1 + n) % n);
      const double nn = g.at(ix, (iy + 1) % n);
      col[static_cast<size_t>(iy)] = lw_update(s, g.at(ix, iy), nn, courant_y);
    }
    for (int iy = 0; iy < n; ++iy) g.at(ix, iy) = col[static_cast<size_t>(iy)];
  }
  g.enforce_periodicity();
}

}  // namespace ftr::advection
