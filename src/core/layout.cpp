#include "core/layout.hpp"

#include <algorithm>
#include <cassert>

#include "recovery/replication.hpp"

namespace ftr::core {

using ftr::comb::GridRole;
using ftr::comb::GridSlot;

int Layout::grid_of_rank(int world_rank) const {
  for (int g = num_grids() - 1; g >= 0; --g) {
    if (world_rank >= first_rank[static_cast<size_t>(g)]) return g;
  }
  return 0;
}

std::vector<int> Layout::grids_of_ranks(const std::vector<int>& world_ranks) const {
  std::vector<int> out;
  for (int r : world_ranks) {
    if (r < 0 || r >= total_procs) continue;
    out.push_back(grid_of_rank(r));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ftr::rec::BuddyTopology make_buddy_topology(const Layout& layout, int slots_per_host) {
  ftr::rec::BuddyTopology topo;
  topo.first_rank = layout.first_rank;
  topo.procs_per_grid = layout.procs_per_grid;
  topo.slots_per_host = slots_per_host;
  topo.partner_grid.resize(layout.slots.size(), -1);
  for (const auto& slot : layout.slots) {
    const auto partner = ftr::rec::rc_partner(layout.slots, slot.id);
    if (partner.has_value()) topo.partner_grid[static_cast<size_t>(slot.id)] = *partner;
  }
  return topo;
}

int DegradedView::new_rank_of(int original_rank) const {
  const auto it = std::lower_bound(survivors.begin(), survivors.end(), original_rank);
  if (it == survivors.end() || *it != original_rank) return -1;
  return static_cast<int>(it - survivors.begin());
}

bool DegradedView::grid_lost(int grid_id) const {
  return std::binary_search(lost_grids.begin(), lost_grids.end(), grid_id);
}

DegradedView build_degraded_view(const Layout& layout, const std::vector<int>& failed_ranks) {
  DegradedView view;
  std::vector<bool> dead(static_cast<size_t>(layout.total_procs), false);
  for (int r : failed_ranks) {
    if (r >= 0 && r < layout.total_procs) dead[static_cast<size_t>(r)] = true;
  }
  view.survivors.reserve(static_cast<size_t>(layout.total_procs));
  for (int r = 0; r < layout.total_procs; ++r) {
    if (!dead[static_cast<size_t>(r)]) view.survivors.push_back(r);
  }
  view.lost_grids = layout.grids_of_ranks(failed_ranks);
  return view;
}

Layout build_layout(const LayoutConfig& cfg) {
  Layout out;
  out.config = cfg;
  out.slots = ftr::comb::build_grid_slots(cfg.scheme, cfg.technique, cfg.extra_layers);
  out.procs_per_grid.reserve(out.slots.size());
  for (const GridSlot& s : out.slots) {
    int p = 1;
    switch (s.role) {
      case GridRole::Diagonal:
      case GridRole::Duplicate:
        p = cfg.procs_diagonal;
        break;
      case GridRole::LowerDiagonal:
        p = cfg.procs_lower;
        break;
      case GridRole::ExtraLayer:
        p = s.depth == 2 ? cfg.procs_extra_upper : cfg.procs_extra_lower;
        break;
    }
    p = std::max(p, 1);
    // A group larger than the grid's unique cells cannot be decomposed;
    // clamp to the number of unique rows * columns (never binds at the
    // paper's scales).
    const long cells = (1L << s.level.x) * (1L << s.level.y);
    p = static_cast<int>(std::min<long>(p, cells));
    out.procs_per_grid.push_back(p);
  }
  out.first_rank.resize(out.slots.size());
  int next = 0;
  for (size_t g = 0; g < out.slots.size(); ++g) {
    out.first_rank[g] = next;
    next += out.procs_per_grid[g];
  }
  out.total_procs = next;
  return out;
}

LayoutConfig table1_layout(int n, int l, int diag_procs) {
  LayoutConfig cfg;
  cfg.scheme = ftr::comb::Scheme{n, l};
  cfg.technique = ftr::comb::Technique::CheckpointRestart;
  cfg.procs_diagonal = diag_procs;
  cfg.procs_lower = std::max(diag_procs / 4, 1);
  return cfg;
}

}  // namespace ftr::core
