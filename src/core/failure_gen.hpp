#pragma once
// Failure injection.
//
// The paper injects faults with a generator that aborts random MPI
// processes via kill(getpid(), SIGKILL) at some point before the
// combination of sub-grid solutions ("real" failures: Figs. 8, 11,
// Table I), and separately studies "simulated" failures where a grid's
// data is simply treated as lost at recovery time (Figs. 9, 10).
// FailurePlan carries both forms; the application consults it during the
// timestep loop (real) and at the recovery stage (simulated).
//
// Constraints honored, as in the paper: world rank 0 never fails, and for
// Resampling & Copying a grid and its recovery partner are never lost
// together.

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/layout.hpp"

namespace ftr::core {

struct FailurePlan {
  /// Real failures: world rank -> timestep at which the process self-kills
  /// (the paper's SIGKILL before combination).
  std::map<int, long> kill_at_step;
  /// Whole-node failures (the paper's future-work scenario): host index ->
  /// timestep.  Every process on the host dies; replacements are respawned
  /// together on a spare node.  Host 0 (which carries rank 0) must not fail.
  std::map<int, long> fail_host_at_step;
  /// Simulated failures: grid ids whose data is treated as lost.
  std::vector<int> simulated_lost_grids;

  [[nodiscard]] bool empty() const {
    return kill_at_step.empty() && fail_host_at_step.empty() &&
           simulated_lost_grids.empty();
  }
  [[nodiscard]] std::vector<int> real_victim_ranks() const {
    std::vector<int> out;
    out.reserve(kill_at_step.size());
    for (const auto& [r, s] : kill_at_step) out.push_back(r);
    return out;
  }
};

/// Draw `count` distinct victim ranks (never rank 0) and a random kill step
/// in [1, max_step).  For RC layouts the draw is repeated until the lost
/// grids satisfy the partner constraint.
FailurePlan random_real_failures(const Layout& layout, int count, long max_step,
                                 ftr::Xoshiro256& rng);

/// Draw `count` distinct lost grid ids among the technique's recoverable
/// grids (combination layers and duplicates; AC's extra layers are kept as
/// survivors, matching the paper's experiments).
FailurePlan random_simulated_losses(const Layout& layout, int count, ftr::Xoshiro256& rng);

// --- failure inter-arrival model --------------------------------------------
//
// random_real_failures() draws one uniform kill step, which is fine for the
// paper's single-failure experiments but cannot express failure *timing*
// structure.  The arrival model draws inter-arrival gaps instead:
// exponential gaps reproduce the classic memoryless MTBF process, Weibull
// gaps with shape < 1 produce the bursty, clustered arrivals observed in
// real HPC failure logs — exactly the regime where a second failure lands
// while a background repair is still in flight (the overlapped-recovery
// stress case).

enum class FailureDist {
  Exponential,  ///< gap = -scale * ln(u); scale is the MTBF
  Weibull,      ///< gap = scale * (-ln(u))^(1/shape)
};

struct ArrivalModel {
  FailureDist dist = FailureDist::Exponential;
  double scale = 8.0;  ///< exp: mean gap (MTBF); weibull: scale lambda
  double shape = 1.0;  ///< weibull shape k (< 1 bursty, 1 = exp, > 1 aging)
};

/// Environment override: FTR_FAILURE_DIST=exp|weibull selects the family,
/// FTR_FAILURE_SCALE / FTR_FAILURE_SHAPE the parameters.  `fallback` is
/// returned (unchanged) when the variables are unset or unparsable.
[[nodiscard]] ArrivalModel arrival_model_from_env(ArrivalModel fallback);

/// One inter-arrival gap in timesteps (continuous; callers quantize).
[[nodiscard]] double draw_interarrival(const ArrivalModel& m, ftr::Xoshiro256& rng);

/// Real-failure plan with victim draw as random_real_failures() (distinct,
/// never rank 0, RC partner constraint) but kill steps from cumulative
/// inter-arrival gaps: victim i dies at round(sum of the first i+1 gaps),
/// clamped to [1, max_step).  Bursty models thus produce victims dying in
/// adjacent steps — several failures inside one repair window.
FailurePlan scheduled_real_failures(const Layout& layout, int count, long max_step,
                                    const ArrivalModel& model, ftr::Xoshiro256& rng);

}  // namespace ftr::core
