#pragma once
// Failure injection.
//
// The paper injects faults with a generator that aborts random MPI
// processes via kill(getpid(), SIGKILL) at some point before the
// combination of sub-grid solutions ("real" failures: Figs. 8, 11,
// Table I), and separately studies "simulated" failures where a grid's
// data is simply treated as lost at recovery time (Figs. 9, 10).
// FailurePlan carries both forms; the application consults it during the
// timestep loop (real) and at the recovery stage (simulated).
//
// Constraints honored, as in the paper: world rank 0 never fails, and for
// Resampling & Copying a grid and its recovery partner are never lost
// together.

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/layout.hpp"

namespace ftr::core {

struct FailurePlan {
  /// Real failures: world rank -> timestep at which the process self-kills
  /// (the paper's SIGKILL before combination).
  std::map<int, long> kill_at_step;
  /// Whole-node failures (the paper's future-work scenario): host index ->
  /// timestep.  Every process on the host dies; replacements are respawned
  /// together on a spare node.  Host 0 (which carries rank 0) must not fail.
  std::map<int, long> fail_host_at_step;
  /// Simulated failures: grid ids whose data is treated as lost.
  std::vector<int> simulated_lost_grids;

  [[nodiscard]] bool empty() const {
    return kill_at_step.empty() && fail_host_at_step.empty() &&
           simulated_lost_grids.empty();
  }
  [[nodiscard]] std::vector<int> real_victim_ranks() const {
    std::vector<int> out;
    out.reserve(kill_at_step.size());
    for (const auto& [r, s] : kill_at_step) out.push_back(r);
    return out;
  }
};

/// Draw `count` distinct victim ranks (never rank 0) and a random kill step
/// in [1, max_step).  For RC layouts the draw is repeated until the lost
/// grids satisfy the partner constraint.
FailurePlan random_real_failures(const Layout& layout, int count, long max_step,
                                 ftr::Xoshiro256& rng);

/// Draw `count` distinct lost grid ids among the technique's recoverable
/// grids (combination layers and duplicates; AC's extra layers are kept as
/// survivors, matching the paper's experiments).
FailurePlan random_simulated_losses(const Layout& layout, int count, ftr::Xoshiro256& rng);

}  // namespace ftr::core
