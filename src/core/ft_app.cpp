#include "core/ft_app.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <map>

#include "advection/serial_solver.hpp"
#include "combination/combine.hpp"
#include "common/errors.hpp"
#include "common/logging.hpp"
#include "recovery/alternate.hpp"
#include "grid/sampling.hpp"
#include "recovery/replication.hpp"

namespace ftr::core {

using ftr::advection::ParallelSolver;
using ftr::comb::GridRole;
using ftr::comb::Technique;
using ftr::grid::Grid2D;
using ftr::grid::Level;
using ftmpi::Comm;
using ftmpi::kSuccess;

namespace {
constexpr int kTagGridToRoot = 300;   ///< grid root -> world rank 0 (combination)
constexpr int kTagRecovered = 400;    ///< world rank 0 -> lost grid root (AC scatter)
constexpr int kTagPartner = 500;      ///< partner root -> lost grid root (RC)
}  // namespace

struct FtApp::RankState {
  Comm world;
  Comm gcomm;
  int wrank = -1;
  int grid = -1;
  double dt = 0.0;
  std::unique_ptr<ParallelSolver> solver;
  Reconstructor recon;
  // Lost grids accumulated over all repairs (known to every rank via the
  // post-repair broadcast).
  std::set<int> real_lost_grids;
  std::vector<int> last_failed_ranks;  // survivors: from the last repair
  long bcast_interval = -1;            // interval index from the last post-repair broadcast
  // Shrink-mode degradation: once replacements cannot be placed, the run
  // continues on the shrunken world.  `wrank` keeps the ORIGINAL world rank
  // (layout identity); `dview` translates to the compacted ranks.  A rank
  // whose grid lost a member idles (no solver) until the final combination.
  bool degraded = false;
  DegradedView dview;
  std::set<int> failed_union;  // original ranks failed so far, all repairs
  // Buddy placement map (deterministic, identical on every rank).
  ftr::rec::BuddyTopology btopo;
  // Grids whose recovery plan ended in Gcp/Idle: they keep no usable data
  // and the GCP combination absorbs them (uniform across ranks — filled
  // from the agreed plan).
  std::set<int> unrestored;
  // rank-0 metrics
  ReconstructTimings recon_sum{};
  int repairs = 0;
  int recon_attempts = 0;
  double recovery_time = 0.0;
  double recovery_bytes = 0.0;
  double buddy_repl_time = 0.0;
  double ckpt_write_total = 0.0;
  double solve_time = 0.0;

  explicit RankState(Reconstructor r) : recon(std::move(r)) {}
};

FtApp::FtApp(AppConfig cfg) : cfg_(std::move(cfg)), layout_(build_layout(cfg_.layout)) {
  store_ = cfg_.checkpoint_dir.empty()
               ? std::make_shared<ftr::rec::CheckpointStore>()
               : std::make_shared<ftr::rec::CheckpointStore>(cfg_.checkpoint_dir);
  buddy_ = std::make_shared<ftr::rec::BuddyStore>();
  if (const char* e = std::getenv("FTR_RECOVERY")) {
    const std::string v(e);
    if (v == "planner") {
      cfg_.recovery = RecoveryPolicy::Planner;
    } else if (v == "cr") {
      cfg_.recovery = RecoveryPolicy::Cr;
    } else if (v == "rc") {
      cfg_.recovery = RecoveryPolicy::Rc;
    } else if (v == "ac") {
      cfg_.recovery = RecoveryPolicy::Ac;
    } else if (v == "technique") {
      cfg_.recovery = RecoveryPolicy::Technique;
    } else if (!v.empty()) {
      FTR_WARN("ft_app: ignoring unknown FTR_RECOVERY value '%s'", v.c_str());
    }
  }
  if (const char* e = std::getenv("FTR_BUDDY_EVERY")) cfg_.buddy_every = std::atol(e);
  if (const char* e = std::getenv("FTR_PROACTIVE")) {
    const std::string v(e);
    if (v == "1" || v == "on") {
      cfg_.proactive_recovery = true;
    } else if (v == "0" || v == "off") {
      cfg_.proactive_recovery = false;
    } else if (!v.empty()) {
      FTR_WARN("ft_app: ignoring unknown FTR_PROACTIVE value '%s'", v.c_str());
    }
  }
}

ftr::rec::PlannerMode FtApp::planner_mode() const {
  switch (cfg_.recovery) {
    case RecoveryPolicy::Planner: return ftr::rec::PlannerMode::Lattice;
    case RecoveryPolicy::Cr: return ftr::rec::PlannerMode::ForceCr;
    case RecoveryPolicy::Rc: return ftr::rec::PlannerMode::ForceRc;
    case RecoveryPolicy::Ac: return ftr::rec::PlannerMode::ForceAc;
    case RecoveryPolicy::Technique: break;
  }
  switch (cfg_.layout.technique) {
    case Technique::ResamplingCopying: return ftr::rec::PlannerMode::ForceRc;
    case Technique::AlternateCombination: return ftr::rec::PlannerMode::ForceAc;
    case Technique::CheckpointRestart: break;
  }
  return ftr::rec::PlannerMode::ForceCr;
}

int FtApp::gcp_depth() const {
  return cfg_.layout.technique == Technique::AlternateCombination ? 1 + cfg_.layout.extra_layers
                                                                  : 1;
}

int FtApp::launch(ftmpi::Runtime& rt) {
  rt.register_app(cfg_.app_name, [this](const std::vector<std::string>& argv) { entry(argv); });
  rt.clear_results();
  return rt.run(cfg_.app_name, layout_.total_procs);
}

// --- small helpers -----------------------------------------------------------

std::vector<double> FtApp::pack_interior(const ftr::grid::LocalField& f) const {
  const auto& b = f.block();
  std::vector<double> v(static_cast<size_t>(b.cells()));
  size_t k = 0;
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) v[k++] = f.at(lx, ly);
  }
  return v;
}

void FtApp::unpack_interior(const std::vector<double>& v, ftr::grid::LocalField& f) const {
  const auto& b = f.block();
  assert(v.size() == static_cast<size_t>(b.cells()));
  size_t k = 0;
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) f.at(lx, ly) = v[k++];
  }
}

void FtApp::maybe_self_kill(const RankState& st, long step) {
  // Whole-node failure: the first resident process whose step reaches the
  // planned time takes the node down (killing itself and its co-residents).
  if (!cfg_.failures.fail_host_at_step.empty()) {
    const int host = ftmpi::runtime().host_of(ftmpi::self_pid());
    const auto hit = cfg_.failures.fail_host_at_step.find(host);
    if (hit != cfg_.failures.fail_host_at_step.end() && step >= hit->second) {
      bool fire = false;
      {
        std::lock_guard<std::mutex> lock(kill_mu_);
        fire = fired_host_fails_.insert(host).second;
      }
      if (fire) {
        FTR_DEBUG("ft_app: node failure on host %d at step %ld", host, step);
        ftmpi::runtime().fail_host(host);  // marks us dead too
        throw ftmpi::ProcessKilled{ftmpi::self_pid()};
      }
    }
  }
  const auto it = cfg_.failures.kill_at_step.find(st.wrank);
  if (it == cfg_.failures.kill_at_step.end() || step < it->second) return;
  {
    std::lock_guard<std::mutex> lock(kill_mu_);
    if (fired_kills_.count(st.wrank) != 0) return;  // respawned replacement
    fired_kills_.insert(st.wrank);
  }
  FTR_DEBUG("ft_app: rank %d self-kills at step %ld", st.wrank, step);
  ftmpi::abort_self();
}

int FtApp::solve_to(RankState& st, long target) {
  while (st.solver->steps_done() < target) {
    maybe_self_kill(st, st.solver->steps_done());
    // Detector notification: leave the solve loop for the detection point
    // as soon as a failure anywhere in the world is known locally, instead
    // of solving on until a collective on the broken communicator fails.
    if (cfg_.proactive_recovery && proactive_failure_pending(st)) {
      return ftmpi::kErrProcFailed;
    }
    const int rc = st.solver->step();
    if (rc != kSuccess) return rc;
    buddy_tick(st);
  }
  return kSuccess;
}

bool FtApp::proactive_failure_pending(RankState& st) {
  // Degraded (shrunken) worlds renumber ranks, so the rank->grid mapping
  // below no longer applies; leave detection to the reactive path there.
  if (!ftmpi::detector_enabled() || st.world.is_null() || st.degraded) return false;
  if (!ftmpi::detector_knows_failure_in(st.world)) return false;
  // Arm recovery while the pre-repair world is still in hand.  Work out
  // which grids presumably lost a member; when this rank's grid is a
  // likely recovery source for them, harvest in-flight buddy replicas now
  // (the world swap inside reconstruct() would orphan them).  The facts
  // here are *local beliefs* — the negotiated plan after the repair is
  // authoritative; pre-staging merely warms the sources it will pick from.
  std::set<int> presumed;
  for (const ftmpi::ProcId pid : ftmpi::detector_known_failed()) {
    const int wr = st.world.group().rank_of(pid);
    if (wr < 0) continue;
    const int g = layout_.grid_of_rank(wr);
    if (g >= 0) presumed.insert(g);
  }
  if (presumed.empty()) return false;  // e.g. a stale record from before a repair
  const std::vector<int> sources = ftr::rec::prestage_sources(
      layout_.slots, planner_mode(), std::vector<int>(presumed.begin(), presumed.end()));
  if (std::find(sources.begin(), sources.end(), st.grid) != sources.end()) {
    drain_buddies(st);
    ftmpi::runtime().add(keys::kProactivePrestaged, 1.0);
  }
  ftmpi::runtime().add(keys::kProactiveExits, 1.0);
  FTR_DEBUG("ft_app: rank %d leaves the solve loop proactively (%d grid(s) presumed lost)",
            st.wrank, static_cast<int>(presumed.size()));
  return true;
}

// --- main flow ---------------------------------------------------------------

void FtApp::entry(const std::vector<std::string>& argv) {
  RankState st{Reconstructor{{cfg_.app_name, argv}}};
  const bool is_child = !ftmpi::get_parent().is_null();
  if (is_child) {
    const auto res = st.recon.reconstruct({});
    st.world = res.comm;
  } else {
    st.world = ftmpi::world();
  }
  st.wrank = st.world.rank();
  st.grid = layout_.grid_of_rank(st.wrank);
  st.btopo = make_buddy_topology(layout_, ftmpi::runtime().slots_per_host());
  st.dt = ftr::advection::stable_timestep(cfg_.layout.scheme.n, cfg_.problem, cfg_.cfl);

  long resume_interval = 0;
  if (is_child) {
    // The broadcast inside post_repair tells us which interval to resume at.
    post_repair(st, /*interval_index=*/-1, /*is_child=*/true);
    resume_interval = st.bcast_interval + 1;
  } else {
    int rc = ftmpi::comm_split(st.world, st.grid, st.wrank, &st.gcomm);
    if (rc != kSuccess) return;
    st.solver = std::make_unique<ParallelSolver>(layout_.slots[static_cast<size_t>(st.grid)].level,
                                                 cfg_.problem, st.dt, st.gcomm);
  }

  if (cfg_.layout.technique == Technique::CheckpointRestart) {
    run_checkpoint_restart_from(st, resume_interval);
  } else {
    if (is_child) {
      // End-phase repair already restored what this technique restores
      // before combination; fall through.
    } else {
      run_combination_technique(st);
    }
  }
  recovery_and_combine(st);
}

long FtApp::interval_target(long interval) const {
  const long c = std::max<long>(cfg_.checkpoints, 0);
  if (interval >= c) return cfg_.timesteps;
  return cfg_.timesteps * (interval + 1) / (c + 1);
}

void FtApp::run_checkpoint_restart_from(RankState& st, long start_interval) {
  const long c = cfg_.checkpoints;
  for (long i = start_interval; i <= c; ++i) {
    const long target = interval_target(i);
    int step_rc = kSuccess;
    if (st.solver) {  // idle (degraded) ranks skip straight to detection
      const double t0 = ftmpi::wtime();
      step_rc = solve_to(st, target);
      st.solve_time += ftmpi::wtime() - t0;
    }
    // ULFM practice: a rank that observed the failure revokes the group
    // communicator so group mates blocked in halo exchange learn of it and
    // reach the detection point too (otherwise they would wait forever on a
    // survivor that has already left the solve loop).
    if (step_rc != kSuccess && !st.gcomm.is_null()) {
      ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.cr.revoke");
    }

    // Detection is tested before the checkpoint write (paper Sec. III).
    const auto res = st.recon.reconstruct(st.world);
    if (res.repaired) {
      // Harvest in-flight buddy replicas while the pre-repair world is
      // still in hand: reconstruct() only returns once every survivor has
      // entered it, so all pre-repair replication sends are buffered by
      // now — and the world swap would orphan them.
      drain_buddies(st);
      if (!adopt_reconstruction(st, res)) return;
      post_repair(st, i, /*is_child=*/false);
      // The failed grid restarted from the recent checkpoint instead of
      // writing a new one (paper); no write this interval.
      continue;
    }
    if (res.exhausted) return;  // budget spent without a usable world
    if (i == c) break;  // final interval has no checkpoint write
    const double tw = ftmpi::wtime();
    if (st.solver) {
      store_->write(st.grid, st.gcomm.rank(), st.solver->steps_done(),
                    pack_interior(st.solver->field()));
    }
    // A chaos kill inside the write surfaces here (or at the next solve);
    // the next detection point repairs and the grid rolls back, so a failed
    // barrier is tolerated rather than acted on.
    ftr::observe_error(ftmpi::barrier(st.world), "ft_app.ckpt.barrier");
    if (st.wrank == 0) st.ckpt_write_total += ftmpi::wtime() - tw;
  }
}

void FtApp::run_combination_technique(RankState& st) {
  const double t0 = ftmpi::wtime();
  const int step_rc = solve_to(st, cfg_.timesteps);
  st.solve_time += ftmpi::wtime() - t0;
  // Revoke the group communicator on error so blocked group mates also
  // reach the detection point (see run_checkpoint_restart_from).
  if (step_rc != kSuccess && !st.gcomm.is_null()) {
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.ct.revoke");
  }

  // Single detection point at the end, before the combination (paper).
  const auto res = st.recon.reconstruct(st.world);
  if (res.repaired) {
    // Harvest in-flight buddy replicas while the pre-repair world is still
    // in hand (see run_checkpoint_restart_from).
    drain_buddies(st);
    if (!adopt_reconstruction(st, res)) return;
    post_repair(st, cfg_.checkpoints /* => target = timesteps */, /*is_child=*/false);
  }
}

bool FtApp::adopt_reconstruction(RankState& st, const ReconstructResult& res) {
  if (res.exhausted) {
    FTR_ERROR("ft_app: reconstruction exhausted its budget (rank %d); stopping", st.wrank);
    return false;
  }
  st.world = res.comm;
  // Failed ranks reported from an already-degraded world are compacted
  // ranks; translate back to original ranks before any layout bookkeeping.
  std::vector<int> orig_failed = res.failed_ranks;
  if (st.degraded) {
    for (int& r : orig_failed) r = st.dview.original_rank_of(r);
  }
  st.last_failed_ranks = orig_failed;
  for (int r : orig_failed) st.failed_union.insert(r);
  if (res.mode == RecoveryMode::Degraded) st.degraded = true;
  if (st.degraded) {
    // Degradation is sticky: it only triggers when the cluster has no free
    // slots, and failed hosts never come back, so later failures degrade
    // further rather than repairing.
    st.dview = build_degraded_view(
        layout_, std::vector<int>(st.failed_union.begin(), st.failed_union.end()));
    for (int g : st.dview.lost_grids) st.real_lost_grids.insert(g);
  }
  if (st.wrank == 0) {
    ++st.repairs;
    st.recon_attempts += res.attempts;
    accumulate_timings(st, res.timings);
  }
  return true;
}

void FtApp::accumulate_timings(RankState& st, const ReconstructTimings& t) {
  st.recon_sum.total += t.total;
  st.recon_sum.failed_list += t.failed_list;
  st.recon_sum.revoke += t.revoke;
  st.recon_sum.shrink += t.shrink;
  st.recon_sum.spawn += t.spawn;
  st.recon_sum.agree += t.agree;
  st.recon_sum.merge += t.merge;
  st.recon_sum.split += t.split;
}

void FtApp::post_repair(RankState& st, long interval, bool is_child) {
  // 1. Run-state broadcast so respawned children can fast-forward:
  //    [interval, #lost, lost grid ids...].
  long header[2] = {interval, 0};
  std::vector<long> lost_ids;
  if (st.wrank == 0) {
    const auto lost = layout_.grids_of_ranks(st.last_failed_ranks);
    lost_ids.assign(lost.begin(), lost.end());
    header[1] = static_cast<long>(lost_ids.size());
  }
  int brc = ftmpi::bcast(header, 2, 0, st.world);
  if (brc != kSuccess) {
    // A failure inside the run-state broadcast means the repaired world is
    // already broken again; bail and let the next detection point replan
    // rather than fast-forwarding from a garbage header.
    FTR_WARN("ft_app: post-repair state bcast failed (%s)", ftmpi::error_string(brc));
    return;
  }
  lost_ids.resize(static_cast<size_t>(header[1]));
  if (header[1] > 0) {
    brc = ftmpi::bcast(lost_ids.data(), static_cast<int>(lost_ids.size()), 0, st.world);
    if (brc != kSuccess) {
      FTR_WARN("ft_app: post-repair lost-id bcast failed (%s)", ftmpi::error_string(brc));
      return;
    }
  }
  st.bcast_interval = header[0];
  for (long id : lost_ids) st.real_lost_grids.insert(static_cast<int>(id));

  // 2. Rebuild the per-grid communicators over the repaired world; ranks
  //    are unchanged, so the same split reproduces the original groups.
  //    Degraded mode: grids that lost a member stay lost — their surviving
  //    ranks idle (undefined color, no solver) but keep joining world
  //    collectives; complete grids keep their exact groups.
  const bool my_grid_lost = st.degraded && st.dview.grid_lost(st.grid);
  const int color = my_grid_lost ? ftmpi::kUndefinedColor : st.grid;
  int rc = ftmpi::comm_split(st.world, color, st.wrank, &st.gcomm);
  if (rc != kSuccess) {
    FTR_ERROR("ft_app: grid comm rebuild failed (%s)", ftmpi::error_string(rc));
    return;
  }
  if (my_grid_lost) {
    if (st.solver) {
      FTR_WARN("ft_app: rank %d idles — grid %d lost a member in degraded mode", st.wrank,
               st.grid);
    }
    st.solver.reset();
  } else if (is_child || !st.solver) {
    st.solver = std::make_unique<ParallelSolver>(
        layout_.slots[static_cast<size_t>(st.grid)].level, cfg_.problem, st.dt, st.gcomm);
  } else {
    st.solver->set_comm(st.gcomm);
  }

  // 2b. Proactive exits can leave grids *untouched* by the failure short of
  //     the target they were solving to (a rank leaves as soon as gossip
  //     reaches it), and — because gossip lands at different times — with
  //     members at *different* step counts.  Catch up before the
  //     restoration below: RC transfers read the partner grid at `target`,
  //     so the reactive-path invariant (every complete grid is at `target`
  //     when restoration starts) must be re-established.  Group-local: only
  //     this grid's communicator is involved, and the world barrier below
  //     resynchronizes everyone.
  if (cfg_.proactive_recovery && st.solver && !is_child &&
      std::find(lost_ids.begin(), lost_ids.end(), static_cast<long>(st.grid)) ==
          lost_ids.end()) {
    const long target = interval_target(header[0]);
    // Two ways the group's state can be unusable for plain catch-up
    // stepping: members at different step counts (halo generations no
    // longer pair), or a member whose last step was torn mid-sweep by the
    // revoke (steps_done alone cannot see that).  Either condition is
    // group-fatal, so it is agreed by reduction.
    int mine[2] = {static_cast<int>(st.solver->steps_done()),
                   st.solver->torn() ? 1 : 0};
    int lo = mine[0], hi_torn[2] = {mine[0], mine[1]};
    int arc = ftmpi::allreduce(&mine[0], &lo, 1, ftmpi::ReduceOp::Min, st.gcomm);
    if (arc == kSuccess) {
      arc = ftmpi::allreduce(mine, hi_torn, 2, ftmpi::ReduceOp::Max, st.gcomm);
    }
    if (arc != kSuccess) {
      // A fresh failure during catch-up: tolerated, the next detection
      // point replans (same idiom as the restoration paths below).
      ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.proactive.revoke");
    } else if (lo != hi_torn[0] || hi_torn[1] != 0) {
      // The group rolls back to its most recent group-consistent snapshot
      // (or the initial condition) and recomputes, exactly like a failed
      // grid.
      cr_restore(st, std::vector<int>{st.grid}, target);
    } else if (lo < target) {
      const int crc = solve_to(st, target);
      if (crc != kSuccess) {
        ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.proactive.revoke");
      }
    }
  }

  // 3. Planner-driven restoration of the really-lost grids, timed as a
  //    barrier-delimited window on rank 0's (synchronized) virtual clock.
  //    Degraded grids have no complete group to restore onto; the planner
  //    marks them Gcp/Idle and the GCP combination absorbs them, while
  //    every rank still runs the delimiting barriers.
  std::vector<int> lost(lost_ids.begin(), lost_ids.end());
  ftr::observe_error(ftmpi::barrier(st.world), "ft_app.recovery.barrier");
  const double t0 = ftmpi::wtime();
  restore_lost_grids(st, lost, interval_target(header[0]),
                     /*charge_gcp_coeffs=*/planner_mode() == ftr::rec::PlannerMode::Lattice);
  ftr::observe_error(ftmpi::barrier(st.world), "ft_app.recovery.barrier");
  if (st.wrank == 0) st.recovery_time += ftmpi::wtime() - t0;
}

void FtApp::cr_restore(RankState& st, const std::vector<int>& lost, long target) {
  if (!st.solver) return;  // idle (degraded) ranks have nothing to restore
  if (std::find(lost.begin(), lost.end(), st.grid) == lost.end()) return;
  // The whole group of a failed grid rolls back to its most recent
  // checkpoint (survivors' local updates are unusable, paper Sec. II-D)
  // and recomputes the lost timesteps.  "Most recent" must be *group
  // consistent*: a member that died during its write, or whose newest
  // snapshot failed CRC validation, only has an older generation, so the
  // group agrees on the minimum available step and everyone restores that
  // generation.  If any member cannot produce it, the whole group restarts
  // from the initial condition (full recompute).
  auto snap = store_->read_latest(st.grid, st.gcomm.rank());
  int my_step = snap.has_value() ? static_cast<int>(snap->step) : -1;
  int group_step = my_step;
  int rc = ftmpi::allreduce(&my_step, &group_step, 1, ftmpi::ReduceOp::Min, st.gcomm);
  if (rc != kSuccess) {
    // Next detection point repairs.
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.cr.revoke");
    return;
  }
  if (group_step >= 0 && snap.has_value() && snap->step != group_step) {
    snap = store_->read_at(st.grid, st.gcomm.rank(), group_step);
  }
  int have = (group_step >= 0 && snap.has_value() && snap->step == group_step) ? 1 : 0;
  int all_have = have;
  rc = ftmpi::allreduce(&have, &all_have, 1, ftmpi::ReduceOp::Min, st.gcomm);
  if (rc != kSuccess) {
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.cr.revoke");
    return;
  }
  if (all_have == 1) {
    unpack_interior(snap->data, st.solver->field());
    st.solver->set_steps_done(snap->step);
  } else {
    st.solver->fill_local([this](double x, double y) { return cfg_.problem.initial(x, y); });
    st.solver->set_steps_done(0);
  }
  const int solve_rc = solve_to(st, target);
  if (solve_rc != kSuccess) {
    FTR_WARN("ft_app: failure during CR recompute (rank %d)", st.wrank);
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.cr.revoke");
  }
}

void FtApp::rc_restore_one(RankState& st, int lost_id, int partner, long target) {
  // One RC transfer: exact copy from the duplicate for diagonal grids,
  // resampling from the finer diagonal for lower-diagonal grids.  Only the
  // partner group and the lost group take part; the partner group is at
  // `target` steps, so the restored grid resumes there.
  if (partner < 0 || partner >= static_cast<int>(layout_.slots.size())) {
    FTR_ERROR("ft_app: lost grid %d has no usable RC partner", lost_id);
    return;
  }
  if (!st.solver) return;  // idle (degraded) ranks take no part
  const Level p_level = layout_.slots[static_cast<size_t>(partner)].level;
  if (st.grid == partner) {
    Grid2D full;
    if (st.solver->gather_full(&full) != kSuccess) return;
    if (st.gcomm.rank() == 0) {
      // A failed ship means the lost-grid root died again; its group revokes
      // and the next detection point replans, so the send error is tolerated.
      ftr::observe_error(
          ftmpi::send(full.data().data(), static_cast<int>(full.data().size()),
                      layout_.root_rank_of_grid(lost_id), kTagPartner + lost_id, st.world),
          "ft_app.rc.ship");
    }
  }
  if (st.grid == lost_id) {
    Grid2D recovered;
    if (st.gcomm.rank() == 0) {
      Grid2D partner_grid(p_level);
      const int rrc =
          ftmpi::recv(partner_grid.data().data(), static_cast<int>(partner_grid.data().size()),
                      layout_.root_rank_of_grid(partner), kTagPartner + lost_id, st.world);
      if (rrc != kSuccess) {
        // Dead partner root: revoke so the next detection point replans;
        // proceed with the zeroed grid to keep the group's scatter uniform.
        FTR_WARN("ft_app: RC fetch for grid %d failed (%s)", lost_id, ftmpi::error_string(rrc));
        ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.rc.revoke");
      }
      auto rec = ftr::rec::rc_recover(layout_.slots, lost_id, partner_grid);
      if (rec.has_value()) {
        recovered = std::move(*rec);
      } else {
        // Unreachable when the planner built the pair; keep the group
        // consistent (zero data) instead of crashing.
        FTR_ERROR("ft_app: RC recovery of grid %d from %d failed", lost_id, partner);
        recovered = Grid2D(layout_.slots[static_cast<size_t>(lost_id)].level);
      }
    }
    st.solver->scatter_full(recovered);
    st.solver->set_steps_done(target);
  }
}

void FtApp::buddy_restore_one(RankState& st, int grid, long step, long target) {
  const auto& topo = st.btopo;
  if (grid < 0 || grid >= topo.num_grids()) return;
  // Holders ship first (eager sends complete immediately, so send-then-
  // receive cannot deadlock); members receive, restore and recompute the
  // tail.  A holder whose generation vanished still sends — a count-0
  // marker — so the member never hangs on a message that will not come.
  const int first = topo.first_rank[static_cast<size_t>(grid)];
  const int nprocs = topo.procs_per_grid[static_cast<size_t>(grid)];
  for (int gr = 0; gr < nprocs; ++gr) {
    const int owner = first + gr;
    if (ftr::rec::buddy_rank_of(topo, owner) != st.wrank) continue;
    const auto rep = buddy_->read_at(ftmpi::self_pid(), grid, gr, step);
    if (!rep.has_value()) {
      FTR_WARN("ft_app: buddy replica of grid %d/%d step %ld unavailable on rank %d", grid,
               gr, step, st.wrank);
    }
    const auto buf = ftr::rec::pack_replica(
        grid, gr, step, rep.has_value() ? rep->data : std::vector<double>{});
    // A failed ship means the owner died again; its group revokes and the
    // next detection point replans, so the send error is tolerated here.
    ftr::observe_error(
        ftmpi::send_bytes(buf.data(), buf.size(), owner, ftr::rec::kTagBuddyFetch, st.world),
        "ft_app.buddy.ship");
  }
  if (st.grid != grid || !st.solver) return;
  const int holder = ftr::rec::buddy_rank_of(topo, st.wrank);
  const auto& blk = st.solver->field().block();
  const size_t cells = static_cast<size_t>(blk.cells());
  std::vector<std::byte> buf(5 * sizeof(long) + cells * sizeof(double));
  ftmpi::Status stat;
  const int rc = ftmpi::recv_bytes(buf.data(), buf.size(), holder, ftr::rec::kTagBuddyFetch,
                                   st.world, &stat);
  std::optional<ftr::rec::ReplicaMessage> msg;
  if (rc == kSuccess) msg = ftr::rec::unpack_replica(buf.data(), static_cast<size_t>(stat.count));
  if (!msg.has_value() || msg->step != step || msg->data.size() != cells) {
    // Dead holder, corrupt replica, or vanished generation: this grid cannot
    // come back through the buddy rung.  Revoke so group mates bail out of
    // the restore; the next detection point repairs and replans.
    FTR_WARN("ft_app: buddy fetch for grid %d failed on rank %d (%s)", grid, st.wrank,
             ftmpi::error_string(rc));
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.buddy.revoke");
    return;
  }
  unpack_interior(msg->data, st.solver->field());
  st.solver->set_steps_done(step);
  if (solve_to(st, target) != kSuccess) {
    FTR_WARN("ft_app: failure during buddy recompute (rank %d)", st.wrank);
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.buddy.revoke");
  }
}

void FtApp::buddy_tick(RankState& st) {
  if (cfg_.buddy_every <= 0 || st.degraded || !st.solver || st.gcomm.is_null()) return;
  const long s = st.solver->steps_done();
  if (s <= 0 || s >= cfg_.timesteps || s % cfg_.buddy_every != 0) return;
  const double t0 = ftmpi::wtime();
  // Drain replicas addressed to us first, then stream our block out.  The
  // nonblocking eager send charges only its injection overhead, so the
  // replication overlaps the next timesteps.
  ftr::rec::buddy_drain(*buddy_, st.world);
  const int brc = ftr::rec::buddy_send(st.btopo, st.world, st.grid, st.gcomm.rank(), s,
                                       pack_interior(st.solver->field()));
  if (brc != kSuccess) {
    // The replica did not land: the planner's buddy rung will see this
    // generation as unavailable at restore time, so surface it now.
    FTR_WARN("ft_app: buddy replication of grid %d step %ld failed on rank %d (%s)", st.grid,
             s, st.wrank, ftmpi::error_string(brc));
  }
  if (st.wrank == 0) st.buddy_repl_time += ftmpi::wtime() - t0;
}

void FtApp::drain_buddies(RankState& st) {
  if (cfg_.buddy_every <= 0 || st.degraded || st.world.is_null()) return;
  ftr::rec::buddy_drain(*buddy_, st.world);
}

void FtApp::restore_lost_grids(RankState& st, const std::vector<int>& lost, long target,
                               bool charge_gcp_coeffs) {
  std::set<int> lset(lost.begin(), lost.end());
  if (st.degraded) {
    for (int g : st.dview.lost_grids) lset.insert(g);
  }
  if (lset.empty()) return;
  const std::vector<int> all_lost(lset.begin(), lset.end());
  ftr::rec::RecoveryPlan plan;
  if (planner_mode() == ftr::rec::PlannerMode::Lattice) {
    plan = negotiate_plan(st, all_lost);
  } else {
    // The Force* plans are a pure function of uniformly-known facts, so
    // every rank computes the same plan locally — the legacy paths keep
    // their exact communication pattern, with no negotiation round.
    std::vector<ftr::rec::GridFacts> facts;
    for (int g : all_lost) {
      ftr::rec::GridFacts f;
      f.id = g;
      f.group_complete = !st.degraded || !st.dview.grid_lost(g);
      facts.push_back(f);
    }
    plan = ftr::rec::plan_recovery(layout_.slots, cfg_.layout.scheme, gcp_depth(),
                                   planner_mode(), facts,
                                   std::vector<int>(st.unrestored.begin(), st.unrestored.end()));
  }
  execute_plan(st, plan, target, charge_gcp_coeffs);
}

ftr::rec::RecoveryPlan FtApp::negotiate_plan(RankState& st, const std::vector<int>& lost) {
  // 1. Every rank reports the buddy generations it holds for members of the
  //    lost grids: records of 4 longs {grid, group rank, newest, prev}.
  const bool buddies = cfg_.buddy_every > 0 && !st.degraded;
  std::vector<long> mine;
  if (buddies) {
    ftr::rec::buddy_drain(*buddy_, st.world);
    for (int g : lost) {
      const int nprocs = st.btopo.procs_per_grid[static_cast<size_t>(g)];
      for (int gr = 0; gr < nprocs; ++gr) {
        const int owner = st.btopo.first_rank[static_cast<size_t>(g)] + gr;
        if (ftr::rec::buddy_rank_of(st.btopo, owner) != st.wrank) continue;
        const auto h = buddy_->holding(ftmpi::self_pid(), g, gr);
        if (h.newest < 0) continue;
        mine.push_back(g);
        mine.push_back(gr);
        mine.push_back(h.newest);
        mine.push_back(h.prev);
      }
    }
  }
  std::vector<std::vector<long>> parts;
  const int grc = ftmpi::gatherv(mine, &parts, 0, st.world);

  // 2. World rank 0 derives the facts and plans over the full lattice.
  std::vector<long> wire;  // [n, gcp_feasible, then 4 longs per entry]
  if (st.wrank == 0) {
    std::map<std::pair<int, int>, ftr::rec::BuddyStore::Holding> held;
    if (grc == kSuccess) {
      for (const auto& p : parts) {
        for (size_t i = 0; i + 3 < p.size(); i += 4) {
          held[{static_cast<int>(p[i]), static_cast<int>(p[i + 1])}] =
              ftr::rec::BuddyStore::Holding{p[i + 2], p[i + 3]};
        }
      }
    }
    std::vector<ftr::rec::GridFacts> facts;
    for (int g : lost) {
      ftr::rec::GridFacts f;
      f.id = g;
      f.group_complete = !st.degraded || !st.dview.grid_lost(g);
      if (buddies && f.group_complete) {
        // The buddy rung is on iff every member's block is held at a common
        // generation: the minimum of the newest steps, which the
        // two-generation store still has everywhere when ticks interleave.
        const int nprocs = st.btopo.procs_per_grid[static_cast<size_t>(g)];
        long common = std::numeric_limits<long>::max();
        bool all = nprocs > 0;
        for (int gr = 0; gr < nprocs && all; ++gr) {
          const auto it = held.find({g, gr});
          if (it == held.end()) {
            all = false;
          } else {
            common = std::min(common, it->second.newest);
          }
        }
        if (all && common > 0) {
          for (int gr = 0; gr < nprocs && all; ++gr) {
            const auto& h = held[{g, gr}];
            if (h.newest != common && h.prev != common) all = false;
          }
        } else {
          all = false;
        }
        if (all) {
          f.buddy_available = true;
          f.buddy_step = common;
        }
      }
      facts.push_back(f);
    }
    const auto planned = ftr::rec::plan_recovery(
        layout_.slots, cfg_.layout.scheme, gcp_depth(), ftr::rec::PlannerMode::Lattice, facts,
        std::vector<int>(st.unrestored.begin(), st.unrestored.end()));
    wire.push_back(static_cast<long>(planned.entries.size()));
    wire.push_back(planned.gcp_feasible ? 1 : 0);
    for (const auto& e : planned.entries) {
      wire.push_back(e.grid);
      wire.push_back(static_cast<long>(e.action));
      wire.push_back(e.step);
      wire.push_back(e.partner);
    }
  }

  // 3. Broadcast the agreed plan.  A failure mid-negotiation yields an
  //    empty plan; the next detection point repairs and replans.
  long hdr[2] = {0, 1};
  if (st.wrank == 0 && wire.size() >= 2) {
    hdr[0] = wire[0];
    hdr[1] = wire[1];
  }
  ftr::rec::RecoveryPlan plan;
  if (ftmpi::bcast(hdr, 2, 0, st.world) != kSuccess) return plan;
  std::vector<long> body(static_cast<size_t>(std::max<long>(hdr[0], 0)) * 4);
  if (st.wrank == 0 && !body.empty()) body.assign(wire.begin() + 2, wire.end());
  if (!body.empty() &&
      ftmpi::bcast(body.data(), static_cast<int>(body.size()), 0, st.world) != kSuccess) {
    return plan;
  }
  plan.gcp_feasible = hdr[1] != 0;
  for (size_t i = 0; i + 3 < body.size(); i += 4) {
    ftr::rec::PlanEntry e;
    e.grid = static_cast<int>(body[i]);
    e.action = static_cast<ftr::rec::RecoveryAction>(body[i + 1]);
    e.step = body[i + 2];
    e.partner = static_cast<int>(body[i + 3]);
    plan.entries.push_back(e);
  }
  return plan;
}

void FtApp::execute_plan(RankState& st, const ftr::rec::RecoveryPlan& plan, long target,
                         bool charge_gcp_coeffs) {
  using ftr::rec::RecoveryAction;
  const int ngrids = static_cast<int>(layout_.slots.size());
  // Entries are in ascending grid id on every rank, so the per-entry
  // transfers pair up without cross-entry deadlock (holders only post
  // eager sends; each group's blocking work is confined to its own entry).
  for (const auto& e : plan.entries) {
    if (e.grid < 0 || e.grid >= ngrids) continue;
    switch (e.action) {
      case RecoveryAction::RcCopy:
      case RecoveryAction::RcResample:
        rc_restore_one(st, e.grid, e.partner, target);
        break;
      case RecoveryAction::Buddy:
        buddy_restore_one(st, e.grid, e.step, target);
        break;
      case RecoveryAction::Disk:
        cr_restore(st, {e.grid}, target);
        break;
      case RecoveryAction::Gcp:
      case RecoveryAction::Idle:
        st.unrestored.insert(e.grid);
        break;
    }
  }
  if (st.wrank != 0) return;

  // Plan bookkeeping: per-action counts, the per-grid decision, and the
  // modeled volume of recovery-source data moved.
  ftmpi::Runtime& rt = ftmpi::runtime();
  const auto level_bytes = [](const Level& lv) {
    return 8.0 * static_cast<double>((1 << lv.x) + 1) * static_cast<double>((1 << lv.y) + 1);
  };
  bool any_gcp = false;
  for (const auto& e : plan.entries) {
    if (e.grid < 0 || e.grid >= ngrids) continue;
    rt.add(std::string(keys::kPlanPrefix) + ftr::rec::action_name(e.action), 1.0);
    rt.put(std::string(keys::kPlanPrefix) + "grid" + std::to_string(e.grid),
           static_cast<double>(e.action));
    switch (e.action) {
      case RecoveryAction::RcCopy:
      case RecoveryAction::RcResample:
        if (e.partner >= 0 && e.partner < ngrids) {
          st.recovery_bytes += level_bytes(layout_.slots[static_cast<size_t>(e.partner)].level);
        }
        break;
      case RecoveryAction::Buddy:
      case RecoveryAction::Disk:
        st.recovery_bytes += level_bytes(layout_.slots[static_cast<size_t>(e.grid)].level);
        break;
      case RecoveryAction::Gcp:
        any_gcp = true;
        break;
      case RecoveryAction::Idle:
        break;
    }
  }
  if (!plan.gcp_feasible) {
    FTR_WARN("ft_app: no GCP solution absorbs the unrestored grids; they idle");
  }
  const auto mode = planner_mode();
  if (charge_gcp_coeffs && any_gcp &&
      (mode == ftr::rec::PlannerMode::ForceAc || mode == ftr::rec::PlannerMode::Lattice)) {
    // The only recovery overhead of re-combination is deriving the GCP
    // coefficients (paper Sec. III-B); the sampling rides the compulsory
    // combination stage anyway.
    ftmpi::charge_flops(ftr::rec::ac_coefficient_flops(cfg_.layout.scheme, gcp_depth()));
  }
}

void FtApp::recovery_and_combine(RankState& st) {
  const Technique tech = cfg_.layout.technique;
  const auto& sim = cfg_.failures.simulated_lost_grids;

  // --- simulated-loss recovery (Figs. 9 and 10 mode) -----------------------
  if (!sim.empty()) {
    ftr::observe_error(ftmpi::barrier(st.world), "ft_app.sim.barrier");
    const double t0 = ftmpi::wtime();
    restore_lost_grids(st, sim, cfg_.timesteps, /*charge_gcp_coeffs=*/true);
    ftr::observe_error(ftmpi::barrier(st.world), "ft_app.sim.barrier");
    if (st.wrank == 0) st.recovery_time += ftmpi::wtime() - t0;
  }

  // --- combination ----------------------------------------------------------
  // The combination excludes exactly the grids no lattice rung restored
  // (st.unrestored, agreed through the plan): the classic combination when
  // everything came back, GCP coefficients around the remainder otherwise
  // (AC's deliberate choice, and every technique's shrink-mode fallback).
  const std::set<int> lost_now = st.unrestored;

  ftr::observe_error(ftmpi::barrier(st.world), "ft_app.combine.barrier");
  const double t_comb = ftmpi::wtime();
  std::map<int, Grid2D> rank0_grids;      // world rank 0 only
  std::map<int, Grid2D> rank0_recovered;  // world rank 0 only

  // Deterministic contributor set, computable by every rank.
  std::vector<Level> lost_levels;
  for (int id : lost_now) {
    lost_levels.push_back(layout_.slots[static_cast<size_t>(id)].level);
  }
  const ftr::comb::CoefficientProblem gcp(cfg_.layout.scheme,
                                          tech == Technique::AlternateCombination
                                              ? 1 + cfg_.layout.extra_layers
                                              : 1);
  const auto coeffs = gcp.solve(lost_levels);
  std::vector<std::pair<int, double>> contributors;  // grid id, coefficient
  if (coeffs.has_value()) {
    for (const auto& slot : layout_.slots) {
      if (slot.role == GridRole::Duplicate) continue;
      if (lost_now.count(slot.id) != 0) continue;
      const double c = coeffs->coefficient_of(slot.level);
      if (c != 0.0) contributors.emplace_back(slot.id, c);
    }
  } else if (st.wrank == 0) {
    FTR_ERROR("ft_app: loss pattern infeasible for the available layers");
  }

  // Grid groups gather their solution; roots ship it to world rank 0.
  for (const auto& [gid, coeff] : contributors) {
    (void)coeff;
    if (st.grid != gid) continue;
    Grid2D full;
    if (st.solver->gather_full(&full) != kSuccess) continue;
    if (st.gcomm.rank() == 0 && st.wrank != 0) {
      const int src_rc = ftmpi::send(full.data().data(), static_cast<int>(full.data().size()),
                                     0, kTagGridToRoot + gid, st.world);
      if (src_rc != kSuccess) {
        // World rank 0 gone this late means no combined report at all;
        // nothing useful to do beyond surfacing it.
        FTR_WARN("ft_app: combination ship of grid %d failed (%s)", gid,
                 ftmpi::error_string(src_rc));
      }
    } else if (st.wrank == 0) {
      rank0_grids[gid] = std::move(full);  // rank 0 is grid 0's root
    }
  }

  Grid2D combined;
  if (st.wrank == 0) {
    std::vector<ftr::comb::Component> parts;
    for (const auto& [gid, coeff] : contributors) {
      auto it = rank0_grids.find(gid);
      if (it == rank0_grids.end()) {
        Grid2D g(layout_.slots[static_cast<size_t>(gid)].level);
        // Degraded worlds are compacted: translate the grid root's original
        // rank to its shrunken-communicator rank.
        const int orig_root = layout_.root_rank_of_grid(gid);
        const int src = st.degraded ? st.dview.new_rank_of(orig_root) : orig_root;
        const int crc = ftmpi::recv(g.data().data(), static_cast<int>(g.data().size()), src,
                                    kTagGridToRoot + gid, st.world);
        if (crc != kSuccess) {
          // The contributor died after the last detection point; its slot
          // stays zeroed and the combination degrades rather than hangs.
          FTR_WARN("ft_app: combination input from grid %d missing (%s)", gid,
                   ftmpi::error_string(crc));
        }
        it = rank0_grids.emplace(gid, std::move(g)).first;
      }
      parts.push_back(ftr::comb::Component{&it->second, coeff});
    }
    combined = ftr::comb::combine_full(cfg_.layout.scheme, parts);
    // Charge the interpolation work of the combination.
    ftmpi::charge_flops(10.0 * static_cast<double>(combined.size()) *
                        static_cast<double>(parts.size()));
  }

  // AC: recovered data for the lost grids is a sample of the combined
  // solution; push it back onto the lost groups.  Degraded runs skip this:
  // the lost groups are incomplete (their survivors idle), so the recovered
  // data lives only in the combined solution.
  if (tech == Technique::AlternateCombination && cfg_.scatter_recovered && !st.degraded) {
    for (int gid : lost_now) {
      const Level lv = layout_.slots[static_cast<size_t>(gid)].level;
      if (st.wrank == 0) {
        Grid2D rec(lv);
        ftr::grid::interpolate(combined, rec);
        if (layout_.root_rank_of_grid(gid) == 0) {
          rank0_recovered[gid] = std::move(rec);
        } else {
          // Failed push-back: the lost group revokes on its matching recv
          // error and the next detection point replans.
          ftr::observe_error(
              ftmpi::send(rec.data().data(), static_cast<int>(rec.data().size()),
                          layout_.root_rank_of_grid(gid), kTagRecovered + gid, st.world),
              "ft_app.ac.scatter");
        }
      }
      if (st.grid == gid) {
        Grid2D rec(lv);
        if (st.gcomm.rank() == 0) {
          if (st.wrank == 0) {
            rec = std::move(rank0_recovered[gid]);
          } else {
            const int arc = ftmpi::recv(rec.data().data(), static_cast<int>(rec.data().size()),
                                        0, kTagRecovered + gid, st.world);
            if (arc != kSuccess) {
              // Keep the group's scatter uniform with zeroed data; the run is
              // ending, so there is no later detection point to lean on.
              FTR_WARN("ft_app: recovered-data fetch for grid %d failed (%s)", gid,
                       ftmpi::error_string(arc));
            }
          }
        }
        st.solver->scatter_full(rec);
        st.solver->set_steps_done(cfg_.timesteps);
      }
    }
  }

  ftr::observe_error(ftmpi::barrier(st.world), "ft_app.combine.barrier");

  // --- final report (rank 0) -------------------------------------------------
  if (st.wrank == 0) {
    ftmpi::Runtime& rt = ftmpi::runtime();
    rt.put(keys::kCombineTime, ftmpi::wtime() - t_comb);
    if (cfg_.measure_error && !combined.data().empty()) {
      const double t_final = static_cast<double>(cfg_.timesteps) * st.dt;
      const double err = ftr::grid::l1_error(combined, [&](double x, double y) {
        return cfg_.problem.exact(x, y, t_final);
      });
      rt.put(keys::kErrorL1, err);
    }
    rt.put(keys::kTotalTime, ftmpi::wtime());
    rt.put(keys::kSolveTime, st.solve_time);
    rt.put(keys::kProcs, static_cast<double>(layout_.total_procs));
    rt.put(keys::kRepairs, static_cast<double>(st.repairs));
    rt.put(keys::kReconTotal, st.recon_sum.total);
    rt.put(keys::kReconFailedList, st.recon_sum.failed_list);
    rt.put(keys::kReconShrink, st.recon_sum.shrink);
    rt.put(keys::kReconSpawn, st.recon_sum.spawn);
    rt.put(keys::kReconAgree, st.recon_sum.agree);
    rt.put(keys::kReconMerge, st.recon_sum.merge);
    rt.put(keys::kReconSplit, st.recon_sum.split);
    rt.put(keys::kRecoveryTime, st.recovery_time);
    rt.put(keys::kCkptWriteTotal, st.ckpt_write_total);
    rt.put(keys::kCkptWrites, static_cast<double>(store_->writes()));
    rt.put(keys::kReconMode,
           st.degraded ? 2.0 : (st.repairs > 0 ? 1.0 : 0.0));
    rt.put(keys::kReconAttempts, static_cast<double>(st.recon_attempts));
    rt.put(keys::kSurvivors, static_cast<double>(st.world.size()));
    rt.put(keys::kRecoveryBytes, st.recovery_bytes);
    rt.put(keys::kBuddyReplications, static_cast<double>(buddy_->replications()));
    rt.put(keys::kBuddyReplBytes, static_cast<double>(buddy_->replicated_bytes()));
    rt.put(keys::kBuddyReplTime, st.buddy_repl_time);
  }
}

}  // namespace ftr::core
