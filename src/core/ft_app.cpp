#include "core/ft_app.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "advection/serial_solver.hpp"
#include "combination/combine.hpp"
#include "common/logging.hpp"
#include "recovery/alternate.hpp"
#include "grid/sampling.hpp"
#include "recovery/replication.hpp"

namespace ftr::core {

using ftr::advection::ParallelSolver;
using ftr::comb::GridRole;
using ftr::comb::Technique;
using ftr::grid::Grid2D;
using ftr::grid::Level;
using ftmpi::Comm;
using ftmpi::kSuccess;

namespace {
constexpr int kTagGridToRoot = 300;   ///< grid root -> world rank 0 (combination)
constexpr int kTagRecovered = 400;    ///< world rank 0 -> lost grid root (AC scatter)
constexpr int kTagPartner = 500;      ///< partner root -> lost grid root (RC)
}  // namespace

struct FtApp::RankState {
  Comm world;
  Comm gcomm;
  int wrank = -1;
  int grid = -1;
  double dt = 0.0;
  std::unique_ptr<ParallelSolver> solver;
  Reconstructor recon;
  // Lost grids accumulated over all repairs (known to every rank via the
  // post-repair broadcast).
  std::set<int> real_lost_grids;
  std::vector<int> last_failed_ranks;  // survivors: from the last repair
  long bcast_interval = -1;            // interval index from the last post-repair broadcast
  // Shrink-mode degradation: once replacements cannot be placed, the run
  // continues on the shrunken world.  `wrank` keeps the ORIGINAL world rank
  // (layout identity); `dview` translates to the compacted ranks.  A rank
  // whose grid lost a member idles (no solver) until the final combination.
  bool degraded = false;
  DegradedView dview;
  std::set<int> failed_union;  // original ranks failed so far, all repairs
  // rank-0 metrics
  ReconstructTimings recon_sum{};
  int repairs = 0;
  int recon_attempts = 0;
  double recovery_time = 0.0;
  double ckpt_write_total = 0.0;
  double solve_time = 0.0;

  explicit RankState(Reconstructor r) : recon(std::move(r)) {}
};

FtApp::FtApp(AppConfig cfg) : cfg_(std::move(cfg)), layout_(build_layout(cfg_.layout)) {
  store_ = cfg_.checkpoint_dir.empty()
               ? std::make_shared<ftr::rec::CheckpointStore>()
               : std::make_shared<ftr::rec::CheckpointStore>(cfg_.checkpoint_dir);
}

int FtApp::launch(ftmpi::Runtime& rt) {
  rt.register_app(cfg_.app_name, [this](const std::vector<std::string>& argv) { entry(argv); });
  rt.clear_results();
  return rt.run(cfg_.app_name, layout_.total_procs);
}

// --- small helpers -----------------------------------------------------------

std::vector<double> FtApp::pack_interior(const ftr::grid::LocalField& f) const {
  const auto& b = f.block();
  std::vector<double> v(static_cast<size_t>(b.cells()));
  size_t k = 0;
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) v[k++] = f.at(lx, ly);
  }
  return v;
}

void FtApp::unpack_interior(const std::vector<double>& v, ftr::grid::LocalField& f) const {
  const auto& b = f.block();
  assert(v.size() == static_cast<size_t>(b.cells()));
  size_t k = 0;
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) f.at(lx, ly) = v[k++];
  }
}

void FtApp::maybe_self_kill(const RankState& st, long step) {
  // Whole-node failure: the first resident process whose step reaches the
  // planned time takes the node down (killing itself and its co-residents).
  if (!cfg_.failures.fail_host_at_step.empty()) {
    const int host = ftmpi::runtime().host_of(ftmpi::self_pid());
    const auto hit = cfg_.failures.fail_host_at_step.find(host);
    if (hit != cfg_.failures.fail_host_at_step.end() && step >= hit->second) {
      bool fire = false;
      {
        std::lock_guard<std::mutex> lock(kill_mu_);
        fire = fired_host_fails_.insert(host).second;
      }
      if (fire) {
        FTR_DEBUG("ft_app: node failure on host %d at step %ld", host, step);
        ftmpi::runtime().fail_host(host);  // marks us dead too
        throw ftmpi::ProcessKilled{ftmpi::self_pid()};
      }
    }
  }
  const auto it = cfg_.failures.kill_at_step.find(st.wrank);
  if (it == cfg_.failures.kill_at_step.end() || step < it->second) return;
  {
    std::lock_guard<std::mutex> lock(kill_mu_);
    if (fired_kills_.count(st.wrank) != 0) return;  // respawned replacement
    fired_kills_.insert(st.wrank);
  }
  FTR_DEBUG("ft_app: rank %d self-kills at step %ld", st.wrank, step);
  ftmpi::abort_self();
}

int FtApp::solve_to(RankState& st, long target) {
  while (st.solver->steps_done() < target) {
    maybe_self_kill(st, st.solver->steps_done());
    const int rc = st.solver->step();
    if (rc != kSuccess) return rc;
  }
  return kSuccess;
}

// --- main flow ---------------------------------------------------------------

void FtApp::entry(const std::vector<std::string>& argv) {
  RankState st{Reconstructor{{cfg_.app_name, argv}}};
  const bool is_child = !ftmpi::get_parent().is_null();
  if (is_child) {
    const auto res = st.recon.reconstruct({});
    st.world = res.comm;
  } else {
    st.world = ftmpi::world();
  }
  st.wrank = st.world.rank();
  st.grid = layout_.grid_of_rank(st.wrank);
  st.dt = ftr::advection::stable_timestep(cfg_.layout.scheme.n, cfg_.problem, cfg_.cfl);

  long resume_interval = 0;
  if (is_child) {
    // The broadcast inside post_repair tells us which interval to resume at.
    post_repair(st, /*interval_index=*/-1, /*is_child=*/true);
    resume_interval = st.bcast_interval + 1;
  } else {
    int rc = ftmpi::comm_split(st.world, st.grid, st.wrank, &st.gcomm);
    if (rc != kSuccess) return;
    st.solver = std::make_unique<ParallelSolver>(layout_.slots[static_cast<size_t>(st.grid)].level,
                                                 cfg_.problem, st.dt, st.gcomm);
  }

  if (cfg_.layout.technique == Technique::CheckpointRestart) {
    run_checkpoint_restart_from(st, resume_interval);
  } else {
    if (is_child) {
      // End-phase repair already restored what this technique restores
      // before combination; fall through.
    } else {
      run_combination_technique(st);
    }
  }
  recovery_and_combine(st);
}

long FtApp::interval_target(long interval) const {
  const long c = std::max<long>(cfg_.checkpoints, 0);
  if (interval >= c) return cfg_.timesteps;
  return cfg_.timesteps * (interval + 1) / (c + 1);
}

void FtApp::run_checkpoint_restart_from(RankState& st, long start_interval) {
  const long c = cfg_.checkpoints;
  for (long i = start_interval; i <= c; ++i) {
    const long target = interval_target(i);
    int step_rc = kSuccess;
    if (st.solver) {  // idle (degraded) ranks skip straight to detection
      const double t0 = ftmpi::wtime();
      step_rc = solve_to(st, target);
      st.solve_time += ftmpi::wtime() - t0;
    }
    // ULFM practice: a rank that observed the failure revokes the group
    // communicator so group mates blocked in halo exchange learn of it and
    // reach the detection point too (otherwise they would wait forever on a
    // survivor that has already left the solve loop).
    if (step_rc != kSuccess && !st.gcomm.is_null()) ftmpi::comm_revoke(st.gcomm);

    // Detection is tested before the checkpoint write (paper Sec. III).
    const auto res = st.recon.reconstruct(st.world);
    if (res.repaired) {
      if (!adopt_reconstruction(st, res)) return;
      post_repair(st, i, /*is_child=*/false);
      // The failed grid restarted from the recent checkpoint instead of
      // writing a new one (paper); no write this interval.
      continue;
    }
    if (res.exhausted) return;  // budget spent without a usable world
    if (i == c) break;  // final interval has no checkpoint write
    const double tw = ftmpi::wtime();
    if (st.solver) {
      store_->write(st.grid, st.gcomm.rank(), st.solver->steps_done(),
                    pack_interior(st.solver->field()));
    }
    // A chaos kill inside the write surfaces here (or at the next solve);
    // the next detection point repairs and the grid rolls back.
    ftmpi::barrier(st.world);
    if (st.wrank == 0) st.ckpt_write_total += ftmpi::wtime() - tw;
  }
}

void FtApp::run_combination_technique(RankState& st) {
  const double t0 = ftmpi::wtime();
  const int step_rc = solve_to(st, cfg_.timesteps);
  st.solve_time += ftmpi::wtime() - t0;
  // Revoke the group communicator on error so blocked group mates also
  // reach the detection point (see run_checkpoint_restart_from).
  if (step_rc != kSuccess && !st.gcomm.is_null()) ftmpi::comm_revoke(st.gcomm);

  // Single detection point at the end, before the combination (paper).
  const auto res = st.recon.reconstruct(st.world);
  if (res.repaired) {
    if (!adopt_reconstruction(st, res)) return;
    post_repair(st, cfg_.checkpoints /* => target = timesteps */, /*is_child=*/false);
  }
}

bool FtApp::adopt_reconstruction(RankState& st, const ReconstructResult& res) {
  if (res.exhausted) {
    FTR_ERROR("ft_app: reconstruction exhausted its budget (rank %d); stopping", st.wrank);
    return false;
  }
  st.world = res.comm;
  // Failed ranks reported from an already-degraded world are compacted
  // ranks; translate back to original ranks before any layout bookkeeping.
  std::vector<int> orig_failed = res.failed_ranks;
  if (st.degraded) {
    for (int& r : orig_failed) r = st.dview.original_rank_of(r);
  }
  st.last_failed_ranks = orig_failed;
  for (int r : orig_failed) st.failed_union.insert(r);
  if (res.mode == RecoveryMode::Degraded) st.degraded = true;
  if (st.degraded) {
    // Degradation is sticky: it only triggers when the cluster has no free
    // slots, and failed hosts never come back, so later failures degrade
    // further rather than repairing.
    st.dview = build_degraded_view(
        layout_, std::vector<int>(st.failed_union.begin(), st.failed_union.end()));
    for (int g : st.dview.lost_grids) st.real_lost_grids.insert(g);
  }
  if (st.wrank == 0) {
    ++st.repairs;
    st.recon_attempts += res.attempts;
    accumulate_timings(st, res.timings);
  }
  return true;
}

void FtApp::accumulate_timings(RankState& st, const ReconstructTimings& t) {
  st.recon_sum.total += t.total;
  st.recon_sum.failed_list += t.failed_list;
  st.recon_sum.revoke += t.revoke;
  st.recon_sum.shrink += t.shrink;
  st.recon_sum.spawn += t.spawn;
  st.recon_sum.agree += t.agree;
  st.recon_sum.merge += t.merge;
  st.recon_sum.split += t.split;
}

void FtApp::post_repair(RankState& st, long interval, bool is_child) {
  // 1. Run-state broadcast so respawned children can fast-forward:
  //    [interval, #lost, lost grid ids...].
  long header[2] = {interval, 0};
  std::vector<long> lost_ids;
  if (st.wrank == 0) {
    const auto lost = layout_.grids_of_ranks(st.last_failed_ranks);
    lost_ids.assign(lost.begin(), lost.end());
    header[1] = static_cast<long>(lost_ids.size());
  }
  ftmpi::bcast(header, 2, 0, st.world);
  lost_ids.resize(static_cast<size_t>(header[1]));
  if (header[1] > 0) {
    ftmpi::bcast(lost_ids.data(), static_cast<int>(lost_ids.size()), 0, st.world);
  }
  st.bcast_interval = header[0];
  for (long id : lost_ids) st.real_lost_grids.insert(static_cast<int>(id));

  // 2. Rebuild the per-grid communicators over the repaired world; ranks
  //    are unchanged, so the same split reproduces the original groups.
  //    Degraded mode: grids that lost a member stay lost — their surviving
  //    ranks idle (undefined color, no solver) but keep joining world
  //    collectives; complete grids keep their exact groups.
  const bool my_grid_lost = st.degraded && st.dview.grid_lost(st.grid);
  const int color = my_grid_lost ? ftmpi::kUndefinedColor : st.grid;
  int rc = ftmpi::comm_split(st.world, color, st.wrank, &st.gcomm);
  if (rc != kSuccess) {
    FTR_ERROR("ft_app: grid comm rebuild failed (%s)", ftmpi::error_string(rc));
    return;
  }
  if (my_grid_lost) {
    if (st.solver) {
      FTR_WARN("ft_app: rank %d idles — grid %d lost a member in degraded mode", st.wrank,
               st.grid);
    }
    st.solver.reset();
  } else if (is_child || !st.solver) {
    st.solver = std::make_unique<ParallelSolver>(
        layout_.slots[static_cast<size_t>(st.grid)].level, cfg_.problem, st.dt, st.gcomm);
  } else {
    st.solver->set_comm(st.gcomm);
  }

  // 3. Technique-specific restoration of the really-lost grids, timed as a
  //    barrier-delimited window on rank 0's (synchronized) virtual clock.
  //    Degraded mode defers all recovery to the GCP combination (there is
  //    no complete group to restore onto), but every rank still runs the
  //    delimiting barriers.
  std::vector<int> lost(lost_ids.begin(), lost_ids.end());
  ftmpi::barrier(st.world);
  const double t0 = ftmpi::wtime();
  if (!st.degraded) {
    switch (cfg_.layout.technique) {
      case Technique::CheckpointRestart:
        cr_restore(st, lost, interval_target(header[0]));
        break;
      case Technique::ResamplingCopying:
        rc_restore(st, lost);
        break;
      case Technique::AlternateCombination:
        // Recovery happens at the combination (coefficients + sampling).
        break;
    }
  }
  ftmpi::barrier(st.world);
  if (st.wrank == 0) st.recovery_time += ftmpi::wtime() - t0;
}

void FtApp::cr_restore(RankState& st, const std::vector<int>& lost, long target) {
  if (!st.solver) return;  // idle (degraded) ranks have nothing to restore
  if (std::find(lost.begin(), lost.end(), st.grid) == lost.end()) return;
  // The whole group of a failed grid rolls back to its most recent
  // checkpoint (survivors' local updates are unusable, paper Sec. II-D)
  // and recomputes the lost timesteps.  "Most recent" must be *group
  // consistent*: a member that died during its write, or whose newest
  // snapshot failed CRC validation, only has an older generation, so the
  // group agrees on the minimum available step and everyone restores that
  // generation.  If any member cannot produce it, the whole group restarts
  // from the initial condition (full recompute).
  auto snap = store_->read_latest(st.grid, st.gcomm.rank());
  int my_step = snap.has_value() ? static_cast<int>(snap->step) : -1;
  int group_step = my_step;
  int rc = ftmpi::allreduce(&my_step, &group_step, 1, ftmpi::ReduceOp::Min, st.gcomm);
  if (rc != kSuccess) {
    ftmpi::comm_revoke(st.gcomm);  // next detection point repairs
    return;
  }
  if (group_step >= 0 && snap.has_value() && snap->step != group_step) {
    snap = store_->read_at(st.grid, st.gcomm.rank(), group_step);
  }
  int have = (group_step >= 0 && snap.has_value() && snap->step == group_step) ? 1 : 0;
  int all_have = have;
  rc = ftmpi::allreduce(&have, &all_have, 1, ftmpi::ReduceOp::Min, st.gcomm);
  if (rc != kSuccess) {
    ftmpi::comm_revoke(st.gcomm);
    return;
  }
  if (all_have == 1) {
    unpack_interior(snap->data, st.solver->field());
    st.solver->set_steps_done(snap->step);
  } else {
    st.solver->fill_local([this](double x, double y) { return cfg_.problem.initial(x, y); });
    st.solver->set_steps_done(0);
  }
  const int solve_rc = solve_to(st, target);
  if (solve_rc != kSuccess) {
    FTR_WARN("ft_app: failure during CR recompute (rank %d)", st.wrank);
    ftmpi::comm_revoke(st.gcomm);
  }
}

void FtApp::rc_restore(RankState& st, const std::vector<int>& lost) {
  // Each lost grid is restored from its partner: exact copy from the
  // duplicate for diagonal grids, resampling from the finer diagonal for
  // lower-diagonal grids.  Every rank walks the same lost list; only the
  // partner group and the lost group take part in each transfer.
  for (int lost_id : lost) {
    const auto partner = ftr::rec::rc_partner(layout_.slots, lost_id);
    if (!partner.has_value()) {
      FTR_ERROR("ft_app: lost grid %d has no RC partner", lost_id);
      continue;
    }
    const int p = *partner;
    const Level p_level = layout_.slots[static_cast<size_t>(p)].level;
    if (!st.solver) continue;  // idle (degraded) ranks take no part
    if (st.grid == p) {
      Grid2D full;
      if (st.solver->gather_full(&full) != kSuccess) continue;
      if (st.gcomm.rank() == 0) {
        ftmpi::send(full.data().data(), static_cast<int>(full.data().size()),
                    layout_.root_rank_of_grid(lost_id), kTagPartner + lost_id, st.world);
      }
    }
    if (st.grid == lost_id) {
      Grid2D recovered;
      if (st.gcomm.rank() == 0) {
        Grid2D partner_grid(p_level);
        ftmpi::recv(partner_grid.data().data(), static_cast<int>(partner_grid.data().size()),
                    layout_.root_rank_of_grid(p), kTagPartner + lost_id, st.world);
        recovered = ftr::rec::rc_recover(layout_.slots, lost_id, partner_grid);
      }
      st.solver->scatter_full(recovered);
      st.solver->set_steps_done(cfg_.timesteps);
    }
  }
}

void FtApp::recovery_and_combine(RankState& st) {
  const Technique tech = cfg_.layout.technique;
  const auto& sim = cfg_.failures.simulated_lost_grids;

  // --- simulated-loss recovery (Figs. 9 and 10 mode) -----------------------
  if (!sim.empty()) {
    ftmpi::barrier(st.world);
    const double t0 = ftmpi::wtime();
    switch (tech) {
      case Technique::CheckpointRestart:
        cr_restore(st, sim, cfg_.timesteps);
        break;
      case Technique::ResamplingCopying:
        rc_restore(st, sim);
        break;
      case Technique::AlternateCombination:
        // The only recovery overhead of AC is deriving the new combination
        // coefficients (the sampling happens during the compulsory
        // combination stage anyway, paper Sec. III-B).
        if (st.wrank == 0) {
          ftmpi::charge_flops(ftr::rec::ac_coefficient_flops(
              cfg_.layout.scheme, 1 + cfg_.layout.extra_layers));
        }
        break;
    }
    ftmpi::barrier(st.world);
    if (st.wrank == 0) st.recovery_time += ftmpi::wtime() - t0;
  }

  // --- combination ----------------------------------------------------------
  // AC combines around the still-lost grids with GCP coefficients; CR and
  // RC have restored every grid, so the classic combination applies.  In
  // degraded (shrink-mode) runs nothing could be restored, so every
  // technique combines around its lost grids the AC way.
  std::set<int> lost_now;
  if (tech == Technique::AlternateCombination || st.degraded) {
    lost_now = st.real_lost_grids;
    for (int id : sim) lost_now.insert(id);
  }

  ftmpi::barrier(st.world);
  const double t_comb = ftmpi::wtime();
  std::map<int, Grid2D> rank0_grids;      // world rank 0 only
  std::map<int, Grid2D> rank0_recovered;  // world rank 0 only

  // Deterministic contributor set, computable by every rank.
  std::vector<Level> lost_levels;
  for (int id : lost_now) {
    lost_levels.push_back(layout_.slots[static_cast<size_t>(id)].level);
  }
  const ftr::comb::CoefficientProblem gcp(cfg_.layout.scheme,
                                          tech == Technique::AlternateCombination
                                              ? 1 + cfg_.layout.extra_layers
                                              : 1);
  const auto coeffs = gcp.solve(lost_levels);
  std::vector<std::pair<int, double>> contributors;  // grid id, coefficient
  if (coeffs.has_value()) {
    for (const auto& slot : layout_.slots) {
      if (slot.role == GridRole::Duplicate) continue;
      if (lost_now.count(slot.id) != 0) continue;
      const double c = coeffs->coefficient_of(slot.level);
      if (c != 0.0) contributors.emplace_back(slot.id, c);
    }
  } else if (st.wrank == 0) {
    FTR_ERROR("ft_app: loss pattern infeasible for the available layers");
  }

  // Grid groups gather their solution; roots ship it to world rank 0.
  for (const auto& [gid, coeff] : contributors) {
    (void)coeff;
    if (st.grid != gid) continue;
    Grid2D full;
    if (st.solver->gather_full(&full) != kSuccess) continue;
    if (st.gcomm.rank() == 0 && st.wrank != 0) {
      ftmpi::send(full.data().data(), static_cast<int>(full.data().size()), 0,
                  kTagGridToRoot + gid, st.world);
    } else if (st.wrank == 0) {
      rank0_grids[gid] = std::move(full);  // rank 0 is grid 0's root
    }
  }

  Grid2D combined;
  if (st.wrank == 0) {
    std::vector<ftr::comb::Component> parts;
    for (const auto& [gid, coeff] : contributors) {
      auto it = rank0_grids.find(gid);
      if (it == rank0_grids.end()) {
        Grid2D g(layout_.slots[static_cast<size_t>(gid)].level);
        // Degraded worlds are compacted: translate the grid root's original
        // rank to its shrunken-communicator rank.
        const int orig_root = layout_.root_rank_of_grid(gid);
        const int src = st.degraded ? st.dview.new_rank_of(orig_root) : orig_root;
        ftmpi::recv(g.data().data(), static_cast<int>(g.data().size()), src,
                    kTagGridToRoot + gid, st.world);
        it = rank0_grids.emplace(gid, std::move(g)).first;
      }
      parts.push_back(ftr::comb::Component{&it->second, coeff});
    }
    combined = ftr::comb::combine_full(cfg_.layout.scheme, parts);
    // Charge the interpolation work of the combination.
    ftmpi::charge_flops(10.0 * static_cast<double>(combined.size()) *
                        static_cast<double>(parts.size()));
  }

  // AC: recovered data for the lost grids is a sample of the combined
  // solution; push it back onto the lost groups.  Degraded runs skip this:
  // the lost groups are incomplete (their survivors idle), so the recovered
  // data lives only in the combined solution.
  if (tech == Technique::AlternateCombination && cfg_.scatter_recovered && !st.degraded) {
    for (int gid : lost_now) {
      const Level lv = layout_.slots[static_cast<size_t>(gid)].level;
      if (st.wrank == 0) {
        Grid2D rec(lv);
        ftr::grid::interpolate(combined, rec);
        if (layout_.root_rank_of_grid(gid) == 0) {
          rank0_recovered[gid] = std::move(rec);
        } else {
          ftmpi::send(rec.data().data(), static_cast<int>(rec.data().size()),
                      layout_.root_rank_of_grid(gid), kTagRecovered + gid, st.world);
        }
      }
      if (st.grid == gid) {
        Grid2D rec(lv);
        if (st.gcomm.rank() == 0) {
          if (st.wrank == 0) {
            rec = std::move(rank0_recovered[gid]);
          } else {
            ftmpi::recv(rec.data().data(), static_cast<int>(rec.data().size()), 0,
                        kTagRecovered + gid, st.world);
          }
        }
        st.solver->scatter_full(rec);
        st.solver->set_steps_done(cfg_.timesteps);
      }
    }
  }

  ftmpi::barrier(st.world);

  // --- final report (rank 0) -------------------------------------------------
  if (st.wrank == 0) {
    ftmpi::Runtime& rt = ftmpi::runtime();
    rt.put(keys::kCombineTime, ftmpi::wtime() - t_comb);
    if (cfg_.measure_error && !combined.data().empty()) {
      const double t_final = static_cast<double>(cfg_.timesteps) * st.dt;
      const double err = ftr::grid::l1_error(combined, [&](double x, double y) {
        return cfg_.problem.exact(x, y, t_final);
      });
      rt.put(keys::kErrorL1, err);
    }
    rt.put(keys::kTotalTime, ftmpi::wtime());
    rt.put(keys::kSolveTime, st.solve_time);
    rt.put(keys::kProcs, static_cast<double>(layout_.total_procs));
    rt.put(keys::kRepairs, static_cast<double>(st.repairs));
    rt.put(keys::kReconTotal, st.recon_sum.total);
    rt.put(keys::kReconFailedList, st.recon_sum.failed_list);
    rt.put(keys::kReconShrink, st.recon_sum.shrink);
    rt.put(keys::kReconSpawn, st.recon_sum.spawn);
    rt.put(keys::kReconAgree, st.recon_sum.agree);
    rt.put(keys::kReconMerge, st.recon_sum.merge);
    rt.put(keys::kReconSplit, st.recon_sum.split);
    rt.put(keys::kRecoveryTime, st.recovery_time);
    rt.put(keys::kCkptWriteTotal, st.ckpt_write_total);
    rt.put(keys::kCkptWrites, static_cast<double>(store_->writes()));
    rt.put(keys::kReconMode,
           st.degraded ? 2.0 : (st.repairs > 0 ? 1.0 : 0.0));
    rt.put(keys::kReconAttempts, static_cast<double>(st.recon_attempts));
    rt.put(keys::kSurvivors, static_cast<double>(st.world.size()));
  }
}

}  // namespace ftr::core
