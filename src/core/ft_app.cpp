#include "core/ft_app.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <map>

#include "advection/serial_solver.hpp"
#include "combination/combine.hpp"
#include "common/errors.hpp"
#include "common/logging.hpp"
#include "ftmpi/psan.hpp"
#include "recovery/alternate.hpp"
#include "grid/sampling.hpp"
#include "recovery/replication.hpp"

namespace ftr::core {

using ftr::advection::ParallelSolver;
using ftr::comb::GridRole;
using ftr::comb::Technique;
using ftr::grid::Grid2D;
using ftr::grid::Level;
using ftmpi::Comm;
using ftmpi::kSuccess;

namespace {
constexpr int kTagGridToRoot = 300;   ///< grid root -> world rank 0 (combination)
constexpr int kTagRecovered = 400;    ///< world rank 0 -> lost grid root (AC scatter)
constexpr int kTagPartner = 500;      ///< partner root -> lost grid root (RC)
}  // namespace

struct FtApp::RankState {
  Comm world;
  Comm gcomm;
  int wrank = -1;
  int grid = -1;
  double dt = 0.0;
  std::unique_ptr<ParallelSolver> solver;
  Reconstructor recon;
  // Lost grids accumulated over all repairs (known to every rank via the
  // post-repair broadcast).
  std::set<int> real_lost_grids;
  std::vector<int> last_failed_ranks;  // survivors: from the last repair
  long bcast_interval = -1;            // interval index from the last post-repair broadcast
  // Shrink-mode degradation: once replacements cannot be placed, the run
  // continues on the shrunken world.  `wrank` keeps the ORIGINAL world rank
  // (layout identity); `dview` translates to the compacted ranks.  A rank
  // whose grid lost a member idles (no solver) until the final combination.
  bool degraded = false;
  DegradedView dview;
  // Overlapped recovery: argv for background spawns, the in-overlap flag
  // (gates proactive exits and buddy ticks, whose rank->pid bookkeeping
  // assumes the full world), and the attempt counter stamped on doorbells.
  std::vector<std::string> argv;
  bool overlap_active = false;
  std::uint64_t overlap_epoch = 0;
  std::set<int> failed_union;  // original ranks failed so far, all repairs
  // Buddy placement map (deterministic, identical on every rank).
  ftr::rec::BuddyTopology btopo;
  // Grids whose recovery plan ended in Gcp/Idle: they keep no usable data
  // and the GCP combination absorbs them (uniform across ranks — filled
  // from the agreed plan).
  std::set<int> unrestored;
  // rank-0 metrics
  ReconstructTimings recon_sum{};
  int repairs = 0;
  int recon_attempts = 0;
  double recovery_time = 0.0;
  double recovery_bytes = 0.0;
  double buddy_repl_time = 0.0;
  double ckpt_write_total = 0.0;
  double solve_time = 0.0;

  explicit RankState(Reconstructor r) : recon(std::move(r)) {}
};

FtApp::FtApp(AppConfig cfg) : cfg_(std::move(cfg)), layout_(build_layout(cfg_.layout)) {
  store_ = cfg_.checkpoint_dir.empty()
               ? std::make_shared<ftr::rec::CheckpointStore>()
               : std::make_shared<ftr::rec::CheckpointStore>(cfg_.checkpoint_dir);
  buddy_ = std::make_shared<ftr::rec::BuddyStore>();
  if (const char* e = std::getenv("FTR_RECOVERY")) {
    const std::string v(e);
    if (v == "planner") {
      cfg_.recovery = RecoveryPolicy::Planner;
    } else if (v == "cr") {
      cfg_.recovery = RecoveryPolicy::Cr;
    } else if (v == "rc") {
      cfg_.recovery = RecoveryPolicy::Rc;
    } else if (v == "ac") {
      cfg_.recovery = RecoveryPolicy::Ac;
    } else if (v == "technique") {
      cfg_.recovery = RecoveryPolicy::Technique;
    } else if (v == "overlap") {
      cfg_.recovery = RecoveryPolicy::Overlap;
    } else if (!v.empty()) {
      FTR_WARN("ft_app: ignoring unknown FTR_RECOVERY value '%s'", v.c_str());
    }
  }
  if (const char* e = std::getenv("FTR_BUDDY_EVERY")) cfg_.buddy_every = std::atol(e);
  if (const char* e = std::getenv("FTR_DOORBELL_POLL")) {
    cfg_.doorbell_poll = std::max<long>(std::atol(e), 1);
  }
  // Overlapped recovery wants the detector's early exit from the solve loop
  // (a continuation rank stuck in halo exchange on a broken grid comm would
  // otherwise only learn of the failure reactively); FTR_PROACTIVE still has
  // the last word below.
  if (cfg_.recovery == RecoveryPolicy::Overlap) cfg_.proactive_recovery = true;
  if (const char* e = std::getenv("FTR_PROACTIVE")) {
    const std::string v(e);
    if (v == "1" || v == "on") {
      cfg_.proactive_recovery = true;
    } else if (v == "0" || v == "off") {
      cfg_.proactive_recovery = false;
    } else if (!v.empty()) {
      FTR_WARN("ft_app: ignoring unknown FTR_PROACTIVE value '%s'", v.c_str());
    }
  }
}

ftr::rec::PlannerMode FtApp::planner_mode() const {
  switch (cfg_.recovery) {
    case RecoveryPolicy::Planner: return ftr::rec::PlannerMode::Lattice;
    case RecoveryPolicy::Cr: return ftr::rec::PlannerMode::ForceCr;
    case RecoveryPolicy::Rc: return ftr::rec::PlannerMode::ForceRc;
    case RecoveryPolicy::Ac: return ftr::rec::PlannerMode::ForceAc;
    // Overlap restores through the full lattice at the classic detection
    // points; PlannerMode::Overlap is only used for the restricted plan the
    // background repair computes on the partial world (overlap_repair_world).
    case RecoveryPolicy::Overlap: return ftr::rec::PlannerMode::Lattice;
    case RecoveryPolicy::Technique: break;
  }
  switch (cfg_.layout.technique) {
    case Technique::ResamplingCopying: return ftr::rec::PlannerMode::ForceRc;
    case Technique::AlternateCombination: return ftr::rec::PlannerMode::ForceAc;
    case Technique::CheckpointRestart: break;
  }
  return ftr::rec::PlannerMode::ForceCr;
}

int FtApp::gcp_depth() const {
  return cfg_.layout.technique == Technique::AlternateCombination ? 1 + cfg_.layout.extra_layers
                                                                  : 1;
}

int FtApp::launch(ftmpi::Runtime& rt) {
  rt.register_app(cfg_.app_name, [this](const std::vector<std::string>& argv) { entry(argv); });
  rt.clear_results();
  return rt.run(cfg_.app_name, layout_.total_procs);
}

// --- small helpers -----------------------------------------------------------

std::vector<double> FtApp::pack_interior(const ftr::grid::LocalField& f) const {
  const auto& b = f.block();
  std::vector<double> v(static_cast<size_t>(b.cells()));
  size_t k = 0;
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) v[k++] = f.at(lx, ly);
  }
  return v;
}

void FtApp::unpack_interior(const std::vector<double>& v, ftr::grid::LocalField& f) const {
  const auto& b = f.block();
  assert(v.size() == static_cast<size_t>(b.cells()));
  size_t k = 0;
  for (int ly = 0; ly < b.height(); ++ly) {
    for (int lx = 0; lx < b.width(); ++lx) f.at(lx, ly) = v[k++];
  }
}

void FtApp::maybe_self_kill(const RankState& st, long step) {
  // Whole-node failure: the first resident process whose step reaches the
  // planned time takes the node down (killing itself and its co-residents).
  if (!cfg_.failures.fail_host_at_step.empty()) {
    const int host = ftmpi::runtime().host_of(ftmpi::self_pid());
    const auto hit = cfg_.failures.fail_host_at_step.find(host);
    if (hit != cfg_.failures.fail_host_at_step.end() && step >= hit->second) {
      bool fire = false;
      {
        std::lock_guard<std::mutex> lock(kill_mu_);
        fire = fired_host_fails_.insert(host).second;
      }
      if (fire) {
        FTR_DEBUG("ft_app: node failure on host %d at step %ld", host, step);
        ftmpi::runtime().fail_host(host);  // marks us dead too
        throw ftmpi::ProcessKilled{ftmpi::self_pid()};
      }
    }
  }
  const auto it = cfg_.failures.kill_at_step.find(st.wrank);
  if (it == cfg_.failures.kill_at_step.end() || step < it->second) return;
  {
    std::lock_guard<std::mutex> lock(kill_mu_);
    if (fired_kills_.count(st.wrank) != 0) return;  // respawned replacement
    fired_kills_.insert(st.wrank);
  }
  FTR_DEBUG("ft_app: rank %d self-kills at step %ld", st.wrank, step);
  ftmpi::abort_self();
}

int FtApp::solve_to(RankState& st, long target) {
  while (st.solver->steps_done() < target) {
    maybe_self_kill(st, st.solver->steps_done());
    // Detector notification: leave the solve loop for the detection point
    // as soon as a failure anywhere in the world is known locally, instead
    // of solving on until a collective on the broken communicator fails.
    if (cfg_.proactive_recovery && !st.overlap_active && proactive_failure_pending(st)) {
      return ftmpi::kErrProcFailed;
    }
    const int rc = st.solver->step();
    if (rc != kSuccess) return rc;
    buddy_tick(st);
  }
  return kSuccess;
}

bool FtApp::proactive_failure_pending(RankState& st) {
  // Degraded (shrunken) worlds renumber ranks, so the rank->grid mapping
  // below no longer applies; leave detection to the reactive path there.
  if (!ftmpi::detector_enabled() || st.world.is_null() || st.degraded) return false;
  if (!ftmpi::detector_knows_failure_in(st.world)) return false;
  // Arm recovery while the pre-repair world is still in hand.  Work out
  // which grids presumably lost a member; when this rank's grid is a
  // likely recovery source for them, harvest in-flight buddy replicas now
  // (the world swap inside reconstruct() would orphan them).  The facts
  // here are *local beliefs* — the negotiated plan after the repair is
  // authoritative; pre-staging merely warms the sources it will pick from.
  std::set<int> presumed;
  for (const ftmpi::ProcId pid : ftmpi::detector_known_failed()) {
    const int wr = st.world.group().rank_of(pid);
    if (wr < 0) continue;
    const int g = layout_.grid_of_rank(wr);
    if (g >= 0) presumed.insert(g);
  }
  if (presumed.empty()) return false;  // e.g. a stale record from before a repair
  const std::vector<int> sources = ftr::rec::prestage_sources(
      layout_.slots, planner_mode(), std::vector<int>(presumed.begin(), presumed.end()));
  if (std::find(sources.begin(), sources.end(), st.grid) != sources.end()) {
    drain_buddies(st);
    ftmpi::runtime().add(keys::kProactivePrestaged, 1.0);
  }
  ftmpi::runtime().add(keys::kProactiveExits, 1.0);
  FTR_DEBUG("ft_app: rank %d leaves the solve loop proactively (%d grid(s) presumed lost)",
            st.wrank, static_cast<int>(presumed.size()));
  return true;
}

// --- main flow ---------------------------------------------------------------

void FtApp::entry(const std::vector<std::string>& argv) {
  RankState st{Reconstructor{{cfg_.app_name, argv}}};
  st.argv = argv;
  st.btopo = make_buddy_topology(layout_, ftmpi::runtime().slots_per_host());
  st.dt = ftr::advection::stable_timestep(cfg_.layout.scheme.n, cfg_.problem, cfg_.cfl);
  const bool is_child = !ftmpi::get_parent().is_null();

  long resume_interval = 0;
  if (is_child) {
    const auto res = st.recon.reconstruct({});
    st.world = res.comm;
    if (cfg_.recovery == RecoveryPolicy::Overlap && !st.world.is_null() &&
        res.mode == RecoveryMode::Repaired && st.world.size() < layout_.total_procs) {
      // A background repair spawned us: the "world" is the *partial*
      // repaired world (repair survivors + replacements).  Join the overlap
      // protocol — it restores our grid, hands off onto the full world and
      // fills in the run state; on any failure it aborts this process and
      // the classic fallback respawns it.
      overlap_child(st);
      resume_interval = st.bcast_interval + 1;
    } else {
      st.wrank = st.world.rank();
      st.grid = layout_.grid_of_rank(st.wrank);
      // The broadcast inside post_repair tells us which interval to resume at.
      post_repair(st, /*interval_index=*/-1, /*is_child=*/true);
      resume_interval = st.bcast_interval + 1;
    }
  } else {
    st.world = ftmpi::world();
    st.wrank = st.world.rank();
    st.grid = layout_.grid_of_rank(st.wrank);
    int rc = ftmpi::comm_split(st.world, st.grid, st.wrank, &st.gcomm);
    if (rc != kSuccess) return;
    st.solver = std::make_unique<ParallelSolver>(layout_.slots[static_cast<size_t>(st.grid)].level,
                                                 cfg_.problem, st.dt, st.gcomm);
  }

  if (cfg_.layout.technique == Technique::CheckpointRestart) {
    run_checkpoint_restart_from(st, resume_interval);
  } else {
    if (is_child) {
      // End-phase repair already restored what this technique restores
      // before combination; fall through.
    } else {
      run_combination_technique(st);
    }
  }
  recovery_and_combine(st);
}

long FtApp::interval_target(long interval) const {
  const long c = std::max<long>(cfg_.checkpoints, 0);
  if (interval >= c) return cfg_.timesteps;
  return cfg_.timesteps * (interval + 1) / (c + 1);
}

void FtApp::run_checkpoint_restart_from(RankState& st, long start_interval) {
  const long c = cfg_.checkpoints;
  for (long i = start_interval; i <= c; ++i) {
    const long target = interval_target(i);
    FTR_DEBUG("ft_app: rank %d interval %ld target %ld", st.wrank, i, target);
    int step_rc = kSuccess;
    if (st.solver) {  // idle (degraded) ranks skip straight to detection
      const double t0 = ftmpi::wtime();
      step_rc = solve_to(st, target);
      st.solve_time += ftmpi::wtime() - t0;
    }
    // ULFM practice: a rank that observed the failure revokes the group
    // communicator so group mates blocked in halo exchange learn of it and
    // reach the detection point too (otherwise they would wait forever on a
    // survivor that has already left the solve loop).
    if (step_rc != kSuccess && !st.gcomm.is_null()) {
      ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.cr.revoke");
    }

    // Overlapped recovery: when the loss pattern allows it, unaffected
    // grids keep stepping this interval while the repair runs behind them;
    // on a successful handoff the interval is already complete.  A false
    // return (no failure, non-overlappable pattern, or aborted overlap)
    // falls through to the classic stop-the-world detection point.
    if (cfg_.recovery == RecoveryPolicy::Overlap && try_overlap_recovery(st, i, step_rc)) {
      continue;
    }

    // Detection is tested before the checkpoint write (paper Sec. III).
    const auto res = st.recon.reconstruct(st.world);
    if (res.repaired) {
      // Harvest in-flight buddy replicas while the pre-repair world is
      // still in hand: reconstruct() only returns once every survivor has
      // entered it, so all pre-repair replication sends are buffered by
      // now — and the world swap would orphan them.
      drain_buddies(st);
      if (!adopt_reconstruction(st, res)) return;
      post_repair(st, i, /*is_child=*/false);
      // The failed grid restarted from the recent checkpoint instead of
      // writing a new one (paper); no write this interval.
      continue;
    }
    if (res.exhausted) return;  // budget spent without a usable world
    if (i == c) break;  // final interval has no checkpoint write
    const double tw = ftmpi::wtime();
    if (st.solver) {
      store_->write(st.grid, st.gcomm.rank(), st.solver->steps_done(),
                    pack_interior(st.solver->field()));
    }
    // A chaos kill inside the write surfaces here (or at the next solve);
    // the next detection point repairs and the grid rolls back, so a failed
    // barrier is tolerated rather than acted on.
    ftr::observe_error(ftmpi::barrier(st.world), "ft_app.ckpt.barrier");
    if (st.wrank == 0) st.ckpt_write_total += ftmpi::wtime() - tw;
  }
}

void FtApp::run_combination_technique(RankState& st) {
  const double t0 = ftmpi::wtime();
  const int step_rc = solve_to(st, cfg_.timesteps);
  st.solve_time += ftmpi::wtime() - t0;
  // Revoke the group communicator on error so blocked group mates also
  // reach the detection point (see run_checkpoint_restart_from).
  if (step_rc != kSuccess && !st.gcomm.is_null()) {
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.ct.revoke");
  }

  // Overlapped recovery before the classic detection point (see
  // run_checkpoint_restart_from); the handoff leaves every grid at the
  // final target, so the combination can proceed directly.
  if (cfg_.recovery == RecoveryPolicy::Overlap &&
      try_overlap_recovery(st, cfg_.checkpoints, step_rc)) {
    return;
  }

  // Single detection point at the end, before the combination (paper).
  const auto res = st.recon.reconstruct(st.world);
  if (res.repaired) {
    // Harvest in-flight buddy replicas while the pre-repair world is still
    // in hand (see run_checkpoint_restart_from).
    drain_buddies(st);
    if (!adopt_reconstruction(st, res)) return;
    post_repair(st, cfg_.checkpoints /* => target = timesteps */, /*is_child=*/false);
  }
}

bool FtApp::adopt_reconstruction(RankState& st, const ReconstructResult& res) {
  if (res.exhausted) {
    FTR_ERROR("ft_app: reconstruction exhausted its budget (rank %d); stopping", st.wrank);
    return false;
  }
  st.world = res.comm;
  // Failed ranks reported from an already-degraded world are compacted
  // ranks; translate back to original ranks before any layout bookkeeping.
  std::vector<int> orig_failed = res.failed_ranks;
  if (st.degraded) {
    for (int& r : orig_failed) r = st.dview.original_rank_of(r);
  }
  st.last_failed_ranks = orig_failed;
  for (int r : orig_failed) st.failed_union.insert(r);
  if (res.mode == RecoveryMode::Degraded) st.degraded = true;
  if (st.degraded) {
    // Degradation is sticky: it only triggers when the cluster has no free
    // slots, and failed hosts never come back, so later failures degrade
    // further rather than repairing.
    st.dview = build_degraded_view(
        layout_, std::vector<int>(st.failed_union.begin(), st.failed_union.end()));
    for (int g : st.dview.lost_grids) st.real_lost_grids.insert(g);
  }
  if (st.wrank == 0) {
    ++st.repairs;
    st.recon_attempts += res.attempts;
    accumulate_timings(st, res.timings);
  }
  return true;
}

void FtApp::accumulate_timings(RankState& st, const ReconstructTimings& t) {
  st.recon_sum.total += t.total;
  st.recon_sum.failed_list += t.failed_list;
  st.recon_sum.revoke += t.revoke;
  st.recon_sum.shrink += t.shrink;
  st.recon_sum.spawn += t.spawn;
  st.recon_sum.agree += t.agree;
  st.recon_sum.merge += t.merge;
  st.recon_sum.split += t.split;
}

void FtApp::post_repair(RankState& st, long interval, bool is_child) {
  FTR_DEBUG("ft_app: rank %d post_repair interval %ld child=%d", st.wrank, interval,
            static_cast<int>(is_child));
  // 1. Run-state broadcast so respawned children can fast-forward:
  //    [interval, #lost, lost grid ids...].
  long header[2] = {interval, 0};
  std::vector<long> lost_ids;
  if (st.wrank == 0) {
    const auto lost = layout_.grids_of_ranks(st.last_failed_ranks);
    lost_ids.assign(lost.begin(), lost.end());
    header[1] = static_cast<long>(lost_ids.size());
  }
  int brc = ftmpi::bcast(header, 2, 0, st.world);
  if (brc != kSuccess) {
    // A failure inside the run-state broadcast means the repaired world is
    // already broken again; bail and let the next detection point replan
    // rather than fast-forwarding from a garbage header.
    FTR_WARN("ft_app: post-repair state bcast failed (%s)", ftmpi::error_string(brc));
    return;
  }
  lost_ids.resize(static_cast<size_t>(header[1]));
  if (header[1] > 0) {
    brc = ftmpi::bcast(lost_ids.data(), static_cast<int>(lost_ids.size()), 0, st.world);
    if (brc != kSuccess) {
      FTR_WARN("ft_app: post-repair lost-id bcast failed (%s)", ftmpi::error_string(brc));
      return;
    }
  }
  st.bcast_interval = header[0];
  for (long id : lost_ids) st.real_lost_grids.insert(static_cast<int>(id));

  // 2. Rebuild the per-grid communicators over the repaired world; ranks
  //    are unchanged, so the same split reproduces the original groups.
  //    Degraded mode: grids that lost a member stay lost — their surviving
  //    ranks idle (undefined color, no solver) but keep joining world
  //    collectives; complete grids keep their exact groups.
  const bool my_grid_lost = st.degraded && st.dview.grid_lost(st.grid);
  const int color = my_grid_lost ? ftmpi::kUndefinedColor : st.grid;
  int rc = ftmpi::comm_split(st.world, color, st.wrank, &st.gcomm);
  if (rc != kSuccess) {
    FTR_ERROR("ft_app: grid comm rebuild failed (%s)", ftmpi::error_string(rc));
    return;
  }
  if (my_grid_lost) {
    if (st.solver) {
      FTR_WARN("ft_app: rank %d idles — grid %d lost a member in degraded mode", st.wrank,
               st.grid);
    }
    st.solver.reset();
  } else if (is_child || !st.solver) {
    st.solver = std::make_unique<ParallelSolver>(
        layout_.slots[static_cast<size_t>(st.grid)].level, cfg_.problem, st.dt, st.gcomm);
  } else {
    st.solver->set_comm(st.gcomm);
  }

  // 2b. Proactive exits can leave grids *untouched* by the failure short of
  //     the target they were solving to (a rank leaves as soon as gossip
  //     reaches it), and — because gossip lands at different times — with
  //     members at *different* step counts.  Catch up before the
  //     restoration below: RC transfers read the partner grid at `target`,
  //     so the reactive-path invariant (every complete grid is at `target`
  //     when restoration starts) must be re-established.  Group-local: only
  //     this grid's communicator is involved, and the world barrier below
  //     resynchronizes everyone.
  // Overlap's classic fallback lands here with exactly the same staggered /
  // torn hazards (continuation ranks stepped past the failure point before
  // the abort), so the catch-up also runs for RecoveryPolicy::Overlap.
  if ((cfg_.proactive_recovery || cfg_.recovery == RecoveryPolicy::Overlap) && st.solver &&
      !is_child &&
      std::find(lost_ids.begin(), lost_ids.end(), static_cast<long>(st.grid)) ==
          lost_ids.end()) {
    const long target = interval_target(header[0]);
    // Two ways the group's state can be unusable for plain catch-up
    // stepping: members at different step counts (halo generations no
    // longer pair), or a member whose last step was torn mid-sweep by the
    // revoke (steps_done alone cannot see that).  Either condition is
    // group-fatal, so it is agreed by reduction.
    int mine[2] = {static_cast<int>(st.solver->steps_done()),
                   st.solver->torn() ? 1 : 0};
    int lo = mine[0], hi_torn[2] = {mine[0], mine[1]};
    int arc = ftmpi::allreduce(&mine[0], &lo, 1, ftmpi::ReduceOp::Min, st.gcomm);
    if (arc == kSuccess) {
      arc = ftmpi::allreduce(mine, hi_torn, 2, ftmpi::ReduceOp::Max, st.gcomm);
    }
    if (arc != kSuccess) {
      // A fresh failure during catch-up: tolerated, the next detection
      // point replans (same idiom as the restoration paths below).
      ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.proactive.revoke");
    } else if (lo != hi_torn[0] || hi_torn[1] != 0) {
      // The group rolls back to its most recent group-consistent snapshot
      // (or the initial condition) and recomputes, exactly like a failed
      // grid.
      cr_restore(st, std::vector<int>{st.grid}, target);
    } else if (lo < target) {
      const int crc = solve_to(st, target);
      if (crc != kSuccess) {
        ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.proactive.revoke");
      }
    }
  }

  // 3. Planner-driven restoration of the really-lost grids, timed as a
  //    barrier-delimited window on rank 0's (synchronized) virtual clock.
  //    Degraded grids have no complete group to restore onto; the planner
  //    marks them Gcp/Idle and the GCP combination absorbs them, while
  //    every rank still runs the delimiting barriers.
  std::vector<int> lost(lost_ids.begin(), lost_ids.end());
  ftr::observe_error(ftmpi::barrier(st.world), "ft_app.recovery.barrier");
  const double t0 = ftmpi::wtime();
  restore_lost_grids(st, lost, interval_target(header[0]),
                     /*charge_gcp_coeffs=*/planner_mode() == ftr::rec::PlannerMode::Lattice);
  ftr::observe_error(ftmpi::barrier(st.world), "ft_app.recovery.barrier");
  if (st.wrank == 0) st.recovery_time += ftmpi::wtime() - t0;
}

void FtApp::cr_restore(RankState& st, const std::vector<int>& lost, long target) {
  if (!st.solver) return;  // idle (degraded) ranks have nothing to restore
  if (std::find(lost.begin(), lost.end(), st.grid) == lost.end()) return;
  // The whole group of a failed grid rolls back to its most recent
  // checkpoint (survivors' local updates are unusable, paper Sec. II-D)
  // and recomputes the lost timesteps.  "Most recent" must be *group
  // consistent*: a member that died during its write, or whose newest
  // snapshot failed CRC validation, only has an older generation, so the
  // group agrees on the minimum available step and everyone restores that
  // generation.  If any member cannot produce it, the whole group restarts
  // from the initial condition (full recompute).
  auto snap = store_->read_latest(st.grid, st.gcomm.rank());
  int my_step = snap.has_value() ? static_cast<int>(snap->step) : -1;
  int group_step = my_step;
  int rc = ftmpi::allreduce(&my_step, &group_step, 1, ftmpi::ReduceOp::Min, st.gcomm);
  if (rc != kSuccess) {
    // Next detection point repairs.
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.cr.revoke");
    return;
  }
  if (group_step >= 0 && snap.has_value() && snap->step != group_step) {
    snap = store_->read_at(st.grid, st.gcomm.rank(), group_step);
  }
  int have = (group_step >= 0 && snap.has_value() && snap->step == group_step) ? 1 : 0;
  int all_have = have;
  rc = ftmpi::allreduce(&have, &all_have, 1, ftmpi::ReduceOp::Min, st.gcomm);
  if (rc != kSuccess) {
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.cr.revoke");
    return;
  }
  if (all_have == 1) {
    unpack_interior(snap->data, st.solver->field());
    st.solver->set_steps_done(snap->step);
  } else {
    st.solver->fill_local([this](double x, double y) { return cfg_.problem.initial(x, y); });
    st.solver->set_steps_done(0);
  }
  const int solve_rc = solve_to(st, target);
  if (solve_rc != kSuccess) {
    FTR_WARN("ft_app: failure during CR recompute (rank %d)", st.wrank);
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.cr.revoke");
  }
}

void FtApp::rc_restore_one(RankState& st, int lost_id, int partner, long target) {
  // One RC transfer: exact copy from the duplicate for diagonal grids,
  // resampling from the finer diagonal for lower-diagonal grids.  Only the
  // partner group and the lost group take part; the partner group is at
  // `target` steps, so the restored grid resumes there.
  if (partner < 0 || partner >= static_cast<int>(layout_.slots.size())) {
    FTR_ERROR("ft_app: lost grid %d has no usable RC partner", lost_id);
    return;
  }
  if (!st.solver) return;  // idle (degraded) ranks take no part
  const Level p_level = layout_.slots[static_cast<size_t>(partner)].level;
  if (st.grid == partner) {
    Grid2D full;
    if (st.solver->gather_full(&full) != kSuccess) return;
    if (st.gcomm.rank() == 0) {
      // A failed ship means the lost-grid root died again; its group revokes
      // and the next detection point replans, so the send error is tolerated.
      ftr::observe_error(
          ftmpi::send(full.data().data(), static_cast<int>(full.data().size()),
                      layout_.root_rank_of_grid(lost_id), kTagPartner + lost_id, st.world),
          "ft_app.rc.ship");
    }
  }
  if (st.grid == lost_id) {
    Grid2D recovered;
    if (st.gcomm.rank() == 0) {
      Grid2D partner_grid(p_level);
      const int rrc =
          ftmpi::recv(partner_grid.data().data(), static_cast<int>(partner_grid.data().size()),
                      layout_.root_rank_of_grid(partner), kTagPartner + lost_id, st.world);
      if (rrc != kSuccess) {
        // Dead partner root: revoke so the next detection point replans;
        // proceed with the zeroed grid to keep the group's scatter uniform.
        FTR_WARN("ft_app: RC fetch for grid %d failed (%s)", lost_id, ftmpi::error_string(rrc));
        ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.rc.revoke");
      }
      auto rec = ftr::rec::rc_recover(layout_.slots, lost_id, partner_grid);
      if (rec.has_value()) {
        recovered = std::move(*rec);
      } else {
        // Unreachable when the planner built the pair; keep the group
        // consistent (zero data) instead of crashing.
        FTR_ERROR("ft_app: RC recovery of grid %d from %d failed", lost_id, partner);
        recovered = Grid2D(layout_.slots[static_cast<size_t>(lost_id)].level);
      }
    }
    st.solver->scatter_full(recovered);
    st.solver->set_steps_done(target);
  }
}

void FtApp::buddy_restore_one(RankState& st, int grid, long step, long target) {
  const auto& topo = st.btopo;
  if (grid < 0 || grid >= topo.num_grids()) return;
  // Holders ship first (eager sends complete immediately, so send-then-
  // receive cannot deadlock); members receive, restore and recompute the
  // tail.  A holder whose generation vanished still sends — a count-0
  // marker — so the member never hangs on a message that will not come.
  const int first = topo.first_rank[static_cast<size_t>(grid)];
  const int nprocs = topo.procs_per_grid[static_cast<size_t>(grid)];
  for (int gr = 0; gr < nprocs; ++gr) {
    const int owner = first + gr;
    if (ftr::rec::buddy_rank_of(topo, owner) != st.wrank) continue;
    const auto rep = buddy_->read_at(ftmpi::self_pid(), grid, gr, step);
    if (!rep.has_value()) {
      FTR_WARN("ft_app: buddy replica of grid %d/%d step %ld unavailable on rank %d", grid,
               gr, step, st.wrank);
    }
    const auto buf = ftr::rec::pack_replica(
        grid, gr, step, rep.has_value() ? rep->data : std::vector<double>{});
    // A failed ship means the owner died again; its group revokes and the
    // next detection point replans, so the send error is tolerated here.
    ftr::observe_error(
        ftmpi::send_bytes(buf.data(), buf.size(), owner, ftr::rec::kTagBuddyFetch, st.world),
        "ft_app.buddy.ship");
  }
  if (st.grid != grid || !st.solver) return;
  const int holder = ftr::rec::buddy_rank_of(topo, st.wrank);
  const auto& blk = st.solver->field().block();
  const size_t cells = static_cast<size_t>(blk.cells());
  std::vector<std::byte> buf(5 * sizeof(long) + cells * sizeof(double));
  ftmpi::Status stat;
  const int rc = ftmpi::recv_bytes(buf.data(), buf.size(), holder, ftr::rec::kTagBuddyFetch,
                                   st.world, &stat);
  std::optional<ftr::rec::ReplicaMessage> msg;
  if (rc == kSuccess) msg = ftr::rec::unpack_replica(buf.data(), static_cast<size_t>(stat.count));
  if (!msg.has_value() || msg->step != step || msg->data.size() != cells) {
    // Dead holder, corrupt replica, or vanished generation: this grid cannot
    // come back through the buddy rung.  Revoke so group mates bail out of
    // the restore; the next detection point repairs and replans.
    FTR_WARN("ft_app: buddy fetch for grid %d failed on rank %d (%s)", grid, st.wrank,
             ftmpi::error_string(rc));
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.buddy.revoke");
    return;
  }
  unpack_interior(msg->data, st.solver->field());
  st.solver->set_steps_done(step);
  if (solve_to(st, target) != kSuccess) {
    FTR_WARN("ft_app: failure during buddy recompute (rank %d)", st.wrank);
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.buddy.revoke");
  }
}

void FtApp::buddy_tick(RankState& st) {
  // During an overlap the world is partial (or st.world is the pre-repair
  // world the continuation side no longer steps on), so the buddy topology's
  // rank addressing is invalid; replication resumes after the handoff.
  if (cfg_.buddy_every <= 0 || st.degraded || st.overlap_active || !st.solver ||
      st.gcomm.is_null()) {
    return;
  }
  const long s = st.solver->steps_done();
  if (s <= 0 || s >= cfg_.timesteps || s % cfg_.buddy_every != 0) return;
  const double t0 = ftmpi::wtime();
  // Drain replicas addressed to us first, then stream our block out.  The
  // nonblocking eager send charges only its injection overhead, so the
  // replication overlaps the next timesteps.
  ftr::rec::buddy_drain(*buddy_, st.world);
  const int brc = ftr::rec::buddy_send(st.btopo, st.world, st.grid, st.gcomm.rank(), s,
                                       pack_interior(st.solver->field()));
  if (brc != kSuccess) {
    // The replica did not land: the planner's buddy rung will see this
    // generation as unavailable at restore time, so surface it now.
    FTR_WARN("ft_app: buddy replication of grid %d step %ld failed on rank %d (%s)", st.grid,
             s, st.wrank, ftmpi::error_string(brc));
  }
  if (st.wrank == 0) st.buddy_repl_time += ftmpi::wtime() - t0;
}

void FtApp::drain_buddies(RankState& st) {
  if (cfg_.buddy_every <= 0 || st.degraded || st.world.is_null()) return;
  ftr::rec::buddy_drain(*buddy_, st.world);
}

void FtApp::restore_lost_grids(RankState& st, const std::vector<int>& lost, long target,
                               bool charge_gcp_coeffs) {
  std::set<int> lset(lost.begin(), lost.end());
  if (st.degraded) {
    for (int g : st.dview.lost_grids) lset.insert(g);
  }
  if (lset.empty()) return;
  const std::vector<int> all_lost(lset.begin(), lset.end());
  ftr::rec::RecoveryPlan plan;
  if (planner_mode() == ftr::rec::PlannerMode::Lattice) {
    plan = negotiate_plan(st, all_lost);
  } else {
    // The Force* plans are a pure function of uniformly-known facts, so
    // every rank computes the same plan locally — the legacy paths keep
    // their exact communication pattern, with no negotiation round.
    std::vector<ftr::rec::GridFacts> facts;
    for (int g : all_lost) {
      ftr::rec::GridFacts f;
      f.id = g;
      f.group_complete = !st.degraded || !st.dview.grid_lost(g);
      facts.push_back(f);
    }
    plan = ftr::rec::plan_recovery(layout_.slots, cfg_.layout.scheme, gcp_depth(),
                                   planner_mode(), facts,
                                   std::vector<int>(st.unrestored.begin(), st.unrestored.end()));
  }
  execute_plan(st, plan, target, charge_gcp_coeffs);
}

ftr::rec::RecoveryPlan FtApp::negotiate_plan(RankState& st, const std::vector<int>& lost) {
  // 1. Every rank reports the buddy generations it holds for members of the
  //    lost grids: records of 4 longs {grid, group rank, newest, prev}.
  const bool buddies = cfg_.buddy_every > 0 && !st.degraded;
  std::vector<long> mine;
  if (buddies) {
    ftr::rec::buddy_drain(*buddy_, st.world);
    for (int g : lost) {
      const int nprocs = st.btopo.procs_per_grid[static_cast<size_t>(g)];
      for (int gr = 0; gr < nprocs; ++gr) {
        const int owner = st.btopo.first_rank[static_cast<size_t>(g)] + gr;
        if (ftr::rec::buddy_rank_of(st.btopo, owner) != st.wrank) continue;
        const auto h = buddy_->holding(ftmpi::self_pid(), g, gr);
        if (h.newest < 0) continue;
        mine.push_back(g);
        mine.push_back(gr);
        mine.push_back(h.newest);
        mine.push_back(h.prev);
      }
    }
  }
  std::vector<std::vector<long>> parts;
  const int grc = ftmpi::gatherv(mine, &parts, 0, st.world);

  // 2. World rank 0 derives the facts and plans over the full lattice.
  std::vector<long> wire;  // [n, gcp_feasible, then 4 longs per entry]
  if (st.wrank == 0) {
    std::map<std::pair<int, int>, ftr::rec::BuddyStore::Holding> held;
    if (grc == kSuccess) {
      for (const auto& p : parts) {
        for (size_t i = 0; i + 3 < p.size(); i += 4) {
          held[{static_cast<int>(p[i]), static_cast<int>(p[i + 1])}] =
              ftr::rec::BuddyStore::Holding{p[i + 2], p[i + 3]};
        }
      }
    }
    std::vector<ftr::rec::GridFacts> facts;
    for (int g : lost) {
      ftr::rec::GridFacts f;
      f.id = g;
      f.group_complete = !st.degraded || !st.dview.grid_lost(g);
      if (buddies && f.group_complete) {
        // The buddy rung is on iff every member's block is held at a common
        // generation: the minimum of the newest steps, which the
        // two-generation store still has everywhere when ticks interleave.
        const int nprocs = st.btopo.procs_per_grid[static_cast<size_t>(g)];
        long common = std::numeric_limits<long>::max();
        bool all = nprocs > 0;
        for (int gr = 0; gr < nprocs && all; ++gr) {
          const auto it = held.find({g, gr});
          if (it == held.end()) {
            all = false;
          } else {
            common = std::min(common, it->second.newest);
          }
        }
        if (all && common > 0) {
          for (int gr = 0; gr < nprocs && all; ++gr) {
            const auto& h = held[{g, gr}];
            if (h.newest != common && h.prev != common) all = false;
          }
        } else {
          all = false;
        }
        if (all) {
          f.buddy_available = true;
          f.buddy_step = common;
        }
      }
      facts.push_back(f);
    }
    const auto planned = ftr::rec::plan_recovery(
        layout_.slots, cfg_.layout.scheme, gcp_depth(), ftr::rec::PlannerMode::Lattice, facts,
        std::vector<int>(st.unrestored.begin(), st.unrestored.end()));
    wire.push_back(static_cast<long>(planned.entries.size()));
    wire.push_back(planned.gcp_feasible ? 1 : 0);
    for (const auto& e : planned.entries) {
      wire.push_back(e.grid);
      wire.push_back(static_cast<long>(e.action));
      wire.push_back(e.step);
      wire.push_back(e.partner);
    }
  }

  // 3. Broadcast the agreed plan.  A failure mid-negotiation yields an
  //    empty plan; the next detection point repairs and replans.
  long hdr[2] = {0, 1};
  if (st.wrank == 0 && wire.size() >= 2) {
    hdr[0] = wire[0];
    hdr[1] = wire[1];
  }
  ftr::rec::RecoveryPlan plan;
  if (ftmpi::bcast(hdr, 2, 0, st.world) != kSuccess) return plan;
  std::vector<long> body(static_cast<size_t>(std::max<long>(hdr[0], 0)) * 4);
  if (st.wrank == 0 && !body.empty()) body.assign(wire.begin() + 2, wire.end());
  if (!body.empty() &&
      ftmpi::bcast(body.data(), static_cast<int>(body.size()), 0, st.world) != kSuccess) {
    return plan;
  }
  plan.gcp_feasible = hdr[1] != 0;
  for (size_t i = 0; i + 3 < body.size(); i += 4) {
    ftr::rec::PlanEntry e;
    e.grid = static_cast<int>(body[i]);
    e.action = static_cast<ftr::rec::RecoveryAction>(body[i + 1]);
    e.step = body[i + 2];
    e.partner = static_cast<int>(body[i + 3]);
    plan.entries.push_back(e);
  }
  return plan;
}

void FtApp::execute_plan(RankState& st, const ftr::rec::RecoveryPlan& plan, long target,
                         bool charge_gcp_coeffs) {
  using ftr::rec::RecoveryAction;
  const int ngrids = static_cast<int>(layout_.slots.size());
  // Entries are in ascending grid id on every rank, so the per-entry
  // transfers pair up without cross-entry deadlock (holders only post
  // eager sends; each group's blocking work is confined to its own entry).
  for (const auto& e : plan.entries) {
    if (e.grid < 0 || e.grid >= ngrids) continue;
    switch (e.action) {
      case RecoveryAction::RcCopy:
      case RecoveryAction::RcResample:
        rc_restore_one(st, e.grid, e.partner, target);
        break;
      case RecoveryAction::Buddy:
        buddy_restore_one(st, e.grid, e.step, target);
        break;
      case RecoveryAction::Disk:
        cr_restore(st, {e.grid}, target);
        break;
      case RecoveryAction::Gcp:
      case RecoveryAction::Idle:
        st.unrestored.insert(e.grid);
        break;
    }
  }
  if (st.wrank != 0) return;

  // Plan bookkeeping: per-action counts, the per-grid decision, and the
  // modeled volume of recovery-source data moved.
  ftmpi::Runtime& rt = ftmpi::runtime();
  const auto level_bytes = [](const Level& lv) {
    return 8.0 * static_cast<double>((1 << lv.x) + 1) * static_cast<double>((1 << lv.y) + 1);
  };
  bool any_gcp = false;
  for (const auto& e : plan.entries) {
    if (e.grid < 0 || e.grid >= ngrids) continue;
    rt.add(std::string(keys::kPlanPrefix) + ftr::rec::action_name(e.action), 1.0);
    rt.put(std::string(keys::kPlanPrefix) + "grid" + std::to_string(e.grid),
           static_cast<double>(e.action));
    switch (e.action) {
      case RecoveryAction::RcCopy:
      case RecoveryAction::RcResample:
        if (e.partner >= 0 && e.partner < ngrids) {
          st.recovery_bytes += level_bytes(layout_.slots[static_cast<size_t>(e.partner)].level);
        }
        break;
      case RecoveryAction::Buddy:
      case RecoveryAction::Disk:
        st.recovery_bytes += level_bytes(layout_.slots[static_cast<size_t>(e.grid)].level);
        break;
      case RecoveryAction::Gcp:
        any_gcp = true;
        break;
      case RecoveryAction::Idle:
        break;
    }
  }
  if (!plan.gcp_feasible) {
    FTR_WARN("ft_app: no GCP solution absorbs the unrestored grids; they idle");
  }
  const auto mode = planner_mode();
  if (charge_gcp_coeffs && any_gcp &&
      (mode == ftr::rec::PlannerMode::ForceAc || mode == ftr::rec::PlannerMode::Lattice)) {
    // The only recovery overhead of re-combination is deriving the GCP
    // coefficients (paper Sec. III-B); the sampling rides the compulsory
    // combination stage anyway.
    ftmpi::charge_flops(ftr::rec::ac_coefficient_flops(cfg_.layout.scheme, gcp_depth()));
  }
}

// --- non-blocking overlapped recovery ----------------------------------------

/// Run state the repair leader ships to respawned children and both repair
/// parties need for the restoration: which interval broke, the step target,
/// who leads the partial world, and its membership in original world ranks.
struct FtApp::OverlapView {
  long interval = -1;
  long target = 0;
  int leader_rworld = -1;        ///< repair leader's rank in the partial world
  std::vector<int> member_olds;  ///< original rank of each partial-world rank
};

bool FtApp::try_overlap_recovery(RankState& st, long interval, int step_rc) {
  if (st.degraded || st.world.is_null()) return false;

  // Uniform suspicion probe.  comm_agree's *flag* is uniform across the
  // survivors but its return code is not (it depends on each rank's local
  // acked set), and a barrier's outcome can differ between root and members
  // when a death races the release — so the verdict here is decided purely
  // from the agreed flags.  Two rounds: round 1 collects "my interval went
  // clean", round 2 re-ANDs after every survivor has seen round 1's
  // outcome, so a failure racing round 1 lands uniformly by round 2, and a
  // unanimous round-2 "clean" means nobody diverges into the overlap prefix
  // on a half-seen failure.  Anything racing round 2 itself is deferred to
  // the classic detection point right after (which re-probes from scratch).
  int clean = (step_rc == kSuccess && !st.world.is_revoked()) ? 1 : 0;
  const int a1 = ftmpi::comm_agree(st.world, &clean);
  int sus = (a1 == kSuccess && clean == 1 && !st.world.is_revoked()) ? 1 : 0;
  ftr::observe_error(ftmpi::comm_agree(st.world, &sus), "ft_app.overlap.probe");
  if (sus == 1) return false;  // uniformly: no failure this interval

  // A failure is uniformly suspected: arm this attempt.  The world is NOT
  // revoked here — the probe guarantees every survivor has left its world
  // collectives, and a classic fallback must still be able to run its own
  // detection barrier on this world.
  const std::uint64_t epoch = ++st.overlap_epoch;
  drain_buddies(st);  // harvest in-flight replicas while the full world is in hand

  Comm shrunken;
  if (ftmpi::comm_shrink(st.world, &shrunken) != kSuccess) return false;
  const std::vector<int> failed = Reconstructor::failed_procs_list(st.world, shrunken);
  if (failed.empty()) return false;  // spurious suspicion (e.g. a bare revoke)
  std::vector<int> survivors;
  survivors.reserve(static_cast<size_t>(shrunken.size()));
  for (const ftmpi::ProcId pid : shrunken.group().pids) {
    survivors.push_back(st.world.group().rank_of(pid));
  }
  const overlap::Classification cls = overlap::classify(layout_, survivors, failed);
  if (!cls.overlappable()) return false;  // deterministic: uniform bail-out

  // Fold the confirmed failures into the detector so the doorbell wires of
  // this attempt always carry a post-failure epoch (the heartbeat ring may
  // not have timed the dead ranks out yet).
  for (int r : failed) {
    ftmpi::detector_note_failed(st.world.group().pids.at(static_cast<size_t>(r)));
  }
  st.last_failed_ranks = failed;
  for (int r : failed) st.failed_union.insert(r);
  for (int g : cls.affected) st.real_lost_grids.insert(g);

  // Stage the buddy generations this rank holds for members of the affected
  // grids.  Eager sends complete at injection cost, so a continuation rank
  // pays almost nothing and the repair leader drains the manifests while
  // the continuation side is already stepping again.
  std::vector<overlap::StagedReplica> mine_reps;
  if (cfg_.buddy_every > 0) {
    for (int g : cls.affected) {
      const int nprocs = st.btopo.procs_per_grid[static_cast<size_t>(g)];
      const int first = st.btopo.first_rank[static_cast<size_t>(g)];
      for (int gr = 0; gr < nprocs; ++gr) {
        if (ftr::rec::buddy_rank_of(st.btopo, first + gr) != st.wrank) continue;
        const auto h = buddy_->holding(ftmpi::self_pid(), g, gr);
        for (const long s : {h.newest, h.prev}) {
          if (s <= 0) continue;
          const auto rep = buddy_->read_at(ftmpi::self_pid(), g, gr, s);
          if (!rep.has_value()) continue;  // CRC-invalid generation
          overlap::StagedReplica r;
          r.grid = g;
          r.grank = gr;
          r.step = s;
          r.data = rep->data;
          mine_reps.push_back(std::move(r));
        }
      }
    }
  }
  if (shrunken.rank() != cls.repair_leader_shrunken) {
    // Every non-leader survivor sends exactly one manifest (possibly empty),
    // so the leader never waits on a message that will not come.
    const auto buf = overlap::pack_manifest(mine_reps);
    ftr::observe_error(ftmpi::send_bytes(buf.data(), buf.size(), cls.repair_leader_shrunken,
                                         overlap::kTagStage, shrunken),
                       "ft_app.overlap.stage");
    mine_reps.clear();
  }

  ftmpi::chaos_point("repair.split");
  const bool continuation =
      std::binary_search(cls.continuation.begin(), cls.continuation.end(), st.wrank);
  Comm side;
  if (ftmpi::comm_split(shrunken, continuation ? 0 : 1, st.wrank, &side) != kSuccess) {
    // The prefix itself broke (another failure): flush everyone out of the
    // overlap machinery and fall back.
    ftr::observe_error(ftmpi::comm_revoke(shrunken), "ft_app.overlap.prefix");
    return false;
  }
  FTR_PSAN_OVERLAP_SPLIT(side, epoch);

  st.overlap_active = true;
  if (continuation) {
    const bool ok = overlap_continuation(st, interval, cls, shrunken, side, epoch);
    st.overlap_active = false;
    return ok;
  }
  const bool ok = overlap_repair(st, interval, cls, shrunken, side, epoch, std::move(mine_reps));
  st.overlap_active = false;
  return ok;
}

bool FtApp::overlap_continuation(RankState& st, long interval,
                                 const overlap::Classification& cls, const ftmpi::Comm& bridge,
                                 const ftmpi::Comm& ccomm, std::uint64_t epoch) {
  const long target = interval_target(interval);
  // Rebuild this grid's communicator inside the continuation world: the old
  // one was revoked to flush group mates out of the solve loop.
  Comm gc;
  const int split_rc = ftmpi::comm_split(ccomm, st.grid, st.wrank, &gc);
  if (split_rc != kSuccess || !st.solver) {
    return overlap_abort_continuation(st, ccomm, bridge);
  }
  st.gcomm = gc;
  st.solver->set_comm(st.gcomm);
  st.solver->set_repair_pending(true);

  // Re-establish the group invariant before stepping on: the exits from the
  // solve loop were staggered (proactive exits land when gossip does), so
  // members may disagree on steps_done, and a revoke can have torn a step
  // mid-sweep.  Same repair as the classic path's post-repair catch-up.
  int mine[2] = {static_cast<int>(st.solver->steps_done()), st.solver->torn() ? 1 : 0};
  int lo = mine[0], hi[2] = {mine[0], mine[1]};
  int arc = ftmpi::allreduce(&mine[0], &lo, 1, ftmpi::ReduceOp::Min, st.gcomm);
  if (arc == kSuccess) arc = ftmpi::allreduce(mine, hi, 2, ftmpi::ReduceOp::Max, st.gcomm);
  if (arc != kSuccess) {
    return overlap_abort_continuation(st, ccomm, bridge);
  }
  if (lo != hi[0] || hi[1] != 0) {
    cr_restore(st, std::vector<int>{st.grid}, std::max<long>(lo, 0));
    if (st.gcomm.is_revoked()) {
      return overlap_abort_continuation(st, ccomm, bridge);
    }
  }

  // The overlapped solve: keep stepping toward the interval target, poll
  // the doorbell every `doorbell_poll` steps, and agree on the verdict over
  // the continuation world so everyone takes the handoff (or the abort)
  // together.  Once the target is reached the side idles in small virtual
  // ticks; a bounded idle budget turns a silent repair (e.g. every repair
  // survivor died before ringing or revoking) into an abort.
  const std::uint64_t armed = ftmpi::detector_enabled() ? 1 : 0;
  const long poll_every = std::max<long>(cfg_.doorbell_poll, 1);
  constexpr double kIdleTick = 50e-6;
  constexpr double kIdleBudget = 30.0;
  long stepped = 0;
  bool aborted = false;
  int verdict = overlap::kVerdictNone;
  double idle_since = -1.0;
  const double t0 = ftmpi::wtime();
  while (!aborted && verdict == overlap::kVerdictNone) {
    for (long k = 0; k < poll_every; ++k) {
      if (st.solver->steps_done() < target) {
        maybe_self_kill(st, st.solver->steps_done());
        if (st.solver->step() != kSuccess) {
          aborted = true;  // a failure on the continuation side itself
          break;
        }
        ++stepped;
      } else {
        ftmpi::advance(kIdleTick);
      }
    }
    int v = aborted ? overlap::kVerdictAbort : overlap::kVerdictNone;
    if (!aborted && ccomm.rank() == 0 &&
        overlap::poll_doorbell(bridge, epoch, armed, &v) != kSuccess) {
      v = overlap::kVerdictAbort;
    }
    if (!aborted && v == overlap::kVerdictNone && st.solver->steps_done() >= target) {
      if (idle_since < 0.0) {
        idle_since = ftmpi::wtime();
      } else if (ftmpi::wtime() - idle_since > kIdleBudget) {
        FTR_WARN("ft_app: overlap idle budget exhausted on rank %d; aborting the attempt",
                 st.wrank);
        v = overlap::kVerdictAbort;
      }
    }
    int agreed = v;
    if (ftmpi::allreduce(&v, &agreed, 1, ftmpi::ReduceOp::Max, ccomm) != kSuccess) {
      aborted = true;
      break;
    }
    verdict = agreed;
    if (verdict == overlap::kVerdictAbort) aborted = true;
  }
  st.solve_time += ftmpi::wtime() - t0;

  if (aborted || verdict != overlap::kVerdictReady) {
    return overlap_abort_continuation(st, ccomm, bridge);
  }
  ftmpi::runtime().add(keys::kOverlapSteps, static_cast<double>(stepped));
  Comm nworld;
  const int hrc = overlap::handoff(ccomm, /*local_leader=*/0, /*continuation_side=*/true,
                                   st.wrank, bridge, cls.repair_leader_shrunken, &nworld);
  if (hrc != kSuccess) {
    return overlap_abort_continuation(st, ccomm, bridge);
  }
  if (!overlap_adopt(st, std::move(nworld), cls.repair_leader_old, epoch)) {
    return overlap_abort_continuation(st, ccomm, bridge);
  }
  return true;
}

bool FtApp::overlap_abort_continuation(RankState& st, const ftmpi::Comm& ccomm,
                                       const ftmpi::Comm& bridge) {
  if (!ccomm.is_null() && ccomm.rank() == 0) ftmpi::runtime().add(keys::kOverlapAborts, 1.0);
  if (st.solver) st.solver->set_repair_pending(false);
  // Revocation is the convergence mechanism: the bridge revoke aborts the
  // repair side's doorbell/handoff (and through it the children), the
  // ccomm/gcomm revokes flush continuation mates out of whatever overlap
  // collective they are parked in.  Everyone then meets at the classic
  // stop-the-world reconstruct of the (unrevoked) old world.
  ftr::observe_error(ftmpi::comm_revoke(bridge), "ft_app.overlap.abort");
  ftr::observe_error(ftmpi::comm_revoke(ccomm), "ft_app.overlap.abort");
  if (!st.gcomm.is_null()) {
    ftr::observe_error(ftmpi::comm_revoke(st.gcomm), "ft_app.overlap.abort");
  }
  return false;
}

bool FtApp::overlap_abort_repair(RankState& st, const ftmpi::Comm& bridge,
                                 const ftmpi::Comm& rcomm,
                                 const overlap::Classification& cls, std::uint64_t epoch,
                                 const char* why) {
  FTR_WARN("ft_app: overlap repair failed at %s (rank %d); falling back", why, st.wrank);
  // The restoration path armed the solver's repair_pending latch; drop it,
  // or the classic fallback's combination gathers bounce off kErrPending
  // forever while the gather root waits (deadlock).
  if (st.solver) st.solver->set_repair_pending(false);
  // Every failing repair survivor rings ABORT itself (the poll drains all
  // senders and ABORT outranks READY), then revokes the overlap comms so
  // both sides — and any children parked in the protocol — converge on
  // the classic fallback.
  ftr::observe_error(overlap::ring_doorbell(bridge, cls.continuation_leader_shrunken,
                                            overlap::kVerdictAbort, epoch),
                     "ft_app.overlap.abort_ring");
  ftr::observe_error(ftmpi::comm_revoke(bridge), "ft_app.overlap.abort");
  ftr::observe_error(ftmpi::comm_revoke(rcomm), "ft_app.overlap.abort");
  return false;
}

bool FtApp::overlap_repair(RankState& st, long interval, const overlap::Classification& cls,
                           const ftmpi::Comm& bridge, const ftmpi::Comm& rcomm,
                           std::uint64_t epoch, std::vector<overlap::StagedReplica> staged) {
  // Spawn the replacements on the failed ranks' hosts, exactly like the
  // classic repair, but over the repair group only — the continuation side
  // is already stepping while this runs.
  const int slots = ftmpi::runtime().slots_per_host();
  std::vector<ftmpi::SpawnUnit> units;
  for (int r : cls.failed) {
    ftmpi::SpawnUnit u;
    u.command = cfg_.app_name;
    u.argv = st.argv;
    u.maxprocs = 1;
    u.host = r / slots;
    units.push_back(std::move(u));
  }
  Comm inter;
  if (ftmpi::comm_spawn_multiple(units, 0, rcomm, &inter) != kSuccess) {
    return overlap_abort_repair(st, bridge, rcomm, cls, epoch, "spawn");
  }
  // Child protocol lockstep (reconstruct()'s child path): agree validates
  // the spawn, merge orders parents first, merged rank 0 ships the old
  // ranks, the ordered split builds the partial repaired world.
  int flag = 1;
  if (ftmpi::comm_agree(inter, &flag) != kSuccess) {
    ftr::observe_error(ftmpi::comm_free(&inter), "ft_app.overlap.free");
    return overlap_abort_repair(st, bridge, rcomm, cls, epoch, "spawn_agree");
  }
  Comm merged;
  const int mrc = ftmpi::intercomm_merge(inter, /*high=*/false, &merged);
  ftr::observe_error(ftmpi::comm_free(&inter), "ft_app.overlap.free");
  if (mrc != kSuccess) {
    return overlap_abort_repair(st, bridge, rcomm, cls, epoch, "merge");
  }
  if (merged.rank() == 0) {
    for (size_t i = 0; i < cls.failed.size(); ++i) {
      // A dead child surfaces at the split below; tolerated here.
      ftr::observe_error(ftmpi::send(&cls.failed[i], 1,
                                     rcomm.size() + static_cast<int>(i), kMergeTag, merged),
                         "ft_app.overlap.oldrank");
    }
  }
  Comm rworld;
  const int src = ftmpi::comm_split(merged, 0, st.wrank, &rworld);
  ftr::observe_error(ftmpi::comm_free(&merged), "ft_app.overlap.free");
  if (src != kSuccess) {
    return overlap_abort_repair(st, bridge, rcomm, cls, epoch, "split");
  }

  // Verify the partial world in lockstep with the children's reconstruct()
  // iteration (errhandler + agree + barrier).  A *further* failure during
  // the verify respawns children with a membership this attempt's
  // bookkeeping no longer describes — treated as an overlap abort rather
  // than patched up mid-flight.
  const auto vres = st.recon.reconstruct(rworld);
  if (vres.exhausted || vres.repaired || vres.mode == RecoveryMode::Degraded) {
    ftr::observe_error(ftmpi::comm_revoke(vres.comm.is_null() ? rworld : vres.comm),
                       "ft_app.overlap.abort");
    return overlap_abort_repair(st, bridge, rcomm, cls, epoch, "verify");
  }
  rworld = vres.comm;

  OverlapView view;
  view.interval = interval;
  view.target = interval_target(interval);
  view.leader_rworld = cls.repair_leader_rworld();
  view.member_olds = cls.rworld;

  if (rworld.rank() == view.leader_rworld) {
    // Ship the run state to the children (they know nothing but their
    // partial world), then drain the staged manifests off the bridge.
    const std::set<int> fset(cls.failed.begin(), cls.failed.end());
    for (int p = 0; p < static_cast<int>(view.member_olds.size()); ++p) {
      if (fset.count(view.member_olds[static_cast<size_t>(p)]) == 0) continue;
      std::vector<long> wire;
      wire.push_back(view.interval);
      wire.push_back(view.target);
      wire.push_back(view.leader_rworld);
      wire.push_back(static_cast<long>(view.member_olds.size()));
      for (int m : view.member_olds) wire.push_back(m);
      if (ftmpi::send(wire.data(), static_cast<int>(wire.size()), p, overlap::kTagChildInfo,
                      rworld) != kSuccess) {
        ftr::observe_error(ftmpi::comm_revoke(rworld), "ft_app.overlap.abort");
        return overlap_abort_repair(st, bridge, rcomm, cls, epoch, "child_info");
      }
    }
    for (int r = 0; r < bridge.size(); ++r) {
      if (r == cls.repair_leader_shrunken) continue;
      ftmpi::Status stat;
      if (ftmpi::probe(r, overlap::kTagStage, bridge, &stat) != kSuccess) continue;
      std::vector<std::byte> buf(static_cast<size_t>(stat.count));
      if (ftmpi::recv_bytes(buf.data(), buf.size(), r, overlap::kTagStage, bridge, &stat) !=
          kSuccess) {
        continue;  // dead sender: its replicas are simply unavailable
      }
      auto reps = overlap::unpack_manifest(buf.data(), static_cast<size_t>(stat.count));
      staged.insert(staged.end(), std::make_move_iterator(reps.begin()),
                    std::make_move_iterator(reps.end()));
    }
  }

  if (!overlap_repair_world(st, std::move(rworld), view, bridge,
                            cls.continuation_leader_shrunken, epoch, /*is_child=*/false,
                            std::move(staged))) {
    return overlap_abort_repair(st, bridge, rcomm, cls, epoch, "repair_world");
  }
  return true;
}

bool FtApp::overlap_abort_restore(RankState& st, const ftmpi::Comm& rworld, const char* why) {
  // The revoke flushes every partial-world member (children included) out
  // of the protocol; survivors then run the abort convergence in
  // overlap_abort_repair(), children abort and get respawned classically.
  FTR_WARN("ft_app: overlap restoration failed at %s (rank %d)", why, st.wrank);
  // See overlap_abort_repair: the latch must not outlive the attempt.
  if (st.solver) st.solver->set_repair_pending(false);
  ftr::observe_error(ftmpi::comm_revoke(rworld), "ft_app.overlap.abort");
  return false;
}

bool FtApp::overlap_repair_world(RankState& st, ftmpi::Comm rworld, const OverlapView& view,
                                 const ftmpi::Comm& bridge, int cont_leader_shrunken,
                                 std::uint64_t epoch, bool is_child,
                                 std::vector<overlap::StagedReplica> staged) {
  Comm gc;
  const int split_rc = ftmpi::comm_split(rworld, st.grid, st.wrank, &gc);
  if (split_rc != kSuccess) {
    return overlap_abort_restore(st, rworld, "split");
  }
  st.gcomm = gc;
  if (is_child || !st.solver) {
    st.solver = std::make_unique<ParallelSolver>(
        layout_.slots[static_cast<size_t>(st.grid)].level, cfg_.problem, st.dt, st.gcomm);
  } else {
    st.solver->set_comm(st.gcomm);
  }
  st.solver->set_repair_pending(true);

  // The leader plans the restoration from the staged manifests (the only
  // buddy knowledge that crossed the split) and broadcasts it with the
  // classic wire idiom; the lattice is restricted to Buddy -> Disk because
  // the RC partners live on the unreachable continuation side.
  const std::vector<int> affected = layout_.grids_of_ranks(view.member_olds);
  std::vector<long> wire;  // [n, gcp_feasible, then 4 longs per entry]
  if (rworld.rank() == view.leader_rworld) {
    std::map<std::pair<int, int>, std::set<long>> gens;
    for (const auto& r : staged) gens[{r.grid, r.grank}].insert(r.step);
    std::vector<ftr::rec::GridFacts> facts;
    for (int g : affected) {
      ftr::rec::GridFacts f;
      f.id = g;
      f.group_complete = true;
      const int nprocs = st.btopo.procs_per_grid[static_cast<size_t>(g)];
      std::set<long> common;
      bool first = true;
      for (int gr = 0; gr < nprocs; ++gr) {
        const auto it = gens.find({g, gr});
        if (it == gens.end()) {
          common.clear();
          break;
        }
        if (first) {
          common = it->second;
          first = false;
        } else {
          std::set<long> keep;
          std::set_intersection(common.begin(), common.end(), it->second.begin(),
                                it->second.end(), std::inserter(keep, keep.begin()));
          common = std::move(keep);
        }
      }
      if (!common.empty()) {
        f.buddy_available = true;
        f.buddy_step = *common.rbegin();  // newest generation every member has
      }
      facts.push_back(f);
    }
    const auto planned = ftr::rec::plan_recovery(
        layout_.slots, cfg_.layout.scheme, gcp_depth(), ftr::rec::PlannerMode::Overlap, facts,
        std::vector<int>(st.unrestored.begin(), st.unrestored.end()));
    wire.push_back(static_cast<long>(planned.entries.size()));
    wire.push_back(planned.gcp_feasible ? 1 : 0);
    for (const auto& e : planned.entries) {
      wire.push_back(e.grid);
      wire.push_back(static_cast<long>(e.action));
      wire.push_back(e.step);
      wire.push_back(e.partner);
    }
  }
  long hdr[2] = {0, 1};
  if (rworld.rank() == view.leader_rworld && wire.size() >= 2) {
    hdr[0] = wire[0];
    hdr[1] = wire[1];
  }
  if (ftmpi::bcast(hdr, 2, view.leader_rworld, rworld) != kSuccess) {
    return overlap_abort_restore(st, rworld, "plan_hdr");
  }
  std::vector<long> body(static_cast<size_t>(std::max<long>(hdr[0], 0)) * 4);
  if (rworld.rank() == view.leader_rworld && !body.empty()) {
    body.assign(wire.begin() + 2, wire.end());
  }
  if (!body.empty() &&
      ftmpi::bcast(body.data(), static_cast<int>(body.size()), view.leader_rworld, rworld) !=
          kSuccess) {
    return overlap_abort_restore(st, rworld, "plan_body");
  }
  ftr::rec::RecoveryPlan plan;
  plan.gcp_feasible = hdr[1] != 0;
  for (size_t i = 0; i + 3 < body.size(); i += 4) {
    ftr::rec::PlanEntry e;
    e.grid = static_cast<int>(body[i]);
    e.action = static_cast<ftr::rec::RecoveryAction>(body[i + 1]);
    e.step = body[i + 2];
    e.partner = static_cast<int>(body[i + 3]);
    plan.entries.push_back(e);
  }

  // The leader pre-ships every Buddy replica with eager sends before anyone
  // blocks in its own grid's restore, so cross-grid restores cannot
  // deadlock on the leader being busy.
  const auto rank_of_old = [&](int old_rank) {
    const auto it =
        std::lower_bound(view.member_olds.begin(), view.member_olds.end(), old_rank);
    if (it == view.member_olds.end() || *it != old_rank) return -1;
    return static_cast<int>(it - view.member_olds.begin());
  };
  if (rworld.rank() == view.leader_rworld) {
    for (const auto& e : plan.entries) {
      if (e.action != ftr::rec::RecoveryAction::Buddy) continue;
      const int first = st.btopo.first_rank[static_cast<size_t>(e.grid)];
      const int nprocs = st.btopo.procs_per_grid[static_cast<size_t>(e.grid)];
      for (int gr = 0; gr < nprocs; ++gr) {
        const int dst = rank_of_old(first + gr);
        if (dst < 0 || dst == rworld.rank()) continue;
        const auto hit = std::find_if(staged.begin(), staged.end(), [&](const auto& r) {
          return r.grid == e.grid && r.grank == gr && r.step == e.step;
        });
        if (hit == staged.end()) continue;  // member detects the gap and revokes
        const auto buf = ftr::rec::pack_replica(e.grid, gr, e.step, hit->data);
        ftr::observe_error(ftmpi::send_bytes(buf.data(), buf.size(), dst,
                                             overlap::kTagRestore, rworld),
                           "ft_app.overlap.restore_ship");
      }
    }
  }

  // Execute this rank's own entry.
  for (const auto& e : plan.entries) {
    if (e.action == ftr::rec::RecoveryAction::Gcp || e.action == ftr::rec::RecoveryAction::Idle) {
      st.unrestored.insert(e.grid);  // uniform: from the agreed plan
      continue;
    }
    if (e.grid != st.grid) continue;
    if (e.action == ftr::rec::RecoveryAction::Buddy) {
      std::optional<ftr::rec::ReplicaMessage> msg;
      if (rworld.rank() == view.leader_rworld) {
        const auto hit = std::find_if(staged.begin(), staged.end(), [&](const auto& r) {
          return r.grid == e.grid && r.grank == st.gcomm.rank() && r.step == e.step;
        });
        if (hit != staged.end()) {
          msg = ftr::rec::ReplicaMessage{};
          msg->grid = hit->grid;
          msg->grank = hit->grank;
          msg->step = hit->step;
          msg->data = hit->data;
        }
      } else {
        const size_t cells = static_cast<size_t>(st.solver->field().block().cells());
        std::vector<std::byte> buf(5 * sizeof(long) + cells * sizeof(double));
        ftmpi::Status stat;
        const int rc = ftmpi::recv_bytes(buf.data(), buf.size(), view.leader_rworld,
                                         overlap::kTagRestore, rworld, &stat);
        if (rc == kSuccess) {
          msg = ftr::rec::unpack_replica(buf.data(), static_cast<size_t>(stat.count));
        }
      }
      const size_t cells = static_cast<size_t>(st.solver->field().block().cells());
      if (!msg.has_value() || msg->step != e.step || msg->data.size() != cells) {
        return overlap_abort_restore(st, rworld, "buddy_restore");
      }
      unpack_interior(msg->data, st.solver->field());
      st.solver->set_steps_done(msg->step);
      if (solve_to(st, view.target) != kSuccess) {
        return overlap_abort_restore(st, rworld, "recompute");
      }
    } else {  // Disk (RC rungs are gated off in PlannerMode::Overlap)
      cr_restore(st, std::vector<int>{st.grid}, view.target);
      if (st.gcomm.is_revoked()) {
        return overlap_abort_restore(st, rworld, "disk_restore");
      }
    }
  }

  // Completion barrier over the partial world, then the doorbell and the
  // handoff back onto the full-world rank layout.
  if (ftmpi::barrier(rworld) != kSuccess) {
    return overlap_abort_restore(st, rworld, "sync");
  }
  if (rworld.rank() == view.leader_rworld) {
    if (overlap::ring_doorbell(bridge, cont_leader_shrunken, overlap::kVerdictReady, epoch) !=
        kSuccess) {
      return overlap_abort_restore(st, rworld, "doorbell");
    }
  }
  Comm nworld;
  const int hrc = overlap::handoff(rworld, view.leader_rworld, /*continuation_side=*/false,
                                   st.wrank, bridge, cont_leader_shrunken, &nworld);
  if (hrc != kSuccess) {
    return overlap_abort_restore(st, rworld, "handoff");
  }
  if (!overlap_adopt(st, std::move(nworld),
                     view.member_olds[static_cast<size_t>(view.leader_rworld)], epoch)) {
    return overlap_abort_restore(st, rworld, "adopt");
  }
  if (rworld.rank() == view.leader_rworld) {
    ftmpi::runtime().add(keys::kOverlapHandoffs, 1.0);
  }
  return true;
}

void FtApp::overlap_child(RankState& st) {
  // We only know our partial world; the repair leader ships everything else.
  // The info wait is a bounded non-blocking loop: iprobe with kAnySource
  // never reports dead peers, so a repair group that died entirely before
  // sending would otherwise hang us forever — after the budget we abort and
  // the classic fallback (driven by the continuation side's timeout)
  // respawns us.
  const Comm rworld = st.world;
  constexpr double kWaitTick = 50e-6;
  constexpr double kWaitBudget = 30.0;
  const double t0 = ftmpi::wtime();
  ftmpi::Status stat;
  for (;;) {
    int flag = 0;
    if (ftmpi::iprobe(ftmpi::kAnySource, overlap::kTagChildInfo, rworld, &flag, &stat) !=
        kSuccess) {
      ftmpi::abort_self();
    }
    if (flag != 0) break;
    if (ftmpi::wtime() - t0 > kWaitBudget) {
      FTR_WARN("ft_app: overlap child timed out waiting for run state; aborting orphan");
      ftmpi::abort_self();
    }
    ftmpi::advance(kWaitTick);
  }
  // Probe counts are payload bytes; the wire is longs.
  std::vector<long> wire(static_cast<size_t>(std::max(stat.count, 0)) / sizeof(long));
  if (ftmpi::recv(wire.data(), static_cast<int>(wire.size()), stat.source,
                  overlap::kTagChildInfo, rworld) != kSuccess ||
      wire.size() < 4 ||
      wire.size() < 4 + static_cast<size_t>(std::max<long>(wire[3], 0))) {
    ftmpi::abort_self();
  }
  OverlapView view;
  view.interval = wire[0];
  view.target = wire[1];
  view.leader_rworld = static_cast<int>(wire[2]);
  for (long i = 0; i < wire[3]; ++i) {
    view.member_olds.push_back(static_cast<int>(wire[4 + static_cast<size_t>(i)]));
  }
  if (rworld.rank() < 0 ||
      rworld.rank() >= static_cast<int>(view.member_olds.size())) {
    ftmpi::abort_self();
  }
  st.wrank = view.member_olds[static_cast<size_t>(rworld.rank())];
  st.grid = layout_.grid_of_rank(st.wrank);
  st.bcast_interval = view.interval;
  for (int g : layout_.grids_of_ranks(view.member_olds)) st.real_lost_grids.insert(g);

  st.overlap_active = true;
  const bool ok = overlap_repair_world(st, rworld, view, Comm{}, -1, /*epoch=*/0,
                                       /*is_child=*/true, {});
  st.overlap_active = false;
  if (!ok) ftmpi::abort_self();
}

bool FtApp::overlap_adopt(RankState& st, ftmpi::Comm nworld, int leader_old,
                          std::uint64_t epoch) {
  // This rank has acked the doorbell: the pre-handoff world (and the side
  // comm of the attempt) is dead weight from here on.  Under FTR_PSAN a
  // straggler collective on either context aborts with a pinned diagnostic.
  FTR_PSAN_HANDOFF(st.world, epoch);
  st.world = std::move(nworld);
  st.wrank = st.world.rank();
  // Agree on the unrestored set (the continuation side has not seen the
  // repair plan's Gcp/Idle outcomes).  Failure tolerated non-uniformly,
  // same idiom as the classic post-repair broadcast: a fresh failure here
  // surfaces at the next detection point.
  long n = static_cast<long>(st.unrestored.size());
  std::vector<long> ids(st.unrestored.begin(), st.unrestored.end());
  if (ftmpi::bcast(&n, 1, leader_old, st.world) != kSuccess) return false;
  ids.resize(static_cast<size_t>(std::max<long>(n, 0)));
  if (!ids.empty() &&
      ftmpi::bcast(ids.data(), static_cast<int>(ids.size()), leader_old, st.world) !=
          kSuccess) {
    return false;
  }
  for (long id : ids) st.unrestored.insert(static_cast<int>(id));
  if (st.solver) st.solver->set_repair_pending(false);
  if (st.wrank == 0) {
    ++st.repairs;
    ++st.recon_attempts;
  }
  return true;
}

void FtApp::recovery_and_combine(RankState& st) {
  const Technique tech = cfg_.layout.technique;
  const auto& sim = cfg_.failures.simulated_lost_grids;

  // --- simulated-loss recovery (Figs. 9 and 10 mode) -----------------------
  if (!sim.empty()) {
    ftr::observe_error(ftmpi::barrier(st.world), "ft_app.sim.barrier");
    const double t0 = ftmpi::wtime();
    restore_lost_grids(st, sim, cfg_.timesteps, /*charge_gcp_coeffs=*/true);
    ftr::observe_error(ftmpi::barrier(st.world), "ft_app.sim.barrier");
    if (st.wrank == 0) st.recovery_time += ftmpi::wtime() - t0;
  }

  // --- combination ----------------------------------------------------------
  // The combination excludes exactly the grids no lattice rung restored
  // (st.unrestored, agreed through the plan): the classic combination when
  // everything came back, GCP coefficients around the remainder otherwise
  // (AC's deliberate choice, and every technique's shrink-mode fallback).
  const std::set<int> lost_now = st.unrestored;

  ftr::observe_error(ftmpi::barrier(st.world), "ft_app.combine.barrier");
  const double t_comb = ftmpi::wtime();
  std::map<int, Grid2D> rank0_grids;      // world rank 0 only
  std::map<int, Grid2D> rank0_recovered;  // world rank 0 only

  // Deterministic contributor set, computable by every rank.
  std::vector<Level> lost_levels;
  for (int id : lost_now) {
    lost_levels.push_back(layout_.slots[static_cast<size_t>(id)].level);
  }
  const ftr::comb::CoefficientProblem gcp(cfg_.layout.scheme,
                                          tech == Technique::AlternateCombination
                                              ? 1 + cfg_.layout.extra_layers
                                              : 1);
  const auto coeffs = gcp.solve(lost_levels);
  std::vector<std::pair<int, double>> contributors;  // grid id, coefficient
  if (coeffs.has_value()) {
    for (const auto& slot : layout_.slots) {
      if (slot.role == GridRole::Duplicate) continue;
      if (lost_now.count(slot.id) != 0) continue;
      const double c = coeffs->coefficient_of(slot.level);
      if (c != 0.0) contributors.emplace_back(slot.id, c);
    }
  } else if (st.wrank == 0) {
    FTR_ERROR("ft_app: loss pattern infeasible for the available layers");
  }

  // Grid groups gather their solution; roots ship it to world rank 0.
  for (const auto& [gid, coeff] : contributors) {
    (void)coeff;
    if (st.grid != gid) continue;
    Grid2D full;
    if (st.solver->gather_full(&full) != kSuccess) continue;
    if (st.gcomm.rank() == 0 && st.wrank != 0) {
      const int src_rc = ftmpi::send(full.data().data(), static_cast<int>(full.data().size()),
                                     0, kTagGridToRoot + gid, st.world);
      if (src_rc != kSuccess) {
        // World rank 0 gone this late means no combined report at all;
        // nothing useful to do beyond surfacing it.
        FTR_WARN("ft_app: combination ship of grid %d failed (%s)", gid,
                 ftmpi::error_string(src_rc));
      }
    } else if (st.wrank == 0) {
      rank0_grids[gid] = std::move(full);  // rank 0 is grid 0's root
    }
  }

  Grid2D combined;
  if (st.wrank == 0) {
    std::vector<ftr::comb::Component> parts;
    for (const auto& [gid, coeff] : contributors) {
      auto it = rank0_grids.find(gid);
      if (it == rank0_grids.end()) {
        Grid2D g(layout_.slots[static_cast<size_t>(gid)].level);
        // Degraded worlds are compacted: translate the grid root's original
        // rank to its shrunken-communicator rank.
        const int orig_root = layout_.root_rank_of_grid(gid);
        const int src = st.degraded ? st.dview.new_rank_of(orig_root) : orig_root;
        const int crc = ftmpi::recv(g.data().data(), static_cast<int>(g.data().size()), src,
                                    kTagGridToRoot + gid, st.world);
        if (crc != kSuccess) {
          // The contributor died after the last detection point; its slot
          // stays zeroed and the combination degrades rather than hangs.
          FTR_WARN("ft_app: combination input from grid %d missing (%s)", gid,
                   ftmpi::error_string(crc));
        }
        it = rank0_grids.emplace(gid, std::move(g)).first;
      }
      parts.push_back(ftr::comb::Component{&it->second, coeff});
    }
    combined = ftr::comb::combine_full(cfg_.layout.scheme, parts);
    // Charge the interpolation work of the combination.
    ftmpi::charge_flops(10.0 * static_cast<double>(combined.size()) *
                        static_cast<double>(parts.size()));
  }

  // AC: recovered data for the lost grids is a sample of the combined
  // solution; push it back onto the lost groups.  Degraded runs skip this:
  // the lost groups are incomplete (their survivors idle), so the recovered
  // data lives only in the combined solution.
  if (tech == Technique::AlternateCombination && cfg_.scatter_recovered && !st.degraded) {
    for (int gid : lost_now) {
      const Level lv = layout_.slots[static_cast<size_t>(gid)].level;
      if (st.wrank == 0) {
        Grid2D rec(lv);
        ftr::grid::interpolate(combined, rec);
        if (layout_.root_rank_of_grid(gid) == 0) {
          rank0_recovered[gid] = std::move(rec);
        } else {
          // Failed push-back: the lost group revokes on its matching recv
          // error and the next detection point replans.
          ftr::observe_error(
              ftmpi::send(rec.data().data(), static_cast<int>(rec.data().size()),
                          layout_.root_rank_of_grid(gid), kTagRecovered + gid, st.world),
              "ft_app.ac.scatter");
        }
      }
      if (st.grid == gid) {
        Grid2D rec(lv);
        if (st.gcomm.rank() == 0) {
          if (st.wrank == 0) {
            rec = std::move(rank0_recovered[gid]);
          } else {
            const int arc = ftmpi::recv(rec.data().data(), static_cast<int>(rec.data().size()),
                                        0, kTagRecovered + gid, st.world);
            if (arc != kSuccess) {
              // Keep the group's scatter uniform with zeroed data; the run is
              // ending, so there is no later detection point to lean on.
              FTR_WARN("ft_app: recovered-data fetch for grid %d failed (%s)", gid,
                       ftmpi::error_string(arc));
            }
          }
        }
        st.solver->scatter_full(rec);
        st.solver->set_steps_done(cfg_.timesteps);
      }
    }
  }

  ftr::observe_error(ftmpi::barrier(st.world), "ft_app.combine.barrier");

  // --- final report (rank 0) -------------------------------------------------
  if (st.wrank == 0) {
    ftmpi::Runtime& rt = ftmpi::runtime();
    rt.put(keys::kCombineTime, ftmpi::wtime() - t_comb);
    if (cfg_.measure_error && !combined.data().empty()) {
      const double t_final = static_cast<double>(cfg_.timesteps) * st.dt;
      const double err = ftr::grid::l1_error(combined, [&](double x, double y) {
        return cfg_.problem.exact(x, y, t_final);
      });
      rt.put(keys::kErrorL1, err);
    }
    rt.put(keys::kTotalTime, ftmpi::wtime());
    rt.put(keys::kSolveTime, st.solve_time);
    rt.put(keys::kProcs, static_cast<double>(layout_.total_procs));
    rt.put(keys::kRepairs, static_cast<double>(st.repairs));
    rt.put(keys::kReconTotal, st.recon_sum.total);
    rt.put(keys::kReconFailedList, st.recon_sum.failed_list);
    rt.put(keys::kReconShrink, st.recon_sum.shrink);
    rt.put(keys::kReconSpawn, st.recon_sum.spawn);
    rt.put(keys::kReconAgree, st.recon_sum.agree);
    rt.put(keys::kReconMerge, st.recon_sum.merge);
    rt.put(keys::kReconSplit, st.recon_sum.split);
    rt.put(keys::kRecoveryTime, st.recovery_time);
    rt.put(keys::kCkptWriteTotal, st.ckpt_write_total);
    rt.put(keys::kCkptWrites, static_cast<double>(store_->writes()));
    rt.put(keys::kReconMode,
           st.degraded ? 2.0 : (st.repairs > 0 ? 1.0 : 0.0));
    rt.put(keys::kReconAttempts, static_cast<double>(st.recon_attempts));
    rt.put(keys::kSurvivors, static_cast<double>(st.world.size()));
    rt.put(keys::kRecoveryBytes, st.recovery_bytes);
    rt.put(keys::kBuddyReplications, static_cast<double>(buddy_->replications()));
    rt.put(keys::kBuddyReplBytes, static_cast<double>(buddy_->replicated_bytes()));
    rt.put(keys::kBuddyReplTime, st.buddy_repl_time);
  }
}

}  // namespace ftr::core
