#include "core/async_repair.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/errors.hpp"
#include "common/logging.hpp"
#include "ftmpi/detector.hpp"
#include "recovery/buddy.hpp"

namespace ftr::core::overlap {

using ftmpi::Comm;
using ftmpi::kSuccess;

bool epoch_ok(const DoorbellWire& w, std::uint64_t repair_epoch,
              std::uint64_t armed_detector_epoch) {
  if (w.verdict != kVerdictReady && w.verdict != kVerdictAbort) return false;
  if (w.repair_epoch != repair_epoch) return false;
  // The doorbell is rung after the failure was confirmed, so its sender's
  // failure knowledge can only be at least as fresh as at arming time; an
  // older epoch identifies a wire from before this attempt's failure.
  return w.detector_epoch >= armed_detector_epoch;
}

int Classification::rworld_rank_of(int old_rank) const {
  const auto it = std::lower_bound(rworld.begin(), rworld.end(), old_rank);
  if (it == rworld.end() || *it != old_rank) return -1;
  return static_cast<int>(it - rworld.begin());
}

Classification classify(const Layout& layout, const std::vector<int>& survivor_old_ranks,
                        const std::vector<int>& failed_old_ranks) {
  Classification out;
  out.failed = failed_old_ranks;
  std::sort(out.failed.begin(), out.failed.end());
  out.affected = layout.grids_of_ranks(out.failed);
  const std::set<int> aff(out.affected.begin(), out.affected.end());

  for (size_t i = 0; i < survivor_old_ranks.size(); ++i) {
    const int r = survivor_old_ranks[i];
    const int g = layout.grid_of_rank(r);
    const bool repairs = g >= 0 && aff.count(g) != 0;
    if (repairs) {
      out.repair.push_back(r);
      if (out.repair_leader_shrunken < 0) {
        out.repair_leader_shrunken = static_cast<int>(i);
        out.repair_leader_old = r;
      }
    } else {
      out.continuation.push_back(r);
      if (out.continuation_leader_shrunken < 0) {
        out.continuation_leader_shrunken = static_cast<int>(i);
      }
    }
  }
  out.rworld = out.repair;
  out.rworld.insert(out.rworld.end(), out.failed.begin(), out.failed.end());
  std::sort(out.rworld.begin(), out.rworld.end());
  return out;
}

std::vector<std::byte> pack_manifest(const std::vector<StagedReplica>& reps) {
  std::vector<std::byte> out(sizeof(long));
  const long n = static_cast<long>(reps.size());
  std::memcpy(out.data(), &n, sizeof(long));
  for (const auto& r : reps) {
    const auto blob = ftr::rec::pack_replica(r.grid, r.grank, r.step, r.data);
    const long nbytes = static_cast<long>(blob.size());
    const size_t at = out.size();
    out.resize(at + sizeof(long) + blob.size());
    std::memcpy(out.data() + at, &nbytes, sizeof(long));
    std::memcpy(out.data() + at + sizeof(long), blob.data(), blob.size());
  }
  return out;
}

std::vector<StagedReplica> unpack_manifest(const std::byte* bytes, std::size_t n) {
  std::vector<StagedReplica> out;
  if (bytes == nullptr || n < sizeof(long)) return out;
  long count = 0;
  std::memcpy(&count, bytes, sizeof(long));
  size_t at = sizeof(long);
  for (long i = 0; i < count; ++i) {
    if (at + sizeof(long) > n) return {};
    long nbytes = 0;
    std::memcpy(&nbytes, bytes + at, sizeof(long));
    at += sizeof(long);
    if (nbytes < 0 || at + static_cast<size_t>(nbytes) > n) return {};
    const auto msg = ftr::rec::unpack_replica(bytes + at, static_cast<size_t>(nbytes));
    at += static_cast<size_t>(nbytes);
    if (!msg.has_value()) continue;  // CRC-corrupt record: skip, keep the rest
    StagedReplica r;
    r.grid = msg->grid;
    r.grank = msg->grank;
    r.step = msg->step;
    r.data = msg->data;
    out.push_back(std::move(r));
  }
  return out;
}

int ring_doorbell(const Comm& bridge, int dst, int verdict, std::uint64_t repair_epoch) {
  ftmpi::chaos_point("repair.doorbell");
  DoorbellWire w;
  w.verdict = verdict;
  w.repair_epoch = repair_epoch;
  w.detector_epoch = ftmpi::detector_enabled() ? ftmpi::detector_epoch() : 0;
  // Eager send: the ringer proceeds after the injection overhead; the wire
  // time rides the arrival stamp and overlaps whatever the ringer does next.
  return ftmpi::send_bytes(&w, sizeof(w), dst, kTagDoorbell, bridge);
}

int poll_doorbell(const Comm& bridge, std::uint64_t repair_epoch,
                  std::uint64_t armed_detector_epoch, int* verdict) {
  *verdict = kVerdictNone;
  if (bridge.is_null()) return ftmpi::kErrComm;
  if (bridge.is_revoked()) {
    // Revocation is the abort channel of last resort: a repair survivor
    // that cannot ring (or died mid-ring) revokes the bridge instead.
    *verdict = kVerdictAbort;
    return kSuccess;
  }
  // Drain everything buffered; stale wires (an aborted earlier attempt, a
  // pre-failure epoch) are discarded rather than acted on.
  for (;;) {
    int flag = 0;
    ftmpi::Status stat;
    const int prc = ftmpi::iprobe(ftmpi::kAnySource, kTagDoorbell, bridge, &flag, &stat);
    if (prc != kSuccess) {
      *verdict = kVerdictAbort;  // bridge died under us: converge to fallback
      return kSuccess;
    }
    if (flag == 0) return kSuccess;
    std::vector<std::byte> buf(sizeof(DoorbellWire));
    const int rrc =
        ftmpi::recv_bytes(buf.data(), buf.size(), stat.source, kTagDoorbell, bridge, &stat);
    if (rrc != kSuccess) {
      *verdict = kVerdictAbort;
      return kSuccess;
    }
    if (static_cast<size_t>(stat.count) < sizeof(DoorbellWire)) continue;
    DoorbellWire w;
    std::memcpy(&w, buf.data(), sizeof(DoorbellWire));  // unpack<DoorbellWire>
    if (!epoch_ok(w, repair_epoch, armed_detector_epoch)) {
      FTR_DEBUG("overlap: discarding stale doorbell (verdict %d epoch %llu)", w.verdict,
                static_cast<unsigned long long>(w.repair_epoch));
      continue;
    }
    // ABORT outranks READY: a fresh abort means some repair survivor saw
    // the attempt fail after the leader rang ready.
    if (w.verdict == kVerdictAbort) {
      *verdict = kVerdictAbort;
      return kSuccess;
    }
    *verdict = kVerdictReady;  // keep draining in case an abort follows
  }
}

int handoff(const Comm& side, int local_leader, bool continuation_side, int my_old_rank,
            const Comm& bridge, int remote_leader_shrunken, Comm* world_out) {
  ftmpi::chaos_point("repair.handoff");
  *world_out = Comm{};
  Comm inter;
  int rc = ftmpi::intercomm_create(side, local_leader, bridge, remote_leader_shrunken,
                                   /*tag=*/1, &inter);
  if (rc != kSuccess) return rc;
  Comm merged;
  // The continuation side is ordered low so the merged intracommunicator
  // already interleaves correctly once the ordered split keys by old rank.
  rc = ftmpi::intercomm_merge(inter, /*high=*/!continuation_side, &merged);
  if (rc != kSuccess) return rc;
  rc = ftmpi::comm_split(merged, 0, my_old_rank, world_out);
  if (rc != kSuccess) return rc;
  ftr::observe_error(ftmpi::comm_free(&merged), "overlap.handoff.free");
  return kSuccess;
}

}  // namespace ftr::core::overlap
