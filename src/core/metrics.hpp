#pragma once
// The paper's process-time data recovery overhead formulas (Sec. III-B).
//
// Comparing raw recovery times across techniques is unfair: RC and AC use
// extra processes (duplicates / extra layers) whose entire runtime is part
// of the price of recoverability.  The paper therefore normalizes to the
// process count of Checkpoint/Restart:
//
//   T'rec,c = C * T_IO + T_rec,c
//   T'rec,r = (T_rec,r * P_r + T_app,r * (P_r - P_c)) / P_c
//   T'rec,a = (T_rec,a * P_a + T_app,a * (P_a - P_c)) / P_c
//
// where C is the checkpoint count, T_IO the single checkpoint write time,
// T_rec,* the raw recovery time of each technique, T_app,* the application
// time (excluding reconstruction), and P_c / P_r / P_a the process counts
// of CR / RC / AC.

namespace ftr::core {

struct ProcessTimeOverhead {
  /// Checkpoint/Restart: all checkpoint writes plus the raw recovery
  /// (read + recompute).
  [[nodiscard]] static double cr(long checkpoint_count, double t_io, double t_rec) {
    return static_cast<double>(checkpoint_count) * t_io + t_rec;
  }
  /// Resampling & Copying, normalized to CR's process count.
  [[nodiscard]] static double rc(double t_rec, double t_app, int p_r, int p_c) {
    return (t_rec * p_r + t_app * (p_r - p_c)) / static_cast<double>(p_c);
  }
  /// Alternate Combination, normalized to CR's process count.
  [[nodiscard]] static double ac(double t_rec, double t_app, int p_a, int p_c) {
    return (t_rec * p_a + t_app * (p_a - p_c)) / static_cast<double>(p_c);
  }
};

}  // namespace ftr::core
