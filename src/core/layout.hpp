#pragma once
// Process layout of the fault-tolerant application.
//
// Each sub-grid is solved by its own process group; groups are carved out
// of MPI_COMM_WORLD by contiguous rank ranges (grid 0 gets the first block
// of ranks, and world rank 0 — the paper's "controlling" process that must
// not fail — belongs to grid 0's group).
//
// The paper's load-balancing rule: the lower-diagonal grids have half the
// unknowns of the diagonal ones, and with a fixed timestep across grids
// they get a proportionally smaller process count (Fig. 9 uses 8 / 4 / 2 / 1
// processes per diagonal / lower-diagonal / upper-extra / lower-extra grid;
// the Table I sweep scales diagonal vs lower counts 4:1).

#include <vector>

#include "combination/index_set.hpp"
#include "recovery/buddy.hpp"

namespace ftr::core {

struct LayoutConfig {
  ftr::comb::Scheme scheme;
  ftr::comb::Technique technique = ftr::comb::Technique::CheckpointRestart;
  int procs_diagonal = 8;     ///< per diagonal grid (duplicates use the same)
  int procs_lower = 4;        ///< per lower-diagonal grid
  int procs_extra_upper = 2;  ///< per depth-2 extra-layer grid (AC)
  int procs_extra_lower = 1;  ///< per depth-3 extra-layer grid (AC)
  int extra_layers = 2;       ///< AC extra layers (paper uses 2)
};

struct Layout {
  LayoutConfig config;
  std::vector<ftr::comb::GridSlot> slots;  ///< grid id -> slot (Fig. 1 IDs)
  std::vector<int> procs_per_grid;         ///< grid id -> group size
  std::vector<int> first_rank;             ///< grid id -> first world rank
  int total_procs = 0;

  [[nodiscard]] int num_grids() const { return static_cast<int>(slots.size()); }
  [[nodiscard]] int grid_of_rank(int world_rank) const;
  [[nodiscard]] int group_rank(int world_rank) const {
    return world_rank - first_rank[static_cast<size_t>(grid_of_rank(world_rank))];
  }
  [[nodiscard]] int root_rank_of_grid(int grid_id) const {
    return first_rank[static_cast<size_t>(grid_id)];
  }
  /// Grid ids owning any of the given world ranks (sorted, unique).
  [[nodiscard]] std::vector<int> grids_of_ranks(const std::vector<int>& world_ranks) const;
  /// Host of an initial-placement world rank: the runtime allocates slots
  /// sequentially, so rank r sits on host r / slots_per_host, and the
  /// reconstructor respawns replacements on their original hosts, keeping
  /// the map valid across repairs.
  [[nodiscard]] int host_of_rank(int world_rank, int slots_per_host) const {
    return world_rank / (slots_per_host > 0 ? slots_per_host : 1);
  }
};

/// The placement facts the diskless buddy subsystem needs (recovery code
/// cannot depend on core, so core derives them from its Layout): per-grid
/// rank ranges, the RC partner map, and the host geometry.
[[nodiscard]] ftr::rec::BuddyTopology make_buddy_topology(const Layout& layout,
                                                          int slots_per_host);

/// Rank bookkeeping for shrink-mode (degraded) recovery: when replacement
/// processes cannot be placed, execution continues on the shrunken
/// communicator.  Survivors keep their *original* world rank for layout
/// purposes (grid membership, root identities) while collectives and
/// point-to-point traffic use the compacted ranks of the shrunken
/// communicator; this view translates between the two.  Shrinking preserves
/// rank order, so the new rank of a survivor is its index among the
/// surviving original ranks.
struct DegradedView {
  std::vector<int> survivors;   ///< original world ranks still alive, ascending
  std::vector<int> lost_grids;  ///< grids that lost >= 1 member (sorted, unique)

  /// Compacted (shrunken-communicator) rank of an original world rank, or
  /// -1 when that rank failed.
  [[nodiscard]] int new_rank_of(int original_rank) const;
  /// Original world rank of a compacted rank.
  [[nodiscard]] int original_rank_of(int new_rank) const {
    return survivors[static_cast<size_t>(new_rank)];
  }
  [[nodiscard]] int num_survivors() const { return static_cast<int>(survivors.size()); }
  /// A grid is usable in degraded mode only when its whole group survived.
  [[nodiscard]] bool grid_lost(int grid_id) const;
};

/// Build the degraded view from the union of failed *original* ranks.
DegradedView build_degraded_view(const Layout& layout, const std::vector<int>& failed_ranks);

/// Build the layout for a technique; asserts every group fits its grid.
Layout build_layout(const LayoutConfig& cfg);

/// The core counts of the paper's Table I sweep (19/38/76/152/304 on a CR
/// arrangement with l = 4): diagonal grids get `scale` processes each and
/// lower-diagonal grids scale/4 (minimum 1).
LayoutConfig table1_layout(int n, int l, int diag_procs);

}  // namespace ftr::core
