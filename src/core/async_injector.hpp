#pragma once
// Asynchronous failure injector — the paper's actual mechanism: "faults are
// injected into the application using a failure generator which aborts
// single or multiple random MPI processes together by the system call
// kill(getpid(), SIGKILL) at some point before the combination".
//
// Unlike the deterministic step-triggered plan in FailurePlan (which the
// benches use for reproducibility), this injector runs on its own real
// thread and kills the chosen victims while they are in arbitrary states —
// blocked in a receive, mid-collective, computing.  Tests built on it
// assert outcome properties (the run completes, the repaired world has the
// right shape), not exact timings.

#include <atomic>
#include <thread>
#include <vector>

#include "ftmpi/runtime.hpp"

namespace ftr::core {

class AsyncFailureInjector {
 public:
  struct Options {
    /// Victim world ranks (never include rank 0).
    std::vector<int> victim_ranks;
    /// Real-time delay before the kills, in milliseconds.
    int delay_ms = 5;
    /// Kill all victims together (the paper's "together") or spaced by
    /// delay_ms each.
    bool together = true;
  };

  AsyncFailureInjector(ftmpi::Runtime& rt, Options opt);
  ~AsyncFailureInjector();

  AsyncFailureInjector(const AsyncFailureInjector&) = delete;
  AsyncFailureInjector& operator=(const AsyncFailureInjector&) = delete;

  /// Blocks until all kills have been issued.
  void join();
  [[nodiscard]] int kills_issued() const { return kills_.load(); }

 private:
  ftmpi::Runtime& rt_;
  Options opt_;
  std::atomic<int> kills_{0};
  std::thread thread_;
};

}  // namespace ftr::core
