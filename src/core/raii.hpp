#pragma once
// Scope guards for raw MPI compat handles.
//
// The fault-tolerance invariant FTL002 (see docs/ARCHITECTURE.md, "Enforced
// invariants") forbids owning a raw MPI_Comm/MPI_Request/MPI_Info across an
// early return with a manual `*_free`: one missed path leaks the handle —
// the exact bug class the repair loop's restartable passes kept hitting
// before PR 1 introduced these guards.  Own the handle through a guard and
// every return path frees it; `release()` hands it to the caller when a
// pass succeeds.

#include "common/errors.hpp"
#include "ftmpi/mpi_compat.hpp"

namespace ftr::core {

/// Owns an intermediate communicator of one repair pass (shrunken,
/// temp_intercomm, unorder_intracomm): freed on all paths unless
/// release()d into the result.
class CommGuard {
 public:
  explicit CommGuard(ftmpi::compat::MPI_Comm* c) : c_(c) {}
  ~CommGuard() {
    if (c_ != nullptr) ftr::observe_error(ftmpi::compat::MPI_Comm_free(c_), "commguard.free");
  }
  CommGuard(const CommGuard&) = delete;
  CommGuard& operator=(const CommGuard&) = delete;

  /// Hand the communicator to the caller; the guard stops owning it.
  ftmpi::compat::MPI_Comm release() {
    ftmpi::compat::MPI_Comm out = *c_;
    c_ = nullptr;
    return out;
  }

 private:
  ftmpi::compat::MPI_Comm* c_;
};

/// Owns an MPI_Info for the duration of a scope (spawn host placement).
class InfoGuard {
 public:
  explicit InfoGuard(ftmpi::compat::MPI_Info* info) : info_(info) {}
  ~InfoGuard() {
    if (info_ != nullptr) {
      ftr::observe_error(ftmpi::compat::MPI_Info_free(info_), "infoguard.free");
    }
  }
  InfoGuard(const InfoGuard&) = delete;
  InfoGuard& operator=(const InfoGuard&) = delete;

  void release() { info_ = nullptr; }

 private:
  ftmpi::compat::MPI_Info* info_;
};

}  // namespace ftr::core
