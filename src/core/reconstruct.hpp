#pragma once
// Communicator reconstruction after process failure — the paper's central
// protocol (Figs. 3-7).
//
// Unlike shrink-and-continue approaches, the repaired communicator has the
// *same size and rank order* as before the failure: failed ranks are
// re-spawned on the hosts they occupied (hostfile index = rank / SLOTS) and
// re-assigned their old ranks through an ordered comm-split, preserving the
// application's communication pattern and load balance.
//
// The sequence, per Fig. 3 / Fig. 5:
//
//   parents:  errhandler -> agree -> barrier (detect)
//             on failure: revoke -> shrink -> failed-list (group diff)
//                         -> spawn on original hosts -> agree (intercomm)
//                         -> intercomm merge -> send old ranks to children
//                         -> ordered split -> repaired comm
//   children: errhandler -> agree (parent intercomm) -> merge
//             -> recv old rank -> ordered split -> become parents
//
// Deviation from the paper's listing: Fig. 5 merges the intercommunicator
// (line 14) before agreeing on it (line 15) while children agree first
// (line 21); in a strictly synchronous runtime those orders deadlock
// against each other, so both sides here agree before merging.  See
// DESIGN.md.
//
// Cascading failures — a process dying *during* the repair itself — are
// handled by making repair() re-entrant: any protocol step that fails
// (observed uniformly by all survivors, see docs/ARCHITECTURE.md, "Failure
// model and recovery state machine") sends the survivors back to revoke
// with an exponential virtual-time backoff, up to a bounded retry budget.
// Respawned children whose bring-up protocol fails simply abort; the next
// repair attempt respawns them.  When replacements cannot be *placed* at
// all (bounded cluster, kErrSpawn), repair degrades to shrink-mode
// recovery: the shrunken communicator itself becomes the result and the
// caller recomputes its layout over the survivors.
//
// Every ULFM primitive is timed (virtual clocks), which is what the Fig. 8
// and Table I benches report.

#include <string>
#include <vector>

#include "ftmpi/api.hpp"

namespace ftr::core {

/// Per-primitive timings of one reconstruction (virtual seconds).
struct ReconstructTimings {
  double total = 0;         ///< whole communicatorReconstruct (Fig. 3)
  /// Failure identification (Fig. 8a): the agree + detecting barrier that
  /// establish globally consistent failure knowledge, plus the
  /// failedProcsList group difference (Fig. 6).
  double failed_list = 0;
  double revoke = 0;
  double shrink = 0;        ///< OMPI_Comm_shrink, Table I
  double spawn = 0;         ///< MPI_Comm_spawn_multiple, Table I
  double agree = 0;         ///< OMPI_Comm_agree (intercomm), Table I
  double merge = 0;         ///< MPI_Intercomm_merge, Table I
  double split = 0;         ///< ordered MPI_Comm_split
};

/// How a reconstruction concluded.
enum class RecoveryMode {
  None,      ///< no failure was detected
  Repaired,  ///< full repair: original size and rank order restored
  /// Replacements could not be placed; execution continues on the shrunken
  /// communicator and the caller re-derives its layout over the survivors.
  Degraded,
};

struct ReconstructResult {
  ftmpi::Comm comm;              ///< the repaired (or degraded) communicator
  bool repaired = false;         ///< false when no failure was detected
  RecoveryMode mode = RecoveryMode::None;
  int iterations = 0;            ///< Fig. 3 do-while iterations
  int attempts = 0;              ///< repair attempts, all iterations combined
  /// True when the retry or iteration budget ran out before a verified
  /// communicator was produced; `comm` is then not usable.
  bool exhausted = false;
  /// Union of the original ranks replaced (or lost, in degraded mode)
  /// across every repair of this reconstruction.
  std::vector<int> failed_ranks;
  ReconstructTimings timings;
};

class Reconstructor {
 public:
  struct Config {
    /// Registered application name to re-exec for replacement processes
    /// (the paper's "./ApplicationName").
    std::string app_name;
    /// argv passed to respawned processes (the paper forwards argv).
    std::vector<std::string> argv;
    /// Retry budget of repair(): how many times one failure detection may
    /// restart from revoke when the repair itself is hit by further
    /// failures.
    int max_repair_attempts = 10;
    /// Virtual-time backoff before the second repair attempt; multiplied by
    /// `backoff_factor` after each further attempt.  Identical on every
    /// survivor, so the backoff keeps their virtual clocks in step.
    double backoff_base = 1e-4;
    double backoff_factor = 2.0;
    /// Bound on the Fig. 3 do-while: each verified-then-failed-again
    /// communicator consumes one iteration.
    int max_reconstruct_iterations = 32;
    /// Fall back to shrink-mode recovery when replacements cannot be
    /// placed (kErrSpawn).  When false, kErrSpawn consumes retry attempts
    /// like any other failure and eventually exhausts the budget.
    bool allow_shrink_fallback = true;
  };

  explicit Reconstructor(Config cfg) : cfg_(std::move(cfg)) {}

  /// The paper's communicatorReconstruct (Fig. 3).  Parents call it with
  /// their current world when a failure is suspected (or to probe);
  /// children (respawned processes) call it with a null comm immediately
  /// after startup.  Loops until a barrier over the reconstructed
  /// communicator succeeds, up to Config::max_reconstruct_iterations.
  ReconstructResult reconstruct(ftmpi::Comm my_world);

  /// The paper's failedProcsList (Fig. 6): identify failed ranks by group
  /// difference between the broken and the shrunken communicator.
  static std::vector<int> failed_procs_list(const ftmpi::Comm& broken,
                                            const ftmpi::Comm& shrunken);

  /// The paper's selectRankKey (Fig. 7): the split key that restores a
  /// survivor's original rank (children use their received old rank).
  static int select_rank_key(int merged_rank, int shrunken_size,
                             const std::vector<int>& failed_ranks, int total_procs);

 private:
  /// The paper's repairComm (Fig. 5) wrapped in the bounded retry loop:
  /// calls repair_once() until it succeeds (possibly degraded) or
  /// Config::max_repair_attempts is spent, backing off between attempts.
  int repair(ftmpi::Comm& broken, ReconstructResult& out);
  /// One pass of Fig. 5, restartable: revoke -> shrink -> spawn -> agree ->
  /// merge -> split.  Intermediate communicators and Info objects are
  /// released on every exit path.
  int repair_once(ftmpi::Comm& broken, ReconstructResult& out);

  Config cfg_;
};

/// The paper's MERGE_TAG used to ship old ranks to the spawned children.
inline constexpr int kMergeTag = 900;

}  // namespace ftr::core
