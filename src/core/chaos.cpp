#include "core/chaos.hpp"

#include "common/logging.hpp"

namespace ftr::core {

ChaosInjector::ChaosInjector(ftmpi::Runtime& rt) : rt_(rt) {
  rt_.set_chaos_hook([this](const char* phase, ftmpi::ProcId pid) { on_phase(phase, pid); });
}

ChaosInjector::~ChaosInjector() { rt_.set_chaos_hook(nullptr); }

void ChaosInjector::schedule(ChaosEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  schedule_.push_back(std::move(ev));
  fired_flags_.push_back(false);
}

int ChaosInjector::kills_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(fired_log_.size());
}

std::vector<ChaosEvent> ChaosInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_log_;
}

void ChaosInjector::on_phase(const char* phase, ftmpi::ProcId pid) {
  ChaosEvent to_fire;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int visit = ++visits_[{pid, phase}];
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
      const ChaosEvent& ev = schedule_[i];
      if (fired_flags_[i] || ev.victim != pid || ev.occurrence != visit ||
          ev.phase != phase) {
        continue;
      }
      fired_flags_[i] = true;
      fired_log_.push_back(ev);
      to_fire = ev;
      fire = true;
      break;
    }
  }
  if (!fire) return;
  // Kill outside the injector lock: Runtime::kill takes runtime locks and
  // wakes mailbox waiters.
  if (to_fire.fail_host) {
    const int host = rt_.host_of(pid);
    FTR_WARN("chaos: failing host %d (pid %d at phase '%s', occurrence %d)", host,
             static_cast<int>(pid), phase, to_fire.occurrence);
    rt_.fail_host(host);
  } else {
    FTR_WARN("chaos: killing pid %d at phase '%s' (occurrence %d)", static_cast<int>(pid),
             phase, to_fire.occurrence);
    rt_.kill(pid);
  }
}

std::vector<ChaosEvent> ChaosInjector::random_plan(std::uint64_t seed, int world_size,
                                                   int kills,
                                                   const std::vector<std::string>& phases) {
  // splitmix64: tiny, deterministic, good enough for picking victims.
  auto next = [state = seed]() mutable {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  std::vector<ChaosEvent> plan;
  if (world_size < 2 || phases.empty()) return plan;
  std::vector<bool> used(static_cast<std::size_t>(world_size), false);
  for (int k = 0; k < kills; ++k) {
    // Distinct victims, never pid 0 (rank 0 reports results in tests).
    ftmpi::ProcId victim = -1;
    for (int tries = 0; tries < 8 * world_size; ++tries) {
      const auto cand = 1 + static_cast<ftmpi::ProcId>(next() % (world_size - 1));
      if (!used[static_cast<std::size_t>(cand)]) {
        used[static_cast<std::size_t>(cand)] = true;
        victim = cand;
        break;
      }
    }
    if (victim < 0) break;  // more kills requested than distinct victims exist
    ChaosEvent ev;
    ev.phase = phases[next() % phases.size()];
    ev.victim = victim;
    ev.occurrence = 1;
    plan.push_back(std::move(ev));
  }
  return plan;
}

}  // namespace ftr::core
