#include "core/reconstruct.hpp"

#include <algorithm>
#include <cassert>

#include "common/errors.hpp"
#include "common/logging.hpp"
#include "core/raii.hpp"
#include "ftmpi/mpi_compat.hpp"

namespace ftr::core {

using namespace ftmpi::compat;

namespace {

/// The paper's mpiErrorHandler (Fig. 4): acknowledge the failures known on
/// the communicator.  (The paper notes a small delay is sometimes needed in
/// the beta ULFM; our runtime has no such race.)
void mpi_error_handler(MPI_Comm* comm, int* /*error_code*/) {
  // The handler runs while the communicator is already erroring; ack/get
  // failures here cannot be acted on, only observed.
  ftr::observe_error(OMPI_Comm_failure_ack(*comm), "errhandler.ack");
  MPI_Group failed_group;
  ftr::observe_error(OMPI_Comm_failure_get_acked(*comm, &failed_group), "errhandler.acked");
}

void merge_failed_ranks(std::vector<int>* acc, const std::vector<int>& more) {
  for (int r : more) {
    if (std::find(acc->begin(), acc->end(), r) == acc->end()) acc->push_back(r);
  }
  std::sort(acc->begin(), acc->end());
}

}  // namespace

std::vector<int> Reconstructor::failed_procs_list(const ftmpi::Comm& broken,
                                                  const ftmpi::Comm& shrunken) {
  // Fig. 6: compare the old and shrunken groups, take the difference, and
  // translate its members back to ranks of the broken communicator.
  MPI_Group old_group, shrink_group;
  MPI_Comm_group(broken, &old_group);
  MPI_Comm_group(shrunken, &shrink_group);

  int result = MPI_IDENT;
  MPI_Group_compare(old_group, shrink_group, &result);
  if (result == MPI_IDENT) return {};

  MPI_Group failed_group;
  MPI_Group_difference(old_group, shrink_group, &failed_group);
  int total_failed = 0;
  MPI_Group_size(failed_group, &total_failed);

  std::vector<int> temp_ranks(static_cast<size_t>(total_failed));
  for (int i = 0; i < total_failed; ++i) temp_ranks[static_cast<size_t>(i)] = i;
  std::vector<int> failed_ranks(static_cast<size_t>(total_failed));
  MPI_Group_translate_ranks(failed_group, total_failed, temp_ranks.data(), old_group,
                            failed_ranks.data());
  return failed_ranks;
}

int Reconstructor::select_rank_key(int merged_rank, [[maybe_unused]] int shrunken_size,
                                   const std::vector<int>& failed_ranks, int total_procs) {
  // Fig. 7: survivors keep their original rank as the split key.  Build the
  // list of surviving original ranks in order; merged rank i (a survivor,
  // i < shrunken_size) originally held the i-th surviving rank.
  std::vector<int> shrink_merge_list;
  shrink_merge_list.reserve(static_cast<size_t>(total_procs));
  for (int r = 0; r < total_procs; ++r) {
    bool failed = false;
    for (int f : failed_ranks) failed = failed || f == r;
    if (!failed) shrink_merge_list.push_back(r);
  }
  assert(merged_rank < shrunken_size);
  assert(static_cast<size_t>(shrunken_size) == shrink_merge_list.size());
  return shrink_merge_list[static_cast<size_t>(merged_rank)];
}

int Reconstructor::repair_once(ftmpi::Comm& broken, ReconstructResult& out) {
  // Fig. 5: repairComm, one restartable pass.
  const int slots = ftmpi::runtime().slots_per_host();
  double t0 = MPI_Wtime();
  // A revoke racing another revoke (or a dead comm) is fine: the pass only
  // needs everyone out of blocking calls, which either outcome achieves.
  ftr::observe_error(OMPI_Comm_revoke(&broken), "repair.revoke");
  out.timings.revoke += MPI_Wtime() - t0;

  t0 = MPI_Wtime();
  MPI_Comm shrunken;
  FTR_DEBUG("repair: pid %d entering shrink", ftmpi::self_pid());
  int rc = OMPI_Comm_shrink(broken, &shrunken);
  out.timings.shrink += MPI_Wtime() - t0;
  if (rc != MPI_SUCCESS) return rc;
  CommGuard shrunken_guard(&shrunken);

  t0 = MPI_Wtime();
  const std::vector<int> failed_ranks = failed_procs_list(broken, shrunken);
  out.timings.failed_list += MPI_Wtime() - t0;
  merge_failed_ranks(&out.failed_ranks, failed_ranks);
  const int total_failed = static_cast<int>(failed_ranks.size());
  if (total_failed == 0) {
    out.comm = shrunken_guard.release();  // nothing to repair (spurious detection)
    return MPI_SUCCESS;
  }
  int total_procs = 0;
  MPI_Comm_size(broken, &total_procs);

  // Spawn the replacements on the hosts the failed ranks occupied
  // (hostfile line = rank / SLOTS), preserving load balance.
  std::vector<std::string> commands;
  std::vector<std::vector<std::string>> argvs;
  std::vector<int> maxprocs;
  std::vector<MPI_Info> infos;
  for (int i = 0; i < total_failed; ++i) {
    commands.push_back(cfg_.app_name);
    argvs.push_back(cfg_.argv);
    maxprocs.push_back(1);
    MPI_Info info;
    MPI_Info_create(&info);
    MPI_Info_set_host(&info, failed_ranks[static_cast<size_t>(i)] / slots);
    infos.push_back(info);
  }
  t0 = MPI_Wtime();
  MPI_Comm temp_intercomm;
  rc = MPI_Comm_spawn_multiple(total_failed, commands, argvs, maxprocs, infos, 0, shrunken,
                               &temp_intercomm, MPI_ERRCODES_IGNORE);
  out.timings.spawn += MPI_Wtime() - t0;
  for (MPI_Info& info : infos) MPI_Info_free(&info);
  if (rc == MPI_ERR_SPAWN && cfg_.allow_shrink_fallback) {
    // Graceful degradation: the cluster has no room for replacements
    // (kErrSpawn is decided by the spawn root and delivered uniformly), so
    // recovery continues on the shrunken communicator itself.  The caller
    // re-derives grid layout and combination coefficients over the
    // survivors.
    FTR_WARN("repair: cannot place %d replacements (%s); degrading to shrink-mode recovery "
             "with %d survivors",
             total_failed, ftmpi::error_string(rc), shrunken.size());
    out.mode = RecoveryMode::Degraded;
    out.comm = shrunken_guard.release();
    return MPI_SUCCESS;
  }
  if (rc != MPI_SUCCESS) return rc;
  CommGuard inter_guard(&temp_intercomm);

  // Synchronize with the children over the intercommunicator (parent part).
  // Note: agree precedes merge on both sides (see header).  The agreement
  // also *validates* the spawn: if any parent or child died between spawn
  // and here, every participant observes the same failure and restarts
  // from revoke (parents) or aborts (children).
  t0 = MPI_Wtime();
  int flag = 1;
  FTR_DEBUG("repair: pid %d spawn done, entering inter agree", ftmpi::self_pid());
  rc = OMPI_Comm_agree(temp_intercomm, &flag);
  out.timings.agree += MPI_Wtime() - t0;
  FTR_DEBUG("repair: pid %d inter agree rc=%d", ftmpi::self_pid(), rc);
  if (rc != MPI_SUCCESS) return rc;

  t0 = MPI_Wtime();
  MPI_Comm unorder_intracomm;
  rc = MPI_Intercomm_merge(temp_intercomm, /*high=*/0, &unorder_intracomm);
  out.timings.merge += MPI_Wtime() - t0;
  FTR_DEBUG("repair: pid %d merge rc=%d", ftmpi::self_pid(), rc);
  if (rc != MPI_SUCCESS) return rc;
  CommGuard merged_guard(&unorder_intracomm);

  int shrunken_size = 0;
  MPI_Comm_size(shrunken, &shrunken_size);
  int new_rank = 0;
  MPI_Comm_rank(unorder_intracomm, &new_rank);

  // Rank 0 ships each child its old (failed) rank.  A failed send means the
  // child just died; do NOT return early — the peers are already headed
  // into the ordered split, which detects the death uniformly and sends
  // everyone back to revoke together.
  if (new_rank == 0) {
    for (int i = 0; i < total_failed; ++i) {
      const int child = shrunken_size + i;
      rc = MPI_Send(&failed_ranks[static_cast<size_t>(i)], 1, MPI_INT, child, kMergeTag,
                    unorder_intracomm);
      if (rc != MPI_SUCCESS) {
        FTR_WARN("repair: old-rank send to child %d failed (%s); split will detect it",
                 child, ftmpi::error_string(rc));
      }
    }
  }

  // Ordered split restores the original rank layout (Fig. 7 keys).
  const int rank_key = select_rank_key(new_rank, shrunken_size, failed_ranks, total_procs);
  t0 = MPI_Wtime();
  MPI_Comm repaired;
  rc = MPI_Comm_split(unorder_intracomm, 0, rank_key, &repaired);
  out.timings.split += MPI_Wtime() - t0;
  FTR_DEBUG("repair: pid %d ordered split rc=%d", ftmpi::self_pid(), rc);
  if (rc != MPI_SUCCESS) return rc;
  out.comm = repaired;
  if (out.mode != RecoveryMode::Degraded) out.mode = RecoveryMode::Repaired;
  return MPI_SUCCESS;
}

int Reconstructor::repair(ftmpi::Comm& broken, ReconstructResult& out) {
  // Bounded retry around repair_once: every failure mode of the pass is
  // observed uniformly by all survivors (see ARCHITECTURE.md), so they
  // restart from revoke in lockstep.  The backoff is charged to virtual
  // time, mirroring a real implementation yielding before re-probing.
  double backoff = cfg_.backoff_base;
  int rc = MPI_ERR_PROC_FAILED;
  for (int attempt = 1; attempt <= cfg_.max_repair_attempts; ++attempt) {
    ++out.attempts;
    rc = repair_once(broken, out);
    if (rc == MPI_SUCCESS) return rc;
    FTR_WARN("repair: attempt %d/%d failed (%s); restarting from revoke after %.2e s",
             attempt, cfg_.max_repair_attempts, ftmpi::error_string(rc), backoff);
    ftmpi::advance(backoff);
    backoff *= cfg_.backoff_factor;
  }
  out.exhausted = true;
  return rc;
}

ReconstructResult Reconstructor::reconstruct(ftmpi::Comm my_world) {
  // Fig. 3: communicatorReconstruct.
  ReconstructResult out;
  const double t_start = MPI_Wtime();

  // Attribution for the failure-detector work: when the detector already
  // knows of a dead member at entry, the barrier below merely confirms it —
  // this rank reached the repair proactively (or a peer's knowledge beat
  // the collective's own failure).  Recorded runtime-wide so runs can
  // compare proactive vs reactive repair entries; free in virtual time.
  if (!my_world.is_null() && ftmpi::detector_knows_failure_in(my_world)) {
    ftmpi::runtime().add("recon.detector_preknown", 1.0);
  }

  MPI_Errhandler new_err_hand;
  MPI_Comm_create_errhandler(mpi_error_handler, &new_err_hand);
  MPI_Comm parent;
  MPI_Comm_get_parent(&parent);

  MPI_Comm reconstructed = my_world;
  int iter_counter = 0;
  bool failure = false;
  do {
    failure = false;
    int return_value = MPI_SUCCESS;
    if (parent.is_null()) {
      // Parent path.
      if (iter_counter == 0) reconstructed = my_world;
      ftr::observe_error(MPI_Comm_set_errhandler(reconstructed, new_err_hand),
                         "reconstruct.errhandler");
      int flag = 1;
      const double t_detect = MPI_Wtime();
      // The agree only synchronizes entry; detection is the barrier's job,
      // so an agree error here is deliberately left to the barrier.
      ftr::observe_error(OMPI_Comm_agree(reconstructed, &flag), "reconstruct.sync.agree");
      return_value = MPI_Barrier(reconstructed);       // detect failure
      FTR_DEBUG("reconstruct: pid %d sync barrier rc=%d", ftmpi::self_pid(), return_value);
      if (return_value != MPI_SUCCESS) {
        // Failure identification (Fig. 8a): the collective work of reaching
        // globally consistent failure knowledge — agree + the detecting
        // barrier + the error-handler acks — plus the group-difference
        // bookkeeping added by repair() below.
        out.timings.failed_list += MPI_Wtime() - t_detect;
        const int rc = repair(reconstructed, out);
        if (rc == MPI_SUCCESS) {
          // Drop the broken handle.
          ftr::observe_error(MPI_Comm_free(&reconstructed), "reconstruct.free");
          reconstructed = out.comm;
          out.repaired = true;
        } else {
          FTR_ERROR("reconstruct: repair failed after %d attempts: %s", out.attempts,
                    ftmpi::error_string(rc));
          out.exhausted = true;
          break;  // give up; the caller inspects `exhausted`
        }
        failure = true;
      }
    } else {
      // Child path: a freshly spawned replacement process.  Any protocol
      // failure here means the repair pass we belong to is being abandoned
      // (the parents observe the same failure and restart from revoke, which
      // respawns us) — an orphaned child simply aborts.
      ftr::observe_error(MPI_Comm_set_errhandler(parent, new_err_hand),
                         "reconstruct.errhandler");
      int flag = 1;
      return_value = OMPI_Comm_agree(parent, &flag);  // synchronize (child part)
      if (return_value != MPI_SUCCESS) {
        FTR_WARN("reconstruct(child): intercomm agree failed (%s); aborting orphan",
                 ftmpi::error_string(return_value));
        ftmpi::abort_self();
      }

      MPI_Comm unorder_intracomm;
      return_value = MPI_Intercomm_merge(parent, /*high=*/1, &unorder_intracomm);
      if (return_value != MPI_SUCCESS) {
        FTR_WARN("reconstruct(child): merge failed (%s); aborting orphan",
                 ftmpi::error_string(return_value));
        ftmpi::abort_self();
      }

      int old_rank = -1;
      MPI_Status status;
      return_value =
          MPI_Recv(&old_rank, 1, MPI_INT, 0, kMergeTag, unorder_intracomm, &status);
      if (return_value != MPI_SUCCESS) {
        FTR_WARN("reconstruct(child): old-rank recv failed (%s); aborting orphan",
                 ftmpi::error_string(return_value));
        ftmpi::abort_self();
      }

      MPI_Comm temp_intracomm;
      return_value = MPI_Comm_split(unorder_intracomm, 0, old_rank, &temp_intracomm);
      ftr::observe_error(MPI_Comm_free(&unorder_intracomm), "reconstruct.free");
      if (return_value != MPI_SUCCESS) {
        FTR_WARN("reconstruct(child): ordered split failed (%s); aborting orphan",
                 ftmpi::error_string(return_value));
        ftmpi::abort_self();
      }
      reconstructed = temp_intracomm;
      out.repaired = true;
      if (out.mode == RecoveryMode::None) out.mode = RecoveryMode::Repaired;

      // Become a parent: next iteration verifies the repaired communicator.
      parent = MPI_COMM_NULL;
      ftmpi::set_parent(MPI_COMM_NULL);
      failure = true;
    }
    ++iter_counter;
    if (failure && iter_counter >= cfg_.max_reconstruct_iterations) {
      FTR_ERROR("reconstruct: iteration budget exhausted (%d); giving up",
                cfg_.max_reconstruct_iterations);
      out.exhausted = true;
      break;
    }
  } while (failure);

  out.comm = reconstructed;
  out.iterations = iter_counter;
  out.timings.total = MPI_Wtime() - t_start;
  return out;
}

}  // namespace ftr::core
