#include "core/failure_gen.hpp"

#include <algorithm>
#include <cassert>

#include "recovery/replication.hpp"

namespace ftr::core {

using ftr::comb::GridRole;
using ftr::comb::Technique;

FailurePlan random_real_failures(const Layout& layout, int count, long max_step,
                                 ftr::Xoshiro256& rng) {
  assert(count < layout.total_procs);
  FailurePlan plan;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    plan.kill_at_step.clear();
    std::vector<int> victims;
    while (static_cast<int>(victims.size()) < count) {
      // Rank 0 is the controlling process and must not fail (paper Sec. III).
      const int r = 1 + static_cast<int>(rng.bounded(
                            static_cast<std::uint64_t>(layout.total_procs - 1)));
      if (std::find(victims.begin(), victims.end(), r) == victims.end()) {
        victims.push_back(r);
      }
    }
    if (layout.config.technique == Technique::ResamplingCopying) {
      const auto lost = layout.grids_of_ranks(victims);
      std::vector<int> lost_ids(lost.begin(), lost.end());
      if (!ftr::rec::rc_loss_allowed(layout.slots, lost_ids)) continue;
    }
    const long step = max_step <= 1 ? 1 : 1 + static_cast<long>(rng.bounded(
                                              static_cast<std::uint64_t>(max_step - 1)));
    for (int r : victims) plan.kill_at_step[r] = step;
    return plan;
  }
  return plan;  // unreachable at the paper's scales
}

FailurePlan random_simulated_losses(const Layout& layout, int count, ftr::Xoshiro256& rng) {
  // Eligible grids: the combination-layer grids and (for RC) duplicates.
  std::vector<int> eligible;
  for (const auto& slot : layout.slots) {
    if (slot.role != GridRole::ExtraLayer) eligible.push_back(slot.id);
  }
  assert(count <= static_cast<int>(eligible.size()));

  FailurePlan plan;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    plan.simulated_lost_grids.clear();
    std::vector<int> pool = eligible;
    for (int k = 0; k < count; ++k) {
      const size_t idx = rng.bounded(pool.size());
      plan.simulated_lost_grids.push_back(pool[idx]);
      pool.erase(pool.begin() + static_cast<long>(idx));
    }
    std::sort(plan.simulated_lost_grids.begin(), plan.simulated_lost_grids.end());
    if (layout.config.technique == Technique::ResamplingCopying &&
        !ftr::rec::rc_loss_allowed(layout.slots, plan.simulated_lost_grids)) {
      continue;
    }
    return plan;
  }
  return plan;
}

}  // namespace ftr::core
