#include "core/failure_gen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/logging.hpp"
#include "recovery/replication.hpp"

namespace ftr::core {

using ftr::comb::GridRole;
using ftr::comb::Technique;

FailurePlan random_real_failures(const Layout& layout, int count, long max_step,
                                 ftr::Xoshiro256& rng) {
  assert(count < layout.total_procs);
  FailurePlan plan;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    plan.kill_at_step.clear();
    std::vector<int> victims;
    while (static_cast<int>(victims.size()) < count) {
      // Rank 0 is the controlling process and must not fail (paper Sec. III).
      const int r = 1 + static_cast<int>(rng.bounded(
                            static_cast<std::uint64_t>(layout.total_procs - 1)));
      if (std::find(victims.begin(), victims.end(), r) == victims.end()) {
        victims.push_back(r);
      }
    }
    if (layout.config.technique == Technique::ResamplingCopying) {
      const auto lost = layout.grids_of_ranks(victims);
      std::vector<int> lost_ids(lost.begin(), lost.end());
      if (!ftr::rec::rc_loss_allowed(layout.slots, lost_ids)) continue;
    }
    const long step = max_step <= 1 ? 1 : 1 + static_cast<long>(rng.bounded(
                                              static_cast<std::uint64_t>(max_step - 1)));
    for (int r : victims) plan.kill_at_step[r] = step;
    return plan;
  }
  return plan;  // unreachable at the paper's scales
}

FailurePlan random_simulated_losses(const Layout& layout, int count, ftr::Xoshiro256& rng) {
  // Eligible grids: the combination-layer grids and (for RC) duplicates.
  std::vector<int> eligible;
  for (const auto& slot : layout.slots) {
    if (slot.role != GridRole::ExtraLayer) eligible.push_back(slot.id);
  }
  assert(count <= static_cast<int>(eligible.size()));

  FailurePlan plan;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    plan.simulated_lost_grids.clear();
    std::vector<int> pool = eligible;
    for (int k = 0; k < count; ++k) {
      const size_t idx = rng.bounded(pool.size());
      plan.simulated_lost_grids.push_back(pool[idx]);
      pool.erase(pool.begin() + static_cast<long>(idx));
    }
    std::sort(plan.simulated_lost_grids.begin(), plan.simulated_lost_grids.end());
    if (layout.config.technique == Technique::ResamplingCopying &&
        !ftr::rec::rc_loss_allowed(layout.slots, plan.simulated_lost_grids)) {
      continue;
    }
    return plan;
  }
  return plan;
}

ArrivalModel arrival_model_from_env(ArrivalModel fallback) {
  ArrivalModel m = fallback;
  if (const char* e = std::getenv("FTR_FAILURE_DIST")) {
    const std::string v(e);
    if (v == "exp" || v == "exponential") {
      m.dist = FailureDist::Exponential;
    } else if (v == "weibull") {
      m.dist = FailureDist::Weibull;
    } else {
      FTR_WARN("failure_gen: ignoring unknown FTR_FAILURE_DIST value '%s'", v.c_str());
    }
  }
  if (const char* e = std::getenv("FTR_FAILURE_SCALE")) {
    const double s = std::atof(e);
    if (s > 0.0) m.scale = s;
  }
  if (const char* e = std::getenv("FTR_FAILURE_SHAPE")) {
    const double k = std::atof(e);
    if (k > 0.0) m.shape = k;
  }
  return m;
}

double draw_interarrival(const ArrivalModel& m, ftr::Xoshiro256& rng) {
  // Inverse-CDF sampling; 1 - uniform() keeps u in (0, 1] so ln is finite.
  const double u = 1.0 - rng.uniform();
  const double e = -std::log(u);
  if (m.dist == FailureDist::Weibull) return m.scale * std::pow(e, 1.0 / m.shape);
  return m.scale * e;
}

FailurePlan scheduled_real_failures(const Layout& layout, int count, long max_step,
                                    const ArrivalModel& model, ftr::Xoshiro256& rng) {
  assert(count < layout.total_procs);
  FailurePlan plan;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    plan.kill_at_step.clear();
    std::vector<int> victims;
    while (static_cast<int>(victims.size()) < count) {
      // Rank 0 is the controlling process and must not fail (paper Sec. III).
      const int r = 1 + static_cast<int>(rng.bounded(
                            static_cast<std::uint64_t>(layout.total_procs - 1)));
      if (std::find(victims.begin(), victims.end(), r) == victims.end()) {
        victims.push_back(r);
      }
    }
    if (layout.config.technique == Technique::ResamplingCopying) {
      const auto lost = layout.grids_of_ranks(victims);
      std::vector<int> lost_ids(lost.begin(), lost.end());
      if (!ftr::rec::rc_loss_allowed(layout.slots, lost_ids)) continue;
    }
    double arrival = 0.0;
    for (int v : victims) {
      arrival += draw_interarrival(model, rng);
      const long step =
          std::clamp(static_cast<long>(std::llround(arrival)), 1l, std::max(max_step - 1, 1l));
      plan.kill_at_step[v] = step;
    }
    return plan;
  }
  return plan;  // unreachable at the paper's scales
}

}  // namespace ftr::core
