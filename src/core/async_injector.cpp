#include "core/async_injector.hpp"

#include <chrono>

#include "common/logging.hpp"

namespace ftr::core {

AsyncFailureInjector::AsyncFailureInjector(ftmpi::Runtime& rt, Options opt)
    : rt_(rt), opt_(std::move(opt)) {
  thread_ = std::thread([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt_.delay_ms));
    for (int rank : opt_.victim_ranks) {
      // World ranks of the initial launch coincide with pids (replacement
      // processes get fresh pids, so an injector targets originals only).
      rt_.kill(rank);
      kills_.fetch_add(1);
      FTR_DEBUG("async injector: killed world rank %d", rank);
      if (!opt_.together) {
        std::this_thread::sleep_for(std::chrono::milliseconds(opt_.delay_ms));
      }
    }
  });
}

void AsyncFailureInjector::join() {
  if (thread_.joinable()) thread_.join();
}

AsyncFailureInjector::~AsyncFailureInjector() { join(); }

}  // namespace ftr::core
