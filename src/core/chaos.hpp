#pragma once
// Deterministic chaos injection for the recovery protocol.
//
// The paper injects failures with kill(getpid(), SIGKILL) *before* recovery
// starts; this subsystem extends that to failures *during* recovery — the
// cascading case.  A ChaosInjector installs a Runtime hook that fires at
// named protocol phase boundaries (see ftmpi::chaos_point): "shrink",
// "agree", "agree.tree" (the tree-structured agreement), "spawn",
// "spawn.done", "merge", "split", "ckpt.write", "buddy.send" (the diskless
// buddy replication boundary), and the failure-detector duties
// "detector.heartbeat" / "detector.gossip".  Each
// scheduled event names a victim pid, a phase, and an occurrence number; the
// victim is killed at the entry of the occurrence-th time *it* reaches that
// phase.  Occurrences are counted per (pid, phase) on the victim's own
// thread, so a schedule is deterministic regardless of how the rank threads
// interleave — the same seed always kills the same process at the same
// protocol step.
//
// Kills happen at phase *entries* (and before any checkpoint state is
// touched for "ckpt.write").  This keeps every injected death equivalent to
// a fail-stop crash between two protocol steps, which is the failure model
// the recovery protocol is hardened against; mid-message deaths inside a
// primitive are modeled by the runtime's fail-stop delivery rules instead.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ftmpi/runtime.hpp"

namespace ftr::core {

/// One scheduled kill: when `victim` enters `phase` for the `occurrence`-th
/// time (1-based, counted per victim and phase), it dies at that boundary.
struct ChaosEvent {
  std::string phase;
  ftmpi::ProcId victim = -1;
  int occurrence = 1;
  /// Kill the victim's whole host (Runtime::fail_host) instead of the single
  /// process.  Failed hosts never free their slots, so on a bounded cluster
  /// (Runtime::Options::max_hosts) this is what exhausts placement and
  /// forces the shrink-mode recovery fallback.
  bool fail_host = false;
};

/// Installs a chaos schedule on a Runtime.  Construct and schedule() before
/// Runtime::run(); the injector must outlive the run.
class ChaosInjector {
 public:
  explicit ChaosInjector(ftmpi::Runtime& rt);
  ~ChaosInjector();

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// Add one event to the schedule.  Not thread-safe against a running
  /// Runtime — schedule everything up front.
  void schedule(ChaosEvent ev);

  /// Number of scheduled events that have fired so far.
  [[nodiscard]] int kills_fired() const;
  /// The events that fired, in firing order (phase/victim/occurrence copies).
  [[nodiscard]] std::vector<ChaosEvent> fired() const;

  /// Deterministic pseudo-random schedule: `kills` events over victims
  /// 1..world_size-1 (never pid 0, so tests can always read results from
  /// rank 0) drawn from `phases`, all with occurrence 1.  The same seed
  /// always yields the same plan.
  static std::vector<ChaosEvent> random_plan(std::uint64_t seed, int world_size, int kills,
                                             const std::vector<std::string>& phases);

 private:
  void on_phase(const char* phase, ftmpi::ProcId pid);

  ftmpi::Runtime& rt_;
  mutable std::mutex mu_;
  std::vector<ChaosEvent> schedule_;
  std::vector<bool> fired_flags_;
  std::vector<ChaosEvent> fired_log_;
  /// Per-(pid, phase) visit counts, keyed on the victim's own thread.
  std::map<std::pair<ftmpi::ProcId, std::string>, int> visits_;
};

}  // namespace ftr::core
