#pragma once
// Non-blocking overlapped recovery (the background-repair state machine).
//
// The paper's recovery path — and our classic reconstruct() — is
// stop-the-world: every survivor parks in shrink/spawn/merge while the
// failed minority is rebuilt.  This module turns repair into a *background
// task*.  On a detector-confirmed failure (or a tripped collective), the
// survivors run one cheap synchronous prefix on the revoked world:
//
//   revoke -> shrink -> failed-rank classification -> continuation/repair
//   split ("repair.split" chaos point)
//
// and then diverge.  Survivors whose grids lost no member move onto a
// derived *continuation* sub-communicator and keep time-stepping; the
// survivors of the affected grids form the *repair* group and run the
// expensive part — spawn/merge/ordered-split plus data restoration —
// asynchronously behind that compute.  Buddy replicas held by continuation
// ranks are staged to the repair leader during the prefix with eager sends
// (injection cost only), so the repair group's restoration never blocks a
// continuation rank.
//
// The two sides meet again at the *doorbell handoff*: the repair leader
// rings a versioned DoorbellWire (repair epoch + detector epoch) over the
// still-live shrunken bridge; continuation ranks poll it group-consistently
// at step boundaries and, on READY, both sides join the repaired full world
// via intercomm_create + intercomm_merge + an ordered split back to the
// original rank layout.  Any failure during the overlap converges every
// survivor onto the classic stop-the-world reconstruct() of the old revoked
// world (ABORT doorbell or bridge revocation; orphaned children abort).
//
// This header holds the protocol pieces (classification, staging wire
// format, doorbell, handoff); the per-rank orchestration lives in
// ft_app.cpp, which owns the solver and recovery state.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "core/layout.hpp"
#include "ftmpi/api.hpp"

namespace ftr::core::overlap {

/// User-plane tags of the overlap protocol on the shrunken bridge and the
/// partial repaired world (well clear of the app's 300..500 range and the
/// buddy store's 9100/9200 range).
inline constexpr int kTagDoorbell = 9300;  ///< repair group -> continuation leader
inline constexpr int kTagStage = 9310;     ///< survivor -> repair leader (replica manifest)
inline constexpr int kTagRestore = 9320;   ///< repair leader -> grid member (+grid id)
inline constexpr int kTagChildInfo = 9330;  ///< repair leader -> respawned child (run state)

/// Doorbell verdicts.
enum Verdict : int {
  kVerdictNone = 0,   ///< no doorbell yet (keep stepping / keep waiting)
  kVerdictReady = 1,  ///< repaired partial world is complete; hand off now
  kVerdictAbort = 2,  ///< background repair failed; fall back to stop-the-world
};

/// The versioned repaired-world announcement.  `repair_epoch` identifies
/// the overlap attempt it belongs to (a doorbell from an aborted earlier
/// attempt must never trigger a handoff); `detector_epoch` carries the
/// sender's failure-knowledge version for the detector-freshness check,
/// exactly like the heartbeat/gossip wires.
struct DoorbellWire {
  std::int32_t verdict = kVerdictNone;
  std::int32_t pad = 0;
  std::uint64_t repair_epoch = 0;
  std::uint64_t detector_epoch = 0;
};

/// Freshness check every DoorbellWire unpack site must observe (ftlint
/// FTL007, same contract as the detector wires): the verdict is meaningful,
/// belongs to this overlap attempt, and was sent under failure knowledge at
/// least as fresh as when the attempt was armed.
FTR_NODISCARD bool epoch_ok(const DoorbellWire& w, std::uint64_t repair_epoch,
                            std::uint64_t armed_detector_epoch);

/// The deterministic continuation/repair partition, computable by every
/// survivor from the shrink outcome alone (no extra communication).
struct Classification {
  std::vector<int> failed;        ///< failed ORIGINAL world ranks, ascending
  std::vector<int> affected;      ///< grids that lost a member, ascending
  std::vector<int> continuation;  ///< surviving original ranks, unaffected grids
  std::vector<int> repair;        ///< surviving original ranks, affected grids
  std::vector<int> rworld;        ///< original ranks of the repaired partial
                                  ///< world (repair + failed), ascending ==
                                  ///< its rank order after the ordered split

  /// Indices into the ascending survivor list == ranks in the shrunken comm.
  int continuation_leader_shrunken = -1;
  int repair_leader_shrunken = -1;
  int repair_leader_old = -1;  ///< original rank of the repair leader

  /// Overlap needs both a non-empty continuation group (someone to keep
  /// stepping) and a repair group with a surviving leader (someone to run
  /// the background protocol and hold the bridge end of the handoff).
  [[nodiscard]] bool overlappable() const {
    return !continuation.empty() && !repair.empty() && !failed.empty();
  }
  /// Rank of `old_rank` in the repaired partial world, -1 if not a member.
  [[nodiscard]] int rworld_rank_of(int old_rank) const;
  /// Rank of the repair leader in the partial repaired world.
  [[nodiscard]] int repair_leader_rworld() const {
    return rworld_rank_of(repair_leader_old);
  }
};

/// Partition the survivors.  `survivor_old_ranks` is the shrunken comm's
/// membership translated to original world ranks (ascending, the shrink
/// preserves relative order); `failed_old_ranks` comes from the
/// failed-procs-list comparison.
[[nodiscard]] Classification classify(const Layout& layout,
                                      const std::vector<int>& survivor_old_ranks,
                                      const std::vector<int>& failed_old_ranks);

/// One staged buddy replica (a generation this survivor holds for a member
/// of an affected grid), shipped to the repair leader during the prefix.
struct StagedReplica {
  int grid = -1;
  int grank = -1;
  long step = -1;
  std::vector<double> data;
};

/// Manifest wire format: [long n] then n records, each [long nbytes] + the
/// pack_replica() bytes of one generation.  An empty manifest (n = 0) is
/// valid — every survivor sends exactly one, so the leader never waits on a
/// message that will not come.
[[nodiscard]] std::vector<std::byte> pack_manifest(const std::vector<StagedReplica>& reps);
[[nodiscard]] std::vector<StagedReplica> unpack_manifest(const std::byte* bytes,
                                                         std::size_t n);

/// Ring the doorbell: eager-send `verdict` to `dst` (a shrunken-comm rank)
/// over the bridge, stamped with this attempt's epoch and the sender's
/// current detector epoch.  Fires the "repair.doorbell" chaos point.
FTR_NODISCARD int ring_doorbell(const ftmpi::Comm& bridge, int dst, int verdict,
                                std::uint64_t repair_epoch);

/// Non-blocking doorbell poll on the bridge (any sender: the leader rings
/// READY, but any repair survivor may ring ABORT).  Drains stale wires;
/// *verdict receives kVerdictNone when no fresh doorbell is buffered.  A
/// revoked bridge reads as ABORT — revocation is the abort channel of last
/// resort when the ringer itself died.
FTR_NODISCARD int poll_doorbell(const ftmpi::Comm& bridge, std::uint64_t repair_epoch,
                                std::uint64_t armed_detector_epoch, int* verdict);

/// The handoff: join this side's sub-communicator with the other side over
/// the bridge and restore the original full-world rank layout.  Collective
/// over `side`; the bridge and leader ranks are significant at the leader
/// only (children of the repair group pass a null bridge).  Fires the
/// "repair.handoff" chaos point.  On success *world_out is the repaired
/// full world with rank == original rank.
FTR_NODISCARD int handoff(const ftmpi::Comm& side, int local_leader, bool continuation_side,
                          int my_old_rank, const ftmpi::Comm& bridge,
                          int remote_leader_shrunken, ftmpi::Comm* world_out);

}  // namespace ftr::core::overlap
