#pragma once
// The fault-tolerant 2D advection application (the paper's Sec. II).
//
// Structure per run:
//   1. setup: split MPI_COMM_WORLD into one group per sub-grid (layout.hpp)
//      and build a ParallelSolver per group;
//   2. solve: all groups advance the same fixed timestep.
//      - CR: the run is divided into C+1 intervals; after each of the first
//        C intervals every rank probes for failures (communicatorReconstruct)
//        and then writes a checkpoint — detection happens *before* the
//        write, as in the paper;
//      - RC/AC: the solver runs straight through; failure detection is
//        tested once, at the end, before the combination;
//   3. repair: on detection, the world is reconstructed (same size, same
//      ranks, children respawned on the original hosts), grid communicators
//      are rebuilt by the same comm_split, and the run state is broadcast
//      so respawned children fast-forward to the right program point;
//   4. recover: lost sub-grids are restored per technique (checkpoint
//      read + recompute / partner copy + resample / alternate-combination
//      sampling);
//   5. combine: grid roots ship their solutions to world rank 0, which
//      forms the combined solution (classic or GCP coefficients) and
//      reports its l1 error against the exact advection solution.
//
// Real failures (SIGKILL-style self-aborts at a planned timestep) and
// simulated failures (grid data treated as lost) are both supported,
// mirroring the paper's two experimental modes.
//
// Results are published on the Runtime blackboard under the keys below.

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "advection/parallel_solver.hpp"
#include "advection/problem.hpp"
#include "core/failure_gen.hpp"
#include "core/layout.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/runtime.hpp"
#include "recovery/checkpoint.hpp"

namespace ftr::core {

namespace keys {
inline constexpr const char* kTotalTime = "app.total_time";
inline constexpr const char* kSolveTime = "app.solve_time";
inline constexpr const char* kCombineTime = "combine.time";
inline constexpr const char* kErrorL1 = "error.l1";
inline constexpr const char* kProcs = "app.procs";
inline constexpr const char* kReconTotal = "recon.total";
inline constexpr const char* kReconFailedList = "recon.failed_list";
inline constexpr const char* kReconShrink = "recon.shrink";
inline constexpr const char* kReconSpawn = "recon.spawn";
inline constexpr const char* kReconAgree = "recon.agree";
inline constexpr const char* kReconMerge = "recon.merge";
inline constexpr const char* kReconSplit = "recon.split";
inline constexpr const char* kRecoveryTime = "recovery.time";
inline constexpr const char* kCkptWriteTotal = "ckpt.write_total";
inline constexpr const char* kCkptWrites = "ckpt.writes";
inline constexpr const char* kRepairs = "app.repairs";
/// How the run recovered: 0 = no failure, 1 = full repair (original size and
/// rank order restored), 2 = shrink-mode degradation (continued on the
/// shrunken world; see RecoveryMode).
inline constexpr const char* kReconMode = "recon.mode";
/// Total repair attempts (retries included) across every reconstruction.
inline constexpr const char* kReconAttempts = "recon.attempts";
/// World size the run finished with (== app.procs unless degraded).
inline constexpr const char* kSurvivors = "app.survivors";
}  // namespace keys

struct AppConfig {
  LayoutConfig layout;
  ftr::advection::Problem problem{};
  long timesteps = 128;
  double cfl = 0.9;
  /// CR: number of checkpoints C (paper Eq. 2; benches compute it from the
  /// policy).  The run is split into C+1 intervals with a detection point
  /// and a write after each of the first C.
  long checkpoints = 3;
  FailurePlan failures;
  /// Push recovered data back onto the lost grids' groups (exercises the
  /// full recovery path; costs a scatter per lost grid).
  bool scatter_recovered = true;
  /// Compute the combined solution and its l1 error at world rank 0.
  bool measure_error = true;
  /// Non-empty: back the checkpoint store with real files under this
  /// directory (removed on destruction) instead of memory.  I/O *costs*
  /// are identical — they come from the cluster profile either way.
  std::string checkpoint_dir;
  std::string app_name = "ft_pde_app";
};

class FtApp {
 public:
  explicit FtApp(AppConfig cfg);

  /// Register this app with the runtime and run it on the layout's process
  /// count.  Returns the number of killed processes.  Results are on the
  /// runtime blackboard.
  int launch(ftmpi::Runtime& rt);

  [[nodiscard]] const Layout& layout() const { return layout_; }
  [[nodiscard]] const AppConfig& config() const { return cfg_; }
  [[nodiscard]] ftr::rec::CheckpointStore& checkpoint_store() { return *store_; }

  /// The per-rank entry point (public so tests can drive it directly).
  void entry(const std::vector<std::string>& argv);

 private:
  struct RankState;  // defined in ft_app.cpp

  /// Run the CR interval loop starting at `start_interval` (non-zero for
  /// respawned children fast-forwarding).
  void run_checkpoint_restart_from(RankState& st, long start_interval);
  void run_combination_technique(RankState& st);  // RC and AC share this path

  /// Step boundary of CR interval i (timesteps for i >= checkpoints).
  [[nodiscard]] long interval_target(long interval) const;

  /// Advance to `target` steps, firing planned kills; errors fall through
  /// to the next detection point.
  int solve_to(RankState& st, long target);

  /// Record the outcome of one reconstruct() on the rank state (world swap,
  /// failed-rank bookkeeping incl. degraded-rank translation, rank-0
  /// metrics).  Returns false when the reconstruction exhausted its budget
  /// and the run must stop.
  bool adopt_reconstruction(RankState& st, const ReconstructResult& res);

  /// Everything that happens right after a repair: broadcast of the run
  /// state to the (possibly respawned) world, grid-communicator rebuild,
  /// and per-technique restoration of the lost grids.  In degraded mode the
  /// grids that lost members stay lost (their survivors idle) and recovery
  /// is deferred to the GCP combination.
  void post_repair(RankState& st, long interval_index, bool is_child);

  /// Technique-specific restoration of lost grids (used for both real and
  /// simulated losses).
  void cr_restore(RankState& st, const std::vector<int>& lost, long target);
  void rc_restore(RankState& st, const std::vector<int>& lost);

  /// Recovery of simulated losses + final combination and error report.
  void recovery_and_combine(RankState& st);

  static void accumulate_timings(RankState& st, const ReconstructTimings& t);
  void maybe_self_kill(const RankState& st, long step);
  [[nodiscard]] std::vector<double> pack_interior(const ftr::grid::LocalField& f) const;
  void unpack_interior(const std::vector<double>& v, ftr::grid::LocalField& f) const;

  AppConfig cfg_;
  Layout layout_;
  std::shared_ptr<ftr::rec::CheckpointStore> store_;

  // Kill bookkeeping shared by all rank threads: each planned kill fires
  // exactly once (a respawned process re-runs the same timesteps and must
  // not die again).
  std::mutex kill_mu_;
  std::set<int> fired_kills_;
  std::set<int> fired_host_fails_;
};

}  // namespace ftr::core
