#pragma once
// The fault-tolerant 2D advection application (the paper's Sec. II).
//
// Structure per run:
//   1. setup: split MPI_COMM_WORLD into one group per sub-grid (layout.hpp)
//      and build a ParallelSolver per group;
//   2. solve: all groups advance the same fixed timestep.
//      - CR: the run is divided into C+1 intervals; after each of the first
//        C intervals every rank probes for failures (communicatorReconstruct)
//        and then writes a checkpoint — detection happens *before* the
//        write, as in the paper;
//      - RC/AC: the solver runs straight through; failure detection is
//        tested once, at the end, before the combination;
//   3. repair: on detection, the world is reconstructed (same size, same
//      ranks, children respawned on the original hosts), grid communicators
//      are rebuilt by the same comm_split, and the run state is broadcast
//      so respawned children fast-forward to the right program point;
//   4. recover: lost sub-grids are restored per technique (checkpoint
//      read + recompute / partner copy + resample / alternate-combination
//      sampling);
//   5. combine: grid roots ship their solutions to world rank 0, which
//      forms the combined solution (classic or GCP coefficients) and
//      reports its l1 error against the exact advection solution.
//
// Real failures (SIGKILL-style self-aborts at a planned timestep) and
// simulated failures (grid data treated as lost) are both supported,
// mirroring the paper's two experimental modes.
//
// Results are published on the Runtime blackboard under the keys below.

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "advection/parallel_solver.hpp"
#include "advection/problem.hpp"
#include "core/async_repair.hpp"
#include "core/failure_gen.hpp"
#include "core/layout.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/runtime.hpp"
#include "recovery/buddy.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/planner.hpp"

namespace ftr::core {

namespace keys {
inline constexpr const char* kTotalTime = "app.total_time";
inline constexpr const char* kSolveTime = "app.solve_time";
inline constexpr const char* kCombineTime = "combine.time";
inline constexpr const char* kErrorL1 = "error.l1";
inline constexpr const char* kProcs = "app.procs";
inline constexpr const char* kReconTotal = "recon.total";
inline constexpr const char* kReconFailedList = "recon.failed_list";
inline constexpr const char* kReconShrink = "recon.shrink";
inline constexpr const char* kReconSpawn = "recon.spawn";
inline constexpr const char* kReconAgree = "recon.agree";
inline constexpr const char* kReconMerge = "recon.merge";
inline constexpr const char* kReconSplit = "recon.split";
inline constexpr const char* kRecoveryTime = "recovery.time";
inline constexpr const char* kCkptWriteTotal = "ckpt.write_total";
inline constexpr const char* kCkptWrites = "ckpt.writes";
inline constexpr const char* kRepairs = "app.repairs";
/// How the run recovered: 0 = no failure, 1 = full repair (original size and
/// rank order restored), 2 = shrink-mode degradation (continued on the
/// shrunken world; see RecoveryMode).
inline constexpr const char* kReconMode = "recon.mode";
/// Total repair attempts (retries included) across every reconstruction.
inline constexpr const char* kReconAttempts = "recon.attempts";
/// World size the run finished with (== app.procs unless degraded).
inline constexpr const char* kSurvivors = "app.survivors";
/// Bytes of recovery-source data moved to restore lost grids (partner
/// copies, buddy fetches, checkpoint reads).
inline constexpr const char* kRecoveryBytes = "recon.recovery_bytes";
/// Per-action plan decision counts, e.g. "recon.plan.rc_copy",
/// "recon.plan.buddy", "recon.plan.disk", "recon.plan.gcp",
/// "recon.plan.idle"; per grid, "recon.plan.grid<N>" holds the
/// RecoveryAction enum value chosen for grid N.
inline constexpr const char* kPlanPrefix = "recon.plan.";
/// Diskless buddy replication totals (store-wide) and the virtual time
/// rank 0 spent in its replication ticks.
inline constexpr const char* kBuddyReplications = "recon.buddy.replications";
inline constexpr const char* kBuddyReplBytes = "recon.buddy.repl_bytes";
inline constexpr const char* kBuddyReplTime = "recon.buddy.repl_time";
/// Proactive detection (runtime-wide counters, accumulated across ranks):
/// solve-loop exits armed by the failure detector before any collective
/// failed, and how many of those pre-staged this rank's grid as a likely
/// recovery source (harvesting in-flight buddy replicas early).
inline constexpr const char* kProactiveExits = "recon.proactive.exits";
inline constexpr const char* kProactivePrestaged = "recon.proactive.prestaged";
/// Overlapped recovery (FTR_RECOVERY=overlap): successful doorbell handoffs
/// onto a background-repaired world, attempts aborted back to the classic
/// stop-the-world path, and the timesteps continuation ranks computed while
/// a repair was in flight (the steps the classic path would have lost).
inline constexpr const char* kOverlapHandoffs = "recon.overlap.handoffs";
inline constexpr const char* kOverlapAborts = "recon.overlap.aborts";
inline constexpr const char* kOverlapSteps = "recon.overlap.steps";
}  // namespace keys

/// How lost grids are restored after a repair.
///   Technique — the paper's behaviour: the layout's technique dictates the
///               restoration (CR reads checkpoints, RC copies partners, AC
///               recombines);
///   Planner   — the unified preference lattice (RC copy -> RC resample ->
///               buddy snapshot -> disk checkpoint -> GCP -> idle), picking
///               the cheapest feasible source per lost grid;
///   Cr/Rc/Ac  — force one technique's restoration regardless of layout
///               (infeasible patterns degrade to GCP/idle, never crash).
///   Overlap   — non-blocking overlapped recovery: survivors of unaffected
///               grids keep time-stepping on a continuation sub-communicator
///               while the affected grids' survivors rebuild the world in
///               the background (spawn/merge/split + buddy/disk restore);
///               the sides rejoin at a versioned doorbell handoff.  Any
///               failure of the overlap falls back to the classic
///               stop-the-world reconstruct.  Restoration follows the
///               planner lattice.
/// The FTR_RECOVERY environment variable (planner|cr|rc|ac|technique|
/// overlap) overrides the configured value at construction time.
enum class RecoveryPolicy { Technique, Planner, Cr, Rc, Ac, Overlap };

struct AppConfig {
  LayoutConfig layout;
  ftr::advection::Problem problem{};
  long timesteps = 128;
  double cfl = 0.9;
  /// CR: number of checkpoints C (paper Eq. 2; benches compute it from the
  /// policy).  The run is split into C+1 intervals with a detection point
  /// and a write after each of the first C.
  long checkpoints = 3;
  FailurePlan failures;
  /// Push recovered data back onto the lost grids' groups (exercises the
  /// full recovery path; costs a scatter per lost grid).
  bool scatter_recovered = true;
  /// Compute the combined solution and its l1 error at world rank 0.
  bool measure_error = true;
  /// Non-empty: back the checkpoint store with real files under this
  /// directory (removed on destruction) instead of memory.  I/O *costs*
  /// are identical — they come from the cluster profile either way.
  std::string checkpoint_dir;
  std::string app_name = "ft_pde_app";
  /// Restoration policy (see RecoveryPolicy; FTR_RECOVERY overrides).
  RecoveryPolicy recovery = RecoveryPolicy::Technique;
  /// Diskless buddy replication interval in timesteps (0 = off): every
  /// `buddy_every` steps each rank streams its block to its buddy rank.
  /// FTR_BUDDY_EVERY overrides.
  long buddy_every = 0;
  /// Act on failure-detector notifications between timesteps: a rank that
  /// learns of a failure (heartbeat timeout or gossip) leaves the solve
  /// loop and heads for the detection point immediately, arming recovery
  /// (planner pre-staging, early buddy harvest) instead of waiting for a
  /// collective on the broken communicator to fail.  Off by default:
  /// *when* gossip arrives at a given timestep depends on real message
  /// timing, so proactive exits trade run-to-run virtual-time
  /// reproducibility for failure-to-repair latency.  FTR_PROACTIVE
  /// (on|off) overrides; requires the detector (FTR_DETECTOR != off).
  /// Overlapped recovery turns this on unless FTR_PROACTIVE says off.
  bool proactive_recovery = false;
  /// Overlapped recovery: continuation ranks poll the doorbell every this
  /// many timesteps (>= 1).  FTR_DOORBELL_POLL overrides.
  long doorbell_poll = 1;
};

class FtApp {
 public:
  explicit FtApp(AppConfig cfg);

  /// Register this app with the runtime and run it on the layout's process
  /// count.  Returns the number of killed processes.  Results are on the
  /// runtime blackboard.
  int launch(ftmpi::Runtime& rt);

  [[nodiscard]] const Layout& layout() const { return layout_; }
  [[nodiscard]] const AppConfig& config() const { return cfg_; }
  [[nodiscard]] ftr::rec::CheckpointStore& checkpoint_store() { return *store_; }
  [[nodiscard]] ftr::rec::BuddyStore& buddy_store() { return *buddy_; }

  /// The per-rank entry point (public so tests can drive it directly).
  void entry(const std::vector<std::string>& argv);

 private:
  struct RankState;  // defined in ft_app.cpp

  /// Run the CR interval loop starting at `start_interval` (non-zero for
  /// respawned children fast-forwarding).
  void run_checkpoint_restart_from(RankState& st, long start_interval);
  void run_combination_technique(RankState& st);  // RC and AC share this path

  /// Step boundary of CR interval i (timesteps for i >= checkpoints).
  [[nodiscard]] long interval_target(long interval) const;

  /// Advance to `target` steps, firing planned kills; errors fall through
  /// to the next detection point.
  int solve_to(RankState& st, long target);

  /// Proactive detection check between timesteps (cfg_.proactive_recovery):
  /// true when the failure detector knows of a dead member of the current
  /// world, after arming recovery (prestage_sources + early buddy harvest).
  [[nodiscard]] bool proactive_failure_pending(RankState& st);

  /// Record the outcome of one reconstruct() on the rank state (world swap,
  /// failed-rank bookkeeping incl. degraded-rank translation, rank-0
  /// metrics).  Returns false when the reconstruction exhausted its budget
  /// and the run must stop.
  bool adopt_reconstruction(RankState& st, const ReconstructResult& res);

  /// Everything that happens right after a repair: broadcast of the run
  /// state to the (possibly respawned) world, grid-communicator rebuild,
  /// and per-technique restoration of the lost grids.  In degraded mode the
  /// grids that lost members stay lost (their survivors idle) and recovery
  /// is deferred to the GCP combination.
  void post_repair(RankState& st, long interval_index, bool is_child);

  /// Planner-driven restoration of lost grids (both real and simulated
  /// losses): agree on the facts, compute the plan over the preference
  /// lattice, broadcast it, execute it.  Grids whose entries end in
  /// Gcp/Idle join st.unrestored and are absorbed by the combination.
  void restore_lost_grids(RankState& st, const std::vector<int>& lost, long target,
                          bool charge_gcp_coeffs);
  /// Gather buddy availability to world rank 0, plan there, broadcast
  /// (Lattice mode only — the Force* plans need no negotiation round).
  ftr::rec::RecoveryPlan negotiate_plan(RankState& st, const std::vector<int>& lost);
  void execute_plan(RankState& st, const ftr::rec::RecoveryPlan& plan, long target,
                    bool charge_gcp_coeffs);

  /// One rung of the lattice each: CR rollback of one grid's group,
  /// partner copy/resample, buddy-snapshot fetch + recompute.
  void cr_restore(RankState& st, const std::vector<int>& lost, long target);
  void rc_restore_one(RankState& st, int lost_id, int partner, long target);
  void buddy_restore_one(RankState& st, int grid, long step, long target);

  /// The planner mode the configured policy maps to.
  [[nodiscard]] ftr::rec::PlannerMode planner_mode() const;
  /// GCP depth the combination will solve with (must match the planner's).
  [[nodiscard]] int gcp_depth() const;
  /// Replication tick: drain incoming replicas, stream our block out.
  void buddy_tick(RankState& st);
  /// Harvest in-flight replicas before the world communicator is replaced.
  void drain_buddies(RankState& st);

  /// Recovery of simulated losses + final combination and error report.
  void recovery_and_combine(RankState& st);

  // --- non-blocking overlapped recovery (RecoveryPolicy::Overlap) ----------
  struct OverlapView;  // defined in ft_app.cpp

  /// Collective over the (possibly broken) world at a detection point.
  /// Runs the uniform suspicion probe; when a failure is confirmed and the
  /// loss pattern is overlappable, splits the survivors into continuation
  /// and repair sides and drives them to a doorbell handoff.  Returns true
  /// iff the repaired world was adopted (the caller skips the classic
  /// reconstruct); false means "no failure" or "overlap aborted" — either
  /// way the classic detection point right after sorts it out.
  bool try_overlap_recovery(RankState& st, long interval, int step_rc);
  /// Continuation side: keep time-stepping to the interval target, polling
  /// the doorbell group-consistently at step boundaries.
  bool overlap_continuation(RankState& st, long interval,
                            const overlap::Classification& cls, const ftmpi::Comm& bridge,
                            const ftmpi::Comm& ccomm, std::uint64_t epoch);
  /// Count the abort, drop the repair-pending gate and revoke the overlap
  /// communicators so both sides converge on the classic fallback.
  bool overlap_abort_continuation(RankState& st, const ftmpi::Comm& ccomm,
                                  const ftmpi::Comm& bridge);
  /// Repair-side abort: ring the ABORT doorbell, then revoke the bridge and
  /// the repair sub-communicator so both sides (and any children parked in
  /// the protocol) converge on the classic fallback.
  bool overlap_abort_repair(RankState& st, const ftmpi::Comm& bridge,
                            const ftmpi::Comm& rcomm, const overlap::Classification& cls,
                            std::uint64_t epoch, const char* why);
  /// Restoration abort: revoke the partial repaired world, flushing every
  /// member (children included) out of the protocol; survivors then run the
  /// repair-side abort, children abort and get respawned classically.
  bool overlap_abort_restore(RankState& st, const ftmpi::Comm& rworld, const char* why);
  /// Repair side (survivors): spawn/merge/ordered-split the partial world,
  /// verify it in lockstep with the children, ship them the run state,
  /// drain the staged replica manifests, then restore and hand off.
  bool overlap_repair(RankState& st, long interval, const overlap::Classification& cls,
                      const ftmpi::Comm& bridge, const ftmpi::Comm& rcomm,
                      std::uint64_t epoch, std::vector<overlap::StagedReplica> staged);
  /// Shared by repair survivors and respawned children: grid communicators
  /// over the partial world, plan + restore the affected grids, completion
  /// barrier, doorbell, handoff, adoption.
  bool overlap_repair_world(RankState& st, ftmpi::Comm rworld, const OverlapView& view,
                            const ftmpi::Comm& bridge, int cont_leader_shrunken,
                            std::uint64_t epoch, bool is_child,
                            std::vector<overlap::StagedReplica> staged);
  /// Child entry: receive the run state from the repair leader on the
  /// partial world and join overlap_repair_world.  Aborts the process on
  /// any failure (the classic fallback respawns it).
  void overlap_child(RankState& st);
  /// Swap onto the repaired full world (rank == original rank) and agree on
  /// the unrestored set.
  bool overlap_adopt(RankState& st, ftmpi::Comm nworld, int leader_old,
                     std::uint64_t epoch);

  static void accumulate_timings(RankState& st, const ReconstructTimings& t);
  void maybe_self_kill(const RankState& st, long step);
  [[nodiscard]] std::vector<double> pack_interior(const ftr::grid::LocalField& f) const;
  void unpack_interior(const std::vector<double>& v, ftr::grid::LocalField& f) const;

  AppConfig cfg_;
  Layout layout_;
  std::shared_ptr<ftr::rec::CheckpointStore> store_;
  std::shared_ptr<ftr::rec::BuddyStore> buddy_;

  // Kill bookkeeping shared by all rank threads: each planned kill fires
  // exactly once (a respawned process re-runs the same timesteps and must
  // not die again).
  std::mutex kill_mu_;
  std::set<int> fired_kills_;
  std::set<int> fired_host_fails_;
};

}  // namespace ftr::core
