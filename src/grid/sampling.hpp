#pragma once
// Inter-grid transfer operators.
//
// The recovery techniques move data between sub-grids of different levels:
//   - Resampling & Copying restricts a finer diagonal grid onto the coarser
//     lower-diagonal grid below it (the coarse points are a subset of the
//     fine points, so restriction is injection);
//   - the Alternate Combination samples the combined solution at a lost
//     grid's points (general bilinear interpolation).
//
// All three operators are thin wrappers over the separable transfer engine
// (grid/transfer.hpp): table-driven row kernels with cached per-level-pair
// axis maps, equivalent to the legacy per-point Grid2D::sample() loop to a
// few ulps (and exactly, for refinement maps).

#include "grid/grid2d.hpp"

namespace ftr::grid {

/// True when every point of `coarse` coincides with a point of `fine`
/// (componentwise coarse.level <= fine.level).
[[nodiscard]] bool is_refinement(Level coarse, Level fine);

/// Injection restriction: copy the fine values at the coarse points.
/// Requires is_refinement(coarse.level(), fine.level()).
void restrict_inject(const Grid2D& fine, Grid2D& coarse);

/// General transfer by bilinear interpolation: set every point of `dst`
/// from the interpolant of `src`.  Exact when src refines dst.
void interpolate(const Grid2D& src, Grid2D& dst);

/// Prolongate `coarse` onto the points of `fine` by bilinear interpolation
/// (alias of interpolate with the roles made explicit).
inline void prolongate(const Grid2D& coarse, Grid2D& fine) { interpolate(coarse, fine); }

/// Add c * interpolant-of-src to every point of dst (used by the parallel
/// combination: dst accumulates sum_k c_k I(u_k)).
void accumulate_interpolated(const Grid2D& src, double coefficient, Grid2D& dst);

}  // namespace ftr::grid
