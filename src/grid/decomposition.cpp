#include "grid/decomposition.hpp"
#include "common/annotations.hpp"

#include <cassert>
#include <cmath>

namespace ftr::grid {

std::pair<int, int> near_square_factors(int nprocs) {
  assert(nprocs >= 1);
  int best_py = 1;
  for (int py = 1; py * py <= nprocs; ++py) {
    if (nprocs % py == 0) best_py = py;
  }
  return {nprocs / best_py, best_py};  // px >= py
}

Decomposition::Decomposition(Level level, int px, int py) : level_(level), px_(px), py_(py) {
  assert(px >= 1 && py >= 1);
  assert(px <= unique_nx() && py <= unique_ny());
}

Decomposition::Decomposition(Level level, int nprocs) : level_(level) {
  auto [px, py] = near_square_factors(nprocs);
  // A very anisotropic grid may not accommodate a near-square layout;
  // flatten the process grid along the thin dimension if needed.
  if (py > (1 << level.y)) {
    py = 1 << level.y;
    px = nprocs / py;
  }
  if (px > (1 << level.x)) {
    px = 1 << level.x;
    py = nprocs / px;
  }
  px_ = px;
  py_ = py;
  assert(px_ * py_ == nprocs && "process count must factor onto the grid");
}

std::pair<int, int> Decomposition::split_range(int n, int parts, int idx) {
  const int base = n / parts;
  const int rem = n % parts;
  const int lo = idx * base + std::min(idx, rem);
  const int hi = lo + base + (idx < rem ? 1 : 0);
  return {lo, hi};
}

Block Decomposition::block(int rank) const {
  const auto [cx, cy] = coords(rank);
  const auto [x0, x1] = split_range(unique_nx(), px_, cx);
  const auto [y0, y1] = split_range(unique_ny(), py_, cy);
  return Block{x0, x1, y0, y1};
}

int Decomposition::west(int rank) const {
  const auto [cx, cy] = coords(rank);
  return rank_at(cx - 1, cy);
}
int Decomposition::east(int rank) const {
  const auto [cx, cy] = coords(rank);
  return rank_at(cx + 1, cy);
}
int Decomposition::south(int rank) const {
  const auto [cx, cy] = coords(rank);
  return rank_at(cx, cy - 1);
}
int Decomposition::north(int rank) const {
  const auto [cx, cy] = coords(rank);
  return rank_at(cx, cy + 1);
}

void LocalField::load_from(const Grid2D& full) {
  for (int ly = 0; ly < block_.height(); ++ly) {
    for (int lx = 0; lx < block_.width(); ++lx) {
      at(lx, ly) = full.at(block_.x0 + lx, block_.y0 + ly);
    }
  }
}

void LocalField::store_to(Grid2D& full) const {
  for (int ly = 0; ly < block_.height(); ++ly) {
    for (int lx = 0; lx < block_.width(); ++lx) {
      full.at(block_.x0 + lx, block_.y0 + ly) = at(lx, ly);
    }
  }
}

std::vector<double> LocalField::pack_column(int lx) const {
  std::vector<double> v;
  pack_column_into(lx, v);
  return v;
}

std::vector<double> LocalField::pack_row(int ly) const {
  std::vector<double> v;
  pack_row_into(ly, v);
  return v;
}

FTR_HOT void LocalField::pack_column_into(int lx, std::vector<double>& v) const {
  // ftlint:allow(FTL003 warm-up growth of persistent halo scratch)
  v.resize(static_cast<size_t>(block_.height()));
  for (int ly = 0; ly < block_.height(); ++ly) v[static_cast<size_t>(ly)] = at(lx, ly);
}

FTR_HOT void LocalField::pack_row_into(int ly, std::vector<double>& v) const {
  // ftlint:allow(FTL003 warm-up growth of persistent halo scratch)
  v.resize(static_cast<size_t>(block_.width()));
  for (int lx = 0; lx < block_.width(); ++lx) v[static_cast<size_t>(lx)] = at(lx, ly);
}

FTR_HOT void LocalField::unpack_halo_column(int lx, const std::vector<double>& v) {
  for (int ly = 0; ly < block_.height(); ++ly) at(lx, ly) = v[static_cast<size_t>(ly)];
}

FTR_HOT void LocalField::unpack_halo_row(int ly, const std::vector<double>& v) {
  for (int lx = 0; lx < block_.width(); ++lx) at(lx, ly) = v[static_cast<size_t>(lx)];
}

}  // namespace ftr::grid
