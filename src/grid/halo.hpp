#pragma once
// Halo exchange between the blocks of one sub-grid's process group.
//
// The Lax-Wendroff sweeps need one ghost point in the sweep direction;
// exchange_x fills the west/east halo columns and exchange_y the
// south/north halo rows, with periodic wrap.  Self-neighboring directions
// (a single process column/row) wrap locally without messages.
//
// All sends are eager (the ftmpi runtime buffers them), so the symmetric
// send-then-receive pattern cannot deadlock.

#include "ftmpi/api.hpp"
#include "common/annotations.hpp"
#include "grid/decomposition.hpp"

namespace ftr::grid {

/// Fill the west (-1) and east (width) halo columns.  Returns the first
/// ftmpi error code encountered (failures surface here during a real
/// process-failure run).
FTR_NODISCARD int exchange_x(LocalField& f, const Decomposition& d, const ftmpi::Comm& comm);

/// Fill the south (-1) and north (height) halo rows.
FTR_NODISCARD int exchange_y(LocalField& f, const Decomposition& d, const ftmpi::Comm& comm);

}  // namespace ftr::grid
