#include "grid/halo.hpp"

#include "ftmpi/request.hpp"

namespace ftr::grid {

namespace {
// Distinct user tags per direction keep concurrent exchanges unambiguous.
constexpr int kTagWest = 101;   // data travelling westwards (to the west neighbor)
constexpr int kTagEast = 102;   // data travelling eastwards
constexpr int kTagSouth = 103;
constexpr int kTagNorth = 104;
}  // namespace

int exchange_x(LocalField& f, const Decomposition& d, const ftmpi::Comm& comm) {
  const int rank = comm.rank();
  const Block& b = f.block();
  if (d.px() == 1) {
    // Periodic wrap within the single owner of every column.
    f.unpack_halo_column(-1, f.pack_column(b.width() - 1));
    f.unpack_halo_column(b.width(), f.pack_column(0));
    return ftmpi::kSuccess;
  }
  const int west = d.west(rank);
  const int east = d.east(rank);

  // MPI-idiomatic pattern: post both receives, send both edges, wait.
  std::vector<double> from_east(static_cast<size_t>(b.height()));
  std::vector<double> from_west(static_cast<size_t>(b.height()));
  ftmpi::Request reqs[2];
  int rc = ftmpi::irecv(from_east.data(), static_cast<int>(from_east.size()), east,
                        kTagWest, comm, &reqs[0]);
  if (rc != ftmpi::kSuccess) return rc;
  rc = ftmpi::irecv(from_west.data(), static_cast<int>(from_west.size()), west, kTagEast,
                    comm, &reqs[1]);
  if (rc != ftmpi::kSuccess) return rc;

  const auto west_edge = f.pack_column(0);
  const auto east_edge = f.pack_column(b.width() - 1);
  rc = ftmpi::send(west_edge.data(), static_cast<int>(west_edge.size()), west, kTagWest,
                   comm);
  if (rc != ftmpi::kSuccess) return rc;
  rc = ftmpi::send(east_edge.data(), static_cast<int>(east_edge.size()), east, kTagEast,
                   comm);
  if (rc != ftmpi::kSuccess) return rc;

  rc = ftmpi::waitall(reqs, 2);
  if (rc != ftmpi::kSuccess) return rc;
  f.unpack_halo_column(b.width(), from_east);
  f.unpack_halo_column(-1, from_west);
  return ftmpi::kSuccess;
}

int exchange_y(LocalField& f, const Decomposition& d, const ftmpi::Comm& comm) {
  const int rank = comm.rank();
  const Block& b = f.block();
  if (d.py() == 1) {
    f.unpack_halo_row(-1, f.pack_row(b.height() - 1));
    f.unpack_halo_row(b.height(), f.pack_row(0));
    return ftmpi::kSuccess;
  }
  const int south = d.south(rank);
  const int north = d.north(rank);

  std::vector<double> from_north(static_cast<size_t>(b.width()));
  std::vector<double> from_south(static_cast<size_t>(b.width()));
  ftmpi::Request reqs[2];
  int rc = ftmpi::irecv(from_north.data(), static_cast<int>(from_north.size()), north,
                        kTagSouth, comm, &reqs[0]);
  if (rc != ftmpi::kSuccess) return rc;
  rc = ftmpi::irecv(from_south.data(), static_cast<int>(from_south.size()), south,
                    kTagNorth, comm, &reqs[1]);
  if (rc != ftmpi::kSuccess) return rc;

  const auto south_edge = f.pack_row(0);
  const auto north_edge = f.pack_row(b.height() - 1);
  rc = ftmpi::send(south_edge.data(), static_cast<int>(south_edge.size()), south, kTagSouth,
                   comm);
  if (rc != ftmpi::kSuccess) return rc;
  rc = ftmpi::send(north_edge.data(), static_cast<int>(north_edge.size()), north, kTagNorth,
                   comm);
  if (rc != ftmpi::kSuccess) return rc;

  rc = ftmpi::waitall(reqs, 2);
  if (rc != ftmpi::kSuccess) return rc;
  f.unpack_halo_row(b.height(), from_north);
  f.unpack_halo_row(-1, from_south);
  return ftmpi::kSuccess;
}

}  // namespace ftr::grid
