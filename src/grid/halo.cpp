#include "grid/halo.hpp"

#include "ftmpi/request.hpp"

namespace ftr::grid {

namespace {
// Distinct user tags per direction keep concurrent exchanges unambiguous.
constexpr int kTagWest = 101;   // data travelling westwards (to the west neighbor)
constexpr int kTagEast = 102;   // data travelling eastwards
constexpr int kTagSouth = 103;
constexpr int kTagNorth = 104;
}  // namespace

int exchange_x(LocalField& f, const Decomposition& d, const ftmpi::Comm& comm) {
  const int rank = comm.rank();
  const Block& b = f.block();
  auto& hs = f.halo_scratch();
  if (d.px() == 1) {
    // Periodic wrap within the single owner of every column.
    f.pack_column_into(b.width() - 1, hs.send[0]);
    f.unpack_halo_column(-1, hs.send[0]);
    f.pack_column_into(0, hs.send[1]);
    f.unpack_halo_column(b.width(), hs.send[1]);
    return ftmpi::kSuccess;
  }
  const int west = d.west(rank);
  const int east = d.east(rank);

  // MPI-idiomatic pattern: post both receives, send both edges, wait.  All
  // buffers are the field's persistent scratch; no per-step allocation.
  auto& from_west = hs.recv[0];
  auto& from_east = hs.recv[1];
  from_west.resize(static_cast<size_t>(b.height()));
  from_east.resize(static_cast<size_t>(b.height()));
  ftmpi::Request reqs[2];
  int rc = ftmpi::irecv(from_east.data(), static_cast<int>(from_east.size()), east,
                        kTagWest, comm, &reqs[0]);
  if (rc != ftmpi::kSuccess) return rc;
  rc = ftmpi::irecv(from_west.data(), static_cast<int>(from_west.size()), west, kTagEast,
                    comm, &reqs[1]);
  if (rc != ftmpi::kSuccess) return rc;

  auto& west_edge = hs.send[0];
  auto& east_edge = hs.send[1];
  f.pack_column_into(0, west_edge);
  f.pack_column_into(b.width() - 1, east_edge);
  rc = ftmpi::send(west_edge.data(), static_cast<int>(west_edge.size()), west, kTagWest,
                   comm);
  if (rc != ftmpi::kSuccess) return rc;
  rc = ftmpi::send(east_edge.data(), static_cast<int>(east_edge.size()), east, kTagEast,
                   comm);
  if (rc != ftmpi::kSuccess) return rc;

  rc = ftmpi::waitall(reqs, 2);
  if (rc != ftmpi::kSuccess) return rc;
  f.unpack_halo_column(b.width(), from_east);
  f.unpack_halo_column(-1, from_west);
  return ftmpi::kSuccess;
}

int exchange_y(LocalField& f, const Decomposition& d, const ftmpi::Comm& comm) {
  const int rank = comm.rank();
  const Block& b = f.block();
  auto& hs = f.halo_scratch();
  if (d.py() == 1) {
    f.pack_row_into(b.height() - 1, hs.send[0]);
    f.unpack_halo_row(-1, hs.send[0]);
    f.pack_row_into(0, hs.send[1]);
    f.unpack_halo_row(b.height(), hs.send[1]);
    return ftmpi::kSuccess;
  }
  const int south = d.south(rank);
  const int north = d.north(rank);

  auto& from_south = hs.recv[0];
  auto& from_north = hs.recv[1];
  from_south.resize(static_cast<size_t>(b.width()));
  from_north.resize(static_cast<size_t>(b.width()));
  ftmpi::Request reqs[2];
  int rc = ftmpi::irecv(from_north.data(), static_cast<int>(from_north.size()), north,
                        kTagSouth, comm, &reqs[0]);
  if (rc != ftmpi::kSuccess) return rc;
  rc = ftmpi::irecv(from_south.data(), static_cast<int>(from_south.size()), south,
                    kTagNorth, comm, &reqs[1]);
  if (rc != ftmpi::kSuccess) return rc;

  auto& south_edge = hs.send[0];
  auto& north_edge = hs.send[1];
  f.pack_row_into(0, south_edge);
  f.pack_row_into(b.height() - 1, north_edge);
  rc = ftmpi::send(south_edge.data(), static_cast<int>(south_edge.size()), south, kTagSouth,
                   comm);
  if (rc != ftmpi::kSuccess) return rc;
  rc = ftmpi::send(north_edge.data(), static_cast<int>(north_edge.size()), north, kTagNorth,
                   comm);
  if (rc != ftmpi::kSuccess) return rc;

  rc = ftmpi::waitall(reqs, 2);
  if (rc != ftmpi::kSuccess) return rc;
  f.unpack_halo_row(b.height(), from_north);
  f.unpack_halo_row(-1, from_south);
  return ftmpi::kSuccess;
}

}  // namespace ftr::grid
