#pragma once
// Block domain decomposition of one sub-grid across its process group.
//
// Each sub-grid (level pair) is solved by a px-by-py process grid; every
// rank owns a contiguous block of the 2^lx x 2^ly *unique* points of the
// periodic domain (the duplicate last row/column is reconstructed only when
// gathering the full grid).  Rank r has Cartesian coordinates
// (r % px, r / px).

#include <utility>
#include <vector>

#include "grid/grid2d.hpp"

namespace ftr::grid {

/// Near-square factorization px * py = nprocs with px >= py and px as close
/// to sqrt(nprocs) as possible, biased so the x dimension (typically finer)
/// gets more processes.
std::pair<int, int> near_square_factors(int nprocs);

/// Owned index ranges of one rank: x in [x0, x1), y in [y0, y1) over the
/// unique points.
struct Block {
  int x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  [[nodiscard]] int width() const { return x1 - x0; }
  [[nodiscard]] int height() const { return y1 - y0; }
  [[nodiscard]] long cells() const { return static_cast<long>(width()) * height(); }
  friend bool operator==(const Block&, const Block&) = default;
};

class Decomposition {
 public:
  Decomposition() = default;
  /// Decompose the unique points of `level` over a px-by-py process grid.
  Decomposition(Level level, int px, int py);
  /// Near-square convenience constructor.
  Decomposition(Level level, int nprocs);

  [[nodiscard]] Level level() const { return level_; }
  [[nodiscard]] int px() const { return px_; }
  [[nodiscard]] int py() const { return py_; }
  [[nodiscard]] int nprocs() const { return px_ * py_; }
  [[nodiscard]] int unique_nx() const { return 1 << level_.x; }
  [[nodiscard]] int unique_ny() const { return 1 << level_.y; }

  [[nodiscard]] std::pair<int, int> coords(int rank) const {
    return {rank % px_, rank / px_};
  }
  [[nodiscard]] int rank_at(int cx, int cy) const {
    return ((cy + py_) % py_) * px_ + (cx + px_) % px_;
  }
  [[nodiscard]] Block block(int rank) const;

  /// Periodic neighbors of `rank`.
  [[nodiscard]] int west(int rank) const;
  [[nodiscard]] int east(int rank) const;
  [[nodiscard]] int south(int rank) const;
  [[nodiscard]] int north(int rank) const;

 private:
  [[nodiscard]] static std::pair<int, int> split_range(int n, int parts, int idx);
  Level level_{};
  int px_ = 1;
  int py_ = 1;
};

/// Rank-local storage for a block: (width+2) x (height+2) doubles with a
/// one-point halo ring.  Local indices run -1 .. width / -1 .. height.
class LocalField {
 public:
  LocalField() = default;
  explicit LocalField(Block b)
      : block_(b),
        stride_(b.width() + 2),
        data_(static_cast<size_t>(b.width() + 2) * static_cast<size_t>(b.height() + 2), 0.0) {}

  [[nodiscard]] const Block& block() const { return block_; }

  [[nodiscard]] double& at(int lx, int ly) {
    return data_[static_cast<size_t>(ly + 1) * static_cast<size_t>(stride_) +
                 static_cast<size_t>(lx + 1)];
  }
  [[nodiscard]] double at(int lx, int ly) const {
    return data_[static_cast<size_t>(ly + 1) * static_cast<size_t>(stride_) +
                 static_cast<size_t>(lx + 1)];
  }

  [[nodiscard]] std::vector<double>& raw() { return data_; }
  [[nodiscard]] const std::vector<double>& raw() const { return data_; }
  [[nodiscard]] std::size_t interior_bytes() const {
    return static_cast<size_t>(block_.cells()) * sizeof(double);
  }

  /// Copy the owned interior out of / into a full grid (unique points).
  void load_from(const Grid2D& full);
  void store_to(Grid2D& full) const;

  /// Pack/unpack one edge of the interior (for halo exchange).  The
  /// allocating pack_column/pack_row remain for one-off callers; the per-step
  /// paths use the *_into forms with the field's persistent HaloScratch.
  [[nodiscard]] std::vector<double> pack_column(int lx) const;
  [[nodiscard]] std::vector<double> pack_row(int ly) const;
  void pack_column_into(int lx, std::vector<double>& v) const;
  void pack_row_into(int ly, std::vector<double>& v) const;
  void unpack_halo_column(int lx, const std::vector<double>& v);
  void unpack_halo_row(int ly, const std::vector<double>& v);

  /// Persistent pack/recv buffers owned by the field so the per-step halo
  /// exchange (and the serial periodic wrap) stops allocating.  Buffers are
  /// resized on first use per direction and reused for the field's lifetime.
  struct HaloScratch {
    std::vector<double> send[2];  ///< west/south edge, east/north edge
    std::vector<double> recv[2];  ///< from west/south, from east/north
  };
  [[nodiscard]] HaloScratch& halo_scratch() { return halo_; }

 private:
  Block block_{};
  int stride_ = 0;
  std::vector<double> data_;
  HaloScratch halo_;
};

}  // namespace ftr::grid
