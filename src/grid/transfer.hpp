#pragma once
// Separable inter-grid transfer engine.
//
// Every grid in the combination technique is dyadic — (2^l + 1) points per
// axis on the unit square — so bilinear transfer between any two levels
// factorizes into two independent 1-D axis maps.  An AxisMap tabulates, for
// each destination index, the left source index and the fractional weight of
// the right neighbor; the tables are computed once per (src level, dst level)
// pair and cached for the life of the process.  The row kernels then run
// table-driven over raw pointers: each destination row first blends its two
// source rows into a contiguous scratch row (skipped entirely when the y
// weight is 0 or 1), then gathers along x — no divide, floor or clamp per
// point, unlike the legacy Grid2D::sample() path.
//
// transfer_combine() is the fused form of the combination: it accumulates
// *all* weighted components into each destination row before moving to the
// next, so the destination is written exactly once no matter how many
// components the scheme has (the legacy path re-streamed the full
// destination grid once per component).
//
// Numerics: axis-map construction replays the exact floating-point steps of
// Grid2D::sample() (x / h, truncate, clamp to n-2), so indices and weights
// are bitwise identical to the legacy path; only the final blend reassociates
// the four-corner sum, which perturbs results by at most a few ulps.  For
// dyadic levels the grid spacings are exact powers of two, so refinement maps
// come out exactly injective (every weight is exactly 0 or 1).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/grid2d.hpp"

namespace ftr::grid {

/// 1-D map from a source axis of 2^src_level + 1 points onto a destination
/// axis of 2^dst_level + 1 points.
struct AxisMap {
  int src_level = 0;
  int dst_level = 0;
  int src_n = 0;  ///< 2^src_level + 1
  int dst_n = 0;  ///< 2^dst_level + 1
  /// Per destination index: left source index, always <= src_n - 2.
  std::vector<int> i0;
  /// Per destination index: weight of the right source neighbor in [0, 1].
  std::vector<double> w;
  /// True when every weight is exactly 0 or 1 (pure index gather — the
  /// destination points are a subset of the source points).
  bool injective = false;
  /// When injective: the exact source index per destination index (i0
  /// adjusted by the 0/1 weight), so restriction needs no arithmetic at all.
  std::vector<int> gather;
};

/// Cached lookup: built on first use of a (src, dst) level pair, then shared.
/// The returned reference is stable for the life of the process (the cache
/// stores each map behind a unique_ptr and never evicts).  Thread-safe.
const AxisMap& axis_map(int src_level, int dst_level);

/// Cache observability (for tests and benches).
struct AxisMapCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
};
AxisMapCacheStats axis_map_cache_stats();
/// Test hook: drop all cached maps and reset the counters.  Must not be
/// called concurrently with transfers that hold AxisMap references.
void axis_map_cache_clear();

/// dst <- I(src): table-driven bilinear transfer (replaces the per-point
/// sample() loop of the legacy interpolate()).
void transfer(const Grid2D& src, Grid2D& dst);

/// dst += coefficient * I(src).  No-op when coefficient == 0.
void transfer_accumulate(const Grid2D& src, double coefficient, Grid2D& dst);

/// Fused combination: dst <- sum_k coeffs[k] * I(*srcs[k]), accumulating all
/// components into each destination row in a single pass over dst.  Produces
/// the same point values (and the same summation order over k) as calling
/// transfer_accumulate() sequentially on a zeroed destination.
void transfer_combine(const Grid2D* const* srcs, const double* coeffs,
                      std::size_t count, Grid2D& dst);

}  // namespace ftr::grid
