#pragma once
// Anisotropic 2D grids for the sparse grid combination technique.
//
// A grid of level (lx, ly) discretizes the unit square with
// (2^lx + 1) x (2^ly + 1) points; the paper's sub-grid u_{i,j} is exactly
// Grid2D(Level{i, j}).  Point (ix, iy) sits at (ix * hx, iy * hy).  The
// domain is periodic: column nx-1 mirrors column 0 and row ny-1 mirrors
// row 0 (kept consistent by the solver).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace ftr::grid {

/// A multi-index (i, j): the paper's sub-grid identifier.  Ordered
/// componentwise for downset computations.
struct Level {
  int x = 0;
  int y = 0;

  friend bool operator==(const Level&, const Level&) = default;
  /// Componentwise partial order: a <= b iff a.x <= b.x and a.y <= b.y.
  [[nodiscard]] bool leq(const Level& other) const { return x <= other.x && y <= other.y; }
  [[nodiscard]] int sum() const { return x + y; }
};

class Grid2D {
 public:
  Grid2D() = default;
  explicit Grid2D(Level level)
      : level_(level), nx_((1 << level.x) + 1), ny_((1 << level.y) + 1),
        data_(static_cast<size_t>(nx_) * static_cast<size_t>(ny_), 0.0) {}

  [[nodiscard]] Level level() const { return level_; }
  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t bytes() const { return data_.size() * sizeof(double); }
  [[nodiscard]] double hx() const { return 1.0 / static_cast<double>(nx_ - 1); }
  [[nodiscard]] double hy() const { return 1.0 / static_cast<double>(ny_ - 1); }
  [[nodiscard]] double x_of(int ix) const { return static_cast<double>(ix) * hx(); }
  [[nodiscard]] double y_of(int iy) const { return static_cast<double>(iy) * hy(); }

  [[nodiscard]] double& at(int ix, int iy) {
    assert(ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_);
    return data_[static_cast<size_t>(iy) * static_cast<size_t>(nx_) + static_cast<size_t>(ix)];
  }
  [[nodiscard]] double at(int ix, int iy) const {
    assert(ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_);
    return data_[static_cast<size_t>(iy) * static_cast<size_t>(nx_) + static_cast<size_t>(ix)];
  }

  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  /// Set every point from f(x, y).
  void fill(const std::function<double(double, double)>& f) {
    for (int iy = 0; iy < ny_; ++iy) {
      for (int ix = 0; ix < nx_; ++ix) {
        at(ix, iy) = f(x_of(ix), y_of(iy));
      }
    }
  }

  void zero() { data_.assign(data_.size(), 0.0); }

  /// Bilinear interpolation of the grid function at (x, y) in [0,1]^2.
  [[nodiscard]] double sample(double x, double y) const;

  /// Copy the periodic images: column nx-1 <- column 0, row ny-1 <- row 0.
  void enforce_periodicity();

  friend bool operator==(const Grid2D& a, const Grid2D& b) {
    return a.level_ == b.level_ && a.data_ == b.data_;
  }

 private:
  Level level_{};
  int nx_ = 0;
  int ny_ = 0;
  std::vector<double> data_;
};

/// Error norms between a grid and a reference function evaluated at its
/// points.  The paper reports the average l1 norm (Fig. 10).
double l1_error(const Grid2D& g, const std::function<double(double, double)>& ref);
double linf_error(const Grid2D& g, const std::function<double(double, double)>& ref);
double l2_error(const Grid2D& g, const std::function<double(double, double)>& ref);

}  // namespace ftr::grid
