#include "grid/sampling.hpp"

#include <cassert>

namespace ftr::grid {

bool is_refinement(Level coarse, Level fine) { return coarse.leq(fine); }

void restrict_inject(const Grid2D& fine, Grid2D& coarse) {
  assert(is_refinement(coarse.level(), fine.level()));
  const int sx = 1 << (fine.level().x - coarse.level().x);
  const int sy = 1 << (fine.level().y - coarse.level().y);
  for (int iy = 0; iy < coarse.ny(); ++iy) {
    for (int ix = 0; ix < coarse.nx(); ++ix) {
      coarse.at(ix, iy) = fine.at(ix * sx, iy * sy);
    }
  }
}

void interpolate(const Grid2D& src, Grid2D& dst) {
  for (int iy = 0; iy < dst.ny(); ++iy) {
    for (int ix = 0; ix < dst.nx(); ++ix) {
      dst.at(ix, iy) = src.sample(dst.x_of(ix), dst.y_of(iy));
    }
  }
}

void accumulate_interpolated(const Grid2D& src, double coefficient, Grid2D& dst) {
  if (coefficient == 0.0) return;
  for (int iy = 0; iy < dst.ny(); ++iy) {
    for (int ix = 0; ix < dst.nx(); ++ix) {
      dst.at(ix, iy) += coefficient * src.sample(dst.x_of(ix), dst.y_of(iy));
    }
  }
}

}  // namespace ftr::grid
