#include "grid/sampling.hpp"

#include <cassert>

#include "grid/transfer.hpp"

namespace ftr::grid {

bool is_refinement(Level coarse, Level fine) { return coarse.leq(fine); }

void restrict_inject(const Grid2D& fine, Grid2D& coarse) {
  assert(is_refinement(coarse.level(), fine.level()));
  // Refinement axis maps are exactly injective, so the engine degenerates to
  // the strided copy the legacy loop performed — without the index
  // multiplies.
  transfer(fine, coarse);
}

void interpolate(const Grid2D& src, Grid2D& dst) { transfer(src, dst); }

void accumulate_interpolated(const Grid2D& src, double coefficient, Grid2D& dst) {
  transfer_accumulate(src, coefficient, dst);
}

}  // namespace ftr::grid
