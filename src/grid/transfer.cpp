#include "grid/transfer.hpp"
#include "common/annotations.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace ftr::grid {

namespace {

// Dyadic levels above ~26 would need gigabytes per axis row; the assert
// bounds the packed cache key as well.
constexpr int kMaxLevel = 26;

std::unique_ptr<AxisMap> build_axis_map(int src_level, int dst_level) {
  auto m = std::make_unique<AxisMap>();
  m->src_level = src_level;
  m->dst_level = dst_level;
  m->src_n = (1 << src_level) + 1;
  m->dst_n = (1 << dst_level) + 1;
  // Replay Grid2D::sample()'s exact arithmetic so indices and weights are
  // bitwise identical to the legacy per-point path.
  const double src_h = 1.0 / static_cast<double>(m->src_n - 1);
  const double dst_h = 1.0 / static_cast<double>(m->dst_n - 1);
  m->i0.resize(static_cast<size_t>(m->dst_n));
  m->w.resize(static_cast<size_t>(m->dst_n));
  bool injective = true;
  for (int i = 0; i < m->dst_n; ++i) {
    const double x = std::clamp(static_cast<double>(i) * dst_h, 0.0, 1.0);
    const double f = x / src_h;
    int j = std::min(static_cast<int>(f), m->src_n - 2);
    const double t = f - static_cast<double>(j);
    m->i0[static_cast<size_t>(i)] = j;
    m->w[static_cast<size_t>(i)] = t;
    injective = injective && (t == 0.0 || t == 1.0);
  }
  m->injective = injective;
  if (injective) {
    m->gather.resize(static_cast<size_t>(m->dst_n));
    for (int i = 0; i < m->dst_n; ++i) {
      m->gather[static_cast<size_t>(i)] =
          m->i0[static_cast<size_t>(i)] + (m->w[static_cast<size_t>(i)] == 1.0 ? 1 : 0);
    }
  }
  return m;
}

struct Cache {
  std::mutex mu;
  std::unordered_map<std::uint32_t, std::unique_ptr<AxisMap>> maps;
  AxisMapCacheStats stats;
};

Cache& cache() {
  static Cache c;
  return c;
}

/// Blend the two source rows feeding destination row `iy` into a single
/// contiguous row.  Returns a pointer directly into the source grid when the
/// y weight is exactly 0 or 1 (always the case for refinement maps), so the
/// scratch row is only touched on genuinely fractional rows.
FTR_HOT const double* blend_rows(const Grid2D& src, const AxisMap& ym, int iy,
                         std::vector<double>& scratch) {
  const int snx = src.nx();
  const double* r0 = src.data().data() +
                     static_cast<size_t>(ym.i0[static_cast<size_t>(iy)]) *
                         static_cast<size_t>(snx);
  const double wy = ym.w[static_cast<size_t>(iy)];
  if (wy == 0.0) return r0;
  const double* r1 = r0 + snx;
  if (wy == 1.0) return r1;
  // ftlint:allow(FTL003 warm-up growth of persistent thread_local scratch)
  if (scratch.size() < static_cast<size_t>(snx)) scratch.resize(static_cast<size_t>(snx));
  double* s = scratch.data();
  const double a = 1.0 - wy;
  for (int j = 0; j < snx; ++j) s[j] = a * r0[j] + wy * r1[j];
  return scratch.data();
}

FTR_HOT void gather_row(const double* __restrict s, const AxisMap& xm, double* __restrict out) {
  const int n = xm.dst_n;
  if (xm.injective) {
    if (xm.src_level == xm.dst_level) {
      std::copy(s, s + n, out);
      return;
    }
    const int* g = xm.gather.data();
    for (int i = 0; i < n; ++i) out[i] = s[g[i]];
    return;
  }
  const int* i0 = xm.i0.data();
  const double* w = xm.w.data();
  for (int i = 0; i < n; ++i) {
    const double t = w[i];
    out[i] = (1.0 - t) * s[i0[i]] + t * s[i0[i] + 1];
  }
}

FTR_HOT void gather_row_accumulate(const double* __restrict s, const AxisMap& xm, double c,
                           double* __restrict out) {
  const int n = xm.dst_n;
  if (xm.injective) {
    const int* g = xm.gather.data();
    for (int i = 0; i < n; ++i) out[i] += c * s[g[i]];
    return;
  }
  const int* i0 = xm.i0.data();
  const double* w = xm.w.data();
  for (int i = 0; i < n; ++i) {
    const double t = w[i];
    out[i] += c * ((1.0 - t) * s[i0[i]] + t * s[i0[i] + 1]);
  }
}

/// Per-thread blend scratch: every simulated MPI rank is a dedicated thread,
/// so thread_local gives each rank its own buffer without locking and the
/// capacity persists across calls (allocation-free after warm-up).
std::vector<double>& blend_scratch() {
  thread_local std::vector<double> s;
  return s;
}

}  // namespace

const AxisMap& axis_map(int src_level, int dst_level) {
  assert(src_level >= 0 && src_level <= kMaxLevel);
  assert(dst_level >= 0 && dst_level <= kMaxLevel);
  const auto key = static_cast<std::uint32_t>((src_level << 5) | dst_level);
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  auto it = c.maps.find(key);
  if (it != c.maps.end()) {
    ++c.stats.hits;
    return *it->second;
  }
  ++c.stats.misses;
  auto inserted = c.maps.emplace(key, build_axis_map(src_level, dst_level));
  return *inserted.first->second;
}

AxisMapCacheStats axis_map_cache_stats() {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  AxisMapCacheStats s = c.stats;
  s.entries = c.maps.size();
  return s;
}

void axis_map_cache_clear() {
  auto& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  c.maps.clear();
  c.stats = AxisMapCacheStats{};
}

void transfer(const Grid2D& src, Grid2D& dst) {
  const AxisMap& xm = axis_map(src.level().x, dst.level().x);
  const AxisMap& ym = axis_map(src.level().y, dst.level().y);
  assert(xm.src_n == src.nx() && ym.src_n == src.ny());
  assert(xm.dst_n == dst.nx() && ym.dst_n == dst.ny());
  auto& scratch = blend_scratch();
  double* out = dst.data().data();
  const int dnx = dst.nx();
  for (int iy = 0; iy < dst.ny(); ++iy, out += dnx) {
    gather_row(blend_rows(src, ym, iy, scratch), xm, out);
  }
}

void transfer_accumulate(const Grid2D& src, double coefficient, Grid2D& dst) {
  if (coefficient == 0.0) return;
  const AxisMap& xm = axis_map(src.level().x, dst.level().x);
  const AxisMap& ym = axis_map(src.level().y, dst.level().y);
  assert(xm.src_n == src.nx() && ym.src_n == src.ny());
  assert(xm.dst_n == dst.nx() && ym.dst_n == dst.ny());
  auto& scratch = blend_scratch();
  double* out = dst.data().data();
  const int dnx = dst.nx();
  for (int iy = 0; iy < dst.ny(); ++iy, out += dnx) {
    gather_row_accumulate(blend_rows(src, ym, iy, scratch), xm, coefficient, out);
  }
}

void transfer_combine(const Grid2D* const* srcs, const double* coeffs, std::size_t count,
                      Grid2D& dst) {
  struct Part {
    const Grid2D* g;
    double c;
    const AxisMap* xm;
    const AxisMap* ym;
  };
  // Resolve the axis maps once per component (one cache lookup each), and
  // drop zero-coefficient components so the summation order over k matches
  // sequential transfer_accumulate() exactly.
  std::vector<Part> parts;
  parts.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    assert(srcs[k] != nullptr);
    if (coeffs[k] == 0.0) continue;
    const AxisMap& xm = axis_map(srcs[k]->level().x, dst.level().x);
    const AxisMap& ym = axis_map(srcs[k]->level().y, dst.level().y);
    assert(xm.src_n == srcs[k]->nx() && ym.src_n == srcs[k]->ny());
    parts.push_back(Part{srcs[k], coeffs[k], &xm, &ym});
  }
  auto& scratch = blend_scratch();
  double* out = dst.data().data();
  const int dnx = dst.nx();
  for (int iy = 0; iy < dst.ny(); ++iy, out += dnx) {
    std::fill(out, out + dnx, 0.0);
    for (const Part& p : parts) {
      gather_row_accumulate(blend_rows(*p.g, *p.ym, iy, scratch), *p.xm, p.c, out);
    }
  }
}

}  // namespace ftr::grid
