#include "grid/grid2d.hpp"

#include <algorithm>
#include <cmath>

namespace ftr::grid {

double Grid2D::sample(double x, double y) const {
  // Clamp into the unit square; callers sampling periodic data wrap first.
  x = std::clamp(x, 0.0, 1.0);
  y = std::clamp(y, 0.0, 1.0);
  const double fx = x / hx();
  const double fy = y / hy();
  int ix = static_cast<int>(fx);
  int iy = static_cast<int>(fy);
  ix = std::min(ix, nx_ - 2);
  iy = std::min(iy, ny_ - 2);
  const double tx = fx - static_cast<double>(ix);
  const double ty = fy - static_cast<double>(iy);
  const double v00 = at(ix, iy);
  const double v10 = at(ix + 1, iy);
  const double v01 = at(ix, iy + 1);
  const double v11 = at(ix + 1, iy + 1);
  return (1 - tx) * (1 - ty) * v00 + tx * (1 - ty) * v10 + (1 - tx) * ty * v01 +
         tx * ty * v11;
}

void Grid2D::enforce_periodicity() {
  for (int iy = 0; iy < ny_; ++iy) at(nx_ - 1, iy) = at(0, iy);
  for (int ix = 0; ix < nx_; ++ix) at(ix, ny_ - 1) = at(ix, 0);
}

double l1_error(const Grid2D& g, const std::function<double(double, double)>& ref) {
  double sum = 0.0;
  for (int iy = 0; iy < g.ny(); ++iy) {
    for (int ix = 0; ix < g.nx(); ++ix) {
      sum += std::abs(g.at(ix, iy) - ref(g.x_of(ix), g.y_of(iy)));
    }
  }
  return sum / static_cast<double>(g.size());
}

double linf_error(const Grid2D& g, const std::function<double(double, double)>& ref) {
  double m = 0.0;
  for (int iy = 0; iy < g.ny(); ++iy) {
    for (int ix = 0; ix < g.nx(); ++ix) {
      m = std::max(m, std::abs(g.at(ix, iy) - ref(g.x_of(ix), g.y_of(iy))));
    }
  }
  return m;
}

double l2_error(const Grid2D& g, const std::function<double(double, double)>& ref) {
  double sum = 0.0;
  for (int iy = 0; iy < g.ny(); ++iy) {
    for (int ix = 0; ix < g.nx(); ++ix) {
      const double d = g.at(ix, iy) - ref(g.x_of(ix), g.y_of(iy));
      sum += d * d;
    }
  }
  return std::sqrt(sum / static_cast<double>(g.size()));
}

}  // namespace ftr::grid
