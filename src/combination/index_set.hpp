#pragma once
// Multi-index sets for the truncated sparse grid combination technique.
//
// The paper combines sub-grids u_{i,j} on the layers
//
//   u^s_{n,l} = sum_{i+j = 2n-l+1, i,j <= n} u_{i,j}
//             - sum_{i+j = 2n-l,  i,j <= n-1} u_{i,j}            (Eq. 1)
//
// With T = 2n-l+1 the constraint "layer T-s has i,j <= n-s" is equivalent
// to i >= T-n and j >= T-n on every layer, so the underlying index set is
// the truncated triangle
//
//   D = { (i,j) : i+j <= T,  i >= T-n,  j >= T-n }.
//
// Fig. 1's sub-grid IDs enumerate: the diagonal layer (i+j = T) top-down,
// then the lower-diagonal layer (i+j = T-1), then optional duplicates of
// the diagonal (Resampling & Copying) or extra layers T-2, T-3 (Alternate
// Combination).

#include <vector>

#include "grid/grid2d.hpp"

namespace ftr::comb {

using ftr::grid::Level;

/// Parameters of the truncated combination: full grid size n and level l
/// (the paper uses l >= 4; l controls how many grids sit on each layer).
struct Scheme {
  int n = 8;  ///< full (target) grid size: finest dimension is 2^n
  int l = 4;  ///< combination level

  /// Top layer index sum: i + j = T on the diagonal.
  [[nodiscard]] int top_sum() const { return 2 * n - l + 1; }
  /// Minimum level per dimension anywhere in the scheme.
  [[nodiscard]] int min_level() const { return top_sum() - n; }

  /// Grids on layer `depth` below the top (depth 0 = diagonal layer):
  /// i + j = T - depth with i, j >= T - n, enumerated with i descending
  /// (matching Fig. 1's top-down IDs).
  [[nodiscard]] std::vector<Level> layer(int depth) const;

  /// Number of grids on layer `depth` (l - depth for depth < l).
  [[nodiscard]] int layer_size(int depth) const;

  /// The diagonal layer (depth 0) and lower-diagonal layer (depth 1)
  /// concatenated: the paper's grids 0..2l-2, i.e. the grids of Eq. 1.
  [[nodiscard]] std::vector<Level> combination_levels() const;

  /// Membership test for the truncated triangle D (any depth).
  [[nodiscard]] bool in_triangle(Level k) const {
    return k.x >= min_level() && k.y >= min_level() && k.sum() <= top_sum();
  }
};

/// A sub-grid slot in the application's grid list: its level, its role and
/// its combination coefficient under the classic scheme.
enum class GridRole {
  Diagonal,       ///< layer 0, classic coefficient +1
  LowerDiagonal,  ///< layer 1, classic coefficient -1
  Duplicate,      ///< redundant copy of a diagonal grid (Resampling & Copying)
  ExtraLayer,     ///< layer 2/3 grid (Alternate Combination), coefficient 0
};

struct GridSlot {
  int id = 0;             ///< Fig. 1 grid ID
  Level level;
  GridRole role = GridRole::Diagonal;
  int duplicate_of = -1;  ///< for Duplicate: id of the primary grid
  int depth = 0;          ///< layer depth below the diagonal
};

/// The paper's three grid arrangements (Fig. 1).
enum class Technique { CheckpointRestart, ResamplingCopying, AlternateCombination };

const char* technique_name(Technique t);
/// Short tag used in tables: CR, RC, AC.
const char* technique_tag(Technique t);

/// Enumerate the grid list for a technique:
///   CR: layers 0 and 1 (grids 0 .. 2l-2);
///   RC: layers 0 and 1 plus one duplicate per diagonal grid;
///   AC: layers 0 and 1 plus `extra_layers` more layers (paper uses 2).
std::vector<GridSlot> build_grid_slots(const Scheme& s, Technique t, int extra_layers = 2);

}  // namespace ftr::comb
