#pragma once
// Evaluation of combined solutions: u^c = sum_k c_k I(u_k) on a target grid.
//
// The parallel application gathers each sub-grid at its group root and ships
// it to the global root (the paper's gather-scatter approach); this module
// provides the serial combination kernels the root then applies, plus
// convenience entry points used by tests and the error study (Fig. 10).

#include <functional>
#include <vector>

#include "combination/coefficients.hpp"
#include "combination/index_set.hpp"
#include "grid/grid2d.hpp"

namespace ftr::comb {

using ftr::grid::Grid2D;

/// One weighted component of a combination.
struct Component {
  const Grid2D* grid = nullptr;
  double coefficient = 0.0;
};

/// Evaluate sum_k c_k I(u_k) at the points of a grid of level `target`.
Grid2D combine_to(Level target, const std::vector<Component>& parts);

/// Combine onto the full isotropic grid (n, n) of the scheme.
Grid2D combine_full(const Scheme& s, const std::vector<Component>& parts);

/// Average l1 distance between a combined solution and a reference function.
double combined_l1_error(const Grid2D& combined,
                         const std::function<double(double, double)>& ref);

/// Classic-combination convenience: solve-free weighting of the given grids
/// (which must be the scheme's combination_levels() in order).
std::vector<Component> classic_components(const Scheme& s,
                                          const std::vector<const Grid2D*>& grids);

}  // namespace ftr::comb
