#include "combination/index_set.hpp"

#include <cassert>

namespace ftr::comb {

std::vector<Level> Scheme::layer(int depth) const {
  std::vector<Level> out;
  const int sum = top_sum() - depth;
  const int lo = min_level();
  // i ascending: matches the paper's Fig. 1 ID order within a layer (the
  // RC recovery map "4 from 1, 5 from 2, 6 from 3" pins this down: lower
  // grid (i, j) has the same in-layer position as diagonal (i+1, j)).
  for (int i = lo; i + lo <= sum; ++i) {
    const int j = sum - i;
    if (i < lo || j < lo) continue;
    out.push_back(Level{i, j});
  }
  return out;
}

int Scheme::layer_size(int depth) const { return static_cast<int>(layer(depth).size()); }

std::vector<Level> Scheme::combination_levels() const {
  std::vector<Level> out = layer(0);
  const auto lower = layer(1);
  out.insert(out.end(), lower.begin(), lower.end());
  return out;
}

const char* technique_name(Technique t) {
  switch (t) {
    case Technique::CheckpointRestart: return "Checkpoint/Restart";
    case Technique::ResamplingCopying: return "Resampling and Copying";
    case Technique::AlternateCombination: return "Alternate Combination";
  }
  return "?";
}

const char* technique_tag(Technique t) {
  switch (t) {
    case Technique::CheckpointRestart: return "CR";
    case Technique::ResamplingCopying: return "RC";
    case Technique::AlternateCombination: return "AC";
  }
  return "?";
}

std::vector<GridSlot> build_grid_slots(const Scheme& s, Technique t, int extra_layers) {
  assert(s.l >= 2 && "combination needs at least two layers");
  std::vector<GridSlot> slots;
  int id = 0;
  for (const Level& lv : s.layer(0)) {
    slots.push_back(GridSlot{id++, lv, GridRole::Diagonal, -1, 0});
  }
  for (const Level& lv : s.layer(1)) {
    slots.push_back(GridSlot{id++, lv, GridRole::LowerDiagonal, -1, 1});
  }
  if (t == Technique::ResamplingCopying) {
    // One redundant copy per diagonal grid (paper's grids 7-10 duplicating
    // 0-3).
    const int diag = s.layer_size(0);
    for (int d = 0; d < diag; ++d) {
      slots.push_back(GridSlot{id++, slots[static_cast<size_t>(d)].level,
                               GridRole::Duplicate, d, 0});
    }
  } else if (t == Technique::AlternateCombination) {
    for (int depth = 2; depth < 2 + extra_layers; ++depth) {
      for (const Level& lv : s.layer(depth)) {
        slots.push_back(GridSlot{id++, lv, GridRole::ExtraLayer, -1, depth});
      }
    }
  }
  return slots;
}

}  // namespace ftr::comb
