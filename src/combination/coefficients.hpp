#pragma once
// Combination coefficients: the classic truncated scheme and the general
// coefficient problem (GCP) used by the Alternate Combination recovery
// technique [Harding & Hegland, "A robust combination technique", 2013].
//
// Both are instances of inclusion-exclusion over a downset.  Let chi be the
// indicator of a downward-closed index set J (within the truncated window
// of the scheme).  Then
//
//   c_k = sum_{e in {0,1}^2} (-1)^{|e|} chi(k + e)
//       = chi(k) - chi(k+e1) - chi(k+e2) + chi(k+e1+e2)
//
// yields the combination coefficients of J.  For the full triangle D this
// reproduces the classic (+1 diagonal / -1 lower diagonal) coefficients of
// Eq. 1.  When grids are lost, J = D minus the upward closure of the lost
// indices is still a downset, and the same formula re-weights the surviving
// grids; losses on the two combination layers move non-zero coefficients at
// most two layers down, which is exactly why the paper's Alternate
// Combination keeps two extra layers of sub-grids.

#include <optional>
#include <vector>

#include "combination/index_set.hpp"

namespace ftr::comb {

/// Classic coefficient of a level in scheme s: +1 on the diagonal layer,
/// -1 on the lower diagonal, 0 elsewhere.
double classic_coefficient(const Scheme& s, Level k);

/// A solved (alternate) combination: levels and matching coefficients.
struct CoefficientSet {
  std::vector<Level> levels;
  std::vector<double> coeffs;

  [[nodiscard]] double coefficient_of(Level k) const {
    for (size_t i = 0; i < levels.size(); ++i) {
      if (levels[i] == k) return coeffs[i];
    }
    return 0.0;
  }
  /// Consistency invariant: combination coefficients must sum to 1.
  [[nodiscard]] double sum() const {
    double s = 0;
    for (double c : coeffs) s += c;
    return s;
  }
};

class CoefficientProblem {
 public:
  /// `max_depth` is the deepest computed layer (1 for the plain scheme,
  /// 1 + extra layers for Alternate Combination).
  CoefficientProblem(Scheme s, int max_depth) : scheme_(s), max_depth_(max_depth) {}

  /// Indicator of J = D \ union of upsets of `lost` at index k (k may lie
  /// below the computed window; the downset extends implicitly downward).
  [[nodiscard]] bool member(Level k, const std::vector<Level>& lost) const;

  /// Inclusion-exclusion coefficient of k given the lost set.
  [[nodiscard]] double coefficient(Level k, const std::vector<Level>& lost) const;

  /// Solve the GCP for the surviving grids of the window.  Returns nullopt
  /// when the loss pattern pushes a non-zero coefficient below the computed
  /// window (recovery infeasible with the available extra layers).
  [[nodiscard]] std::optional<CoefficientSet> solve(const std::vector<Level>& lost) const;

  [[nodiscard]] const Scheme& scheme() const { return scheme_; }
  [[nodiscard]] int max_depth() const { return max_depth_; }

 private:
  Scheme scheme_;
  int max_depth_;
};

}  // namespace ftr::comb
