#include "combination/coefficients.hpp"

#include <cmath>

namespace ftr::comb {

double classic_coefficient(const Scheme& s, Level k) {
  const int depth = s.top_sum() - k.sum();
  if (!s.in_triangle(k)) return 0.0;
  if (depth == 0) return 1.0;
  if (depth == 1) return -1.0;
  return 0.0;
}

bool CoefficientProblem::member(Level k, const std::vector<Level>& lost) const {
  if (!scheme_.in_triangle(k)) return false;
  for (const Level& g : lost) {
    if (g.leq(k)) return false;  // k is in the upward closure of a lost grid
  }
  return true;
}

double CoefficientProblem::coefficient(Level k, const std::vector<Level>& lost) const {
  const auto chi = [&](Level v) { return member(v, lost) ? 1.0 : 0.0; };
  return chi(k) - chi(Level{k.x + 1, k.y}) - chi(Level{k.x, k.y + 1}) +
         chi(Level{k.x + 1, k.y + 1});
}

std::optional<CoefficientSet> CoefficientProblem::solve(const std::vector<Level>& lost) const {
  CoefficientSet out;
  for (int depth = 0; depth <= max_depth_; ++depth) {
    for (const Level& k : scheme_.layer(depth)) {
      bool is_lost = false;
      for (const Level& g : lost) is_lost = is_lost || g == k;
      if (is_lost) continue;
      const double c = coefficient(k, lost);
      if (c != 0.0) {
        out.levels.push_back(k);
        out.coeffs.push_back(c);
      }
    }
  }
  // Feasibility: no non-zero coefficient may fall below the computed
  // window.  Two probe layers suffice because a coefficient at depth d
  // depends on memberships at depths d-2 .. d only.
  for (int depth = max_depth_ + 1; depth <= max_depth_ + 2; ++depth) {
    for (const Level& k : scheme_.layer(depth)) {
      if (coefficient(k, lost) != 0.0) return std::nullopt;
    }
  }
  // The coefficients of a valid combination sum to 1.
  if (std::abs(out.sum() - 1.0) > 1e-12) return std::nullopt;
  return out;
}

}  // namespace ftr::comb
