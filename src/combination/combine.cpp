#include "combination/combine.hpp"

#include <cassert>
#include <cmath>

#include "grid/transfer.hpp"

namespace ftr::comb {

Grid2D combine_to(Level target, const std::vector<Component>& parts) {
  Grid2D out(target);
  std::vector<const Grid2D*> grids;
  std::vector<double> coeffs;
  grids.reserve(parts.size());
  coeffs.reserve(parts.size());
  for (const Component& p : parts) {
    assert(p.grid != nullptr);
    grids.push_back(p.grid);
    coeffs.push_back(p.coefficient);
  }
  ftr::grid::transfer_combine(grids.data(), coeffs.data(), grids.size(), out);
  return out;
}

Grid2D combine_full(const Scheme& s, const std::vector<Component>& parts) {
  return combine_to(Level{s.n, s.n}, parts);
}

double combined_l1_error(const Grid2D& combined,
                         const std::function<double(double, double)>& ref) {
  return ftr::grid::l1_error(combined, ref);
}

std::vector<Component> classic_components(const Scheme& s,
                                          const std::vector<const Grid2D*>& grids) {
  const auto levels = s.combination_levels();
  assert(grids.size() == levels.size());
  std::vector<Component> parts;
  parts.reserve(grids.size());
  for (size_t i = 0; i < grids.size(); ++i) {
    parts.push_back(Component{grids[i], classic_coefficient(s, levels[i])});
  }
  return parts;
}

}  // namespace ftr::comb
