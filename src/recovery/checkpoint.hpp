#pragma once
// Checkpoint/Restart (CR) recovery [paper Sec. II-D].
//
// Every process of every sub-grid group periodically writes its block to
// disk; after a failure the affected sub-grid restarts from the most recent
// checkpoint and recomputes the timesteps taken since.  The store keeps the
// bytes in real files (or in memory for fast tests) while the *cost* of each
// write/read is charged to the calling process's virtual clock with the
// cluster profile's T_IO — that is how the paper's OPL (T_IO = 3.52 s) vs
// Raijin (T_IO = 0.03 s) comparison is reproduced.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ftr::rec {

/// Checkpoint count policy.  The paper's Eq. 2 sets the number of
/// checkpoints C = T / T_IO with T the MTBF (half the application run time
/// in their setup).  Young's classical interval is provided as an
/// alternative (see DESIGN.md, "Known deviations").
struct CheckpointPolicy {
  enum class Kind { PaperEq2, Young };
  Kind kind = Kind::PaperEq2;

  /// Number of checkpoints to take over a run of `app_time` virtual seconds
  /// given the single-write time t_io.  At least 1, at most `max_count`.
  [[nodiscard]] long count(double app_time, double t_io, long max_count = 1024) const;
};

/// Thread-safe checkpoint store shared by all simulated processes of a
/// Runtime.  Keyed by (grid id, group rank); each write supersedes the
/// previous checkpoint of that key (the paper restarts from the most recent
/// one).
class CheckpointStore {
 public:
  /// In-memory store (used by tests and benches; I/O costs are still
  /// charged to virtual time by the callers below).
  CheckpointStore();
  /// File-backed store rooted at `dir` (created if missing).
  explicit CheckpointStore(std::string dir);
  ~CheckpointStore();

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Write a checkpoint of `data` taken at `step`.  Must be called from a
  /// rank thread: charges one disk write to the caller's virtual clock.
  void write(int grid_id, int rank, long step, const std::vector<double>& data);

  /// Read the most recent checkpoint, charging one disk read.  Returns
  /// nullopt if none exists.
  struct Snapshot {
    long step = 0;
    std::vector<double> data;
  };
  [[nodiscard]] std::optional<Snapshot> read_latest(int grid_id, int rank);

  [[nodiscard]] long writes() const;
  [[nodiscard]] bool file_backed() const { return !dir_.empty(); }

 private:
  [[nodiscard]] std::string path_for(int grid_id, int rank) const;

  std::string dir_;  // empty = memory backend
  mutable std::mutex mu_;
  std::map<std::pair<int, int>, Snapshot> mem_;
  std::map<std::pair<int, int>, long> steps_;  // for the file backend
  long writes_ = 0;
};

}  // namespace ftr::rec
