#pragma once
// Checkpoint/Restart (CR) recovery [paper Sec. II-D].
//
// Every process of every sub-grid group periodically writes its block to
// disk; after a failure the affected sub-grid restarts from the most recent
// checkpoint and recomputes the timesteps taken since.  The store keeps the
// bytes in real files (or in memory for fast tests) while the *cost* of each
// write/read is charged to the calling process's virtual clock with the
// cluster profile's T_IO — that is how the paper's OPL (T_IO = 3.52 s) vs
// Raijin (T_IO = 0.03 s) comparison is reproduced.
//
// Integrity: every snapshot carries a CRC-32 over its header and payload.
// The file backend writes to a temp file and renames it into place (atomic
// on POSIX), keeping the superseded snapshot as a `.prev` generation.  A
// torn or corrupted snapshot is detected by magic/size/checksum validation;
// read_latest() then falls back to the previous generation, and to "no
// checkpoint" (full recompute from the initial condition) when both are
// bad.  Writes fire the "ckpt.write" chaos point, so chaos schedules can
// kill a process mid-checkpoint.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ftr::rec {

/// Checkpoint count policy.  The paper's Eq. 2 sets the number of
/// checkpoints C = T / T_IO with T the MTBF (half the application run time
/// in their setup).  Young's classical interval is provided as an
/// alternative (see DESIGN.md, "Known deviations").
struct CheckpointPolicy {
  enum class Kind { PaperEq2, Young };
  Kind kind = Kind::PaperEq2;

  /// Number of checkpoints to take over a run of `app_time` virtual seconds
  /// given the single-write time t_io.  At least 1, at most `max_count`.
  [[nodiscard]] long count(double app_time, double t_io, long max_count = 1024) const;
};

/// Thread-safe checkpoint store shared by all simulated processes of a
/// Runtime.  Keyed by (grid id, group rank); each write supersedes the
/// previous checkpoint of that key but the superseded snapshot is retained
/// as a fallback generation (the paper restarts from the most recent one;
/// we fall back to the previous one when the most recent is corrupt).
class CheckpointStore {
 public:
  /// In-memory store (used by tests and benches; I/O costs are still
  /// charged to virtual time by the callers below).
  CheckpointStore();
  /// File-backed store rooted at `dir` (created if missing).
  explicit CheckpointStore(std::string dir);
  ~CheckpointStore();

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Write a checkpoint of `data` taken at `step`.  Must be called from a
  /// rank thread: charges one disk write to the caller's virtual clock and
  /// fires the "ckpt.write" chaos point before touching any state, so an
  /// injected mid-write death leaves the previous snapshot intact.
  void write(int grid_id, int rank, long step, const std::vector<double>& data);

  /// Read the most recent *valid* checkpoint, charging one disk read.
  /// A corrupt newest generation falls back to the previous one; returns
  /// nullopt when no valid snapshot exists (callers recompute from the
  /// initial condition).
  struct Snapshot {
    long step = 0;
    std::vector<double> data;
  };
  [[nodiscard]] std::optional<Snapshot> read_latest(int grid_id, int rank);

  /// Read the stored generation taken exactly at `step` (newest or
  /// previous), or nullopt when neither generation matches and validates.
  /// Used for group-consistent rollback: a member that died mid-write (or
  /// whose newest snapshot is corrupt) only has an older generation, so its
  /// group agrees on the minimum available step and everyone restores that
  /// one.
  [[nodiscard]] std::optional<Snapshot> read_at(int grid_id, int rank, long step);

  [[nodiscard]] long writes() const;
  /// Number of snapshots that failed integrity validation during reads.
  [[nodiscard]] long corrupt_detected() const;
  /// Number of reads that were served by the previous generation after the
  /// newest one failed validation.
  [[nodiscard]] long fallback_reads() const;
  [[nodiscard]] bool file_backed() const { return !dir_.empty(); }

  /// Path of the newest on-disk generation for (grid, rank) — file backend
  /// only; used by integrity tests to corrupt or truncate a snapshot.
  [[nodiscard]] std::string latest_path(int grid_id, int rank) const;

  /// Deliberately corrupt the newest stored snapshot (both backends), for
  /// tests and chaos drills: flips payload bytes so CRC validation fails.
  void corrupt_latest(int grid_id, int rank);

 private:
  struct StoredSnapshot {
    long step = 0;
    std::vector<double> data;
    std::uint32_t crc = 0;
  };

  [[nodiscard]] std::string path_for(int grid_id, int rank) const;
  [[nodiscard]] std::string prev_path_for(int grid_id, int rank) const;
  static std::uint32_t snapshot_crc(long step, const std::vector<double>& data);
  /// Read + validate one on-disk generation; nullopt on any mismatch.
  std::optional<Snapshot> load_file(const std::string& path, int* corrupt_counter);

  std::string dir_;  // empty = memory backend
  mutable std::mutex mu_;
  std::map<std::pair<int, int>, StoredSnapshot> mem_;       // newest generation
  std::map<std::pair<int, int>, StoredSnapshot> mem_prev_;  // previous generation
  std::map<std::pair<int, int>, long> steps_;  // keys present in the file backend
  long writes_ = 0;
  long corrupt_detected_ = 0;
  long fallback_reads_ = 0;
};

}  // namespace ftr::rec
