#include "recovery/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "ftmpi/api.hpp"

namespace ftr::rec {

namespace {

// On-disk snapshot layout: header, payload, trailing CRC-32 over
// (step, count, payload).  The magic/version pair rejects files from
// foreign or torn writes outright; the CRC catches bit flips and
// truncations that keep the header intact.
constexpr std::uint32_t kMagic = 0x4654434Bu;  // "FTCK"
constexpr std::uint32_t kVersion = 2;

}  // namespace

long CheckpointPolicy::count(double app_time, double t_io, long max_count) const {
  double c = 1.0;
  switch (kind) {
    case Kind::PaperEq2: {
      // Paper Eq. 2: C = T / T_IO with T = MTBF = half the run time.
      const double mtbf = app_time / 2.0;
      c = mtbf / std::max(t_io, 1e-12);
      break;
    }
    case Kind::Young: {
      // Young's interval: tau = sqrt(2 * MTBF * T_IO)  =>  C = app_time / tau.
      const double mtbf = app_time / 2.0;
      const double tau = std::sqrt(2.0 * mtbf * std::max(t_io, 1e-12));
      c = app_time / std::max(tau, 1e-12);
      break;
    }
  }
  return std::clamp(static_cast<long>(std::floor(c)), 1L, max_count);
}

CheckpointStore::CheckpointStore() = default;

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

CheckpointStore::~CheckpointStore() {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
}

std::string CheckpointStore::path_for(int grid_id, int rank) const {
  return dir_ + "/grid" + std::to_string(grid_id) + "_rank" + std::to_string(rank) + ".ckpt";
}

std::string CheckpointStore::prev_path_for(int grid_id, int rank) const {
  return path_for(grid_id, rank) + ".prev";
}

std::string CheckpointStore::latest_path(int grid_id, int rank) const {
  return path_for(grid_id, rank);
}

std::uint32_t CheckpointStore::snapshot_crc(long step, const std::vector<double>& data) {
  const std::uint64_t n = data.size();
  std::uint32_t c = crc32(&step, sizeof(step));
  c = crc32(&n, sizeof(n), c);
  return crc32(data.data(), n * sizeof(double), c);
}

void CheckpointStore::write(int grid_id, int rank, long step,
                            const std::vector<double>& data) {
  // A chaos schedule may kill the writer here — "during a checkpoint
  // write".  Firing before any mutation means the previous snapshot stays
  // intact, which together with write-to-temp-then-rename is the whole
  // torn-write story.
  ftmpi::chaos_point("ckpt.write");
  // Charge the virtual I/O cost to the calling simulated process first;
  // this is the paper's T_IO per checkpoint write.
  ftmpi::charge_disk_write(data.size() * sizeof(double));
  const std::uint32_t crc = snapshot_crc(step, data);
  std::lock_guard<std::mutex> lock(mu_);
  ++writes_;
  if (dir_.empty()) {
    const std::pair<int, int> key{grid_id, rank};
    const auto it = mem_.find(key);
    if (it != mem_.end()) mem_prev_[key] = std::move(it->second);
    mem_[key] = StoredSnapshot{step, data, crc};
    return;
  }
  const std::string path = path_for(grid_id, rank);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    const std::uint64_t n = data.size();
    f.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    f.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    f.write(reinterpret_cast<const char*>(&step), sizeof(step));
    f.write(reinterpret_cast<const char*>(&n), sizeof(n));
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
    f.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    if (!f) {
      FTR_ERROR("checkpoint write failed: %s", tmp.c_str());
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  // Rotate the generations: current -> .prev, temp -> current.  Both are
  // renames, so a crash never leaves a half-written current snapshot.
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    std::filesystem::rename(path, prev_path_for(grid_id, rank), ec);
    if (ec) FTR_WARN("checkpoint: generation rotation failed: %s", ec.message().c_str());
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    FTR_ERROR("checkpoint rename failed: %s", ec.message().c_str());
    return;
  }
  steps_[{grid_id, rank}] = step;
}

std::optional<CheckpointStore::Snapshot> CheckpointStore::load_file(const std::string& path,
                                                                    int* corrupt_counter) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::uint32_t magic = 0, version = 0;
  std::uint64_t n = 0;
  Snapshot snap;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&version), sizeof(version));
  f.read(reinterpret_cast<char*>(&snap.step), sizeof(snap.step));
  f.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!f || magic != kMagic || version != kVersion) {
    if (f || magic != 0 || n != 0) ++*corrupt_counter;
    return std::nullopt;
  }
  // Reject absurd counts before allocating (a corrupt header could claim
  // petabytes).
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  if (ec || n * sizeof(double) + 24 + sizeof(std::uint32_t) != file_size) {
    ++*corrupt_counter;
    return std::nullopt;
  }
  snap.data.resize(n);
  std::uint32_t stored_crc = 0;
  f.read(reinterpret_cast<char*>(snap.data.data()),
         static_cast<std::streamsize>(n * sizeof(double)));
  f.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
  if (!f || stored_crc != snapshot_crc(snap.step, snap.data)) {
    ++*corrupt_counter;
    return std::nullopt;
  }
  return snap;
}

std::optional<CheckpointStore::Snapshot> CheckpointStore::read_latest(int grid_id, int rank) {
  std::unique_lock<std::mutex> lock(mu_);
  if (dir_.empty()) {
    const std::pair<int, int> key{grid_id, rank};
    for (auto* gen : {&mem_, &mem_prev_}) {
      const auto it = gen->find(key);
      if (it == gen->end()) continue;
      if (it->second.crc != snapshot_crc(it->second.step, it->second.data)) {
        ++corrupt_detected_;
        FTR_WARN("checkpoint: corrupt in-memory snapshot grid %d rank %d; falling back",
                 grid_id, rank);
        continue;
      }
      if (gen == &mem_prev_) ++fallback_reads_;
      Snapshot snap{it->second.step, it->second.data};
      lock.unlock();
      ftmpi::charge_disk_read(snap.data.size() * sizeof(double));
      return snap;
    }
    return std::nullopt;
  }
  if (steps_.find({grid_id, rank}) == steps_.end()) return std::nullopt;
  int corrupt = 0;
  bool fell_back = false;
  std::optional<Snapshot> snap = load_file(path_for(grid_id, rank), &corrupt);
  if (!snap.has_value()) {
    FTR_WARN("checkpoint: invalid snapshot %s; trying previous generation",
             path_for(grid_id, rank).c_str());
    snap = load_file(prev_path_for(grid_id, rank), &corrupt);
    fell_back = snap.has_value();
  }
  corrupt_detected_ += corrupt;
  if (fell_back) ++fallback_reads_;
  if (!snap.has_value()) return std::nullopt;
  lock.unlock();
  ftmpi::charge_disk_read(snap->data.size() * sizeof(double));
  return snap;
}

std::optional<CheckpointStore::Snapshot> CheckpointStore::read_at(int grid_id, int rank,
                                                                  long step) {
  std::unique_lock<std::mutex> lock(mu_);
  if (dir_.empty()) {
    const std::pair<int, int> key{grid_id, rank};
    for (auto* gen : {&mem_, &mem_prev_}) {
      const auto it = gen->find(key);
      if (it == gen->end() || it->second.step != step) continue;
      if (it->second.crc != snapshot_crc(it->second.step, it->second.data)) {
        ++corrupt_detected_;
        continue;
      }
      Snapshot snap{it->second.step, it->second.data};
      lock.unlock();
      ftmpi::charge_disk_read(snap.data.size() * sizeof(double));
      return snap;
    }
    return std::nullopt;
  }
  int corrupt = 0;
  for (const std::string& path : {path_for(grid_id, rank), prev_path_for(grid_id, rank)}) {
    std::optional<Snapshot> snap = load_file(path, &corrupt);
    if (snap.has_value() && snap->step == step) {
      corrupt_detected_ += corrupt;
      lock.unlock();
      ftmpi::charge_disk_read(snap->data.size() * sizeof(double));
      return snap;
    }
  }
  corrupt_detected_ += corrupt;
  return std::nullopt;
}

void CheckpointStore::corrupt_latest(int grid_id, int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir_.empty()) {
    const auto it = mem_.find({grid_id, rank});
    if (it == mem_.end()) return;
    if (it->second.data.empty()) {
      it->second.crc ^= 0xDEADBEEFu;
    } else {
      it->second.data[it->second.data.size() / 2] += 1.0e6;
    }
    return;
  }
  const std::string path = path_for(grid_id, rank);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) return;
  f.seekp(16);  // first payload bytes (past magic/version/step)
  const char garbage[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
  f.write(garbage, sizeof(garbage));
}

long CheckpointStore::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

long CheckpointStore::corrupt_detected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupt_detected_;
}

long CheckpointStore::fallback_reads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fallback_reads_;
}

}  // namespace ftr::rec
