#include "recovery/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.hpp"
#include "ftmpi/api.hpp"

namespace ftr::rec {

long CheckpointPolicy::count(double app_time, double t_io, long max_count) const {
  double c = 1.0;
  switch (kind) {
    case Kind::PaperEq2: {
      // Paper Eq. 2: C = T / T_IO with T = MTBF = half the run time.
      const double mtbf = app_time / 2.0;
      c = mtbf / std::max(t_io, 1e-12);
      break;
    }
    case Kind::Young: {
      // Young's interval: tau = sqrt(2 * MTBF * T_IO)  =>  C = app_time / tau.
      const double mtbf = app_time / 2.0;
      const double tau = std::sqrt(2.0 * mtbf * std::max(t_io, 1e-12));
      c = app_time / std::max(tau, 1e-12);
      break;
    }
  }
  return std::clamp(static_cast<long>(std::floor(c)), 1L, max_count);
}

CheckpointStore::CheckpointStore() = default;

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

CheckpointStore::~CheckpointStore() {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
}

std::string CheckpointStore::path_for(int grid_id, int rank) const {
  return dir_ + "/grid" + std::to_string(grid_id) + "_rank" + std::to_string(rank) + ".ckpt";
}

void CheckpointStore::write(int grid_id, int rank, long step,
                            const std::vector<double>& data) {
  // Charge the virtual I/O cost to the calling simulated process first;
  // this is the paper's T_IO per checkpoint write.
  ftmpi::charge_disk_write(data.size() * sizeof(double));
  std::lock_guard<std::mutex> lock(mu_);
  ++writes_;
  if (dir_.empty()) {
    mem_[{grid_id, rank}] = Snapshot{step, data};
    return;
  }
  std::ofstream f(path_for(grid_id, rank), std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(&step), sizeof(step));
  const std::uint64_t n = data.size();
  f.write(reinterpret_cast<const char*>(&n), sizeof(n));
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  if (!f) {
    FTR_ERROR("checkpoint write failed: %s", path_for(grid_id, rank).c_str());
  }
  steps_[{grid_id, rank}] = step;
}

std::optional<CheckpointStore::Snapshot> CheckpointStore::read_latest(int grid_id, int rank) {
  std::unique_lock<std::mutex> lock(mu_);
  if (dir_.empty()) {
    const auto it = mem_.find({grid_id, rank});
    if (it == mem_.end()) return std::nullopt;
    Snapshot snap = it->second;
    lock.unlock();
    ftmpi::charge_disk_read(snap.data.size() * sizeof(double));
    return snap;
  }
  if (steps_.find({grid_id, rank}) == steps_.end()) return std::nullopt;
  std::ifstream f(path_for(grid_id, rank), std::ios::binary);
  if (!f) return std::nullopt;
  Snapshot snap;
  std::uint64_t n = 0;
  f.read(reinterpret_cast<char*>(&snap.step), sizeof(snap.step));
  f.read(reinterpret_cast<char*>(&n), sizeof(n));
  snap.data.resize(n);
  f.read(reinterpret_cast<char*>(snap.data.data()),
         static_cast<std::streamsize>(n * sizeof(double)));
  if (!f) return std::nullopt;
  lock.unlock();
  ftmpi::charge_disk_read(snap.data.size() * sizeof(double));
  return snap;
}

long CheckpointStore::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

}  // namespace ftr::rec
