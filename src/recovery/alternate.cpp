#include "recovery/alternate.hpp"

#include "grid/sampling.hpp"

namespace ftr::rec {

std::optional<AcRecovery> ac_recover(
    const Scheme& scheme, int max_depth,
    const std::map<int, std::pair<Level, const Grid2D*>>& grids,
    const std::map<int, Level>& lost) {
  std::vector<Level> lost_levels;
  lost_levels.reserve(lost.size());
  for (const auto& [id, level] : lost) lost_levels.push_back(level);

  const ftr::comb::CoefficientProblem problem(scheme, max_depth);
  auto coeffs = problem.solve(lost_levels);
  if (!coeffs.has_value()) return std::nullopt;

  // Weight the surviving grids with the alternate coefficients.
  std::vector<ftr::comb::Component> parts;
  for (size_t i = 0; i < coeffs->levels.size(); ++i) {
    const Level lv = coeffs->levels[i];
    const Grid2D* data = nullptr;
    for (const auto& [id, entry] : grids) {
      if (entry.first == lv) {
        data = entry.second;
        break;
      }
    }
    if (data == nullptr) return std::nullopt;  // a needed survivor is missing
    parts.push_back(ftr::comb::Component{data, coeffs->coeffs[i]});
  }

  AcRecovery out;
  out.coefficients = std::move(*coeffs);
  out.combined = ftr::comb::combine_full(scheme, parts);
  for (const auto& [id, level] : lost) {
    Grid2D g(level);
    ftr::grid::interpolate(out.combined, g);
    out.recovered.emplace(id, std::move(g));
  }
  return out;
}

double ac_coefficient_flops(const Scheme& scheme, int max_depth) {
  // Four membership tests per window index, each a few comparisons against
  // every lost grid; call it ~32 flops per index.  The point the paper
  // makes is that this is *tiny* compared to disk I/O or grid copies.
  long indices = 0;
  for (int d = 0; d <= max_depth + 2; ++d) indices += scheme.layer_size(d);
  return 32.0 * static_cast<double>(indices);
}

}  // namespace ftr::rec
