#pragma once
// Alternate Combination (AC) recovery [paper Sec. II-D; Harding & Hegland
// 2013].
//
// The scheme computes two extra layers of coarser sub-grids alongside the
// combination grids.  When grids are lost, new combination coefficients are
// derived for the survivors (the general coefficient problem, solved by
// inclusion-exclusion over the reduced downset in
// combination/coefficients.hpp), the surviving grids are combined with the
// new coefficients, and each lost grid's data is recovered by sampling the
// combined solution at its points.  Unlike CR and RC, recovery is only
// possible at a combination point — which is also why its recovery
// *overhead* is just the coefficient computation (paper Fig. 9).

#include <map>
#include <optional>
#include <vector>

#include "combination/coefficients.hpp"
#include "combination/combine.hpp"
#include "grid/grid2d.hpp"

namespace ftr::rec {

using ftr::comb::CoefficientSet;
using ftr::comb::Scheme;
using ftr::grid::Grid2D;
using ftr::grid::Level;

struct AcRecovery {
  CoefficientSet coefficients;          ///< the alternate combination weights
  std::map<int, Grid2D> recovered;      ///< lost grid id -> recovered data
  Grid2D combined;                      ///< the alternate combined solution (full grid)
};

/// Compute the alternate combination and recover every lost grid.
///
/// `grids` maps grid id -> (level, data) for every *surviving* grid of the
/// AC arrangement (combination layers + extra layers, duplicates excluded);
/// `lost` maps lost grid id -> level.  Returns nullopt when the loss
/// pattern is infeasible for the available extra layers.
std::optional<AcRecovery> ac_recover(
    const Scheme& scheme, int max_depth,
    const std::map<int, std::pair<Level, const Grid2D*>>& grids,
    const std::map<int, Level>& lost);

/// The modeled cost of computing the alternate coefficients (the only
/// recovery overhead the paper attributes to AC): a small number of flops
/// per window index.
double ac_coefficient_flops(const Scheme& scheme, int max_depth);

}  // namespace ftr::rec
