#pragma once
// Diskless buddy checkpointing.
//
// Each rank periodically streams a snapshot of its sub-grid block to a
// *buddy* rank that keeps it in memory (no filesystem involved).  The buddy
// is chosen deterministically on a different host than the owner's grid and,
// when possible, host-disjoint from the grid's RC recovery partner — so a
// single host failure can never take out a grid together with both of its
// recovery sources.  Replication rides the nonblocking p2p layer (eager
// isend), so it overlaps time-stepping; the receiver drains pending replicas
// opportunistically at its own replication ticks and before planning.
//
// Like the disk checkpoint store, the in-memory store keeps two CRC-32
// verified generations per block, so a group whose members hold different
// newest steps can still agree on a common restorable generation.  Replicas
// are keyed by the *holder's pid*: a holder that dies loses its replicas,
// and its respawned replacement starts empty — the diskless semantics.
//
// The "buddy.send" chaos point fires at the entry of every replication
// send, so chaos schedules can kill a process exactly at the replication
// boundary.

#include <cstddef>
#include "common/annotations.hpp"
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>
#include <vector>

#include "ftmpi/comm.hpp"
#include "ftmpi/types.hpp"

namespace ftr::rec {

/// User-plane tags of the buddy protocol (well above the application's
/// 300/400/500-range combination tags).
inline constexpr int kTagBuddyRepl = 9100;   ///< owner -> buddy (replication)
inline constexpr int kTagBuddyFetch = 9200;  ///< buddy -> restored owner (fetch)

/// The minimal process-placement facts the buddy subsystem needs.  Built by
/// core from its Layout (recovery must not depend on core): contiguous rank
/// ranges per grid, the RC partner map, and the host geometry.  Initial
/// placement allocates slots sequentially, so world rank r sits on host
/// r / slots_per_host; the reconstructor respawns replacements on their
/// original hosts, so the map stays valid across repairs.
struct BuddyTopology {
  std::vector<int> first_rank;      ///< grid id -> first world rank
  std::vector<int> procs_per_grid;  ///< grid id -> group size
  std::vector<int> partner_grid;    ///< grid id -> RC partner grid, -1 = none
  int slots_per_host = 12;

  [[nodiscard]] int num_grids() const { return static_cast<int>(first_rank.size()); }
  [[nodiscard]] int total_procs() const;
  [[nodiscard]] int grid_of_rank(int world_rank) const;  ///< -1 when out of range
  [[nodiscard]] int group_rank(int world_rank) const;
  [[nodiscard]] int host_of_rank(int world_rank) const {
    return world_rank / (slots_per_host > 0 ? slots_per_host : 1);
  }
};

/// The world rank that holds `world_rank`'s in-memory replica, or -1 when
/// the topology has no other rank.  Placement rule, relaxed in order until
/// a candidate exists:
///   1. a different grid, on a host disjoint from the owner's grid AND from
///      the grid's RC partner group (the documented buddy placement rule);
///   2. a different grid, on a host disjoint from the owner's grid;
///   3. any rank of a different grid;
///   4. any other rank.
/// Deterministic: every rank computes the same map with no communication.
int buddy_rank_of(const BuddyTopology& topo, int world_rank);

/// The ranks whose replicas `holder` keeps (the inverse of buddy_rank_of).
std::vector<int> buddy_clients_of(const BuddyTopology& topo, int holder);

/// CRC-32 over (step, count, payload) — same shape as the disk checkpoint
/// integrity checksum.
std::uint32_t replica_crc(long step, const std::vector<double>& data);

/// Wire format of one replica message: a fixed header of 5 longs
/// {grid, group rank, step, count, crc} followed by `count` doubles.
/// An empty payload (count 0) is a valid "generation unavailable" marker.
std::vector<std::byte> pack_replica(int grid, int grank, long step,
                                    const std::vector<double>& data);

struct ReplicaMessage {
  int grid = -1;
  int grank = -1;
  long step = -1;
  std::vector<double> data;
  std::uint32_t crc = 0;
};
/// Decode + CRC-verify `n` wire bytes; nullopt on malformed or corrupt
/// messages (a count-0 marker decodes successfully with empty data).
std::optional<ReplicaMessage> unpack_replica(const std::byte* bytes, std::size_t n);

/// Thread-safe in-memory replica store shared by all simulated processes of
/// a Runtime.  Keyed by (holder pid, grid, group rank) with two generations
/// per key; replicas held by a dead pid are unreachable by construction
/// (its respawned replacement runs under a fresh pid).
class BuddyStore {
 public:
  struct Replica {
    long step = -1;
    std::vector<double> data;
  };
  struct Holding {
    long newest = -1;  ///< step of the newest generation, -1 = none
    long prev = -1;    ///< step of the previous generation, -1 = none
  };

  /// Store one generation under `holder`, demoting the current newest to
  /// the previous slot.  `crc` is the sender-computed replica_crc.
  void put(ftmpi::ProcId holder, int grid, int grank, long step,
           std::vector<double> data, std::uint32_t crc);

  /// Steps of the generations `holder` keeps for (grid, grank).
  [[nodiscard]] Holding holding(ftmpi::ProcId holder, int grid, int grank) const;

  /// The generation taken exactly at `step` (newest or previous),
  /// CRC-verified; nullopt when neither generation matches and validates.
  [[nodiscard]] std::optional<Replica> read_at(ftmpi::ProcId holder, int grid, int grank,
                                               long step) const;

  /// Flip payload bytes of the newest generation so CRC validation fails
  /// (tests and chaos drills).
  void corrupt_newest(ftmpi::ProcId holder, int grid, int grank);

  [[nodiscard]] long replications() const;      ///< generations stored
  [[nodiscard]] long replicated_bytes() const;  ///< payload bytes stored
  [[nodiscard]] long corrupt_detected() const;  ///< CRC failures on read

 private:
  struct Generation {
    long step = -1;
    std::vector<double> data;
    std::uint32_t crc = 0;
  };
  struct Slot {
    Generation newest;
    Generation prev;
  };
  using Key = std::tuple<ftmpi::ProcId, int, int>;

  mutable std::mutex mu_;
  std::map<Key, Slot> slots_;
  long replications_ = 0;
  long replicated_bytes_ = 0;
  mutable long corrupt_detected_ = 0;
};

/// Stream the caller's block to its buddy over `world` (nonblocking eager
/// send: only the injection overhead is charged to the caller, the wire
/// time overlaps).  Fires the "buddy.send" chaos point at entry.  Errors
/// are returned but safe to ignore — replication is best-effort and a
/// failed buddy surfaces at the next detection point.
FTR_NODISCARD int buddy_send(const BuddyTopology& topo, const ftmpi::Comm& world, int grid, int grank,
               long step, const std::vector<double>& data);

/// Drain pending replica messages addressed to the caller into `store`
/// under the caller's pid.  Non-blocking; returns the number of replicas
/// stored.  Must run on the communicator the replicas were sent on — the
/// caller drains before any world swap.
int buddy_drain(BuddyStore& store, const ftmpi::Comm& world);

}  // namespace ftr::rec
