#pragma once
// The unified recovery planner.
//
// The paper treats CR, RC and AC as three separate modes, each with a hard
// failure condition: RC aborts when a grid and its partner die together,
// CR needs a (shared) checkpoint store, AC gives up when the GCP has no
// solution over the survivors.  The planner replaces the per-technique
// switch with an explicit *preference lattice*, evaluated per lost grid
// from cheapest to most expensive:
//
//     RC copy -> RC resample -> buddy snapshot -> disk checkpoint
//              -> AC/GCP re-combination -> shrink-mode idling
//
// so any loss pattern recoverable by *any* technique is recovered by the
// cheapest feasible one, and unrecoverable patterns degrade (the grid is
// excluded from the combination) instead of aborting.
//
// plan_recovery() is a pure function of the loss facts — no communication —
// so once the facts are agreed (the application gathers buddy availability
// to world rank 0 and broadcasts the plan), every rank executes the same
// plan deterministically.  Legacy per-technique behaviour is the Force*
// modes, whose plans depend only on locally-known facts and need no
// negotiation round.

#include <vector>

#include "combination/index_set.hpp"

namespace ftr::rec {

/// One rung of the preference lattice, cheapest first.
enum class RecoveryAction {
  RcCopy = 0,    ///< exact copy from the RC partner (duplicate pair)
  RcResample,    ///< approximate restriction from the finer diagonal
  Buddy,         ///< fetch the in-memory buddy snapshot, recompute the tail
  Disk,          ///< CR rollback: checkpoint read (or initial condition) + recompute
  Gcp,           ///< no data recovery; GCP coefficients absorb the grid
  Idle           ///< not even the GCP has a solution; the grid idles
};
const char* action_name(RecoveryAction a);

/// Which rungs of the lattice a plan may use.  Lattice = all of them;
/// the Force* modes reproduce the paper's single-technique behaviour
/// (with GCP/idle as the degrade path instead of a crash).  Overlap is the
/// background-repair restriction: the repair group restores its grids on
/// the partial repaired world, where the RC partners (continuation grids)
/// are unreachable — only the staged buddy replicas and the disk store are
/// local to the repair side, so the lattice shrinks to Buddy -> Disk.
enum class PlannerMode { Lattice, ForceCr, ForceRc, ForceAc, Overlap };

/// Per-lost-grid facts the planner decides from.
struct GridFacts {
  int id = -1;
  /// The grid's process group is complete (repaired or untouched).  False
  /// in shrink-mode degradation — there is nobody to restore data onto, so
  /// only Gcp/Idle apply.
  bool group_complete = true;
  /// Every member's block is held by a live buddy at a common generation.
  bool buddy_available = false;
  long buddy_step = -1;  ///< the common buddy generation (valid when available)
};

struct PlanEntry {
  int grid = -1;
  RecoveryAction action = RecoveryAction::Idle;
  long step = -1;    ///< Buddy: generation to restore
  int partner = -1;  ///< RcCopy/RcResample: source grid
};

struct RecoveryPlan {
  std::vector<PlanEntry> entries;  ///< one per lost grid, ascending grid id
  /// False when the Gcp remainder had no coefficient solution and was
  /// demoted to Idle (the run still completes; the combination may not).
  bool gcp_feasible = true;

  [[nodiscard]] int count(RecoveryAction a) const;
  /// True when every lost grid gets its data back (no Gcp/Idle entries).
  [[nodiscard]] bool fully_restored() const {
    return count(RecoveryAction::Gcp) == 0 && count(RecoveryAction::Idle) == 0;
  }
};

/// Compute the plan.  `lost` carries one fact record per lost grid;
/// `already_lost` are grids from earlier repairs that were never restored
/// (they stay lost, block RC partner use, and join the GCP feasibility
/// check).  `gcp_max_depth` must match the depth the combination will use.
/// Never throws on any loss pattern: infeasibility degrades to Gcp/Idle.
RecoveryPlan plan_recovery(const std::vector<ftr::comb::GridSlot>& slots,
                           const ftr::comb::Scheme& scheme, int gcp_max_depth,
                           PlannerMode mode, const std::vector<GridFacts>& lost,
                           const std::vector<int>& already_lost = {});

/// Proactive arming.  `presumed_lost` holds grids a rank *believes* lost a
/// member — assembled from local failure-detector knowledge, before any
/// agreement round — and the result is the surviving grids the eventual
/// plan is likely to draw on as recovery sources under `mode` (the RC
/// partners of the presumed-lost grids, when the mode can use them).
/// Pure and local like plan_recovery: callers use it to warm sources
/// while the pre-repair world is still intact (e.g. harvest in-flight
/// buddy replicas that the world swap inside reconstruct() would orphan).
/// It must never be treated as agreed facts — the negotiated plan after
/// the repair is authoritative.
[[nodiscard]] std::vector<int> prestage_sources(
    const std::vector<ftr::comb::GridSlot>& slots, PlannerMode mode,
    const std::vector<int>& presumed_lost);

}  // namespace ftr::rec
