#include "recovery/buddy.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/request.hpp"

namespace ftr::rec {

// --- topology ---------------------------------------------------------------

int BuddyTopology::total_procs() const {
  int n = 0;
  for (int p : procs_per_grid) n += p;
  return n;
}

int BuddyTopology::grid_of_rank(int world_rank) const {
  for (int g = 0; g < num_grids(); ++g) {
    const int first = first_rank[static_cast<size_t>(g)];
    if (world_rank >= first && world_rank < first + procs_per_grid[static_cast<size_t>(g)]) {
      return g;
    }
  }
  return -1;
}

int BuddyTopology::group_rank(int world_rank) const {
  const int g = grid_of_rank(world_rank);
  return g < 0 ? -1 : world_rank - first_rank[static_cast<size_t>(g)];
}

namespace {

std::set<int> hosts_of_grid(const BuddyTopology& t, int grid) {
  std::set<int> hosts;
  if (grid < 0 || grid >= t.num_grids()) return hosts;
  const int first = t.first_rank[static_cast<size_t>(grid)];
  for (int r = first; r < first + t.procs_per_grid[static_cast<size_t>(grid)]; ++r) {
    hosts.insert(t.host_of_rank(r));
  }
  return hosts;
}

}  // namespace

int buddy_rank_of(const BuddyTopology& topo, int world_rank) {
  const int n = topo.total_procs();
  if (n <= 1 || world_rank < 0 || world_rank >= n) return -1;
  const int g = topo.grid_of_rank(world_rank);
  const std::set<int> own_hosts = hosts_of_grid(topo, g);
  const int partner =
      (g >= 0 && g < static_cast<int>(topo.partner_grid.size())) ? topo.partner_grid[static_cast<size_t>(g)] : -1;
  const std::set<int> partner_hosts = hosts_of_grid(topo, partner);
  // Start the scan just past the owner's grid, offset by the group rank, so
  // the clients of one grid spread over several holders instead of piling
  // onto a single successor rank.
  const int start = g < 0 ? world_rank
                          : topo.first_rank[static_cast<size_t>(g)] +
                                topo.procs_per_grid[static_cast<size_t>(g)] +
                                topo.group_rank(world_rank);
  for (int pass = 0; pass < 4; ++pass) {
    for (int k = 0; k < n; ++k) {
      const int c = ((start + k) % n + n) % n;
      if (c == world_rank) continue;
      if (pass < 3 && topo.grid_of_rank(c) == g) continue;
      const int h = topo.host_of_rank(c);
      if (pass <= 1 && own_hosts.count(h) != 0) continue;
      if (pass == 0 && partner_hosts.count(h) != 0) continue;
      return c;
    }
  }
  return -1;
}

std::vector<int> buddy_clients_of(const BuddyTopology& topo, int holder) {
  std::vector<int> clients;
  const int n = topo.total_procs();
  for (int r = 0; r < n; ++r) {
    if (buddy_rank_of(topo, r) == holder) clients.push_back(r);
  }
  return clients;
}

// --- wire format ------------------------------------------------------------

namespace {
constexpr std::size_t kHeaderLongs = 5;  // grid, grank, step, count, crc
constexpr std::size_t kHeaderBytes = kHeaderLongs * sizeof(long);
}  // namespace

std::uint32_t replica_crc(long step, const std::vector<double>& data) {
  const std::size_t n = data.size();
  std::uint32_t c = ftr::crc32(&step, sizeof(step));
  c = ftr::crc32(&n, sizeof(n), c);
  return ftr::crc32(data.data(), n * sizeof(double), c);
}

std::vector<std::byte> pack_replica(int grid, int grank, long step,
                                    const std::vector<double>& data) {
  const long header[kHeaderLongs] = {static_cast<long>(grid), static_cast<long>(grank), step,
                                     static_cast<long>(data.size()),
                                     static_cast<long>(replica_crc(step, data))};
  std::vector<std::byte> buf(kHeaderBytes + data.size() * sizeof(double));
  std::memcpy(buf.data(), header, kHeaderBytes);
  if (!data.empty()) {
    std::memcpy(buf.data() + kHeaderBytes, data.data(), data.size() * sizeof(double));
  }
  return buf;
}

std::optional<ReplicaMessage> unpack_replica(const std::byte* bytes, std::size_t n) {
  if (bytes == nullptr || n < kHeaderBytes) return std::nullopt;
  long header[kHeaderLongs];
  std::memcpy(header, bytes, kHeaderBytes);
  ReplicaMessage m;
  m.grid = static_cast<int>(header[0]);
  m.grank = static_cast<int>(header[1]);
  m.step = header[2];
  const long count = header[3];
  m.crc = static_cast<std::uint32_t>(header[4]);
  if (count < 0 || n != kHeaderBytes + static_cast<std::size_t>(count) * sizeof(double)) {
    return std::nullopt;
  }
  m.data.resize(static_cast<size_t>(count));
  if (count > 0) {
    std::memcpy(m.data.data(), bytes + kHeaderBytes,
                static_cast<std::size_t>(count) * sizeof(double));
  }
  if (replica_crc(m.step, m.data) != m.crc) return std::nullopt;
  return m;
}

// --- store ------------------------------------------------------------------

void BuddyStore::put(ftmpi::ProcId holder, int grid, int grank, long step,
                     std::vector<double> data, std::uint32_t crc) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[Key{holder, grid, grank}];
  if (slot.newest.step == step) {
    slot.newest = Generation{step, std::move(data), crc};  // refresh in place
  } else {
    slot.prev = std::move(slot.newest);
    slot.newest = Generation{step, std::move(data), crc};
  }
  ++replications_;
  replicated_bytes_ += static_cast<long>(slot.newest.data.size() * sizeof(double));
}

BuddyStore::Holding BuddyStore::holding(ftmpi::ProcId holder, int grid, int grank) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(Key{holder, grid, grank});
  if (it == slots_.end()) return {};
  return Holding{it->second.newest.step, it->second.prev.step};
}

std::optional<BuddyStore::Replica> BuddyStore::read_at(ftmpi::ProcId holder, int grid,
                                                       int grank, long step) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(Key{holder, grid, grank});
  if (it == slots_.end()) return std::nullopt;
  for (const Generation* gen : {&it->second.newest, &it->second.prev}) {
    if (gen->step != step || step < 0) continue;
    if (replica_crc(gen->step, gen->data) != gen->crc) {
      ++corrupt_detected_;
      continue;
    }
    return Replica{gen->step, gen->data};
  }
  return std::nullopt;
}

void BuddyStore::corrupt_newest(ftmpi::ProcId holder, int grid, int grank) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(Key{holder, grid, grank});
  if (it == slots_.end() || it->second.newest.data.empty()) return;
  auto bits = reinterpret_cast<std::uint64_t*>(it->second.newest.data.data());
  *bits ^= 0xdeadbeefcafebabeULL;
}

long BuddyStore::replications() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replications_;
}

long BuddyStore::replicated_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replicated_bytes_;
}

long BuddyStore::corrupt_detected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupt_detected_;
}

// --- replication / drain ----------------------------------------------------

int buddy_send(const BuddyTopology& topo, const ftmpi::Comm& world, int grid, int grank,
               long step, const std::vector<double>& data) {
  ftmpi::chaos_point("buddy.send");
  const int me = world.rank();
  const int dest = buddy_rank_of(topo, me);
  // A shrunken (degraded) world invalidates the rank->host map; callers
  // stop replicating then, this is just a belt-and-braces guard.
  if (dest < 0 || dest == me || dest >= world.size()) return ftmpi::kErrArg;
  const auto buf = pack_replica(grid, grank, step, data);
  ftmpi::Request req;
  const int rc = ftmpi::isend_bytes(buf.data(), buf.size(), dest, kTagBuddyRepl, world, &req);
  // Eager sends complete at wait time; a wait error means the replica never
  // left this rank, which the caller must know about (the planner's buddy
  // rung counts on the generation landing).
  const int wrc = ftmpi::wait(&req);
  return rc != ftmpi::kSuccess ? rc : wrc;
}

int buddy_drain(BuddyStore& store, const ftmpi::Comm& world) {
  // The buffered salvage path (rather than iprobe/recv) matters: after a
  // repair the pre-failure world is revoked, but the replicas delivered on
  // it are still buffered and are exactly what the planner needs.
  int drained = 0;
  for (;;) {
    int flag = 0;
    ftmpi::Status stat;
    if (ftmpi::iprobe_buffered(ftmpi::kAnySource, kTagBuddyRepl, world, &flag, &stat) !=
            ftmpi::kSuccess ||
        flag == 0) {
      break;
    }
    std::vector<std::byte> buf(static_cast<size_t>(stat.count));
    if (ftmpi::recv_buffered(buf.data(), buf.size(), stat.source, kTagBuddyRepl, world,
                             &stat) != ftmpi::kSuccess) {
      break;
    }
    auto msg = unpack_replica(buf.data(), buf.size());
    if (!msg.has_value()) {
      FTR_WARN("buddy: dropping replica that failed CRC/format validation");
      continue;
    }
    store.put(ftmpi::self_pid(), msg->grid, msg->grank, msg->step, std::move(msg->data),
              msg->crc);
    ++drained;
  }
  return drained;
}

}  // namespace ftr::rec
