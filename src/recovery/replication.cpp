#include "recovery/replication.hpp"

#include <algorithm>
#include <cassert>

#include "grid/sampling.hpp"

namespace ftr::rec {

using ftr::comb::GridRole;

std::optional<int> rc_partner(const std::vector<GridSlot>& slots, int id) {
  if (id < 0 || id >= static_cast<int>(slots.size())) return std::nullopt;
  const auto& slot = slots[static_cast<size_t>(id)];
  switch (slot.role) {
    case GridRole::Duplicate:
      return slot.duplicate_of;
    case GridRole::Diagonal: {
      for (const auto& s : slots) {
        if (s.role == GridRole::Duplicate && s.duplicate_of == id) return s.id;
      }
      return std::nullopt;
    }
    case GridRole::LowerDiagonal: {
      // The diagonal grid one x-level finer: (i, j) <- (i+1, j).
      const Level want{slot.level.x + 1, slot.level.y};
      for (const auto& s : slots) {
        if (s.role == GridRole::Diagonal && s.level == want) return s.id;
      }
      return std::nullopt;
    }
    case GridRole::ExtraLayer:
      return std::nullopt;
  }
  return std::nullopt;
}

bool rc_loss_allowed(const std::vector<GridSlot>& slots, const std::vector<int>& lost_ids) {
  const auto is_lost = [&](int id) {
    return std::find(lost_ids.begin(), lost_ids.end(), id) != lost_ids.end();
  };
  for (int id : lost_ids) {
    const auto partner = rc_partner(slots, id);
    if (!partner.has_value()) return false;  // unrecoverable slot
    if (is_lost(*partner)) return false;     // partner lost simultaneously
  }
  return true;
}

Grid2D recover_by_copy(const Grid2D& source) { return source; }

std::optional<Grid2D> recover_by_resample(const Grid2D& finer, Level target) {
  if (!ftr::grid::is_refinement(target, finer.level())) return std::nullopt;
  Grid2D out(target);
  ftr::grid::restrict_inject(finer, out);
  return out;
}

std::optional<Grid2D> rc_recover(const std::vector<GridSlot>& slots, int lost_id,
                                 const Grid2D& partner) {
  if (lost_id < 0 || lost_id >= static_cast<int>(slots.size())) return std::nullopt;
  const auto& slot = slots[static_cast<size_t>(lost_id)];
  if (slot.role == GridRole::LowerDiagonal) return recover_by_resample(partner, slot.level);
  if (!(partner.level() == slot.level)) return std::nullopt;
  return recover_by_copy(partner);
}

}  // namespace ftr::rec
