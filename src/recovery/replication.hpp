#pragma once
// Resampling & Copying (RC) recovery [paper Sec. II-D].
//
// The diagonal sub-grids are computed twice (grids 7-10 duplicate 0-3 in
// Fig. 1).  A lost diagonal grid is recovered *exactly* by copying its
// duplicate (and vice versa).  A lost lower-diagonal grid is recovered
// *approximately* by resampling (injecting) the finer diagonal grid above
// it: lower-diagonal (i, j) is a point-subset of diagonal (i+1, j).
//
// The technique has the paper's constraint: a grid and its recovery partner
// must not be lost at the same time.

#include <optional>
#include <vector>

#include "combination/index_set.hpp"
#include "grid/grid2d.hpp"

namespace ftr::rec {

using ftr::comb::GridSlot;
using ftr::grid::Grid2D;
using ftr::grid::Level;

/// For grid `id` in `slots`, the id of the grid RC recovers it from:
///   - a diagonal grid  -> its duplicate (and a duplicate -> its primary);
///   - a lower-diagonal -> the diagonal grid one x-level finer
///     (paper: 4 from 1, 5 from 2, 6 from 3).
/// Returns nullopt when the slot has no partner (e.g. extra layers) or `id`
/// is out of range — an error return, never a crash, so planners can treat
/// RC infeasibility as a fallback signal.
std::optional<int> rc_partner(const std::vector<GridSlot>& slots, int id);

/// The paper's constraint check: true when no lost grid's recovery partner
/// is also lost (process 0's grid is checked by the caller).
bool rc_loss_allowed(const std::vector<GridSlot>& slots, const std::vector<int>& lost_ids);

/// Exact recovery by copy.  `source` must have the same level as the target.
Grid2D recover_by_copy(const Grid2D& source);

/// Approximate recovery by resampling the finer partner down to `target`.
/// Returns nullopt when `target`'s points are not a subset of `finer`'s
/// (no injection path) instead of asserting.
std::optional<Grid2D> recover_by_resample(const Grid2D& finer, Level target);

/// Dispatch on the slot role: copy for diagonal/duplicate pairs, resample
/// for lower-diagonal grids.  `partner` is the partner grid's data.
/// Returns nullopt when the partner data does not fit the lost slot (level
/// mismatch for a copy, non-subset levels for a resample) or `lost_id` is
/// out of range — RC infeasibility is an error return, not a crash.
std::optional<Grid2D> rc_recover(const std::vector<GridSlot>& slots, int lost_id,
                                 const Grid2D& partner);

}  // namespace ftr::rec
