#include "recovery/planner.hpp"

#include <algorithm>
#include <set>

#include "combination/coefficients.hpp"
#include "recovery/replication.hpp"

namespace ftr::rec {

using ftr::comb::GridRole;
using ftr::grid::Level;

const char* action_name(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::RcCopy: return "rc_copy";
    case RecoveryAction::RcResample: return "rc_resample";
    case RecoveryAction::Buddy: return "buddy";
    case RecoveryAction::Disk: return "disk";
    case RecoveryAction::Gcp: return "gcp";
    case RecoveryAction::Idle: return "idle";
  }
  return "?";
}

int RecoveryPlan::count(RecoveryAction a) const {
  int n = 0;
  for (const PlanEntry& e : entries) {
    if (e.action == a) ++n;
  }
  return n;
}

RecoveryPlan plan_recovery(const std::vector<ftr::comb::GridSlot>& slots,
                           const ftr::comb::Scheme& scheme, int gcp_max_depth,
                           PlannerMode mode, const std::vector<GridFacts>& lost,
                           const std::vector<int>& already_lost) {
  std::vector<GridFacts> facts = lost;
  std::sort(facts.begin(), facts.end(),
            [](const GridFacts& a, const GridFacts& b) { return a.id < b.id; });

  // Everything lost right now blocks RC partner use and joins the GCP set.
  std::set<int> lost_set(already_lost.begin(), already_lost.end());
  for (const GridFacts& f : facts) lost_set.insert(f.id);

  // Overlap plans run on the partial repaired world: RC partners live on
  // the continuation side and are unreachable, so only the staged buddy
  // replicas and the (shared) disk store are on the menu.
  const bool allow_rc = mode == PlannerMode::Lattice || mode == PlannerMode::ForceRc;
  const bool allow_buddy = mode == PlannerMode::Lattice || mode == PlannerMode::Overlap;
  const bool allow_disk = mode == PlannerMode::Lattice || mode == PlannerMode::ForceCr ||
                          mode == PlannerMode::Overlap;

  RecoveryPlan plan;
  std::vector<size_t> gcp_entries;  // indices into plan.entries
  for (const GridFacts& f : facts) {
    PlanEntry e;
    e.grid = f.id;
    const auto partner = rc_partner(slots, f.id);
    const bool rc_feasible = f.group_complete && partner.has_value() &&
                             lost_set.count(*partner) == 0;
    if (allow_rc && rc_feasible) {
      e.action = slots[static_cast<size_t>(f.id)].role == GridRole::LowerDiagonal
                     ? RecoveryAction::RcResample
                     : RecoveryAction::RcCopy;
      e.partner = *partner;
    } else if (allow_buddy && f.group_complete && f.buddy_available && f.buddy_step >= 0) {
      e.action = RecoveryAction::Buddy;
      e.step = f.buddy_step;
    } else if (allow_disk && f.group_complete) {
      // Disk is feasible for any complete group: CR rollback falls back to
      // a full recompute from the initial condition when no (consistent)
      // checkpoint generation exists.
      e.action = RecoveryAction::Disk;
    } else {
      e.action = RecoveryAction::Gcp;
      gcp_entries.push_back(plan.entries.size());
    }
    plan.entries.push_back(e);
  }

  // GCP feasibility is a *joint* property of everything left unrestored:
  // the combination will solve one coefficient problem over the whole set.
  if (!gcp_entries.empty()) {
    std::set<int> gcp_ids(already_lost.begin(), already_lost.end());
    for (size_t i : gcp_entries) gcp_ids.insert(plan.entries[i].grid);
    std::vector<Level> levels;
    for (int id : gcp_ids) {
      if (id >= 0 && id < static_cast<int>(slots.size())) {
        levels.push_back(slots[static_cast<size_t>(id)].level);
      }
    }
    const ftr::comb::CoefficientProblem gcp(scheme, gcp_max_depth);
    if (!gcp.solve(levels).has_value()) {
      plan.gcp_feasible = false;
      for (size_t i : gcp_entries) plan.entries[i].action = RecoveryAction::Idle;
    }
  }
  return plan;
}

std::vector<int> prestage_sources(const std::vector<ftr::comb::GridSlot>& slots,
                                  PlannerMode mode,
                                  const std::vector<int>& presumed_lost) {
  std::vector<int> sources;
  if (mode != PlannerMode::Lattice && mode != PlannerMode::ForceRc) {
    // Disk-backed (and GCP-only) modes pull from the store, not from a
    // surviving grid; there is nothing to warm.
    return sources;
  }
  const std::set<int> lost(presumed_lost.begin(), presumed_lost.end());
  std::set<int> uniq;
  for (int id : lost) {
    if (id < 0 || id >= static_cast<int>(slots.size())) continue;
    const auto partner = rc_partner(slots, id);
    if (partner.has_value() && lost.count(*partner) == 0) uniq.insert(*partner);
  }
  sources.assign(uniq.begin(), uniq.end());
  return sources;
}

}  // namespace ftr::rec
