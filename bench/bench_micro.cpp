// Micro-benchmarks (google-benchmark, real wall time): serial kernels of
// the library — the Lax-Wendroff sweeps, inter-grid transfers, combination
// evaluation and GCP coefficient solving.  These complement the
// figure-reproduction benches, which report virtual (modeled) time.

#include <benchmark/benchmark.h>

#include "advection/lax_wendroff.hpp"
#include "advection/serial_solver.hpp"
#include "combination/coefficients.hpp"
#include "combination/combine.hpp"
#include "grid/sampling.hpp"

using ftr::comb::CoefficientProblem;
using ftr::comb::Scheme;
using ftr::grid::Grid2D;
using ftr::grid::Level;

namespace {

void BM_LaxWendroffStep(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  const ftr::advection::Problem p{1.0, 0.5};
  ftr::advection::SerialSolver solver(Level{l, l},  p,
                                      ftr::advection::stable_timestep(l, p));
  for (auto _ : state) {
    solver.step();
    benchmark::DoNotOptimize(solver.grid().data().data());
  }
  state.SetItemsProcessed(state.iterations() * solver.grid().size());
}
BENCHMARK(BM_LaxWendroffStep)->Arg(5)->Arg(7)->Arg(9);

void BM_RestrictInject(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Grid2D fine(Level{l, l});
  fine.fill([](double x, double y) { return x * y; });
  Grid2D coarse(Level{l - 2, l - 1});
  for (auto _ : state) {
    ftr::grid::restrict_inject(fine, coarse);
    benchmark::DoNotOptimize(coarse.data().data());
  }
  state.SetItemsProcessed(state.iterations() * coarse.size());
}
BENCHMARK(BM_RestrictInject)->Arg(7)->Arg(9);

void BM_BilinearInterpolate(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Grid2D src(Level{l, l - 2});
  src.fill([](double x, double y) { return x + y; });
  Grid2D dst(Level{l - 1, l - 1});
  for (auto _ : state) {
    ftr::grid::interpolate(src, dst);
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetItemsProcessed(state.iterations() * dst.size());
}
BENCHMARK(BM_BilinearInterpolate)->Arg(7)->Arg(9);

void BM_CombineFull(benchmark::State& state) {
  const Scheme s{static_cast<int>(state.range(0)), 4};
  std::vector<Grid2D> grids;
  std::vector<ftr::comb::Component> parts;
  const auto levels = s.combination_levels();
  grids.reserve(levels.size());
  for (const Level& lv : levels) {
    Grid2D g(lv);
    g.fill([](double x, double y) { return x - y; });
    grids.push_back(std::move(g));
  }
  for (size_t i = 0; i < grids.size(); ++i) {
    parts.push_back({&grids[i], ftr::comb::classic_coefficient(s, levels[i])});
  }
  for (auto _ : state) {
    Grid2D combined = ftr::comb::combine_full(s, parts);
    benchmark::DoNotOptimize(combined.data().data());
  }
  const int64_t n = (1 << s.n) + 1;
  state.SetItemsProcessed(state.iterations() * n * n *
                          static_cast<int64_t>(parts.size()));
}
BENCHMARK(BM_CombineFull)->Arg(7)->Arg(8)->Arg(9);

void BM_GcpSolve(benchmark::State& state) {
  const Scheme s{13, static_cast<int>(state.range(0))};
  const CoefficientProblem problem(s, 3);
  const auto grids = s.combination_levels();
  const std::vector<Level> lost{grids[1], grids[grids.size() - 2]};
  for (auto _ : state) {
    auto set = problem.solve(lost);
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_GcpSolve)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
