// Micro-benchmarks for the separable transfer engine and the hot paths it
// replaced: table-driven transfers vs the legacy per-point sample() loop,
// fused vs sequential combination, axis-map cache lookups, halo pack/unpack
// with persistent scratch, and the slicing-by-8 CRC.  Together with
// bench_micro these feed BENCH_micro.json (see tools/bench_to_json.py).

#include <benchmark/benchmark.h>

#include <vector>

#include "combination/combine.hpp"
#include "common/crc32.hpp"
#include "grid/decomposition.hpp"
#include "grid/grid2d.hpp"
#include "grid/sampling.hpp"
#include "grid/transfer.hpp"

using ftr::comb::Scheme;
using ftr::grid::Grid2D;
using ftr::grid::Level;

namespace {

double fill_fn(double x, double y) { return x * (1.0 - y) + 0.5 * y; }

// src two levels coarser in x, one finer in y: both axes fractional.
void BM_TransferUpsample(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Grid2D src(Level{l - 2, l - 1});
  src.fill(fill_fn);
  Grid2D dst(Level{l, l});
  for (auto _ : state) {
    ftr::grid::transfer(src, dst);
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dst.size()));
}
BENCHMARK(BM_TransferUpsample)->Arg(7)->Arg(9);

void BM_TransferDownsample(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Grid2D src(Level{l, l});
  src.fill(fill_fn);
  Grid2D dst(Level{l - 2, l - 1});
  for (auto _ : state) {
    ftr::grid::transfer(src, dst);
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dst.size()));
}
BENCHMARK(BM_TransferDownsample)->Arg(7)->Arg(9);

// The pre-engine path, kept as the comparison anchor for the engine's
// speedup trajectory: per-point clamp + divide + floor via Grid2D::sample().
void BM_TransferLegacyPointwise(benchmark::State& state) {
  const int l = static_cast<int>(state.range(0));
  Grid2D src(Level{l - 2, l - 1});
  src.fill(fill_fn);
  Grid2D dst(Level{l, l});
  for (auto _ : state) {
    for (int iy = 0; iy < dst.ny(); ++iy) {
      for (int ix = 0; ix < dst.nx(); ++ix) {
        dst.at(ix, iy) = src.sample(dst.x_of(ix), dst.y_of(iy));
      }
    }
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(dst.size()));
}
BENCHMARK(BM_TransferLegacyPointwise)->Arg(7)->Arg(9);

void combine_inputs(const Scheme& s, std::vector<Grid2D>& grids,
                    std::vector<ftr::comb::Component>& parts) {
  const auto levels = s.combination_levels();
  grids.reserve(levels.size());
  for (const Level& lv : levels) {
    Grid2D g(lv);
    g.fill(fill_fn);
    grids.push_back(std::move(g));
  }
  for (size_t i = 0; i < grids.size(); ++i) {
    parts.push_back({&grids[i], ftr::comb::classic_coefficient(s, levels[i])});
  }
}

void BM_CombineFused(benchmark::State& state) {
  const Scheme s{static_cast<int>(state.range(0)), 4};
  std::vector<Grid2D> grids;
  std::vector<ftr::comb::Component> parts;
  combine_inputs(s, grids, parts);
  for (auto _ : state) {
    Grid2D combined = ftr::comb::combine_full(s, parts);
    benchmark::DoNotOptimize(combined.data().data());
  }
  const int64_t n = (1 << s.n) + 1;
  state.SetItemsProcessed(state.iterations() * n * n *
                          static_cast<int64_t>(parts.size()));
}
BENCHMARK(BM_CombineFused)->Arg(8)->Arg(9);

// One engine pass per component with the destination re-streamed each time:
// isolates the value of fusing from the value of the table-driven kernels.
void BM_CombineSequential(benchmark::State& state) {
  const Scheme s{static_cast<int>(state.range(0)), 4};
  std::vector<Grid2D> grids;
  std::vector<ftr::comb::Component> parts;
  combine_inputs(s, grids, parts);
  for (auto _ : state) {
    Grid2D combined(Level{s.n, s.n});
    for (const auto& p : parts) {
      ftr::grid::transfer_accumulate(*p.grid, p.coefficient, combined);
    }
    benchmark::DoNotOptimize(combined.data().data());
  }
  const int64_t n = (1 << s.n) + 1;
  state.SetItemsProcessed(state.iterations() * n * n *
                          static_cast<int64_t>(parts.size()));
}
BENCHMARK(BM_CombineSequential)->Arg(8)->Arg(9);

void BM_AxisMapCachedLookup(benchmark::State& state) {
  (void)ftr::grid::axis_map(9, 7);  // warm the entry
  for (auto _ : state) {
    const auto& m = ftr::grid::axis_map(9, 7);
    benchmark::DoNotOptimize(&m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AxisMapCachedLookup);

void BM_HaloPackUnpack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ftr::grid::LocalField f(ftr::grid::Block{0, n, 0, n});
  for (int ly = 0; ly < n; ++ly) {
    for (int lx = 0; lx < n; ++lx) f.at(lx, ly) = lx + ly;
  }
  auto& hs = f.halo_scratch();
  for (auto _ : state) {
    f.pack_column_into(n - 1, hs.send[0]);
    f.unpack_halo_column(-1, hs.send[0]);
    f.pack_row_into(n - 1, hs.send[1]);
    f.unpack_halo_row(-1, hs.send[1]);
    benchmark::DoNotOptimize(f.raw().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_HaloPackUnpack)->Arg(256)->Arg(512);

void BM_Crc32(benchmark::State& state) {
  std::vector<unsigned char> buf(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<unsigned char>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftr::crc32(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(buf.size()));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(buf.size()));
}
BENCHMARK(BM_Crc32)->Arg(1 << 12)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
