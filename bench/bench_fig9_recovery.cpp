// Fig. 9 reproduction: failed-grid data recovery overhead (a) and
// process-time data recovery overhead (b) for the three techniques, as the
// number of lost grids grows from 1 to 5.  Losses are simulated (the
// paper's Fig. 9 mode), so no communicator reconstruction time is included.
//
// Raw overheads (Fig. 9a):
//   CR: all checkpoint writes + reading the recent checkpoint + recompute;
//   RC: copying and/or resampling time;
//   AC: combination-coefficient computation time only.
// Process-time overheads (Fig. 9b) apply the paper's Sec. III-B formulas,
// normalizing by the extra processes RC (duplicates) and AC (extra layers)
// consume.  Expected shape: CR worst / AC best on the OPL profile
// (T_IO = 3.52 s); CR best on the Raijin profile (T_IO = 0.03 s); recovery
// time nearly independent of the number of lost grids.
//
// The BU column is the diskless buddy-checkpoint extension: the CR
// arrangement with no disk checkpoints, lost grids restored from in-memory
// buddy snapshots by the recovery planner.  Raw BU is the restore +
// recompute time; BU' adds the replication overhead (the snapshots stand in
// for CR's C*T_IO write cost, with no extra processes).

#include "bench_common.hpp"
#include "combination/coefficients.hpp"
#include "core/failure_gen.hpp"
#include "core/ft_app.hpp"
#include "core/metrics.hpp"
#include "recovery/checkpoint.hpp"

using namespace ftr;
using namespace ftr::bench;
using namespace ftr::core;
using ftr::comb::Technique;

namespace {

LayoutConfig paper_layout(const BenchEnv& env, Technique t) {
  LayoutConfig cfg;
  cfg.scheme = comb::Scheme{env.n, env.l};
  cfg.technique = t;
  cfg.procs_diagonal = 8;
  cfg.procs_lower = 4;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

/// Simulated losses that are recoverable: RC partner constraint and AC GCP
/// feasibility are both enforced by resampling.
FailurePlan feasible_losses(const Layout& layout, int count, ftr::Xoshiro256& rng) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    FailurePlan plan = random_simulated_losses(layout, count, rng);
    if (layout.config.technique == Technique::AlternateCombination) {
      std::vector<grid::Level> lost;
      for (int id : plan.simulated_lost_grids) {
        lost.push_back(layout.slots[static_cast<size_t>(id)].level);
      }
      const comb::CoefficientProblem gcp(layout.config.scheme,
                                         1 + layout.config.extra_layers);
      if (!gcp.solve(lost).has_value()) continue;
    }
    return plan;
  }
  return {};
}

struct Measured {
  double raw = 0;        // Fig. 9a
  double app_time = 0;   // total application time
  long ckpt_count = 0;
  double t_io = 0;
  double repl_time = 0;  // buddy replication overhead (rank 0's ticks)
};

/// Losses for the diskless-buddy column: prefer diagonal grids, which have
/// no replication partner in the CR arrangement, so the planner restores
/// them from buddy snapshots.  Overflow (lost > #diagonals) spills onto
/// lower diagonals, where the planner's cheaper resampling rung takes over.
FailurePlan buddy_losses(const Layout& layout, int count, ftr::Xoshiro256& rng) {
  std::vector<int> diag, lower;
  for (const auto& slot : layout.slots) {
    if (slot.role == comb::GridRole::Diagonal) diag.push_back(slot.id);
    if (slot.role == comb::GridRole::LowerDiagonal) lower.push_back(slot.id);
  }
  FailurePlan plan;
  for (auto* pool : {&diag, &lower}) {
    while (static_cast<int>(plan.simulated_lost_grids.size()) < count && !pool->empty()) {
      const size_t idx = rng.bounded(pool->size());
      plan.simulated_lost_grids.push_back((*pool)[idx]);
      pool->erase(pool->begin() + static_cast<long>(idx));
    }
  }
  std::sort(plan.simulated_lost_grids.begin(), plan.simulated_lost_grids.end());
  return plan;
}

/// Buddy-checkpoint run: the CR arrangement with no disk checkpoints at
/// all — the planner restores lost grids from in-memory buddy snapshots
/// (replicated every timesteps/8 steps) and recomputes forward.
Measured run_buddy(const BenchEnv& env, int lost, ftr::Xoshiro256& rng) {
  AppConfig cfg;
  cfg.layout = paper_layout(env, Technique::CheckpointRestart);
  cfg.timesteps = env.timesteps;
  cfg.checkpoints = 0;
  cfg.recovery = RecoveryPolicy::Planner;
  cfg.buddy_every = std::max<long>(env.timesteps / 8, 1);
  const Layout layout = build_layout(cfg.layout);
  if (lost > 0) cfg.failures = buddy_losses(layout, lost, rng);

  auto opts = env.runtime_options();
  opts.cost.cell_update_rate = kBenchCellRate / 25.0;
  ftmpi::Runtime rt(opts);
  FtApp app(cfg);
  app.launch(rt);

  Measured m;
  m.app_time = rt.get(keys::kTotalTime, 0);
  m.raw = rt.get(keys::kRecoveryTime, 0);
  m.repl_time = rt.get(keys::kBuddyReplTime, 0);
  return m;
}

Measured run_once(const BenchEnv& env, Technique t, int lost, long checkpoints,
                  ftr::Xoshiro256& rng) {
  AppConfig cfg;
  cfg.layout = paper_layout(env, t);
  cfg.timesteps = env.timesteps;
  cfg.checkpoints = checkpoints;
  const Layout layout = build_layout(cfg.layout);
  if (lost > 0) cfg.failures = feasible_losses(layout, lost, rng);

  // Heavier per-step workload than the other benches: the Fig. 9b
  // process-time comparison only discriminates when the application time
  // is large against T_IO (tens of virtual seconds), as in the paper's
  // 2^13-step runs.
  auto opts = env.runtime_options();
  opts.cost.cell_update_rate = kBenchCellRate / 25.0;
  ftmpi::Runtime rt(opts);
  FtApp app(cfg);
  app.launch(rt);

  Measured m;
  m.app_time = rt.get(keys::kTotalTime, 0);
  m.ckpt_count = static_cast<long>(rt.get(keys::kCkptWrites, 0)) /
                 std::max(1, layout.total_procs);
  m.t_io = env.profile.cost.disk_write_latency;
  if (t == Technique::CheckpointRestart) {
    m.raw = rt.get(keys::kCkptWriteTotal, 0) + rt.get(keys::kRecoveryTime, 0);
  } else {
    m.raw = rt.get(keys::kRecoveryTime, 0);
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto profiles = cli.get("profiles", "opl,raijin");
  const auto max_lost = static_cast<int>(cli.get_int("max_lost", 5));

  for (const std::string& pname : {std::string("opl"), std::string("raijin")}) {
    if (profiles.find(pname) == std::string::npos) continue;
    BenchEnv env = BenchEnv::from_cli(cli);
    env.profile = ftmpi::ClusterProfile::by_name(pname);

    ftr::Xoshiro256 rng(2026);
    const Measured probe =
        run_once(env, Technique::CheckpointRestart, 0, 1, rng);
    // Checkpoint count: Young's interval per cluster.  The paper prints
    // Eq. 2 as C = MTBF / T_IO, but that formula is inconsistent with the
    // paper's own Fig. 9b orderings on *both* clusters (see EXPERIMENTS.md);
    // Young's classical optimum reproduces them.  --policy=eq2 applies the
    // literal equation instead.
    rec::CheckpointPolicy policy;
    if (cli.get("policy", "young") == "eq2") {
      policy.kind = rec::CheckpointPolicy::Kind::PaperEq2;
    } else {
      policy.kind = rec::CheckpointPolicy::Kind::Young;
    }
    const long checkpoints =
        policy.count(probe.app_time, env.profile.cost.disk_write_latency,
                     std::max<long>(env.timesteps / 4, 1));

    // Process counts of the three arrangements (paper: 44 / 76 / 49).
    const int pc = build_layout(paper_layout(env, Technique::CheckpointRestart)).total_procs;
    const int pr = build_layout(paper_layout(env, Technique::ResamplingCopying)).total_procs;
    const int pa =
        build_layout(paper_layout(env, Technique::AlternateCombination)).total_procs;

    Table raw({"lost_grids", "CR(s)", "RC(s)", "AC(s)", "BU(s)"});
    Table norm({"lost_grids", "CR'(s)", "RC'(s)", "AC'(s)", "BU'(s)"});
    for (int lost = 1; lost <= max_lost; ++lost) {
      std::vector<double> cr, rc, ac, bu, crn, rcn, acn, bun;
      for (int rep = 0; rep < env.reps; ++rep) {
        const Measured mc = run_once(env, Technique::CheckpointRestart, lost, checkpoints, rng);
        const Measured mr = run_once(env, Technique::ResamplingCopying, lost, checkpoints, rng);
        const Measured ma =
            run_once(env, Technique::AlternateCombination, lost, checkpoints, rng);
        const Measured mb = run_buddy(env, lost, rng);
        cr.push_back(mc.raw);
        rc.push_back(mr.raw);
        ac.push_back(ma.raw);
        bu.push_back(mb.raw);
        // Raw CR already contains C*T_IO (the measured writes), matching
        // T'rec,c = C*T_IO + T_rec,c.
        crn.push_back(mc.raw);
        rcn.push_back(ProcessTimeOverhead::rc(mr.raw, mr.app_time, pr, pc));
        acn.push_back(ProcessTimeOverhead::ac(ma.raw, ma.app_time, pa, pc));
        // Buddy's analog of C*T_IO is its replication overhead: the memory
        // snapshots replace the disk writes, and the process count is Pc.
        bun.push_back(mb.raw + mb.repl_time);
      }
      raw.add_row({Table::num(static_cast<long>(lost)), Table::num(mean(cr)),
                   Table::num(mean(rc)), Table::num(mean(ac)), Table::num(mean(bu))});
      norm.add_row({Table::num(static_cast<long>(lost)), Table::num(mean(crn)),
                    Table::num(mean(rcn)), Table::num(mean(acn)), Table::num(mean(bun))});
    }
    std::cout << "\n[profile " << env.profile.name << ": T_IO = "
              << env.profile.cost.disk_write_latency << " s, C = " << checkpoints
              << ", Pc/Pr/Pa = " << pc << "/" << pr << "/" << pa << "]\n";
    emit(raw, env, "Fig. 9a: failed grid data recovery overhead (" + env.profile.name + ")");
    BenchEnv env2 = env;
    if (!env2.csv.empty()) env2.csv = env.csv + "." + pname + ".norm.csv";
    emit(norm, env2,
         "Fig. 9b: process-time data recovery overhead (" + env.profile.name + ")");
  }
  return 0;
}
