// Ablation: checkpoint-count policy.
//
// The paper's Eq. 2 sets C = MTBF / T_IO (MTBF = half the run time), which
// is dimensionally odd — Young's classical interval tau = sqrt(2*MTBF*T_IO)
// is the textbook optimum.  This bench compares both policies across disk
// write latencies spanning Raijin (0.03 s) to slower-than-OPL (10 s): the
// chosen C, the total checkpoint write cost, and the recovery cost of one
// lost grid.

#include "bench_common.hpp"
#include "core/ft_app.hpp"
#include "recovery/checkpoint.hpp"

using namespace ftr;
using namespace ftr::bench;
using namespace ftr::core;
using ftr::comb::Technique;

namespace {

struct Outcome {
  long c = 0;
  double write_total = 0;
  double recovery = 0;
};

Outcome run_cr(const BenchEnv& env, long checkpoints) {
  AppConfig cfg;
  cfg.layout.scheme = comb::Scheme{env.n, env.l};
  cfg.layout.technique = Technique::CheckpointRestart;
  cfg.layout.procs_diagonal = 8;
  cfg.layout.procs_lower = 4;
  cfg.timesteps = env.timesteps;
  cfg.checkpoints = checkpoints;
  cfg.failures.simulated_lost_grids = {1};

  ftmpi::Runtime rt(env.runtime_options());
  FtApp app(cfg);
  app.launch(rt);
  return Outcome{checkpoints, rt.get(keys::kCkptWriteTotal, 0),
                 rt.get(keys::kRecoveryTime, 0)};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_cli(cli);

  // Failure-free probe to estimate the run time both policies need.
  double app_time = 0;
  {
    AppConfig cfg;
    cfg.layout.scheme = comb::Scheme{env.n, env.l};
    cfg.layout.technique = Technique::CheckpointRestart;
    cfg.layout.procs_diagonal = 8;
    cfg.layout.procs_lower = 4;
    cfg.timesteps = env.timesteps;
    cfg.checkpoints = 1;
    ftmpi::Runtime rt(env.runtime_options());
    FtApp app(cfg);
    app.launch(rt);
    app_time = rt.get(keys::kTotalTime, 1.0);
  }

  Table table({"T_IO(s)", "C_eq2", "C_young", "eq2_writes+rec(s)", "young_writes+rec(s)"});
  for (double t_io : {0.03, 0.35, 3.52, 10.0}) {
    BenchEnv e = env;
    e.profile.cost.disk_write_latency = t_io;
    e.profile.cost.disk_read_latency = t_io / 10.0;
    const long max_c = std::max<long>(env.timesteps / 4, 1);
    const long c_eq2 =
        rec::CheckpointPolicy{rec::CheckpointPolicy::Kind::PaperEq2}.count(app_time, t_io,
                                                                           max_c);
    const long c_young =
        rec::CheckpointPolicy{rec::CheckpointPolicy::Kind::Young}.count(app_time, t_io,
                                                                        max_c);
    const Outcome eq2 = run_cr(e, c_eq2);
    const Outcome young = run_cr(e, c_young);
    table.add_row({Table::num(t_io, 3), Table::num(c_eq2), Table::num(c_young),
                   Table::num(eq2.write_total + eq2.recovery),
                   Table::num(young.write_total + young.recovery)});
  }
  emit(table, env,
       "Ablation: checkpoint count policy (paper Eq. 2 vs Young) across disk latencies; "
       "estimated app time " + Table::num(app_time) + " s");
  return 0;
}
