// Fig. 11 reproduction: overall execution time (a) and parallel efficiency
// (b) of the fault-tolerant application versus the number of cores, for
// zero, one and two *real* process failures and all three techniques.
//
// The core count is swept by scaling the per-grid process allocation
// (base 8/4/2/1, scaled x1, x2, x4), which at l = 4 gives the paper-like
// ladder 44/88/176 (CR), 76/152/304 (RC) and 49/98/196 (AC).
//
// Expected shape: CR is the most costly at every core count, AC the least;
// AC and RC stay above ~80% parallel efficiency without failures; repair
// costs degrade the multi-failure runs.  Efficiency is relative to each
// technique's smallest configuration: eff = (T1 * P1) / (T * P).

#include "bench_common.hpp"
#include "core/failure_gen.hpp"
#include "core/ft_app.hpp"

using namespace ftr;
using namespace ftr::bench;
using namespace ftr::core;
using ftr::comb::Technique;

namespace {

LayoutConfig scaled_layout(const BenchEnv& env, Technique t, int scale) {
  LayoutConfig cfg;
  cfg.scheme = comb::Scheme{env.n, env.l};
  cfg.technique = t;
  cfg.procs_diagonal = 8 * scale;
  cfg.procs_lower = 4 * scale;
  cfg.procs_extra_upper = 2 * scale;
  cfg.procs_extra_lower = 1 * scale;
  return cfg;
}

struct Point {
  int procs = 0;
  double time = 0;
};

Point run_once(const BenchEnv& env, Technique t, int scale, int failures,
               ftr::Xoshiro256& rng) {
  AppConfig cfg;
  cfg.layout = scaled_layout(env, t, scale);
  cfg.timesteps = env.timesteps;
  cfg.checkpoints = 3;
  const Layout layout = build_layout(cfg.layout);
  if (failures > 0) {
    cfg.failures = random_real_failures(layout, failures, env.timesteps, rng);
  }
  ftmpi::Runtime rt(env.runtime_options());
  FtApp app(cfg);
  app.launch(rt);
  return Point{layout.total_procs, rt.get(keys::kTotalTime, std::nan(""))};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_cli(cli);
  const auto scales = cli.get_int_list("scales", {1, 2, 4});
  const auto failure_counts = cli.get_int_list("failures", {0, 1, 2});
  ftr::Xoshiro256 rng(static_cast<uint64_t>(cli.get_int("seed", 7)));

  Table time_table({"technique", "failures", "cores", "time(s)", "efficiency"});
  for (const Technique t : {Technique::CheckpointRestart, Technique::ResamplingCopying,
                            Technique::AlternateCombination}) {
    for (long failures : failure_counts) {
      double base_tp = std::nan("");
      for (long scale : scales) {
        std::vector<double> times;
        int procs = 0;
        for (int rep = 0; rep < env.reps; ++rep) {
          const Point p =
              run_once(env, t, static_cast<int>(scale), static_cast<int>(failures), rng);
          times.push_back(p.time);
          procs = p.procs;
        }
        const double avg = mean(times);
        if (std::isnan(base_tp)) base_tp = avg * procs;
        const double eff = base_tp / (avg * procs);
        time_table.add_row({comb::technique_tag(t), Table::num(failures),
                            Table::num(static_cast<long>(procs)), Table::num(avg),
                            Table::num(eff, 3)});
      }
    }
  }
  emit(time_table, env,
       "Fig. 11: overall execution time (a) and parallel efficiency (b) vs cores");
  return 0;
}
