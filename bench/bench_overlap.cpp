// Overlapped-recovery headline metric: timesteps of forward progress lost
// per failure, stop-the-world vs overlapped, as a function of world size.
//
// One rank of a minority grid (grid 1) is killed mid-interval at step f.
// The continuation ranks — every survivor whose grid is unaffected — owe
// (target - f) timesteps before the next combination point.  Under the
// classic stop-the-world repair they compute none of them until the repair
// finishes; under FTR_RECOVERY=overlap they keep stepping on the
// continuation sub-communicator while the repair group rebuilds the world,
// and the runtime counts those steps (keys::kOverlapSteps).  Reported per
// (world size, mode):
//
//     steps_lost_per_failure = (target - f) - overlap_steps / n_continuation
//
// i.e. the deferred timesteps per continuation rank per failure (the
// stop-the-world rows measure overlap_steps = 0 by construction).  Expected
// shape: the overlapped value sits strictly below the stop-the-world value
// and trends toward zero as the world grows, because the repair window
// (spawn/merge scale with the core count, Fig. 8) grows while the owed step
// count stays fixed — given a long enough window the continuation side
// finishes its interval entirely behind the repair.
//
// --json <path> additionally emits the table in google-benchmark JSON
// format so tools/bench_to_json.py can merge it into BENCH_micro.json.  The
// per-world rows publish steps_lost_per_failure as a bare counter (exactly
// when the doorbell lands inside a poll window depends on thread
// interleaving, so a single world size is too noisy to gate); the
// BM_StepsLostPerFailure/mean/* rows aggregate all worlds and reps and
// carry the gate metric items_per_second = 1 / (1 + steps_lost), which
// drops when a regression makes overlapped recovery lose more steps.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/async_repair.hpp"
#include "core/ft_app.hpp"
#include "core/layout.hpp"
#include "core/metrics.hpp"
#include "ftmpi/api.hpp"

using namespace ftr;
using namespace ftr::bench;
using namespace ftr::core;

namespace {

struct Sample {
  double steps_lost = 0;  ///< per continuation rank, per failure
  double overlap_steps = 0;
  double handoffs = 0;
  double aborts = 0;
  bool ok = false;
};

/// Layout scaled by `k`: 3 diagonal grids of 4k ranks + 2 lower-diagonal
/// grids of 2k ranks = 16k ranks total (CR allocates no extra layers).
LayoutConfig scaled_layout(int k) {
  LayoutConfig cfg;
  cfg.scheme = ftr::comb::Scheme{6, 3};
  cfg.technique = ftr::comb::Technique::CheckpointRestart;
  cfg.procs_diagonal = 4 * k;
  cfg.procs_lower = 2 * k;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

/// Grid 1's second member: in grid 1 but never the repair leader (its
/// first rank) and never world rank 0.
int pick_victim(const Layout& layout) {
  for (int r = 1; r < layout.total_procs; ++r) {
    if (layout.grid_of_rank(r) == 1) return r + 1;
  }
  return -1;
}

/// The classification the overlap machinery will compute for the kill.
overlap::Classification classify_kill(const Layout& layout, int victim) {
  std::vector<int> survivors;
  for (int r = 0; r < layout.total_procs; ++r) {
    if (r != victim) survivors.push_back(r);
  }
  return overlap::classify(layout, survivors, {victim});
}

/// One measurement: kill one rank of grid 1 at step `f`, recover under
/// `policy`, and convert the runtime's overlap-step counter into the
/// deferred-steps metric.
Sample measure(const BenchEnv& env, int k, long f, long owed, RecoveryPolicy policy) {
  const Layout layout = build_layout(scaled_layout(k));
  const int victim = pick_victim(layout);
  const auto cls = classify_kill(layout, victim);
  const auto n_cont = static_cast<double>(cls.continuation.size());

  ftmpi::Runtime::Options opt = env.runtime_options(/*scale_compute=*/true);
  opt.slots_per_host = 16;
  ftmpi::Runtime rt(opt);
  AppConfig cfg;
  cfg.layout = scaled_layout(k);
  cfg.timesteps = env.timesteps;
  cfg.checkpoints = 2;
  cfg.recovery = policy;
  cfg.failures.kill_at_step[victim] = f;
  FtApp app(cfg);
  const int killed = app.launch(rt);

  Sample s;
  s.overlap_steps = rt.get(keys::kOverlapSteps, 0);
  s.handoffs = rt.get(keys::kOverlapHandoffs, 0);
  s.aborts = rt.get(keys::kOverlapAborts, 0);
  const double lost =
      static_cast<double>(owed) - (n_cont > 0 ? s.overlap_steps / n_cont : 0.0);
  s.steps_lost = lost < 0.0 ? 0.0 : lost;
  s.ok = killed == 1 && cls.overlappable() && rt.get(keys::kErrorL1, -1) >= 0.0;
  return s;
}

void emit_json(const std::string& path,
               const std::vector<std::tuple<int, std::string, double>>& rows) {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (fp == nullptr) {
    std::fprintf(stderr, "json write failed: %s\n", path.c_str());
    return;
  }
  std::fprintf(fp, "{\n  \"benchmarks\": [\n");
  double sum[2] = {0, 0};  // [stop_the_world, overlap]
  int cnt[2] = {0, 0};
  for (const auto& [world, mode, lost] : rows) {
    (void)world;
    const int side = mode == "overlap" ? 1 : 0;
    sum[side] += lost;
    ++cnt[side];
  }
  for (const auto& [world, mode, lost] : rows) {
    std::fprintf(fp,
                 "    {\"name\": \"BM_StepsLostPerFailure/w%d/%s\", "
                 "\"run_type\": \"iteration\", "
                 "\"steps_lost_per_failure\": %.6f},\n",
                 world, mode.c_str(), lost);
  }
  for (int side = 0; side < 2; ++side) {
    const double m = cnt[side] > 0 ? sum[side] / cnt[side] : 0.0;
    std::fprintf(fp,
                 "    {\"name\": \"BM_StepsLostPerFailure/mean/%s\", "
                 "\"run_type\": \"iteration\", "
                 "\"items_per_second\": %.9f, "
                 "\"steps_lost_per_failure\": %.6f}%s\n",
                 side == 1 ? "overlap" : "stop_the_world", 1.0 / (1.0 + m), m,
                 side == 1 ? "" : ",");
  }
  std::fprintf(fp, "  ]\n}\n");
  std::fclose(fp);
  std::printf("json written: %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_cli(cli);
  env.timesteps = cli.get_int("steps", 24);
  // Doorbell timing jitters with thread interleaving; more reps than the
  // figure benches keeps the published means (and the CI gate on them) firm.
  env.reps = static_cast<int>(cli.get_int("reps", 10));
  const auto scales = cli.get_int_list("scale", {1, 2, 3, 4});
  const long f = cli.get_int("kill_step", 10);
  const std::string json = cli.get("json", "");

  // Checkpoint interval of timesteps/3 (checkpoints=2): the kill at step f
  // owes the continuation side the rest of its interval.
  const long ivl = env.timesteps / 3;
  const long target = ((f + ivl - 1) / ivl) * ivl;
  const long owed = target - f;

  Table table({"world", "mode", "steps_owed", "overlap_steps", "n_cont",
               "steps_lost_per_failure", "handoffs", "aborts", "ok"});
  std::vector<std::tuple<int, std::string, double>> rows;
  for (long k : scales) {
    const Layout layout = build_layout(scaled_layout(static_cast<int>(k)));
    const int world = layout.total_procs;
    for (const auto policy : {RecoveryPolicy::Planner, RecoveryPolicy::Overlap}) {
      const bool ovl = policy == RecoveryPolicy::Overlap;
      std::vector<double> lost, osteps;
      bool all_ok = true;
      double n_cont = 0, handoffs = 0, aborts = 0;
      for (int rep = 0; rep < env.reps; ++rep) {
        const Sample s = measure(env, static_cast<int>(k), f, owed, policy);
        lost.push_back(s.steps_lost);
        osteps.push_back(s.overlap_steps);
        handoffs += s.handoffs;
        aborts += s.aborts;
        all_ok = all_ok && s.ok;
      }
      n_cont = static_cast<double>(classify_kill(layout, pick_victim(layout))
                                       .continuation.size());
      const std::string mode = ovl ? "overlap" : "stop_the_world";
      table.add_row({Table::num(static_cast<long>(world)), mode, Table::num(owed),
                     Table::num(mean(osteps)),
                     Table::num(n_cont), Table::num(mean(lost)),
                     Table::num(handoffs / env.reps), Table::num(aborts / env.reps),
                     all_ok ? "yes" : "NO"});
      rows.emplace_back(world, mode, mean(lost));
    }
  }
  emit(table, env,
       "Overlapped recovery: timesteps lost per failure (per continuation rank), "
       "stop-the-world vs FTR_RECOVERY=overlap, one minority-grid failure");
  if (!json.empty()) emit_json(json, rows);
  return 0;
}
