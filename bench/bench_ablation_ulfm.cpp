// Ablation: cost-model sensitivity of the repair pipeline.
//
// Table I's shape in this reproduction is driven by two modeled knobs
// (DESIGN.md §5): the per-member RTE wire-up cost of spawn
// (spawn_setup_per_proc) and the per-participant consensus cost of
// shrink/agree (consensus_cost_per_proc).  This bench sweeps both an order
// of magnitude around their defaults at a fixed core count and reports the
// primitive times, making explicit which knob controls which column — and
// that the qualitative ordering (spawn > shrink > agree >> merge) is robust
// across the sweep.

#include <atomic>

#include "bench_common.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"

using namespace ftr;
using namespace ftr::bench;
using namespace ftr::core;

namespace {

struct Sample {
  double spawn = 0, shrink = 0, agree = 0, merge = 0;
};

Sample measure(ftmpi::Runtime::Options opts, int procs, int failures) {
  ftmpi::Runtime rt(opts);
  std::atomic<double> spawn{0}, shrink{0}, agree{0}, merge{0};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    if (!ftmpi::get_parent().is_null()) {
      recon.reconstruct({});
      return;
    }
    ftmpi::Comm w = ftmpi::world();
    if (w.rank() >= procs - failures) ftmpi::abort_self();
    const auto res = recon.reconstruct(w);
    if (w.rank() == 0) {
      spawn = res.timings.spawn;
      shrink = res.timings.shrink;
      agree = res.timings.agree;
      merge = res.timings.merge;
    }
  });
  rt.run("app", procs);
  return Sample{spawn.load(), shrink.load(), agree.load(), merge.load()};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_cli(cli);
  const int procs = static_cast<int>(cli.get_int("cores", 76));
  const int failures = static_cast<int>(cli.get_int("failures", 2));

  Table table({"spawn_setup/proc", "consensus/proc", "spawn(s)", "shrink(s)", "agree(s)",
               "merge(s)"});
  for (double spawn_setup : {3.0e-4, 3.0e-3, 3.0e-2}) {
    for (double consensus : {1.0e-5, 1.0e-4, 1.0e-3}) {
      auto opts = env.runtime_options(/*scale_compute=*/false);
      opts.cost.spawn_setup_per_proc = spawn_setup;
      opts.cost.consensus_cost_per_proc = consensus;
      const Sample s = measure(opts, procs, failures);
      table.add_row({Table::num(spawn_setup, 2), Table::num(consensus, 2),
                     Table::num(s.spawn), Table::num(s.shrink), Table::num(s.agree),
                     Table::num(s.merge)});
    }
  }
  emit(table, env,
       "Ablation: repair-pipeline cost-model sensitivity at " + std::to_string(procs) +
           " cores, " + std::to_string(failures) + " failures");
  return 0;
}
