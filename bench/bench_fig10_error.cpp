// Fig. 10 reproduction: average l1 approximation error of the combined
// solution versus the number of grids lost (0..5), for the three recovery
// techniques, averaged over randomized loss patterns (the paper averages
// 20 repetitions).
//
// Expected shape: CR's error is flat (exact recovery, it simply reflects
// the combination-technique discretization error); RC and AC grow with the
// number of losses; AC is *more* accurate than the near-exact RC (the
// paper's surprising result); both stay within a factor of ~10 of the
// baseline up to 5 lost grids.

#include "bench_common.hpp"
#include "combination/coefficients.hpp"
#include "core/failure_gen.hpp"
#include "core/ft_app.hpp"

using namespace ftr;
using namespace ftr::bench;
using namespace ftr::core;
using ftr::comb::Technique;

namespace {

LayoutConfig paper_layout(const BenchEnv& env, Technique t) {
  LayoutConfig cfg;
  cfg.scheme = comb::Scheme{env.n, env.l};
  cfg.technique = t;
  cfg.procs_diagonal = 8;
  cfg.procs_lower = 4;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

FailurePlan feasible_losses(const Layout& layout, int count, ftr::Xoshiro256& rng) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    FailurePlan plan = random_simulated_losses(layout, count, rng);
    if (layout.config.technique == Technique::AlternateCombination) {
      std::vector<grid::Level> lost;
      for (int id : plan.simulated_lost_grids) {
        lost.push_back(layout.slots[static_cast<size_t>(id)].level);
      }
      const comb::CoefficientProblem gcp(layout.config.scheme,
                                         1 + layout.config.extra_layers);
      if (!gcp.solve(lost).has_value()) continue;
    }
    return plan;
  }
  return {};
}

double error_of_run(const BenchEnv& env, Technique t, int lost, ftr::Xoshiro256& rng) {
  AppConfig cfg;
  cfg.layout = paper_layout(env, t);
  cfg.timesteps = env.timesteps;
  cfg.checkpoints = 3;
  const Layout layout = build_layout(cfg.layout);
  if (lost > 0) cfg.failures = feasible_losses(layout, lost, rng);

  ftmpi::Runtime rt(env.runtime_options());
  FtApp app(cfg);
  app.launch(rt);
  return rt.get(keys::kErrorL1, std::nan(""));
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_cli(cli);
  env.reps = static_cast<int>(cli.get_int("reps", 10));  // paper: 20
  const int max_lost = static_cast<int>(cli.get_int("max_lost", 5));
  ftr::Xoshiro256 rng(static_cast<uint64_t>(cli.get_int("seed", 42)));

  Table table({"lost_grids", "CR_l1_error", "RC_l1_error", "AC_l1_error"});
  double baseline = std::nan("");
  for (int lost = 0; lost <= max_lost; ++lost) {
    std::vector<double> cr, rc, ac;
    const int reps = lost == 0 ? 1 : env.reps;  // no randomness without losses
    for (int rep = 0; rep < reps; ++rep) {
      cr.push_back(error_of_run(env, Technique::CheckpointRestart, lost, rng));
      rc.push_back(error_of_run(env, Technique::ResamplingCopying, lost, rng));
      ac.push_back(error_of_run(env, Technique::AlternateCombination, lost, rng));
    }
    if (lost == 0) baseline = mean(cr);
    table.add_row({Table::num(static_cast<long>(lost)), Table::num(mean(cr), 6),
                   Table::num(mean(rc), 6), Table::num(mean(ac), 6)});
  }
  emit(table, env, "Fig. 10: average l1 approximation error vs number of grids lost");
  std::cout << "baseline (no loss) error: " << baseline
            << "; the paper's robustness bound is 10x baseline = " << 10 * baseline << "\n";
  return 0;
}
