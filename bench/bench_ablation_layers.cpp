// Ablation: how many extra layers does the Alternate Combination need?
//
// The paper uses two extra layers of coarser sub-grids.  This bench sweeps
// 0..3 extra layers and, for 1..4 random losses among the combination
// grids, reports (a) the fraction of loss patterns whose general
// coefficient problem is feasible with that window and (b) the mean l1
// error of the alternate combination over the feasible patterns.
// Everything is computed serially (no simulated cluster needed): the grids
// are solved once per window and reused across patterns.
//
// Expected outcome: two extra layers make every 1- and 2-loss pattern
// feasible (they are guaranteed to: losses on the two combination layers
// move coefficients at most two layers down); more layers buy feasibility
// for heavier loss patterns at extra compute cost.

#include <map>

#include "advection/serial_solver.hpp"
#include "bench_common.hpp"
#include "combination/coefficients.hpp"
#include "combination/combine.hpp"
#include "common/rng.hpp"

using namespace ftr;
using namespace ftr::bench;
using ftr::comb::CoefficientProblem;
using ftr::comb::Scheme;
using ftr::grid::Grid2D;
using ftr::grid::Level;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_cli(cli);
  const int patterns = static_cast<int>(cli.get_int("patterns", 30));
  const Scheme s{env.n, env.l};
  const advection::Problem prob{1.0, 0.5};
  const double dt = advection::stable_timestep(s.n, prob, 0.8);
  const long steps = std::min<long>(env.timesteps, 64);
  const double t_final = static_cast<double>(steps) * dt;

  // Solve every grid of the deepest window once.
  std::map<std::pair<int, int>, Grid2D> solution;
  for (int depth = 0; depth <= 4; ++depth) {
    for (const Level& lv : s.layer(depth)) {
      advection::SerialSolver solver(lv, prob, dt);
      solver.run(steps);
      solution.emplace(std::pair{lv.x, lv.y}, solver.grid());
    }
  }
  const auto combo = s.combination_levels();
  Xoshiro256 rng(static_cast<uint64_t>(cli.get_int("seed", 5)));

  Table table({"extra_layers", "lost", "feasible_frac", "mean_l1_error"});
  for (int extra = 0; extra <= 3; ++extra) {
    const CoefficientProblem problem(s, 1 + extra);
    for (int lost_count = 1; lost_count <= 4; ++lost_count) {
      int feasible = 0;
      double err_sum = 0;
      for (int p = 0; p < patterns; ++p) {
        // Random distinct losses among the combination grids.
        std::vector<Level> pool = combo;
        std::vector<Level> lost;
        for (int k = 0; k < lost_count && !pool.empty(); ++k) {
          const size_t idx = rng.bounded(pool.size());
          lost.push_back(pool[idx]);
          pool.erase(pool.begin() + static_cast<long>(idx));
        }
        const auto set = problem.solve(lost);
        if (!set.has_value()) continue;
        ++feasible;
        std::vector<comb::Component> parts;
        for (size_t i = 0; i < set->levels.size(); ++i) {
          parts.push_back(
              {&solution.at({set->levels[i].x, set->levels[i].y}), set->coeffs[i]});
        }
        const Grid2D combined = comb::combine_full(s, parts);
        err_sum += grid::l1_error(
            combined, [&](double x, double y) { return prob.exact(x, y, t_final); });
      }
      table.add_row({Table::num(static_cast<long>(extra)),
                     Table::num(static_cast<long>(lost_count)),
                     Table::num(static_cast<double>(feasible) / patterns, 3),
                     feasible ? Table::num(err_sum / feasible, 5) : "-"});
    }
  }
  emit(table, env, "Ablation: Alternate Combination extra-layer count "
                   "(feasibility and accuracy vs losses)");
  return 0;
}
