#pragma once
// Shared support for the figure/table reproduction benches.
//
// Every bench binary regenerates one of the paper's exhibits on the
// simulated cluster.  All reported times are *virtual* seconds from the
// runtime's cost model (see src/ftmpi/cost_model.hpp): the box running this
// repository has a single core, so modeled time — a deterministic function
// of message, I/O and compute counts — is what reproduces the paper's
// 19-304-core sweeps and disk-latency contrasts.
//
// Workload scaling: the paper runs 2^13 timesteps on full grid size n = 13;
// the benches default to n = 8 and 2^7 steps so a full sweep finishes in
// minutes of real time.  To keep the *ratios* that drive the paper's
// results (step time vs message latency vs checkpoint T_IO) at paper-like
// magnitudes despite the smaller grids, the benches lower the modeled
// cell-update rate (kBenchCellRate); see DESIGN.md "Substitutions".

#include <cmath>
#include <cstdio>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ftmpi/cost_model.hpp"
#include "ftmpi/runtime.hpp"

namespace ftr::bench {

/// Modeled cell updates per second used by the application benches: tuned
/// so a default run (n = 8, 128 steps) spends paper-like virtual time per
/// step relative to network latency and checkpoint I/O.
inline constexpr double kBenchCellRate = 4.0e5;

struct BenchEnv {
  ftmpi::ClusterProfile profile = ftmpi::ClusterProfile::opl();
  int reps = 3;
  long timesteps = 128;
  int n = 8;
  int l = 4;
  std::string csv;  // optional CSV output path
  bool verbose = false;

  static BenchEnv from_cli(const ftr::Cli& cli) {
    BenchEnv env;
    env.profile = ftmpi::ClusterProfile::by_name(cli.get("profile", "opl"));
    env.reps = static_cast<int>(cli.get_int("reps", env.reps));
    env.timesteps = cli.get_int("steps", env.timesteps);
    env.n = static_cast<int>(cli.get_int("n", env.n));
    env.l = static_cast<int>(cli.get_int("l", env.l));
    env.csv = cli.get("csv", "");
    env.verbose = cli.get_bool("verbose", false);
    return env;
  }

  [[nodiscard]] ftmpi::Runtime::Options runtime_options(bool scale_compute = true) const {
    ftmpi::Runtime::Options opt;
    opt.slots_per_host = profile.slots_per_host;
    opt.cost = profile.cost;
    if (scale_compute) opt.cost.cell_update_rate = kBenchCellRate;
    opt.real_time_limit_sec = 600.0;
    return opt;
  }
};

/// Reference timestep (virtual seconds) for expressing repair windows in
/// units of lost timesteps: one full-grid sweep at the bench cell rate, the
/// same normalization the application benches use for their step costs.
[[nodiscard]] inline double reference_step_seconds(const BenchEnv& env) {
  const double side = static_cast<double>((1 << env.n) + 1);
  return side * side / kBenchCellRate;
}

/// Survivor-averaged fraction of the repair window still lost under
/// overlapped recovery: only the affected grids' survivors (the repair
/// group) park while continuation ranks keep stepping, so with each failure
/// hitting a distinct grid of `grid_ranks` members, the per-survivor
/// average shrinks with the core count — toward zero for minority-grid
/// failures on large worlds (bench_overlap measures this end to end).
[[nodiscard]] inline double overlap_lost_fraction(long cores, long failures,
                                                  long grid_ranks) {
  const long survivors = cores - failures;
  if (survivors <= 0) return 1.0;
  const double f = static_cast<double>(failures * (grid_ranks - 1)) /
                   static_cast<double>(survivors);
  return f > 1.0 ? 1.0 : f;
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return std::nan("");
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

inline void emit(const ftr::Table& table, const BenchEnv& env, const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
  std::cout << "(virtual seconds on the simulated " << env.profile.name
            << " cluster; reps=" << env.reps << ")\n";
  table.print(std::cout);
  if (!env.csv.empty()) {
    if (table.write_csv(env.csv)) {
      std::cout << "csv written: " << env.csv << "\n";
    } else {
      std::cerr << "csv write failed: " << env.csv << "\n";
    }
  }
  std::cout.flush();
}

}  // namespace ftr::bench
