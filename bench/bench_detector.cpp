// Failure-detector benches (google-benchmark, *virtual* time via manual
// timing): the detection-latency curve of the heartbeat ring + gossip
// overlay, and the per-call agreement cost of the tree vs. the linear
// coordinator protocol, each across several world sizes.
//
// Unlike bench_micro these report modeled (virtual) seconds, which is the
// quantity the detector design argues about: detection latency must stay
// bounded as the world grows (the ring timeout plus O(log N) gossip hops,
// never an O(N) sweep), and tree agreement must cost O(log N) hops against
// the coordinator protocol's O(N).  Virtual time is deterministic, so these
// curves are stable enough for the perf-regression gate
// (tools/bench_to_json.py --max-regression).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ftmpi/api.hpp"
#include "ftmpi/detector.hpp"
#include "ftmpi/runtime.hpp"

namespace {

/// Real-time startup rendezvous: rank threads start sequentially, so every
/// ring measurement must hold all ranks at the line until the ring is up
/// (same idiom as tests/test_detector.cpp).
void rendezvous(std::atomic<int>& arrived, int expected) {
  ++arrived;
  while (arrived.load() < expected) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

/// One full detection episode on a fresh world of `nprocs`: a middle rank
/// dies, every survivor ticks its virtual clock until it learns, and the
/// episode's latency is the *worst* survivor's virtual learn time (the
/// point where the whole membership has converged).
double detection_latency_episode(int nprocs) {
  ftmpi::Runtime::Options o;
  o.slots_per_host = nprocs;
  o.real_time_limit_sec = 120.0;
  ftmpi::Runtime rt(o);
  const int victim = nprocs / 2;
  std::atomic<int> arrived{0};
  std::mutex mu;
  double worst = 0.0;
  rt.register_app("app", [&](const std::vector<std::string>&) {
    ftmpi::Comm w = ftmpi::world();
    const ftmpi::ProcId vpid = w.group().pids[static_cast<size_t>(victim)];
    rendezvous(arrived, nprocs);
    if (w.rank() == victim) ftmpi::abort_self();
    for (int t = 0; t < 1200; ++t) {
      ftmpi::advance(0.05);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      bool mine = false;
      for (const auto& r : ftmpi::detector_records()) {
        if (r.dead == vpid) {
          std::lock_guard<std::mutex> lk(mu);
          if (r.when > worst) worst = r.when;
          mine = true;
        }
      }
      if (mine) break;
    }
  });
  rt.run("app", nprocs);
  return worst;
}

void BM_DetectionLatency(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.SetIterationTime(detection_latency_episode(nprocs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectionLatency)->Arg(8)->Arg(16)->Arg(32)->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Average virtual cost of one comm_agree over `nprocs` ranks, with the
/// tree (FTR_AGREE=tree) or the linear coordinator protocol.
double agree_cost_episode(int nprocs, bool tree) {
  ftmpi::Runtime::Options o;
  o.slots_per_host = nprocs;
  o.real_time_limit_sec = 120.0;
  o.tree_protocols = tree;
  ftmpi::Runtime rt(o);
  std::atomic<double> cost{0.0};
  std::atomic<int> failures{0};
  rt.register_app("app", [&](const std::vector<std::string>&) {
    ftmpi::Comm w = ftmpi::world();
    constexpr int kRounds = 8;
    const double t0 = ftmpi::wtime();
    for (int i = 0; i < kRounds; ++i) {
      int flag = 1;
      if (ftmpi::comm_agree(w, &flag) != ftmpi::kSuccess) ++failures;
    }
    if (w.rank() == 0) cost.store((ftmpi::wtime() - t0) / kRounds);
  });
  rt.run("app", nprocs);
  if (failures.load() != 0) {
    std::fprintf(stderr, "bench_detector: %d agree failures on a healthy "
                         "world of %d\n", failures.load(), nprocs);
  }
  return cost.load();
}

void BM_TreeAgreeCost(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.SetIterationTime(agree_cost_episode(nprocs, /*tree=*/true));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeAgreeCost)->Arg(8)->Arg(16)->Arg(32)->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

void BM_LinearAgreeCost(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.SetIterationTime(agree_cost_episode(nprocs, /*tree=*/false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearAgreeCost)->Arg(8)->Arg(16)->Arg(32)->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
