// Fig. 8 reproduction: wall time for (a) creating the list of failed
// processes and (b) reconstructing the faulty communicator, as a function
// of the number of cores, for one and two real process failures.
//
// Paper setup: OPL cluster, level l = 4, full grid size n = 13; cores swept
// over the Table I ladder (19, 38, 76, 152, 304).  Expected shape: both
// times grow with the core count, and the two-failure case costs
// disproportionately more than the one-failure case.

#include <atomic>

#include "bench_common.hpp"
#include "core/layout.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"

using namespace ftr;
using namespace ftr::bench;
using namespace ftr::core;

namespace {

struct Sample {
  double failed_list = 0;
  double reconstruct = 0;
};

/// One measurement: launch `procs` ranks, kill `failures` of them, run the
/// paper's communicatorReconstruct, and report rank 0's timings.
Sample measure(const BenchEnv& env, int procs, int failures) {
  ftmpi::Runtime rt(env.runtime_options(/*scale_compute=*/false));
  std::atomic<double> t_list{0}, t_total{0};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    if (!ftmpi::get_parent().is_null()) {
      recon.reconstruct({});
      return;
    }
    ftmpi::Comm w = ftmpi::world();
    // Kill the last `failures` ranks (never rank 0).
    const int r = w.rank();
    if (r >= procs - failures) ftmpi::abort_self();
    const auto res = recon.reconstruct(w);
    if (r == 0) {
      t_list = res.timings.failed_list;
      t_total = res.timings.total;
    }
  });
  rt.run("app", procs);
  return Sample{t_list.load(), t_total.load()};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_cli(cli);
  const auto cores = cli.get_int_list("cores", {19, 38, 76, 152, 304});
  const long grid_ranks = cli.get_int("grid_ranks", 4);
  const double t_step = reference_step_seconds(env);

  // steps_lost_*: the one-failure repair window in units of reference
  // timesteps.  Stop-the-world parks every survivor for the whole window;
  // overlapped recovery parks only the affected grid's group, so the
  // survivor-averaged loss shrinks with the core count.
  Table table({"cores", "list_1fail(s)", "list_2fail(s)", "reconstruct_1fail(s)",
               "reconstruct_2fail(s)", "steps_lost_stw", "steps_lost_overlap"});
  for (long procs : cores) {
    std::vector<double> l1, l2, r1, r2;
    for (int rep = 0; rep < env.reps; ++rep) {
      const Sample one = measure(env, static_cast<int>(procs), 1);
      const Sample two = measure(env, static_cast<int>(procs), 2);
      l1.push_back(one.failed_list);
      l2.push_back(two.failed_list);
      r1.push_back(one.reconstruct);
      r2.push_back(two.reconstruct);
    }
    const double lost_stw = mean(r1) / t_step;
    const double lost_ovl = lost_stw * overlap_lost_fraction(procs, 1, grid_ranks);
    table.add_row({Table::num(procs), Table::num(mean(l1)), Table::num(mean(l2)),
                   Table::num(mean(r1)), Table::num(mean(r2)), Table::num(lost_stw),
                   Table::num(lost_ovl)});
  }
  emit(table, env,
       "Fig. 8: failed-process list creation (a) and communicator reconstruction (b) "
       "times vs cores, 1 and 2 real failures; steps_lost_* express the one-failure "
       "window in reference timesteps, stop-the-world vs overlapped");
  return 0;
}
