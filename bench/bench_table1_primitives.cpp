// Table I reproduction: per-primitive wall times of the fault-tolerant MPI
// operations — MPI_Comm_spawn_multiple, OMPI_Comm_shrink, OMPI_Comm_agree,
// MPI_Intercomm_merge — when two processes have failed, across the paper's
// core ladder (19, 38, 76, 152, 304).
//
// Expected shape (the paper's observation about the beta ULFM): spawn and
// shrink dominate and grow steeply with the core count; agree is smaller;
// merge is negligible.  Absolute magnitudes differ from the paper's beta
// implementation (see DESIGN.md "Known deviations").

#include <atomic>

#include "bench_common.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"

using namespace ftr;
using namespace ftr::bench;
using namespace ftr::core;

namespace {

struct Sample {
  double spawn = 0, shrink = 0, agree = 0, merge = 0;
};

Sample measure(const BenchEnv& env, int procs, int failures) {
  ftmpi::Runtime rt(env.runtime_options(/*scale_compute=*/false));
  std::atomic<double> spawn{0}, shrink{0}, agree{0}, merge{0};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    if (!ftmpi::get_parent().is_null()) {
      recon.reconstruct({});
      return;
    }
    ftmpi::Comm w = ftmpi::world();
    if (w.rank() >= procs - failures) ftmpi::abort_self();
    const auto res = recon.reconstruct(w);
    if (w.rank() == 0) {
      spawn = res.timings.spawn;
      shrink = res.timings.shrink;
      agree = res.timings.agree;
      merge = res.timings.merge;
    }
  });
  rt.run("app", procs);
  return Sample{spawn.load(), shrink.load(), agree.load(), merge.load()};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_cli(cli);
  const auto cores = cli.get_int_list("cores", {19, 38, 76, 152, 304});
  const int failures = static_cast<int>(cli.get_int("failures", 2));

  Table table({"cores", "spawn_multiple(s)", "shrink(s)", "agree(s)", "merge(s)"});
  for (long procs : cores) {
    std::vector<double> vs, vh, va, vm;
    for (int rep = 0; rep < env.reps; ++rep) {
      const Sample s = measure(env, static_cast<int>(procs), failures);
      vs.push_back(s.spawn);
      vh.push_back(s.shrink);
      va.push_back(s.agree);
      vm.push_back(s.merge);
    }
    table.add_row({Table::num(procs), Table::num(mean(vs)), Table::num(mean(vh)),
                   Table::num(mean(va)), Table::num(mean(vm))});
  }
  emit(table, env,
       "Table I: fault-tolerant MPI primitive times with " + std::to_string(failures) +
           " failed processes");
  return 0;
}
