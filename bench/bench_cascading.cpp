// Cascading-failure bench: reconstruction cost when the repair itself is
// hit by further failures.
//
// A first failure triggers communicatorReconstruct; 0, 1 or 2 chaos kills
// then strike *during* the repair (at the spawn and merge phase
// boundaries), forcing the bounded-retry loop to restart from revoke.
// Reported per (cores, nested kills): mean reconstruction time (virtual
// seconds, rank 0), repair attempts, and Fig. 3 do-while iterations.
// Expected shape: each nested kill adds roughly one full repair pass, so
// time and attempts grow with the kill count while the protocol still
// converges to a full-size, rank-ordered world.

#include <atomic>

#include "bench_common.hpp"
#include "core/chaos.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"

using namespace ftr;
using namespace ftr::bench;
using namespace ftr::core;

namespace {

struct Sample {
  double reconstruct = 0;
  int attempts = 0;
  int iterations = 0;
  bool ok = false;
};

/// One measurement: kill the last rank mid-run, then `nested` more victims
/// at recovery phase boundaries while the repair runs.
Sample measure(const BenchEnv& env, int procs, int nested) {
  ftmpi::Runtime rt(env.runtime_options(/*scale_compute=*/false));
  ChaosInjector chaos(rt);
  if (nested >= 1) chaos.schedule({.phase = "spawn", .victim = 2, .occurrence = 1});
  if (nested >= 2) chaos.schedule({.phase = "merge", .victim = 4, .occurrence = 1});

  std::atomic<double> t_total{0};
  std::atomic<int> attempts{0}, iterations{0};
  std::atomic<bool> ok{false};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    if (!ftmpi::get_parent().is_null()) {
      recon.reconstruct({});
      return;
    }
    ftmpi::Comm w = ftmpi::world();
    const int r = w.rank();
    if (r == procs - 1) ftmpi::abort_self();
    const auto res = recon.reconstruct(w);
    if (r == 0) {
      t_total = res.timings.total;
      attempts = res.attempts;
      iterations = res.iterations;
      ok = res.repaired && !res.exhausted && res.comm.size() == procs;
    }
  });
  rt.run("app", procs);
  return Sample{t_total.load(), attempts.load(), iterations.load(), ok.load()};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchEnv env = BenchEnv::from_cli(cli);
  const auto cores = cli.get_int_list("cores", {19, 38, 76});
  const auto kills = cli.get_int_list("nested", {0, 1, 2});
  const long grid_ranks = cli.get_int("grid_ranks", 4);
  const double t_step = reference_step_seconds(env);

  // steps_lost_*: the repair window per failure (initial + nested kills) in
  // reference timesteps — what every survivor pays stop-the-world vs the
  // survivor-averaged cost when unaffected grids overlap the repair.
  Table table({"cores", "nested_kills", "reconstruct(s)", "attempts", "iterations",
               "steps_lost_stw", "steps_lost_overlap", "ok"});
  for (long procs : cores) {
    for (long nested : kills) {
      std::vector<double> t, a, it;
      bool all_ok = true;
      for (int rep = 0; rep < env.reps; ++rep) {
        const Sample s = measure(env, static_cast<int>(procs), static_cast<int>(nested));
        t.push_back(s.reconstruct);
        a.push_back(static_cast<double>(s.attempts));
        it.push_back(static_cast<double>(s.iterations));
        all_ok = all_ok && s.ok;
      }
      const long failures = 1 + nested;
      const double lost_stw = mean(t) / t_step / static_cast<double>(failures);
      const double lost_ovl =
          lost_stw * overlap_lost_fraction(procs, failures, grid_ranks);
      table.add_row({Table::num(procs), Table::num(nested), Table::num(mean(t)),
                     Table::num(mean(a)), Table::num(mean(it)), Table::num(lost_stw),
                     Table::num(lost_ovl), all_ok ? "yes" : "NO"});
    }
  }
  emit(table, env,
       "Cascading failures: reconstruction time and retry counts under 0/1/2 "
       "failures injected during the repair itself; steps_lost_* express the "
       "per-failure window in reference timesteps, stop-the-world vs overlapped");
  return 0;
}
