// Tests with the asynchronous failure injector: kills land at arbitrary
// real-time points (blocked in receives, mid-collective, computing), and
// the application recovers by looping detection + reconstruction until the
// world is whole again.  Assertions are outcome properties, not timings.

#include <gtest/gtest.h>

#include <atomic>

#include "core/async_injector.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;
using ftr::core::AsyncFailureInjector;
using ftr::core::Reconstructor;

namespace {

/// A resilient mini-application.  The ranks "compute" (spin in modeled
/// work) while the injector fires asynchronously; victims die mid-compute
/// in arbitrary states.  Survivors probe-and-repair once all planned kills
/// have landed.  (Kills landing *inside* the repair protocol itself are out
/// of scope here, as in the paper — its experiments inject failures before
/// the recovery sequence runs.)
void resilient_loop(std::atomic<int>& bad, int expected_kills) {
  Reconstructor recon({"app", {}});
  Comm w;
  if (!get_parent().is_null()) {
    w = recon.reconstruct({}).comm;
  } else {
    w = world();
    // Simulated compute until every planned kill has fired; a victim's
    // advance() throws the fail-stop unwind the moment it is killed.
    while (runtime().killed_count() < expected_kills) {
      advance(1e-9);
    }
    const auto res = recon.reconstruct(w);
    w = res.comm;
  }
  // Repaired world must be fully functional and complete.
  const int v = w.rank();
  std::vector<int> all(static_cast<size_t>(w.size()));
  if (gather(&v, 1, all.data(), 0, w) == kSuccess && w.rank() == 0) {
    for (int i = 0; i < w.size(); ++i) {
      if (all[static_cast<size_t>(i)] != i) ++bad;
    }
    if (w.size() != 8) ++bad;
  }
}

}  // namespace

TEST(AsyncInjector, TwoKillsTogetherWhileBusy) {
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("app", [&](const std::vector<std::string>&) {
    resilient_loop(bad, 2);
  });

  AsyncFailureInjector::Options opt;
  opt.victim_ranks = {3, 6};
  opt.delay_ms = 2;
  opt.together = true;

  // Launch the app; the injector thread fires while ranks are mid-protocol.
  std::thread runner([&] { rt.run("app", 8); });
  AsyncFailureInjector injector(rt, opt);
  injector.join();
  runner.join();
  EXPECT_EQ(injector.kills_issued(), 2);
  EXPECT_GE(rt.killed_count(), 2);
  EXPECT_EQ(bad.load(), 0);
}

TEST(AsyncInjector, StaggeredKills) {
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("app", [&](const std::vector<std::string>&) {
    resilient_loop(bad, 3);
  });

  AsyncFailureInjector::Options opt;
  opt.victim_ranks = {1, 4, 7};
  opt.delay_ms = 1;
  opt.together = false;  // spaced kills: separate failure episodes possible

  std::thread runner([&] { rt.run("app", 8); });
  AsyncFailureInjector injector(rt, opt);
  injector.join();
  runner.join();
  EXPECT_EQ(injector.kills_issued(), 3);
  EXPECT_EQ(bad.load(), 0);
}

TEST(AsyncInjector, KillAlreadyDeadIsHarmless) {
  Runtime rt;
  rt.register_app("app", [&](const std::vector<std::string>&) {
    if (world().rank() == 1) abort_self();
    (void)barrier(world());
  });
  std::thread runner([&] { rt.run("app", 3); });
  AsyncFailureInjector injector(rt, {{1}, 1, true});  // same victim again
  injector.join();
  runner.join();
  EXPECT_EQ(rt.killed_count(), 1);  // double-kill not double-counted
}
