// Tests for the advection solver: exactness properties of the Lax-Wendroff
// update, serial convergence, and parallel-vs-serial agreement.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "advection/parallel_solver.hpp"
#include "advection/serial_solver.hpp"
#include "ftmpi/api.hpp"

using namespace ftr::advection;
using ftr::grid::Grid2D;
using ftr::grid::Level;

TEST(LaxWendroff, UpdatePreservesConstants) {
  EXPECT_DOUBLE_EQ(lw_update(3.0, 3.0, 3.0, 0.7), 3.0);
}

TEST(LaxWendroff, UnitCourantShifts) {
  // With c = 1 the scheme is exact: u_i^{n+1} = u_{i-1}^n.
  EXPECT_DOUBLE_EQ(lw_update(1.0, 2.0, 5.0, 1.0), 1.0);
  // With c = -1 it shifts the other way.
  EXPECT_DOUBLE_EQ(lw_update(1.0, 2.0, 5.0, -1.0), 5.0);
}

TEST(Problem, ExactSolutionTranslates) {
  const Problem p{1.0, 0.5};
  EXPECT_NEAR(p.exact(0.5, 0.5, 0.0), p.initial(0.5, 0.5), 1e-14);
  EXPECT_NEAR(p.exact(0.75, 0.625, 0.25), p.initial(0.5, 0.5), 1e-14);
  // Periodic wrap.
  EXPECT_NEAR(p.exact(0.1, 0.1, 1.0), p.initial(0.1, 0.6), 1e-12);
}

TEST(Problem, StableTimestepRespectsCfl) {
  const Problem p{2.0, 0.5};
  const double dt = stable_timestep(6, p, 0.9);
  EXPECT_LE(dt * 2.0 * 64, 0.9 + 1e-12);
}

TEST(SerialSolver, ErrorSmallAfterManySteps) {
  const Problem p{1.0, 0.5};
  const double dt = stable_timestep(6, p, 0.8);
  SerialSolver s(Level{6, 6}, p, dt);
  s.run(50);
  EXPECT_LT(s.l1_error(), 5e-3);
}

TEST(SerialSolver, SecondOrderConvergence) {
  const Problem p{1.0, 1.0};
  // Solve to the same physical time on successively finer grids with the
  // same (finest-stable) timestep; the spatial error should drop ~4x per
  // refinement once the spatial term dominates.
  const double dt = stable_timestep(7, p, 0.5);
  const long steps = 64;
  double prev = 0;
  std::vector<double> errs;
  for (int l : {4, 5, 6}) {
    SerialSolver s(Level{l, l}, p, dt);
    s.run(steps);
    errs.push_back(s.l1_error());
    (void)prev;
  }
  EXPECT_GT(errs[0] / errs[1], 2.5);
  EXPECT_GT(errs[1] / errs[2], 2.5);
}

TEST(SerialSolver, ResumeConstructorContinues) {
  const Problem p{1.0, 0.5};
  const double dt = stable_timestep(5, p, 0.8);
  SerialSolver full(Level{5, 5}, p, dt);
  full.run(40);

  SerialSolver first(Level{5, 5}, p, dt);
  first.run(25);
  SerialSolver resumed(first.grid(), p, dt, first.steps_done());
  resumed.run(15);
  EXPECT_EQ(resumed.steps_done(), 40);
  for (int iy = 0; iy < full.grid().ny(); ++iy) {
    for (int ix = 0; ix < full.grid().nx(); ++ix) {
      ASSERT_NEAR(resumed.grid().at(ix, iy), full.grid().at(ix, iy), 1e-14);
    }
  }
}

TEST(ParallelSolver, MatchesSerialBitForBit) {
  ftmpi::Runtime rt;
  std::atomic<int> bad{0};
  const Problem p{1.0, 0.5};
  const Level level{5, 4};
  const double dt = stable_timestep(5, p, 0.8);
  const long steps = 20;
  rt.register_app("main", [&](const std::vector<std::string>&) {
    ParallelSolver solver(level, p, dt, ftmpi::world());
    if (solver.run(steps) != ftmpi::kSuccess) ++bad;
    Grid2D full;
    if (solver.gather_full(&full) != ftmpi::kSuccess) ++bad;
    if (ftmpi::world().rank() == 0) {
      SerialSolver ref(level, p, dt);
      ref.run(steps);
      for (int iy = 0; iy < full.ny(); ++iy) {
        for (int ix = 0; ix < full.nx(); ++ix) {
          if (std::abs(full.at(ix, iy) - ref.grid().at(ix, iy)) > 1e-13) ++bad;
        }
      }
    }
  });
  rt.run("main", 8);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ParallelSolver, ScatterThenGatherRoundTrips) {
  ftmpi::Runtime rt;
  std::atomic<int> bad{0};
  const Problem p{1.0, 0.5};
  const Level level{4, 4};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    ParallelSolver solver(level, p, stable_timestep(4, p), ftmpi::world());
    Grid2D ref(level);
    if (ftmpi::world().rank() == 0) {
      ref.fill([](double x, double y) { return 3 * x - y; });
    }
    if (solver.scatter_full(ref) != ftmpi::kSuccess) ++bad;
    Grid2D back;
    if (solver.gather_full(&back) != ftmpi::kSuccess) ++bad;
    if (ftmpi::world().rank() == 0) {
      ref.enforce_periodicity();
      if (!(ref == back)) ++bad;
    }
  });
  rt.run("main", 4);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ParallelSolver, StepChargesVirtualComputeTime) {
  ftmpi::Runtime rt;
  std::atomic<double> t{0.0};
  const Problem p{1.0, 0.5};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    ParallelSolver solver(Level{5, 5}, p, stable_timestep(5, p), ftmpi::world());
    solver.run(4);
    t = ftmpi::wtime();
  });
  rt.run("main", 1);
  // 4 steps x 2 sweeps x 1024 cells at the modeled rate.
  const double expect = 4.0 * 2.0 * 1024.0 / ftmpi::CostModel{}.cell_update_rate;
  EXPECT_NEAR(t.load(), expect, expect * 0.01);
}

TEST(ParallelSolver, SurfacesFailureDuringStep) {
  ftmpi::Runtime rt;
  std::atomic<int> fail_codes{0};
  const Problem p{1.0, 0.5};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    ftmpi::Comm& w = ftmpi::world();
    ParallelSolver solver(Level{5, 5}, p, stable_timestep(5, p), w);
    if (w.rank() == 2) {
      solver.run(3);
      ftmpi::abort_self();
    }
    const int rc = solver.run(100);
    if (rc == ftmpi::kErrProcFailed) ++fail_codes;
  });
  rt.run("main", 4);
  EXPECT_EQ(fail_codes.load(), 3);
}
