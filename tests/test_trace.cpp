// Tests of the runtime event trace: off by default, records the repair
// pipeline's event sequence when enabled, bounded capacity.

#include <gtest/gtest.h>

#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"
#include "ftmpi/trace.hpp"

using namespace ftmpi;

TEST(Trace, OffByDefaultRecordsNothing) {
  Runtime rt;
  rt.register_app("main", [&](const std::vector<std::string>&) {
    if (world().rank() == 1) abort_self();
    (void)barrier(world());
  });
  rt.run("main", 3);
  EXPECT_TRUE(rt.trace().events().empty());
}

TEST(Trace, RecordsRepairPipelineSequence) {
  Runtime rt;
  rt.trace().enable();
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    ftr::core::Reconstructor recon({"app", argv});
    if (!get_parent().is_null()) {
      recon.reconstruct({});
      return;
    }
    Comm w = world();
    if (w.rank() == 2 || w.rank() == 4) abort_self();
    recon.reconstruct(w);
  });
  rt.run("app", 6);

  EXPECT_EQ(rt.trace().events_of(TraceEvent::Kill).size(), 2u);
  // Every surviving rank revokes the broken communicator inside repairComm
  // (revoke is a local ULFM call), all against the same context.
  const auto revokes = rt.trace().events_of(TraceEvent::Revoke);
  ASSERT_GE(revokes.size(), 1u);
  EXPECT_EQ(revokes.size(), 4u);  // one per survivor
  for (const auto& r : revokes) EXPECT_EQ(r.value, revokes[0].value);
  const auto shrinks = rt.trace().events_of(TraceEvent::Shrink);
  ASSERT_EQ(shrinks.size(), 1u);
  EXPECT_EQ(shrinks[0].value, 4);  // 6 - 2 survivors
  const auto spawns = rt.trace().events_of(TraceEvent::Spawn);
  ASSERT_EQ(spawns.size(), 1u);
  EXPECT_EQ(spawns[0].value, 2);
  const auto merges = rt.trace().events_of(TraceEvent::Merge);
  ASSERT_EQ(merges.size(), 1u);
  EXPECT_EQ(merges[0].value, 6);  // merged intracomm back at full size

  // Ordering: kill before revoke before shrink before spawn (by record
  // order; virtual timestamps are per-process).
  const auto all = rt.trace().events();
  auto index_of = [&](TraceEvent e) {
    for (size_t i = 0; i < all.size(); ++i) {
      if (all[i].event == e) return static_cast<long>(i);
    }
    return -1L;
  };
  EXPECT_LT(index_of(TraceEvent::Kill), index_of(TraceEvent::Revoke));
  EXPECT_LT(index_of(TraceEvent::Revoke), index_of(TraceEvent::Shrink));
  EXPECT_LT(index_of(TraceEvent::Shrink), index_of(TraceEvent::Spawn));

  // The formatter emits one line per event.
  const std::string text = rt.trace().format();
  EXPECT_NE(text.find("revoke"), std::string::npos);
  EXPECT_NE(text.find("spawn"), std::string::npos);
}

TEST(Trace, CapacityIsBounded) {
  Runtime rt;
  rt.trace().enable(/*capacity=*/3);
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    for (int i = 0; i < 10; ++i) {
      Comm dup;
      (void)comm_dup(w, &dup);  // each successful split records one event
    }
  });
  rt.run("main", 2);
  EXPECT_LE(rt.trace().events().size(), 3u);
  rt.trace().clear();
  EXPECT_TRUE(rt.trace().events().empty());
}

TEST(Trace, HostFailureRecorded) {
  Runtime::Options o;
  o.slots_per_host = 2;
  Runtime rt(o);
  rt.trace().enable();
  rt.register_app("main", [&](const std::vector<std::string>&) {
    if (world().rank() == 0) {
      runtime().fail_host(1);
      return;
    }
    if (runtime().host_of(self_pid()) != 1) return;  // bystanders exit
    // Residents of the failing node spin until the kill unwinds them.
    while (true) advance(1e-7);
  });
  rt.run("main", 4);  // ranks 0,1 on host 0; ranks 2,3 on host 1
  const auto fails = rt.trace().events_of(TraceEvent::HostFail);
  ASSERT_EQ(fails.size(), 1u);
  EXPECT_EQ(fails[0].value, 1);
  EXPECT_EQ(rt.trace().events_of(TraceEvent::Kill).size(), 2u);
}
