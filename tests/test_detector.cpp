// Failure-detector tests: heartbeat-ring detection, gossip propagation,
// chaos kills at the detector's own phase boundaries, the tree agreement
// under chaos, and the FTR_DETECTOR=off legacy fallback.
//
// The detector is a zero virtual-cost overlay, but *when* knowledge arrives
// at a rank depends on real message timing.  Tests therefore assert virtual
// upper bounds and convergence, never exact learn times.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "core/chaos.hpp"
#include "core/ft_app.hpp"
#include "core/layout.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/detail.hpp"
#include "ftmpi/detector.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;
using ftr::comb::Scheme;
using ftr::comb::Technique;
using ftr::core::AppConfig;
using ftr::core::ChaosInjector;
using ftr::core::FtApp;
using ftr::core::LayoutConfig;

namespace {

Runtime::Options det_opts(int slots = 8) {
  Runtime::Options o;
  o.slots_per_host = slots;
  o.real_time_limit_sec = 120.0;
  return o;
}

/// Tick the virtual clock in small increments (each increment runs the
/// detector's maybe_tick hook) until `stop` is set or `max_ticks` pass.
/// Each tick yields a little real time: rank threads are real threads, and
/// without pacing the scheduler can run one rank's entire loop before its
/// peers get a single slice — no ring can form over such a schedule.
/// Returns the number of ticks spent.
int tick_until(const std::atomic<bool>& stop, int max_ticks, double dt = 0.05) {
  int t = 0;
  for (; t < max_ticks && !stop.load(); ++t) {
    advance(dt);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  return t;
}

/// Real-time startup rendezvous.  Runtime::run starts rank threads
/// sequentially, and the scheduler may run an early thread's entire
/// observation loop before a later thread exists; every ring test must
/// therefore hold all ranks at the line until the full ring is up.
void rendezvous(std::atomic<int>& arrived, int expected) {
  ++arrived;
  while (arrived.load() < expected) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

}  // namespace

// Satellite regression: the idle-rank blind spot.  A rank that performs no
// communication at all must still learn of a remote death within a bounded
// number of virtual-clock ticks — via ring timeout at the victim's
// neighbour and O(log N) gossip from there, never by touching the dead
// process itself.
TEST(Detector, IdleRankLearnsRemoteDeathWithinBoundedTicks) {
  constexpr int kWorld = 6;
  constexpr int kVictim = 3;
  constexpr int kIdle = 0;
  // 400 ticks x 0.05s = 20 virtual seconds, far above the expected
  // detect-plus-gossip latency (~2s with the default thresholds).
  constexpr int kMaxTicks = 400;
  constexpr double kLearnBound = 6.0;

  Runtime rt(det_opts());
  std::atomic<int> arrived{0};
  std::atomic<bool> learned{false};
  std::atomic<int> bad{0};
  std::atomic<double> learn_when{-1.0};
  std::atomic<int> learn_source{-1};
  rt.register_app("app", [&](const std::vector<std::string>&) {
    Comm w = world();
    const ProcId vpid = w.group().pids[static_cast<size_t>(kVictim)];
    rendezvous(arrived, kWorld);
    if (w.rank() == kVictim) abort_self();
    if (w.rank() == kIdle) {
      // The idle rank: no sends, no receives, no collectives — only local
      // work (virtual-time charges).  Detection must come to *it*.
      for (int t = 0; t < kMaxTicks && !learned.load(); ++t) {
        advance(0.05);
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        if (detector_knows_failure_in(w)) {
          for (const auto& r : detector_records()) {
            if (r.dead == vpid) {
              learn_when.store(r.when);
              learn_source.store(static_cast<int>(r.how));
            }
          }
          learned.store(true);
        }
      }
      if (!learned.load()) ++bad;
    } else {
      // Other survivors only run their ring duties (the victim's ring
      // successor is the one whose timeout fires first).
      tick_until(learned, kMaxTicks);
    }
  });
  rt.run("app", kWorld);
  EXPECT_EQ(bad.load(), 0) << "idle rank never learned of the remote death";
  ASSERT_TRUE(learned.load());
  EXPECT_LE(learn_when.load(), kLearnBound);
  // The idle rank is not a ring neighbour of the victim and never touched
  // it, so its knowledge can only have arrived by gossip.
  EXPECT_EQ(learn_source.load(), static_cast<int>(detector::Source::kGossip));
}

// A slow-but-alive rank (silent beyond the suspicion threshold) must be
// suspected, probed, and cleared — never declared dead.
TEST(Detector, SlowButAliveRankIsNeverDeclaredDead) {
  constexpr int kWorld = 3;
  constexpr int kSlow = 1;
  Runtime rt(det_opts(4));
  std::atomic<int> arrived{0};
  std::atomic<int> observers_done{0};
  std::atomic<long> false_alarms{0};
  std::atomic<int> wrongly_declared{0};
  rt.register_app("app", [&](const std::vector<std::string>&) {
    Comm w = world();
    rendezvous(arrived, kWorld);
    if (w.rank() == kSlow) {
      // Stalled: no virtual-time progress, hence no heartbeats, for the
      // whole observation window — but alive the entire time.  It must not
      // leave until *both* observers finish judging, or it would drop out
      // of their rings as a clean exit before the window closes.
      while (observers_done.load() < kWorld - 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return;
    }
    // 120 ticks x 0.05s = 6 virtual seconds of silence from the slow rank,
    // several times the confirm threshold (1.25s).
    for (int t = 0; t < 120; ++t) {
      advance(0.05);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    if (!detector_known_failed().empty()) ++wrongly_declared;
    // The slow rank's ring successor is the judge; it must have probed at
    // least once (suspect -> probe -> alive -> cleared).
    const ProcId slow_pid = w.group().pids[kSlow];
    if (w.group().pids[(static_cast<size_t>(w.rank()) + kWorld - 1) % kWorld] == slow_pid) {
      false_alarms.store(detail::self().det.false_alarms);
    }
    ++observers_done;
  });
  rt.run("app", kWorld);
  EXPECT_EQ(wrongly_declared.load(), 0) << "slow-but-alive rank declared dead";
  EXPECT_GE(false_alarms.load(), 1) << "judge never probed the silent rank";
}

// Chaos at "detector.gossip": the first informed rank dies *mid fan-out*.
// Knowledge of the original failure must still reach every survivor (the
// relay's own death is detected by the same ring), i.e. propagation has no
// single point of failure.
TEST(Detector, FailureDuringGossipPropagationStillConverges) {
  constexpr int kWorld = 8;
  constexpr int kVictim = 5;
  // The victim's ring successor confirms the death first and is killed at
  // its own first gossip fan-out.
  constexpr int kRelay = 6;
  Runtime rt(det_opts());
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = "detector.gossip", .victim = kRelay, .occurrence = 1});

  std::atomic<int> arrived{0};
  std::atomic<int> converged{0};
  rt.register_app("app", [&](const std::vector<std::string>&) {
    Comm w = world();
    rendezvous(arrived, kWorld);
    if (w.rank() == kVictim) abort_self();
    const ProcId vpid = w.group().pids[kVictim];
    const ProcId rpid = w.group().pids[kRelay];
    for (int t = 0; t < 800; ++t) {
      advance(0.05);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      const auto known = detector_known_failed();
      const std::set<ProcId> k(known.begin(), known.end());
      if (k.count(vpid) > 0 && k.count(rpid) > 0) {
        ++converged;
        break;
      }
    }
  });
  rt.run("app", kWorld);
  EXPECT_EQ(chaos.kills_fired(), 1);
  // All survivors (everyone but victim and relay) know both deaths.
  EXPECT_EQ(converged.load(), kWorld - 2);
}

// Chaos at "detector.heartbeat": a rank dies at its own heartbeat boundary.
// Its ring successor must detect it by timeout and the ring must converge.
TEST(Detector, HeartbeatChaosKillIsDetectedByRing) {
  constexpr int kWorld = 6;
  constexpr int kVictim = 2;
  Runtime rt(det_opts());
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = "detector.heartbeat", .victim = kVictim, .occurrence = 2});

  std::atomic<int> arrived{0};
  std::atomic<int> converged{0};
  rt.register_app("app", [&](const std::vector<std::string>&) {
    Comm w = world();
    const ProcId vpid = w.group().pids[kVictim];
    rendezvous(arrived, kWorld);
    for (int t = 0; t < 800; ++t) {
      advance(0.05);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      if (w.rank() != kVictim && detector_known_failed().size() == 1 &&
          detector_known_failed()[0] == vpid) {
        ++converged;
        break;
      }
    }
  });
  rt.run("app", kWorld);
  EXPECT_EQ(chaos.kills_fired(), 1);
  EXPECT_EQ(converged.load(), kWorld - 1);
}

// Chaos at "agree.tree": a participant dies at its first entry into the
// tree agreement.  All survivors must still decide, uniformly: first the
// failure error, then (after acknowledging) success.
TEST(Detector, TreeAgreeUniformUnderChaosKill) {
  constexpr int kWorld = 8;
  constexpr int kVictim = 3;
  Runtime rt(det_opts());
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = "agree.tree", .victim = kVictim, .occurrence = 1});

  std::atomic<int> first_failed{0}, first_ok{0}, second_ok{0}, bad{0};
  rt.register_app("app", [&](const std::vector<std::string>&) {
    Comm w = world();
    int flag = 1;
    const int rc1 = comm_agree(w, &flag);
    if (rc1 == kSuccess) {
      ++first_ok;
    } else if (rc1 == kErrProcFailed) {
      ++first_failed;
    } else {
      ++bad;
    }
    if (rc1 != kSuccess) {
      if (comm_failure_ack(w) != kSuccess) ++bad;
    }
    int flag2 = 1;
    if (comm_agree(w, &flag2) == kSuccess && flag2 == 1) {
      ++second_ok;
    } else {
      ++bad;
    }
  });
  rt.run("app", kWorld);
  EXPECT_EQ(chaos.kills_fired(), 1);
  EXPECT_EQ(bad.load(), 0);
  // Uniformity: every survivor reports the same outcome per round.  The
  // kill fires at the victim's *entry*, before it participates, so every
  // survivor must observe the failure in round one.
  EXPECT_EQ(first_ok.load(), 0);
  EXPECT_EQ(first_failed.load(), kWorld - 1);
  EXPECT_EQ(second_ok.load(), kWorld - 1);
}

// --- application-level wiring ----------------------------------------------

namespace {

LayoutConfig small_layout(Technique t) {
  LayoutConfig cfg;
  cfg.scheme = Scheme{6, 3};
  cfg.technique = t;
  cfg.procs_diagonal = 4;
  cfg.procs_lower = 2;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

Runtime::Options app_opts(bool detector_on = true) {
  Runtime::Options o;
  o.slots_per_host = 12;
  o.real_time_limit_sec = 120.0;
  o.detector.enabled = detector_on;
  return o;
}

}  // namespace

// FTR_DETECTOR=off fallback: with the detector disabled the runtime must
// behave *bit-for-bit* like the pre-detector code — and because the
// detector is a zero virtual-cost overlay, enabling it must not move any
// result either.
//
// The failure-free run is fully deterministic, so there the comparison is
// exact on every metric.  A *failing* run's total time was racy before the
// detector existed (which blocked rank wakes first and eats the
// failure-detect latency varies with the OS schedule), so for the failing
// case the comparison covers the deterministic outputs: solution error,
// kill count, and repair count.
TEST(Detector, OffFallbackMatchesLegacyBitForBit) {
  AppConfig cfg;
  cfg.layout = small_layout(Technique::CheckpointRestart);
  cfg.timesteps = 24;
  cfg.checkpoints = 2;

  double total[2], err[2];
  for (const bool on : {false, true}) {
    Runtime rt(app_opts(on));
    FtApp app(cfg);
    ASSERT_EQ(app.launch(rt), 0);
    total[on] = rt.get(ftr::core::keys::kTotalTime, -1.0);
    err[on] = rt.get(ftr::core::keys::kErrorL1, -1.0);
  }
  EXPECT_EQ(total[0], total[1]);
  EXPECT_EQ(err[0], err[1]);
  EXPECT_GT(total[0], 0.0);
  EXPECT_GE(err[0], 0.0);

  cfg.failures.kill_at_step[3] = 7;
  double ferr[2], repairs[2];
  for (const bool on : {false, true}) {
    Runtime rt(app_opts(on));
    FtApp app(cfg);
    ASSERT_EQ(app.launch(rt), 1);
    ferr[on] = rt.get(ftr::core::keys::kErrorL1, -1.0);
    repairs[on] = rt.get(ftr::core::keys::kRepairs, 0.0);
    EXPECT_GT(rt.get(ftr::core::keys::kRecoveryTime, -1.0), 0.0);
  }
  EXPECT_EQ(ferr[0], ferr[1]);
  EXPECT_EQ(repairs[0], repairs[1]);
  // CR rollback restores exactly: the recovered error equals failure-free.
  EXPECT_EQ(ferr[0], err[0]);
}

// Proactive recovery (tentpole wiring): with cfg.proactive_recovery on, a
// detector notification lets ranks whose collectives never touch the dead
// process leave the solve loop and enter the repair early.  Correctness
// must hold on every run regardless of whether the race fires; the counter
// must fire at least once across a few attempts.
TEST(Detector, ProactiveRecoveryKeepsResultsCorrect) {
  AppConfig base;
  base.layout = small_layout(Technique::CheckpointRestart);
  base.timesteps = 24;
  base.checkpoints = 2;

  // Failure-free baseline error (CR restores exactly, so every repaired
  // run must reproduce it).
  double base_err = 0.0;
  {
    Runtime rt(app_opts());
    FtApp app(base);
    ASSERT_EQ(app.launch(rt), 0);
    base_err = rt.get(ftr::core::keys::kErrorL1, -1.0);
    ASSERT_GE(base_err, 0.0);
  }

  AppConfig cfg = base;
  cfg.proactive_recovery = true;
  cfg.failures.kill_at_step[3] = 2;  // grid 0 loses a member early in the interval
  bool saw_proactive = false;
  for (int attempt = 0; attempt < 12 && !saw_proactive; ++attempt) {
    // Aggressive detector thresholds widen the proactive window: the ring
    // confirms the death while other grids still have most of the interval
    // ahead of them, so gossip reaches ranks that are still stepping.
    Runtime::Options o = app_opts();
    o.detector.period = 0.02;
    o.detector.suspect_after = 0.06;
    o.detector.confirm_after = 0.1;
    Runtime rt(o);
    FtApp app(cfg);
    ASSERT_EQ(app.launch(rt), 1);
    EXPECT_EQ(rt.get(ftr::core::keys::kRepairs, 0.0), 1.0);
    const double err = rt.get(ftr::core::keys::kErrorL1, -1.0);
    // CR rollback restores the exact pre-failure state, so the recovered
    // error must match the failure-free baseline whether or not any rank
    // left the loop proactively (the catch-up in post_repair re-solves
    // short grids before restoration).
    EXPECT_NEAR(err, base_err, 1e-12);
    if (rt.get(ftr::core::keys::kProactiveExits, 0.0) > 0.0) {
      EXPECT_GE(rt.get("recon.detector_preknown", 0.0), 1.0);
      saw_proactive = true;
    }
  }
  EXPECT_TRUE(saw_proactive)
      << "no rank ever left the solve loop proactively in 12 attempts";
}
