// Randomized robustness sweep of the fault-tolerant application: random
// victim ranks and kill steps drawn per seed, across all techniques and
// failure counts.  Asserts survival properties (the run completes, exactly
// the planned processes die, one repair fixes a simultaneous group, the
// error stays bounded) rather than exact values.

#include <gtest/gtest.h>

#include <tuple>

#include "core/failure_gen.hpp"
#include "core/ft_app.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftr::core;
using ftr::comb::Scheme;
using ftr::comb::Technique;

namespace {

AppConfig sweep_app(Technique t) {
  AppConfig cfg;
  cfg.layout.scheme = Scheme{6, 3};
  cfg.layout.technique = t;
  cfg.layout.procs_diagonal = 4;
  cfg.layout.procs_lower = 2;
  cfg.layout.procs_extra_upper = 2;
  cfg.layout.procs_extra_lower = 1;
  cfg.timesteps = 24;
  cfg.checkpoints = 2;
  return cfg;
}

}  // namespace

class FtAppSweep : public ::testing::TestWithParam<std::tuple<Technique, int, int>> {};

TEST_P(FtAppSweep, SurvivesRandomFailures) {
  const auto [technique, failures, seed] = GetParam();
  AppConfig cfg = sweep_app(technique);
  const Layout layout = build_layout(cfg.layout);
  ftr::Xoshiro256 rng(static_cast<uint64_t>(seed));
  cfg.failures = random_real_failures(layout, failures, cfg.timesteps, rng);
  ASSERT_EQ(cfg.failures.kill_at_step.size(), static_cast<size_t>(failures));

  ftmpi::Runtime::Options opts;
  opts.real_time_limit_sec = 120.0;
  ftmpi::Runtime rt(opts);
  FtApp app(cfg);
  const int killed = app.launch(rt);

  EXPECT_EQ(killed, failures);
  // All victims die at the same step, so one repair episode fixes them.
  EXPECT_DOUBLE_EQ(rt.get(keys::kRepairs, -1), 1.0);
  const double err = rt.get(keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0) << "run did not produce a combined solution";
  EXPECT_LT(err, 1.0);
  EXPECT_GT(rt.get(keys::kReconSpawn, -1), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, FtAppSweep,
    ::testing::Combine(::testing::Values(Technique::CheckpointRestart,
                                         Technique::ResamplingCopying,
                                         Technique::AlternateCombination),
                       ::testing::Values(1, 2, 3), ::testing::Values(101, 202)),
    [](const auto& tpi) {
      return std::string(ftr::comb::technique_tag(std::get<0>(tpi.param))) + "_f" +
             std::to_string(std::get<1>(tpi.param)) + "_s" +
             std::to_string(std::get<2>(tpi.param));
    });
