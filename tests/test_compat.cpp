// Tests of the MPI_*/OMPI_* compatibility layer — the surface the paper's
// pseudocode is written against.  These mirror the paper's call sequences
// (Figs. 3-7) directly in compat style.

#include <gtest/gtest.h>

#include <atomic>

#include "ftmpi/mpi_compat.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;
using namespace ftmpi::compat;

TEST(Compat, RankSizeWtime) {
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    MPI_Comm comm = world();
    int rank = -1, size = -1;
    if (MPI_Comm_rank(comm, &rank) != MPI_SUCCESS) ++bad;
    if (MPI_Comm_size(comm, &size) != MPI_SUCCESS) ++bad;
    if (size != 3 || rank < 0 || rank >= 3) ++bad;
    if (MPI_Wtime() < 0) ++bad;
  });
  rt.run("main", 3);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Compat, SendRecvWithStatus) {
  Runtime rt;
  std::atomic<int> got{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    MPI_Comm comm = world();
    int rank;
    MPI_Comm_rank(comm, &rank);
    if (rank == 0) {
      const int v = 31;
      ASSERT_EQ(MPI_Send(&v, 1, MPI_INT, 1, 4, comm), MPI_SUCCESS);
    } else {
      int v = 0;
      MPI_Status st;
      ASSERT_EQ(MPI_Recv(&v, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG, comm, &st),
                MPI_SUCCESS);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 4);
      got = v;
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(got.load(), 31);
}

TEST(Compat, GroupOpsMatchFig6Usage) {
  // The failedProcsList sequence: group, compare, difference, translate.
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    MPI_Comm comm = world();
    if (comm.rank() == 2) ftmpi::abort_self();
    (void)MPI_Barrier(comm);
    MPI_Comm shrunken;
    ASSERT_EQ(OMPI_Comm_shrink(comm, &shrunken), MPI_SUCCESS);

    MPI_Group old_group, shrink_group;
    MPI_Comm_group(comm, &old_group);
    MPI_Comm_group(shrunken, &shrink_group);
    int result = MPI_UNEQUAL;
    MPI_Group_compare(old_group, shrink_group, &result);
    if (result == MPI_IDENT) ++bad;

    MPI_Group failed;
    MPI_Group_difference(old_group, shrink_group, &failed);
    int total = 0;
    MPI_Group_size(failed, &total);
    if (total != 1) ++bad;
    int temp[1] = {0};
    int out[1] = {-1};
    MPI_Group_translate_ranks(failed, 1, temp, old_group, out);
    if (out[0] != 2) ++bad;
  });
  rt.run("main", 4);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Compat, GroupCompareSimilar) {
  Group a{{3, 5, 9}};
  Group b{{9, 3, 5}};
  int r = -1;
  MPI_Group_compare(a, b, &r);
  EXPECT_EQ(r, MPI_SIMILAR);
  MPI_Group_compare(a, a, &r);
  EXPECT_EQ(r, MPI_IDENT);
  Group c{{3, 5}};
  MPI_Group_compare(a, c, &r);
  EXPECT_EQ(r, MPI_UNEQUAL);
}

TEST(Compat, ErrhandlerFig4Pattern) {
  Runtime rt;
  static std::atomic<int> handler_runs{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    MPI_Comm comm = world();
    MPI_Errhandler eh;
    MPI_Comm_create_errhandler(
        [](MPI_Comm* c, int* /*code*/) {
          (void)OMPI_Comm_failure_ack(*c);
          MPI_Group failed;
          (void)OMPI_Comm_failure_get_acked(*c, &failed);
          if (failed.size() == 1) ++handler_runs;
        },
        &eh);
    (void)MPI_Comm_set_errhandler(comm, eh);
    if (comm.rank() == 1) ftmpi::abort_self();
    (void)MPI_Barrier(comm);
    // After the handler acked, agreement succeeds.
    int flag = 1;
    EXPECT_EQ(OMPI_Comm_agree(comm, &flag), MPI_SUCCESS);
  });
  rt.run("main", 3);
  EXPECT_EQ(handler_runs.load(), 2);
}

TEST(Compat, SpawnMultipleAndMergeFig5Pattern) {
  Runtime rt;
  std::atomic<int> merged_size{0};
  rt.register_app("main", [&](const std::vector<std::string>& argv) {
    if (!argv.empty() && argv[0] == "child") {
      MPI_Comm parent;
      MPI_Comm_get_parent(&parent);
      ASSERT_FALSE(parent.is_null());
      MPI_Comm unordered;
      ASSERT_EQ(MPI_Intercomm_merge(parent, 1, &unordered), MPI_SUCCESS);
      (void)MPI_Barrier(unordered);
      return;
    }
    MPI_Comm comm = world();
    std::vector<MPI_Info> infos(2);
    MPI_Info_create(&infos[0]);
    MPI_Info_create(&infos[1]);
    MPI_Comm inter;
    ASSERT_EQ(MPI_Comm_spawn_multiple(2, {"main", "main"}, {{"child"}, {"child"}},
                                      {1, 1}, infos, 0, comm, &inter,
                                      MPI_ERRCODES_IGNORE),
              MPI_SUCCESS);
    MPI_Comm unordered;
    ASSERT_EQ(MPI_Intercomm_merge(inter, 0, &unordered), MPI_SUCCESS);
    if (unordered.rank() == 0) merged_size = unordered.size();
    (void)MPI_Barrier(unordered);
  });
  rt.run("main", 3);
  EXPECT_EQ(merged_size.load(), 5);
}

TEST(Compat, AllreduceBothTypes) {
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    MPI_Comm comm = world();
    const double d = 1.5;
    double dsum = 0;
    if (MPI_Allreduce(&d, &dsum, 1, MPI_SUM, comm) != MPI_SUCCESS || dsum != 6.0) ++bad;
    const int i = comm.rank();
    int imax = -1;
    if (MPI_Allreduce(&i, &imax, 1, MPI_MAX, comm) != MPI_SUCCESS || imax != 3) ++bad;
  });
  rt.run("main", 4);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Compat, RevokedCommReportsMpiErrRevoked) {
#ifdef FTR_PSAN
  // Deliberately barriers on a communicator this rank just revoked to check
  // the reported error code — the FTL006 violation the protocol sanitizer
  // aborts on (pinned by PsanDeath.UseAfterObservedRevokeAborts).
  GTEST_SKIP() << "intentional use-after-revoke; aborts by design under "
                  "FTR_SANITIZE=protocol";
#endif
  Runtime rt;
  std::atomic<int> code{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    MPI_Comm comm = world();
    MPI_Comm dup;
    (void)MPI_Comm_dup(comm, &dup);
    (void)OMPI_Comm_revoke(&dup);
    code = MPI_Barrier(dup);
    (void)MPI_Barrier(comm);  // the original communicator still works
  });
  rt.run("main", 2);
  EXPECT_EQ(code.load(), MPI_ERR_REVOKED);
}
