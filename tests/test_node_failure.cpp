// Tests of the whole-node failure extension (the paper's future-work
// scenario): a failed host kills all of its processes; the repair protocol
// respawns every replacement, co-located, on one spare node; and the full
// application survives a node failure with bounded error.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/ft_app.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;
using ftr::comb::Technique;

namespace {

Runtime::Options opts(int slots) {
  Runtime::Options o;
  o.slots_per_host = slots;
  o.real_time_limit_sec = 120.0;
  return o;
}

}  // namespace

TEST(NodeFailure, FailHostKillsAllResidents) {
  Runtime rt(opts(3));
  std::atomic<int> killed_ranks{0};
  std::atomic<int> survivors{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 0) {
      rt.fail_host(1);  // hosts: 0 = ranks 0-2, 1 = ranks 3-5
      ++survivors;
      return;
    }
    // Wait until the host either dies or we are told to stop.
    while (!rt.host_failed(1)) {}
    if (runtime().host_of(self_pid()) == 1) {
      // We are dead; the next runtime call unwinds.
      advance(1e-9);
      ++killed_ranks;  // unreachable
    } else {
      ++survivors;
    }
  });
  const int killed = rt.run("main", 6);
  EXPECT_EQ(killed, 3);
  EXPECT_EQ(killed_ranks.load(), 0);
  EXPECT_EQ(survivors.load(), 3);
  EXPECT_TRUE(rt.host_failed(1));
  EXPECT_FALSE(rt.host_failed(0));
}

TEST(NodeFailure, SubstituteHostIsConsistent) {
  Runtime rt(opts(4));
  rt.register_app("noop", [](const std::vector<std::string>&) {});
  rt.run("noop", 4);  // occupies host 0
  rt.fail_host(0);
  // Two placements preferring the failed host land on the SAME spare.
  const ProcId a = rt.create_process("noop", {}, 0, 0.0);
  const ProcId b = rt.create_process("noop", {}, 0, 0.0);
  EXPECT_EQ(rt.host_of(a), rt.host_of(b));
  EXPECT_NE(rt.host_of(a), 0);
  EXPECT_FALSE(rt.host_failed(rt.host_of(a)));
  rt.start_process(a);
  rt.start_process(b);
  // Let them run out; run() was already used, so wait via a fresh run.
  rt.run("noop", 1);
}

TEST(NodeFailure, RepairRespawnsNodeCoLocated) {
  Runtime rt(opts(3));
  std::atomic<int> bad{0};
  std::atomic<int> child_count{0};
  std::set<int> child_hosts;
  std::mutex mu;
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    ftr::core::Reconstructor recon({"app", argv});
    if (!get_parent().is_null()) {
      const auto res = recon.reconstruct({});
      ++child_count;
      {
        std::lock_guard<std::mutex> lock(mu);
        child_hosts.insert(runtime().host_of(self_pid()));
      }
      if (res.comm.size() != 9) ++bad;
      if (res.comm.rank() < 3 || res.comm.rank() > 5) ++bad;  // host 1's ranks
      (void)barrier(res.comm);
      return;
    }
    Comm w = world();  // 9 ranks over hosts 0,1,2
    if (w.rank() == 1) runtime().fail_host(1);
    if (runtime().host_of(self_pid()) == 1) {
      while (true) advance(1e-6);  // die at the next charge once marked dead
    }
    // Survivors wait until the node's processes are really gone before
    // probing, so the repair happens in one deterministic episode.
    while (runtime().killed_count() < 3) {}
    const auto res = recon.reconstruct(w);
    if (res.comm.size() != 9) ++bad;
    if (res.comm.rank() != w.rank()) ++bad;
    (void)barrier(res.comm);
  });
  rt.run("app", 9);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(child_count.load(), 3);
  // All three replacements co-located on one spare node.
  EXPECT_EQ(child_hosts.size(), 1u);
  EXPECT_EQ(*child_hosts.begin(), 3);  // first spare beyond hosts 0..2
}

TEST(NodeFailure, FtAppSurvivesNodeFailure) {
  // Layout: scheme {6,3} CR with 4/2 procs and 4 slots/host: host 0 carries
  // ranks 0-3 (grid 0), host 1 ranks 4-7 (grid 1), ...
  ftmpi::Runtime::Options o = opts(4);
  ftmpi::Runtime rt(o);
  ftr::core::AppConfig cfg;
  cfg.layout.scheme = ftr::comb::Scheme{6, 3};
  cfg.layout.technique = Technique::CheckpointRestart;
  cfg.layout.procs_diagonal = 4;
  cfg.layout.procs_lower = 2;
  cfg.timesteps = 24;
  cfg.checkpoints = 2;
  cfg.failures.fail_host_at_step[1] = 10;  // grid 1's whole node dies

  ftr::core::FtApp app(cfg);
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 4);
  EXPECT_DOUBLE_EQ(rt.get(ftr::core::keys::kRepairs, -1), 1.0);
  const double err = rt.get(ftr::core::keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0);
  EXPECT_LT(err, 0.05);  // CR recovery is exact
  EXPECT_TRUE(rt.host_failed(1));
}

TEST(NodeFailure, AcSurvivesNodeFailure) {
  ftmpi::Runtime rt(opts(4));
  ftr::core::AppConfig cfg;
  cfg.layout.scheme = ftr::comb::Scheme{6, 3};
  cfg.layout.technique = Technique::AlternateCombination;
  cfg.layout.procs_diagonal = 4;
  cfg.layout.procs_lower = 2;
  cfg.layout.procs_extra_upper = 2;
  cfg.layout.procs_extra_lower = 1;
  cfg.timesteps = 24;
  cfg.failures.fail_host_at_step[2] = 9;

  ftr::core::FtApp app(cfg);
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 4);
  const double err = rt.get(ftr::core::keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0);
  EXPECT_LT(err, 0.5);
}
