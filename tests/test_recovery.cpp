// Tests for the three data-recovery techniques' serial kernels:
// checkpoint store + policy, replication partners / copy / resample, and
// alternate-combination recovery.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "advection/serial_solver.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"
#include "recovery/alternate.hpp"
#include "recovery/checkpoint.hpp"
#include "grid/sampling.hpp"
#include "recovery/replication.hpp"

using namespace ftr::rec;
using ftr::comb::GridRole;
using ftr::comb::Scheme;
using ftr::comb::Technique;
using ftr::grid::Grid2D;
using ftr::grid::Level;

TEST(CheckpointPolicy, PaperEq2) {
  // C = MTBF / T_IO with MTBF = half the run time (paper Eq. 2).
  const CheckpointPolicy policy{CheckpointPolicy::Kind::PaperEq2};
  EXPECT_EQ(policy.count(/*app_time=*/200.0, /*t_io=*/3.52), 28);  // 100 / 3.52
  EXPECT_EQ(policy.count(200.0, 50.0), 2);
  EXPECT_EQ(policy.count(200.0, 1000.0), 1);  // clamped to at least one
  EXPECT_EQ(policy.count(200.0, 0.03, 16), 16);  // clamped to max
}

TEST(CheckpointPolicy, YoungInterval) {
  const CheckpointPolicy policy{CheckpointPolicy::Kind::Young};
  // tau = sqrt(2 * 100 * 4) ~ 28.3 -> C = 200 / 28.3 ~ 7
  EXPECT_EQ(policy.count(200.0, 4.0), 7);
}

TEST(CheckpointStore, MemoryRoundTripChargesVirtualIo) {
  ftmpi::Runtime rt;
  std::atomic<double> write_cost{0}, read_cost{0};
  std::atomic<bool> ok{false};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    CheckpointStore store;
    const std::vector<double> data{1.0, 2.0, 3.0};
    const double t0 = ftmpi::wtime();
    store.write(5, 2, 40, data);
    write_cost = ftmpi::wtime() - t0;
    const double t1 = ftmpi::wtime();
    const auto snap = store.read_latest(5, 2);
    read_cost = ftmpi::wtime() - t1;
    ok = snap.has_value() && snap->step == 40 && snap->data == data;
    EXPECT_FALSE(store.read_latest(5, 3).has_value());
    EXPECT_EQ(store.writes(), 1);
  });
  rt.run("main", 1);
  EXPECT_TRUE(ok.load());
  // OPL profile: write latency 3.52 s dominates.
  EXPECT_GE(write_cost.load(), 3.52);
  EXPECT_GE(read_cost.load(), 0.35);
  EXPECT_LT(read_cost.load(), 1.0);
}

TEST(CheckpointStore, LatestWriteWins) {
  ftmpi::Runtime rt;
  std::atomic<long> step{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    CheckpointStore store;
    store.write(0, 0, 10, {1.0});
    store.write(0, 0, 20, {2.0});
    const auto snap = store.read_latest(0, 0);
    if (snap) step = snap->step;
  });
  rt.run("main", 1);
  EXPECT_EQ(step.load(), 20);
}

TEST(CheckpointStore, FileBackedRoundTrip) {
  ftmpi::Runtime rt;
  std::atomic<bool> ok{false};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    CheckpointStore store("/tmp/ftr_ckpt_test");
    std::vector<double> data(100);
    for (size_t i = 0; i < data.size(); ++i) data[i] = std::sin(static_cast<double>(i));
    store.write(1, 3, 7, data);
    const auto snap = store.read_latest(1, 3);
    ok = snap.has_value() && snap->step == 7 && snap->data == data;
  });
  rt.run("main", 1);
  EXPECT_TRUE(ok.load());
}

TEST(Replication, PartnersMatchPaperFig1) {
  // Paper: recovery pairs 0<->7, 1<->8, 2<->9, 3<->10; 4 from 1, 5 from 2,
  // 6 from 3 (IDs of Fig. 1).
  const Scheme s{13, 4};
  const auto slots = ftr::comb::build_grid_slots(s, Technique::ResamplingCopying);
  EXPECT_EQ(rc_partner(slots, 0).value(), 7);
  EXPECT_EQ(rc_partner(slots, 7).value(), 0);
  EXPECT_EQ(rc_partner(slots, 3).value(), 10);
  EXPECT_EQ(rc_partner(slots, 10).value(), 3);
  EXPECT_EQ(rc_partner(slots, 4).value(), 1);
  EXPECT_EQ(rc_partner(slots, 5).value(), 2);
  EXPECT_EQ(rc_partner(slots, 6).value(), 3);
}

TEST(Replication, LowerDiagonalIsSubsetOfItsPartner) {
  const Scheme s{8, 4};
  const auto slots = ftr::comb::build_grid_slots(s, Technique::ResamplingCopying);
  for (const auto& slot : slots) {
    if (slot.role != GridRole::LowerDiagonal) continue;
    const auto partner = rc_partner(slots, slot.id);
    ASSERT_TRUE(partner.has_value());
    const Level fine = slots[static_cast<size_t>(*partner)].level;
    EXPECT_TRUE(ftr::grid::is_refinement(slot.level, fine));
  }
}

TEST(Replication, ConstraintRejectsPartnerPairs) {
  const Scheme s{13, 4};
  const auto slots = ftr::comb::build_grid_slots(s, Technique::ResamplingCopying);
  EXPECT_FALSE(rc_loss_allowed(slots, {0, 7}));  // primary + its duplicate
  EXPECT_FALSE(rc_loss_allowed(slots, {1, 4}));  // lower diag + its source
  EXPECT_TRUE(rc_loss_allowed(slots, {0, 1}));
  EXPECT_TRUE(rc_loss_allowed(slots, {4, 5, 6}));
  EXPECT_TRUE(rc_loss_allowed(slots, {7, 8, 9, 10}));
}

TEST(Replication, CopyIsExact) {
  Grid2D g(Level{4, 3});
  g.fill([](double x, double y) { return x * x + y; });
  EXPECT_TRUE(recover_by_copy(g) == g);
}

TEST(Replication, InfeasibleRequestsReturnEmptyInsteadOfAborting) {
  // The planner leans on these being error *returns*, not asserts: RC
  // infeasibility must read as a fallback signal.
  const Scheme s{6, 3};
  const auto slots = ftr::comb::build_grid_slots(s, Technique::ResamplingCopying);
  EXPECT_FALSE(rc_partner(slots, -1).has_value());
  EXPECT_FALSE(rc_partner(slots, static_cast<int>(slots.size())).has_value());

  // Resampling onto a level that is not a coarsening of the source.
  Grid2D fine(Level{5, 4});
  fine.fill([](double x, double y) { return x + y; });
  EXPECT_FALSE(recover_by_resample(fine, Level{6, 4}).has_value());
  EXPECT_FALSE(recover_by_resample(fine, Level{4, 5}).has_value());

  // rc_recover with a partner grid at the wrong level (copy path) and an
  // out-of-range lost id.
  Grid2D wrong(Level{3, 3});
  EXPECT_FALSE(rc_recover(slots, 0, wrong).has_value());
  EXPECT_FALSE(rc_recover(slots, -1, fine).has_value());
}

TEST(Replication, ResampleHitsSharedPointsExactly) {
  Grid2D fine(Level{5, 4});
  fine.fill([](double x, double y) { return std::sin(3 * x + y); });
  const Grid2D coarse = recover_by_resample(fine, Level{4, 4}).value();
  for (int iy = 0; iy < coarse.ny(); ++iy) {
    for (int ix = 0; ix < coarse.nx(); ++ix) {
      EXPECT_DOUBLE_EQ(coarse.at(ix, iy), fine.at(2 * ix, iy));
    }
  }
}

TEST(Replication, ResampledSolverDataDiffersFromNativeCoarseSolve) {
  // The crux of the paper's accuracy result: restricting a fine numerical
  // solution is NOT the same as solving on the coarse grid, so RC's
  // resampling perturbs the combination.
  const ftr::advection::Problem p{1.0, 0.5};
  const double dt = ftr::advection::stable_timestep(6, p, 0.8);
  ftr::advection::SerialSolver fine(Level{6, 5}, p, dt);
  ftr::advection::SerialSolver coarse(Level{5, 5}, p, dt);
  fine.run(32);
  coarse.run(32);
  const Grid2D resampled = recover_by_resample(fine.grid(), Level{5, 5}).value();
  double diff = 0;
  for (int iy = 0; iy < resampled.ny(); ++iy) {
    for (int ix = 0; ix < resampled.nx(); ++ix) {
      diff = std::max(diff, std::abs(resampled.at(ix, iy) - coarse.grid().at(ix, iy)));
    }
  }
  EXPECT_GT(diff, 1e-6);   // genuinely different
  EXPECT_LT(diff, 1e-1);   // but close (both approximate the same PDE)
}

TEST(Alternate, RecoversLostGridNearExactlyForSmoothData) {
  // Fill all grids from one smooth function; the alternate combination then
  // reproduces it up to interpolation error, and the recovered grid must be
  // close to the original.
  const Scheme s{6, 3};
  auto f = [](double x, double y) { return std::sin(6.28318 * x) * std::cos(6.28318 * y); };

  std::map<int, std::pair<Level, const Grid2D*>> survivors;
  std::vector<Grid2D> storage;
  storage.reserve(16);
  const auto slots = ftr::comb::build_grid_slots(s, Technique::AlternateCombination, 2);
  const int lost_id = 1;
  for (const auto& slot : slots) {
    if (slot.id == lost_id) continue;
    Grid2D g(slot.level);
    g.fill(f);
    storage.push_back(std::move(g));
    survivors.emplace(slot.id, std::pair{slot.level, &storage.back()});
  }
  std::map<int, Level> lost{{lost_id, slots[lost_id].level}};

  const auto result = ac_recover(s, 3, survivors, lost);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->coefficients.sum(), 1.0, 1e-12);
  ASSERT_EQ(result->recovered.size(), 1u);
  const Grid2D& rec = result->recovered.at(lost_id);
  const double err = ftr::grid::l1_error(rec, f);
  // Interpolation error of the coarse layers; small for a smooth function.
  EXPECT_LT(err, 0.05);
}

TEST(Alternate, InfeasibleWithoutExtraLayers) {
  // Losing a *middle* diagonal grid pushes a coefficient two layers down,
  // which is unreachable without extra layers.  (A corner diagonal loss, by
  // contrast, is feasible even without them.)
  const Scheme s{6, 3};
  const auto slots = ftr::comb::build_grid_slots(s, Technique::CheckpointRestart);
  const int lost_id = 1;  // middle diagonal grid
  std::map<int, std::pair<Level, const Grid2D*>> survivors;
  std::vector<Grid2D> storage;
  storage.reserve(slots.size());
  for (const auto& slot : slots) {
    if (slot.id == lost_id) continue;
    storage.emplace_back(slot.level);
    survivors.emplace(slot.id, std::pair{slot.level, &storage.back()});
  }
  const auto result = ac_recover(s, /*max_depth=*/1, survivors,
                                 {{lost_id, slots[lost_id].level}});
  EXPECT_FALSE(result.has_value());
}

TEST(Alternate, CornerLossFeasibleEvenWithoutExtraLayers) {
  const Scheme s{6, 3};
  const ftr::comb::CoefficientProblem problem(s, 1);
  const auto corner = s.layer(0).front();
  EXPECT_TRUE(problem.solve({corner}).has_value());
}

TEST(Alternate, CoefficientFlopsScaleWithWindow) {
  const Scheme small{6, 3};
  const Scheme large{13, 6};
  EXPECT_GT(ac_coefficient_flops(large, 3), ac_coefficient_flops(small, 3));
}
