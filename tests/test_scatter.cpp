// Tests for scatter/scatterv, comm_free, error_string, and the predefined
// error handlers of the compat layer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "ftmpi/api.hpp"
#include "ftmpi/mpi_compat.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;

TEST(Scatter, DistributesSlicesInRankOrder) {
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    std::vector<int> all;
    if (w.rank() == 1) {
      for (int r = 0; r < w.size(); ++r) {
        all.push_back(100 + r);
        all.push_back(200 + r);
      }
    }
    int mine[2] = {-1, -1};
    ASSERT_EQ(scatter(all.data(), 2, mine, 1, w), kSuccess);
    if (mine[0] != 100 + w.rank() || mine[1] != 200 + w.rank()) ++bad;
  });
  rt.run("main", 5);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Scatter, VariableSizedParts) {
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    std::vector<std::vector<std::byte>> parts;
    if (w.rank() == 0) {
      for (int r = 0; r < w.size(); ++r) {
        parts.emplace_back(static_cast<size_t>(r + 1), std::byte{static_cast<uint8_t>(r)});
      }
    }
    std::vector<std::byte> mine;
    ASSERT_EQ(scatterv_bytes(parts, &mine, 0, w), kSuccess);
    if (mine.size() != static_cast<size_t>(w.rank() + 1)) ++bad;
    for (std::byte b : mine) {
      if (b != std::byte{static_cast<uint8_t>(w.rank())}) ++bad;
    }
  });
  rt.run("main", 4);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Scatter, DeadMemberYieldsRootError) {
  Runtime rt;
  std::atomic<int> root_code{-1};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 2) abort_self();
    while (!runtime().is_dead(w.group().pids[2])) {}
    std::vector<int> all(static_cast<size_t>(w.size()), 7);
    int mine = 0;
    const int rc = scatter(all.data(), 1, &mine, 0, w);
    if (w.rank() == 0) root_code = rc;
  });
  rt.run("main", 3);
  EXPECT_EQ(root_code.load(), kErrProcFailed);
}

TEST(CommFree, NullsHandle) {
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm dup;
    (void)comm_dup(world(), &dup);
    if (dup.is_null()) ++bad;
    if (comm_free(&dup) != kSuccess) ++bad;
    if (!dup.is_null()) ++bad;
    // World keeps working after freeing the dup.
    if (barrier(world()) != kSuccess) ++bad;
  });
  rt.run("main", 2);
  EXPECT_EQ(bad.load(), 0);
}

TEST(ErrorString, CoversAllCodes) {
  EXPECT_STREQ(error_string(kSuccess), "MPI_SUCCESS");
  EXPECT_NE(std::strstr(error_string(kErrProcFailed), "PROC_FAILED"), nullptr);
  EXPECT_NE(std::strstr(error_string(kErrRevoked), "REVOKED"), nullptr);
  EXPECT_NE(std::strstr(error_string(12345), "unknown"), nullptr);
}

TEST(CompatHandlers, ErrorsAreFatalAbortsOnError) {
  using namespace ftmpi::compat;
  Runtime rt;
  std::atomic<int> after{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    MPI_Comm comm = world();
    (void)MPI_Comm_set_errhandler(comm, MPI_ERRORS_ARE_FATAL);
    if (comm.rank() == 1) ftmpi::abort_self();
    (void)MPI_Barrier(comm);  // error -> fatal handler -> self-abort
    ++after;            // unreachable on survivors
  });
  const int killed = rt.run("main", 3);
  EXPECT_EQ(killed, 3);  // the victim plus both survivors via the handler
  EXPECT_EQ(after.load(), 0);
}

TEST(CompatHandlers, ErrorStringViaCompat) {
  using namespace ftmpi::compat;
  char buf[128];
  int len = 0;
  EXPECT_EQ(MPI_Error_string(MPI_ERR_REVOKED, buf, &len), MPI_SUCCESS);
  EXPECT_GT(len, 0);
  EXPECT_NE(std::strstr(buf, "REVOKED"), nullptr);
}
