// Unit tests for the grid substrate: Grid2D storage/sampling, transfer
// operators, block decomposition, and parallel halo exchange.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "ftmpi/api.hpp"
#include "grid/decomposition.hpp"
#include "grid/grid2d.hpp"
#include "grid/halo.hpp"
#include "grid/sampling.hpp"

using namespace ftr::grid;

TEST(Grid2D, DimensionsAndSpacing) {
  const Grid2D g(Level{3, 5});
  EXPECT_EQ(g.nx(), 9);
  EXPECT_EQ(g.ny(), 33);
  EXPECT_DOUBLE_EQ(g.hx(), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(g.hy(), 1.0 / 32.0);
  EXPECT_EQ(g.size(), 9u * 33u);
}

TEST(Grid2D, FillAndAt) {
  Grid2D g(Level{2, 2});
  g.fill([](double x, double y) { return x + 10.0 * y; });
  EXPECT_DOUBLE_EQ(g.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.at(4, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.at(0, 4), 10.0);
  EXPECT_DOUBLE_EQ(g.at(2, 1), 0.5 + 2.5);
}

TEST(Grid2D, SampleIsExactOnBilinearFunctions) {
  Grid2D g(Level{4, 3});
  g.fill([](double x, double y) { return 2.0 + 3.0 * x - 1.5 * y + 0.5 * x * y; });
  for (double x : {0.0, 0.13, 0.5, 0.77, 1.0}) {
    for (double y : {0.0, 0.21, 0.5, 0.99}) {
      const double want = 2.0 + 3.0 * x - 1.5 * y + 0.5 * x * y;
      EXPECT_NEAR(g.sample(x, y), want, 1e-12) << "x=" << x << " y=" << y;
    }
  }
}

TEST(Grid2D, SampleMatchesNodesExactly) {
  Grid2D g(Level{3, 3});
  g.fill([](double x, double y) { return std::sin(x) * std::cos(y); });
  for (int iy = 0; iy < g.ny(); ++iy) {
    for (int ix = 0; ix < g.nx(); ++ix) {
      EXPECT_NEAR(g.sample(g.x_of(ix), g.y_of(iy)), g.at(ix, iy), 1e-12);
    }
  }
}

TEST(Grid2D, EnforcePeriodicity) {
  Grid2D g(Level{2, 2});
  g.fill([](double x, double y) { return x * y; });
  g.at(0, 1) = 7.0;
  g.enforce_periodicity();
  EXPECT_DOUBLE_EQ(g.at(g.nx() - 1, 1), 7.0);
  EXPECT_DOUBLE_EQ(g.at(2, g.ny() - 1), g.at(2, 0));
}

TEST(Grid2D, ErrorNorms) {
  Grid2D g(Level{3, 3});
  g.fill([](double, double) { return 1.0; });
  const auto ref = [](double, double) { return 0.0; };
  EXPECT_DOUBLE_EQ(l1_error(g, ref), 1.0);
  EXPECT_DOUBLE_EQ(linf_error(g, ref), 1.0);
  EXPECT_DOUBLE_EQ(l2_error(g, ref), 1.0);
}

TEST(Sampling, RestrictInjectTakesFinePoints) {
  Grid2D fine(Level{4, 4});
  fine.fill([](double x, double y) { return std::sin(x + 2 * y); });
  Grid2D coarse(Level{2, 3});
  restrict_inject(fine, coarse);
  for (int iy = 0; iy < coarse.ny(); ++iy) {
    for (int ix = 0; ix < coarse.nx(); ++ix) {
      EXPECT_DOUBLE_EQ(coarse.at(ix, iy), fine.at(ix * 4, iy * 2));
    }
  }
}

TEST(Sampling, InterpolateIsExactFromRefinement) {
  // Interpolating from a refining grid hits shared points exactly, so a
  // restriction followed by interpolation back reproduces the coarse grid.
  Grid2D fine(Level{5, 5});
  fine.fill([](double x, double y) { return std::cos(3 * x) * std::sin(2 * y); });
  Grid2D coarse(Level{3, 4});
  restrict_inject(fine, coarse);
  Grid2D coarse2(Level{3, 4});
  interpolate(fine, coarse2);
  for (int iy = 0; iy < coarse.ny(); ++iy) {
    for (int ix = 0; ix < coarse.nx(); ++ix) {
      EXPECT_NEAR(coarse2.at(ix, iy), coarse.at(ix, iy), 1e-12);
    }
  }
}

TEST(Sampling, AccumulateInterpolated) {
  Grid2D a(Level{3, 3});
  a.fill([](double x, double y) { return x + y; });
  Grid2D dst(Level{2, 2});
  dst.fill([](double, double) { return 1.0; });
  accumulate_interpolated(a, 2.0, dst);
  for (int iy = 0; iy < dst.ny(); ++iy) {
    for (int ix = 0; ix < dst.nx(); ++ix) {
      EXPECT_NEAR(dst.at(ix, iy), 1.0 + 2.0 * (dst.x_of(ix) + dst.y_of(iy)), 1e-12);
    }
  }
}

TEST(Decomposition, NearSquareFactors) {
  EXPECT_EQ(near_square_factors(1), (std::pair{1, 1}));
  EXPECT_EQ(near_square_factors(4), (std::pair{2, 2}));
  EXPECT_EQ(near_square_factors(8), (std::pair{4, 2}));
  EXPECT_EQ(near_square_factors(12), (std::pair{4, 3}));
  EXPECT_EQ(near_square_factors(7), (std::pair{7, 1}));
}

TEST(Decomposition, BlocksTileTheDomainExactly) {
  const Decomposition d(Level{5, 4}, 6);
  std::vector<int> covered(static_cast<size_t>(d.unique_nx() * d.unique_ny()), 0);
  long total = 0;
  for (int r = 0; r < d.nprocs(); ++r) {
    const Block b = d.block(r);
    EXPECT_GT(b.width(), 0);
    EXPECT_GT(b.height(), 0);
    total += b.cells();
    for (int y = b.y0; y < b.y1; ++y) {
      for (int x = b.x0; x < b.x1; ++x) {
        ++covered[static_cast<size_t>(y * d.unique_nx() + x)];
      }
    }
  }
  EXPECT_EQ(total, static_cast<long>(d.unique_nx()) * d.unique_ny());
  for (int c : covered) EXPECT_EQ(c, 1);
}

TEST(Decomposition, PeriodicNeighbors) {
  const Decomposition d(Level{4, 4}, 4, 2);
  // rank 0 at (0,0): west wraps to (3,0) = rank 3, south wraps to (0,1) = 4.
  EXPECT_EQ(d.west(0), 3);
  EXPECT_EQ(d.east(0), 1);
  EXPECT_EQ(d.south(0), 4);
  EXPECT_EQ(d.north(0), 4);
  EXPECT_EQ(d.east(3), 0);
}

TEST(Decomposition, AnisotropicGridFlattensProcessGrid) {
  // A grid with only 2 unique rows cannot host py > 2.
  const Decomposition d(Level{6, 1}, 8);
  EXPECT_LE(d.py(), 2);
  EXPECT_EQ(d.px() * d.py(), 8);
}

TEST(LocalField, LoadStoreRoundTrip) {
  Grid2D g(Level{3, 3});
  g.fill([](double x, double y) { return 5 * x + y; });
  const Decomposition d(Level{3, 3}, 4);
  Grid2D out(Level{3, 3});
  for (int r = 0; r < 4; ++r) {
    LocalField f(d.block(r));
    f.load_from(g);
    f.store_to(out);
  }
  out.enforce_periodicity();
  g.enforce_periodicity();
  EXPECT_TRUE(g == out);
}

TEST(HaloExchange, MatchesPeriodicNeighborsAcrossRanks) {
  ftmpi::Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    ftmpi::Comm& w = ftmpi::world();
    const Level level{4, 4};
    const Decomposition d(level, w.size());
    Grid2D g(level);
    g.fill([](double x, double y) { return 100.0 * x + y; });
    LocalField f(d.block(w.rank()));
    f.load_from(g);
    if (exchange_x(f, d, w) != ftmpi::kSuccess) ++bad;
    if (exchange_y(f, d, w) != ftmpi::kSuccess) ++bad;
    // Halo values must equal the periodic global field.
    const Block& b = f.block();
    const int N = d.unique_nx(), M = d.unique_ny();
    auto global = [&](int gx, int gy) {
      return g.at((gx + N) % N, (gy + M) % M);
    };
    for (int ly = 0; ly < b.height(); ++ly) {
      if (f.at(-1, ly) != global(b.x0 - 1, b.y0 + ly)) ++bad;
      if (f.at(b.width(), ly) != global(b.x1, b.y0 + ly)) ++bad;
    }
    for (int lx = 0; lx < b.width(); ++lx) {
      if (f.at(lx, -1) != global(b.x0 + lx, b.y0 - 1)) ++bad;
      if (f.at(lx, b.height()) != global(b.x0 + lx, b.y1)) ++bad;
    }
  });
  rt.run("main", 8);
  EXPECT_EQ(bad.load(), 0);
}

TEST(HaloExchange, SingleRankWrapsLocally) {
  ftmpi::Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    const Level level{3, 3};
    const Decomposition d(level, 1);
    Grid2D g(level);
    g.fill([](double x, double y) { return x * 7 + y * 3; });
    LocalField f(d.block(0));
    f.load_from(g);
    if (exchange_x(f, d, ftmpi::world()) != ftmpi::kSuccess) ++bad;
    const int N = d.unique_nx();
    for (int ly = 0; ly < f.block().height(); ++ly) {
      if (f.at(-1, ly) != g.at(N - 1, ly)) ++bad;
      if (f.at(N, ly) != g.at(0, ly)) ++bad;
    }
  });
  rt.run("main", 1);
  EXPECT_EQ(bad.load(), 0);
}
