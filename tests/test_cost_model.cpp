// Tests of the virtual-clock cost model: determinism, causality (message
// arrival times), host-dependent latency, disk and spawn charges, and the
// cluster profiles that drive the paper's OPL-vs-Raijin contrast.

#include <gtest/gtest.h>

#include <atomic>

#include "ftmpi/api.hpp"
#include "ftmpi/cost_model.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;

TEST(ClusterProfiles, PaperDiskLatencies) {
  const auto opl = ClusterProfile::opl();
  const auto raijin = ClusterProfile::raijin();
  EXPECT_DOUBLE_EQ(opl.cost.disk_write_latency, 3.52);   // paper Sec. III-B
  EXPECT_DOUBLE_EQ(raijin.cost.disk_write_latency, 0.03);
  EXPECT_EQ(opl.slots_per_host, 12);  // the paper's SLOTS constant
  EXPECT_EQ(ClusterProfile::by_name("RAIJIN").name, "Raijin");
  EXPECT_EQ(ClusterProfile::by_name("unknown").name, "OPL");
}

TEST(CostModel, LatencySelectsByHost) {
  const CostModel cm;
  EXPECT_LT(cm.latency(true), cm.latency(false));
  EXPECT_GT(cm.bandwidth(true), cm.bandwidth(false));
  EXPECT_DOUBLE_EQ(cm.transfer_time(1000, true), 1000.0 / cm.intra_host_bandwidth);
}

TEST(VirtualClock, CrossHostMessageIsSlower) {
  // Two ranks on the same host vs two on different hosts (slots=1).
  auto one_msg_time = [](int slots) {
    Runtime::Options opt;
    opt.slots_per_host = slots;
    Runtime rt(opt);
    std::atomic<double> t{0};
    rt.register_app("main", [&](const std::vector<std::string>&) {
      Comm& w = world();
      double payload = 1.0;
      if (w.rank() == 0) (void)send(&payload, 1, 1, 0, w);
      if (w.rank() == 1) {
        (void)recv(&payload, 1, 0, 0, w);
        t = wtime();
      }
    });
    rt.run("main", 2);
    return t.load();
  };
  const double same_host = one_msg_time(2);
  const double cross_host = one_msg_time(1);
  EXPECT_GT(cross_host, same_host);
}

TEST(VirtualClock, DeterministicAcrossRuns) {
  auto run_once = [] {
    Runtime rt;
    std::atomic<double> t{0};
    rt.register_app("main", [&](const std::vector<std::string>&) {
      Comm& w = world();
      for (int i = 0; i < 10; ++i) {
        double v = i;
        (void)allreduce(&v, &v, 1, ReduceOp::Sum, w);
      }
      (void)barrier(w);
      if (w.rank() == 0) t = wtime();
    });
    rt.run("main", 6);
    return t.load();
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);  // pure causal function of the message pattern
}

TEST(VirtualClock, ArrivalTimeOrdersCausally) {
  // A receiver that was "ahead" in virtual time keeps its clock; one that
  // was behind jumps to the arrival time.
  Runtime rt;
  std::atomic<double> ahead{0}, behind{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    double v = 0;
    if (w.rank() == 0) {
      advance(1.0);  // the sender works for 1s before sending
      (void)send(&v, 1, 1, 0, w);
      (void)send(&v, 1, 2, 0, w);
    } else if (w.rank() == 1) {
      (void)recv(&v, 1, 0, 0, w);  // idle receiver: clock jumps past 1s
      behind = wtime();
    } else {
      advance(5.0);  // busy receiver: clock stays at ~5s
      (void)recv(&v, 1, 0, 0, w);
      ahead = wtime();
    }
  });
  rt.run("main", 3);
  EXPECT_GT(behind.load(), 1.0);
  EXPECT_LT(behind.load(), 1.1);
  EXPECT_GE(ahead.load(), 5.0);
  EXPECT_LT(ahead.load(), 5.1);
}

TEST(VirtualClock, DiskChargesFollowProfile) {
  for (const auto& profile : {ClusterProfile::opl(), ClusterProfile::raijin()}) {
    Runtime::Options opt;
    opt.cost = profile.cost;
    Runtime rt(opt);
    std::atomic<double> t{0};
    rt.register_app("main", [&](const std::vector<std::string>&) {
      charge_disk_write(8000);
      t = wtime();
    });
    rt.run("main", 1);
    EXPECT_GE(t.load(), profile.cost.disk_write_latency) << profile.name;
    EXPECT_LT(t.load(), profile.cost.disk_write_latency + 1e-3) << profile.name;
  }
}

TEST(VirtualClock, SpawnCostGrowsWithCommSize) {
  auto spawn_time = [](int procs) {
    Runtime rt;
    std::atomic<double> t{0};
    rt.register_app("main", [&](const std::vector<std::string>& argv) {
      if (!argv.empty()) return;  // child: exit immediately
      Comm& w = world();
      const double t0 = wtime();
      Comm inter;
      std::vector<SpawnUnit> units{{"main", {"c"}, 1, -1}};
      (void)comm_spawn_multiple(units, 0, w, &inter);
      if (w.rank() == 0) t = wtime() - t0;
    });
    rt.run("main", procs);
    return t.load();
  };
  const double small = spawn_time(4);
  const double large = spawn_time(32);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);  // the Table I trend
}

TEST(VirtualClock, ChargeFlopsUsesFlopsRate) {
  Runtime rt;
  std::atomic<double> t{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    charge_flops(3.0e9);
    t = wtime();
  });
  rt.run("main", 1);
  EXPECT_NEAR(t.load(), 1.0, 1e-9);  // default flops_rate = 3e9
}
