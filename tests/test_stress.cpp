// Property/stress tests: randomized failure patterns against the ULFM
// layer's invariants, traffic statistics, and repeated repair cycles.

#include <gtest/gtest.h>

#include <atomic>
#include <tuple>

#include "common/rng.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;

TEST(Stats, MessageCountersIncrease) {
  Runtime rt;
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    double v = 1.0;
    (void)allreduce(&v, &v, 1, ReduceOp::Sum, w);
    (void)barrier(w);
  });
  rt.run("main", 6);
  const auto s = rt.stats();
  // allreduce (gather up + release + bcast) + barrier: >= 4 messages per
  // non-root rank.
  EXPECT_GE(s.messages, 20);
  EXPECT_GT(s.bytes, 0);
}

TEST(Stats, CrossHostCountedSeparately) {
  Runtime::Options o;
  o.slots_per_host = 2;
  Runtime rt(o);
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    const int v = 0;
    if (w.rank() == 0) {
      (void)send(&v, 1, 1, 0, w);  // same host
      (void)send(&v, 1, 2, 0, w);  // cross host
    } else {
      int r;
      (void)recv(&r, 1, 0, 0, w);
    }
  });
  rt.run("main", 3);
  const auto s = rt.stats();
  EXPECT_EQ(s.messages, 2);
  EXPECT_EQ(s.cross_host, 1);
}

// Randomized shrink/agree invariants: for any failure subset (never rank 0),
// shrink yields exactly the survivors in order, and agree converges on the
// AND of the survivors' flags.
class RandomFailures : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RandomFailures, ShrinkAndAgreeInvariants) {
  const auto [world_size, failures, seed] = GetParam();
  ftr::Xoshiro256 rng(static_cast<uint64_t>(seed));
  std::vector<int> victims;
  while (static_cast<int>(victims.size()) < failures) {
    const int r = 1 + static_cast<int>(rng.bounded(static_cast<uint64_t>(world_size - 1)));
    if (std::find(victims.begin(), victims.end(), r) == victims.end()) victims.push_back(r);
  }
  std::sort(victims.begin(), victims.end());

  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&, victims](const std::vector<std::string>&) {
    Comm& w = world();
    const int r = w.rank();
    if (std::find(victims.begin(), victims.end(), r) != victims.end()) abort_self();
    (void)barrier(w);  // observe failures
    (void)comm_failure_ack(w);

    Comm s;
    if (comm_shrink(w, &s) != kSuccess) ++bad;
    if (s.size() != w.size() - static_cast<int>(victims.size())) ++bad;
    // Survivor order preserved: my shrink rank = my rank minus the number
    // of failed ranks below me.
    int below = 0;
    for (int v : victims) below += v < r ? 1 : 0;
    if (s.rank() != r - below) ++bad;

    int flag = (r % 3 == 0) ? 0 : 1;
    if (comm_agree(w, &flag) != kSuccess) ++bad;
    // Some survivor has rank % 3 == 0 (rank 0 always survives) => AND = 0.
    if (flag != 0) ++bad;
  });
  rt.run("main", world_size);
  EXPECT_EQ(bad.load(), 0) << "world=" << world_size << " failures=" << failures
                           << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomFailures,
    ::testing::Values(std::tuple{6, 1, 1}, std::tuple{6, 2, 2}, std::tuple{9, 3, 3},
                      std::tuple{12, 1, 4}, std::tuple{12, 4, 5}, std::tuple{16, 5, 6},
                      std::tuple{16, 2, 7}, std::tuple{24, 6, 8}));

// Repeated repair cycles: kill -> reconstruct -> verify, several times in
// one run, with respawned processes participating in later episodes.
TEST(Stress, ThreeSequentialRepairEpisodes) {
  Runtime rt;
  std::atomic<int> bad{0};
  constexpr int kWorld = 6;
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    ftr::core::Reconstructor recon({"app", argv});
    Comm w;
    int episode = 0;
    if (!get_parent().is_null()) {
      w = recon.reconstruct({}).comm;
      if (bcast(&episode, 1, 0, w) != kSuccess) ++bad;
    } else {
      w = world();
    }
    for (; episode < 3; ++episode) {
      // The victim of this episode: an original process at rank episode+1.
      const int victim_rank = episode + 1;
      if (w.rank() == victim_rank && get_parent().is_null() &&
          runtime().total_processes() < kWorld + episode + 1) {
        abort_self();
      }
      const auto res = recon.reconstruct(w);
      w = res.comm;
      if (w.size() != kWorld) ++bad;
      int next = episode + 1;
      if (bcast(&next, 1, 0, w) != kSuccess) ++bad;
      if (next != episode + 1) ++bad;
    }
    // Final sanity: a gather across the fully repaired world.
    const int v = w.rank();
    std::vector<int> all(static_cast<size_t>(w.size()));
    if (gather(&v, 1, all.data(), 0, w) != kSuccess) ++bad;
    if (w.rank() == 0) {
      for (int i = 0; i < w.size(); ++i) {
        if (all[static_cast<size_t>(i)] != i) ++bad;
      }
    }
  });
  const int killed = rt.run("app", kWorld);
  EXPECT_EQ(killed, 3);
  EXPECT_EQ(bad.load(), 0);
}

// Collectives on communicators derived by split must be isolated from
// failures in sibling groups until the ranks interact through world.
TEST(Stress, SiblingGroupUnaffectedByFailureElsewhere) {
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    Comm half;
    (void)comm_split(w, w.rank() < 3 ? 0 : 1, w.rank(), &half);
    if (w.rank() == 4) abort_self();
    if (w.rank() < 3) {
      // Group 0 is failure-free; its collectives keep working.
      for (int i = 0; i < 5; ++i) {
        double v = 1;
        if (allreduce(&v, &v, 1, ReduceOp::Sum, half) != kSuccess || v != 3.0) ++bad;
      }
    } else if (w.rank() != 4) {
      // Group 1 observes the failure.
      if (barrier(half) != kErrProcFailed) ++bad;
    }
  });
  rt.run("main", 6);
  EXPECT_EQ(bad.load(), 0);
}
