// Reproduction invariants: the paper's headline experimental claims,
// asserted end-to-end at test scale.  These make the EXPERIMENTS.md shape
// checks CI-enforceable — if a refactor breaks one of the paper's
// qualitative results, a test fails here.

#include <gtest/gtest.h>

#include <cmath>

#include "combination/coefficients.hpp"
#include "core/ft_app.hpp"
#include "core/metrics.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/cost_model.hpp"
#include "ftmpi/runtime.hpp"
#include "recovery/checkpoint.hpp"

using namespace ftr::core;
using ftr::comb::Scheme;
using ftr::comb::Technique;

namespace {

LayoutConfig paper_layout(Technique t) {
  LayoutConfig cfg;
  cfg.scheme = Scheme{7, 4};
  cfg.technique = t;
  cfg.procs_diagonal = 4;   // scaled-down 8/4/2/1
  cfg.procs_lower = 2;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

struct RunResult {
  double error = 0;
  double recovery = 0;
  double app_time = 0;
  double ckpt_writes = 0;
};

RunResult run_app(Technique t, const std::vector<int>& lost,
                  const ftmpi::ClusterProfile& profile, long checkpoints,
                  double cell_rate = 2.0e4) {
  AppConfig cfg;
  cfg.layout = paper_layout(t);
  cfg.timesteps = 48;
  cfg.checkpoints = checkpoints;
  cfg.failures.simulated_lost_grids = lost;

  ftmpi::Runtime::Options opts;
  opts.slots_per_host = profile.slots_per_host;
  opts.cost = profile.cost;
  opts.cost.cell_update_rate = cell_rate;  // paper-like step/IO ratio
  // These invariants reproduce the paper's measured curves, whose recovery
  // costs assume the linear (coordinator) agreement the paper's Open MPI
  // prototype used — the log-depth tree protocols would shift the Fig. 9b
  // crossover.
  opts.tree_protocols = false;
  ftmpi::Runtime rt(opts);
  FtApp app(cfg);
  app.launch(rt);
  RunResult r;
  r.error = rt.get(keys::kErrorL1, std::nan(""));
  r.recovery = rt.get(keys::kRecoveryTime, 0);
  r.app_time = rt.get(keys::kTotalTime, 0);
  r.ckpt_writes = rt.get(keys::kCkptWriteTotal, 0);
  return r;
}

}  // namespace

// Fig. 10: CR error flat at baseline; RC and AC grow; AC more accurate
// than RC *on average over random loss patterns* (the paper's surprising
// accuracy result; it averages 20 repetitions — individual patterns can go
// either way).
TEST(PaperInvariants, Fig10ErrorOrdering) {
  const auto profile = ftmpi::ClusterProfile::opl();
  const RunResult base = run_app(Technique::CheckpointRestart, {}, profile, 2);

  ftr::Xoshiro256 rng(17);
  double rc_sum = 0, ac_sum = 0, cr_max_dev = 0;
  int samples = 0;
  for (int rep = 0; rep < 8; ++rep) {
    // One random feasible loss pattern of 2 grids, shared by RC and AC
    // where the grid sets overlap.
    const Layout rc_layout = build_layout(paper_layout(Technique::ResamplingCopying));
    FailurePlan plan = random_simulated_losses(rc_layout, 2, rng);
    // Restrict to combination-layer grids so the same pattern is valid for
    // AC (duplicates only exist in the RC arrangement), and ensure GCP
    // feasibility.
    std::vector<int> lost;
    for (int id : plan.simulated_lost_grids) {
      if (rc_layout.slots[static_cast<size_t>(id)].role != ftr::comb::GridRole::Duplicate) {
        lost.push_back(id);
      }
    }
    if (lost.empty()) continue;
    std::vector<ftr::grid::Level> levels;
    for (int id : lost) levels.push_back(rc_layout.slots[static_cast<size_t>(id)].level);
    const ftr::comb::CoefficientProblem gcp(paper_layout(Technique::AlternateCombination).scheme, 3);
    if (!gcp.solve(levels).has_value()) continue;

    const RunResult cr = run_app(Technique::CheckpointRestart, lost, profile, 2);
    const RunResult rc = run_app(Technique::ResamplingCopying, lost, profile, 2);
    const RunResult ac = run_app(Technique::AlternateCombination, lost, profile, 2);
    cr_max_dev = std::max(cr_max_dev, std::abs(cr.error - base.error));
    rc_sum += rc.error;
    ac_sum += ac.error;
    ++samples;
  }
  ASSERT_GE(samples, 4);
  EXPECT_LT(cr_max_dev, 1e-12);              // CR exact on every pattern
  EXPECT_GT(rc_sum / samples, base.error);   // approximate techniques degrade
  EXPECT_GT(ac_sum / samples, base.error);
  EXPECT_LT(ac_sum, rc_sum);                 // AC beats RC on average
}

// Fig. 9a: raw recovery overhead CR >> RC > AC on a typical-disk cluster.
TEST(PaperInvariants, Fig9aRawOverheadOrdering) {
  const auto profile = ftmpi::ClusterProfile::opl();
  const RunResult cr = run_app(Technique::CheckpointRestart, {1}, profile, 2);
  const RunResult rc = run_app(Technique::ResamplingCopying, {1}, profile, 2);
  const RunResult ac = run_app(Technique::AlternateCombination, {1}, profile, 2);
  const double cr_raw = cr.ckpt_writes + cr.recovery;
  EXPECT_GT(cr_raw, 10.0 * rc.recovery);
  EXPECT_GT(rc.recovery, ac.recovery);
}

// Fig. 9b: normalized overhead orderings on both cluster profiles,
// including the Raijin crossover where CR wins.
TEST(PaperInvariants, Fig9bCrossover) {
  const int pc = build_layout(paper_layout(Technique::CheckpointRestart)).total_procs;
  const int pr = build_layout(paper_layout(Technique::ResamplingCopying)).total_procs;
  const int pa = build_layout(paper_layout(Technique::AlternateCombination)).total_procs;

  for (const bool raijin : {false, true}) {
    const auto profile =
        raijin ? ftmpi::ClusterProfile::raijin() : ftmpi::ClusterProfile::opl();
    // Young's interval from a probe run (see EXPERIMENTS.md on Eq. 2).
    const RunResult probe = run_app(Technique::CheckpointRestart, {}, profile, 1);
    const ftr::rec::CheckpointPolicy young{ftr::rec::CheckpointPolicy::Kind::Young};
    const long c = young.count(probe.app_time, profile.cost.disk_write_latency, 12);

    const RunResult cr = run_app(Technique::CheckpointRestart, {1}, profile, c);
    const RunResult rc = run_app(Technique::ResamplingCopying, {1}, profile, c);
    const RunResult ac = run_app(Technique::AlternateCombination, {1}, profile, c);

    const double crn = cr.ckpt_writes + cr.recovery;
    const double rcn = ProcessTimeOverhead::rc(rc.recovery, rc.app_time, pr, pc);
    const double acn = ProcessTimeOverhead::ac(ac.recovery, ac.app_time, pa, pc);

    if (raijin) {
      EXPECT_LT(crn, acn) << "Raijin: CR must win";   // the crossover
      EXPECT_LT(acn, rcn) << "Raijin: AC < RC";
    } else {
      EXPECT_GT(crn, rcn) << "OPL: CR worst";
      EXPECT_GT(rcn, acn) << "OPL: RC above AC";
    }
  }
}

// Fig. 8 / Table I: repair cost grows with the communicator size, and two
// failures cost more than one.
TEST(PaperInvariants, RepairCostGrowsWithCoresAndFailures) {
  auto reconstruct_time = [](int procs, int failures) {
    ftmpi::Runtime rt;
    std::atomic<double> t{0};
    rt.register_app("app", [&](const std::vector<std::string>& argv) {
      Reconstructor recon({"app", argv});
      if (!ftmpi::get_parent().is_null()) {
        recon.reconstruct({});
        return;
      }
      ftmpi::Comm w = ftmpi::world();
      if (w.rank() >= procs - failures) ftmpi::abort_self();
      const auto res = recon.reconstruct(w);
      if (w.rank() == 0) t = res.timings.total;
    });
    rt.run("app", procs);
    return t.load();
  };
  const double small1 = reconstruct_time(12, 1);
  const double large1 = reconstruct_time(48, 1);
  const double large2 = reconstruct_time(48, 2);
  EXPECT_GT(large1, small1);
  EXPECT_GT(large2, large1);
}

// Fig. 11: overall cost ordering CR > RC >= AC without failures.
TEST(PaperInvariants, Fig11OverallCostOrdering) {
  const auto profile = ftmpi::ClusterProfile::opl();
  const RunResult cr = run_app(Technique::CheckpointRestart, {}, profile, 2);
  const RunResult rc = run_app(Technique::ResamplingCopying, {}, profile, 2);
  const RunResult ac = run_app(Technique::AlternateCombination, {}, profile, 2);
  EXPECT_GT(cr.app_time, rc.app_time);
  EXPECT_GE(rc.app_time * 1.05, ac.app_time);  // AC <= RC (small tolerance)
}
