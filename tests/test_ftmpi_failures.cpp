// Failure-semantics tests of the ftmpi runtime: fail-stop kill, failure
// detection by point-to-point and collectives, revoke, shrink, agree,
// failure acknowledgement, spawn and intercommunicator merge — the ULFM
// building blocks of the paper's recovery protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;

namespace {

Runtime::Options small_opts() {
  Runtime::Options opt;
  opt.slots_per_host = 4;
  opt.real_time_limit_sec = 60.0;
  return opt;
}

}  // namespace

TEST(FtmpiFailures, SelfKillUnwindsAndCounts) {
  Runtime rt(small_opts());
  std::atomic<int> after_abort{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    if (world().rank() == 1) {
      abort_self();
      ++after_abort;  // must be unreachable
    }
  });
  const int killed = rt.run("main", 3);
  EXPECT_EQ(killed, 1);
  EXPECT_EQ(after_abort.load(), 0);
}

TEST(FtmpiFailures, RecvFromDeadPeerFails) {
  Runtime rt(small_opts());
  std::atomic<int> code{-1};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 1) abort_self();
    if (w.rank() == 0) {
      int v = 0;
      code = recv(&v, 1, 1, 0, w);
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(code.load(), kErrProcFailed);
}

TEST(FtmpiFailures, SendToDeadPeerFails) {
  Runtime rt(small_opts());
  std::atomic<int> code{-1};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 1) abort_self();
    if (w.rank() == 0) {
      // Wait until the failure is visible, then send.
      while (!runtime().is_dead(w.group().pids[1])) {}
      const int v = 1;
      code = send(&v, 1, 1, 0, w);
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(code.load(), kErrProcFailed);
}

TEST(FtmpiFailures, MessageSentBeforeDeathIsDelivered) {
  Runtime rt(small_opts());
  std::atomic<int> got{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 1) {
      const int v = 7;
      (void)send(&v, 1, 0, 0, w);
      abort_self();
    }
    if (w.rank() == 0) {
      int v = 0;
      if (recv(&v, 1, 1, 0, w) == kSuccess) got = v;
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(got.load(), 7);
}

TEST(FtmpiFailures, BarrierDetectsFailureAtAllSurvivors) {
  // The paper's detection step (Fig. 3 line 13) needs the barrier to report
  // the failure at every survivor, which our root-aggregated barrier does.
  Runtime rt(small_opts());
  std::atomic<int> errors{0};
  std::atomic<int> successes{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 2) abort_self();
    const int rc = barrier(w);
    (rc == kErrProcFailed ? errors : successes)++;
  });
  rt.run("main", 5);
  EXPECT_EQ(errors.load(), 4);
  EXPECT_EQ(successes.load(), 0);
}

TEST(FtmpiFailures, ErrhandlerInvokedOnError) {
  Runtime rt(small_opts());
  std::atomic<int> handler_calls{0};
  std::atomic<int> handler_code{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    (void)comm_set_errhandler(w, [&](Comm&, int& code) {
      ++handler_calls;
      handler_code = code;
    });
    if (w.rank() == 1) abort_self();
    (void)barrier(w);
  });
  rt.run("main", 3);
  EXPECT_EQ(handler_calls.load(), 2);
  EXPECT_EQ(handler_code.load(), kErrProcFailed);
}

TEST(FtmpiFailures, FailureAckAndGetAcked) {
  Runtime rt(small_opts());
  std::atomic<int> acked_size{-1};
  std::atomic<int> acked_rank{-1};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 2) abort_self();
    if (w.rank() == 0) {
      (void)barrier(w);  // returns an error; failure now known
      (void)comm_failure_ack(w);
      Group failed;
      (void)comm_failure_get_acked(w, &failed);
      acked_size = failed.size();
      if (failed.size() == 1) acked_rank = w.group().rank_of(failed.pids[0]);
    } else {
      (void)barrier(w);
    }
  });
  rt.run("main", 4);
  EXPECT_EQ(acked_size.load(), 1);
  EXPECT_EQ(acked_rank.load(), 2);
}

TEST(FtmpiFailures, RevokeInterruptsPendingRecv) {
  Runtime rt(small_opts());
  std::atomic<int> code{-1};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 0) {
      int v = 0;
      code = recv(&v, 1, 1, 0, w);  // rank 1 never sends; revoke must wake us
    } else {
      advance(0.001);
      (void)comm_revoke(w);
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(code.load(), kErrRevoked);
}

TEST(FtmpiFailures, OpsOnRevokedCommFail) {
#ifdef FTR_PSAN
  // This test deliberately keeps using the communicator after its own
  // revoke — the exact FTL006 violation the protocol sanitizer aborts on
  // (pinned by PsanDeath.UseAfterObservedRevokeAborts).  Here we only want
  // the error codes of the plain runtime.
  GTEST_SKIP() << "intentional use-after-revoke; aborts by design under "
                  "FTR_SANITIZE=protocol";
#endif
  Runtime rt(small_opts());
  std::atomic<int> send_code{-1}, barrier_code{-1};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    (void)comm_revoke(w);
    const int v = 0;
    send_code = send(&v, 1, (w.rank() + 1) % w.size(), 0, w);
    barrier_code = barrier(w);
  });
  rt.run("main", 2);
  EXPECT_EQ(send_code.load(), kErrRevoked);
  EXPECT_EQ(barrier_code.load(), kErrRevoked);
}

TEST(FtmpiFailures, ShrinkRemovesDeadPreservingOrder) {
  Runtime rt(small_opts());
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 1 || w.rank() == 3) abort_self();
    (void)barrier(w);  // observe the failure
    Comm s;
    ASSERT_EQ(comm_shrink(w, &s), kSuccess);
    if (s.size() != 3) ++bad;
    // world ranks 0,2,4 must become shrink ranks 0,1,2
    const int expect = w.rank() == 0 ? 0 : (w.rank() == 2 ? 1 : 2);
    if (s.rank() != expect) ++bad;
    // The shrunken communicator must be fully operational.
    int token = s.rank() == 0 ? 5 : 0;
    if (bcast(&token, 1, 0, s) != kSuccess || token != 5) ++bad;
  });
  rt.run("main", 5);
  EXPECT_EQ(bad.load(), 0);
}

TEST(FtmpiFailures, ShrinkWorksOnRevokedComm) {
  Runtime rt(small_opts());
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 2) abort_self();
    (void)barrier(w);
    (void)comm_revoke(w);
    Comm s;
    if (comm_shrink(w, &s) != kSuccess) ++bad;
    if (s.size() != 3) ++bad;
    if (s.is_revoked()) ++bad;  // the shrunken comm is fresh
  });
  rt.run("main", 4);
  EXPECT_EQ(bad.load(), 0);
}

TEST(FtmpiFailures, AgreeReturnsAndOfFlags) {
  Runtime rt(small_opts());
  std::atomic<int> flag_at_0{-1};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    int flag = w.rank() == 3 ? 0 : 1;
    ASSERT_EQ(comm_agree(w, &flag), kSuccess);
    if (w.rank() == 0) flag_at_0 = flag;
  });
  rt.run("main", 5);
  EXPECT_EQ(flag_at_0.load(), 0);
}

TEST(FtmpiFailures, AgreeReportsUnackedFailuresUniformly) {
  Runtime rt(small_opts());
  std::atomic<int> errors{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 1) abort_self();
    (void)barrier(w);  // failure becomes known; not acked yet
    int flag = 1;
    if (comm_agree(w, &flag) == kErrProcFailed) ++errors;
  });
  rt.run("main", 4);
  EXPECT_EQ(errors.load(), 3);
}

TEST(FtmpiFailures, AgreeSucceedsAfterAck) {
  Runtime rt(small_opts());
  std::atomic<int> codes_ok{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 1) abort_self();
    (void)barrier(w);
    (void)comm_failure_ack(w);
    int flag = 1;
    if (comm_agree(w, &flag) == kSuccess && flag == 1) ++codes_ok;
  });
  rt.run("main", 4);
  EXPECT_EQ(codes_ok.load(), 3);
}

TEST(FtmpiFailures, SpawnCreatesChildrenWithParentIntercomm) {
  Runtime rt(small_opts());
  std::atomic<int> child_world_size{-1};
  std::atomic<int> child_remote_size{-1};
  std::atomic<int> parent_remote_size{-1};
  rt.register_app("main", [&](const std::vector<std::string>& argv) {
    Comm& w = world();
    if (!argv.empty() && argv[0] == "child") {
      child_world_size = w.size();
      child_remote_size = get_parent().remote_size();
      return;
    }
    std::vector<SpawnUnit> units(1);
    units[0] = {"main", {"child"}, 2, -1};
    Comm inter;
    ASSERT_EQ(comm_spawn_multiple(units, 0, w, &inter), kSuccess);
    if (w.rank() == 0) parent_remote_size = inter.remote_size();
  });
  rt.run("main", 3);
  EXPECT_EQ(child_world_size.load(), 2);   // spawned group's own world
  EXPECT_EQ(child_remote_size.load(), 3);  // the parents
  EXPECT_EQ(parent_remote_size.load(), 2);
}

TEST(FtmpiFailures, SpawnPlacesOnRequestedHost) {
  Runtime rt(small_opts());  // 4 slots/host
  std::atomic<int> child_host{-1};
  rt.register_app("main", [&](const std::vector<std::string>& argv) {
    Comm& w = world();
    if (!argv.empty() && argv[0] == "child") {
      child_host = runtime().host_of(self_pid());
      return;
    }
    std::vector<SpawnUnit> units(1);
    units[0] = {"main", {"child"}, 1, 2};  // host 2 has free slots
    Comm inter;
    ASSERT_EQ(comm_spawn_multiple(units, 0, w, &inter), kSuccess);
  });
  rt.run("main", 4);  // occupies host 0 fully
  EXPECT_EQ(child_host.load(), 2);
}

TEST(FtmpiFailures, KillFreesSlotForRespawn) {
  Runtime rt(small_opts());  // 4 slots/host
  std::atomic<int> child_host{-1};
  rt.register_app("main", [&](const std::vector<std::string>& argv) {
    Comm& w = world();
    if (!argv.empty() && argv[0] == "child") {
      child_host = runtime().host_of(self_pid());
      return;
    }
    if (w.rank() == 1) abort_self();  // frees a slot on host 0
    (void)barrier(w);
    Comm s;
    ASSERT_EQ(comm_shrink(w, &s), kSuccess);
    std::vector<SpawnUnit> units(1);
    units[0] = {"main", {"child"}, 1, 0};  // respawn on host 0
    Comm inter;
    ASSERT_EQ(comm_spawn_multiple(units, 0, s, &inter), kSuccess);
  });
  rt.run("main", 4);  // world fills host 0 exactly
  EXPECT_EQ(child_host.load(), 0);
}

TEST(FtmpiFailures, IntercommMergeOrdersLowSideFirst) {
  Runtime rt(small_opts());
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>& argv) {
    Comm& w = world();
    if (!argv.empty() && argv[0] == "child") {
      Comm merged;
      ASSERT_EQ(intercomm_merge(get_parent(), /*high=*/true, &merged), kSuccess);
      // Children land after the 3 parents.
      if (merged.size() != 5) ++bad;
      if (merged.rank() != 3 + w.rank()) ++bad;
      int token = 0;
      if (bcast(&token, 1, 0, merged) != kSuccess || token != 17) ++bad;
      return;
    }
    std::vector<SpawnUnit> units(1);
    units[0] = {"main", {"child"}, 2, -1};
    Comm inter;
    ASSERT_EQ(comm_spawn_multiple(units, 0, w, &inter), kSuccess);
    Comm merged;
    ASSERT_EQ(intercomm_merge(inter, /*high=*/false, &merged), kSuccess);
    if (merged.rank() != w.rank()) ++bad;
    int token = merged.rank() == 0 ? 17 : 0;
    if (bcast(&token, 1, 0, merged) != kSuccess || token != 17) ++bad;
  });
  rt.run("main", 3);
  EXPECT_EQ(bad.load(), 0);
}

TEST(FtmpiFailures, P2pBetweenParentAndChildOverIntercomm) {
  Runtime rt(small_opts());
  std::atomic<int> got{0};
  rt.register_app("main", [&](const std::vector<std::string>& argv) {
    Comm& w = world();
    if (!argv.empty() && argv[0] == "child") {
      int v = 0;
      // Source rank names the sender in the remote (parent) group.
      ASSERT_EQ(recv(&v, 1, 1, 9, get_parent()), kSuccess);
      got = v;
      return;
    }
    std::vector<SpawnUnit> units(1);
    units[0] = {"main", {"child"}, 1, -1};
    Comm inter;
    ASSERT_EQ(comm_spawn_multiple(units, 0, w, &inter), kSuccess);
    if (w.rank() == 1) {
      const int v = 123;
      ASSERT_EQ(send(&v, 1, 0, 9, inter), kSuccess);
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(got.load(), 123);
}

TEST(FtmpiFailures, MultipleFailuresShrinkCostsMoreVirtualTime) {
  // The paper's Table I observation: repairing after two failures is
  // disproportionately slower.  Our cost model reproduces the trend.
  auto shrink_time = [](int kills) {
    Runtime rt(small_opts());
    std::atomic<double> t{0.0};
    rt.register_app("main", [&, kills](const std::vector<std::string>&) {
      Comm& w = world();
      if (w.rank() >= 1 && w.rank() <= kills) abort_self();
      (void)barrier(w);
      const double t0 = wtime();
      Comm s;
      (void)comm_shrink(w, &s);
      if (w.rank() == 0) t = wtime() - t0;
    });
    rt.run("main", 8);
    return t.load();
  };
  const double t1 = shrink_time(1);
  const double t2 = shrink_time(2);
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(t2, t1);
}

TEST(FtmpiFailures, ExternalKillFromHarnessThread) {
  Runtime rt(small_opts());
  std::atomic<int> code{-1};
  std::atomic<ProcId> victim{kNullProc};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 1) {
      victim = self_pid();
      // Spin in recv; the harness kills us while blocked.
      int v = 0;
      (void)recv(&v, 1, 0, 0, w);  // never satisfied
      ADD_FAILURE() << "dead process kept running";
    } else {
      while (victim.load() == kNullProc) {}
      runtime().kill(victim.load());
      int v = 0;
      code = recv(&v, 1, 1, 0, w);
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(code.load(), kErrProcFailed);
}
