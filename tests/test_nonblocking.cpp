// Tests of the nonblocking point-to-point layer: isend/irecv/wait/waitall,
// test, probe/iprobe, sendrecv, and their failure behaviour.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ftmpi/api.hpp"
#include "ftmpi/request.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;

TEST(Nonblocking, IsendIrecvWaitRoundTrip) {
  Runtime rt;
  std::atomic<int> got{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 0) {
      const int v = 55;
      Request req;
      ASSERT_EQ(isend(&v, 1, 1, 3, w, &req), kSuccess);
      ASSERT_EQ(wait(&req), kSuccess);
    } else {
      int v = 0;
      Request req;
      ASSERT_EQ(irecv(&v, 1, 0, 3, w, &req), kSuccess);
      Status st;
      ASSERT_EQ(wait(&req, &st), kSuccess);
      EXPECT_TRUE(req.is_null());
      EXPECT_EQ(st.source, 0);
      got = v;
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(got.load(), 55);
}

TEST(Nonblocking, WaitallCompletesPostedExchange) {
  // The MPI-idiomatic halo pattern: post all receives, send, waitall.
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    const int n = w.size();
    const int left = (w.rank() + n - 1) % n;
    const int right = (w.rank() + 1) % n;
    int from_left = -1, from_right = -1;
    Request reqs[2];
    ASSERT_EQ(irecv(&from_left, 1, left, 1, w, &reqs[0]), kSuccess);
    ASSERT_EQ(irecv(&from_right, 1, right, 2, w, &reqs[1]), kSuccess);
    const int me = w.rank();
    ASSERT_EQ(send(&me, 1, right, 1, w), kSuccess);  // to right = its "left" msg
    ASSERT_EQ(send(&me, 1, left, 2, w), kSuccess);
    ASSERT_EQ(waitall(reqs, 2), kSuccess);
    if (from_left != left || from_right != right) ++bad;
  });
  rt.run("main", 5);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Nonblocking, TestPollsUntilMessageArrives) {
  Runtime rt;
  std::atomic<int> polls{0};
  std::atomic<int> got{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 0) {
      int v = 0;
      Request req;
      ASSERT_EQ(irecv(&v, 1, 1, 0, w, &req), kSuccess);
      int flag = 0;
      // First poll very likely incomplete (rank 1 waits for our token).
      (void)test(&req, &flag);
      const int token = 1;
      (void)send(&token, 1, 1, 9, w);
      while (!flag) {
        ++polls;
        ASSERT_EQ(test(&req, &flag), kSuccess);
      }
      got = v;
    } else {
      int token = 0;
      (void)recv(&token, 1, 0, 9, w);
      const int v = 88;
      (void)send(&v, 1, 0, 0, w);
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(got.load(), 88);
  EXPECT_GE(polls.load(), 1);
}

TEST(Nonblocking, IprobeReportsSizeWithoutConsuming) {
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 0) {
      const double v[3] = {1, 2, 3};
      (void)send(v, 3, 1, 5, w);
    } else {
      Status st;
      ASSERT_EQ(probe(0, 5, w, &st), kSuccess);
      if (st.count != 3 * static_cast<int>(sizeof(double))) ++bad;
      int flag = 0;
      ASSERT_EQ(iprobe(0, 5, w, &flag, &st), kSuccess);
      if (!flag) ++bad;  // probe must not consume
      double buf[3];
      ASSERT_EQ(recv(buf, 3, 0, 5, w), kSuccess);
      if (buf[2] != 3.0) ++bad;
      // After consuming: either nothing pending, or — if the sender has
      // already exited — the probe reports the unreachable peer.
      const int rc = iprobe(0, 5, w, &flag, &st);
      if (rc == kSuccess && flag) ++bad;
      if (rc != kSuccess && rc != kErrProcFailed) ++bad;
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Nonblocking, IprobeReportsDeadNamedPeer) {
  Runtime rt;
  std::atomic<int> code{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 1) abort_self();
    while (!runtime().is_dead(w.group().pids[1])) {}
    int flag = 0;
    code = iprobe(1, 0, w, &flag, nullptr);
  });
  rt.run("main", 2);
  EXPECT_EQ(code.load(), kErrProcFailed);
}

TEST(Nonblocking, WaitOnRecvFromDeadPeerFails) {
  Runtime rt;
  std::atomic<int> code{-1};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 1) abort_self();
    int v = 0;
    Request req;
    (void)irecv(&v, 1, 1, 0, w, &req);
    code = wait(&req);
  });
  rt.run("main", 2);
  EXPECT_EQ(code.load(), kErrProcFailed);
}

TEST(Nonblocking, SendrecvExchangesPairwise) {
  Runtime rt;
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    const int partner = 1 - w.rank();
    const int mine = w.rank() * 10;
    int theirs = -1;
    ASSERT_EQ(sendrecv(&mine, 1, partner, 7, &theirs, 1, partner, 7, w), kSuccess);
    if (theirs != partner * 10) ++bad;
  });
  rt.run("main", 2);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Nonblocking, ProbeWakesOnLateMessage) {
  Runtime rt;
  std::atomic<int> src{-1};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 0) {
      Status st;
      ASSERT_EQ(probe(kAnySource, kAnyTag, w, &st), kSuccess);
      src = st.source;
      int v;
      (void)recv(&v, 1, st.source, st.tag, w);
    } else {
      advance(0.01);
      const int v = 1;
      (void)send(&v, 1, 0, 2, w);
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(src.load(), 1);
}
