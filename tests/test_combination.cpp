// Tests for the sparse grid combination machinery: index sets, classic
// coefficients, the general coefficient problem (GCP), and combined-solution
// evaluation.  Includes parameterized property sweeps over (n, l) and over
// loss patterns.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "advection/serial_solver.hpp"
#include "combination/coefficients.hpp"
#include "combination/combine.hpp"
#include "combination/index_set.hpp"

using namespace ftr::comb;
using ftr::grid::Grid2D;
using ftr::grid::Level;

TEST(Scheme, PaperGeometryN13L4) {
  // Fig. 1: n = 13, l = 4 -> 4 diagonal grids, 3 lower-diagonal grids,
  // extra layers of 2 and 1.
  const Scheme s{13, 4};
  EXPECT_EQ(s.top_sum(), 23);
  EXPECT_EQ(s.min_level(), 10);
  EXPECT_EQ(s.layer_size(0), 4);
  EXPECT_EQ(s.layer_size(1), 3);
  EXPECT_EQ(s.layer_size(2), 2);
  EXPECT_EQ(s.layer_size(3), 1);
  const auto diag = s.layer(0);
  EXPECT_EQ(diag[0], (Level{10, 13}));
  EXPECT_EQ(diag[3], (Level{13, 10}));
  // RC's recovery map requires lower grid k to sit below diagonal k+1:
  // lower[k] = (i, j)  <=>  diag[k+1] = (i+1, j).
  const auto lower = s.layer(1);
  for (size_t k = 0; k < lower.size(); ++k) {
    EXPECT_EQ(lower[k].x + 1, diag[k + 1].x);
    EXPECT_EQ(lower[k].y, diag[k + 1].y);
  }
}

TEST(Scheme, CombinationLevelsMatchEq1) {
  const Scheme s{8, 4};
  const auto levels = s.combination_levels();
  ASSERT_EQ(levels.size(), 7u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(levels[i].sum(), s.top_sum());
  for (size_t i = 4; i < 7; ++i) EXPECT_EQ(levels[i].sum(), s.top_sum() - 1);
}

TEST(GridSlots, CheckpointRestartHasSevenGrids) {
  const Scheme s{8, 4};
  const auto slots = build_grid_slots(s, Technique::CheckpointRestart);
  EXPECT_EQ(slots.size(), 7u);
}

TEST(GridSlots, ResamplingCopyingDuplicatesDiagonals) {
  const Scheme s{8, 4};
  const auto slots = build_grid_slots(s, Technique::ResamplingCopying);
  ASSERT_EQ(slots.size(), 11u);  // paper's grids 0..10
  for (int d = 7; d <= 10; ++d) {
    EXPECT_EQ(slots[static_cast<size_t>(d)].role, GridRole::Duplicate);
    EXPECT_EQ(slots[static_cast<size_t>(d)].duplicate_of, d - 7);
    EXPECT_EQ(slots[static_cast<size_t>(d)].level, slots[static_cast<size_t>(d - 7)].level);
  }
}

TEST(GridSlots, AlternateCombinationAddsExtraLayers) {
  const Scheme s{8, 4};
  const auto slots = build_grid_slots(s, Technique::AlternateCombination, 2);
  ASSERT_EQ(slots.size(), 10u);  // 4 + 3 + 2 + 1 (paper's grids 0..6, 11..13)
  EXPECT_EQ(slots[7].role, GridRole::ExtraLayer);
  EXPECT_EQ(slots[7].depth, 2);
  EXPECT_EQ(slots[9].depth, 3);
}

TEST(Coefficients, ClassicValues) {
  const Scheme s{8, 4};
  for (const Level& k : s.layer(0)) EXPECT_DOUBLE_EQ(classic_coefficient(s, k), 1.0);
  for (const Level& k : s.layer(1)) EXPECT_DOUBLE_EQ(classic_coefficient(s, k), -1.0);
  for (const Level& k : s.layer(2)) EXPECT_DOUBLE_EQ(classic_coefficient(s, k), 0.0);
}

TEST(Gcp, NoLossReproducesClassicCoefficients) {
  const Scheme s{9, 5};
  const CoefficientProblem problem(s, 3);
  const auto set = problem.solve({});
  ASSERT_TRUE(set.has_value());
  for (size_t i = 0; i < set->levels.size(); ++i) {
    EXPECT_DOUBLE_EQ(set->coeffs[i], classic_coefficient(s, set->levels[i]))
        << "level (" << set->levels[i].x << "," << set->levels[i].y << ")";
  }
  EXPECT_NEAR(set->sum(), 1.0, 1e-12);
}

TEST(Gcp, SingleDiagonalLossExample) {
  // Worked example from DESIGN.md: n = 13, l = 4, lose (11, 12).
  const Scheme s{13, 4};
  const CoefficientProblem problem(s, 3);
  const auto set = problem.solve({Level{11, 12}});
  ASSERT_TRUE(set.has_value());
  EXPECT_DOUBLE_EQ(set->coefficient_of(Level{10, 13}), 1.0);
  EXPECT_DOUBLE_EQ(set->coefficient_of(Level{12, 11}), 1.0);
  EXPECT_DOUBLE_EQ(set->coefficient_of(Level{13, 10}), 1.0);
  EXPECT_DOUBLE_EQ(set->coefficient_of(Level{11, 12}), 0.0);  // lost
  EXPECT_DOUBLE_EQ(set->coefficient_of(Level{10, 12}), 0.0);
  EXPECT_DOUBLE_EQ(set->coefficient_of(Level{11, 11}), 0.0);
  EXPECT_DOUBLE_EQ(set->coefficient_of(Level{12, 10}), -1.0);
  EXPECT_DOUBLE_EQ(set->coefficient_of(Level{10, 11}), -1.0);  // extra layer activated
  EXPECT_DOUBLE_EQ(set->coefficient_of(Level{11, 10}), 0.0);
  EXPECT_NEAR(set->sum(), 1.0, 1e-12);
}

TEST(Gcp, LossOutsideWindowIsInfeasible) {
  // Losing an extra-layer grid can push coefficients below the window.
  const Scheme s{8, 4};
  const CoefficientProblem problem(s, 1);  // no extra layers available
  const auto set = problem.solve({s.layer(0)[1]});
  EXPECT_FALSE(set.has_value());
}

// Property sweep: every single and double loss among the combination grids
// must be feasible with two extra layers, sum to 1, and zero out the upset
// of each lost grid.
class GcpLossSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GcpLossSweep, SingleAndDoubleLossesAreFeasible) {
  const auto [n, l] = GetParam();
  const Scheme s{n, l};
  const CoefficientProblem problem(s, 3);
  const auto grids = s.combination_levels();
  for (size_t a = 0; a < grids.size(); ++a) {
    const auto single = problem.solve({grids[a]});
    ASSERT_TRUE(single.has_value()) << "single loss " << a;
    EXPECT_NEAR(single->sum(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(single->coefficient_of(grids[a]), 0.0);
    for (size_t b = a + 1; b < grids.size(); ++b) {
      const auto dbl = problem.solve({grids[a], grids[b]});
      ASSERT_TRUE(dbl.has_value()) << "double loss " << a << "," << b;
      EXPECT_NEAR(dbl->sum(), 1.0, 1e-12);
      EXPECT_DOUBLE_EQ(dbl->coefficient_of(grids[a]), 0.0);
      EXPECT_DOUBLE_EQ(dbl->coefficient_of(grids[b]), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, GcpLossSweep,
                         ::testing::Values(std::tuple{8, 4}, std::tuple{9, 4},
                                           std::tuple{10, 5}, std::tuple{13, 4},
                                           std::tuple{12, 6}));

// Hierarchical-coverage invariant: for every index w in the window, the sum
// of coefficients over {k >= w} equals 1 if w is in the reduced downset and
// 0 if w sits in a removed upset.
TEST(Gcp, CoverageInvariantUnderLosses) {
  const Scheme s{10, 5};
  const CoefficientProblem problem(s, 3);
  const auto grids = s.combination_levels();
  const std::vector<Level> lost{grids[1], grids[5]};
  const auto set = problem.solve(lost);
  ASSERT_TRUE(set.has_value());
  for (int depth = 0; depth <= 3; ++depth) {
    for (const Level& w : s.layer(depth)) {
      double cover = 0;
      for (size_t i = 0; i < set->levels.size(); ++i) {
        if (w.leq(set->levels[i])) cover += set->coeffs[i];
      }
      const double want = problem.member(w, lost) ? 1.0 : 0.0;
      EXPECT_NEAR(cover, want, 1e-12) << "w=(" << w.x << "," << w.y << ")";
    }
  }
}

TEST(Combine, ExactForBilinearFunctions) {
  // Each component interpolates bilinear functions exactly, and the
  // coefficients sum to 1, so the combination must reproduce them.
  const Scheme s{5, 3};
  const auto levels = s.combination_levels();
  std::vector<Grid2D> grids;
  grids.reserve(levels.size());
  for (const Level& lv : levels) {
    Grid2D g(lv);
    g.fill([](double x, double y) { return 1.0 + 2.0 * x - y + 3.0 * x * y; });
    grids.push_back(std::move(g));
  }
  std::vector<const Grid2D*> ptrs;
  for (const auto& g : grids) ptrs.push_back(&g);
  const auto parts = classic_components(s, ptrs);
  const Grid2D combined = combine_full(s, parts);
  const double err = ftr::grid::linf_error(
      combined, [](double x, double y) { return 1.0 + 2.0 * x - y + 3.0 * x * y; });
  EXPECT_LT(err, 1e-12);
}

TEST(Combine, CombinationBeatsCoarsestComponent) {
  // Solve advection on every combination grid and compare the combined
  // solution's error to the single coarsest component's error.
  const Scheme s{6, 3};
  const ftr::advection::Problem p{1.0, 0.5};
  const double dt = ftr::advection::stable_timestep(s.n, p, 0.8);
  const long steps = 32;

  std::vector<Grid2D> grids;
  std::vector<double> component_errors;
  for (const Level& lv : s.combination_levels()) {
    ftr::advection::SerialSolver solver(lv, p, dt);
    solver.run(steps);
    component_errors.push_back(solver.l1_error());
    grids.push_back(solver.grid());
  }
  std::vector<const Grid2D*> ptrs;
  for (const auto& g : grids) ptrs.push_back(&g);
  const Grid2D combined = combine_full(s, classic_components(s, ptrs));

  const double t = static_cast<double>(steps) * dt;
  const double err =
      ftr::grid::l1_error(combined, [&](double x, double y) { return p.exact(x, y, t); });
  const double worst =
      *std::max_element(component_errors.begin(), component_errors.end());
  EXPECT_LT(err, worst);
  EXPECT_LT(err, 0.05);
}

TEST(Combine, AlternateCombinationErrorIsBounded) {
  // Lose one diagonal grid; the GCP combination over the survivors (with
  // extra layers) should stay within a factor of ~10 of the baseline, the
  // paper's robustness headline.
  const Scheme s{6, 3};
  const ftr::advection::Problem p{1.0, 0.5};
  const double dt = ftr::advection::stable_timestep(s.n, p, 0.8);
  const long steps = 32;
  const double t = static_cast<double>(steps) * dt;

  std::map<std::pair<int, int>, Grid2D> solutions;
  for (int depth = 0; depth <= 3; ++depth) {
    for (const Level& lv : s.layer(depth)) {
      ftr::advection::SerialSolver solver(lv, p, dt);
      solver.run(steps);
      solutions.emplace(std::pair{lv.x, lv.y}, solver.grid());
    }
  }
  auto combine_for = [&](const std::vector<Level>& lost) {
    const CoefficientProblem problem(s, 3);
    const auto set = problem.solve(lost);
    EXPECT_TRUE(set.has_value());
    std::vector<Component> parts;
    for (size_t i = 0; i < set->levels.size(); ++i) {
      parts.push_back(
          Component{&solutions.at({set->levels[i].x, set->levels[i].y}), set->coeffs[i]});
    }
    const Grid2D combined = combine_full(s, parts);
    return ftr::grid::l1_error(combined,
                               [&](double x, double y) { return p.exact(x, y, t); });
  };

  const double baseline = combine_for({});
  const double with_loss = combine_for({s.layer(0)[1]});
  EXPECT_GT(with_loss, 0.0);
  EXPECT_LT(with_loss, 10.0 * baseline);
}
