// Unit tests for the common utilities: CLI parsing, table/CSV output,
// deterministic RNG, and log-level parsing.

#include <gtest/gtest.h>

#include <set>
#include <cmath>
#include <sstream>

#include "common/cli.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

using namespace ftr;

TEST(Cli, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha=3", "--flag", "pos1", "--gamma=x", "pos2"};
  const Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get("gamma", ""), "x");
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.positional()[1], "pos2");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, ParsesIntLists) {
  const char* argv[] = {"prog", "--cores=19,38,76"};
  const Cli cli(2, argv);
  EXPECT_EQ(cli.get_int_list("cores", {}), (std::vector<long>{19, 38, 76}));
  EXPECT_EQ(cli.get_int_list("other", {1, 2}), (std::vector<long>{1, 2}));
}

TEST(Cli, BoolForms) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=false"};
  const Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(Table, PrintsAlignedMarkdown) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "quo\"te"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.14");
  EXPECT_EQ(Table::num(std::nan("")), "-");
  EXPECT_EQ(Table::num(42L), "42");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row(0).size(), 3u);
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitStreamsDiffer) {
  Xoshiro256 root(9);
  Xoshiro256 s1 = root.split(1);
  Xoshiro256 s2 = root.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += s1() == s2() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.bounded(13);
    EXPECT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);  // all residues hit over 1000 draws
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(21);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("TRACE"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("Error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::Warn);
}

TEST(Logging, EnabledRespectsThreshold) {
  Logger& log = Logger::instance();
  const LogLevel saved = log.level();
  log.set_level(LogLevel::Warn);
  EXPECT_FALSE(log.enabled(LogLevel::Debug));
  EXPECT_TRUE(log.enabled(LogLevel::Error));
  log.set_level(saved);
}
