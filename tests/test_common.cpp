// Unit tests for the common utilities: CLI parsing, table/CSV output,
// deterministic RNG, and log-level parsing.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "common/cli.hpp"
#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

using namespace ftr;

TEST(Cli, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha=3", "--flag", "pos1", "--gamma=x", "pos2"};
  const Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get("gamma", ""), "x");
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.positional()[1], "pos2");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, ParsesIntLists) {
  const char* argv[] = {"prog", "--cores=19,38,76"};
  const Cli cli(2, argv);
  EXPECT_EQ(cli.get_int_list("cores", {}), (std::vector<long>{19, 38, 76}));
  EXPECT_EQ(cli.get_int_list("other", {1, 2}), (std::vector<long>{1, 2}));
}

TEST(Cli, BoolForms) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=false"};
  const Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(Table, PrintsAlignedMarkdown) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"x,y", "quo\"te"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.14");
  EXPECT_EQ(Table::num(std::nan("")), "-");
  EXPECT_EQ(Table::num(42L), "42");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row(0).size(), 3u);
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitStreamsDiffer) {
  Xoshiro256 root(9);
  Xoshiro256 s1 = root.split(1);
  Xoshiro256 s2 = root.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += s1() == s2() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.bounded(13);
    EXPECT_LT(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 13u);  // all residues hit over 1000 draws
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(21);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("TRACE"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("Error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::Warn);
}

TEST(Logging, EnabledRespectsThreshold) {
  Logger& log = Logger::instance();
  const LogLevel saved = log.level();
  log.set_level(LogLevel::Warn);
  EXPECT_FALSE(log.enabled(LogLevel::Debug));
  EXPECT_TRUE(log.enabled(LogLevel::Error));
  log.set_level(saved);
}

// ---------------------------------------------------------------------------
// CRC-32 (slicing-by-8): known-answer vectors and equivalence with a plain
// bytewise reference, so stored checkpoint/buddy CRCs stay compatible.

namespace {

/// Bytewise reference implementation (the pre-slicing-by-8 loop).
std::uint32_t crc32_bytewise(const void* data, std::size_t n, std::uint32_t seed = 0) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace

TEST(Crc32, KnownAnswerVectors) {
  // RFC 3720 appendix / zlib's documented CRC-32 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc", 3), 0x352441C2u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog", 43), 0x414FA339u);
}

TEST(Crc32, MatchesBytewiseReferenceAtAllLengths) {
  // Exercise every tail length around the 8-byte slicing boundary, plus a
  // payload-sized buffer, from every small offset (alignment independence).
  std::vector<unsigned char> buf(4096);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>((i * 131 + 89) & 0xFF);
  }
  for (size_t off = 0; off < 9; ++off) {
    for (size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 15ul, 16ul, 17ul, 63ul, 64ul, 1000ul, 4000ul}) {
      if (off + n > buf.size()) continue;
      EXPECT_EQ(crc32(buf.data() + off, n), crc32_bytewise(buf.data() + off, n))
          << "offset " << off << " length " << n;
    }
  }
}

TEST(Crc32, IncrementalChainingMatchesWholeBuffer) {
  std::vector<unsigned char> buf(1537);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<unsigned char>(i * 7);
  const std::uint32_t whole = crc32(buf.data(), buf.size());
  for (size_t split : {1ul, 8ul, 9ul, 512ul, 1536ul}) {
    const std::uint32_t part = crc32(buf.data(), split);
    EXPECT_EQ(crc32(buf.data() + split, buf.size() - split, part), whole)
        << "split at " << split;
  }
}
