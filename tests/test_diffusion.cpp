// Tests for the diffusion (heat equation) solver — the second PDE that
// demonstrates the substrate generalizes beyond advection: FTCS correctness,
// convergence, parallel-vs-serial agreement, combination-technique
// compatibility, and failure surfacing.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "advection/diffusion.hpp"
#include "combination/combine.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftr::advection;
using ftr::grid::Grid2D;
using ftr::grid::Level;

TEST(Diffusion, ExactSolutionDecays) {
  const DiffusionProblem p{0.05};
  EXPECT_NEAR(p.exact(0.25, 0.25, 0.0), p.initial(0.25, 0.25), 1e-14);
  EXPECT_LT(std::abs(p.exact(0.25, 0.25, 0.1)), std::abs(p.initial(0.25, 0.25)));
}

TEST(Diffusion, StableTimestepRespectsBound) {
  const DiffusionProblem p{0.1};
  const double dt = diffusion_stable_timestep(5, p, 0.9);
  const double h = 1.0 / 32.0;
  EXPECT_LE(p.kappa * dt * (2.0 / (h * h)), 0.5 + 1e-12);
}

TEST(Diffusion, SerialSolverTracksAnalyticDecay) {
  const DiffusionProblem p{0.05};
  const double dt = diffusion_stable_timestep(5, p, 0.8);
  SerialDiffusionSolver s(Level{5, 5}, p, dt);
  s.run(200);
  EXPECT_GT(s.time(), 0.0);
  EXPECT_LT(s.l1_error(), 2e-3);
  // The field has genuinely decayed.
  EXPECT_LT(std::abs(s.grid().at(8, 8)), std::abs(p.initial(0.25, 0.25)));
}

TEST(Diffusion, SpatialConvergence) {
  const DiffusionProblem p{0.05};
  const double dt = diffusion_stable_timestep(6, p, 0.4);
  std::vector<double> errs;
  for (int l : {4, 5}) {
    SerialDiffusionSolver s(Level{l, l}, p, dt);
    s.run(100);
    errs.push_back(s.l1_error());
  }
  EXPECT_GT(errs[0] / errs[1], 2.0);  // ~2nd order in space
}

TEST(Diffusion, ParallelMatchesSerial) {
  ftmpi::Runtime rt;
  std::atomic<int> bad{0};
  const DiffusionProblem p{0.05};
  const Level level{5, 4};
  const double dt = diffusion_stable_timestep(5, p, 0.8);
  rt.register_app("main", [&](const std::vector<std::string>&) {
    ParallelDiffusionSolver solver(level, p, dt, ftmpi::world());
    if (solver.run(50) != ftmpi::kSuccess) ++bad;
    Grid2D full;
    if (solver.gather_full(&full) != ftmpi::kSuccess) ++bad;
    if (ftmpi::world().rank() == 0) {
      SerialDiffusionSolver ref(level, p, dt);
      ref.run(50);
      for (int iy = 0; iy < full.ny(); ++iy) {
        for (int ix = 0; ix < full.nx(); ++ix) {
          if (std::abs(full.at(ix, iy) - ref.grid().at(ix, iy)) > 1e-12) ++bad;
        }
      }
    }
  });
  rt.run("main", 8);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Diffusion, CombinationTechniqueApplies) {
  // The combination of diffusion sub-grid solutions beats the worst
  // component, exactly as for advection.
  const ftr::comb::Scheme s{6, 3};
  const DiffusionProblem p{0.02};
  const double dt = diffusion_stable_timestep(s.n, p, 0.8);
  const long steps = 60;
  const double t = static_cast<double>(steps) * dt;

  std::vector<Grid2D> grids;
  double worst = 0;
  for (const Level& lv : s.combination_levels()) {
    SerialDiffusionSolver solver(lv, p, dt);
    solver.run(steps);
    worst = std::max(worst, solver.l1_error());
    grids.push_back(solver.grid());
  }
  std::vector<const Grid2D*> ptrs;
  for (const auto& g : grids) ptrs.push_back(&g);
  const Grid2D combined =
      ftr::comb::combine_full(s, ftr::comb::classic_components(s, ptrs));
  const double err =
      ftr::grid::l1_error(combined, [&](double x, double y) { return p.exact(x, y, t); });
  EXPECT_LT(err, worst);
}

TEST(Diffusion, SurfacesFailureDuringStep) {
  ftmpi::Runtime rt;
  std::atomic<int> fail_codes{0};
  const DiffusionProblem p{0.05};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    ftmpi::Comm& w = ftmpi::world();
    ParallelDiffusionSolver solver(Level{5, 5}, p, diffusion_stable_timestep(5, p), w);
    if (w.rank() == 1) {
      solver.run(3);
      ftmpi::abort_self();
    }
    if (solver.run(50) == ftmpi::kErrProcFailed) ++fail_codes;
  });
  rt.run("main", 4);
  EXPECT_GE(fail_codes.load(), 1);
}
