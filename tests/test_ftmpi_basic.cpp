// Smoke tests of the ftmpi runtime: launch, rank/size, point-to-point,
// virtual clocks, and basic collectives without failures.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftmpi;

namespace {

Runtime::Options small_opts() {
  Runtime::Options opt;
  opt.slots_per_host = 4;
  opt.real_time_limit_sec = 60.0;
  return opt;
}

}  // namespace

TEST(FtmpiBasic, WorldRankAndSize) {
  Runtime rt(small_opts());
  std::atomic<int> rank_sum{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    EXPECT_EQ(w.size(), 6);
    rank_sum += w.rank();
  });
  const int killed = rt.run("main", 6);
  EXPECT_EQ(killed, 0);
  EXPECT_EQ(rank_sum.load(), 0 + 1 + 2 + 3 + 4 + 5);
}

TEST(FtmpiBasic, HostPlacementFollowsSlots) {
  Runtime rt(small_opts());  // 4 slots per host
  std::atomic<bool> ok{true};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    const int r = world().rank();
    if (runtime().host_of(self_pid()) != r / 4) ok = false;
  });
  rt.run("main", 10);
  EXPECT_TRUE(ok.load());
}

TEST(FtmpiBasic, SendRecvRoundTrip) {
  Runtime rt(small_opts());
  std::atomic<int> received{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 0) {
      const int v = 42;
      ASSERT_EQ(send(&v, 1, 1, 7, w), kSuccess);
    } else {
      int v = 0;
      Status st;
      ASSERT_EQ(recv(&v, 1, 0, 7, w, &st), kSuccess);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      received = v;
    }
  });
  rt.run("main", 2);
  EXPECT_EQ(received.load(), 42);
}

TEST(FtmpiBasic, AnySourceAnyTag) {
  Runtime rt(small_opts());
  std::atomic<int> total{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 0) {
      for (int i = 1; i < w.size(); ++i) {
        int v = 0;
        Status st;
        ASSERT_EQ(recv(&v, 1, kAnySource, kAnyTag, w, &st), kSuccess);
        EXPECT_EQ(v, st.source * 10 + st.tag);
        total += v;
      }
    } else {
      const int v = w.rank() * 10 + w.rank();
      ASSERT_EQ(send(&v, 1, 0, w.rank(), w), kSuccess);
    }
  });
  rt.run("main", 4);
  EXPECT_EQ(total.load(), 11 + 22 + 33);
}

TEST(FtmpiBasic, VirtualClockAdvancesWithTraffic) {
  Runtime rt(small_opts());
  std::atomic<double> t_end{0.0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    const double t0 = wtime();
    EXPECT_EQ(t0, 0.0);
    if (w.rank() == 0) {
      std::vector<double> buf(1000, 1.0);
      (void)send(buf.data(), 1000, 1, 0, w);
    } else {
      std::vector<double> buf(1000);
      (void)recv(buf.data(), 1000, 0, 0, w);
      t_end = wtime();
    }
  });
  rt.run("main", 2);
  EXPECT_GT(t_end.load(), 0.0);
  EXPECT_LT(t_end.load(), 1.0);  // microseconds of modeled time, not seconds
}

TEST(FtmpiBasic, AdvanceChargesComputeTime) {
  Runtime rt(small_opts());
  std::atomic<double> t{0.0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    advance(1.5);
    t = wtime();
  });
  rt.run("main", 1);
  EXPECT_DOUBLE_EQ(t.load(), 1.5);
}

TEST(FtmpiBasic, BarrierSynchronizesClocks) {
  Runtime rt(small_opts());
  std::atomic<double> fast_after{0.0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    if (w.rank() == 2) advance(5.0);  // one slow rank
    ASSERT_EQ(barrier(w), kSuccess);
    if (w.rank() == 0) fast_after = wtime();
  });
  rt.run("main", 4);
  // After the barrier, every rank's clock is at least the slowest rank's.
  EXPECT_GE(fast_after.load(), 5.0);
}

TEST(FtmpiBasic, BcastDeliversToAll) {
  Runtime rt(small_opts());
  std::atomic<int> sum{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    int v = w.rank() == 1 ? 99 : 0;
    ASSERT_EQ(bcast(&v, 1, 1, w), kSuccess);
    sum += v;
  });
  rt.run("main", 5);
  EXPECT_EQ(sum.load(), 99 * 5);
}

TEST(FtmpiBasic, GatherCollectsInRankOrder) {
  Runtime rt(small_opts());
  std::atomic<bool> ok{false};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    const int v = w.rank() * w.rank();
    std::vector<int> all(static_cast<size_t>(w.size()));
    ASSERT_EQ(gather(&v, 1, all.data(), 0, w), kSuccess);
    if (w.rank() == 0) {
      bool good = true;
      for (int r = 0; r < w.size(); ++r) {
        good = good && all[static_cast<size_t>(r)] == r * r;
      }
      ok = good;
    }
  });
  rt.run("main", 6);
  EXPECT_TRUE(ok.load());
}

TEST(FtmpiBasic, AllreduceSum) {
  Runtime rt(small_opts());
  std::atomic<int> wrong{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    const double v = static_cast<double>(w.rank() + 1);
    double out = 0;
    ASSERT_EQ(allreduce(&v, &out, 1, ReduceOp::Sum, w), kSuccess);
    if (out != 1 + 2 + 3 + 4 + 5 + 6.0) ++wrong;
  });
  rt.run("main", 6);
  EXPECT_EQ(wrong.load(), 0);
}

TEST(FtmpiBasic, CommSplitByParity) {
  Runtime rt(small_opts());
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    Comm half;
    ASSERT_EQ(comm_split(w, w.rank() % 2, w.rank(), &half), kSuccess);
    ASSERT_FALSE(half.is_null());
    if (half.size() != 3) ++bad;
    if (half.rank() != w.rank() / 2) ++bad;
    // The new communicator must carry traffic independently of world.
    int token = w.rank();
    ASSERT_EQ(bcast(&token, 1, 0, half), kSuccess);
    if (token != w.rank() % 2) ++bad;  // rank 0 of each half is world rank 0 or 1
  });
  rt.run("main", 6);
  EXPECT_EQ(bad.load(), 0);
}

TEST(FtmpiBasic, CommSplitUndefinedYieldsNull) {
  Runtime rt(small_opts());
  std::atomic<int> bad{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    Comm sub;
    const int color = w.rank() == 0 ? kUndefinedColor : 1;
    ASSERT_EQ(comm_split(w, color, 0, &sub), kSuccess);
    if (w.rank() == 0 && !sub.is_null()) ++bad;
    if (w.rank() != 0 && (sub.is_null() || sub.size() != 3)) ++bad;
  });
  rt.run("main", 4);
  EXPECT_EQ(bad.load(), 0);
}

TEST(FtmpiBasic, ResultsBlackboard) {
  Runtime rt(small_opts());
  rt.register_app("main", [&](const std::vector<std::string>&) {
    if (world().rank() == 0) runtime().put("answer", 42.0);
    runtime().add("count", 1.0);
  });
  rt.run("main", 3);
  EXPECT_DOUBLE_EQ(rt.get("answer", 0.0), 42.0);
  EXPECT_DOUBLE_EQ(rt.get("count", 0.0), 3.0);
}

TEST(FtmpiBasic, SequentialRunsOnOneRuntime) {
  Runtime rt(small_opts());
  std::atomic<int> launches{0};
  rt.register_app("main", [&](const std::vector<std::string>&) { ++launches; });
  rt.run("main", 3);
  rt.run("main", 5);
  EXPECT_EQ(launches.load(), 8);
  EXPECT_EQ(rt.total_processes(), 8);
}

TEST(FtmpiBasic, ArgvReachesApplication) {
  Runtime rt(small_opts());
  std::atomic<int> good{0};
  rt.register_app("main", [&](const std::vector<std::string>& argv) {
    if (argv.size() == 2 && argv[0] == "alpha" && argv[1] == "beta") ++good;
  });
  rt.run("main", 2, {"alpha", "beta"});
  EXPECT_EQ(good.load(), 2);
}

TEST(FtmpiBasic, LargePayloadTransfersIntact) {
  Runtime rt(small_opts());
  std::atomic<bool> ok{false};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    const size_t n = 1 << 16;
    if (w.rank() == 0) {
      std::vector<double> buf(n);
      std::iota(buf.begin(), buf.end(), 0.0);
      (void)send(buf.data(), static_cast<int>(n), 1, 3, w);
    } else {
      std::vector<double> buf(n, -1.0);
      (void)recv(buf.data(), static_cast<int>(n), 0, 3, w);
      bool good = true;
      for (size_t i = 0; i < n; ++i) good = good && buf[i] == static_cast<double>(i);
      ok = good;
    }
  });
  rt.run("main", 2);
  EXPECT_TRUE(ok.load());
}
