// Tests of the paper's communicator-reconstruction protocol (Figs. 3-7):
// rank/size preservation, host placement, multiple failures, repeated
// repairs, and the pure helper functions.

#include <gtest/gtest.h>

#include <atomic>

#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftr::core;
using namespace ftmpi;

namespace {

Runtime::Options opts(int slots = 4) {
  Runtime::Options o;
  o.slots_per_host = slots;
  o.real_time_limit_sec = 60.0;
  return o;
}

}  // namespace

TEST(SelectRankKey, SurvivorsKeepOriginalRanks) {
  // 8 procs, ranks 2 and 5 failed: survivors 0,1,3,4,6,7 hold merged ranks
  // 0..5 and must get keys equal to their original ranks.
  const std::vector<int> failed{2, 5};
  const std::vector<int> expect{0, 1, 3, 4, 6, 7};
  for (int merged = 0; merged < 6; ++merged) {
    EXPECT_EQ(Reconstructor::select_rank_key(merged, 6, failed, 8),
              expect[static_cast<size_t>(merged)]);
  }
}

TEST(Reconstruct, NoFailureIsCheapProbe) {
  Runtime rt(opts());
  std::atomic<int> repaired{0};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    const auto res = recon.reconstruct(world());
    if (res.repaired) ++repaired;
    EXPECT_EQ(res.comm.size(), 4);
    EXPECT_EQ(res.iterations, 1);
  });
  rt.run("app", 4);
  EXPECT_EQ(repaired.load(), 0);
}

TEST(Reconstruct, SingleFailurePreservesSizeAndRanks) {
  Runtime rt(opts());
  std::atomic<int> bad{0};
  std::atomic<int> child_checks{0};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    const bool is_child = !get_parent().is_null();
    Comm w;
    int original_rank = -1;
    if (is_child) {
      const auto res = recon.reconstruct({});
      w = res.comm;
      ++child_checks;
    } else {
      w = world();
      original_rank = w.rank();
      if (w.rank() == 3) abort_self();
      const auto res = recon.reconstruct(w);
      if (!res.repaired) ++bad;
      if (res.failed_ranks != std::vector<int>{3}) ++bad;
      w = res.comm;
      if (w.rank() != original_rank) ++bad;  // survivors keep their rank
    }
    if (w.size() != 6) ++bad;  // global size preserved (not shrunk)
    // The repaired communicator must be fully functional.
    int token = w.rank() == 0 ? 77 : 0;
    if (bcast(&token, 1, 0, w) != kSuccess || token != 77) ++bad;
    // The child must sit at the failed rank.
    if (is_child && w.rank() != 3) ++bad;
  });
  rt.run("app", 6);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(child_checks.load(), 1);
}

TEST(Reconstruct, MultipleFailuresRepairedTogether) {
  Runtime rt(opts());
  std::atomic<int> bad{0};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    const bool is_child = !get_parent().is_null();
    Comm w;
    if (is_child) {
      w = recon.reconstruct({}).comm;
    } else {
      w = world();
      const int r = w.rank();
      if (r == 1 || r == 4 || r == 6) abort_self();
      const auto res = recon.reconstruct(w);
      if (res.failed_ranks != std::vector<int>({1, 4, 6})) ++bad;
      w = res.comm;
      if (w.rank() != r) ++bad;
    }
    if (w.size() != 8) ++bad;
    // All-to-root gather proves every rank (old and respawned) works.
    const int v = w.rank();
    std::vector<int> all(static_cast<size_t>(w.size()));
    if (gather(&v, 1, all.data(), 0, w) != kSuccess) ++bad;
    if (w.rank() == 0) {
      for (int i = 0; i < w.size(); ++i) {
        if (all[static_cast<size_t>(i)] != i) ++bad;
      }
    }
  });
  rt.run("app", 8);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Reconstruct, RespawnLandsOnOriginalHost) {
  Runtime rt(opts(/*slots=*/3));
  std::atomic<int> child_host{-1};
  std::atomic<int> expected_host{-1};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    if (!get_parent().is_null()) {
      recon.reconstruct({});
      child_host = runtime().host_of(self_pid());
      return;
    }
    Comm w = world();
    if (w.rank() == 4) {
      expected_host = runtime().host_of(self_pid());  // host 1 with slots=3
      abort_self();
    }
    recon.reconstruct(w);
  });
  rt.run("app", 6);
  EXPECT_EQ(expected_host.load(), 4 / 3);
  EXPECT_EQ(child_host.load(), expected_host.load());
}

TEST(Reconstruct, TimingsArePopulated) {
  Runtime rt(opts());
  std::atomic<double> total{0}, spawn{0}, shrink{0}, merge{0};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    if (!get_parent().is_null()) {
      recon.reconstruct({});
      return;
    }
    Comm w = world();
    if (w.rank() == 2) abort_self();
    const auto res = recon.reconstruct(w);
    if (w.rank() == 0 && res.repaired) {
      total = res.timings.total;
      spawn = res.timings.spawn;
      shrink = res.timings.shrink;
      merge = res.timings.merge;
    }
  });
  rt.run("app", 5);
  EXPECT_GT(total.load(), 0.0);
  EXPECT_GT(spawn.load(), 0.0);
  EXPECT_GT(shrink.load(), 0.0);
  EXPECT_GT(merge.load(), 0.0);
  // The paper's Table I ordering: spawn dominates merge by a wide margin.
  EXPECT_GT(spawn.load(), 10.0 * merge.load());
  EXPECT_LT(spawn.load() + shrink.load() + merge.load(), total.load() + 1e-9);
}

TEST(Reconstruct, SequentialFailuresRepairedTwice) {
  // Two separate failure episodes with a repair in between.
  Runtime rt(opts());
  std::atomic<int> bad{0};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    const bool is_child = !get_parent().is_null();
    Comm w;
    int phase = 0;  // which episode a child joins
    if (is_child) {
      w = recon.reconstruct({}).comm;
      // Learn the phase from rank 0.
      if (bcast(&phase, 1, 0, w) != kSuccess) ++bad;
    } else {
      w = world();
      if (w.rank() == 1) abort_self();  // first episode
      auto res = recon.reconstruct(w);
      w = res.comm;
      phase = 1;
      int p = phase;
      if (bcast(&p, 1, 0, w) != kSuccess) ++bad;
    }
    if (phase == 1) {
      // Second episode: another rank dies (only if it hasn't already been
      // respawned — rank 2 is an original survivor here).
      if (w.rank() == 2 && get_parent().is_null() && runtime().total_processes() < 7) {
        abort_self();
      }
      auto res = recon.reconstruct(w);
      w = res.comm;
      int p = 2;
      if (bcast(&p, 1, 0, w) != kSuccess) ++bad;
    }
    if (w.size() != 5) ++bad;
  });
  rt.run("app", 5);
  EXPECT_EQ(bad.load(), 0);
}
