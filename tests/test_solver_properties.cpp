// Parameterized property tests of the PDE solvers: mass conservation,
// convergence across velocities and anisotropies, independence of the
// domain-decomposition shape, and diffusion's amplitude decay.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <tuple>

#include "advection/diffusion.hpp"
#include "advection/parallel_solver.hpp"
#include "advection/serial_solver.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftr::advection;
using ftr::grid::Grid2D;
using ftr::grid::Level;

namespace {

/// Sum over the unique (non-duplicated) points — the discrete mass.
double mass(const Grid2D& g) {
  double m = 0;
  for (int iy = 0; iy < g.ny() - 1; ++iy) {
    for (int ix = 0; ix < g.nx() - 1; ++ix) m += g.at(ix, iy);
  }
  return m;
}

}  // namespace

// Lax-Wendroff conserves the discrete mass exactly on a periodic domain.
class LwConservation : public ::testing::TestWithParam<std::tuple<double, double, int, int>> {
};

TEST_P(LwConservation, MassIsConserved) {
  const auto [ax, ay, lx, ly] = GetParam();
  const Problem p{ax, ay};
  const double dt = stable_timestep(std::max(lx, ly), p, 0.9);
  SerialSolver s(Level{lx, ly}, p, dt);
  const double m0 = mass(s.grid());
  s.run(40);
  EXPECT_NEAR(mass(s.grid()), m0, 1e-10 * s.grid().size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, LwConservation,
                         ::testing::Values(std::tuple{1.0, 0.5, 5, 5},
                                           std::tuple{-1.0, 0.25, 5, 4},
                                           std::tuple{0.0, 1.0, 4, 6},
                                           std::tuple{2.0, -1.0, 6, 3},
                                           std::tuple{0.7, 0.7, 3, 6}));

// Convergence holds for anisotropic grids too (refining the x level of an
// anisotropic grid reduces the error when x resolution is the bottleneck).
class AnisotropicConvergence : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AnisotropicConvergence, FinerBottleneckReducesError) {
  const auto [ax, ay] = GetParam();
  const Problem p{ax, ay};
  const double dt = stable_timestep(7, p, 0.5);
  SerialSolver coarse(Level{4, 7}, p, dt);
  SerialSolver fine(Level{6, 7}, p, dt);
  coarse.run(48);
  fine.run(48);
  EXPECT_LT(fine.l1_error(), coarse.l1_error());
}

INSTANTIATE_TEST_SUITE_P(Velocities, AnisotropicConvergence,
                         ::testing::Values(std::tuple{1.0, 0.5}, std::tuple{1.5, 0.2},
                                           std::tuple{0.8, 1.0}));

// The parallel result must be independent of the process-grid shape.
class DecompShape : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DecompShape, ResultIndependentOfProcessGrid) {
  const auto [px, py] = GetParam();
  const int nprocs = px * py;
  ftmpi::Runtime rt;
  std::atomic<int> bad{0};
  const Problem p{1.0, 0.5};
  const Level level{5, 5};
  const double dt = stable_timestep(5, p, 0.8);
  rt.register_app("main", [&](const std::vector<std::string>&) {
    ParallelSolver solver(level, p, dt, ftmpi::world());
    solver.run(16);
    Grid2D full;
    solver.gather_full(&full);
    if (ftmpi::world().rank() == 0) {
      SerialSolver ref(level, p, dt);
      ref.run(16);
      for (int iy = 0; iy < full.ny(); ++iy) {
        for (int ix = 0; ix < full.nx(); ++ix) {
          if (std::abs(full.at(ix, iy) - ref.grid().at(ix, iy)) > 1e-13) ++bad;
        }
      }
    }
  });
  rt.run("main", nprocs);
  EXPECT_EQ(bad.load(), 0) << px << "x" << py;
}

INSTANTIATE_TEST_SUITE_P(Shapes, DecompShape,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{2, 1},
                                           std::tuple{4, 1}, std::tuple{2, 2},
                                           std::tuple{4, 2}, std::tuple{8, 2},
                                           std::tuple{4, 4}));

// Diffusion: the amplitude decays monotonically and mass (zero-mean initial
// condition) stays zero.
TEST(DiffusionProperties, MonotoneDecayAndZeroMean) {
  const DiffusionProblem p{0.05};
  const double dt = diffusion_stable_timestep(5, p, 0.8);
  SerialDiffusionSolver s(Level{5, 5}, p, dt);
  double prev = 1e300;
  for (int k = 0; k < 5; ++k) {
    s.run(20);
    double amp = 0;
    for (int iy = 0; iy < s.grid().ny(); ++iy) {
      for (int ix = 0; ix < s.grid().nx(); ++ix) {
        amp = std::max(amp, std::abs(s.grid().at(ix, iy)));
      }
    }
    EXPECT_LT(amp, prev);
    prev = amp;
    EXPECT_NEAR(mass(s.grid()), 0.0, 1e-9);
  }
}

// The virtual cost of a parallel step scales with the local block size:
// more processes => less modeled time per rank per step (compute-bound
// regime; at the default cell rate this size saturates on halo latency,
// which is itself correct strong-scaling behaviour).
TEST(SolverCost, StrongScalingReducesPerRankStepTime) {
  auto step_time = [](int nprocs) {
    ftmpi::Runtime::Options opts;
    opts.cost.cell_update_rate = 1.0e5;  // compute-dominant workload
    ftmpi::Runtime rt(opts);
    std::atomic<double> t{0};
    const Problem p{1.0, 0.5};
    rt.register_app("main", [&](const std::vector<std::string>&) {
      ParallelSolver solver(Level{6, 6}, p, stable_timestep(6, p), ftmpi::world());
      const double t0 = ftmpi::wtime();
      solver.run(4);
      if (ftmpi::world().rank() == 0) t = ftmpi::wtime() - t0;
    });
    rt.run("main", nprocs);
    return t.load();
  };
  const double t1 = step_time(1);
  const double t4 = step_time(4);
  const double t16 = step_time(16);
  EXPECT_GT(t1, t4);
  EXPECT_GT(t4, t16);
  // And the speedup is in the right ballpark for a compute-bound problem.
  EXPECT_GT(t1 / t16, 8.0);
}
