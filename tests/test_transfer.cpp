// Unit tests for the separable transfer engine: axis-map exactness and
// caching, equivalence with the legacy per-point Grid2D::sample() path,
// fused-vs-sequential combination identity, and the allocation-free sweep
// rewrites.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "advection/lax_wendroff.hpp"
#include "combination/combine.hpp"
#include "grid/decomposition.hpp"
#include "grid/grid2d.hpp"
#include "grid/sampling.hpp"
#include "grid/transfer.hpp"

using namespace ftr::grid;

namespace {

double wavy(double x, double y) {
  return std::sin(2.0 * M_PI * x) * std::cos(4.0 * M_PI * y) + 0.25 * x - 0.5 * y * y;
}

/// The legacy transfer: per-point bilinear sample() at every destination
/// point, exactly as interpolate() was implemented before the engine.
Grid2D legacy_interpolate(const Grid2D& src, Level target) {
  Grid2D dst(target);
  for (int iy = 0; iy < dst.ny(); ++iy) {
    for (int ix = 0; ix < dst.nx(); ++ix) {
      dst.at(ix, iy) = src.sample(dst.x_of(ix), dst.y_of(iy));
    }
  }
  return dst;
}

double max_abs_diff(const Grid2D& a, const Grid2D& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace

TEST(AxisMap, RefinementMapsAreExactlyInjective) {
  // Coarsening a dyadic axis lands every destination point on a source
  // point: weights must be exactly 0 (or exactly 1 at the clamped last
  // index), with the gather table resolving the stride.
  const AxisMap& m = axis_map(6, 4);
  ASSERT_TRUE(m.injective);
  ASSERT_EQ(m.dst_n, 17);
  ASSERT_EQ(static_cast<int>(m.gather.size()), m.dst_n);
  for (int i = 0; i < m.dst_n; ++i) {
    EXPECT_EQ(m.gather[static_cast<size_t>(i)], i * 4) << "dst index " << i;
  }
}

TEST(AxisMap, IdentityAndUpsampleWeights) {
  const AxisMap& id = axis_map(5, 5);
  EXPECT_TRUE(id.injective);
  for (int i = 0; i < id.dst_n; ++i) EXPECT_EQ(id.gather[static_cast<size_t>(i)], i);

  // Upsampling by one level: odd destination points sit halfway between
  // source points; dyadic spacings make the weight exactly 0.5.
  const AxisMap& up = axis_map(4, 5);
  EXPECT_FALSE(up.injective);
  for (int i = 0; i < up.dst_n - 1; ++i) {
    const double w = up.w[static_cast<size_t>(i)];
    EXPECT_EQ(i % 2 == 0 ? 0.0 : 0.5, w) << "dst index " << i;
    EXPECT_EQ(up.i0[static_cast<size_t>(i)], i / 2);
  }
}

TEST(AxisMap, CacheHitsAndMisses) {
  axis_map_cache_clear();
  auto s0 = axis_map_cache_stats();
  EXPECT_EQ(s0.hits, 0u);
  EXPECT_EQ(s0.misses, 0u);
  EXPECT_EQ(s0.entries, 0u);

  (void)axis_map(7, 5);
  auto s1 = axis_map_cache_stats();
  EXPECT_EQ(s1.misses, 1u);
  EXPECT_EQ(s1.hits, 0u);
  EXPECT_EQ(s1.entries, 1u);

  const AxisMap& a = axis_map(7, 5);
  const AxisMap& b = axis_map(7, 5);
  EXPECT_EQ(&a, &b);  // cached maps are shared, not rebuilt
  auto s2 = axis_map_cache_stats();
  EXPECT_EQ(s2.misses, 1u);
  EXPECT_EQ(s2.hits, 2u);
  EXPECT_EQ(s2.entries, 1u);

  // The reverse pair is a distinct key, not a hit.
  (void)axis_map(5, 7);
  auto s3 = axis_map_cache_stats();
  EXPECT_EQ(s3.misses, 2u);
  EXPECT_EQ(s3.entries, 2u);
}

TEST(Transfer, MatchesLegacySampleAcrossLevelPairs) {
  // Up- and down-sampling, isotropic and anisotropic, including mixed
  // directions (finer in x, coarser in y).
  const std::vector<std::pair<Level, Level>> pairs = {
      {{3, 3}, {5, 5}},  // isotropic upsample
      {{5, 5}, {3, 3}},  // isotropic downsample (refinement)
      {{5, 2}, {2, 5}},  // anisotropic crossover
      {{2, 5}, {5, 2}},
      {{4, 4}, {4, 4}},  // identity
      {{6, 3}, {4, 6}},  // mixed up/down
      {{3, 6}, {6, 4}},
      {{0, 4}, {3, 3}},  // degenerate axis (2 points)
      {{4, 4}, {0, 5}},
  };
  for (const auto& [src_level, dst_level] : pairs) {
    Grid2D src(src_level);
    src.fill(wavy);
    Grid2D dst(dst_level);
    transfer(src, dst);
    const Grid2D ref = legacy_interpolate(src, dst_level);
    EXPECT_LE(max_abs_diff(dst, ref), 1e-12)
        << "src (" << src_level.x << "," << src_level.y << ") dst (" << dst_level.x
        << "," << dst_level.y << ")";
  }
}

TEST(Transfer, AccumulateMatchesLegacy) {
  Grid2D src(Level{5, 3});
  src.fill(wavy);
  Grid2D dst(Level{4, 4});
  dst.fill([](double x, double y) { return x - y; });
  Grid2D ref = dst;

  transfer_accumulate(src, -1.5, dst);
  for (int iy = 0; iy < ref.ny(); ++iy) {
    for (int ix = 0; ix < ref.nx(); ++ix) {
      ref.at(ix, iy) += -1.5 * src.sample(ref.x_of(ix), ref.y_of(iy));
    }
  }
  EXPECT_LE(max_abs_diff(dst, ref), 1e-12);
}

TEST(Transfer, RestrictInjectIsExactOnRefinement) {
  Grid2D fine(Level{6, 5});
  fine.fill(wavy);
  Grid2D coarse(Level{4, 3});
  restrict_inject(fine, coarse);
  const int sx = 1 << 2;
  const int sy = 1 << 2;
  for (int iy = 0; iy < coarse.ny(); ++iy) {
    for (int ix = 0; ix < coarse.nx(); ++ix) {
      EXPECT_EQ(coarse.at(ix, iy), fine.at(ix * sx, iy * sy));  // bitwise: pure gather
    }
  }
}

TEST(Transfer, ProlongateIsExactOnCoarsePoints) {
  Grid2D coarse(Level{3, 4});
  coarse.fill(wavy);
  Grid2D fine(Level{5, 6});
  prolongate(coarse, fine);
  Grid2D back(Level{3, 4});
  restrict_inject(fine, back);
  EXPECT_LE(max_abs_diff(coarse, back), 1e-13);
}

TEST(Combine, FusedMatchesSequentialAccumulate) {
  const ftr::comb::Scheme s{6, 4};
  const auto levels = s.combination_levels();
  std::vector<Grid2D> grids;
  grids.reserve(levels.size());
  for (const Level& lv : levels) {
    Grid2D g(lv);
    g.fill(wavy);
    grids.push_back(std::move(g));
  }
  std::vector<ftr::comb::Component> parts;
  for (size_t i = 0; i < grids.size(); ++i) {
    parts.push_back({&grids[i], ftr::comb::classic_coefficient(s, levels[i])});
  }

  // Fused single-pass engine vs. one sequential accumulate per component.
  const Grid2D fused = ftr::comb::combine_to(Level{6, 6}, parts);
  Grid2D sequential(Level{6, 6});
  for (const auto& p : parts) {
    transfer_accumulate(*p.grid, p.coefficient, sequential);
  }
  // Same per-point summation order over components: identical results.
  EXPECT_LE(max_abs_diff(fused, sequential), 1e-13);

  // And both match the legacy per-point sample() combination.
  Grid2D legacy(Level{6, 6});
  for (const auto& p : parts) {
    if (p.coefficient == 0.0) continue;
    for (int iy = 0; iy < legacy.ny(); ++iy) {
      for (int ix = 0; ix < legacy.nx(); ++ix) {
        legacy.at(ix, iy) +=
            p.coefficient * p.grid->sample(legacy.x_of(ix), legacy.y_of(iy));
      }
    }
  }
  EXPECT_LE(max_abs_diff(fused, legacy), 1e-12);
}

TEST(Sweeps, SerialXMatchesBufferedReference) {
  Grid2D g(Level{4, 5});
  g.fill(wavy);
  g.enforce_periodicity();
  Grid2D ref = g;

  // Reference: the old implementation's semantics — compute each row into a
  // buffer from old values, then write back.
  const int n = ref.nx() - 1;
  std::vector<double> row(static_cast<size_t>(n));
  for (int iy = 0; iy < ref.ny() - 1; ++iy) {
    for (int ix = 0; ix < n; ++ix) {
      const double w = ref.at((ix - 1 + n) % n, iy);
      const double e = ref.at((ix + 1) % n, iy);
      row[static_cast<size_t>(ix)] = ftr::advection::lw_update(w, ref.at(ix, iy), e, 0.4);
    }
    for (int ix = 0; ix < n; ++ix) ref.at(ix, iy) = row[static_cast<size_t>(ix)];
  }
  ref.enforce_periodicity();

  ftr::advection::sweep_x_serial(g, 0.4);
  EXPECT_EQ(max_abs_diff(g, ref), 0.0);  // identical operands -> bitwise equal
}

TEST(Sweeps, SerialYMatchesBufferedReference) {
  Grid2D g(Level{5, 4});
  g.fill(wavy);
  g.enforce_periodicity();
  Grid2D ref = g;

  const int n = ref.ny() - 1;
  std::vector<double> col(static_cast<size_t>(n));
  for (int ix = 0; ix < ref.nx() - 1; ++ix) {
    for (int iy = 0; iy < n; ++iy) {
      const double s = ref.at(ix, (iy - 1 + n) % n);
      const double nn = ref.at(ix, (iy + 1) % n);
      col[static_cast<size_t>(iy)] = ftr::advection::lw_update(s, ref.at(ix, iy), nn, 0.3);
    }
    for (int iy = 0; iy < n; ++iy) ref.at(ix, iy) = col[static_cast<size_t>(iy)];
  }
  ref.enforce_periodicity();

  ftr::advection::sweep_y_serial(g, 0.3);
  EXPECT_EQ(max_abs_diff(g, ref), 0.0);
}

TEST(Sweeps, LocalFieldSweepsMatchSerialOnSingleBlock) {
  // One halo'd block covering the whole grid must reproduce the serial
  // sweeps after a periodic halo fill.
  Grid2D g(Level{4, 4});
  g.fill(wavy);
  g.enforce_periodicity();
  Grid2D serial = g;
  ftr::advection::sweep_x_serial(serial, 0.25);
  ftr::advection::sweep_y_serial(serial, 0.35);

  const int nx = g.nx() - 1;
  const int ny = g.ny() - 1;
  LocalField f(Block{0, nx, 0, ny});
  f.load_from(g);
  auto& hs = f.halo_scratch();
  f.pack_column_into(nx - 1, hs.send[0]);
  f.unpack_halo_column(-1, hs.send[0]);
  f.pack_column_into(0, hs.send[1]);
  f.unpack_halo_column(nx, hs.send[1]);
  ftr::advection::sweep_x(f, 0.25);
  f.pack_row_into(ny - 1, hs.send[0]);
  f.unpack_halo_row(-1, hs.send[0]);
  f.pack_row_into(0, hs.send[1]);
  f.unpack_halo_row(ny, hs.send[1]);
  ftr::advection::sweep_y(f, 0.35);

  Grid2D out(Level{4, 4});
  f.store_to(out);
  out.enforce_periodicity();
  EXPECT_EQ(max_abs_diff(out, serial), 0.0);
}

TEST(HaloScratch, PackIntoReusesCapacity) {
  LocalField f(Block{0, 8, 0, 6});
  for (int ly = 0; ly < 6; ++ly) {
    for (int lx = 0; lx < 8; ++lx) f.at(lx, ly) = lx + 100.0 * ly;
  }
  auto& hs = f.halo_scratch();
  f.pack_column_into(3, hs.send[0]);
  ASSERT_EQ(hs.send[0].size(), 6u);
  for (int ly = 0; ly < 6; ++ly) EXPECT_EQ(hs.send[0][static_cast<size_t>(ly)], 3 + 100.0 * ly);
  const double* before = hs.send[0].data();
  f.pack_column_into(5, hs.send[0]);  // same size: no reallocation
  EXPECT_EQ(hs.send[0].data(), before);
  for (int ly = 0; ly < 6; ++ly) EXPECT_EQ(hs.send[0][static_cast<size_t>(ly)], 5 + 100.0 * ly);

  f.pack_row_into(2, hs.send[1]);
  ASSERT_EQ(hs.send[1].size(), 8u);
  for (int lx = 0; lx < 8; ++lx) EXPECT_EQ(hs.send[1][static_cast<size_t>(lx)], lx + 200.0);
}
